// Ablation E8 (paper Sec. VII-B, future work): banded extension.
// Trade-off between DP cells computed and alignment quality on the long-read
// dataset, across band widths.
#include <cstdio>

#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "bench_common.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace saloba;

int main(int argc, char** argv) {
  util::ArgParser args("ablation_banded", "banded vs full extension (Sec. VII-B)");
  args.add_int("reads", "long reads to extend", 120);
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(4 << 20);
  auto ds = core::make_dataset_b(genome, static_cast<std::size_t>(args.get_int("reads")));
  align::ScoringScheme scoring;
  const auto& batch = ds.batch;

  // Full-DP oracle.
  std::vector<align::AlignmentResult> full(batch.size());
  std::size_t full_cells = 0;
  util::parallel_for_indexed(batch.size(), [&](std::size_t i) {
    full[i] = align::smith_waterman(batch.refs[i], batch.queries[i], scoring);
  });
  for (std::size_t i = 0; i < batch.size(); ++i) {
    full_cells += batch.refs[i].size() * batch.queries[i].size();
  }

  util::Table table({"Band", "Cells vs full", "Exact-score jobs", "Mean score ratio"});
  for (std::size_t band : {8u, 16u, 32u, 64u, 128u, 256u, 1024u}) {
    std::vector<std::size_t> cells(batch.size());
    std::vector<double> ratio(batch.size(), 1.0);
    std::vector<int> exact(batch.size(), 0);
    util::parallel_for_indexed(batch.size(), [&](std::size_t i) {
      auto banded = align::smith_waterman_banded(batch.refs[i], batch.queries[i], scoring, band);
      cells[i] = banded.cells_computed;
      exact[i] = banded.result.score == full[i].score ? 1 : 0;
      ratio[i] = full[i].score > 0 ? static_cast<double>(banded.result.score) /
                                         static_cast<double>(full[i].score)
                                   : 1.0;
    });
    std::size_t total_cells = 0;
    int total_exact = 0;
    double ratio_sum = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      total_cells += cells[i];
      total_exact += exact[i];
      ratio_sum += ratio[i];
    }
    table.add_row({std::to_string(band),
                   util::Table::num(100.0 * static_cast<double>(total_cells) /
                                        static_cast<double>(full_cells),
                                    1) + "%",
                   std::to_string(total_exact) + "/" + std::to_string(batch.size()),
                   util::Table::num(ratio_sum / static_cast<double>(batch.size()), 4)});
  }

  std::printf("Banded extension ablation — dataset B' (%zu jobs, %.1f M full cells)\n\n%s\n",
              batch.size(), static_cast<double>(full_cells) / 1e6, table.render().c_str());
  std::printf(
      "The paper's Sec. VII-B intuition: the optimal path hugs the diagonal, so a\n"
      "modest band retains near-full quality at a fraction of the work — but band\n"
      "width would vary per query, which worsens load balancing on GPUs.\n");
  return 0;
}
