// Ablation E8 (paper Sec. VII-B): banded extension, end to end.
//
// Two parts:
//   1. An asserting harness (the CI smoke contract): on an in-band
//      long-read-like dataset (2 kbp pairs, 0.5% divergence — the optimal
//      path hugs the diagonal), the banded SALoBa kernel must produce
//      results bit-identical to the full-table run at >= 2x fewer DP cells,
//      with KernelStats dp_cells + dp_cells_skipped accounting for the
//      difference exactly, a faster modeled kernel time, and bit-identical
//      agreement with the banded CPU reference. Any violation exits 1.
//   2. The quality/cost sweep across band widths on the real pipeline
//      dataset B' (where narrow bands do lose score — the trade-off table).
#include <cstdio>
#include <cstdlib>

#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "bench_common.hpp"
#include "core/workload.hpp"
#include "kernels/kernel_iface.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

using namespace saloba;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_banded", "banded vs full extension (Sec. VII-B)");
  args.add_int("reads", "long reads for the dataset-B' sweep", 120);
  args.add_int("pairs", "in-band 2 kbp pairs for the kernel harness", 48);
  args.add_int("band", "band width asserted by the kernel harness", 128);
  args.add_flag("quick", "CI smoke mode: skip the dataset-B' sweep");
  if (!args.parse(argc, argv)) return 1;

  align::ScoringScheme scoring;
  auto genome = core::make_genome(4 << 20);
  bool ok = true;

  // --- 1. Kernel harness: banded vs full table on an in-band dataset -----
  const std::size_t band = static_cast<std::size_t>(args.get_int("band"));
  const std::size_t pairs = static_cast<std::size_t>(args.get_int("pairs"));
  auto full_batch = core::make_fig6_batch(genome, 2048, pairs, /*seed=*/11);
  seq::PairBatch banded_batch = full_batch;
  banded_batch.default_band = band;

  auto kernel = kernels::make_kernel("saloba");
  gpusim::Device dev_full(gpusim::DeviceSpec::rtx3090());
  auto full = kernel->run(dev_full, full_batch, scoring);
  gpusim::Device dev_banded(gpusim::DeviceSpec::rtx3090());
  auto banded = kernel->run(dev_banded, banded_batch, scoring);

  std::vector<int> same_as_full(banded_batch.size(), 0);
  std::vector<int> same_as_cpu(banded_batch.size(), 0);
  util::parallel_for_indexed(banded_batch.size(), [&](std::size_t i) {
    auto ref = align::smith_waterman_banded(banded_batch.refs[i], banded_batch.queries[i],
                                            scoring, band);
    same_as_cpu[i] = banded.results[i] == ref.result;
    same_as_full[i] = banded.results[i] == full.results[i];
  });
  std::size_t identical = 0;
  std::size_t cpu_identical = 0;
  for (std::size_t i = 0; i < banded_batch.size(); ++i) {
    identical += static_cast<std::size_t>(same_as_full[i]);
    cpu_identical += static_cast<std::size_t>(same_as_cpu[i]);
  }

  const std::uint64_t cells_full = full.stats.totals.dp_cells;
  const std::uint64_t cells_banded = banded.stats.totals.dp_cells;
  const std::uint64_t cells_skipped = banded.stats.totals.dp_cells_skipped;
  std::printf("Banded kernel harness — %zu in-band pairs of 2048 bp, band %zu\n",
              banded_batch.size(), band);
  std::printf("  full table : %8.1f M cells, %8.3f ms modeled\n",
              static_cast<double>(cells_full) / 1e6, full.time.total_ms);
  std::printf("  banded     : %8.1f M cells (+%.1f M skipped), %8.3f ms modeled\n",
              static_cast<double>(cells_banded) / 1e6,
              static_cast<double>(cells_skipped) / 1e6, banded.time.total_ms);
  std::printf("  cell reduction %.2fx, modeled speedup %.2fx, identical results %zu/%zu\n\n",
              static_cast<double>(cells_full) / static_cast<double>(cells_banded),
              full.time.total_ms / banded.time.total_ms, identical, banded_batch.size());

  ok &= check(identical == banded_batch.size(),
              "banded kernel results identical to the full-table kernel");
  ok &= check(cpu_identical == banded_batch.size(),
              "banded kernel bit-identical to align::smith_waterman_banded");
  ok &= check(cells_banded * 2 <= cells_full, ">= 2x modeled DP-cell reduction");
  ok &= check(cells_banded + cells_skipped == cells_full,
              "dp_cells + dp_cells_skipped accounts for the full table exactly");
  ok &= check(banded.time.total_ms < full.time.total_ms,
              "banded modeled kernel time beats the full table");

  // --- 2. Quality/cost sweep on the pipeline's dataset B' ----------------
  if (!args.get_flag("quick")) {
    auto ds = core::make_dataset_b(genome, static_cast<std::size_t>(args.get_int("reads")));
    seq::PairBatch sweep_batch = ds.batch;  // pipeline bands not needed here
    sweep_batch.bands.clear();
    sweep_batch.default_band = 0;

    std::vector<align::AlignmentResult> oracle(sweep_batch.size());
    std::size_t full_cells = 0;
    util::parallel_for_indexed(sweep_batch.size(), [&](std::size_t i) {
      oracle[i] = align::smith_waterman(sweep_batch.refs[i], sweep_batch.queries[i], scoring);
    });
    for (std::size_t i = 0; i < sweep_batch.size(); ++i) {
      full_cells += sweep_batch.refs[i].size() * sweep_batch.queries[i].size();
    }

    util::Table table({"Band", "Cells vs full", "Exact-score jobs", "Mean score ratio"});
    for (std::size_t w : {8u, 16u, 32u, 64u, 128u, 256u, 1024u}) {
      std::vector<std::size_t> cells(sweep_batch.size());
      std::vector<double> ratio(sweep_batch.size(), 1.0);
      std::vector<int> exact(sweep_batch.size(), 0);
      util::parallel_for_indexed(sweep_batch.size(), [&](std::size_t i) {
        auto b = align::smith_waterman_banded(sweep_batch.refs[i], sweep_batch.queries[i],
                                              scoring, w);
        cells[i] = b.cells_computed;
        exact[i] = b.result.score == oracle[i].score ? 1 : 0;
        ratio[i] = oracle[i].score > 0 ? static_cast<double>(b.result.score) /
                                             static_cast<double>(oracle[i].score)
                                       : 1.0;
      });
      std::size_t total_cells = 0;
      int total_exact = 0;
      double ratio_sum = 0;
      for (std::size_t i = 0; i < sweep_batch.size(); ++i) {
        total_cells += cells[i];
        total_exact += exact[i];
        ratio_sum += ratio[i];
      }
      table.add_row({std::to_string(w),
                     util::Table::num(100.0 * static_cast<double>(total_cells) /
                                          static_cast<double>(full_cells),
                                      1) + "%",
                     std::to_string(total_exact) + "/" + std::to_string(sweep_batch.size()),
                     util::Table::num(ratio_sum / static_cast<double>(sweep_batch.size()), 4)});
    }

    std::printf("Banded extension sweep — dataset B' (%zu jobs, %.1f M full cells)\n\n%s\n",
                sweep_batch.size(), static_cast<double>(full_cells) / 1e6,
                table.render().c_str());
    std::printf(
        "The paper's Sec. VII-B intuition: the optimal path hugs the diagonal, so a\n"
        "modest band retains near-full quality at a fraction of the work; the kernel\n"
        "harness above shows the win is now real end to end — skipped 8x8 blocks are\n"
        "neither fetched nor charged by the simulated cost model.\n");
  }

  return ok ? 0 : 1;
}
