// Chaining-phase ablation: the measured half of the "other hot spot". An
// asserting harness — CI runs `ablation_chaining --quick` — that puts the
// batched forward-only chain engine (fixed-lookahead push recurrence,
// AVX2-dispatched) against the sequential chain_seeds oracle on a dense
// anchor workload and requires:
//
//   1. bit-identical chains (seeds, scores, truncation flags) on every task,
//   2. when the AVX2 kernel is dispatched, a strict >= 2x wall-clock win
//      (on the generic-fallback build only identity is asserted — the
//      portable kernel exists for correctness, not speed),
//
// and emits a BENCH_chaining.json record. Any violation exits 1. The
// workload is repeat-dense on purpose: ~0.35 anchors per qpos unit with a
// 120 + max_len gap window puts the oracle's scan near (but under) the
// 64-anchor lookahead, the regime the engine is built for.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "seedext/chain_batch.hpp"
#include "seedext/chain_engine.hpp"
#include "seedext/chain_kernel.hpp"
#include "seedext/chaining.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace saloba;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

seedext::ChainingParams dense_params() {
  seedext::ChainingParams params;
  params.max_gap = 120;
  params.max_diag_drift = 60;
  return params;
}

/// Dense repeat-like anchor sets: many short seeds piled onto a narrow
/// diagonal band, the read×strand shape that makes chaining the hot spot.
std::vector<std::vector<seedext::Seed>> make_tasks(std::size_t tasks,
                                                   std::size_t anchors_per_task) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<std::uint32_t> qdist(0, 1400);
  std::uniform_int_distribution<std::uint32_t> ddist(0, 50);
  std::uniform_int_distribution<std::uint32_t> ldist(15, 25);
  std::vector<std::vector<seedext::Seed>> out(tasks);
  for (auto& seeds : out) {
    seeds.reserve(anchors_per_task);
    for (std::size_t i = 0; i < anchors_per_task; ++i) {
      const std::uint32_t qpos = qdist(rng);
      seeds.push_back(seedext::Seed{qpos, 100000 + qpos + ddist(rng), ldist(rng)});
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_chaining",
                       "measured batched forward-only chaining vs the sequential oracle");
  args.add_int("tasks", "read×strand chaining problems in the batch", 1500);
  args.add_int("anchors", "anchors per problem", 500);
  args.add_int("reps", "timing repetitions (min is reported)", 5);
  args.add_flag("quick", "CI smoke mode: smaller batch, fewer reps");
  if (!args.parse(argc, argv)) return 1;

  const bool quick = args.get_flag("quick");
  const std::size_t tasks =
      quick ? 400 : static_cast<std::size_t>(args.get_int("tasks"));
  const std::size_t anchors = static_cast<std::size_t>(args.get_int("anchors"));
  const int reps = quick ? 3 : args.get_int("reps");

  const seedext::ChainingParams params = dense_params();
  const auto task_seeds = make_tasks(tasks, anchors);
  seedext::ChainBatch batch(params);
  for (const auto& seeds : task_seeds) batch.add_task(seeds);

  bool ok = true;

  // --- 1. Identity: every task's chains, bit for bit ----------------------
  seedext::ChainEngineStats stats;
  auto engine_chains = seedext::chain_batch_run(batch, &stats, /*threads=*/1);
  std::size_t identical = 0;
  for (std::size_t t = 0; t < batch.tasks(); ++t) {
    identical += engine_chains[t] == seedext::chain_seeds(task_seeds[t], params);
  }
  ok &= check(identical == batch.tasks(),
              "engine chains bit-identical to sequential chain_seeds on every task");
  ok &= check(stats.scalar_tasks == 0,
              "dense workload fits the int32 envelope (no oracle routing)");

  // --- 2. Measured wall-clock (both sides single-threaded: this measures
  //        the recurrence, not the thread count) ---------------------------
  double oracle_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const util::Timer t;
    for (const auto& seeds : task_seeds) {
      volatile std::size_t sink = seedext::chain_seeds(seeds, params).size();
      (void)sink;
    }
    const double ms = t.millis();
    oracle_ms = r == 0 ? ms : std::min(oracle_ms, ms);
  }
  double engine_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    const util::Timer t;
    volatile std::size_t sink =
        seedext::chain_batch_run(batch, nullptr, /*threads=*/1).size();
    (void)sink;
    const double ms = t.millis();
    engine_ms = r == 0 ? ms : std::min(engine_ms, ms);
  }
  const double speedup = oracle_ms / std::max(engine_ms, 1e-9);
  const double updates = static_cast<double>(stats.pushes + stats.settled);

  std::printf(
      "chaining ablation — %zu tasks x %zu anchors (%zu total), lookahead %zu, avx2=%s\n",
      batch.tasks(), anchors, batch.anchors(), seedext::detail::kChainLookahead,
      stats.avx2 ? "yes" : "no");
  std::printf("  sequential oracle : %9.3f ms\n", oracle_ms);
  std::printf("  batched engine    : %9.3f ms  (%.1f M push + %.1f M settle candidates)\n",
              engine_ms, static_cast<double>(stats.pushes) / 1e6,
              static_cast<double>(stats.settled) / 1e6);
  std::printf("  measured speedup  : %9.2fx\n\n", speedup);

  if (stats.avx2) {
    ok &= check(speedup >= 2.0, ">= 2x measured wall-clock win over the sequential oracle");
  } else {
    std::printf("note: AVX2 unavailable (generic fallback) — asserting identity only.\n");
  }

  // --- 3. Throughput record ----------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_chaining.json", "w")) {
    std::fprintf(f,
                 "{\"bench\":\"ablation_chaining\",\"tasks\":%zu,\"anchors\":%zu,"
                 "\"updates\":%.0f,\"avx2\":%s,\"oracle_ms\":%.3f,\"engine_ms\":%.3f,"
                 "\"speedup\":%.3f,\"identical\":%s}\n",
                 batch.tasks(), batch.anchors(), updates, stats.avx2 ? "true" : "false",
                 oracle_ms, engine_ms, speedup,
                 identical == batch.tasks() ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_chaining.json\n");
  }

  return ok ? 0 : 1;
}
