// Ablation E10 (paper Sec. VII-C, future work): multi-GPU scaling. Splits a
// workload across 1-4 simulated devices through the public Aligner →
// BatchScheduler path and compares the two assignment policies; total time
// = makespan over devices.
#include <cstdio>

#include "core/aligner.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace saloba;

namespace {

core::AlignOutput run_split(const seq::PairBatch& batch, int devices,
                            gpusim::SplitPolicy policy, const std::string& device) {
  core::AlignerOptions opts;
  opts.backend = core::Backend::kSimulated;
  opts.kernel = "saloba-sw16";
  opts.device = device;
  opts.devices = devices;
  opts.split_policy = policy;
  core::Aligner aligner(opts);
  return aligner.align(batch);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_multigpu", "multi-GPU splitting policies (Sec. VII-C)");
  args.add_int("reads", "long reads for the workload", 200);
  args.add_string("device", "gtx1650 | rtx3090 | p100 | v100", "rtx3090");
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(4 << 20);
  auto ds = core::make_dataset_b(genome, static_cast<std::size_t>(args.get_int("reads")));
  const auto& batch = ds.batch;
  const std::string device = args.get_string("device");

  util::Table table(
      {"GPUs", "Static split", "Sorted split", "Imbalance (sorted)", "Speedup vs 1 GPU"});
  double base = 0.0;
  for (int k : {1, 2, 3, 4}) {
    auto statik = run_split(batch, k, gpusim::SplitPolicy::kStatic, device);
    auto sorted = run_split(batch, k, gpusim::SplitPolicy::kSorted, device);
    if (k == 1) base = sorted.time_ms;
    table.add_row({std::to_string(k), util::Table::ms(statik.time_ms),
                   util::Table::ms(sorted.time_ms),
                   util::Table::num(sorted.schedule.imbalance, 2),
                   util::Table::num(base / sorted.time_ms, 2) + "x"});
  }
  std::printf(
      "Multi-GPU splitting — dataset B' (%zu jobs) on simulated %ss\n"
      "(public Aligner path: scheduler shards async across devices; raw batch times)\n\n%s\n",
      batch.size(), device.c_str(), table.render().c_str());
  std::printf(
      "Expected (Sec. VII-C): near-linear scaling; sorting long jobs first narrows\n"
      "the inter-GPU imbalance penalty, matching the paper's proposed mitigation.\n");
  return 0;
}
