// Ablation E10 (paper Sec. VII-C, future work): multi-GPU scaling. Splits a
// workload across 1-4 simulated devices and compares three assignment
// policies; total time = max over devices.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace saloba;

namespace {

/// Splits `batch` into `k` shards by the given order and returns the max
/// simulated time across shards.
double sharded_time(const seq::PairBatch& batch, const std::vector<std::size_t>& order, int k,
                    const gpusim::DeviceSpec& spec, const align::ScoringScheme& scoring) {
  double worst = 0.0;
  for (int shard = 0; shard < k; ++shard) {
    seq::PairBatch part;
    for (std::size_t i = static_cast<std::size_t>(shard); i < order.size();
         i += static_cast<std::size_t>(k)) {
      part.add(batch.queries[order[i]], batch.refs[order[i]]);
    }
    if (part.size() == 0) continue;
    auto out = bench::run_kernel("saloba-sw16", spec, part, scoring, part.size());
    worst = std::max(worst, out.time_ms);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_multigpu", "multi-GPU splitting policies (Sec. VII-C)");
  args.add_int("reads", "long reads for the workload", 200);
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(4 << 20);
  auto ds = core::make_dataset_b(genome, static_cast<std::size_t>(args.get_int("reads")));
  const auto& batch = ds.batch;
  align::ScoringScheme scoring;
  auto spec = gpusim::DeviceSpec::rtx3090();

  // Orders: natural (static contiguous round-robin), random-ish (hashed),
  // sorted by descending workload (the paper's "approximate sorting").
  std::vector<std::size_t> natural(batch.size());
  std::iota(natural.begin(), natural.end(), 0);
  std::vector<std::size_t> sorted = natural;
  std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
    return batch.queries[a].size() * batch.refs[a].size() >
           batch.queries[b].size() * batch.refs[b].size();
  });

  util::Table table({"GPUs", "Static split", "Sorted split", "Speedup vs 1 GPU (sorted)"});
  double base = 0.0;
  for (int k : {1, 2, 3, 4}) {
    double t_nat = sharded_time(batch, natural, k, spec, scoring);
    double t_sort = sharded_time(batch, sorted, k, spec, scoring);
    if (k == 1) base = t_sort;
    table.add_row({std::to_string(k), util::Table::ms(t_nat), util::Table::ms(t_sort),
                   util::Table::num(base / t_sort, 2) + "x"});
  }
  std::printf("Multi-GPU splitting — dataset B' (%zu jobs) on simulated RTX3090s\n\n%s\n",
              batch.size(), table.render().c_str());
  std::printf(
      "Expected (Sec. VII-C): near-linear scaling; sorting long jobs first narrows\n"
      "the inter-GPU imbalance penalty, matching the paper's proposed mitigation.\n");
  return 0;
}
