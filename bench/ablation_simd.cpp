// SIMD extension-engine ablation: the first *measured* (not modeled)
// speedup in the repo. An asserting harness — CI runs `ablation_simd
// --quick` — that puts the inter-sequence SimdCpuBackend against the scalar
// CpuBackend on the same medium-read batch and requires:
//
//   1. bit-identical results (scores, endpoints) and cell counts,
//   2. when the AVX2 kernels are dispatched, a strict >= 2x wall-clock win
//      (on the generic-fallback build only identity is asserted — the
//      portable kernels exist for correctness, not speed),
//
// and emits a BENCH_simd.json throughput record to seed the perf
// trajectory. Any violation exits 1.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "align/batch.hpp"
#include "align/simd_engine.hpp"
#include "bench_common.hpp"
#include "core/backend.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace saloba;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

/// Min-of-reps wall time of one backend lane over the batch.
double time_backend(core::AlignBackend& backend, const seq::PairBatch& batch, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const util::Timer t;
    backend.run(batch, 0);
    const double ms = t.millis();
    best = r == 0 ? ms : std::min(best, ms);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_simd",
                       "measured SIMD vs scalar CPU extension (inter-sequence engine)");
  args.add_int("pairs", "medium-read pairs in the benchmark batch", 3000);
  args.add_int("len", "pair length in bases", 192);
  args.add_int("reps", "timing repetitions (min is reported)", 5);
  args.add_flag("quick", "CI smoke mode: smaller batch, fewer reps");
  if (!args.parse(argc, argv)) return 1;

  const bool quick = args.get_flag("quick");
  const std::size_t pairs =
      quick ? 800 : static_cast<std::size_t>(args.get_int("pairs"));
  const std::size_t len = static_cast<std::size_t>(args.get_int("len"));
  const int reps = quick ? 3 : args.get_int("reps");

  align::ScoringScheme scoring;
  auto genome = core::make_genome(4 << 20);
  auto batch = core::make_fig6_batch(genome, len, pairs, /*seed=*/23);

  // Both backends single-threaded on one lane: this measures the engines,
  // not the thread count (lane weights already scale with threads).
  core::CpuBackend scalar(scoring, /*lanes=*/1, /*threads_total=*/1);
  core::SimdCpuBackend simd(scoring, {core::SimdCpuBackend::LaneKind::kSimd},
                            /*threads_total=*/1);
  bool ok = true;

  // --- 1. Identity: results and cell accounting, bit for bit -------------
  auto scalar_out = scalar.run(batch, 0);
  auto simd_out = simd.run(batch, 0);
  std::size_t identical = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    identical += scalar_out.results[i] == simd_out.results[i];
  }
  ok &= check(identical == batch.size(),
              "SIMD results (scores + endpoints) bit-identical to scalar CpuBackend");
  ok &= check(simd_out.cells == scalar_out.cells,
              "SIMD cell accounting identical to scalar CpuBackend");

  // --- 2. Measured wall-clock ---------------------------------------------
  const bool avx2 = align::simd::compiled_with_avx2() && align::simd::cpu_supports_avx2();
  const double scalar_ms = time_backend(scalar, batch, reps);
  const double simd_ms = time_backend(simd, batch, reps);
  const double speedup = scalar_ms / std::max(simd_ms, 1e-9);
  const double cells = static_cast<double>(scalar_out.cells);
  const double gcups_scalar = cells / (scalar_ms * 1e6);
  const double gcups_simd = cells / (simd_ms * 1e6);

  align::simd::EngineStats stats;
  align::simd::align_batch(batch, scoring, &stats, /*threads=*/1);

  std::printf("SIMD extension ablation — %zu pairs of %zu bp, %.1f M cells, isa=%s\n",
              batch.size(), len, cells / 1e6, align::simd::isa_name());
  std::printf("  scalar CpuBackend : %9.3f ms  (%6.3f GCUPS)\n", scalar_ms, gcups_scalar);
  std::printf("  SimdCpuBackend    : %9.3f ms  (%6.3f GCUPS)\n", simd_ms, gcups_simd);
  std::printf("  measured speedup  : %9.2fx  (8-bit %zu, 16-bit %zu, int32 %zu, "
              "calibrated lane weight %.2f)\n\n",
              speedup, stats.pairs_8bit, stats.rescued_16bit, stats.rescued_32bit,
              core::simd_lane_speedup());

  if (avx2) {
    ok &= check(speedup >= 2.0, ">= 2x measured wall-clock win over the scalar backend");
  } else {
    std::printf("note: AVX2 unavailable (generic fallback) — asserting identity only.\n");
  }

  // --- 3. Throughput record ----------------------------------------------
  if (std::FILE* f = std::fopen("BENCH_simd.json", "w")) {
    std::fprintf(f,
                 "{\"bench\":\"ablation_simd\",\"pairs\":%zu,\"len\":%zu,"
                 "\"cells\":%.0f,\"isa\":\"%s\",\"scalar_ms\":%.3f,\"simd_ms\":%.3f,"
                 "\"speedup\":%.3f,\"gcups_scalar\":%.3f,\"gcups_simd\":%.3f,"
                 "\"identical\":%s}\n",
                 batch.size(), len, cells, align::simd::isa_name(), scalar_ms, simd_ms,
                 speedup, gcups_scalar, gcups_simd,
                 identical == batch.size() ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_simd.json\n");
  }

  return ok ? 0 : 1;
}
