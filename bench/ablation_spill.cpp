// Ablation E9 (paper Sec. IV-B/IV-C): lazy-spill geometry. Measures the
// global-memory traffic of naive vs lazy spilling across subwarp sizes and
// transaction granularities (pre-Volta 128 B vs Volta+ 32 B), isolating why
// coalescing matters more on older architectures.
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "kernels/saloba_kernel.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace saloba;

namespace {

struct Traffic {
  double moved_mb = 0.0;
  double useful_mb = 0.0;
  std::uint64_t requests = 0;
  double time_ms = 0.0;
};

Traffic measure(const kernels::SalobaConfig& cfg, const gpusim::DeviceSpec& spec,
                const seq::PairBatch& batch, const align::ScoringScheme& scoring) {
  gpusim::Device dev(spec);
  auto result = kernels::make_saloba(cfg)->run(dev, batch, scoring);
  Traffic t;
  t.moved_mb = static_cast<double>(result.stats.totals.global_bytes_moved) / 1e6;
  t.useful_mb = static_cast<double>(result.stats.totals.global_bytes_useful) / 1e6;
  t.requests = result.stats.totals.global_requests;
  t.time_ms = result.time.total_ms;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_spill", "lazy-spill traffic geometry (Sec. IV-B)");
  args.add_int("len", "sequence length", 2048);
  args.add_int("pairs", "pairs in the batch", 96);
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(4 << 20);
  auto batch = core::make_fig6_batch(genome, static_cast<std::size_t>(args.get_int("len")),
                                     static_cast<std::size_t>(args.get_int("pairs")));
  align::ScoringScheme scoring;

  // Machine-readable summary alongside the tables: per device, the naive vs
  // lazy traffic at the default subwarp width (the headline waste factors).
  std::string json = "{\"bench\":\"ablation_spill\",\"devices\":[";
  bool first_device = true;

  for (const auto& spec :
       {gpusim::DeviceSpec::pascal_p100(), gpusim::DeviceSpec::volta_v100()}) {
    std::printf("=== %s (%d B transactions) ===\n", spec.name.c_str(),
                spec.mem_access_granularity);
    util::Table table(
        {"Config", "Moved MB", "Useful MB", "Waste x", "Mem requests", "Sim time"});
    Traffic naive32, lazy32;
    for (int subwarp : {32, 16, 8}) {
      for (int mode = 0; mode < 3; ++mode) {
        if (mode == 2 && subwarp == 32) continue;  // full-warp = default at 32
        kernels::SalobaConfig cfg;
        cfg.subwarp_size = subwarp;
        cfg.lazy_spill = mode != 0;
        cfg.full_warp_spill = mode == 2;  // Sec. IV-C: N+32-slot variant
        auto t = measure(cfg, spec, batch, scoring);
        if (subwarp == 32) (mode == 0 ? naive32 : lazy32) = t;
        char label[64];
        std::snprintf(label, sizeof label, "sw%-2d %s", subwarp,
                      mode == 0 ? "naive" : (mode == 1 ? "lazy" : "lazy+fw"));
        table.add_row({label, util::Table::num(t.moved_mb, 1), util::Table::num(t.useful_mb, 1),
                       util::Table::num(t.moved_mb / t.useful_mb, 2),
                       std::to_string(t.requests), util::Table::ms(t.time_ms)});
      }
    }
    std::printf("%s\n", table.render().c_str());

    char entry[512];
    std::snprintf(entry, sizeof entry,
                  "%s{\"device\":\"%s\",\"granularity\":%d,"
                  "\"naive_moved_mb\":%.1f,\"naive_waste\":%.2f,"
                  "\"lazy_moved_mb\":%.1f,\"lazy_waste\":%.2f}",
                  first_device ? "" : ",", spec.name.c_str(), spec.mem_access_granularity,
                  naive32.moved_mb, naive32.moved_mb / naive32.useful_mb, lazy32.moved_mb,
                  lazy32.moved_mb / lazy32.useful_mb);
    json += entry;
    first_device = false;
  }
  json += "]}\n";

  if (std::FILE* f = std::fopen("BENCH_spill.json", "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_spill.json\n");
  }

  std::printf(
      "Expected: naive spilling wastes a full transaction per 4 B cell — 32x at\n"
      "128 B granularity, 8x at 32 B — while lazy bursts stay near 1x. Smaller\n"
      "subwarps shrink the burst width (Sec. IV-C), which matters on pre-Volta\n"
      "parts: the paper's N+32-slot variant would recover full-warp bursts.\n");
  return 0;
}
