// Ablation: the batched traceback phase, end to end.
//
// Asserting harness (the CI smoke contract):
//   1. Turning the traceback phase on changes nothing about the score pass:
//      AlignOutput::results identical with and without it, on the CPU
//      backend and on a simulated kernel.
//   2. Every traced endpoint equals its score-pass result and the SAM
//      records the batched pipeline emits are byte-identical to the legacy
//      per-read full-matrix recompute.
//   3. The batched CIGAR pipeline (ReadMapper::map_batch with the traceback
//      stage: one host-parallel linear-memory batch) beats the legacy path —
//      a serial O(N*M)-memory smith_waterman_traceback per mapped read on
//      the caller thread — on wall clock. The workload is long reads, where
//      the full matrix (tens of MB per read) thrashes and the engine's
//      O(rows·band) working set does not; on multi-core hosts the batch
//      additionally parallelizes while the legacy path cannot.
//   4. The simulated backend reports the score-vs-traceback phase split
//      (AlignOutput::time_ms vs traceback_ms, KernelStats traceback_cells).
// Any violation exits 1.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "align/traceback.hpp"
#include "core/aligner.hpp"
#include "core/workload.hpp"
#include "seedext/sam_output.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

using namespace saloba;

namespace {

bool check(bool ok, const char* what) {
  if (!ok) std::printf("FAIL: %s\n", what);
  return ok;
}

/// The pre-refactor SAM path: full-matrix traceback of each mapped read's
/// genome window, one read at a time on the caller thread.
seq::SamRecord legacy_record(const seedext::ReadMapper& mapper, const seq::Sequence& read,
                             const seedext::ReadMapping& mapping) {
  seq::SamRecord record;
  record.qname = read.name;
  record.seq = read.to_string();
  if (!mapping.mapped) {
    record.flags = seq::SamRecord::kFlagUnmapped;
    return record;
  }
  record.rname = "chrT";
  record.flags = mapping.reverse_strand ? seq::SamRecord::kFlagReverse : 0;
  const auto& genome = mapper.genome();
  std::vector<seq::BaseCode> oriented =
      mapping.reverse_strand ? seq::reverse_complement(read.bases) : read.bases;
  auto win = seedext::mapped_window(genome.size(), mapping.ref_pos, oriented.size());
  std::span<const seq::BaseCode> window(genome.data() + win.start, win.end - win.start);
  auto traced = align::smith_waterman_traceback(window, oriented, mapper.params().scoring);
  if (traced.end.score <= 0) {
    record.flags |= seq::SamRecord::kFlagUnmapped;
    return record;
  }
  record.pos = win.start + static_cast<std::size_t>(traced.ref_start) + 1;
  std::string cigar;
  if (traced.query_start > 0) cigar += std::to_string(traced.query_start) + "S";
  cigar += traced.cigar;
  std::size_t tail = oriented.size() - static_cast<std::size_t>(traced.end.query_end) - 1;
  if (tail > 0) cigar += std::to_string(tail) + "S";
  record.cigar = cigar;
  record.mapq = seedext::mapq_from_score(traced.end.score, read.bases.size(),
                                         mapper.params().scoring);
  record.tags.push_back("AS:i:" + std::to_string(traced.end.score));
  return record;
}

std::string render(const std::vector<seq::SamRecord>& records) {
  std::ostringstream out;
  seq::SamHeader header;
  header.reference_name = "chrT";
  seq::SamWriter writer(out, header);
  for (const auto& r : records) writer.write(r);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("ablation_traceback", "batched traceback phase vs per-read recompute");
  args.add_int("reads", "long reads for the SAM pipeline comparison", 80);
  args.add_int("read_len", "read length for the SAM pipeline comparison", 1500);
  args.add_int("pairs", "pairs for the phase-split harness", 64);
  args.add_flag("quick", "CI smoke mode: smaller workload");
  if (!args.parse(argc, argv)) return 1;

  const bool quick = args.get_flag("quick");
  const std::size_t n_reads = quick ? 20 : static_cast<std::size_t>(args.get_int("reads"));
  bool ok = true;

  // --- 1. Score pass untouched by the phase, CPU and simulated ------------
  auto genome = core::make_genome(1 << 20);
  auto phase_batch =
      core::make_fig6_batch(genome, 512, static_cast<std::size_t>(args.get_int("pairs")),
                            /*seed=*/13);
  for (core::Backend backend : {core::Backend::kCpu, core::Backend::kSimulated}) {
    core::AlignerOptions opts;
    opts.backend = backend;
    auto plain = core::Aligner(opts).align(phase_batch);
    opts.traceback = true;
    auto traced = core::Aligner(opts).align(phase_batch);
    ok &= check(plain.results == traced.results,
                "traceback-on results identical to the score-only pass");
    std::size_t agree = 0;
    for (std::size_t i = 0; i < phase_batch.size(); ++i) {
      agree += traced.traced[i].end == traced.results[i];
    }
    ok &= check(agree == phase_batch.size(),
                "every traced endpoint equals its score-pass result");
    if (backend == core::Backend::kSimulated) {
      // --- 4. Phase split on the simulated device -----------------------
      ok &= check(traced.traceback_ms > 0.0, "simulated traceback phase time reported");
      ok &= check(traced.kernel_stats &&
                      traced.kernel_stats->totals.traceback_cells == traced.traceback_cells,
                  "KernelStats traceback_cells matches the phase's cell count");
      ok &= check(traced.time_breakdown && traced.time_breakdown->traceback_ms > 0.0,
                  "TimeBreakdown carries the traceback component");
      std::printf(
          "Phase split (saloba kernel, %zu pairs of 512 bp): score %.3f ms, traceback "
          "%.3f ms (%.1f%% of total), %.1f M traceback cells\n",
          phase_batch.size(), traced.time_ms, traced.traceback_ms,
          100.0 * traced.traceback_ms / (traced.time_ms + traced.traceback_ms),
          static_cast<double>(traced.traceback_cells) / 1e6);
    }
  }

  // --- 2 + 3. Batched CIGAR pipeline vs legacy per-read recompute ---------
  seq::ReadProfile profile =
      seq::ReadProfile::equal_length(static_cast<std::size_t>(args.get_int("read_len")));
  profile.mutation_rate = 0.02;
  profile.error_rate = 0.01;
  seq::ReadSimulator sim(genome, profile, 29);
  auto simulated = sim.simulate(n_reads);
  std::vector<seq::Sequence> reads;
  std::vector<std::vector<seq::BaseCode>> read_seqs;
  for (auto& r : simulated) {
    reads.push_back(r.read);
    read_seqs.push_back(r.read.bases);
  }

  seedext::ReadMapper mapper(genome, seedext::MapperParams{});
  // Plain score-pass aligner for the extension stage: the traceback phase
  // belongs to the window batch, not to every extension job.
  core::Aligner aligner{core::AlignerOptions{}};

  // Legacy: extension-batched mapping, then one full-matrix traceback per
  // mapped read, serial on the caller thread (the pre-refactor
  // to_sam_record). Best-of-N so scheduler noise on a loaded runner cannot
  // mask the structural margin (full-matrix thrash + serial caller thread
  // vs cache-resident engine + host-parallel batch).
  auto time_legacy = [&](int repeats, double& ms_out) {
    std::vector<seq::SamRecord> out;
    for (int rep = 0; rep < repeats; ++rep) {
      util::Timer timer;
      auto legacy_mappings = mapper.map_batch(read_seqs, aligner.batch_extender());
      out.clear();
      for (std::size_t i = 0; i < reads.size(); ++i) {
        out.push_back(legacy_record(mapper, reads[i], legacy_mappings[i]));
      }
      double ms = timer.millis();
      ms_out = rep == 0 ? ms : std::min(ms_out, ms);
    }
    return out;
  };

  // Batched: the traceback stage runs as one host-parallel linear-memory
  // batch (null trace = the mapper's in-process engine; a traced extender
  // routes the same batch through the scheduler instead) and to_sam_record
  // just consumes the stored CIGARs.
  std::vector<seedext::ReadMapping> mappings;
  auto time_batched = [&](int repeats, double& ms_out) {
    std::vector<seq::SamRecord> out;
    for (int rep = 0; rep < repeats; ++rep) {
      util::Timer timer;
      auto m = mapper.map_batch(read_seqs, aligner.batch_extender(),
                                seedext::TracedBatchExtender{});
      out.clear();
      for (std::size_t i = 0; i < reads.size(); ++i) {
        out.push_back(seedext::to_sam_record(mapper, reads[i], m[i], "chrT"));
      }
      double ms = timer.millis();
      ms_out = rep == 0 ? ms : std::min(ms_out, ms);
      mappings = std::move(m);
    }
    return out;
  };

  // Up to two attempts: a transient noisy-neighbor loss on a shared CI
  // runner gets one retry at more repeats; only a reproducible loss fails.
  double legacy_ms = 0.0;
  double batched_ms = 0.0;
  std::vector<seq::SamRecord> legacy_records;
  std::vector<seq::SamRecord> records;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int repeats = attempt == 0 ? 3 : 5;
    legacy_records = time_legacy(repeats, legacy_ms);
    records = time_batched(repeats, batched_ms);
    if (batched_ms < legacy_ms) break;
    std::printf("(wall-clock attempt %d inconclusive: %.1f ms vs %.1f ms — retrying)\n",
                attempt + 1, legacy_ms, batched_ms);
  }

  std::size_t mapped = 0;
  for (const auto& m : mappings) mapped += m.mapped;
  std::printf(
      "SAM pipeline (%zu reads, %zu mapped): legacy per-read recompute %.1f ms, batched "
      "CIGAR pipeline %.1f ms (%.2fx)\n",
      reads.size(), mapped, legacy_ms, batched_ms, legacy_ms / batched_ms);

  ok &= check(render(records) == render(legacy_records),
              "batched SAM byte-identical to the legacy per-read path");
  ok &= check(mapped > 0, "the workload actually mapped reads");
  ok &= check(batched_ms < legacy_ms,
              "batched CIGAR pipeline beats the per-read recompute on wall clock");

  return ok ? 0 : 1;
}
