// Shared plumbing for the figure/table harnesses.
//
// Batch scaling: the paper runs 5,000 pairs per kernel call on silicon. A
// functional simulator cannot afford that at 4 kbp, so harnesses simulate a
// smaller batch at long lengths and scale the simulated time linearly to the
// nominal batch (valid because at these batch sizes every device resource is
// time-shared: counters grow linearly in pairs). The scaling factor is
// printed with each run. Footprint checks always use the nominal 5,000
// (kernels are constructed with nominal_pairs = 5000), so paper-scale OOM
// failures still reproduce.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "align/scoring.hpp"
#include "core/aligner.hpp"
#include "gpusim/device.hpp"
#include "kernels/baselines.hpp"
#include "kernels/kernel_iface.hpp"
#include "kernels/saloba_kernel.hpp"
#include "seq/sequence.hpp"
#include "util/table.hpp"

namespace saloba::bench {

inline constexpr std::size_t kNominalPairs = 5000;  // paper Sec. V-B

/// Kernel factory with paper-scale footprint checks baked in: every kernel
/// is constructed through the registry with nominal_pairs = 5000.
inline kernels::KernelPtr make_paper_kernel(const std::string& name) {
  return kernels::make_kernel(name, kNominalPairs);
}

struct RunOutcome {
  bool ok = false;
  std::string failure;     ///< reason when !ok (structural / OOM)
  double time_ms = 0.0;    ///< simulated ms, scaled to the nominal batch
  double raw_time_ms = 0.0;
  double scale = 1.0;
  gpusim::KernelStats stats;
  gpusim::TimeBreakdown breakdown;
};

/// Runs `kernel` on `batch` against a fresh device; scales time to
/// `nominal_pairs` when the batch is smaller.
inline RunOutcome run_kernel(const std::string& kernel_name, const gpusim::DeviceSpec& spec,
                             const seq::PairBatch& batch,
                             const align::ScoringScheme& scoring,
                             std::size_t nominal_pairs = kNominalPairs) {
  RunOutcome out;
  out.scale = batch.size() < nominal_pairs
                  ? static_cast<double>(nominal_pairs) / static_cast<double>(batch.size())
                  : 1.0;
  try {
    auto kernel = make_paper_kernel(kernel_name);
    gpusim::Device dev(spec);
    auto result = kernel->run(dev, batch, scoring);
    out.ok = true;
    out.raw_time_ms = result.time.total_ms;
    // Init overhead is already nominal-scale (init hooks use
    // max(nominal, batch)); everything else — compute, DRAM, and launch
    // overhead (proportional to pairs for multi-launch kernels like SW#) —
    // scales with the batch.
    double fixed = result.time.init_ms;
    double variable = result.time.total_ms - fixed;
    out.time_ms = variable * out.scale + fixed;
    out.stats = result.stats;
    out.breakdown = result.time;
  } catch (const kernels::KernelUnsupportedError& e) {
    out.failure = std::string("structural: ") + e.what();
  } catch (const gpusim::DeviceOomError& e) {
    out.failure = std::string("device memory: ") + e.what();
  }
  return out;
}

/// Batch size to simulate for an equal-length sweep at `len` bases: full
/// nominal batch at short lengths, scaled down past 512 bp.
inline std::size_t pairs_for_length(std::size_t len) {
  if (len <= 512) return kNominalPairs;
  if (len <= 1024) return 1280;
  if (len <= 2048) return 448;
  return 160;
}

inline std::string fmt_time_or_failure(const RunOutcome& out) {
  if (!out.ok) {
    return out.failure.substr(0, out.failure.find(':')) == "structural" ? "fail (structural)"
                                                                        : "fail (dev mem)";
  }
  return util::Table::ms(out.time_ms);
}

inline std::vector<std::string> comparison_kernels() {
  return {"soap3-dp", "cushaw2-gpu", "nvbio", "gasal2", "sw#", "adept"};
}

/// Device presets used throughout the evaluation (paper Sec. V-A).
inline std::vector<gpusim::DeviceSpec> paper_devices() {
  return {gpusim::DeviceSpec::gtx1650(), gpusim::DeviceSpec::rtx3090()};
}

}  // namespace saloba::bench
