// Fig. 2 reproduction: distribution of the query/reference sequence lengths
// entering seed extension, for a short-read dataset (A', 250 bp Illumina
// stand-in; panels a/b) and a long-read dataset (B', ~2 kbp PacBio stand-in;
// panels c/d), produced by our BWA-MEM-like pipeline on a synthetic genome.
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/histogram.hpp"

using namespace saloba;

namespace {

void panel(const char* title, const seq::PairBatch& batch, bool query_side, double hi,
           double width) {
  util::Histogram hist(0, hi, width);
  const auto& seqs = query_side ? batch.queries : batch.refs;
  for (const auto& s : seqs) hist.add(static_cast<double>(s.size()));
  std::printf("%s (%zu jobs)\n%s\n", title, seqs.size(), hist.render(48).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("fig2_distributions", "Fig. 2: seed-extension input length histograms");
  args.add_int("genome", "genome length (bases)", 2 << 20);
  args.add_int("reads-a", "reads for dataset A'", 1500);
  args.add_int("reads-b", "reads for dataset B'", 250);
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(static_cast<std::size_t>(args.get_int("genome")));
  auto a = core::make_dataset_a(genome, static_cast<std::size_t>(args.get_int("reads-a")));
  auto b = core::make_dataset_b(genome, static_cast<std::size_t>(args.get_int("reads-b")));

  std::printf("Fig. 2 — length distributions of seed-extension inputs\n\n");
  panel("(a) Query-250bp  [dataset A']", a.batch, true, 250, 25);
  panel("(b) Reference-250bp  [dataset A']", a.batch, false, 500, 50);
  panel("(c) Query-2000bp  [dataset B']", b.batch, true, 2000, 200);
  panel("(d) Reference-2000bp  [dataset B']", b.batch, false, 2000, 200);

  std::printf("Imbalance summary (coefficient of variation of lengths):\n");
  std::printf("  dataset A': query CV=%.2f ref CV=%.2f (max q=%zu, r=%zu)\n",
              a.stats.cv_query_len, a.stats.cv_ref_len, a.stats.max_query_len,
              a.stats.max_ref_len);
  std::printf("  dataset B': query CV=%.2f ref CV=%.2f (max q=%zu, r=%zu)\n",
              b.stats.cv_query_len, b.stats.cv_ref_len, b.stats.max_query_len,
              b.stats.max_ref_len);
  std::printf(
      "\nPaper's observation holds: lengths range widely and are not clustered,\n"
      "with ~10x shortest-to-longest spread -> warp divergence for one-thread-\n"
      "per-query kernels (Sec. III-A).\n");
  return 0;
}
