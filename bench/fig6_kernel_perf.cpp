// Fig. 6 reproduction: seed-extension kernel performance on equal-length
// synthetic reads, 64–4096 bp, on the simulated GTX1650 and RTX3090.
// Panels: (a)/(c) short lengths 64–512, (b)/(d) long lengths 1024–4096.
//
// Absolute milliseconds are simulated (cost model over counted events);
// the comparisons of interest are the orderings and ratios.
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace saloba;

int main(int argc, char** argv) {
  util::ArgParser args("fig6_kernel_perf", "Fig. 6: kernel performance vs sequence length");
  args.add_string("csv", "also write results to this CSV path", "");
  args.add_flag("quick", "short lengths only (fast smoke run)");
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(8 << 20);
  align::ScoringScheme scoring;

  std::vector<std::size_t> lengths{64, 128, 256, 512, 1024, 2048, 4096};
  if (args.get_flag("quick")) lengths = {64, 128, 256, 512};

  std::vector<std::string> kernels = bench::comparison_kernels();
  kernels.push_back("saloba");

  std::unique_ptr<util::CsvWriter> csv;
  if (!args.get_string("csv").empty()) {
    csv = std::make_unique<util::CsvWriter>(
        args.get_string("csv"),
        std::vector<std::string>{"device", "kernel", "len", "time_ms", "status"});
  }

  for (const auto& spec : bench::paper_devices()) {
    std::printf("=== Fig. 6 — %s, %zu pairs/call (scaled sim batches) ===\n",
                spec.name.c_str(), bench::kNominalPairs);
    std::vector<std::string> header{"Kernel"};
    for (auto len : lengths) header.push_back(std::to_string(len) + " bp");
    util::Table table(header);

    // Keep GASAL2 times to print the SALoBa speedup row afterwards.
    std::vector<double> gasal_ms(lengths.size(), 0.0);
    std::vector<double> saloba_ms(lengths.size(), 0.0);

    for (const auto& kernel : kernels) {
      std::vector<std::string> row{kernel};
      for (std::size_t li = 0; li < lengths.size(); ++li) {
        std::size_t len = lengths[li];
        std::size_t pairs = bench::pairs_for_length(len);
        auto batch = core::make_fig6_batch(genome, len, pairs, /*seed=*/len);
        auto out = bench::run_kernel(kernel, spec, batch, scoring);
        row.push_back(bench::fmt_time_or_failure(out));
        if (csv) {
          csv->add_row({spec.name, kernel, std::to_string(len),
                        out.ok ? util::Table::num(out.time_ms, 4) : "",
                        out.ok ? "ok" : out.failure});
        }
        if (kernel == "gasal2" && out.ok) gasal_ms[li] = out.time_ms;
        if (kernel == "saloba" && out.ok) saloba_ms[li] = out.time_ms;
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());

    std::printf("SALoBa speedup over GASAL2:");
    for (std::size_t li = 0; li < lengths.size(); ++li) {
      if (gasal_ms[li] > 0 && saloba_ms[li] > 0) {
        std::printf("  %zubp: %.2fx", lengths[li], gasal_ms[li] / saloba_ms[li]);
      }
    }
    std::printf("\n\n");
  }
  std::printf(
      "Expected shape (paper Sec. V-B): SALoBa fastest for >=128 bp; NVBIO edges it\n"
      "at 64 bp; SW# slowest throughout; ADEPT fails >1024 bp (structural); NVBIO and\n"
      "SOAP3-dp fail at long lengths (device memory).\n");
  return 0;
}
