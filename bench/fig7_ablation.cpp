// Fig. 7 reproduction: ablation of SALoBa's three techniques, normalised to
// GASAL2 — intra-query parallelism alone, + lazy spilling, + subwarp
// scheduling (= full SALoBa).
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace saloba;

int main(int argc, char** argv) {
  util::ArgParser args("fig7_ablation", "Fig. 7: technique-by-technique ablation");
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(8 << 20);
  align::ScoringScheme scoring;
  const std::vector<std::size_t> lengths{64, 256, 1024, 2048, 4096};
  const std::vector<std::pair<std::string, std::string>> variants{
      {"saloba-intra", "Intra-query Par."},
      {"saloba-lazy", "+Lazy spill."},
      {"saloba", "+Subwarps (SALoBa)"},
  };

  for (const auto& spec : bench::paper_devices()) {
    std::printf("=== Fig. 7 (%s) — speedup normalised to GASAL2 ===\n", spec.name.c_str());
    std::vector<std::string> header{"Variant"};
    for (auto len : lengths) header.push_back(std::to_string(len) + " bp");
    util::Table table(header);

    std::vector<double> gasal(lengths.size());
    for (std::size_t li = 0; li < lengths.size(); ++li) {
      auto batch =
          core::make_fig6_batch(genome, lengths[li], bench::pairs_for_length(lengths[li]),
                                /*seed=*/lengths[li]);
      gasal[li] = bench::run_kernel("gasal2", spec, batch, scoring).time_ms;
    }
    {
      std::vector<std::string> row{"GASAL2 (Baseline)"};
      for (std::size_t li = 0; li < lengths.size(); ++li) row.push_back("1.00x");
      table.add_row(std::move(row));
    }

    std::vector<double> subwarp_speedups_short;
    for (const auto& [kernel, label] : variants) {
      std::vector<std::string> row{label};
      for (std::size_t li = 0; li < lengths.size(); ++li) {
        auto batch =
            core::make_fig6_batch(genome, lengths[li], bench::pairs_for_length(lengths[li]),
                                  /*seed=*/lengths[li]);
        auto out = bench::run_kernel(kernel, spec, batch, scoring);
        double speedup = out.ok ? gasal[li] / out.time_ms : 0.0;
        row.push_back(util::Table::num(speedup, 2) + "x");
        if (kernel == "saloba" && lengths[li] <= 1024) {
          subwarp_speedups_short.push_back(speedup);
        }
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    std::printf("geomean full-SALoBa speedup at <=1024 bp: %.2fx (paper: 2.26x GTX1650 / "
                "2.85x RTX3090)\n\n",
                util::geomean(subwarp_speedups_short));
  }

  std::printf(
      "Expected shape (paper Sec. V-C): subwarp scheduling dominates at short\n"
      "lengths (intra-query alone is below 1.0x there); intra-query parallelism and\n"
      "lazy spilling drive the gains at long lengths; the 64 bp outlier reflects\n"
      "GASAL2's buffer-initialisation overhead, not SALoBa speedup.\n");
  return 0;
}
