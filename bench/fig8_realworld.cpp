// Fig. 8 reproduction: performance on real-world-like workloads.
//  (a) dataset A' (250 bp short reads) — speedup over GASAL2,
//  (b) dataset B' (~2 kbp long reads)  — speedup over GASAL2,
//  (c) sensitivity to subwarp size (8/16/32) on both datasets and devices.
// Extension jobs come from the seed-and-extend pipeline, so batches carry
// the true length imbalance of Fig. 2.
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

using namespace saloba;

namespace {

void speedup_panel(const char* title, const seq::PairBatch& batch,
                   const align::ScoringScheme& scoring) {
  std::vector<std::string> kernels = bench::comparison_kernels();
  kernels.push_back("saloba-sw16");  // the paper's best dataset config
  util::Table table({"Kernel", "GTX1650", "RTX3090"});
  std::vector<double> gasal(2, 0.0);
  auto devices = bench::paper_devices();
  for (std::size_t d = 0; d < devices.size(); ++d) {
    gasal[d] = bench::run_kernel("gasal2", devices[d], batch, scoring).time_ms;
  }
  for (const auto& kernel : kernels) {
    std::vector<std::string> row{kernel == "saloba-sw16" ? "SALoBa" : kernel};
    for (std::size_t d = 0; d < devices.size(); ++d) {
      auto out = bench::run_kernel(kernel, devices[d], batch, scoring);
      row.push_back(out.ok ? util::Table::num(gasal[d] / out.time_ms, 2) + "x"
                           : bench::fmt_time_or_failure(out));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s (speedup over GASAL2; %zu jobs)\n%s\n", title, batch.size(),
              table.render().c_str());
}

void subwarp_panel(const char* dataset, const seq::PairBatch& batch,
                   const align::ScoringScheme& scoring) {
  util::Table table({"Subwarp size", "GTX1650", "RTX3090"});
  auto devices = bench::paper_devices();
  std::vector<double> gasal(2, 0.0);
  for (std::size_t d = 0; d < devices.size(); ++d) {
    gasal[d] = bench::run_kernel("gasal2", devices[d], batch, scoring).time_ms;
  }
  for (const char* cfg : {"saloba-sw8", "saloba-sw16", "saloba-sw32"}) {
    std::vector<std::string> row{std::string(cfg).substr(9)};  // strip "saloba-sw"
    for (std::size_t d = 0; d < devices.size(); ++d) {
      auto out = bench::run_kernel(cfg, devices[d], batch, scoring);
      row.push_back(out.ok ? util::Table::num(gasal[d] / out.time_ms, 2) + "x" : "fail");
    }
    table.add_row(std::move(row));
  }
  std::printf("(c) subwarp sensitivity — %s\n%s\n", dataset, table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("fig8_realworld", "Fig. 8: real-world-like dataset performance");
  args.add_int("genome", "genome length (bases)", 4 << 20);
  args.add_int("reads-a", "reads for dataset A'", 1200);
  args.add_int("reads-b", "reads for dataset B'", 220);
  if (!args.parse(argc, argv)) return 1;

  align::ScoringScheme scoring;
  auto genome = core::make_genome(static_cast<std::size_t>(args.get_int("genome")));
  auto a = core::make_dataset_a(genome, static_cast<std::size_t>(args.get_int("reads-a")));
  auto b = core::make_dataset_b(genome, static_cast<std::size_t>(args.get_int("reads-b")));

  std::printf("Fig. 8 — real-world-like workloads (pipeline extension jobs)\n");
  std::printf("dataset A': %zu jobs, mean q=%.0f r=%.0f, CV(q)=%.2f\n", a.stats.jobs,
              a.stats.mean_query_len, a.stats.mean_ref_len, a.stats.cv_query_len);
  std::printf("dataset B': %zu jobs, mean q=%.0f r=%.0f, CV(q)=%.2f\n\n", b.stats.jobs,
              b.stats.mean_query_len, b.stats.mean_ref_len, b.stats.cv_query_len);

  speedup_panel("(a) dataset A' — short reads", a.batch, scoring);
  speedup_panel("(b) dataset B' — long reads", b.batch, scoring);
  subwarp_panel("dataset A'", a.batch, scoring);
  subwarp_panel("dataset B'", b.batch, scoring);

  std::printf(
      "Expected shape (paper Sec. V-D): SALoBa beats GASAL2 by ~1.2-1.3x on A' and\n"
      "~2x on B' (imbalance favours SALoBa); SOAP3-dp fails A' on GTX1650; ADEPT and\n"
      "NVBIO fail B' (length limits); mid-size subwarps win on imbalanced data.\n");
  return 0;
}
