// Cost-aware LPT across mixed device presets (ROADMAP "Heterogeneous
// lanes"): the same skewed batch partitioned over a gtx1650+rtx3090 pair by
// (a) uniform LPT — every lane treated as equally fast, the pre-weight
// scheduler — and (b) weighted LPT driven by the backend's lane_weight
// hints. Each shard runs on its assigned simulated device; the harness
// reports per-lane busy time, makespan and weighted imbalance for both
// schemes, verifies results stay identical either way, and exits non-zero
// unless weighted LPT strictly beats uniform LPT on makespan.
//
//   $ ./heterogeneous_lanes --pairs=300 --device=gtx1650,rtx3090
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/autotune.hpp"
#include "core/backend.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace saloba;

namespace {

// Bimodal lengths (85% short reads, 15% kbp-scale tail) — the regime where
// an unbalanced partition is expensive enough to see.
seq::PairBatch skewed_batch(std::size_t pairs, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t i = 0; i < pairs; ++i) {
    std::size_t len = rng.bernoulli(0.15) ? 800 + rng.below(1200) : 40 + rng.below(120);
    std::vector<seq::BaseCode> q(len), r(len);
    for (auto& b : q) b = static_cast<seq::BaseCode>(rng.below(4));
    for (auto& b : r) b = static_cast<seq::BaseCode>(rng.below(4));
    batch.add(std::move(q), std::move(r));
  }
  return batch;
}

struct SchemeOutcome {
  std::size_t shards = 0;
  std::vector<double> lane_ms;
  std::vector<align::AlignmentResult> results;
  double makespan_ms = 0.0;
  double imbalance = 0.0;
};

// Partitions the batch with the given lane weights and runs every shard on
// its assigned lane, accumulating per-lane simulated time.
SchemeOutcome run_scheme(core::AlignBackend& backend, const seq::PairBatch& batch,
                         const std::vector<double>& weights, std::size_t max_shard_pairs) {
  SchemeOutcome out;
  out.lane_ms.assign(weights.size(), 0.0);
  out.results.resize(batch.size());
  auto shards = gpusim::make_shards(batch, weights, gpusim::SplitPolicy::kSorted,
                                    max_shard_pairs);
  out.shards = shards.size();
  for (const gpusim::Shard& shard : shards) {
    auto bo = backend.run(shard.batch, shard.lane);
    out.lane_ms[static_cast<std::size_t>(shard.lane)] += bo.time_ms;
    for (std::size_t i = 0; i < shard.indices.size(); ++i) {
      out.results[shard.indices[i]] = bo.results[i];
    }
  }
  double sum = 0.0;
  for (double ms : out.lane_ms) {
    out.makespan_ms = std::max(out.makespan_ms, ms);
    sum += ms;
  }
  out.imbalance =
      sum > 0.0 ? out.makespan_ms / (sum / static_cast<double>(out.lane_ms.size())) : 0.0;
  return out;
}

std::string lane_ms_cell(const std::vector<double>& lane_ms) {
  std::string s;
  for (std::size_t l = 0; l < lane_ms.size(); ++l) {
    if (l) s += " / ";
    s += util::Table::ms(lane_ms[l]);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("heterogeneous_lanes",
                       "weighted vs uniform LPT across mixed device presets");
  args.add_int("pairs", "pairs in the skewed workload", 300);
  args.add_string("kernel", "simulated kernel", "saloba");
  args.add_string("device", "comma-separated preset list", "gtx1650,rtx3090");
  if (!args.parse(argc, argv)) return 1;

  const auto pairs = static_cast<std::size_t>(args.get_int("pairs"));
  auto batch = skewed_batch(pairs, 33);

  core::AlignerOptions opts;
  opts.backend = core::Backend::kSimulated;
  opts.kernel = args.get_string("kernel");
  opts.device = args.get_string("device");
  auto backend = core::make_backend(opts);

  const std::vector<double> weighted = core::lane_weights(*backend);
  const std::vector<double> uniform(weighted.size(), 1.0);
  // Same shard cap for both schemes (the weight-aware autotuner's pick), so
  // the comparison isolates the lane-assignment policy.
  const std::size_t cap = core::recommend_scheduler(core::stats_of(batch), weighted)
                              .max_shard_pairs;

  auto uni = run_scheme(*backend, batch, uniform, cap);
  auto wei = run_scheme(*backend, batch, weighted, cap);
  const bool identical = uni.results == wei.results;
  const bool faster = wei.makespan_ms < uni.makespan_ms;

  std::printf("=== heterogeneous_lanes — %zu pairs, %s, shard cap %zu ===\n", pairs,
              backend->name().c_str(), cap);
  std::printf("lane weights:");
  for (double w : weighted) std::printf(" %.2f", w);
  std::printf("  (relative throughput, slowest lane = 1)\n\n");

  util::Table table({"scheme", "shards", "per-lane ms", "makespan", "imbalance"});
  table.add_row({"uniform LPT", std::to_string(uni.shards), lane_ms_cell(uni.lane_ms),
                 util::Table::ms(uni.makespan_ms), util::Table::num(uni.imbalance, 2)});
  table.add_row({"weighted LPT", std::to_string(wei.shards), lane_ms_cell(wei.lane_ms),
                 util::Table::ms(wei.makespan_ms), util::Table::num(wei.imbalance, 2)});
  std::printf("%s\n", table.render().c_str());
  std::printf("weighted vs uniform makespan: %.2fx %s; results identical: %s\n",
              uni.makespan_ms > 0 ? uni.makespan_ms / wei.makespan_ms : 0.0,
              faster ? "faster" : "NOT FASTER", identical ? "yes" : "NO");
  return faster && identical ? 0 : 1;
}
