// Shared-index cold-start amortization bench — the asserting harness CI runs
// as `index_amortization --quick`. Builds a chromosome-scale k-mer index,
// serializes it, and enforces the shared-index layer's two headline claims
// with measured numbers:
//
//   1. Amortization: a fresh mmap load (validate-and-adopt, payload checksum
//      included) costs <= 5% of the cold build+save — every warm tenant gets
//      the index >= 20x cheaper than rebuilding it.
//   2. Parity + bit-identity: mapping simulated reads through the
//      mmap-backed and reference-sharded seeding paths produces mappings
//      bit-identical to the in-memory monolithic index; the mmap path at
//      throughput parity (the zero-copy spans are the same arrays), the
//      sharded path within a bounded overhead (one binary search per shard
//      per lookup — the price of scaling past the 32-bit position limit).
//
// Emits BENCH_index.json. Any violation exits 1.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/aligner.hpp"
#include "seedext/pipeline.hpp"
#include "seedext/shared_index.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace saloba;

namespace {

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

bool same_mappings(const std::vector<seedext::ReadMapping>& a,
                   const std::vector<seedext::ReadMapping>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].mapped != b[i].mapped || a[i].ref_pos != b[i].ref_pos ||
        a[i].reverse_strand != b[i].reverse_strand || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

/// Best mapping throughput (reads/s) over `repeats` runs — best-of damps
/// scheduler noise the same way the ablation harnesses do.
double best_reads_per_sec(const seedext::ReadMapper& mapper,
                          const std::vector<std::vector<seq::BaseCode>>& reads,
                          const seedext::BatchExtender& extend, int repeats,
                          std::vector<seedext::ReadMapping>* out = nullptr) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    util::Timer timer;
    auto mappings = mapper.map_batch(reads, extend);
    double secs = timer.seconds();
    if (secs > 0) best = std::max(best, static_cast<double>(reads.size()) / secs);
    if (out && r == 0) *out = std::move(mappings);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("index_amortization",
                       "shared-index cold build vs mmap load amortization + "
                       "mapping parity of the mmap/sharded paths");
  args.add_int("bases", "reference length in bases", 8 << 20);
  args.add_int("reads", "simulated reads to map", 1500);
  args.add_int("shards", "reference shards for the sharded path", 4);
  args.add_int("k", "k-mer length", 16);
  args.add_flag("quick", "CI smoke mode: 2 Mbp reference, fewer reads");
  if (!args.parse(argc, argv)) return 1;

  const bool quick = args.get_flag("quick");
  const std::size_t bases =
      quick ? (2 << 20) : static_cast<std::size_t>(std::max<std::int64_t>(args.get_int("bases"), 1 << 20));
  const std::size_t n_reads =
      quick ? 400 : static_cast<std::size_t>(std::max<std::int64_t>(args.get_int("reads"), 100));
  const std::size_t shards = static_cast<std::size_t>(std::max<std::int64_t>(args.get_int("shards"), 2));
  const int k = static_cast<int>(args.get_int("k"));

  seq::GenomeParams gp;
  gp.length = bases;
  gp.repeat_fraction = 0.05;
  gp.n_fraction = 0.001;
  const auto genome = seq::generate_genome(gp);

  const std::string path =
      (std::filesystem::temp_directory_path() / "saloba_bench_index.idx").string();
  std::filesystem::remove(path);
  const seedext::IndexOptions options{k, /*kmer=*/true, /*fm=*/false};

  // --- 1. Cold build(+save) vs fresh mmap load, registry bypassed. --------
  util::Timer timer;
  auto built = seedext::SharedIndex::build(genome, options);
  const double build_ms = timer.millis();
  timer.reset();
  seedext::write_shared_index(path, genome, k, &built->kmer(), nullptr);
  const double save_ms = timer.millis();

  double load_ms = 1e30;  // best of 3: each load re-validates the checksum
  for (int r = 0; r < 3; ++r) {
    timer.reset();
    auto loaded = seedext::SharedIndex::load(path, genome, options);
    load_ms = std::min(load_ms, timer.millis());
    if (loaded->kmer().indexed_positions() != built->kmer().indexed_positions()) {
      std::printf("FAIL: loaded index disagrees with the built one\n");
      return 1;
    }
  }
  const double cold_ms = build_ms + save_ms;
  const double amortization = load_ms > 0 ? cold_ms / load_ms : 1e9;

  // --- 2. Mapping parity: in-memory vs mmap vs sharded. -------------------
  seq::ReadProfile profile = seq::ReadProfile::equal_length(150);
  profile.mutation_rate = 0.01;
  seq::ReadSimulator sim(genome, profile, 29);
  std::vector<std::vector<seq::BaseCode>> reads;
  for (auto& r : sim.simulate(n_reads)) reads.push_back(std::move(r.read.bases));

  core::Aligner aligner{core::AlignerOptions{}};
  const auto extend = aligner.batch_extender();
  const int repeats = quick ? 2 : 3;

  seedext::MapperParams plain_params;
  plain_params.k = k;
  seedext::ReadMapper plain(genome, plain_params);
  std::vector<seedext::ReadMapping> plain_map;
  const double plain_rps = best_reads_per_sec(plain, reads, extend, repeats, &plain_map);

  seedext::MapperParams mmap_params = plain_params;
  mmap_params.index_path = path;
  seedext::ReadMapper mmapped(genome, mmap_params);
  std::vector<seedext::ReadMapping> mmap_map;
  const double mmap_rps = best_reads_per_sec(mmapped, reads, extend, repeats, &mmap_map);

  seedext::MapperParams shard_params = plain_params;
  shard_params.index_shards = shards;
  shard_params.index_lane_weights = {2.0, 1.0};
  seedext::ReadMapper sharded(genome, shard_params);
  std::vector<seedext::ReadMapping> shard_map;
  const double shard_rps = best_reads_per_sec(sharded, reads, extend, repeats, &shard_map);

  std::size_t mapped = 0;
  for (const auto& m : plain_map) mapped += m.mapped;

  std::printf("index_amortization — %zu bp reference, k=%d, %zu reads, %zu shards\n",
              genome.size(), k, reads.size(), shards);
  util::Table table({"Metric", "Value"});
  table.add_row({"cold build", util::Table::ms(build_ms)});
  table.add_row({"save", util::Table::ms(save_ms)});
  table.add_row({"mmap load (best of 3)", util::Table::ms(load_ms)});
  table.add_row({"amortization", util::Table::num(amortization, 1) + "x"});
  table.add_row({"indexed positions", std::to_string(built->kmer().indexed_positions())});
  table.add_row({"reads mapped", std::to_string(mapped) + " / " + std::to_string(reads.size())});
  table.add_row({"in-memory throughput", util::Table::num(plain_rps, 0) + " reads/s"});
  table.add_row({"mmap throughput", util::Table::num(mmap_rps, 0) + " reads/s"});
  table.add_row({"sharded throughput", util::Table::num(shard_rps, 0) + " reads/s"});
  std::printf("%s\n", table.render().c_str());

  bool ok = true;
  ok &= check(load_ms <= 0.05 * cold_ms,
              "mmap load <= 5% of cold build+save (>= 20x amortization)");
  ok &= check(mapped > reads.size() / 2, "majority of simulated reads map");
  ok &= check(same_mappings(plain_map, mmap_map),
              "mmap-backed mappings bit-identical to in-memory");
  ok &= check(same_mappings(plain_map, shard_map),
              "sharded mappings bit-identical to in-memory");
  ok &= check(mmap_rps >= 0.7 * plain_rps,
              "mmap mapping throughput within 30% of in-memory (parity)");
  // Sharding trades per-lookup cost (one binary search per shard — every
  // shard can hold a given k-mer) for references beyond the 32-bit position
  // limit; its claim is bit-identity plus bounded overhead, not parity.
  ok &= check(shard_rps >= 0.25 * plain_rps,
              "sharded mapping overhead bounded (>= 0.25x in-memory)");

  if (std::FILE* f = std::fopen("BENCH_index.json", "w")) {
    std::fprintf(f,
                 "{\"bench\":\"index_amortization\",\"bases\":%zu,\"k\":%d,"
                 "\"reads\":%zu,\"shards\":%zu,\"build_ms\":%.3f,\"save_ms\":%.3f,"
                 "\"load_ms\":%.3f,\"amortization\":%.1f,\"mapped\":%zu,"
                 "\"plain_reads_per_s\":%.1f,\"mmap_reads_per_s\":%.1f,"
                 "\"sharded_reads_per_s\":%.1f,\"ok\":%s}\n",
                 genome.size(), k, reads.size(), shards, build_ms, save_ms, load_ms,
                 amortization, mapped, plain_rps, mmap_rps, shard_rps,
                 ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_index.json\n");
  }

  std::filesystem::remove(path);
  return ok ? 0 : 1;
}
