// Ultra-long-read X-drop wavefront bench — the asserting harness CI runs as
// `longread_xdrop --quick`. Aligns one 100 kbp+ pair end to end (forward
// masked wavefront + Myers-Miller traceback) and enforces the engine's two
// headline claims with *measured* numbers:
//
//   1. Linear memory: the engine's measured peak heap footprint
//      (WavefrontStats::peak_bytes, container capacities at every phase
//      boundary — not a model) stays under an O(N + M) ceiling.
//   2. X-drop pruning: the forward sweep computes a small fraction of the
//      full N·M table on a related pair.
//
// It also extends the ablation_spill axis to the long-read regime: a full
// Smith-Waterman table would hold 12·N·M bytes of H/E/F state — the DP
// matrix a GPU kernel spills to global memory — so the modeled spill win of
// the wavefront is that table over the measured linear footprint. Emits
// BENCH_longread.json. Any violation exits 1.
#include <algorithm>
#include <cstdio>

#include "align/traceback.hpp"
#include "align/xdrop_wavefront.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace saloba;

namespace {

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("longread_xdrop",
                       "ultra-long-read X-drop wavefront: measured linear memory + "
                       "modeled spill win");
  args.add_int("len", "pair length in bases", 150000);
  args.add_int("xdrop", "X-drop threshold for the sweep", 400);
  args.add_flag("quick", "CI smoke mode: 100 kbp pair, tighter window");
  if (!args.parse(argc, argv)) return 1;

  const bool quick = args.get_flag("quick");
  const std::size_t len =
      quick ? 100000
            : static_cast<std::size_t>(std::max<std::int64_t>(args.get_int("len"), 100000));
  const align::Score xdrop =
      quick ? 120 : static_cast<align::Score>(args.get_int("xdrop"));

  // One related 100 kbp+ pair (~0.5% divergence — the regime the route is
  // for: a long read against its true genomic window).
  const auto genome = core::make_genome(4 << 20);
  const auto batch = core::make_fig6_batch(genome, len, /*pairs=*/1, /*seed=*/71);
  const auto& ref = batch.refs[0];
  const auto& query = batch.queries[0];
  const std::size_t n = ref.size(), m = query.size();
  const align::ScoringScheme scoring;

  align::WavefrontStats stats;
  const util::Timer timer;
  const auto traced =
      align::xdrop_wavefront_align(ref, query, scoring, align::XDropParams{xdrop}, &stats);
  const double wall_ms = timer.millis();

  const std::size_t total_cells = stats.cells + stats.traceback_cells;
  const double gcups = wall_ms > 0 ? static_cast<double>(total_cells) / (wall_ms * 1e6) : 0;

  // The linear-memory ceiling: a small constant of int32 state per diagonal
  // slot across all phases (7 diagonal buffers + masks + rolling rows +
  // divide-and-conquer arrays), plus allocator slack. Same bound the fuzz
  // suite holds every engine run to.
  const std::size_t linear_ceiling = 128 * (n + m + 2) + 4096;
  // What a full-matrix engine would spill: H/E/F as int32 over N·M — the DP
  // state a GPU kernel without the lazy-spill/wavefront machinery writes to
  // global memory (ablation_spill's axis, at long-read scale).
  const double full_matrix_bytes = 12.0 * static_cast<double>(n) * static_cast<double>(m);
  const double spill_win = full_matrix_bytes / static_cast<double>(stats.peak_bytes);
  const double prune_frac =
      static_cast<double>(stats.cells) / (static_cast<double>(n) * static_cast<double>(m));

  std::printf("longread_xdrop — %zu x %zu bp pair, xdrop=%d\n", n, m, int(xdrop));
  util::Table table({"Metric", "Value"});
  table.add_row({"forward cells", std::to_string(stats.cells)});
  table.add_row({"traceback cells", std::to_string(stats.traceback_cells)});
  table.add_row({"diagonals", std::to_string(stats.diagonals)});
  table.add_row({"max wavefront", std::to_string(stats.max_wavefront)});
  table.add_row({"peak memory (measured)", std::to_string(stats.peak_bytes) + " B"});
  table.add_row({"O(N+M) ceiling", std::to_string(linear_ceiling) + " B"});
  table.add_row({"full-matrix spill (modeled)",
                 util::Table::num(full_matrix_bytes / 1e9, 2) + " GB"});
  table.add_row({"spill win", util::Table::num(spill_win, 0) + "x"});
  table.add_row({"table fraction computed", util::Table::num(prune_frac * 100, 3) + " %"});
  table.add_row({"wall", util::Table::ms(wall_ms)});
  table.add_row({"throughput", util::Table::num(gcups, 3) + " GCUPS"});
  std::printf("%s\n", table.render().c_str());

  bool ok = true;
  ok &= check(n >= 100000 && m >= 100000, "pair is 100 kbp+ on both sides");
  ok &= check(stats.peak_bytes <= linear_ceiling,
              "measured peak memory within the O(N+M) ceiling");
  ok &= check(static_cast<double>(stats.peak_bytes) <
                  static_cast<double>(n) * static_cast<double>(m) / 100.0,
              "measured peak memory < 1% of the N*M table");
  ok &= check(traced.end.score > 0, "alignment found (score > 0)");
  ok &= check(align::cigar_consistent(traced, n, m), "CIGAR consistent with the pair");
  ok &= check(align::rescore_cigar(traced, ref, query, scoring) == traced.end.score,
              "CIGAR rescores to the reported score");
  ok &= check(prune_frac < 0.05, "X-drop computed < 5% of the full table");
  ok &= check(spill_win >= 100.0, ">= 100x modeled spill win over a full-matrix engine");

  if (std::FILE* f = std::fopen("BENCH_longread.json", "w")) {
    std::fprintf(f,
                 "{\"bench\":\"longread_xdrop\",\"ref_len\":%zu,\"query_len\":%zu,"
                 "\"xdrop\":%d,\"forward_cells\":%zu,\"traceback_cells\":%zu,"
                 "\"max_wavefront\":%zu,\"peak_bytes\":%zu,\"linear_ceiling_bytes\":%zu,"
                 "\"full_matrix_bytes\":%.0f,\"spill_win\":%.1f,\"table_fraction\":%.5f,"
                 "\"score\":%d,\"wall_ms\":%.3f,\"gcups\":%.3f,\"ok\":%s}\n",
                 n, m, int(xdrop), stats.cells, stats.traceback_cells,
                 stats.max_wavefront, stats.peak_bytes, linear_ceiling,
                 full_matrix_bytes, spill_win, prune_frac, int(traced.end.score),
                 wall_ms, gcups, ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_longread.json\n");
  }

  return ok ? 0 : 1;
}
