// google-benchmark microbenches for the host-side substrate: these measure
// real wall time of the CPU components (the simulated-kernel figures use the
// cost model instead).
#include <benchmark/benchmark.h>

#include "align/sw_reference.hpp"
#include "align/sw_banded.hpp"
#include "align/batch.hpp"
#include "core/workload.hpp"
#include "kernels/block_dp.hpp"
#include "seedext/fm_index.hpp"
#include "seedext/kmer_index.hpp"
#include "seedext/suffix_array.hpp"
#include "seq/packed_seq.hpp"
#include "util/rng.hpp"

namespace {

using namespace saloba;

std::vector<seq::BaseCode> random_seq(std::size_t len, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<seq::BaseCode> out(len);
  for (auto& b : out) b = static_cast<seq::BaseCode>(rng.below(4));
  return out;
}

void BM_SmithWatermanScalar(benchmark::State& state) {
  auto len = static_cast<std::size_t>(state.range(0));
  auto ref = random_seq(len, 1);
  auto query = random_seq(len, 2);
  align::ScoringScheme s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::smith_waterman(ref, query, s));
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(len) * static_cast<double>(len) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_SmithWatermanScalar)->Arg(128)->Arg(512)->Arg(2048);

void BM_SmithWatermanBanded(benchmark::State& state) {
  auto ref = random_seq(2048, 3);
  auto query = random_seq(2048, 4);
  align::ScoringScheme s;
  auto band = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::smith_waterman_banded(ref, query, s, band));
  }
}
BENCHMARK(BM_SmithWatermanBanded)->Arg(32)->Arg(128)->Arg(512);

void BM_BlockDp8x8(benchmark::State& state) {
  auto ref = random_seq(8, 5);
  auto query = random_seq(8, 6);
  align::ScoringScheme s;
  auto bound = kernels::BlockBoundary::table_edge();
  kernels::BlockOutput out;
  for (auto _ : state) {
    kernels::block_dp(ref.data(), query.data(), 8, 8, 0, 0, bound, s, out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["cells/s"] = benchmark::Counter(
      64.0 * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BlockDp8x8);

void BM_BatchAlignOpenMp(benchmark::State& state) {
  auto genome = core::make_genome(1 << 20);
  auto batch = core::make_fig6_batch(genome, 256, 256);
  align::ScoringScheme s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::align_batch(batch, s));
  }
  state.counters["GCUPS"] = benchmark::Counter(
      static_cast<double>(batch.total_cells()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(BM_BatchAlignOpenMp);

void BM_Pack4Bit(benchmark::State& state) {
  auto data = random_seq(1 << 16, 7);
  for (auto _ : state) {
    seq::PackedSeq packed(data, seq::Packing::k4Bit);
    benchmark::DoNotOptimize(packed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * (1 << 16));
}
BENCHMARK(BM_Pack4Bit);

void BM_SuffixArray(benchmark::State& state) {
  auto text = random_seq(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seedext::build_suffix_array(text));
  }
}
BENCHMARK(BM_SuffixArray)->Arg(1 << 14)->Arg(1 << 18);

void BM_FmIndexSearch(benchmark::State& state) {
  auto text = random_seq(1 << 18, 9);
  seedext::FmIndex index(text);
  util::Xoshiro256 rng(10);
  for (auto _ : state) {
    std::size_t pos = rng.below(text.size() - 24);
    std::span<const seq::BaseCode> pattern(text.data() + pos, 24);
    benchmark::DoNotOptimize(index.count(pattern));
  }
}
BENCHMARK(BM_FmIndexSearch);

void BM_KmerLookup(benchmark::State& state) {
  auto text = random_seq(1 << 20, 11);
  seedext::KmerIndex index(text, 16);
  util::Xoshiro256 rng(12);
  for (auto _ : state) {
    std::size_t pos = rng.below(text.size() - 16);
    std::span<const seq::BaseCode> kmer(text.data() + pos, 16);
    benchmark::DoNotOptimize(index.lookup(kmer));
  }
}
BENCHMARK(BM_KmerLookup);

}  // namespace
