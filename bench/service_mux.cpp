// Multi-tenant service multiplexing bench: many bursty clients sharing one
// core::AlignService versus the same total workload pumped through a
// single-stream StreamAligner. Asserts the properties the service layer
// promises (exit code 1 on any failure):
//   - aggregate GCUPS within 95% of the single-stream baseline — continuous
//     batching across tenants keeps the lanes as full as one big client;
//   - every client's results bit-identical to its standalone Aligner run;
//   - per-tenant p99 latency bounded by what the admission/in-flight caps
//     allow to sit ahead of a pair (backpressure keeps tails finite);
//   - weighted fair sharing: a weight-3 tenant drains ~3x faster than a
//     weight-1 tenant contending for the same saturated CPU backend.
// Emits BENCH_service.json.
//
//   $ ./service_mux --quick
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/align_service.hpp"
#include "core/aligner.hpp"
#include "core/stream_aligner.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace saloba;

namespace {

// Bimodal lengths (85% short reads, 15% kbp-scale tail) — the skewed regime
// of dataset B', per client.
seq::PairBatch skewed_batch(std::size_t pairs, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t i = 0; i < pairs; ++i) {
    std::size_t len = rng.bernoulli(0.15) ? 600 + rng.below(900) : 40 + rng.below(120);
    std::vector<seq::BaseCode> q(len), r(len);
    for (auto& b : q) b = static_cast<seq::BaseCode>(rng.below(4));
    for (auto& b : r) b = static_cast<seq::BaseCode>(rng.below(4));
    batch.add(std::move(q), std::move(r));
  }
  return batch;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("service_mux",
                       "multi-tenant AlignService vs single-stream baseline");
  args.add_int("clients", "concurrent bursty clients", 8);
  args.add_int("pairs", "pairs per client", 384);
  args.add_int("batch", "merged-batch target in pairs", 64);
  args.add_string("kernel", "simulated kernel", "saloba");
  args.add_string("device", "simulated device preset", "gtx1650");
  args.add_flag("quick", "smaller workload (CI smoke run)");
  if (!args.parse(argc, argv)) return 1;

  const bool quick = args.get_flag("quick");
  const std::size_t n_clients =
      quick ? 4 : static_cast<std::size_t>(args.get_int("clients"));
  const std::size_t per_client =
      quick ? 128 : static_cast<std::size_t>(args.get_int("pairs"));
  const std::size_t batch_pairs = static_cast<std::size_t>(args.get_int("batch"));

  core::AlignerOptions opts;
  opts.backend = core::Backend::kSimulated;
  opts.kernel = args.get_string("kernel");
  opts.device = args.get_string("device");

  // --- 1. Single-stream baseline: the union workload, one big client. ----
  std::vector<seq::PairBatch> client_batches;
  seq::PairBatch all;
  for (std::size_t c = 0; c < n_clients; ++c) {
    client_batches.push_back(skewed_batch(per_client, 33 + c));
    for (std::size_t i = 0; i < client_batches[c].size(); ++i) {
      all.add(client_batches[c].queries[i], client_batches[c].refs[i]);
    }
  }
  core::StreamOptions stream;
  stream.chunk_pairs = batch_pairs;
  core::StreamAligner streamer(opts, stream);
  auto baseline = streamer.align_streamed(all);

  // --- 2. The same pairs as bursty concurrent tenants. -------------------
  core::ServiceOptions svc;
  svc.batch_pairs = batch_pairs;
  svc.max_queued_pairs_per_session = 256;  // admission cap: the p99 lever
  svc.max_inflight_batches = 4;
  core::AlignService service(opts, svc);

  std::vector<std::vector<align::AlignmentResult>> results(n_clients);
  util::Timer wall;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      core::SessionId id = service.open();
      // Bursty producer: two merged batches worth per burst, a breather
      // between bursts — arrivals, not one resident submission.
      std::thread producer([&, id] {
        const seq::PairBatch& mine = client_batches[c];
        const std::size_t burst = 2 * batch_pairs;
        for (std::size_t at = 0; at < mine.size(); at += burst) {
          seq::PairBatch chunk;
          for (std::size_t i = at; i < std::min(at + burst, mine.size()); ++i) {
            chunk.add(mine.queries[i], mine.refs[i]);
          }
          if (!service.submit(id, std::move(chunk))) return;
          std::this_thread::sleep_for(std::chrono::microseconds(200 * (c % 3)));
        }
        service.finish(id);
      });
      while (auto span = service.poll(id)) {
        results[c].insert(results[c].end(), span->results.begin(), span->results.end());
      }
      producer.join();
    });
  }
  for (auto& t : clients) t.join();
  double mux_wall_ms = wall.millis();
  auto stats = service.stats();

  // --- 3. The promised properties. ---------------------------------------
  bool ok = true;

  std::size_t identical = 0, total = 0;
  for (std::size_t c = 0; c < n_clients; ++c) {
    auto expected = core::Aligner(opts).align(client_batches[c]).results;
    total += expected.size();
    if (results[c] == expected) identical += expected.size();
  }
  ok &= check(identical == total, "every tenant bit-identical to its standalone run");

  const double gcups_ratio =
      baseline.gcups > 0 ? stats.gcups / baseline.gcups : 0.0;
  ok &= check(gcups_ratio >= 0.95, "aggregate GCUPS >= 95% of single-stream baseline");

  // No pair can have more than every session's admitted backlog plus the
  // in-flight batches ahead of it; allow 4x that drain time plus scheduling
  // slack before calling a tail unbounded.
  const double drain_ms_per_pair =
      stats.pairs > 0 ? stats.batch_wall_ms / static_cast<double>(stats.pairs) : 0.0;
  const double queueable_pairs =
      static_cast<double>(n_clients * svc.max_queued_pairs_per_session +
                          svc.max_inflight_batches * batch_pairs);
  const double p99_bound_ms = 4.0 * queueable_pairs * drain_ms_per_pair + 50.0;
  double p99_max = 0.0;
  for (const auto& [id, ss] : stats.session_stats) {
    p99_max = std::max(p99_max, ss.p99_latency_ms);
  }
  ok &= check(p99_max <= p99_bound_ms, "p99 latency bounded by the backpressure caps");

  // --- 4. Weighted fairness on a saturated CPU backend. ------------------
  // Equal backlogs, weights 3:1; when the heavy tenant drains, the light
  // one should have completed roughly a third as much.
  core::AlignerOptions cpu_opts;
  core::ServiceOptions fair_svc;
  fair_svc.batch_pairs = 16;
  fair_svc.max_inflight_batches = 1;
  core::AlignService fair(cpu_opts, fair_svc);
  const std::size_t fair_n = quick ? 192 : 384;
  core::SessionId blocker = fair.open();
  // Occupy the worker + in-flight slot so both backlogs are staged before
  // any fair decision is made (see align_service_test for the mechanics).
  seq::PairBatch plug = skewed_batch(0, 1);
  for (std::size_t i = 0; i < 3 * fair_svc.batch_pairs; ++i) {
    plug.add(std::vector<seq::BaseCode>(1200, 0), std::vector<seq::BaseCode>(1200, 1));
  }
  fair.submit(blocker, std::move(plug));
  fair.finish(blocker);
  core::SessionOptions heavy_opts;
  heavy_opts.weight = 3.0;
  core::SessionId heavy = fair.open(heavy_opts);
  core::SessionId light = fair.open();
  auto heavy_work = skewed_batch(fair_n, 91);
  auto light_work = skewed_batch(fair_n, 92);
  fair.submit(heavy, heavy_work);
  fair.submit(light, light_work);
  fair.finish(heavy);
  fair.finish(light);
  while (fair.poll(heavy)) {
  }
  auto light_at_drain = fair.session_stats(light);
  const double fairness_ratio =
      light_at_drain.completed_pairs > 0
          ? static_cast<double>(fair_n) /
                static_cast<double>(light_at_drain.completed_pairs)
          : 0.0;
  ok &= check(fairness_ratio >= 1.6 && light_at_drain.completed_pairs >= fair_n / 8,
              "weight-3 tenant drains ~3x a weight-1 tenant (never starving it)");
  while (fair.poll(light)) {
  }
  while (fair.poll(blocker)) {
  }

  // --- 5. Report. --------------------------------------------------------
  util::Table table({"mode", "pairs", "batches", "align ms", "gcups", "wall ms"});
  table.add_row({"single-stream", std::to_string(all.size()), "-",
                 util::Table::ms(baseline.time_ms), util::Table::num(baseline.gcups),
                 "-"});
  table.add_row({"service mux", std::to_string(stats.pairs),
                 std::to_string(stats.batches), util::Table::ms(stats.align_ms),
                 util::Table::num(stats.gcups), util::Table::ms(mux_wall_ms)});
  std::printf("=== service_mux — %zu clients x %zu pairs, %s@%s, batch %zu ===\n%s",
              n_clients, per_client, opts.kernel.c_str(), opts.device.c_str(),
              batch_pairs, table.render().c_str());
  std::printf("gcups ratio %.3f, p99 max %.2f ms (bound %.2f ms), fairness ratio %.2f "
              "(light tenant %zu/%zu done at heavy drain)\n",
              gcups_ratio, p99_max, p99_bound_ms, fairness_ratio,
              light_at_drain.completed_pairs, fair_n);

  if (std::FILE* f = std::fopen("BENCH_service.json", "w")) {
    std::fprintf(f,
                 "{\"bench\":\"service_mux\",\"clients\":%zu,\"pairs\":%zu,"
                 "\"cells\":%zu,\"batches\":%zu,\"service_gcups\":%.3f,"
                 "\"stream_gcups\":%.3f,\"gcups_ratio\":%.3f,\"p99_ms_max\":%.3f,"
                 "\"p99_bound_ms\":%.3f,\"fairness_ratio\":%.3f,\"wall_ms\":%.3f,"
                 "\"identical\":%s}\n",
                 n_clients, stats.pairs, stats.cells, stats.batches, stats.gcups,
                 baseline.gcups, gcups_ratio, p99_max, p99_bound_ms, fairness_ratio,
                 mux_wall_ms, identical == total ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_service.json\n");
  }

  return ok ? 0 : 1;
}
