// Resident vs streamed throughput on a skewed length distribution: the
// whole batch through Aligner::align in one call, against the same pairs
// pumped through StreamAligner at several chunk sizes. Streaming trades a
// bounded memory footprint (chunk x queue pairs resident instead of all of
// them) for chunk-granular scheduling; this harness reports what that
// costs — align time, gcups, host wall time — and verifies the results
// stay bit-identical along the way.
//
//   $ ./stream_throughput --pairs=400 --quick
#include <cstdio>

#include "bench_common.hpp"
#include "core/stream_aligner.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace saloba;

namespace {

// Bimodal lengths (85% short reads, 15% kbp-scale tail) — the imbalance
// regime of dataset B' where chunk scheduling has to work for its living.
seq::PairBatch skewed_batch(std::size_t pairs, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t i = 0; i < pairs; ++i) {
    std::size_t len = rng.bernoulli(0.15) ? 800 + rng.below(1200) : 40 + rng.below(120);
    std::vector<seq::BaseCode> q(len), r(len);
    for (auto& b : q) b = static_cast<seq::BaseCode>(rng.below(4));
    for (auto& b : r) b = static_cast<seq::BaseCode>(rng.below(4));
    batch.add(std::move(q), std::move(r));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("stream_throughput",
                       "resident vs streamed alignment on a skewed length distribution");
  args.add_int("pairs", "pairs in the workload", 400);
  args.add_int("queue", "in-flight chunk budget", 4);
  args.add_string("kernel", "simulated kernel", "saloba");
  args.add_string("device", "simulated device preset", "gtx1650");
  args.add_flag("quick", "single chunk size (fast smoke run)");
  if (!args.parse(argc, argv)) return 1;

  const auto pairs = static_cast<std::size_t>(args.get_int("pairs"));
  auto batch = skewed_batch(pairs, 21);

  core::AlignerOptions opts;
  opts.backend = core::Backend::kSimulated;
  opts.kernel = args.get_string("kernel");
  opts.device = args.get_string("device");

  // Resident baseline: everything in memory, one scheduler call.
  util::Timer timer;
  auto resident = core::Aligner(opts).align(batch);
  double resident_wall = timer.millis();

  util::Table table({"mode", "chunk", "align ms", "gcups", "wall ms", "peak pairs",
                     "identical"});
  table.add_row({"resident", "-", util::Table::ms(resident.time_ms),
                 util::Table::num(resident.gcups), util::Table::ms(resident_wall),
                 std::to_string(batch.size()), "-"});

  std::vector<std::size_t> chunk_sizes{32, 64, 128};
  if (args.get_flag("quick")) chunk_sizes = {64};

  int failures = 0;
  for (std::size_t chunk : chunk_sizes) {
    core::StreamOptions stream;
    stream.chunk_pairs = chunk;
    stream.queue_capacity = static_cast<std::size_t>(args.get_int("queue"));
    core::StreamAligner streamer(opts, stream);

    timer.reset();
    core::ResidentChunkSource source(batch, chunk);
    std::size_t identical = 0, cursor = 0;
    auto stats = streamer.run(
        source, [&](std::size_t, std::size_t first_pair, core::AlignOutput&& out) {
          for (std::size_t i = 0; i < out.results.size(); ++i) {
            identical += out.results[i] == resident.results[first_pair + i] ? 1u : 0u;
          }
          cursor = first_pair + out.results.size();
        });
    double wall = timer.millis();
    bool ok = identical == batch.size() && cursor == batch.size();
    failures += ok ? 0 : 1;

    table.add_row({"streamed", std::to_string(chunk), util::Table::ms(stats.align_ms),
                   util::Table::num(stats.gcups), util::Table::ms(wall),
                   std::to_string(stats.peak_resident_pairs), ok ? "yes" : "NO"});
  }

  std::printf("=== stream_throughput — %zu pairs, %s@%s, queue %lld ===\n%s", pairs,
              opts.kernel.c_str(), opts.device.c_str(),
              static_cast<long long>(args.get_int("queue")), table.render().c_str());
  std::printf("streamed footprint bound: chunk x queue pairs resident; resident mode "
              "holds all %zu pairs.\n",
              batch.size());
  return failures == 0 ? 0 : 1;
}
