// Table I reproduction: "Amount of Data Stored and Accessed for the Existing
// GPU Aligner".
//
// Paper formulas (per pair, sequence length N, units of bytes):
//   Necessary                 2N bases (4-bit packed -> N bytes)
//   Stored                    2N + N^2/4   (inputs + strip boundary cells)
//   Accessed (until Pascal)   128N + 16N^2 (128 B per transaction)
//   Accessed (after Volta)    32N  + 4N^2  (32 B per transaction)
//
// We print those formulas next to *measured* counters from the GASAL2-like
// kernel on a P100 (128 B) and a V100 (32 B) simulated device.
#include <cstdio>

#include "bench_common.hpp"
#include "core/workload.hpp"
#include "util/table.hpp"

using namespace saloba;

int main() {
  const std::size_t kLen = 256;
  const std::size_t kPairs = 64;
  auto genome = core::make_genome(1 << 20);
  auto batch = core::make_fig6_batch(genome, kLen, kPairs);
  align::ScoringScheme scoring;

  auto pascal = bench::run_kernel("gasal2", gpusim::DeviceSpec::pascal_p100(), batch, scoring,
                                  kPairs);
  auto volta =
      bench::run_kernel("gasal2", gpusim::DeviceSpec::volta_v100(), batch, scoring, kPairs);
  if (!pascal.ok || !volta.ok) {
    std::fprintf(stderr, "unexpected kernel failure\n");
    return 1;
  }

  const double n = static_cast<double>(kLen);
  auto per_pair = [&](std::uint64_t total) {
    return static_cast<double>(total) / static_cast<double>(kPairs);
  };

  util::Table table({"Data", "Paper formula (B)", "Measured (B/pair)", "Notes"});
  table.add_row({"Necessary", util::Table::num(2 * n, 0), util::Table::num(2 * n, 0),
                 "packed inputs, 4-bit = N/8 words each"});
  table.add_row({"Stored", util::Table::num(2 * n + n * n / 4, 0),
                 util::Table::num(per_pair(volta.stats.totals.global_bytes_useful), 0),
                 "useful bytes incl. boundary-row reload"});
  table.add_row({"Accessed (until Pascal)", util::Table::num(128 * n + 16 * n * n, 0),
                 util::Table::num(per_pair(pascal.stats.totals.global_bytes_moved), 0),
                 "128 B transactions (P100)"});
  table.add_row({"Accessed (after Volta)", util::Table::num(32 * n + 4 * n * n, 0),
                 util::Table::num(per_pair(volta.stats.totals.global_bytes_moved), 0),
                 "32 B transactions (V100)"});

  std::printf("Table I — data stored/accessed by the inter-query (GASAL2-style) aligner\n");
  std::printf("N = %zu bp, %zu pairs measured\n\n%s\n", kLen, kPairs, table.render().c_str());

  double ratio = per_pair(pascal.stats.totals.global_bytes_moved) /
                 per_pair(volta.stats.totals.global_bytes_moved);
  std::printf("Pascal/Volta moved-bytes ratio: %.2fx (paper: 4x from the N^2 term)\n", ratio);
  std::printf("Measured includes the paper's 'Stored' traffic both written and read back;\n");
  std::printf("formulas count one direction, so measured useful ~= 2x the N^2/4 term.\n");
  return 0;
}
