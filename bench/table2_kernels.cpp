// Table II reproduction: "Baseline Kernels Under Comparison" — printed from
// the kernel registry metadata, plus each kernel's structural limits as
// modelled.
#include <cstdio>

#include "bench_common.hpp"
#include "util/table.hpp"

using namespace saloba;

int main() {
  util::Table table({"Kernel", "Parallelism", "Bitwidth", "Mapping", "Exact w/ N", "Max len"});
  std::vector<std::string> names = bench::comparison_kernels();
  names.push_back("saloba");
  for (const auto& name : names) {
    auto kernel = kernels::make_kernel(name);
    const auto& info = kernel->info();
    table.add_row({info.name, info.parallelism, std::to_string(info.bitwidth) + " bits",
                   info.mapping, info.exact_with_n ? "yes" : "no (N substituted)",
                   info.max_len == static_cast<std::size_t>(-1)
                       ? "unbounded"
                       : std::to_string(info.max_len) + " bp"});
  }
  std::printf("Table II — baseline kernels under comparison\n\n%s\n", table.render().c_str());
  std::printf(
      "(As in the paper, all kernels are run with GPU-side packing and one-to-one\n"
      " mapping; original packing widths and mapping modes are listed above.)\n");
  return 0;
}
