// Interactive-ish kernel explorer: run any registered kernel on any device
// preset at a chosen length, and dump the full execution profile the
// simulator collected — the tool for studying *why* a strategy is fast.
//
//   $ ./kernel_explorer --kernel=saloba --device=gtx1650 --len=512 --pairs=512
//   $ ./kernel_explorer --list
#include <cstdio>

#include "bench/bench_common.hpp"
#include "core/workload.hpp"
#include "kernels/kernel_iface.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace saloba;
  util::ArgParser args("kernel_explorer", "inspect a kernel's simulated execution profile");
  args.add_string("kernel", "kernel name (see --list)", "saloba");
  args.add_string("device", "gtx1650 | rtx3090 | p100 | v100", "gtx1650");
  args.add_int("len", "sequence length (bp)", 512);
  args.add_int("pairs", "pairs in the batch", 1024);
  args.add_flag("list", "list kernel names and exit");
  if (!args.parse(argc, argv)) return 1;

  if (args.get_flag("list")) {
    for (const auto& name : kernels::kernel_names()) std::printf("%s\n", name.c_str());
    return 0;
  }

  auto genome = core::make_genome(4 << 20);
  auto batch = core::make_fig6_batch(genome, static_cast<std::size_t>(args.get_int("len")),
                                     static_cast<std::size_t>(args.get_int("pairs")));
  auto spec = core::Aligner::device_by_name(args.get_string("device"));
  align::ScoringScheme scoring;

  auto out = bench::run_kernel(args.get_string("kernel"), spec, batch, scoring, batch.size());
  if (!out.ok) {
    std::printf("kernel cannot run this batch: %s\n", out.failure.c_str());
    return 0;
  }

  const auto& t = out.breakdown;
  const auto& s = out.stats.totals;
  std::printf("%s on %s — %zu pairs x %lld bp\n\n", args.get_string("kernel").c_str(),
              spec.name.c_str(), batch.size(), static_cast<long long>(args.get_int("len")));

  util::Table time_table({"Component", "ms", "Share"});
  auto share = [&](double v) {
    return util::Table::num(100.0 * v / (t.total_ms > 0 ? t.total_ms : 1.0), 1) + "%";
  };
  time_table.add_row({"compute (issue+latency)", util::Table::num(t.compute_ms, 4),
                      share(t.compute_ms)});
  time_table.add_row({"DRAM roofline", util::Table::num(t.dram_ms, 4), share(t.dram_ms)});
  time_table.add_row({"launch overhead", util::Table::num(t.launch_ms, 4), share(t.launch_ms)});
  time_table.add_row({"buffer init", util::Table::num(t.init_ms, 4), share(t.init_ms)});
  time_table.add_row({"total (max of rooflines + overheads)", util::Table::num(t.total_ms, 4),
                      "100%"});
  std::printf("%s\n", time_table.render().c_str());

  util::Table counter_table({"Counter", "Value"});
  counter_table.add_row({"warps", std::to_string(out.stats.warps)});
  counter_table.add_row({"warp instructions", std::to_string(s.instructions)});
  counter_table.add_row({"lane utilization", util::Table::num(s.lane_utilization(32), 3)});
  counter_table.add_row({"global requests", std::to_string(s.global_requests)});
  counter_table.add_row({"global transactions", std::to_string(s.global_transactions)});
  counter_table.add_row({"bytes moved (MB)", util::Table::num(s.global_bytes_moved / 1e6, 2)});
  counter_table.add_row({"bytes useful (MB)", util::Table::num(s.global_bytes_useful / 1e6, 2)});
  counter_table.add_row(
      {"waste factor",
       util::Table::num(static_cast<double>(s.global_bytes_moved) /
                            static_cast<double>(std::max<std::uint64_t>(1, s.global_bytes_useful)),
                        2)});
  counter_table.add_row({"shared requests", std::to_string(s.shared_requests)});
  counter_table.add_row({"shared conflict cycles", std::to_string(s.shared_conflict_cycles)});
  counter_table.add_row({"block syncs", std::to_string(s.syncs)});
  counter_table.add_row({"DP cells", std::to_string(s.dp_cells)});
  counter_table.add_row({"sim GCUPS", util::Table::num(static_cast<double>(s.dp_cells) /
                                                           (out.time_ms * 1e6),
                                                       1)});
  std::printf("%s", counter_table.render().c_str());
  return 0;
}
