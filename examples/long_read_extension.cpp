// Long-read (PacBio-like) seed extension — the paper's dataset-B scenario.
// Collects real extension jobs from the pipeline, then runs them through
// GASAL2-like and SALoBa kernels on a simulated device, reporting the
// speedup and the counters that explain it.
//
//   $ ./long_read_extension --reads=200 --device=rtx3090
#include <cstdio>

#include "align/batch.hpp"
#include "core/aligner.hpp"
#include "core/workload.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace saloba;
  util::ArgParser args("long_read_extension", "dataset-B-style long read extension");
  args.add_int("reads", "number of ~2 kbp reads", 150);
  args.add_string("device", "gtx1650 | rtx3090 | p100 | v100", "rtx3090");
  if (!args.parse(argc, argv)) return 1;

  auto genome = core::make_genome(4 << 20);
  auto ds = core::make_dataset_b(genome, static_cast<std::size_t>(args.get_int("reads")));
  std::printf("dataset B': %zu jobs from %zu reads; mean query %.0f bp, mean ref %.0f bp, "
              "CV %.2f\n\n",
              ds.stats.jobs, ds.stats.reads, ds.stats.mean_query_len, ds.stats.mean_ref_len,
              ds.stats.cv_query_len);

  // CPU oracle for correctness and a wall-clock reference point.
  align::BatchTiming cpu_timing;
  auto cpu_results = align::align_batch(ds.batch, align::ScoringScheme{}, &cpu_timing);
  std::printf("CPU (OpenMP) oracle: %.1f ms wall, %.2f GCUPS\n\n", cpu_timing.wall_ms,
              cpu_timing.gcups);

  util::Table table({"Kernel", "Sim time", "Lane util", "DRAM MB", "Matches CPU"});
  double gasal_ms = 0;
  for (const char* kernel : {"gasal2", "saloba-sw16"}) {
    core::AlignerOptions opts;
    opts.backend = core::Backend::kSimulated;
    opts.kernel = kernel;
    opts.device = args.get_string("device");
    core::Aligner aligner(opts);
    auto out = aligner.align(ds.batch);
    bool match = out.results == cpu_results;
    if (std::string(kernel) == "gasal2") gasal_ms = out.time_ms;
    table.add_row({kernel, util::Table::ms(out.time_ms),
                   util::Table::num(out.kernel_stats->totals.lane_utilization(32), 2),
                   util::Table::num(out.time_breakdown->dram_bytes / 1e6, 1),
                   match ? "yes" : "NO"});
    if (std::string(kernel) != "gasal2" && gasal_ms > 0) {
      std::printf("SALoBa speedup over GASAL2 on %s: %.2fx (paper Fig. 8(b): ~2x)\n",
                  opts.device.c_str(), gasal_ms / out.time_ms);
    }
  }
  std::printf("\n%s", table.render().c_str());

  // Multi-GPU (Sec. VII-C) through the public API: the scheduler shards the
  // batch across simulated devices with sorted packing and reports the
  // makespan as the batch's wall time.
  std::printf("\nmulti-device scaling (saloba-sw16, sorted sharding):\n");
  double one_device_ms = 0.0;
  for (int devices : {1, 2, 4}) {
    core::AlignerOptions opts;
    opts.backend = core::Backend::kSimulated;
    opts.kernel = "saloba-sw16";
    opts.device = args.get_string("device");
    opts.devices = devices;
    core::Aligner aligner(opts);
    auto out = aligner.align(ds.batch);
    if (devices == 1) one_device_ms = out.time_ms;
    std::printf("  %d device(s): %8.3f ms simulated (%zu shards, imbalance %.2f, %.2fx)\n",
                devices, out.time_ms, out.schedule.shards, out.schedule.imbalance,
                one_device_ms / out.time_ms);
  }
  return 0;
}
