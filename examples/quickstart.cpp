// Quickstart: align two sequences with the public API — CPU backend for the
// scores, traceback for the CIGAR, and a simulated SALoBa run for kicks.
//
//   $ ./quickstart
//   $ ./quickstart ACGTTGCA ACGTGCA
#include <cstdio>
#include <string>

#include "align/traceback.hpp"
#include "core/aligner.hpp"
#include "seq/alphabet.hpp"

int main(int argc, char** argv) {
  using namespace saloba;

  std::string ref_text = argc > 1 ? argv[1] : "TTTTGATTACAGATTACAGGGG";
  std::string query_text = argc > 2 ? argv[2] : "GATTACATATTACA";

  auto ref = seq::encode_string(ref_text);
  auto query = seq::encode_string(query_text);

  // 1. Batch alignment through the facade (CPU backend by default).
  core::Aligner aligner{core::AlignerOptions{}};
  seq::PairBatch batch;
  batch.add(query, ref);
  auto out = aligner.align(batch);
  const auto& r = out.results[0];
  std::printf("reference: %s\n", ref_text.c_str());
  std::printf("query:     %s\n", query_text.c_str());
  std::printf("local alignment score %d, ends at ref[%d], query[%d]\n", r.score, r.ref_end,
              r.query_end);

  // 2. Full traceback for the CIGAR.
  auto traced = align::smith_waterman_traceback(ref, query, aligner.options().scoring);
  if (traced.end.score > 0) {
    std::printf("CIGAR %s starting at ref[%d], query[%d]\n", traced.cigar.c_str(),
                traced.ref_start, traced.query_start);
  }

  // 3. The same pair through the simulated SALoBa kernel on an RTX3090.
  core::AlignerOptions sim_opts;
  sim_opts.backend = core::Backend::kSimulated;
  sim_opts.kernel = "saloba";
  sim_opts.device = "rtx3090";
  core::Aligner sim(sim_opts);
  auto sim_out = sim.align(batch);
  std::printf("simulated SALoBa on %s: score %d (matches CPU: %s), %.3f ms simulated\n",
              sim_opts.device.c_str(), sim_out.results[0].score,
              sim_out.results[0] == r ? "yes" : "NO", sim_out.time_ms);
  return 0;
}
