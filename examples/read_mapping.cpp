// End-to-end read mapping on a synthetic genome: simulate Illumina-like
// reads, map them with the seed-and-extend pipeline, and report accuracy and
// throughput — the workload the paper's introduction motivates.
//
//   $ ./read_mapping --reads=2000 --genome=4194304 --fm
#include <cstdio>

#include "core/aligner.hpp"
#include "core/workload.hpp"
#include "seedext/pipeline.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"
#include "util/args.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace saloba;
  util::ArgParser args("read_mapping", "seed-and-extend read mapping demo");
  args.add_int("genome", "genome length in bases", 2 << 20);
  args.add_int("reads", "number of simulated 250 bp reads", 1000);
  args.add_flag("fm", "use FM-index (BWT) seeding instead of the k-mer index");
  args.add_int("seed", "random seed", 42);
  if (!args.parse(argc, argv)) return 1;

  const auto genome_len = static_cast<std::size_t>(args.get_int("genome"));
  const auto n_reads = static_cast<std::size_t>(args.get_int("reads"));

  std::printf("generating %zu bp genome...\n", genome_len);
  auto genome = core::make_genome(genome_len, static_cast<std::uint64_t>(args.get_int("seed")));

  std::printf("simulating %zu Illumina-like reads (250 bp)...\n", n_reads);
  seq::ReadSimulator sim(genome, seq::ReadProfile::illumina_250bp(),
                         static_cast<std::uint64_t>(args.get_int("seed")) + 1);
  auto reads = sim.simulate(n_reads);

  seedext::MapperParams params;
  params.use_fm_seeding = args.get_flag("fm");
  util::Timer index_timer;
  seedext::ReadMapper mapper(genome, params);
  std::printf("index built in %.1f ms (%s seeding)\n", index_timer.millis(),
              params.use_fm_seeding ? "FM-index" : "k-mer");

  std::vector<std::vector<seq::BaseCode>> read_seqs;
  read_seqs.reserve(reads.size());
  for (const auto& r : reads) read_seqs.push_back(r.read.bases);

  util::Timer map_timer;
  auto mappings = mapper.map_batch(read_seqs);
  double map_ms = map_timer.millis();

  std::size_t mapped = 0, correct = 0, strand_ok = 0;
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    if (!mappings[i].mapped) continue;
    ++mapped;
    auto dist = mappings[i].ref_pos > reads[i].true_pos
                    ? mappings[i].ref_pos - reads[i].true_pos
                    : reads[i].true_pos - mappings[i].ref_pos;
    if (dist <= 20) ++correct;
    if (mappings[i].reverse_strand == reads[i].reverse_strand) ++strand_ok;
  }

  std::printf("\nmapped      %zu/%zu (%.1f%%)\n", mapped, reads.size(),
              100.0 * static_cast<double>(mapped) / static_cast<double>(reads.size()));
  std::printf("accurate    %zu/%zu within 20 bp of the true origin\n", correct, mapped);
  std::printf("strand      %zu/%zu correct\n", strand_ok, mapped);
  std::printf("throughput  %.0f reads/s (%.1f ms total, %d threads)\n",
              static_cast<double>(reads.size()) / (map_ms / 1e3), map_ms,
              util::max_parallel_threads());

  auto jobs = mapper.collect_jobs(read_seqs);
  std::printf("\nextension jobs the mapper handed to the kernel layer: %zu\n", jobs.size());

  // The same mapping with the extension stage batched through the public
  // Aligner/scheduler path (simulated SALoBa kernel) instead of per-job CPU
  // calls — the paper's Sec. V-D pipeline shape. Mappings must not change.
  core::AlignerOptions ext_opts;
  ext_opts.backend = core::Backend::kSimulated;
  ext_opts.kernel = "saloba-sw16";
  core::Aligner extender(ext_opts);
  util::Timer batched_timer;
  auto batched = mapper.map_batch(read_seqs, extender.batch_extender());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    agree += batched[i].mapped == mappings[i].mapped &&
             (!batched[i].mapped || (batched[i].ref_pos == mappings[i].ref_pos &&
                                     batched[i].score == mappings[i].score));
  }
  std::printf("batched extension through the simulated kernel: %zu/%zu mappings identical "
              "(%.1f ms host)\n",
              agree, mappings.size(), batched_timer.millis());
  return 0;
}
