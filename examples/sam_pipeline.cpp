// Full pipeline with file I/O: write a synthetic reference FASTA and reads
// FASTQ to disk, read them back, map, and emit a SAM file — the end-to-end
// shape of a production aligner run.
//
//   $ ./sam_pipeline --workdir=/tmp/saloba_demo --reads=500
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/aligner.hpp"
#include "core/autotune.hpp"
#include "core/workload.hpp"
#include "seedext/sam_output.hpp"
#include "seq/fasta.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace saloba;
  util::ArgParser args("sam_pipeline", "FASTA/FASTQ in, SAM out");
  args.add_string("workdir", "directory for generated files", "/tmp/saloba_sam_demo");
  args.add_int("genome", "genome length (bases)", 1 << 20);
  args.add_int("reads", "reads to simulate", 500);
  args.add_flag("traceback",
                "two-phase mapping: CIGARs from the batched traceback phase "
                "(AlignerOptions::traceback) instead of the per-record fallback");
  if (!args.parse(argc, argv)) return 1;

  namespace fs = std::filesystem;
  fs::path dir(args.get_string("workdir"));
  fs::create_directories(dir);

  // 1. Write the reference FASTA.
  auto genome_codes = core::make_genome(static_cast<std::size_t>(args.get_int("genome")));
  {
    std::vector<seq::Sequence> ref(1);
    ref[0].name = "chrT";
    ref[0].bases = genome_codes;
    seq::write_fasta_file((dir / "reference.fa").string(), ref);
  }

  // 2. Simulate reads and write the FASTQ.
  seq::ReadSimulator sim(genome_codes, seq::ReadProfile::illumina_250bp(), 11);
  auto simulated = sim.simulate(static_cast<std::size_t>(args.get_int("reads")));
  {
    std::vector<seq::Sequence> reads;
    for (auto& r : simulated) reads.push_back(r.read);
    seq::write_fastq_file((dir / "reads.fq").string(), reads);
  }

  // 3. Read both back from disk (exercising the parsers, as a tool would).
  auto reference = seq::read_fasta_file((dir / "reference.fa").string());
  auto reads = seq::read_fastq_file((dir / "reads.fq").string());
  std::printf("loaded %zu bp reference and %zu reads from %s\n",
              reference[0].bases.size(), reads.size(), dir.c_str());

  // 4. Map (extensions batched through the public Aligner/scheduler path,
  // as a production pipeline would hand them to the GPU) and write SAM.
  seedext::ReadMapper mapper(reference[0].bases, seedext::MapperParams{});
  std::vector<std::vector<seq::BaseCode>> read_seqs;
  for (const auto& r : reads) read_seqs.push_back(r.bases);
  const bool traceback = args.get_flag("traceback");
  // Two aligners on purpose: extensions only need the score pass, and a
  // traceback-enabled Aligner would run (and discard) a traceback phase on
  // every extension batch; only the window batch needs the second phase.
  core::Aligner extension_aligner{core::AlignerOptions{}};  // CPU backend
  core::AlignerOptions trace_opts;
  trace_opts.traceback = true;
  core::Aligner trace_aligner(trace_opts);
  util::Timer timer;
  // With --traceback the window CIGARs come out of the batched two-phase
  // pipeline; otherwise to_sam_record traces each record on demand.
  auto mappings =
      traceback ? mapper.map_batch(read_seqs, extension_aligner.batch_extender(),
                                   trace_aligner.traced_extender())
                : mapper.map_batch(read_seqs, extension_aligner.batch_extender());

  std::ofstream sam_file(dir / "alignments.sam");
  seq::SamHeader header;
  header.reference_name = reference[0].name;
  header.reference_length = reference[0].bases.size();
  header.command_line = "sam_pipeline";
  seq::SamWriter writer(sam_file, header);

  std::size_t mapped = 0;
  std::size_t traced = 0;
  for (std::size_t i = 0; i < reads.size(); ++i) {
    mapped += mappings[i].mapped;
    traced += mappings[i].has_traceback;
    writer.write(seedext::to_sam_record(mapper, reads[i], mappings[i], reference[0].name));
  }
  std::printf("mapped %zu/%zu reads in %.1f ms (%zu batched CIGARs) -> %s\n", mapped,
              reads.size(), timer.millis(), traced, (dir / "alignments.sam").c_str());
  if (mapped == 0) {
    std::fprintf(stderr, "FAIL: nothing mapped\n");
    return 1;
  }
  if (traceback && traced != mapped) {
    std::fprintf(stderr, "FAIL: %zu mapped reads but only %zu batched CIGARs\n", mapped,
                 traced);
    return 1;
  }

  // 5. Report what the autotuner would pick for this workload's extensions.
  auto jobs = mapper.collect_jobs(read_seqs);
  core::DatasetStats stats;
  stats.jobs = jobs.size();
  std::vector<double> qlens;
  for (const auto& j : jobs) qlens.push_back(static_cast<double>(j.query.size()));
  stats.mean_query_len = util::mean(qlens);
  stats.cv_query_len = util::coeff_variation(qlens);
  auto cfg = core::recommend_config(stats);
  std::printf(
      "extension workload: %zu jobs, mean query %.0f bp, CV %.2f -> recommended "
      "SALoBa subwarp size: %d\n",
      stats.jobs, stats.mean_query_len, stats.cv_query_len, cfg.subwarp_size);
  return 0;
}
