// Streaming alignment end to end: write a larger-than-chunk workload to
// disk as two FASTQ files (queries + references), stream it back through
//
//   FastqChunkReader ×2 → ReaderPairSource → StreamAligner
//     (reader thread → bounded queue → scheduler → ordered merger)
//
// and verify the streamed results are bit-identical — same scores, same
// order — to the one-shot Aligner::align over the fully-resident batch,
// while peak residency stays within chunk_pairs × queue_capacity. Exits
// non-zero on any mismatch, so CI smoke runs guard the invariant.
//
//   $ ./streaming_alignment --pairs=600 --chunk=64 --queue=4
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/aligner.hpp"
#include "core/stream_aligner.hpp"
#include "seq/chunk_reader.hpp"
#include "seq/fasta.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

using namespace saloba;

namespace {

// Skewed lengths (mostly short, a heavy tail of long pairs) — the workload
// shape that makes chunk scheduling interesting.
seq::Sequence random_named_seq(util::Xoshiro256& rng, std::size_t i, const char* prefix) {
  seq::Sequence s;
  s.name = std::string(prefix) + std::to_string(i);
  std::size_t len = rng.bernoulli(0.15) ? 400 + rng.below(400) : 40 + rng.below(80);
  s.bases.resize(len);
  for (auto& b : s.bases) b = static_cast<seq::BaseCode>(rng.below(4));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("streaming_alignment",
                       "chunked FASTQ ingest -> bounded queue -> ordered streaming emit");
  args.add_string("workdir", "directory for generated files", "/tmp/saloba_stream_demo");
  args.add_int("pairs", "pairs to generate", 600);
  args.add_int("chunk", "pairs per chunk", 64);
  args.add_int("queue", "in-flight chunk budget", 4);
  args.add_int("workers", "concurrent align workers", 1);
  args.add_flag("sim", "use the simulated saloba kernel instead of the CPU backend");
  if (!args.parse(argc, argv)) return 1;

  const auto pairs = static_cast<std::size_t>(args.get_int("pairs"));
  const auto chunk_pairs = static_cast<std::size_t>(args.get_int("chunk"));
  const auto queue_capacity = static_cast<std::size_t>(args.get_int("queue"));

  // 1. Generate the workload and write it to disk, pair i = (queries.fq[i],
  // refs.fq[i]) — the on-disk shape of an extension workload.
  namespace fs = std::filesystem;
  fs::path dir(args.get_string("workdir"));
  fs::create_directories(dir);
  {
    util::Xoshiro256 rng(99);
    std::vector<seq::Sequence> queries, refs;
    for (std::size_t i = 0; i < pairs; ++i) {
      queries.push_back(random_named_seq(rng, i, "q"));
      refs.push_back(random_named_seq(rng, i, "r"));
    }
    seq::write_fastq_file((dir / "queries.fq").string(), queries);
    seq::write_fastq_file((dir / "refs.fq").string(), refs);
  }

  core::AlignerOptions opts;
  if (args.get_flag("sim")) {
    opts.backend = core::Backend::kSimulated;
    opts.kernel = "saloba";
    opts.device = "gtx1650";
  }

  // 2. Stream the files through the pipeline.
  core::StreamOptions stream;
  stream.chunk_pairs = chunk_pairs;
  stream.queue_capacity = queue_capacity;
  stream.align_threads = static_cast<std::size_t>(args.get_int("workers"));

  std::ifstream qfile(dir / "queries.fq"), rfile(dir / "refs.fq");
  seq::FastqChunkReader qreader(qfile, chunk_pairs);
  seq::FastqChunkReader rreader(rfile, chunk_pairs);
  core::ReaderPairSource source(qreader, rreader);

  core::StreamAligner streamer(opts, stream);
  std::vector<align::AlignmentResult> streamed(pairs);
  auto stats = streamer.run(
      source, [&](std::size_t, std::size_t first_pair, core::AlignOutput&& out) {
        for (std::size_t i = 0; i < out.results.size(); ++i) {
          streamed[first_pair + i] = out.results[i];
        }
      });

  std::printf("streamed %zu pairs in %zu chunks of <=%zu: %.1f ms align (%.2f gcups), "
              "%.1f ms wall, %zu shards\n",
              stats.pairs, stats.chunks, chunk_pairs, stats.align_ms, stats.gcups,
              stats.wall_ms, stats.shards);
  std::printf("peak residency: %zu pairs in %zu chunks (budget %zu pairs = "
              "chunk %zu x queue %zu)\n",
              stats.peak_resident_pairs, stats.peak_resident_chunks,
              chunk_pairs * queue_capacity, chunk_pairs, queue_capacity);

  // 3. One-shot reference: the whole workload resident at once.
  seq::PairBatch resident;
  {
    auto queries = seq::read_fastq_file((dir / "queries.fq").string());
    auto refs = seq::read_fastq_file((dir / "refs.fq").string());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      resident.add(std::move(queries[i].bases), std::move(refs[i].bases));
    }
  }
  auto one_shot = core::Aligner(opts).align(resident);

  // 4. Verify: streamed must be bit-identical, and residency within budget.
  int failures = 0;
  if (stats.pairs != resident.size()) {
    std::printf("FAIL: streamed %zu pairs, resident batch has %zu\n", stats.pairs,
                resident.size());
    ++failures;
  }
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < resident.size(); ++i) {
    if (!(streamed[i] == one_shot.results[i])) ++mismatches;
  }
  if (mismatches > 0) {
    std::printf("FAIL: %zu of %zu streamed results differ from the one-shot path\n",
                mismatches, resident.size());
    ++failures;
  }
  if (stats.peak_resident_pairs > chunk_pairs * queue_capacity) {
    std::printf("FAIL: peak residency %zu exceeds budget %zu\n", stats.peak_resident_pairs,
                chunk_pairs * queue_capacity);
    ++failures;
  }
  if (failures == 0) {
    std::printf("OK: streamed == one-shot (%zu pairs, same order, same scores), "
                "residency within budget\n",
                resident.size());
  }
  return failures == 0 ? 0 : 1;
}
