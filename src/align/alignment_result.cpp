#include "align/alignment_result.hpp"

#include <sstream>

namespace saloba::align {

std::string format_result(const AlignmentResult& r) {
  std::ostringstream oss;
  oss << "score=" << r.score << " ref_end=" << r.ref_end << " query_end=" << r.query_end;
  return oss.str();
}

}  // namespace saloba::align
