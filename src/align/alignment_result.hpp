// Result of one local (or global) alignment.
#pragma once

#include <cstdint>
#include <string>

#include "align/scoring.hpp"

namespace saloba::align {

struct AlignmentResult {
  Score score = 0;
  /// 0-based index of the last aligned reference base (i of the best cell);
  /// -1 when the best score is 0 (empty local alignment).
  std::int32_t ref_end = -1;
  /// 0-based index of the last aligned query base (j of the best cell).
  std::int32_t query_end = -1;

  bool operator==(const AlignmentResult&) const = default;
};

/// Canonical tie-break shared by every kernel and the CPU reference:
/// higher score wins; among equal scores, the smaller ref_end wins, then the
/// smaller query_end. Because every implementation scans all cells and
/// applies this same comparison, results are implementation-independent.
inline bool improves(const AlignmentResult& cand, const AlignmentResult& best) {
  if (cand.score != best.score) return cand.score > best.score;
  if (cand.ref_end != best.ref_end) return cand.ref_end < best.ref_end;
  return cand.query_end < best.query_end;
}

/// Updates `best` if `cand` improves it.
inline void take_better(AlignmentResult& best, const AlignmentResult& cand) {
  if (improves(cand, best)) best = cand;
}

/// Alignment with full traceback (from align/traceback.hpp or the batched
/// linear-memory engine in align/traceback_engine.hpp).
struct TracedAlignment {
  AlignmentResult end;
  std::int32_t ref_start = -1;    ///< 0-based first aligned reference base
  std::int32_t query_start = -1;  ///< 0-based first aligned query base
  std::string cigar;              ///< e.g. "42M1I17M2D8M" (query-centric I/D)

  bool operator==(const TracedAlignment&) const = default;
};

std::string format_result(const AlignmentResult& r);

}  // namespace saloba::align
