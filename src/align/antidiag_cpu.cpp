#include "align/antidiag_cpu.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace saloba::align {
namespace {
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;
}

AlignmentResult smith_waterman_antidiag(std::span<const seq::BaseCode> ref,
                                        std::span<const seq::BaseCode> query,
                                        const ScoringScheme& scoring) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  AlignmentResult best;
  if (n == 0 || m == 0) return best;

  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  // Diagonal buffers indexed by reference position i. For a cell (i, j) on
  // diagonal d (j = d - i):
  //   left  (i, j-1)  -> diagonal d-1, index i
  //   up    (i-1, j)  -> diagonal d-1, index i-1
  //   diag  (i-1,j-1) -> diagonal d-2, index i-1
  std::vector<Score> h_d2(n, 0), h_d1(n, 0), h_cur(n, 0);
  std::vector<Score> e_d1(n, kNegInf), e_cur(n, kNegInf);
  std::vector<Score> f_d1(n, kNegInf), f_cur(n, kNegInf);

  const std::size_t diag_count = n + m - 1;
  for (std::size_t d = 0; d < diag_count; ++d) {
    std::size_t i_lo = (d >= m) ? d - m + 1 : 0;
    std::size_t i_hi = std::min(n - 1, d);
    for (std::size_t i = i_lo; i <= i_hi; ++i) {
      std::size_t j = d - i;
      // Out-of-table neighbours: H reads 0 (local floor), E/F read -inf.
      Score h_left = (j == 0) ? 0 : h_d1[i];
      Score e_left = (j == 0) ? kNegInf : e_d1[i];
      Score h_up = (i == 0) ? 0 : h_d1[i - 1];
      Score f_up = (i == 0) ? kNegInf : f_d1[i - 1];
      Score h_diag = (i == 0 || j == 0) ? 0 : h_d2[i - 1];

      Score e = std::max(h_left - alpha, e_left - beta);
      Score f = std::max(h_up - alpha, f_up - beta);
      Score h = std::max({Score{0}, h_diag + scoring.substitution(ref[i], query[j]), e, f});

      h_cur[i] = h;
      e_cur[i] = e;
      f_cur[i] = f;

      take_better(best, AlignmentResult{h, static_cast<std::int32_t>(i),
                                        static_cast<std::int32_t>(j)});
    }
    std::swap(h_d2, h_d1);
    std::swap(h_d1, h_cur);
    std::swap(e_d1, e_cur);
    std::swap(f_d1, f_cur);
  }
  if (best.score == 0) return AlignmentResult{};
  return best;
}

}  // namespace saloba::align
