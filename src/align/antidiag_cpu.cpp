#include "align/antidiag_cpu.hpp"

#include "align/xdrop_wavefront.hpp"

namespace saloba::align {

AlignmentResult smith_waterman_antidiag(std::span<const seq::BaseCode> ref,
                                        std::span<const seq::BaseCode> query,
                                        const ScoringScheme& scoring) {
  // With pruning disabled the wavefront's live windows cover every valid
  // cell, so this is exact Smith-Waterman executed along anti-diagonals.
  return xdrop_wavefront_score(ref, query, scoring, XDropParams{.xdrop = 0});
}

}  // namespace saloba::align
