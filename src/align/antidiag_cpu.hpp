// Anti-diagonal (wavefront) CPU implementation of local alignment.
//
// This is the CPU analogue of the intra-query parallelism in paper Fig. 3:
// all cells on diagonal d = i + j depend only on diagonals d-1 and d-2, so
// they are independent. On a GPU those cells map to lanes; here the layout
// demonstrates the dependency structure and gives tests a third independent
// implementation to cross-check (row-major reference, banded, wavefront).
//
// Promoted from a demo-grade standalone sweep to a thin wrapper over the
// production long-read engine (align/xdrop_wavefront.hpp) with X-drop
// pruning disabled — the windowed sweep then covers every valid cell and is
// exact Smith-Waterman, so the historical three-way oracle contract
// (reference / banded / antidiag) is unchanged.
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

AlignmentResult smith_waterman_antidiag(std::span<const seq::BaseCode> ref,
                                        std::span<const seq::BaseCode> query,
                                        const ScoringScheme& scoring);

}  // namespace saloba::align
