#include "align/batch.hpp"

#include "align/sw_reference.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace saloba::align {

std::vector<AlignmentResult> align_batch(const seq::PairBatch& batch,
                                         const ScoringScheme& scoring, BatchTiming* timing,
                                         int threads) {
  util::Timer timer;
  std::vector<AlignmentResult> results(batch.size());
  util::parallel_for_indexed(
      batch.size(),
      [&](std::size_t i) {
        results[i] = smith_waterman(batch.refs[i], batch.queries[i], scoring);
      },
      threads);
  if (timing) {
    timing->wall_ms = timer.millis();
    timing->cells = batch.total_cells();
    timing->gcups =
        timing->wall_ms > 0 ? static_cast<double>(timing->cells) / (timing->wall_ms * 1e6) : 0.0;
  }
  return results;
}

}  // namespace saloba::align
