#include "align/batch.hpp"

#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace saloba::align {

std::vector<AlignmentResult> align_batch(const seq::PairBatch& batch,
                                         const ScoringScheme& scoring, BatchTiming* timing,
                                         int threads, Score zdrop) {
  util::Timer timer;
  std::vector<AlignmentResult> results(batch.size());
  const bool plain = !batch.has_band_info() && zdrop <= 0;
  std::vector<std::size_t> cells(plain ? 0 : batch.size());
  util::parallel_for_indexed(
      batch.size(),
      [&](std::size_t i) {
        if (plain) {
          results[i] = smith_waterman(batch.refs[i], batch.queries[i], scoring);
          return;
        }
        BandedParams params;
        params.band = batch.band_of(i);  // 0 = full table
        params.zdrop = zdrop;
        if (params.band == 0 && zdrop <= 0) {
          // Explicit full-table pair in a band-carrying batch: the plain
          // sweep is bit-identical and skips the banded bookkeeping.
          results[i] = smith_waterman(batch.refs[i], batch.queries[i], scoring);
          cells[i] = batch.refs[i].size() * batch.queries[i].size();
          return;
        }
        auto banded = smith_waterman_banded(batch.refs[i], batch.queries[i], scoring, params);
        results[i] = banded.result;
        cells[i] = banded.cells_computed;
      },
      threads);
  if (timing) {
    timing->wall_ms = timer.millis();
    // Cells actually computed: the full area on the plain path, the in-band
    // count per pair otherwise — and fewer still where zdrop cut rows.
    if (plain) {
      timing->cells = batch.total_cells();
    } else {
      timing->cells = 0;
      for (std::size_t c : cells) timing->cells += c;
    }
    timing->gcups =
        timing->wall_ms > 0 ? static_cast<double>(timing->cells) / (timing->wall_ms * 1e6) : 0.0;
  }
  return results;
}

}  // namespace saloba::align
