// Host-parallel batch alignment — the CPU execution backend of the public
// API (core/aligner.hpp) and the oracle for kernel verification tests.
#pragma once

#include <vector>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/sequence.hpp"

namespace saloba::align {

struct BatchTiming {
  double wall_ms = 0.0;
  std::size_t cells = 0;      ///< DP cells computed
  double gcups = 0.0;         ///< giga cell-updates per second
};

/// Aligns every (query, ref) pair; OpenMP-parallel across pairs when
/// available, capped at `threads` host threads (0 = the default team).
/// Deterministic: output order matches input order.
///
/// Pairs carrying a band (seq::PairBatch::band_of) run through
/// smith_waterman_banded at that band — bit-identical to what the banded
/// simulated kernels produce for the same batch. `zdrop > 0` additionally
/// applies z-drop row pruning to every pair (a results-changing heuristic;
/// see BandedParams::zdrop).
std::vector<AlignmentResult> align_batch(const seq::PairBatch& batch,
                                         const ScoringScheme& scoring,
                                         BatchTiming* timing = nullptr, int threads = 0,
                                         Score zdrop = 0);

}  // namespace saloba::align
