#include "align/extension.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace saloba::align {
namespace {
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;
}

ExtensionResult extend(std::span<const seq::BaseCode> ref,
                       std::span<const seq::BaseCode> query, const ScoringScheme& scoring,
                       const ExtensionParams& params) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  ExtensionResult out;
  out.score = params.h0;
  out.to_query_end = params.h0;  // consuming zero bases then stopping
  out.reached_query_end = m == 0;
  if (m == 0 || n == 0) return out;

  // Row 0 boundary: gaps off the anchor. H(0, j) = h0 - gap(j), clamped at
  // -inf once unreachable; same for the first column.
  std::vector<Score> h_row(m + 1), f_col(m + 1, kNegInf);
  h_row[0] = params.h0;
  for (std::size_t j = 1; j <= m; ++j) {
    Score gap = alpha + static_cast<Score>(j - 1) * beta;
    h_row[j] = params.h0 >= gap ? params.h0 - gap : kNegInf;
  }
  // The pure-insertion path "reaches" the query end too.
  if (h_row[m] > kNegInf) out.to_query_end = std::max(out.to_query_end, h_row[m]);

  Score best_possible_row_start = params.h0;
  for (std::size_t i = 0; i < n; ++i) {
    Score gap = alpha + static_cast<Score>(i) * beta;
    Score h_first = best_possible_row_start >= 0 && params.h0 >= gap ? params.h0 - gap
                                                                      : kNegInf;
    Score h_diag = h_row[0];
    h_row[0] = h_first;
    Score h_left = h_first;
    Score e = kNegInf;
    Score row_best = kNegInf;

    for (std::size_t j = 0; j < m; ++j) {
      e = std::max(h_left - alpha, e - beta);
      Score f = std::max(h_row[j + 1] - alpha, f_col[j + 1] - beta);
      Score sub = h_diag == kNegInf ? kNegInf
                                    : h_diag + scoring.substitution(ref[i], query[j]);
      Score h = std::max({sub, e, f});
      h_diag = h_row[j + 1];
      h_row[j + 1] = h;
      f_col[j + 1] = f;
      h_left = h;
      ++out.cells_computed;
      row_best = std::max(row_best, h);

      if (h > out.score) {
        out.score = h;
        out.ref_used = static_cast<std::int32_t>(i) + 1;
        out.query_used = static_cast<std::int32_t>(j) + 1;
      }
    }
    if (h_row[m] > kNegInf) {
      if (h_row[m] > out.to_query_end || !out.reached_query_end) {
        out.to_query_end = std::max(out.to_query_end, h_row[m]);
      }
      out.reached_query_end = true;
    }

    // Z-drop: once even this row's best trails the global best by more
    // than zdrop, further rows cannot recover (scores only decay with
    // distance), so cut the sweep — BWA-MEM's pruning heuristic. Only rows
    // that still had work to skip count as a drop, so `zdropped` always
    // implies cells_computed < the full |ref|·|query| table.
    if (params.zdrop > 0 && i + 1 < n && row_best < out.score - params.zdrop) {
      out.zdropped = true;
      break;
    }
  }
  return out;
}

}  // namespace saloba::align
