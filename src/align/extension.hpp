// Seed-extension alignment with BWA-MEM semantics: extend outward from a
// seed anchored at (0,0) of the extension pair, with
//   * "to-end" scoring that can reward reaching the query end (the global
//     part of glocal alignment), and
//   * Z-drop early termination: stop exploring rows once the running best
//     falls more than `zdrop` below the row maximum's trajectory — the
//     heuristic BWA-MEM uses to avoid chasing hopeless extensions.
//
// Unlike plain local alignment, the extension is anchored: cell (0,0)'s
// predecessor is the seed boundary with score `h0`, and alignments must
// start there.
#pragma once

#include <cstdint>
#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

struct ExtensionParams {
  Score h0 = 0;       ///< score carried in from the seed
  Score zdrop = 100;  ///< <=0 disables early termination
};

struct ExtensionResult {
  /// Best extension score including h0 (>= h0: extending never loses the
  /// seed's score — stopping at the seed is always allowed).
  Score score = 0;
  /// Bases consumed when the best score was reached (0 = stop at the seed).
  std::int32_t query_used = 0;
  std::int32_t ref_used = 0;
  /// Score of the best alignment reaching the query end (for glocal
  /// decisions); kBoundaryUnreachable when zdrop cut the search first.
  Score to_query_end = 0;
  bool reached_query_end = false;
  /// True when zdrop terminated the sweep early.
  bool zdropped = false;
  std::size_t cells_computed = 0;
};

/// Extends from the anchor across ref (rows) x query (columns).
ExtensionResult extend(std::span<const seq::BaseCode> ref,
                       std::span<const seq::BaseCode> query, const ScoringScheme& scoring,
                       const ExtensionParams& params);

}  // namespace saloba::align
