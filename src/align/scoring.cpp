#include "align/scoring.hpp"

namespace saloba::align {

ScoringScheme default_scheme() { return ScoringScheme{}; }

ScoringScheme long_read_scheme() {
  ScoringScheme s;
  s.match = 2;
  s.mismatch = 5;
  s.gap_open = 4;
  s.gap_extend = 2;
  return s;
}

}  // namespace saloba::align
