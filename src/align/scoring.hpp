// Affine-gap scoring (paper Eq. 1–3).
//
//   H(i,j) = max(0, E(i,j), F(i,j), H(i-1,j-1) + S(i,j))
//   E(i,j) = max(H(i,j-1) - alpha, E(i,j-1) - beta)   // gap in the reference
//   F(i,j) = max(H(i-1,j) - alpha, F(i-1,j) - beta)   // gap in the query
//
// alpha is the cost of *opening* a gap (open + first extension), beta the
// cost of continuing one. Defaults follow BWA-MEM/GASAL2 conventions:
// match +1, mismatch -4, gap open 6, gap extend 1 (so alpha = 7, beta = 1).
#pragma once

#include <cstdint>

#include "seq/alphabet.hpp"

namespace saloba::align {

using Score = std::int32_t;

struct ScoringScheme {
  Score match = 1;
  Score mismatch = 4;    ///< stored positive; applied as a penalty
  Score gap_open = 6;    ///< penalty for opening a gap (excluding first extension)
  Score gap_extend = 1;  ///< penalty per gap base

  /// Penalty for the first base of a gap (paper's alpha).
  Score alpha() const { return gap_open + gap_extend; }
  /// Penalty for each further gap base (paper's beta).
  Score beta() const { return gap_extend; }

  /// Substitution score S(i,j). N never matches anything (including N),
  /// which is how BWA-MEM treats unknown bases.
  Score substitution(seq::BaseCode a, seq::BaseCode b) const {
    if (a == seq::kBaseN || b == seq::kBaseN) return -mismatch;
    return a == b ? match : -mismatch;
  }

  /// True if parameters are usable (positive penalties, positive match).
  bool valid() const {
    return match > 0 && mismatch >= 0 && gap_open >= 0 && gap_extend > 0;
  }
};

/// The scheme used throughout the paper reproduction.
ScoringScheme default_scheme();

/// A more gap-tolerant scheme for long noisy reads (used in examples).
ScoringScheme long_read_scheme();

}  // namespace saloba::align
