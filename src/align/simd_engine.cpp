#include "align/simd_engine.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "align/simd_kernel.hpp"
#include "align/simd_vec.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_striped.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace saloba::align::simd {

namespace detail {

void run_pass_u8_generic(const PassRequest& req) { run_pass<OpsU8Generic>(req); }
void run_pass_u16_generic(const PassRequest& req) { run_pass<OpsU16Generic>(req); }

}  // namespace detail

bool compiled_with_avx2() {
#if defined(SALOBA_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const char* isa_name() {
  return compiled_with_avx2() && cpu_supports_avx2() ? "avx2" : "generic";
}

namespace {

using detail::PassRequest;

/// int32 scalar settlement for one pair: the striped engine when the pair is
/// unbanded and un-pruned (plain Smith–Waterman, full-table cell count), the
/// banded oracle otherwise — exactly the two paths align::align_batch takes.
void settle_scalar(const seq::PairBatch& batch, const ScoringScheme& scoring, Score zdrop,
                   std::size_t p, AlignmentResult& result, std::size_t& cell_count) {
  const auto& ref = batch.refs[p];
  const auto& query = batch.queries[p];
  const std::size_t band = batch.band_of(p);
  if (band == 0 && zdrop <= 0) {
    result = smith_waterman_striped_ends(ref, query, scoring);
    cell_count = ref.size() * query.size();
    return;
  }
  const BandedResult br = smith_waterman_banded(ref, query, scoring, BandedParams{band, zdrop});
  result = br.result;
  cell_count = br.cells_computed;
}

}  // namespace

std::vector<AlignmentResult> align_batch(const seq::PairBatch& batch,
                                         const ScoringScheme& scoring, EngineStats* stats,
                                         int threads, Score zdrop) {
  SALOBA_CHECK(scoring.valid());
  const util::Timer timer;
  const std::size_t n_pairs = batch.size();
  std::vector<AlignmentResult> results(n_pairs);
  std::vector<std::size_t> cells(n_pairs, 0);
  std::vector<std::uint8_t> overflowed(n_pairs, 0);

  const bool use_avx2 = compiled_with_avx2() && cpu_supports_avx2();
  EngineStats local;
  local.pairs = n_pairs;
  local.avx2 = use_avx2;

  // Route: empty pairs settle immediately (score 0, no cells); pairs beyond
  // the 16-bit index guard go straight to int32; everything else enters the
  // 8-bit pass. Vector pairs are sorted longest-first so cohort rectangles
  // stay tight (lanes in a cohort share the padded row/column extent).
  std::vector<std::size_t> vec_pairs, scalar_pairs;
  vec_pairs.reserve(n_pairs);
  for (std::size_t p = 0; p < n_pairs; ++p) {
    const std::size_t n = batch.refs[p].size();
    const std::size_t m = batch.queries[p].size();
    if (n == 0 || m == 0) continue;  // results[p] stays the empty alignment
    if (std::max(n, m) > detail::kMaxSimdLen) {
      scalar_pairs.push_back(p);
    } else {
      vec_pairs.push_back(p);
    }
  }
  std::stable_sort(vec_pairs.begin(), vec_pairs.end(), [&](std::size_t a, std::size_t b) {
    if (batch.refs[a].size() != batch.refs[b].size()) {
      return batch.refs[a].size() > batch.refs[b].size();
    }
    return batch.queries[a].size() > batch.queries[b].size();
  });
  local.rescued_32bit = scalar_pairs.size();

  PassRequest req;
  req.batch = &batch;
  req.scoring = &scoring;
  req.zdrop = zdrop;
  req.results = &results;
  req.cells = &cells;
  req.overflowed = &overflowed;
  req.threads = threads;

  // 8-bit pass.
  if (!vec_pairs.empty()) {
    req.pairs = vec_pairs;
    local.cohorts += (vec_pairs.size() + 31) / 32;
#if defined(SALOBA_SIMD_AVX2)
    if (use_avx2) {
      detail::run_pass_u8_avx2(req);
    } else {
      detail::run_pass_u8_generic(req);
    }
#else
    detail::run_pass_u8_generic(req);
#endif
  }

  // 16-bit rescue of saturated lanes (filtering preserves sorted order).
  std::vector<std::size_t> wide_pairs;
  for (std::size_t p : vec_pairs) {
    if (overflowed[p]) wide_pairs.push_back(p);
  }
  local.pairs_8bit = vec_pairs.size() - wide_pairs.size();
  if (!wide_pairs.empty()) {
    std::fill(overflowed.begin(), overflowed.end(), std::uint8_t{0});
    req.pairs = wide_pairs;
    local.cohorts += (wide_pairs.size() + 15) / 16;
#if defined(SALOBA_SIMD_AVX2)
    if (use_avx2) {
      detail::run_pass_u16_avx2(req);
    } else {
      detail::run_pass_u16_generic(req);
    }
#else
    detail::run_pass_u16_generic(req);
#endif
    for (std::size_t p : wide_pairs) {
      if (overflowed[p]) scalar_pairs.push_back(p);
    }
    local.rescued_16bit = wide_pairs.size() - (scalar_pairs.size() - local.rescued_32bit);
  }
  local.rescued_32bit = scalar_pairs.size();

  // int32 scalar settlement (oversize pairs + double-saturated rescues).
  if (!scalar_pairs.empty()) {
    util::parallel_for_indexed(
        scalar_pairs.size(),
        [&](std::size_t k) {
          const std::size_t p = scalar_pairs[k];
          settle_scalar(batch, scoring, zdrop, p, results[p], cells[p]);
        },
        threads);
  }

  if (stats != nullptr) {
    local.cells = std::accumulate(cells.begin(), cells.end(), std::size_t{0});
    local.wall_ms = timer.millis();
    *stats = local;
  }
  return results;
}

}  // namespace saloba::align::simd
