// Inter-sequence SIMD extension engine (ROADMAP: "SIMD-striped extension on
// the host path"). Packs independent (query, reference) extension jobs into
// vector lanes — 32 pairs at 8-bit, 16 at 16-bit — and runs the banded,
// z-drop-aware affine DP on all of them in lockstep, AnySeq/GPU-style
// inter-task parallelism on the host. Results (score, ref_end, query_end,
// cells computed) are bit-identical to align::smith_waterman_banded /
// align::align_batch; overflow is handled by a widening rescue ladder:
//
//   8-bit saturating lanes  ->  16-bit saturating lanes  ->  int32 scalar
//
// A lane whose running score saturates is evicted and re-run in the next
// wider pass; pairs too long for 16-bit index bookkeeping go straight to
// the int32 path (smith_waterman_striped_ends when unbanded and un-pruned,
// smith_waterman_banded otherwise).
//
// ISA selection is a runtime decision: when the build enables AVX2
// (SALOBA_SIMD_AVX2) and the CPU reports it, the intrinsic kernels from
// simd_engine_avx2.cpp run; otherwise the portable OpsGeneric kernels do.
// Both implement the same Ops vocabulary (simd_vec.hpp) against the same
// kernel template (simd_kernel.hpp), so outputs never depend on the ISA.
#pragma once

#include <cstddef>
#include <vector>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/sequence.hpp"

namespace saloba::align::simd {

/// True when this binary contains the AVX2 kernels (build-time flag).
bool compiled_with_avx2();

/// True when the host CPU reports AVX2 (runtime CPUID).
bool cpu_supports_avx2();

/// The kernel flavor align_batch will dispatch to: "avx2" or "generic".
const char* isa_name();

/// Per-call engine telemetry.
struct EngineStats {
  std::size_t pairs = 0;          ///< total pairs aligned
  std::size_t pairs_8bit = 0;     ///< settled by the 8-bit pass
  std::size_t rescued_16bit = 0;  ///< settled by the 16-bit rescue pass
  std::size_t rescued_32bit = 0;  ///< settled by int32 scalar (incl. oversize)
  std::size_t cohorts = 0;        ///< vector cohorts executed (both widths)
  std::size_t cells = 0;          ///< in-band DP cells, oracle-identical count
  bool avx2 = false;              ///< intrinsic kernels were dispatched
  double wall_ms = 0.0;
};

/// Aligns every pair of `batch` through the SIMD ladder. Honors per-pair
/// bands (seq::PairBatch::band_of) and z-drop exactly like
/// align::align_batch — same scores, same endpoints, same cell counts,
/// deterministic input-order output. `threads` caps host threads across
/// cohorts (0 = default team).
std::vector<AlignmentResult> align_batch(const seq::PairBatch& batch,
                                         const ScoringScheme& scoring,
                                         EngineStats* stats = nullptr, int threads = 0,
                                         Score zdrop = 0);

}  // namespace saloba::align::simd
