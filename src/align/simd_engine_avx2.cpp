// AVX2 implementations of the Ops vocabulary (simd_vec.hpp) and the two
// intrinsic pass entry points. This is the only translation unit compiled
// with -mavx2 (CMake per-source flag, gated by SALOBA_ENABLE_AVX2 and a
// compiler check); callers reach it only after align::simd::cpu_supports_avx2
// passes at runtime. Keep this TU lean: with -mavx2 every function body here
// uses VEX encodings, so nothing defined here may be reachable from the
// generic path.
#if defined(SALOBA_SIMD_AVX2)

#include <immintrin.h>

#include <cstdint>

#include "align/simd_kernel.hpp"

namespace saloba::align::simd {
namespace {

/// 32 pairs per register, 8-bit saturating score lanes.
struct OpsU8Avx2 {
  using Elem = std::uint8_t;
  static constexpr int kLanes = 32;
  static constexpr int kSatMax = 255;
  static constexpr int kIdxHalves = 2;
  static constexpr int kIdxLanes = 16;
  using Vec = __m256i;
  using IVec = __m256i;

  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec splat(Elem s) { return _mm256_set1_epi8(static_cast<char>(s)); }
  static Vec load_bases(const std::uint8_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static Vec adds(Vec a, Vec b) { return _mm256_adds_epu8(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm256_subs_epu8(a, b); }
  static Vec maxu(Vec a, Vec b) { return _mm256_max_epu8(a, b); }
  static Vec cmpeq(Vec a, Vec b) { return _mm256_cmpeq_epi8(a, b); }
  static Vec cmpgt(Vec a, Vec b) {  // unsigned a > b: a == max(a,b) and a != b
    return _mm256_andnot_si256(_mm256_cmpeq_epi8(a, b),
                               _mm256_cmpeq_epi8(_mm256_max_epu8(a, b), a));
  }
  static Vec vand(Vec a, Vec b) { return _mm256_and_si256(a, b); }
  static Vec vor(Vec a, Vec b) { return _mm256_or_si256(a, b); }
  static Vec andnot(Vec mask, Vec v) { return _mm256_andnot_si256(mask, v); }
  static Vec blend(Vec mask, Vec a, Vec b) { return _mm256_blendv_epi8(b, a, mask); }
  static bool any(Vec m) { return _mm256_testz_si256(m, m) == 0; }
  static void store(Elem* dst, Vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
  static void store_mask(std::uint8_t* dst, Vec m) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), m);  // 0xFF = set
  }

  static IVec izero() { return _mm256_setzero_si256(); }
  static IVec isplat(std::uint16_t s) { return _mm256_set1_epi16(static_cast<short>(s)); }
  static IVec iload(const std::uint16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void istore(std::uint16_t* dst, IVec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
  static IVec icmpge(IVec a, IVec b) {  // unsigned a >= b
    return _mm256_cmpeq_epi16(_mm256_max_epu16(a, b), a);
  }
  static IVec iand(IVec a, IVec b) { return _mm256_and_si256(a, b); }
  static IVec iblend(IVec mask, IVec a, IVec b) { return _mm256_blendv_epi8(b, a, mask); }
  static IVec expand_mask(Vec m, int half) {
    const __m128i bytes =
        half == 0 ? _mm256_castsi256_si128(m) : _mm256_extracti128_si256(m, 1);
    return _mm256_cvtepi8_epi16(bytes);  // sign-extends 0xFF to 0xFFFF
  }
  static Vec compress_mask(IVec m0, IVec m1) {
    // packs interleaves 128-bit halves: [m0_lo m1_lo m0_hi m1_hi]; the
    // permute restores lane order [m0 m1]. Saturating signed pack maps
    // 0xFFFF (-1) to 0xFF and 0 to 0.
    return _mm256_permute4x64_epi64(_mm256_packs_epi16(m0, m1), 0xD8);
  }
};

/// 16 pairs per register, 16-bit saturating score lanes. Index domain and
/// DP domain coincide (both 16-bit), so mask expansion/compression are
/// identities.
struct OpsU16Avx2 {
  using Elem = std::uint16_t;
  static constexpr int kLanes = 16;
  static constexpr int kSatMax = 65535;
  static constexpr int kIdxHalves = 1;
  static constexpr int kIdxLanes = 16;
  using Vec = __m256i;
  using IVec = __m256i;

  static Vec zero() { return _mm256_setzero_si256(); }
  static Vec splat(Elem s) { return _mm256_set1_epi16(static_cast<short>(s)); }
  static Vec load_bases(const std::uint8_t* p) {  // widening: 16 codes -> 16 lanes
    return _mm256_cvtepu8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static Vec adds(Vec a, Vec b) { return _mm256_adds_epu16(a, b); }
  static Vec subs(Vec a, Vec b) { return _mm256_subs_epu16(a, b); }
  static Vec maxu(Vec a, Vec b) { return _mm256_max_epu16(a, b); }
  static Vec cmpeq(Vec a, Vec b) { return _mm256_cmpeq_epi16(a, b); }
  static Vec cmpgt(Vec a, Vec b) {  // unsigned a > b
    return _mm256_andnot_si256(_mm256_cmpeq_epi16(a, b),
                               _mm256_cmpeq_epi16(_mm256_max_epu16(a, b), a));
  }
  static Vec vand(Vec a, Vec b) { return _mm256_and_si256(a, b); }
  static Vec vor(Vec a, Vec b) { return _mm256_or_si256(a, b); }
  static Vec andnot(Vec mask, Vec v) { return _mm256_andnot_si256(mask, v); }
  static Vec blend(Vec mask, Vec a, Vec b) { return _mm256_blendv_epi8(b, a, mask); }
  static bool any(Vec m) { return _mm256_testz_si256(m, m) == 0; }
  static void store(Elem* dst, Vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
  static void store_mask(std::uint8_t* dst, Vec m) {
    alignas(32) std::uint16_t tmp[kLanes];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp), m);
    for (int k = 0; k < kLanes; ++k) dst[k] = tmp[k] ? 1 : 0;
  }

  static IVec izero() { return _mm256_setzero_si256(); }
  static IVec isplat(std::uint16_t s) { return _mm256_set1_epi16(static_cast<short>(s)); }
  static IVec iload(const std::uint16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void istore(std::uint16_t* dst, IVec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
  static IVec icmpge(IVec a, IVec b) {
    return _mm256_cmpeq_epi16(_mm256_max_epu16(a, b), a);
  }
  static IVec iand(IVec a, IVec b) { return _mm256_and_si256(a, b); }
  static IVec iblend(IVec mask, IVec a, IVec b) { return _mm256_blendv_epi8(b, a, mask); }
  static IVec expand_mask(Vec m, int /*half*/) { return m; }
  static Vec compress_mask(IVec m0, IVec /*m1*/) { return m0; }
};

}  // namespace

namespace detail {

void run_pass_u8_avx2(const PassRequest& req) { run_pass<OpsU8Avx2>(req); }
void run_pass_u16_avx2(const PassRequest& req) { run_pass<OpsU16Avx2>(req); }

}  // namespace detail
}  // namespace saloba::align::simd

#endif  // SALOBA_SIMD_AVX2
