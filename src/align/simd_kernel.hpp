// Internal header of the inter-sequence SIMD extension engine: the banded,
// z-drop-aware Smith–Waterman cohort kernel, written once against the Ops
// vocabulary of simd_vec.hpp and instantiated per ISA
// (simd_engine.cpp: generic fallback; simd_engine_avx2.cpp: AVX2).
//
// Layout (AnySeq/GPU-style inter-task parallelism on the host): one vector
// lane = one independent (query, reference) pair. A cohort of Ops::kLanes
// pairs — pre-sorted by length so the padded rectangle stays tight — walks
// reference rows in lockstep; every lane applies its own band window
// |i - j| <= band via per-cell masks, so banded pairs prune bit-identically
// to align::smith_waterman_banded:
//
//   * in-band H values are exact (cells outside a lane's window are forced
//     to H = 0 after computation, which is precisely the out-of-band read
//     semantics of the scalar oracle; E/F clamp to 0 in the saturating
//     domain, equivalent to the oracle's -inf because the zero floor of H
//     dominates any non-positive gap chain),
//   * the global best is tracked with the canonical row-major tie-break
//     (smallest ref_end, then smallest query_end — align::improves),
//   * z-drop terminates a lane's row sweep under exactly the oracle's
//     condition, and
//   * a lane whose score saturates (kSatMax) is evicted for the wider pass
//     — saturation can only surface as a stored in-band kSatMax, so the
//     per-row detection is exact, never silent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/sequence.hpp"
#include "util/parallel.hpp"

namespace saloba::align::simd::detail {

/// Pairs longer than this on either side skip the narrow passes entirely:
/// endpoint bookkeeping lives in 16-bit index lanes, and a guard well below
/// 65535 keeps every index comparison unsigned-exact.
inline constexpr std::size_t kMaxSimdLen = 32000;

/// One widening pass over a set of pairs. `pairs` must arrive pre-sorted
/// into cohort order (the engine sorts by length once); slots of `results`
/// and `cells` are written only for pairs the pass settles, and pairs whose
/// scores saturate are flagged in `overflowed` for the next-wider pass.
struct PassRequest {
  const seq::PairBatch* batch = nullptr;
  const ScoringScheme* scoring = nullptr;
  Score zdrop = 0;
  std::span<const std::size_t> pairs;
  std::vector<AlignmentResult>* results = nullptr;
  std::vector<std::size_t>* cells = nullptr;
  std::vector<std::uint8_t>* overflowed = nullptr;
  int threads = 0;
};

// ISA entry points (one per lane width). The generic pair is always
// compiled; the AVX2 pair exists only when the build enables it and is only
// called after a runtime CPUID check.
void run_pass_u8_generic(const PassRequest& req);
void run_pass_u16_generic(const PassRequest& req);
#if defined(SALOBA_SIMD_AVX2)
void run_pass_u8_avx2(const PassRequest& req);
void run_pass_u16_avx2(const PassRequest& req);
#endif

template <class Ops>
class CohortKernel {
 public:
  static constexpr int kW = Ops::kLanes;
  static constexpr int kKH = Ops::kIdxHalves;
  static constexpr int kIW = kW / kKH;

  /// Runs one cohort of up to kW pairs (batch indices in `lane_pairs`).
  static void run_cohort(const PassRequest& req, std::span<const std::size_t> lane_pairs) {
    using Vec = typename Ops::Vec;
    using IVec = typename Ops::IVec;
    using Elem = typename Ops::Elem;

    const seq::PairBatch& batch = *req.batch;
    const ScoringScheme& scoring = *req.scoring;
    const int lanes_used = static_cast<int>(lane_pairs.size());

    // --- per-lane scalar bookkeeping -----------------------------------
    std::int64_t n[kW] = {}, m[kW] = {}, band[kW] = {}, last_row[kW] = {};
    bool alive[kW] = {};
    std::size_t cells_acc[kW] = {};
    std::int64_t max_n = 0, max_m = 0;
    for (int l = 0; l < lanes_used; ++l) {
      const std::size_t p = lane_pairs[static_cast<std::size_t>(l)];
      n[l] = static_cast<std::int64_t>(batch.refs[p].size());
      m[l] = static_cast<std::int64_t>(batch.queries[p].size());
      // band 0 = full table: a band covering the longer side reproduces the
      // plain algorithm exactly (the oracle's own convention).
      const std::size_t b = batch.band_of(p);
      band[l] = b != 0 ? static_cast<std::int64_t>(std::min(b, 2 * kMaxSimdLen))
                       : std::max(n[l], m[l]);
      last_row[l] = std::min(n[l] - 1, m[l] - 1 + band[l]);
      alive[l] = n[l] > 0 && m[l] > 0;
      max_n = std::max(max_n, n[l]);
      max_m = std::max(max_m, m[l]);
    }
    if (max_n == 0 || max_m == 0) {
      finish(req, lane_pairs, nullptr, nullptr, nullptr, nullptr, cells_acc);
      return;
    }

    // --- SoA transposed base buffers -----------------------------------
    // refs_t[i*kW + l] = base i of lane l's reference (pad 0xF0: never equal
    // to a real code or to itself across a real lane, and every padded cell
    // is out-of-window anyway).
    std::vector<std::uint8_t> refs_t(static_cast<std::size_t>(max_n) * kW, 0xF0);
    std::vector<std::uint8_t> queries_t(static_cast<std::size_t>(max_m) * kW, 0xF0);
    for (int l = 0; l < lanes_used; ++l) {
      const std::size_t p = lane_pairs[static_cast<std::size_t>(l)];
      for (std::int64_t i = 0; i < n[l]; ++i) {
        refs_t[static_cast<std::size_t>(i) * kW + l] = batch.refs[p][static_cast<std::size_t>(i)];
      }
      for (std::int64_t j = 0; j < m[l]; ++j) {
        queries_t[static_cast<std::size_t>(j) * kW + l] =
            batch.queries[p][static_cast<std::size_t>(j)];
      }
    }

    // --- DP state -------------------------------------------------------
    // H[j] / F[j]: column state vectors. Zero-initialisation doubles as the
    // out-of-band value (H = 0; F = 0 is the saturating image of -inf).
    std::vector<Vec> h_col(static_cast<std::size_t>(max_m), Ops::zero());
    std::vector<Vec> f_col(static_cast<std::size_t>(max_m), Ops::zero());

    const auto clamp_elem = [](Score s) {
      return static_cast<Elem>(std::min<Score>(s, Ops::kSatMax));
    };
    const Vec alpha_v = Ops::splat(clamp_elem(scoring.alpha()));
    const Vec beta_v = Ops::splat(clamp_elem(scoring.beta()));
    const Vec match_v = Ops::splat(clamp_elem(scoring.match));
    const Vec mism_v = Ops::splat(clamp_elem(scoring.mismatch));
    const Vec n_code = Ops::splat(static_cast<Elem>(seq::kBaseN));
    const Vec sat_v = Ops::splat(static_cast<Elem>(Ops::kSatMax));
    const Vec zdrop_v = Ops::splat(clamp_elem(std::max<Score>(req.zdrop, 0)));

    Vec best = Ops::zero();
    Vec overflow = Ops::zero();
    IVec best_row[kKH], best_col[kKH];
    for (int h = 0; h < kKH; ++h) best_row[h] = best_col[h] = Ops::izero();

    alignas(32) std::uint16_t lo16[kW], hi16[kW];
    alignas(32) std::uint8_t mask_bytes[kW];

    for (std::int64_t i = 0; i < max_n; ++i) {
      // Per-lane window for this row (scalar side; empty = {0xFFFF, 0}).
      std::int64_t union_lo = max_m, union_hi = -1;
      bool any_alive = false;
      for (int l = 0; l < kW; ++l) {
        lo16[l] = 0xFFFF;
        hi16[l] = 0;
        if (!alive[l] || i >= n[l]) continue;
        const std::int64_t lo = i > band[l] ? i - band[l] : 0;
        const std::int64_t hi = std::min(m[l] - 1, i + band[l]);
        if (lo > hi) {
          // The band moved past the query end: no row from here on holds
          // in-band cells for this lane (the oracle's empty-window rows).
          alive[l] = false;
          continue;
        }
        lo16[l] = static_cast<std::uint16_t>(lo);
        hi16[l] = static_cast<std::uint16_t>(hi);
        cells_acc[l] += static_cast<std::size_t>(hi - lo + 1);
        union_lo = std::min(union_lo, lo);
        union_hi = std::max(union_hi, hi);
        any_alive = true;
      }
      if (!any_alive) break;

      IVec lo_v[kKH], hi_v[kKH];
      for (int h = 0; h < kKH; ++h) {
        lo_v[h] = Ops::iload(lo16 + h * kIW);
        hi_v[h] = Ops::iload(hi16 + h * kIW);
      }

      const Vec ref_v = Ops::load_bases(refs_t.data() + static_cast<std::size_t>(i) * kW);
      const Vec ref_is_n = Ops::cmpeq(ref_v, n_code);

      Vec carry = Ops::zero();   // H(i-1, j-1) diagonal feed
      Vec h_left = Ops::zero();  // H(i, j-1)
      Vec e = Ops::zero();       // E(i, j-1), clamped domain
      Vec row_best = Ops::zero();
      IVec row_arg[kKH];
      for (int h = 0; h < kKH; ++h) row_arg[h] = Ops::izero();

      // Start one column early so `carry` picks up H(i-1, lo-1) for lanes
      // whose window begins at union_lo (the oracle's h_diag seed). That
      // cell is out-of-band for every lane, so its own value is masked off.
      const std::int64_t j_start = union_lo > 0 ? union_lo - 1 : 0;
      for (std::int64_t j = j_start; j <= union_hi; ++j) {
        const IVec j_v = Ops::isplat(static_cast<std::uint16_t>(j));
        IVec m0 = Ops::iand(Ops::icmpge(j_v, lo_v[0]), Ops::icmpge(hi_v[0], j_v));
        IVec m1 = kKH == 2 ? Ops::iand(Ops::icmpge(j_v, lo_v[kKH - 1]),
                                       Ops::icmpge(hi_v[kKH - 1], j_v))
                           : m0;
        const Vec in_band = Ops::compress_mask(m0, m1);

        const Vec q_v = Ops::load_bases(queries_t.data() + static_cast<std::size_t>(j) * kW);
        const Vec is_match = Ops::andnot(Ops::vor(Ops::cmpeq(q_v, n_code), ref_is_n),
                                         Ops::cmpeq(ref_v, q_v));

        e = Ops::maxu(Ops::subs(h_left, alpha_v), Ops::subs(e, beta_v));
        const Vec h_up = h_col[static_cast<std::size_t>(j)];
        const Vec f = Ops::maxu(Ops::subs(h_up, alpha_v),
                                Ops::subs(f_col[static_cast<std::size_t>(j)], beta_v));
        Vec h = Ops::blend(is_match, Ops::adds(carry, match_v), Ops::subs(carry, mism_v));
        carry = h_up;
        h = Ops::maxu(h, e);
        h = Ops::maxu(h, f);
        h = Ops::vand(h, in_band);
        h_col[static_cast<std::size_t>(j)] = h;
        f_col[static_cast<std::size_t>(j)] = Ops::vand(f, in_band);
        h_left = h;

        // Endpoint bookkeeping: first j that strictly improves the running
        // row maximum = smallest query_end among the row's best cells.
        const Vec gt = Ops::cmpgt(h, row_best);
        row_best = Ops::maxu(row_best, h);
        for (int half = 0; half < kKH; ++half) {
          row_arg[half] = Ops::iblend(Ops::expand_mask(gt, half), j_v, row_arg[half]);
        }
      }

      // Global best: a row that strictly improves it sets ref_end = i (the
      // first row carrying the final maximum, the oracle's tie-break).
      const Vec improved = Ops::cmpgt(row_best, best);
      best = Ops::maxu(best, row_best);
      const IVec i_v = Ops::isplat(static_cast<std::uint16_t>(i));
      for (int half = 0; half < kKH; ++half) {
        const IVec wide = Ops::expand_mask(improved, half);
        best_row[half] = Ops::iblend(wide, i_v, best_row[half]);
        best_col[half] = Ops::iblend(wide, row_arg[half], best_col[half]);
      }

      // Overflow eviction: a saturated lane's scores are untrustworthy from
      // this row on — hand the pair to the wider pass.
      const Vec sat = Ops::cmpeq(row_best, sat_v);
      if (Ops::any(sat)) {
        Ops::store_mask(mask_bytes, sat);
        overflow = Ops::vor(overflow, sat);
        for (int l = 0; l < kW; ++l) {
          if (mask_bytes[l]) alive[l] = false;
        }
      }

      // Z-drop (oracle rule): while rows with in-band cells remain, stop a
      // lane whose row best trails its global best by more than zdrop. The
      // clamped-domain comparison is exact for unsaturated lanes.
      if (req.zdrop > 0) {
        const Vec drop = Ops::cmpgt(Ops::subs(best, zdrop_v), row_best);
        if (Ops::any(drop)) {
          Ops::store_mask(mask_bytes, drop);
          for (int l = 0; l < kW; ++l) {
            if (mask_bytes[l] && alive[l] && i < last_row[l]) alive[l] = false;
          }
        }
      }
    }

    alignas(32) Elem best_out[kW];
    alignas(32) std::uint16_t row_out[kW], col_out[kW];
    alignas(32) std::uint8_t of_out[kW];
    Ops::store(best_out, best);
    Ops::store_mask(of_out, overflow);
    for (int h = 0; h < kKH; ++h) {
      Ops::istore(row_out + h * kIW, best_row[h]);
      Ops::istore(col_out + h * kIW, best_col[h]);
    }
    finish(req, lane_pairs, best_out, row_out, col_out, of_out, cells_acc);
  }

 private:
  using Elem = typename Ops::Elem;

  static void finish(const PassRequest& req, std::span<const std::size_t> lane_pairs,
                     const Elem* best, const std::uint16_t* row, const std::uint16_t* col,
                     const std::uint8_t* overflow, const std::size_t* cells) {
    for (std::size_t l = 0; l < lane_pairs.size(); ++l) {
      const std::size_t p = lane_pairs[l];
      if (overflow != nullptr && overflow[l]) {
        (*req.overflowed)[p] = 1;
        continue;
      }
      AlignmentResult r;
      if (best != nullptr && best[l] > 0) {
        r.score = static_cast<Score>(best[l]);
        r.ref_end = static_cast<std::int32_t>(row[l]);
        r.query_end = static_cast<std::int32_t>(col[l]);
      }
      (*req.results)[p] = r;
      (*req.cells)[p] = cells[l];
    }
  }
};

/// Shared pass driver: cohorts run independently (host-parallel when a
/// thread budget allows), each writing only its own pairs' slots.
template <class Ops>
void run_pass(const PassRequest& req) {
  constexpr std::size_t W = static_cast<std::size_t>(Ops::kLanes);
  const std::size_t cohorts = (req.pairs.size() + W - 1) / W;
  util::parallel_for_indexed(
      cohorts,
      [&](std::size_t c) {
        const std::size_t begin = c * W;
        const std::size_t count = std::min(W, req.pairs.size() - begin);
        CohortKernel<Ops>::run_cohort(req, req.pairs.subspan(begin, count));
      },
      req.threads);
}

}  // namespace saloba::align::simd::detail
