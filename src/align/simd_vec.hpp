// Portable lane-vector abstraction behind the inter-sequence SIMD extension
// engine (align/simd_engine.hpp). The DP kernel (simd_kernel.hpp) is written
// once against a small "Ops" vocabulary; this header provides the generic
// fallback implementation (plain fixed-width arrays the compiler may
// auto-vectorise), and simd_engine_avx2.cpp provides AVX2 intrinsic
// implementations of the same vocabulary. Which one runs is a runtime CPUID
// decision (align::simd::cpu_supports_avx2), so one binary serves both old
// and new hardware.
//
// The Ops vocabulary, shared by every implementation:
//
//   Elem            unsigned DP lane type (uint8_t or uint16_t); scores are
//                   carried with *saturating* unsigned arithmetic: the
//                   local-alignment zero floor maps to saturation at 0, and
//                   saturation at kSatMax is the overflow signal that evicts
//                   a lane to the next-wider pass (8 -> 16 -> int32).
//   kLanes          pairs packed per vector (32 at 8-bit, 16 at 16-bit).
//   kIdxHalves      how many index vectors (IVec, uint16 lanes) cover one
//                   Vec: 2 for 8-bit lanes, 1 for 16-bit lanes. Endpoint
//                   bookkeeping (ref_end/query_end) lives in the index
//                   domain because positions do not fit a DP lane.
//   Vec / IVec      the DP-domain and index-domain register types.
//   zero/splat/load_bases/adds/subs/maxu/cmpeq/vor/blend/vand/andnot/
//   cmpgt/any/store/store_mask and the i*-prefixed index-domain twins —
//   see OpsGeneric below for the reference semantics of each.
#pragma once

#include <cstdint>

namespace saloba::align::simd {

/// Reference (portable) implementation of the Ops vocabulary: fixed-width
/// arrays and plain loops. Correctness oracle for the intrinsic backends and
/// the fallback on non-AVX2 builds/hosts.
template <typename ElemT, int W, int SatMaxV>
struct OpsGeneric {
  using Elem = ElemT;
  static constexpr int kLanes = W;
  static constexpr int kSatMax = SatMaxV;
  static constexpr int kIdxHalves = sizeof(Elem) == 1 ? 2 : 1;
  static constexpr int kIdxLanes = kLanes / kIdxHalves;

  struct Vec {
    Elem v[kLanes];
  };
  struct IVec {
    std::uint16_t v[kIdxLanes];
  };

  static Vec zero() {
    Vec o{};
    return o;
  }
  static Vec splat(Elem s) {
    Vec o;
    for (auto& l : o.v) l = s;
    return o;
  }
  /// Widening load: kLanes base codes (one byte each) into DP lanes.
  static Vec load_bases(const std::uint8_t* p) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = static_cast<Elem>(p[k]);
    return o;
  }
  /// Saturating unsigned add — saturation at kSatMax is overflow detection.
  static Vec adds(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) {
      unsigned s = static_cast<unsigned>(a.v[k]) + static_cast<unsigned>(b.v[k]);
      o.v[k] = static_cast<Elem>(s > static_cast<unsigned>(kSatMax)
                                     ? static_cast<unsigned>(kSatMax)
                                     : s);
    }
    return o;
  }
  /// Saturating unsigned subtract — the floor at 0 is the local-alignment
  /// clamp (out-of-band / negative E/F collapse to the neutral element).
  static Vec subs(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] > b.v[k] ? a.v[k] - b.v[k] : 0;
    return o;
  }
  static Vec maxu(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return o;
  }
  static Vec cmpeq(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] == b.v[k] ? static_cast<Elem>(~Elem{0}) : 0;
    return o;
  }
  static Vec cmpgt(const Vec& a, const Vec& b) {  // unsigned a > b
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] > b.v[k] ? static_cast<Elem>(~Elem{0}) : 0;
    return o;
  }
  static Vec vand(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] & b.v[k];
    return o;
  }
  static Vec vor(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] | b.v[k];
    return o;
  }
  static Vec andnot(const Vec& mask, const Vec& v) {  // v & ~mask
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = static_cast<Elem>(v.v[k] & ~mask.v[k]);
    return o;
  }
  static Vec blend(const Vec& mask, const Vec& a, const Vec& b) {  // mask ? a : b
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = mask.v[k] ? a.v[k] : b.v[k];
    return o;
  }
  static bool any(const Vec& m) {
    for (int k = 0; k < kLanes; ++k) {
      if (m.v[k]) return true;
    }
    return false;
  }
  static void store(Elem* dst, const Vec& v) {
    for (int k = 0; k < kLanes; ++k) dst[k] = v.v[k];
  }
  /// One byte per lane, nonzero where the mask lane is set — the scalar-side
  /// readout for overflow / z-drop decisions.
  static void store_mask(std::uint8_t* dst, const Vec& m) {
    for (int k = 0; k < kLanes; ++k) dst[k] = m.v[k] ? 1 : 0;
  }

  // --- index domain (uint16 lanes) ---------------------------------------
  static IVec izero() {
    IVec o{};
    return o;
  }
  static IVec isplat(std::uint16_t s) {
    IVec o;
    for (auto& l : o.v) l = s;
    return o;
  }
  static IVec iload(const std::uint16_t* p) {
    IVec o;
    for (int k = 0; k < kIdxLanes; ++k) o.v[k] = p[k];
    return o;
  }
  static void istore(std::uint16_t* dst, const IVec& v) {
    for (int k = 0; k < kIdxLanes; ++k) dst[k] = v.v[k];
  }
  static IVec icmpge(const IVec& a, const IVec& b) {  // unsigned a >= b
    IVec o;
    for (int k = 0; k < kIdxLanes; ++k) o.v[k] = a.v[k] >= b.v[k] ? 0xFFFF : 0;
    return o;
  }
  static IVec iand(const IVec& a, const IVec& b) {
    IVec o;
    for (int k = 0; k < kIdxLanes; ++k) o.v[k] = a.v[k] & b.v[k];
    return o;
  }
  static IVec iblend(const IVec& mask, const IVec& a, const IVec& b) {  // mask ? a : b
    IVec o;
    for (int k = 0; k < kIdxLanes; ++k) o.v[k] = mask.v[k] ? a.v[k] : b.v[k];
    return o;
  }
  /// Widens DP-mask lanes [half*kIdxLanes, (half+1)*kIdxLanes) to 16-bit.
  static IVec expand_mask(const Vec& m, int half) {
    IVec o;
    for (int k = 0; k < kIdxLanes; ++k) {
      o.v[k] = m.v[half * kIdxLanes + k] ? 0xFFFF : 0;
    }
    return o;
  }
  /// Narrows kIdxHalves index-domain masks back to one DP-domain mask.
  static Vec compress_mask(const IVec& m0, const IVec& m1) {
    Vec o;
    for (int k = 0; k < kIdxLanes; ++k) o.v[k] = m0.v[k] ? static_cast<Elem>(~Elem{0}) : 0;
    if constexpr (kIdxHalves == 2) {
      for (int k = 0; k < kIdxLanes; ++k) {
        o.v[kIdxLanes + k] = m1.v[k] ? static_cast<Elem>(~Elem{0}) : 0;
      }
    }
    return o;
  }
};

using OpsU8Generic = OpsGeneric<std::uint8_t, 32, 255>;
using OpsU16Generic = OpsGeneric<std::uint16_t, 16, 65535>;

/// Signed 32-bit lane vocabulary (8 lanes per 256-bit register) for the
/// chaining push kernel (seedext/chain_kernel.hpp): chain scores and gap
/// penalties are signed int32, not saturating-unsigned DP cells, so this is a
/// separate, smaller vocabulary — wrapping add/sub (exactly the modular
/// semantics of _mm256_add_epi32/_mm256_sub_epi32, so ineligible lanes whose
/// garbage intermediates wrap are still bit-identical across ISAs before the
/// mask discards them), signed compares, blend. The AVX2 twin lives in
/// seedext/chain_engine_avx2.cpp.
struct OpsI32Generic {
  static constexpr int kLanes = 8;
  struct Vec {
    std::int32_t v[kLanes];
  };

  static Vec splat(std::int32_t s) {
    Vec o;
    for (auto& l : o.v) l = s;
    return o;
  }
  static Vec load(const std::int32_t* p) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = p[k];
    return o;
  }
  static void store(std::int32_t* dst, const Vec& v) {
    for (int k = 0; k < kLanes; ++k) dst[k] = v.v[k];
  }
  /// Wrapping (two's-complement) add, the _mm256_add_epi32 semantics.
  static Vec add(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) {
      o.v[k] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[k]) +
                                         static_cast<std::uint32_t>(b.v[k]));
    }
    return o;
  }
  /// Wrapping (two's-complement) subtract, the _mm256_sub_epi32 semantics.
  static Vec sub(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) {
      o.v[k] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[k]) -
                                         static_cast<std::uint32_t>(b.v[k]));
    }
    return o;
  }
  static Vec smax(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] > b.v[k] ? a.v[k] : b.v[k];
    return o;
  }
  static Vec smin(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] < b.v[k] ? a.v[k] : b.v[k];
    return o;
  }
  static Vec cmpgt(const Vec& a, const Vec& b) {  // signed a > b
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] > b.v[k] ? -1 : 0;
    return o;
  }
  static Vec vand(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) {
      o.v[k] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[k]) &
                                         static_cast<std::uint32_t>(b.v[k]));
    }
    return o;
  }
  static Vec blend(const Vec& mask, const Vec& a, const Vec& b) {  // mask ? a : b
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = mask.v[k] ? a.v[k] : b.v[k];
    return o;
  }
  static bool any(const Vec& m) {
    for (int k = 0; k < kLanes; ++k) {
      if (m.v[k]) return true;
    }
    return false;
  }
  /// Absolute value, _mm256_abs_epi32 semantics (INT_MIN stays INT_MIN).
  static Vec sabs(const Vec& a) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) {
      o.v[k] = a.v[k] < 0 ? static_cast<std::int32_t>(
                                0u - static_cast<std::uint32_t>(a.v[k]))
                          : a.v[k];
    }
    return o;
  }
  /// Per-lane arithmetic >> by the compile-time immediate (sign-filling).
  template <int Shift>
  static Vec sra(const Vec& a) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) o.v[k] = a.v[k] >> Shift;
    return o;
  }
  /// Low-32-bit product, _mm256_mullo_epi32 semantics (wrapping).
  static Vec mullo(const Vec& a, const Vec& b) {
    Vec o;
    for (int k = 0; k < kLanes; ++k) {
      o.v[k] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[k]) *
                                         static_cast<std::uint32_t>(b.v[k]));
    }
    return o;
  }
};

}  // namespace saloba::align::simd
