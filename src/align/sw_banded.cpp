#include "align/sw_banded.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace saloba::align {
namespace {
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;
}

BandedResult smith_waterman_banded(std::span<const seq::BaseCode> ref,
                                   std::span<const seq::BaseCode> query,
                                   const ScoringScheme& scoring, std::size_t band) {
  SALOBA_CHECK_MSG(band >= 1, "band must be >= 1");
  return smith_waterman_banded(ref, query, scoring, BandedParams{band, 0});
}

BandedResult smith_waterman_banded(std::span<const seq::BaseCode> ref,
                                   std::span<const seq::BaseCode> query,
                                   const ScoringScheme& scoring, const BandedParams& params) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  // band == 0 means unbanded: a band covering the whole table reproduces
  // plain Smith–Waterman exactly, so this one loop serves both.
  const std::size_t band = params.band != 0 ? params.band : std::max(n, m);
  BandedResult out;
  if (n == 0 || m == 0) return out;

  // Row arrays indexed by query position; cells outside the band read as
  // H = 0 is wrong for E/F chains, so out-of-band reads H = 0, E/F = -inf:
  // the local-alignment zero floor makes H=0 the correct neutral element,
  // while gaps cannot extend across the band boundary.
  std::vector<Score> h_row(m + 1, 0), f_col(m + 1, kNegInf);
  AlignmentResult best;

  // Last row whose band window is non-empty (rows past m-1+band hold no
  // in-band cells): z-drop only counts as a drop while rows with real work
  // remain, so `zdropped` always implies cells were actually pruned.
  const std::size_t last_row = std::min(n - 1, m - 1 + band);
  for (std::size_t i = 0; i < n; ++i) {
    // Band limits for this row: j in [i-band, i+band] (clamped).
    std::size_t j_lo = (i >= band) ? i - band : 0;
    std::size_t j_hi = std::min(m - 1, i + band);
    if (j_lo > j_hi) continue;

    Score h_diag = (j_lo == 0) ? 0 : h_row[j_lo];  // H(i-1, j_lo-1)
    // Cells left of the band boundary are out of band for this row.
    Score h_left = 0;
    Score e = kNegInf;
    Score row_best = kNegInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      e = std::max(h_left - scoring.alpha(), e - scoring.beta());
      Score f = std::max(h_row[j + 1] - scoring.alpha(), f_col[j + 1] - scoring.beta());
      Score h =
          std::max({Score{0}, h_diag + scoring.substitution(ref[i], query[j]), e, f});

      h_diag = h_row[j + 1];
      h_row[j + 1] = h;
      f_col[j + 1] = f;
      h_left = h;
      ++out.cells_computed;
      row_best = std::max(row_best, h);

      if (h > best.score) {
        best = AlignmentResult{h, static_cast<std::int32_t>(i), static_cast<std::int32_t>(j)};
      }
    }
    // No band-edge resets are needed: the band advances one column per row,
    // so every neighbour an in-band cell reads was either in-band on the
    // previous row (true value) or never written (0 / -inf initial state,
    // the out-of-band semantics).

    // Z-drop (align::extend's rule, applied to the local sweep): once even
    // this row's best trails the global best by more than zdrop, stop.
    if (params.zdrop > 0 && i < last_row && row_best < best.score - params.zdrop) {
      out.zdropped = true;
      break;
    }
  }
  out.result = best;
  return out;
}

}  // namespace saloba::align
