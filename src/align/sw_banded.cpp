#include "align/sw_banded.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace saloba::align {
namespace {
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;
}

BandedResult smith_waterman_banded(std::span<const seq::BaseCode> ref,
                                   std::span<const seq::BaseCode> query,
                                   const ScoringScheme& scoring, std::size_t band) {
  SALOBA_CHECK(scoring.valid());
  SALOBA_CHECK_MSG(band >= 1, "band must be >= 1");
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  BandedResult out;
  if (n == 0 || m == 0) return out;

  // Row arrays indexed by query position; cells outside the band read as
  // H = 0 is wrong for E/F chains, so out-of-band reads H = 0, E/F = -inf:
  // the local-alignment zero floor makes H=0 the correct neutral element,
  // while gaps cannot extend across the band boundary.
  std::vector<Score> h_row(m + 1, 0), f_col(m + 1, kNegInf);
  AlignmentResult best;

  for (std::size_t i = 0; i < n; ++i) {
    // Band limits for this row: j in [i-band, i+band] (clamped).
    std::size_t j_lo = (i >= band) ? i - band : 0;
    std::size_t j_hi = std::min(m - 1, i + band);
    if (j_lo > j_hi) continue;

    Score h_diag = (j_lo == 0) ? 0 : h_row[j_lo];  // H(i-1, j_lo-1)
    // Cells left of the band boundary are out of band for this row.
    Score h_left = 0;
    Score e = kNegInf;
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      e = std::max(h_left - scoring.alpha(), e - scoring.beta());
      Score f = std::max(h_row[j + 1] - scoring.alpha(), f_col[j + 1] - scoring.beta());
      Score h =
          std::max({Score{0}, h_diag + scoring.substitution(ref[i], query[j]), e, f});

      h_diag = h_row[j + 1];
      h_row[j + 1] = h;
      f_col[j + 1] = f;
      h_left = h;
      ++out.cells_computed;

      if (h > best.score) {
        best = AlignmentResult{h, static_cast<std::int32_t>(i), static_cast<std::int32_t>(j)};
      }
    }
    // No band-edge resets are needed: the band advances one column per row,
    // so every neighbour an in-band cell reads was either in-band on the
    // previous row (true value) or never written (0 / -inf initial state,
    // the out-of-band semantics).
  }
  out.result = best;
  return out;
}

}  // namespace saloba::align
