// Banded Smith–Waterman (paper Sec. VII-B, "Banded Algorithms" — future
// work). Only cells with |i - j| <= band are computed; everything outside
// the band behaves as score 0 / -inf, so a band >= max(|ref|,|query|)
// reproduces the full algorithm exactly (property-tested).
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

struct BandedResult {
  AlignmentResult result;
  std::size_t cells_computed = 0;  ///< DP cells actually evaluated
  bool zdropped = false;           ///< z-drop terminated the row sweep early
};

/// Banding + optional z-drop pruning, the CPU-side shape of the pipeline's
/// Sec. VII-B extension path (core::AlignerOptions band/band_frac/zdrop).
struct BandedParams {
  /// Only cells with |i - j| <= band are computed; 0 = full table.
  std::size_t band = 0;
  /// BWA-MEM-style early termination: stop sweeping rows once a row's best
  /// H trails the global best by more than zdrop (<= 0 disables). A
  /// heuristic — it can miss the true local optimum, like the real tools.
  Score zdrop = 0;
};

BandedResult smith_waterman_banded(std::span<const seq::BaseCode> ref,
                                   std::span<const seq::BaseCode> query,
                                   const ScoringScheme& scoring, std::size_t band);

/// General form: band == 0 computes the full table (exact Smith–Waterman),
/// so the banded implementation is also the z-drop-only pruner.
BandedResult smith_waterman_banded(std::span<const seq::BaseCode> ref,
                                   std::span<const seq::BaseCode> query,
                                   const ScoringScheme& scoring, const BandedParams& params);

}  // namespace saloba::align
