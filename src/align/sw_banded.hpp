// Banded Smith–Waterman (paper Sec. VII-B, "Banded Algorithms" — future
// work). Only cells with |i - j| <= band are computed; everything outside
// the band behaves as score 0 / -inf, so a band >= max(|ref|,|query|)
// reproduces the full algorithm exactly (property-tested).
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

struct BandedResult {
  AlignmentResult result;
  std::size_t cells_computed = 0;  ///< DP cells actually evaluated
};

BandedResult smith_waterman_banded(std::span<const seq::BaseCode> ref,
                                   std::span<const seq::BaseCode> query,
                                   const ScoringScheme& scoring, std::size_t band);

}  // namespace saloba::align
