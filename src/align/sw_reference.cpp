#include "align/sw_reference.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace saloba::align {
namespace {
constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;
}

AlignmentResult smith_waterman(std::span<const seq::BaseCode> ref,
                               std::span<const seq::BaseCode> query,
                               const ScoringScheme& scoring) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  AlignmentResult best;
  if (n == 0 || m == 0) return best;

  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  // h_row[j+1] holds H(i-1, j) when row i reads it, then H(i, j) after the
  // update. f_col[j+1] likewise carries F down the column. E is carried as a
  // scalar along the row (Eq. 2 depends only on the left neighbour).
  std::vector<Score> h_row(m + 1, 0);
  std::vector<Score> f_col(m + 1, kNegInf);

  for (std::size_t i = 0; i < n; ++i) {
    Score h_diag = 0;  // H(i-1, -1): the local-mode zero boundary
    Score h_left = 0;  // H(i, j-1)
    Score e = kNegInf; // E(i, j-1)
    for (std::size_t j = 0; j < m; ++j) {
      e = std::max(h_left - alpha, e - beta);                    // E(i,j), Eq. 2
      Score f = std::max(h_row[j + 1] - alpha, f_col[j + 1] - beta);  // F(i,j), Eq. 3
      Score h = std::max({Score{0}, h_diag + scoring.substitution(ref[i], query[j]), e, f});

      h_diag = h_row[j + 1];
      h_row[j + 1] = h;
      f_col[j + 1] = f;
      h_left = h;

      // Strictly-greater keeps the row-major-first cell on ties, which is
      // exactly the `improves` ordering (smallest i, then smallest j).
      if (h > best.score) {
        best = AlignmentResult{h, static_cast<std::int32_t>(i), static_cast<std::int32_t>(j)};
      }
    }
  }
  return best;
}

Score needleman_wunsch(std::span<const seq::BaseCode> ref,
                       std::span<const seq::BaseCode> query,
                       const ScoringScheme& scoring) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  if (n == 0 && m == 0) return 0;
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  std::vector<Score> h_row(m + 1), f_col(m + 1, kNegInf);
  h_row[0] = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    h_row[j] = -alpha - static_cast<Score>(j - 1) * beta;
  }

  for (std::size_t i = 0; i < n; ++i) {
    Score h_diag = h_row[0];
    h_row[0] = -alpha - static_cast<Score>(i) * beta;
    Score h_left = h_row[0];
    Score e = kNegInf;
    for (std::size_t j = 0; j < m; ++j) {
      e = std::max(h_left - alpha, e - beta);
      Score f = std::max(h_row[j + 1] - alpha, f_col[j + 1] - beta);
      Score h = std::max({h_diag + scoring.substitution(ref[i], query[j]), e, f});
      h_diag = h_row[j + 1];
      h_row[j + 1] = h;
      f_col[j + 1] = f;
      h_left = h;
    }
  }
  return h_row[m];
}

std::vector<Score> smith_waterman_matrix(std::span<const seq::BaseCode> ref,
                                         std::span<const seq::BaseCode> query,
                                         const ScoringScheme& scoring) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  std::vector<Score> h((n + 1) * (m + 1), 0);
  std::vector<Score> f_col(m + 1, kNegInf);
  auto at = [m](std::size_t i, std::size_t j) { return i * (m + 1) + j; };

  for (std::size_t i = 1; i <= n; ++i) {
    Score e = kNegInf;
    for (std::size_t j = 1; j <= m; ++j) {
      e = std::max(h[at(i, j - 1)] - alpha, e - beta);
      f_col[j] = std::max(h[at(i - 1, j)] - alpha, f_col[j] - beta);
      Score s = h[at(i - 1, j - 1)] + scoring.substitution(ref[i - 1], query[j - 1]);
      h[at(i, j)] = std::max({Score{0}, s, e, f_col[j]});
    }
  }
  return h;
}

}  // namespace saloba::align
