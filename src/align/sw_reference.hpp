// Scalar CPU reference implementations of the DP recurrences. These are the
// ground truth every simulated GPU kernel is verified against.
#pragma once

#include <span>
#include <vector>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

/// Local alignment (Smith–Waterman, affine gaps). Row-major scan with O(M)
/// working memory; i indexes the reference, j the query, as in the paper.
AlignmentResult smith_waterman(std::span<const seq::BaseCode> ref,
                               std::span<const seq::BaseCode> query,
                               const ScoringScheme& scoring);

/// Global alignment score (Needleman–Wunsch, affine gaps, no free ends).
Score needleman_wunsch(std::span<const seq::BaseCode> ref,
                       std::span<const seq::BaseCode> query,
                       const ScoringScheme& scoring);

/// Full H matrix of the local alignment, (|ref|+1) x (|query|+1), row-major.
/// Exposed for traceback and for tests that inspect the DP table directly.
/// Large inputs: O(N*M) memory — callers are expected to keep N,M moderate.
std::vector<Score> smith_waterman_matrix(std::span<const seq::BaseCode> ref,
                                         std::span<const seq::BaseCode> query,
                                         const ScoringScheme& scoring);

}  // namespace saloba::align
