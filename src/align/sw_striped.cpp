#include "align/sw_striped.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/check.hpp"

namespace saloba::align {
namespace {

constexpr int V = kStripeLanes;

/// A "vector register": V int32 lanes, operated on lane-wise in plain loops
/// the compiler auto-vectorises.
struct Vec {
  Score lane[V];

  static Vec splat(Score v) {
    Vec out;
    for (auto& l : out.lane) l = v;
    return out;
  }
};

inline Vec max_vec(const Vec& a, const Vec& b) {
  Vec out;
  for (int k = 0; k < V; ++k) out.lane[k] = std::max(a.lane[k], b.lane[k]);
  return out;
}

inline Vec sub_sat0(const Vec& a, Score s) {
  // Subtract with a floor at 0 — the local-alignment clamp Farrar exploits
  // with saturating arithmetic.
  Vec out;
  for (int k = 0; k < V; ++k) out.lane[k] = std::max(a.lane[k] - s, Score{0});
  return out;
}

inline bool any_greater(const Vec& a, const Vec& b) {
  for (int k = 0; k < V; ++k) {
    if (a.lane[k] > b.lane[k]) return true;
  }
  return false;
}

/// Shift lanes toward higher indices by one, inserting zero at lane 0
/// (Farrar's vector shift between reference steps).
inline Vec shift_in_zero(const Vec& a) {
  Vec out;
  out.lane[0] = 0;
  for (int k = 1; k < V; ++k) out.lane[k] = a.lane[k - 1];
  return out;
}

}  // namespace

Score smith_waterman_striped(std::span<const seq::BaseCode> ref,
                             std::span<const seq::BaseCode> query,
                             const ScoringScheme& scoring) {
  return smith_waterman_striped_ends(ref, query, scoring).score;
}

AlignmentResult smith_waterman_striped_ends(std::span<const seq::BaseCode> ref,
                                            std::span<const seq::BaseCode> query,
                                            const ScoringScheme& scoring) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t m = query.size();
  const std::size_t n = ref.size();
  AlignmentResult best;
  if (m == 0 || n == 0) return best;

  const std::size_t seg = (m + V - 1) / V;  // stripe (segment) length
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  // Query profile: for each base b and segment position i, the vector of
  // substitution scores for query positions {i, i+seg, i+2seg, ...}.
  // Padding positions get a harsh penalty so they never contribute.
  std::vector<Vec> profile(static_cast<std::size_t>(seq::kAlphabetSize) * seg);
  for (int b = 0; b < seq::kAlphabetSize; ++b) {
    for (std::size_t i = 0; i < seg; ++i) {
      Vec& v = profile[static_cast<std::size_t>(b) * seg + i];
      for (int k = 0; k < V; ++k) {
        std::size_t j = static_cast<std::size_t>(k) * seg + i;
        v.lane[k] = j < m ? scoring.substitution(static_cast<seq::BaseCode>(b), query[j])
                          : static_cast<Score>(-(1 << 20));
      }
    }
  }

  std::vector<Vec> h(seg, Vec::splat(0)), e(seg, Vec::splat(0)), h_new(seg);

  for (std::size_t r = 0; r < n; ++r) {
    const Vec* prof = &profile[static_cast<std::size_t>(ref[r]) * seg];

    // H diagonal feed: last segment's H from the previous row, lanes
    // shifted by one (query positions move by `seg` per lane step).
    Vec vh = shift_in_zero(h[seg - 1]);
    Vec vf = Vec::splat(0);

    for (std::size_t i = 0; i < seg; ++i) {
      // H(i,j) candidate from the diagonal + substitution, then E and F.
      Vec score;
      for (int k = 0; k < V; ++k) {
        score.lane[k] = std::max(vh.lane[k] + prof[i].lane[k], Score{0});
      }
      score = max_vec(score, e[i]);
      score = max_vec(score, vf);
      h_new[i] = score;

      // Next-column E and F (pre-decayed for the following reference row /
      // the next segment position respectively).
      e[i] = max_vec(sub_sat0(score, alpha), sub_sat0(e[i], beta));
      vf = max_vec(sub_sat0(score, alpha), sub_sat0(vf, beta));

      vh = h[i];  // becomes the diagonal for the next segment position
    }

    // Lazy-F: F values must wrap across the stripe boundary. Keep
    // propagating while any lane still improves.
    for (int pass = 0; pass < V; ++pass) {
      vf = shift_in_zero(vf);
      bool changed = false;
      for (std::size_t i = 0; i < seg; ++i) {
        Vec cand = vf;
        if (!any_greater(cand, sub_sat0(h_new[i], alpha))) {
          // F cannot improve H here nor propagate further usefully.
          bool can_propagate = false;
          for (int k = 0; k < V; ++k) {
            if (cand.lane[k] - beta > h_new[i].lane[k] - alpha) {
              can_propagate = true;
              break;
            }
          }
          if (!can_propagate) break;
        }
        Vec merged = max_vec(h_new[i], cand);
        for (int k = 0; k < V; ++k) {
          if (merged.lane[k] != h_new[i].lane[k]) changed = true;
        }
        h_new[i] = merged;
        // Updated H may extend E for the next row as well.
        e[i] = max_vec(e[i], sub_sat0(merged, alpha));
        vf = max_vec(sub_sat0(merged, alpha), sub_sat0(cand, beta));
      }
      if (!changed) break;
    }

    // Endpoint recovery: once the row's H is final (lazy-F settled), an
    // improving row maximum pins ref_end = r; de-striping the first query
    // index holding it pins query_end. A strictly-improving row is exactly
    // the scalar reference's first row carrying the final best, so the
    // canonical tie-break (smallest ref_end, then query_end) is preserved.
    Vec row_max_v = h_new[0];
    for (std::size_t i = 1; i < seg; ++i) row_max_v = max_vec(row_max_v, h_new[i]);
    Score row_max = 0;
    for (int k = 0; k < V; ++k) row_max = std::max(row_max, row_max_v.lane[k]);
    if (row_max > best.score) {
      for (std::size_t j = 0; j < m; ++j) {
        if (h_new[j % seg].lane[j / seg] == row_max) {
          best = AlignmentResult{row_max, static_cast<std::int32_t>(r),
                                 static_cast<std::int32_t>(j)};
          break;
        }
      }
    }

    std::swap(h, h_new);
  }
  return best;
}

}  // namespace saloba::align
