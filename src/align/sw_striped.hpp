// Striped Smith–Waterman (Farrar, 2007) — the SIMD-friendly CPU layout used
// by production aligners (SSW, BWA-MEM's ksw). The query is split into
// `kStripeLanes` interleaved segments so the inner loop is a chain of
// independent lane-wise operations the compiler can vectorise; the F
// dependency is resolved by Farrar's lazy-F correction loop.
//
// End positions are recovered row-wise: after each reference row's lazy-F
// settles, an improving row max is de-striped back to the smallest query
// index — reproducing the scalar reference's canonical tie-break (smallest
// ref_end, then smallest query_end) without per-cell bookkeeping in the hot
// loop. Verified against the scalar reference in tests.
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

inline constexpr int kStripeLanes = 8;

/// Local-alignment score via the striped layout.
Score smith_waterman_striped(std::span<const seq::BaseCode> ref,
                             std::span<const seq::BaseCode> query,
                             const ScoringScheme& scoring);

/// Striped alignment with end positions: bit-identical (score, ref_end,
/// query_end) to align::smith_waterman. The single-pair int32 settlement
/// path of the SIMD batch engine (align/simd_engine.hpp).
AlignmentResult smith_waterman_striped_ends(std::span<const seq::BaseCode> ref,
                                            std::span<const seq::BaseCode> query,
                                            const ScoringScheme& scoring);

}  // namespace saloba::align
