// Striped Smith–Waterman (Farrar, 2007) — the SIMD-friendly CPU layout used
// by production aligners (SSW, BWA-MEM's ksw). The query is split into
// `kStripeLanes` interleaved segments so the inner loop is a chain of
// independent lane-wise operations the compiler can vectorise; the F
// dependency is resolved by Farrar's lazy-F correction loop.
//
// Score-only (no end positions): the striped layout trades positional
// bookkeeping for throughput, exactly like the production implementations.
// Verified against the scalar reference in tests.
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

inline constexpr int kStripeLanes = 8;

/// Local-alignment score via the striped layout.
Score smith_waterman_striped(std::span<const seq::BaseCode> ref,
                             std::span<const seq::BaseCode> query,
                             const ScoringScheme& scoring);

}  // namespace saloba::align
