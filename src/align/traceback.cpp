#include "align/traceback.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace saloba::align {
namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

}  // namespace

std::string compress_cigar(const std::string& ops) {
  std::string out;
  std::size_t i = 0;
  while (i < ops.size()) {
    std::size_t j = i;
    while (j < ops.size() && ops[j] == ops[i]) ++j;
    out += std::to_string(j - i);
    out += ops[i];
    i = j;
  }
  return out;
}

TracedAlignment smith_waterman_traceback(std::span<const seq::BaseCode> ref,
                                         std::span<const seq::BaseCode> query,
                                         const ScoringScheme& scoring) {
  return smith_waterman_traceback(ref, query, scoring, /*band=*/0);
}

TracedAlignment smith_waterman_traceback(std::span<const seq::BaseCode> ref,
                                         std::span<const seq::BaseCode> query,
                                         const ScoringScheme& scoring, std::size_t band) {
  SALOBA_CHECK(scoring.valid());
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  TracedAlignment out;
  if (n == 0 || m == 0) return out;

  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();
  // band == 0 means full table; a band covering the longest sequence makes
  // the masked loop identical to the plain one.
  const std::size_t eff_band = band != 0 ? band : std::max(n, m);
  const std::size_t stride = m + 1;
  std::vector<Score> h((n + 1) * stride, 0);
  std::vector<Score> e((n + 1) * stride, kNegInf);
  std::vector<Score> f((n + 1) * stride, kNegInf);
  auto at = [stride](std::size_t i, std::size_t j) { return i * stride + j; };

  // Out-of-band cells are never written, so they keep the masked-DP
  // out-of-band semantics for free: H = 0, E/F = -inf.
  AlignmentResult best;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t j_lo = i > eff_band ? i - eff_band : 1;
    const std::size_t j_hi = std::min(m, i + eff_band);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      e[at(i, j)] = std::max(h[at(i, j - 1)] - alpha, e[at(i, j - 1)] - beta);
      f[at(i, j)] = std::max(h[at(i - 1, j)] - alpha, f[at(i - 1, j)] - beta);
      Score s = h[at(i - 1, j - 1)] + scoring.substitution(ref[i - 1], query[j - 1]);
      Score v = std::max({Score{0}, s, e[at(i, j)], f[at(i, j)]});
      h[at(i, j)] = v;
      if (v > best.score) {
        best = AlignmentResult{v, static_cast<std::int32_t>(i - 1),
                               static_cast<std::int32_t>(j - 1)};
      }
    }
  }
  out.end = best;
  if (best.score == 0) return out;

  // Walk back from the best cell. State machine over {H, E, F}.
  enum class State { kH, kE, kF };
  State state = State::kH;
  std::string ops;
  std::size_t i = static_cast<std::size_t>(best.ref_end) + 1;
  std::size_t j = static_cast<std::size_t>(best.query_end) + 1;
  while (i > 0 && j > 0) {
    if (state == State::kH) {
      Score v = h[at(i, j)];
      if (v == 0) break;
      Score s = h[at(i - 1, j - 1)] + scoring.substitution(ref[i - 1], query[j - 1]);
      if (v == s) {
        ops += 'M';
        --i;
        --j;
      } else if (v == e[at(i, j)]) {
        state = State::kE;
      } else {
        SALOBA_CHECK_MSG(v == f[at(i, j)], "traceback: H cell matches no predecessor");
        state = State::kF;
      }
    } else if (state == State::kE) {
      ops += 'I';
      bool opened = e[at(i, j)] == h[at(i, j - 1)] - alpha;
      --j;
      if (opened) state = State::kH;
    } else {  // State::kF
      ops += 'D';
      bool opened = f[at(i, j)] == h[at(i - 1, j)] - alpha;
      --i;
      if (opened) state = State::kH;
    }
  }

  out.ref_start = static_cast<std::int32_t>(i);
  out.query_start = static_cast<std::int32_t>(j);
  std::reverse(ops.begin(), ops.end());
  out.cigar = compress_cigar(ops);
  return out;
}

std::string expand_cigar(const std::string& cigar) {
  std::string out;
  std::size_t i = 0;
  while (i < cigar.size()) {
    std::size_t count = 0;
    bool has_digit = false;
    while (i < cigar.size() && cigar[i] >= '0' && cigar[i] <= '9') {
      count = count * 10 + static_cast<std::size_t>(cigar[i] - '0');
      has_digit = true;
      ++i;
    }
    if (!has_digit || i >= cigar.size()) throw std::invalid_argument("malformed CIGAR: " + cigar);
    char op = cigar[i++];
    if (op != 'M' && op != 'I' && op != 'D') {
      throw std::invalid_argument("unsupported CIGAR op: " + std::string(1, op));
    }
    out.append(count, op);
  }
  return out;
}

bool cigar_consistent(const TracedAlignment& aln, std::size_t ref_len, std::size_t query_len) {
  if (aln.end.score == 0) return aln.cigar.empty();
  if (aln.ref_start < 0 || aln.query_start < 0) return false;
  std::size_t ri = static_cast<std::size_t>(aln.ref_start);
  std::size_t qj = static_cast<std::size_t>(aln.query_start);
  for (char op : expand_cigar(aln.cigar)) {
    if (op == 'M') {
      ++ri;
      ++qj;
    } else if (op == 'I') {
      ++qj;
    } else {
      ++ri;
    }
  }
  return ri == static_cast<std::size_t>(aln.end.ref_end) + 1 &&
         qj == static_cast<std::size_t>(aln.end.query_end) + 1 && ri <= ref_len &&
         qj <= query_len;
}

Score rescore_cigar(const TracedAlignment& aln, std::span<const seq::BaseCode> ref,
                    std::span<const seq::BaseCode> query, const ScoringScheme& scoring) {
  if (aln.end.score == 0) return 0;
  Score score = 0;
  std::size_t ri = static_cast<std::size_t>(aln.ref_start);
  std::size_t qj = static_cast<std::size_t>(aln.query_start);
  char prev = '\0';
  for (char op : expand_cigar(aln.cigar)) {
    if (op == 'M') {
      score += scoring.substitution(ref[ri], query[qj]);
      ++ri;
      ++qj;
    } else {
      score -= (op == prev) ? scoring.beta() : scoring.alpha();
      if (op == 'I') ++qj;
      else ++ri;
    }
    prev = op;
  }
  return score;
}

}  // namespace saloba::align
