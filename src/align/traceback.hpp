// Full-matrix traceback producing CIGAR strings. O(N*M) memory — the
// conformance ORACLE for the batched linear-memory engine
// (align/traceback_engine.hpp), which is what the pipeline's traceback
// phase actually runs. Intended for tests and moderate lengths only.
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

/// Local alignment with traceback. CIGAR uses M (match/mismatch), I
/// (insertion in query = gap in reference), D (deletion from query = gap in
/// query consuming reference), query-centric as in SAM.
TracedAlignment smith_waterman_traceback(std::span<const seq::BaseCode> ref,
                                         std::span<const seq::BaseCode> query,
                                         const ScoringScheme& scoring);

/// Banded full-matrix variant: only cells with |i - j| <= band are computed,
/// out-of-band cells read H = 0, E/F = -inf (align::smith_waterman_banded
/// semantics), and the traced path never leaves the band. `band == 0` is the
/// full table — bit-identical to the unbanded overload. Still O(N*M) memory:
/// the masked-DP oracle the linear-memory engine is fuzzed against.
TracedAlignment smith_waterman_traceback(std::span<const seq::BaseCode> ref,
                                         std::span<const seq::BaseCode> query,
                                         const ScoringScheme& scoring, std::size_t band);

/// Expands "3M1I2M" to "MMMIMM" (test helper; throws on malformed input).
std::string expand_cigar(const std::string& cigar);

/// Run-length encodes an op string ("MMMIMM" -> "3M1I2M") — the shared
/// CIGAR emitter of the full-matrix walk and the checkpointed engine.
std::string compress_cigar(const std::string& ops);

/// Validates a CIGAR against sequence spans: M/I consume query, M/D consume
/// reference; returns false on any inconsistency.
bool cigar_consistent(const TracedAlignment& aln, std::size_t ref_len, std::size_t query_len);

/// Recomputes the alignment score implied by a traced alignment (walks the
/// CIGAR over the sequences). Used to cross-check traceback correctness.
Score rescore_cigar(const TracedAlignment& aln, std::span<const seq::BaseCode> ref,
                    std::span<const seq::BaseCode> query, const ScoringScheme& scoring);

}  // namespace saloba::align
