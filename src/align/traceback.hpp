// Full-matrix traceback producing CIGAR strings. O(N*M) memory — intended
// for reporting/examples on moderate lengths, not for the batch hot path
// (the paper's kernels are score-only, as is ours).
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

/// Local alignment with traceback. CIGAR uses M (match/mismatch), I
/// (insertion in query = gap in reference), D (deletion from query = gap in
/// query consuming reference), query-centric as in SAM.
TracedAlignment smith_waterman_traceback(std::span<const seq::BaseCode> ref,
                                         std::span<const seq::BaseCode> query,
                                         const ScoringScheme& scoring);

/// Expands "3M1I2M" to "MMMIMM" (test helper; throws on malformed input).
std::string expand_cigar(const std::string& cigar);

/// Validates a CIGAR against sequence spans: M/I consume query, M/D consume
/// reference; returns false on any inconsistency.
bool cigar_consistent(const TracedAlignment& aln, std::size_t ref_len, std::size_t query_len);

/// Recomputes the alignment score implied by a traced alignment (walks the
/// CIGAR over the sequences). Used to cross-check traceback correctness.
Score rescore_cigar(const TracedAlignment& aln, std::span<const seq::BaseCode> ref,
                    std::span<const seq::BaseCode> query, const ScoringScheme& scoring);

}  // namespace saloba::align
