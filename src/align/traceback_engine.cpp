#include "align/traceback_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "align/traceback.hpp"
#include "util/check.hpp"

namespace saloba::align {
namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

/// Row-state snapshot taken after `row` forward rows: the h_row / f_col
/// arrays restricted to the columns the next block can still read from
/// pre-snapshot rows — everything else is the never-written initial state
/// (H = 0, F = -inf), so a fresh buffer plus this window restores the sweep
/// exactly.
struct Checkpoint {
  std::size_t col_lo = 0;  ///< first h_row/f_col index stored
  std::vector<Score> h;
  std::vector<Score> f;
};

/// One re-derived block of rows for the backward walk: H/E/F of every
/// in-band cell of rows [first_row, first_row + rows.size()) (1-based DP
/// rows), plus H of the row above the block (the snapshot row) for the
/// walk's cross-row reads — the walk only ever reads H across rows.
struct Block {
  struct Row {
    std::size_t col_lo = 1;  ///< first 1-based column stored
    std::vector<Score> h, e, f;
  };
  std::size_t first_row = 1;  ///< 1-based DP row of rows.front()
  std::vector<Row> rows;
  std::size_t above_lo = 0;  ///< first h_row index of h_above
  std::vector<Score> h_above;

  bool contains(std::size_t row) const {
    return row >= first_row && row < first_row + rows.size();
  }
};

struct Engine {
  std::span<const seq::BaseCode> ref;
  std::span<const seq::BaseCode> query;
  const ScoringScheme& scoring;
  std::size_t band;        ///< effective band (>= 1, covers the table if unbanded)
  std::size_t chunk;       ///< rows per checkpoint block
  std::vector<Checkpoint> checkpoints;
  TracebackStats stats;

  std::size_t n() const { return ref.size(); }
  std::size_t m() const { return query.size(); }

  /// The snapshot window for a checkpoint taken after 0-based row `row`:
  /// rows >= `row` read h_row/f_col indices in [row - band, row + band + 1];
  /// anything outside was either never written before `row` (initial state)
  /// or gets rewritten before it is read again.
  std::pair<std::size_t, std::size_t> window_after(std::size_t row) const {
    std::size_t hi = std::min(m(), row + band + 1);
    // Rows past m - 1 + band have empty band windows; clamp so the snapshot
    // degenerates cleanly instead of underflowing.
    std::size_t lo = std::min(row > band ? row - band : 0, hi);
    return {lo, hi};
  }

  void snapshot(std::size_t row, const std::vector<Score>& h_row,
                const std::vector<Score>& f_col) {
    auto [lo, hi] = window_after(row);
    Checkpoint cp;
    cp.col_lo = lo;
    cp.h.assign(h_row.begin() + static_cast<std::ptrdiff_t>(lo),
                h_row.begin() + static_cast<std::ptrdiff_t>(hi + 1));
    cp.f.assign(f_col.begin() + static_cast<std::ptrdiff_t>(lo),
                f_col.begin() + static_cast<std::ptrdiff_t>(hi + 1));
    stats.traffic_bytes += 2 * cp.h.size() * sizeof(Score);
    checkpoints.push_back(std::move(cp));
  }

  /// Walk-time row state, allocated once per pair and selectively reset
  /// between block re-derivations: a full O(m) clear per block would dwarf
  /// the O(rows·band) replay work on long banded pairs.
  std::vector<Score> walk_h, walk_f;
  std::size_t dirty_lo = 1, dirty_hi = 0;  ///< columns the last restore+sweep touched
  bool walk_ready = false;

  /// Rebuilds the row state "after `block_index`'s snapshot row" into
  /// walk_h/walk_f. Every write of the restore and of the subsequent block
  /// sweep (rows [first0, end0)) lands in [checkpoint col_lo, end0 + band],
  /// so resetting just that range returns the buffers to their pristine
  /// H = 0 / F = -inf state.
  void restore(std::size_t block_index, std::size_t end0) {
    if (!walk_ready) {
      walk_h.assign(m() + 1, 0);
      walk_f.assign(m() + 1, kNegInf);
      walk_ready = true;
    } else {
      for (std::size_t k = dirty_lo; k <= dirty_hi; ++k) {
        walk_h[k] = 0;
        walk_f[k] = kNegInf;
      }
    }
    const Checkpoint& cp = checkpoints[block_index];
    std::copy(cp.h.begin(), cp.h.end(),
              walk_h.begin() + static_cast<std::ptrdiff_t>(cp.col_lo));
    std::copy(cp.f.begin(), cp.f.end(),
              walk_f.begin() + static_cast<std::ptrdiff_t>(cp.col_lo));
    dirty_lo = cp.col_lo;
    dirty_hi = std::max(std::min(m(), end0 + band), cp.col_lo + cp.h.size() - 1);
  }

  /// Forward sweep over 0-based rows [row_begin, row_end) from the given row
  /// state — the exact loop of align::smith_waterman_banded. `capture`
  /// receives every computed cell when a block is being re-derived; `cells`
  /// counts the work. Returns the best endpoint seen (callers that only
  /// replay ignore it).
  template <typename Capture>
  void sweep(std::size_t row_begin, std::size_t row_end, std::vector<Score>& h_row,
             std::vector<Score>& f_col, std::size_t& cells, AlignmentResult* best,
             Score* row_best_out, const Capture& capture) const {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      std::size_t j_lo = (i >= band) ? i - band : 0;
      std::size_t j_hi = std::min(m() - 1, i + band);
      if (j_lo > j_hi) continue;

      Score h_diag = (j_lo == 0) ? 0 : h_row[j_lo];
      Score h_left = 0;
      Score e = kNegInf;
      Score row_best = kNegInf;
      for (std::size_t j = j_lo; j <= j_hi; ++j) {
        e = std::max(h_left - scoring.alpha(), e - scoring.beta());
        Score f = std::max(h_row[j + 1] - scoring.alpha(), f_col[j + 1] - scoring.beta());
        Score h =
            std::max({Score{0}, h_diag + scoring.substitution(ref[i], query[j]), e, f});

        h_diag = h_row[j + 1];
        h_row[j + 1] = h;
        f_col[j + 1] = f;
        h_left = h;
        ++cells;
        row_best = std::max(row_best, h);
        capture(i, j, h, e, f);

        if (best && h > best->score) {
          *best = AlignmentResult{h, static_cast<std::int32_t>(i),
                                  static_cast<std::int32_t>(j)};
        }
      }
      if (row_best_out) *row_best_out = row_best;
    }
  }

  /// Re-derives the block containing 1-based DP row `row` from its snapshot.
  Block rederive(std::size_t row) {
    SALOBA_CHECK_MSG(row >= 1 && row <= n(), "traceback walk left the table");
    const std::size_t b = (row - 1) / chunk;
    const std::size_t first0 = b * chunk;                    // 0-based first row
    const std::size_t end0 = std::min(n(), first0 + chunk);  // 0-based past-the-end

    restore(b, end0);

    Block blk;
    blk.first_row = first0 + 1;
    blk.rows.reserve(end0 - first0);
    // H of the snapshot row, for the walk's H(first_row - 1, ·) reads.
    blk.above_lo = checkpoints[b].col_lo;
    blk.h_above = checkpoints[b].h;

    std::size_t current = static_cast<std::size_t>(-1);
    sweep(first0, end0, walk_h, walk_f, stats.replay_cells, nullptr, nullptr,
          [&](std::size_t i, std::size_t j, Score h, Score e, Score f) {
            if (i != current) {
              current = i;
              blk.rows.emplace_back();
              blk.rows.back().col_lo = j + 1;  // 1-based first in-band column
            }
            Block::Row& r = blk.rows.back();
            r.h.push_back(h);
            r.e.push_back(e);
            r.f.push_back(f);
          });
    // Rows whose band window is empty (past m - 1 + band) hold no cells;
    // they can only trail the block, and the walk never visits them.
    while (blk.first_row + blk.rows.size() <= row) blk.rows.emplace_back();
    stats.traffic_bytes += 3 * stats_rows_bytes(blk);
    return blk;
  }

  static std::size_t stats_rows_bytes(const Block& blk) {
    std::size_t cells = 0;
    for (const Block::Row& r : blk.rows) cells += r.h.size();
    return cells * sizeof(Score);
  }
};

/// Windowed lookups with masked-DP out-of-band semantics.
Score h_at(const Block& blk, std::size_t row, std::size_t col) {
  if (row == 0 || col == 0) return 0;
  if (row + 1 == blk.first_row) {  // the snapshot row above the block
    if (col < blk.above_lo || col >= blk.above_lo + blk.h_above.size()) return 0;
    return blk.h_above[col - blk.above_lo];
  }
  SALOBA_CHECK_MSG(blk.contains(row), "traceback block does not cover row");
  const Block::Row& r = blk.rows[row - blk.first_row];
  if (col < r.col_lo || col >= r.col_lo + r.h.size()) return 0;
  return r.h[col - r.col_lo];
}

Score ef_at(const Block& blk, std::size_t row, std::size_t col, bool want_e) {
  if (row == 0 || col == 0) return kNegInf;
  SALOBA_CHECK_MSG(blk.contains(row), "traceback block does not cover row");
  const Block::Row& r = blk.rows[row - blk.first_row];
  if (col < r.col_lo || col >= r.col_lo + r.h.size()) return kNegInf;
  return want_e ? r.e[col - r.col_lo] : r.f[col - r.col_lo];
}

}  // namespace

TracebackResult banded_traceback(std::span<const seq::BaseCode> ref,
                                 std::span<const seq::BaseCode> query,
                                 const ScoringScheme& scoring,
                                 const TracebackParams& params) {
  SALOBA_CHECK(scoring.valid());
  TracebackResult out;
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  if (n == 0 || m == 0) return out;

  Engine eng{ref, query, scoring,
             params.band != 0 ? params.band : std::max(n, m),
             params.checkpoint_rows != 0
                 ? params.checkpoint_rows
                 : std::max<std::size_t>(
                       8, static_cast<std::size_t>(std::sqrt(static_cast<double>(n)))),
             {},
             {}};

  // --- Phase A: checkpointed forward sweep (smith_waterman_banded's loop,
  // z-drop rule included, snapshotting the row state every `chunk` rows).
  std::vector<Score> h_row(m + 1, 0), f_col(m + 1, kNegInf);
  AlignmentResult best;
  const std::size_t last_row = std::min(n - 1, m - 1 + eng.band);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % eng.chunk == 0) eng.snapshot(i, h_row, f_col);
    Score row_best = kNegInf;
    eng.sweep(i, i + 1, h_row, f_col, eng.stats.forward_cells, &best, &row_best,
              [](std::size_t, std::size_t, Score, Score, Score) {});
    if (params.zdrop > 0 && i < last_row && row_best < best.score - params.zdrop &&
        row_best != kNegInf) {
      eng.stats.zdropped = true;
      break;
    }
  }

  out.traced.end = best;
  if (best.score == 0) {
    out.stats = eng.stats;
    return out;
  }

  // --- Phase B: backward walk, re-deriving one block at a time. The walk is
  // the full-matrix state machine verbatim (M before E before F), reading
  // H/E/F through the block's band window; out-of-band reads resolve to the
  // masked-DP neutral values, so banded paths can never leave the band.
  enum class State { kH, kE, kF };
  State state = State::kH;
  std::string ops;
  std::size_t i = static_cast<std::size_t>(best.ref_end) + 1;
  std::size_t j = static_cast<std::size_t>(best.query_end) + 1;
  Block blk = eng.rederive(i);
  const Score alpha = scoring.alpha();
  while (i > 0 && j > 0) {
    if (i < blk.first_row) blk = eng.rederive(i);
    if (state == State::kH) {
      Score v = h_at(blk, i, j);
      if (v == 0) break;
      Score s = h_at(blk, i - 1, j - 1) + scoring.substitution(ref[i - 1], query[j - 1]);
      if (v == s) {
        ops += 'M';
        --i;
        --j;
      } else if (v == ef_at(blk, i, j, /*want_e=*/true)) {
        state = State::kE;
      } else {
        SALOBA_CHECK_MSG(v == ef_at(blk, i, j, /*want_e=*/false),
                         "traceback: H cell matches no predecessor");
        state = State::kF;
      }
    } else if (state == State::kE) {
      ops += 'I';
      bool opened = ef_at(blk, i, j, /*want_e=*/true) == h_at(blk, i, j - 1) - alpha;
      --j;
      if (opened) state = State::kH;
    } else {  // State::kF
      ops += 'D';
      bool opened = ef_at(blk, i, j, /*want_e=*/false) == h_at(blk, i - 1, j) - alpha;
      --i;
      if (opened) state = State::kH;
    }
  }

  out.traced.ref_start = static_cast<std::int32_t>(i);
  out.traced.query_start = static_cast<std::int32_t>(j);
  std::reverse(ops.begin(), ops.end());
  out.traced.cigar = compress_cigar(ops);
  eng.stats.traffic_bytes += ops.size() * 3 * sizeof(Score);  // the walk's reads
  out.stats = eng.stats;
  return out;
}

}  // namespace saloba::align
