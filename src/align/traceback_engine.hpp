// Linear-memory banded/checkpointed traceback — the engine behind the
// pipeline's two-phase alignment (AlignerOptions::traceback).
//
// The full-matrix traceback (align/traceback.hpp) stores H/E/F for every
// cell: O(N*M) memory and a cold serial allocation per pair — exactly the
// per-pair, locality-blind work the paper's batched kernels exist to
// eliminate. This engine instead:
//
//   1. re-runs the banded forward sweep (bit-identical to
//      align::smith_waterman_banded, z-drop included) keeping only two row
//      arrays, snapshotting the row state every `checkpoint_rows` rows —
//      each snapshot is just the band window, O(band) scores;
//   2. walks the optimal path backwards, re-deriving H/E/F one
//      `checkpoint_rows`-row block at a time from the nearest snapshot, so
//      at most O(checkpoint_rows * band) cells are ever materialized.
//
// Memory is O((N / checkpoint_rows + checkpoint_rows) * band) — linear in
// the sequence length for a fixed band — yet the emitted path is
// bit-identical to the full-matrix oracle: the same forward values (banded
// conformance, PR 4) walked with the same M-before-E-before-F preference.
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "align/sw_banded.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

struct TracebackParams {
  /// Only cells with |i - j| <= band are computed; 0 = full table.
  std::size_t band = 0;
  /// Z-drop row pruning for the forward sweep, mirroring
  /// align::BandedParams::zdrop so traced endpoints stay bit-identical to a
  /// z-dropped score pass (<= 0 disables).
  Score zdrop = 0;
  /// Rows between row-state snapshots; 0 picks ~sqrt(|ref|), the memory
  /// sweet spot. 1 degenerates to "snapshot every row" (fuzzed).
  std::size_t checkpoint_rows = 0;
};

/// Cost accounting of one engine run — what the simulated backend converts
/// into modeled traceback-phase time and memory traffic.
struct TracebackStats {
  std::size_t forward_cells = 0;  ///< cells of the checkpointed score sweep
  std::size_t replay_cells = 0;   ///< cells re-derived during the backward walk
  /// Modeled memory traffic: snapshot writes, snapshot restores, block H/E/F
  /// stores and the walk's reads (bytes).
  std::size_t traffic_bytes = 0;
  bool zdropped = false;  ///< forward sweep ended on the z-drop rule

  std::size_t cells() const { return forward_cells + replay_cells; }
};

struct TracebackResult {
  TracedAlignment traced;
  TracebackStats stats;
};

/// Traces one pair. Endpoints follow the canonical improves() tie-break of
/// every score-pass implementation; the CIGAR is bit-identical to
/// smith_waterman_traceback(ref, query, scoring, band) whenever zdrop is off
/// (with zdrop the forward sweep — and hence the endpoint — matches
/// align::smith_waterman_banded instead). A banded trace never leaves
/// |i - j| <= band.
TracebackResult banded_traceback(std::span<const seq::BaseCode> ref,
                                 std::span<const seq::BaseCode> query,
                                 const ScoringScheme& scoring,
                                 const TracebackParams& params = {});

}  // namespace saloba::align
