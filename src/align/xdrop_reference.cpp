#include "align/xdrop_reference.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "align/traceback.hpp"
#include "util/check.hpp"

namespace saloba::align {
namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

using Matrix = std::vector<std::vector<Score>>;
using BoolMatrix = std::vector<std::vector<char>>;

Matrix make_matrix(std::size_t rows, std::size_t cols, Score fill) {
  return Matrix(rows, std::vector<Score>(cols, fill));
}

/// Everything the forward pass leaves behind: full H/E/F tables plus the
/// computed-cell mask (exactly the cells the per-diagonal windows covered).
struct ForwardTables {
  Matrix H, E, F;
  BoolMatrix computed;
  AlignmentResult best;
  bool live(std::int64_t i, std::int64_t j) const {
    if (i < 0 || j < 0) return false;
    if (i >= static_cast<std::int64_t>(computed.size())) return false;
    if (j >= static_cast<std::int64_t>(computed.front().size())) return false;
    return computed[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != 0;
  }
};

/// The masked forward pass of the specification on full matrices: the same
/// per-diagonal window evolution, but every value is stored.
ForwardTables forward_full(std::span<const seq::BaseCode> ref,
                           std::span<const seq::BaseCode> query,
                           const ScoringScheme& scoring, const XDropParams& params) {
  const std::int64_t n = static_cast<std::int64_t>(ref.size());
  const std::int64_t m = static_cast<std::int64_t>(query.size());
  ForwardTables t;
  if (n == 0 || m == 0) return t;

  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();
  const auto un = static_cast<std::size_t>(n);
  const auto um = static_cast<std::size_t>(m);
  t.H = make_matrix(un, um, 0);
  t.E = make_matrix(un, um, kNegInf);
  t.F = make_matrix(un, um, kNegInf);
  t.computed.assign(un, std::vector<char>(um, 0));

  std::int64_t win_lo = 0, win_hi = 0;
  for (std::int64_t d = 0; d < n + m - 1; ++d) {
    const std::int64_t v_lo = d >= m ? d - m + 1 : 0;
    const std::int64_t v_hi = std::min(n - 1, d);
    const std::int64_t lo = std::max(win_lo, v_lo);
    const std::int64_t hi = std::min(win_hi, v_hi);
    if (lo > hi) break;

    for (std::int64_t i = lo; i <= hi; ++i) {
      const std::int64_t j = d - i;
      const auto ui = static_cast<std::size_t>(i);
      const auto uj = static_cast<std::size_t>(j);
      const bool left_ok = j > 0 && t.computed[ui][uj - 1] != 0;
      const bool up_ok = i > 0 && t.computed[ui - 1][uj] != 0;
      const bool diag_ok = i > 0 && j > 0 && t.computed[ui - 1][uj - 1] != 0;
      const Score h_left = left_ok ? t.H[ui][uj - 1] : 0;
      const Score e_left = left_ok ? t.E[ui][uj - 1] : kNegInf;
      const Score h_up = up_ok ? t.H[ui - 1][uj] : 0;
      const Score f_up = up_ok ? t.F[ui - 1][uj] : kNegInf;
      const Score h_diag = diag_ok ? t.H[ui - 1][uj - 1] : 0;

      const Score e = std::max(h_left - alpha, e_left - beta);
      const Score f = std::max(h_up - alpha, f_up - beta);
      const Score h =
          std::max({Score{0}, h_diag + scoring.substitution(ref[ui], query[uj]), e, f});
      t.H[ui][uj] = h;
      t.E[ui][uj] = e;
      t.F[ui][uj] = f;
      t.computed[ui][uj] = 1;
      take_better(t.best, AlignmentResult{h, static_cast<std::int32_t>(i),
                                          static_cast<std::int32_t>(j)});
    }

    std::int64_t live_lo = lo, live_hi = hi;
    if (params.xdrop > 0) {
      const Score floor = t.best.score - params.xdrop;
      while (live_lo <= hi &&
             t.H[static_cast<std::size_t>(live_lo)][static_cast<std::size_t>(d - live_lo)] <
                 floor) {
        ++live_lo;
      }
      while (live_hi >= live_lo &&
             t.H[static_cast<std::size_t>(live_hi)][static_cast<std::size_t>(d - live_hi)] <
                 floor) {
        --live_hi;
      }
      if (live_lo > live_hi) break;
    }
    win_lo = live_lo;
    win_hi = live_hi + 1;
  }

  if (t.best.score == 0) t.best = AlignmentResult{};
  return t;
}

/// Phase B on full matrices: global affine DP over the reversed prefixes,
/// dead cells forced to -inf in every state, canonical argmax (smallest k,
/// then smallest l).
struct StartPoint {
  std::int64_t si = 0, sj = 0;
};

StartPoint discover_start_full(std::span<const seq::BaseCode> ref,
                               std::span<const seq::BaseCode> query,
                               const ScoringScheme& scoring, const ForwardTables& fwd,
                               std::int64_t ei, std::int64_t ej, Score expect) {
  const Score g = scoring.alpha() - scoring.beta();
  const Score h = scoring.beta();
  const auto rows = static_cast<std::size_t>(ei) + 2;  // +1 boundary, +1 for k = ei
  const auto cols = static_cast<std::size_t>(ej) + 2;
  Matrix G = make_matrix(rows, cols, kNegInf);
  Matrix E = make_matrix(rows, cols, kNegInf);
  Matrix F = make_matrix(rows, cols, kNegInf);

  G[0][0] = 0;
  for (std::size_t c = 1; c < cols; ++c) G[0][c] = -(g + static_cast<Score>(c) * h);
  for (std::size_t r = 1; r < rows; ++r) G[r][0] = -(g + static_cast<Score>(r) * h);

  Score best = kNegInf;
  std::int64_t best_k = -1, best_l = -1;
  for (std::int64_t k = 0; k <= ei; ++k) {
    const auto r = static_cast<std::size_t>(k) + 1;
    const std::int64_t i = ei - k;
    for (std::int64_t l = 0; l <= ej; ++l) {
      const auto c = static_cast<std::size_t>(l) + 1;
      const std::int64_t j = ej - l;
      E[r][c] = std::max(E[r][c - 1] - h, G[r][c - 1] - g - h);
      F[r][c] = std::max(F[r - 1][c] - h, G[r - 1][c] - g - h);
      G[r][c] = std::max({G[r - 1][c - 1] + scoring.substitution(
                                                ref[static_cast<std::size_t>(i)],
                                                query[static_cast<std::size_t>(j)]),
                          E[r][c], F[r][c]});
      if (!fwd.live(i, j)) {
        G[r][c] = kNegInf;
        E[r][c] = kNegInf;
        F[r][c] = kNegInf;
      }
      if (G[r][c] > best) {
        best = G[r][c];
        best_k = k;
        best_l = l;
      }
    }
  }

  SALOBA_CHECK_MSG(best == expect, "oracle start discovery found "
                                       << best << ", forward pass said " << expect);
  return StartPoint{ei - best_k, ej - best_l};
}

/// Phase C shared state: sequences, penalties, the forward tables (for the
/// mask) and the op string under construction.
struct OracleMm {
  std::span<const seq::BaseCode> ref, query;
  const ScoringScheme* scoring = nullptr;
  const ForwardTables* fwd = nullptr;
  Score g = 0, h = 0;
  std::string ops;
};

/// One half sweep on full matrices: `rows` subproblem rows over columns
/// [j0..j1], forward (top-down from i_begin) or reversed (bottom-up from
/// i_end, columns consumed right-to-left). Returns the final row of (CC, DD)
/// indexed by consumed-column count 0..C.
void sweep_full(const OracleMm& ctx, std::int64_t i_begin, std::int64_t i_end,
                std::int64_t j0, std::int64_t j1, bool rev, Score tb,
                std::vector<Score>& cc_out, std::vector<Score>& dd_out) {
  const Score g = ctx.g, h = ctx.h;
  const std::int64_t C = j1 - j0 + 1;
  const std::int64_t rows = i_end - i_begin + 1;
  const auto ucols = static_cast<std::size_t>(C) + 1;
  const auto urows = static_cast<std::size_t>(rows) + 1;
  Matrix CC = make_matrix(urows, ucols, kNegInf);
  Matrix DD = make_matrix(urows, ucols, kNegInf);
  Matrix EE = make_matrix(urows, ucols, kNegInf);

  CC[0][0] = 0;
  DD[0][0] = kNegInf;
  for (std::size_t c = 1; c < ucols; ++c) {
    CC[0][c] = -(g + static_cast<Score>(c) * h);
    DD[0][c] = CC[0][c] - g;
  }
  for (std::size_t r = 1; r < urows; ++r) {
    CC[r][0] = -(tb + static_cast<Score>(r) * h);
    DD[r][0] = CC[r][0];
  }

  for (std::int64_t rr = 1; rr <= rows; ++rr) {
    const auto r = static_cast<std::size_t>(rr);
    const std::int64_t i = rev ? i_end - (rr - 1) : i_begin + (rr - 1);
    for (std::int64_t c = 1; c <= C; ++c) {
      const auto uc = static_cast<std::size_t>(c);
      const std::int64_t j = rev ? j1 - (c - 1) : j0 + (c - 1);
      EE[r][uc] = std::max(EE[r][uc - 1] - h, CC[r][uc - 1] - g - h);
      DD[r][uc] = std::max(DD[r - 1][uc] - h, CC[r - 1][uc] - g - h);
      CC[r][uc] = std::max({CC[r - 1][uc - 1] + ctx.scoring->substitution(
                                                    ctx.ref[static_cast<std::size_t>(i)],
                                                    ctx.query[static_cast<std::size_t>(j)]),
                            EE[r][uc], DD[r][uc]});
      if (!ctx.fwd->live(i, j)) {
        CC[r][uc] = kNegInf;
        DD[r][uc] = kNegInf;
        EE[r][uc] = kNegInf;
      }
    }
  }
  cc_out = CC[urows - 1];
  dd_out = DD[urows - 1];
}

/// Single-row base case, same rules as the engine: smallest best substitution
/// column beats the all-gap form on ties; the all-gap deletion attaches to
/// the top boundary unless the bottom is strictly cheaper.
void oracle_single_row(OracleMm& ctx, std::int64_t i0, std::int64_t j0, std::int64_t j1,
                       Score tb, Score te) {
  const Score g = ctx.g, h = ctx.h;
  const std::int64_t C = j1 - j0 + 1;
  const auto gap = [&](std::int64_t len) -> Score {
    return len > 0 ? g + static_cast<Score>(len) * h : Score{0};
  };

  const Score allgap = -(std::min(tb, te) + h) - gap(C);
  Score best_sub = kNegInf;
  std::int64_t best_j = -1;
  for (std::int64_t j = j0; j <= j1; ++j) {
    if (!ctx.fwd->live(i0, j)) continue;
    const Score v = -gap(j - j0) +
                    ctx.scoring->substitution(ctx.ref[static_cast<std::size_t>(i0)],
                                              ctx.query[static_cast<std::size_t>(j)]) -
                    gap(j1 - j);
    if (v > best_sub) {
      best_sub = v;
      best_j = j;
    }
  }

  if (best_j >= 0 && best_sub >= allgap) {
    ctx.ops.append(static_cast<std::size_t>(best_j - j0), 'I');
    ctx.ops.push_back('M');
    ctx.ops.append(static_cast<std::size_t>(j1 - best_j), 'I');
  } else if (tb <= te) {
    ctx.ops.push_back('D');
    ctx.ops.append(static_cast<std::size_t>(C), 'I');
  } else {
    ctx.ops.append(static_cast<std::size_t>(C), 'I');
    ctx.ops.push_back('D');
  }
}

/// The Myers–Miller recursion of the specification, crossing computed from
/// full-matrix sweeps.
void oracle_rec(OracleMm& ctx, std::int64_t i0, std::int64_t i1, std::int64_t j0,
                std::int64_t j1, Score tb, Score te) {
  const std::int64_t R = i1 - i0 + 1;
  const std::int64_t C = j1 - j0 + 1;
  if (R <= 0) {
    ctx.ops.append(static_cast<std::size_t>(std::max<std::int64_t>(0, C)), 'I');
    return;
  }
  if (C <= 0) {
    ctx.ops.append(static_cast<std::size_t>(R), 'D');
    return;
  }
  if (R == 1) {
    oracle_single_row(ctx, i0, j0, j1, tb, te);
    return;
  }

  const std::int64_t mid = i0 + (i1 - i0) / 2;
  std::vector<Score> cc, dd, rr, ss;
  sweep_full(ctx, i0, mid, j0, j1, /*rev=*/false, tb, cc, dd);
  sweep_full(ctx, mid + 1, i1, j0, j1, /*rev=*/true, te, rr, ss);

  Score best = kNegInf;
  std::int64_t best_j = j0 - 1;
  bool best_is_f = false;
  for (std::int64_t j = j0 - 1; j <= j1; ++j) {
    const auto cf = static_cast<std::size_t>(j - (j0 - 1));
    const auto cr = static_cast<std::size_t>(j1 - j);
    const Score type_h = cc[cf] + rr[cr];
    if (type_h > best) {
      best = type_h;
      best_j = j;
      best_is_f = false;
    }
    const Score type_f = dd[cf] + ss[cr] + ctx.g;
    if (type_f > best) {
      best = type_f;
      best_j = j;
      best_is_f = true;
    }
  }

  if (!best_is_f) {
    oracle_rec(ctx, i0, mid, j0, best_j, tb, ctx.g);
    oracle_rec(ctx, mid + 1, i1, best_j + 1, j1, ctx.g, te);
  } else {
    oracle_rec(ctx, i0, mid - 1, j0, best_j, tb, Score{0});
    ctx.ops.append(2, 'D');
    oracle_rec(ctx, mid + 2, i1, best_j + 1, j1, Score{0}, te);
  }
}

}  // namespace

AlignmentResult xdrop_reference_score(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring,
                                      const XDropParams& params) {
  SALOBA_CHECK(scoring.valid());
  return forward_full(ref, query, scoring, params).best;
}

TracedAlignment xdrop_reference_align(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring,
                                      const XDropParams& params) {
  SALOBA_CHECK(scoring.valid());
  const ForwardTables fwd = forward_full(ref, query, scoring, params);
  TracedAlignment out;
  out.end = fwd.best;
  if (fwd.best.score <= 0) return out;

  const std::int64_t ei = fwd.best.ref_end;
  const std::int64_t ej = fwd.best.query_end;
  const StartPoint start =
      discover_start_full(ref, query, scoring, fwd, ei, ej, fwd.best.score);

  OracleMm ctx;
  ctx.ref = ref;
  ctx.query = query;
  ctx.scoring = &scoring;
  ctx.fwd = &fwd;
  ctx.g = scoring.alpha() - scoring.beta();
  ctx.h = scoring.beta();
  oracle_rec(ctx, start.si, ei, start.sj, ej, ctx.g, ctx.g);

  out.ref_start = static_cast<std::int32_t>(start.si);
  out.query_start = static_cast<std::int32_t>(start.sj);
  out.cigar = compress_cigar(ctx.ops);
  return out;
}

}  // namespace saloba::align
