// Naive full-matrix oracle for the X-drop wavefront engine
// (align/xdrop_wavefront.hpp). Implements the identical specification —
// per-diagonal live windows, masked reverse-prefix start discovery, the
// Myers–Miller split and tie-break rules that *define* the canonical CIGAR —
// with independent O(N·M) code: full H/E/F matrices, an explicit
// computed-cell mask, and full 2D sweeps per divide-and-conquer split. The
// fuzz suite asserts the two are bit-identical in score, endpoint and CIGAR.
// Tests and moderate lengths only.
#pragma once

#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "align/xdrop_wavefront.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

/// Forward masked pass on full matrices: best score + canonical endpoint.
AlignmentResult xdrop_reference_score(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring,
                                      const XDropParams& params = {});

/// Full alignment per the shared canonical specification, on full matrices.
TracedAlignment xdrop_reference_align(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring,
                                      const XDropParams& params = {});

}  // namespace saloba::align
