#include "align/xdrop_wavefront.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "align/traceback.hpp"
#include "util/check.hpp"

namespace saloba::align {
namespace {

constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;

template <class T>
std::size_t cap_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// The positional mask one forward pass records: the computed window of
/// every swept diagonal plus a bounding column interval per row. Liveness of
/// a cell is a pure function of this record, so any sub-rectangle of the
/// pruned DP can be recomputed exactly (the linchpin of the linear-memory
/// traceback — see the header).
struct ForwardMask {
  /// Computed window of diagonal d in reference coordinates: cells (i, d-i)
  /// with clo[d] <= i <= chi[d] were evaluated. size() = diagonals swept.
  std::vector<std::int32_t> clo, chi;
  /// Bounding interval [row_jmin[i], row_jmax[i]] of row i's computed
  /// columns (jmin > jmax: the row was never touched). Bounds only — the
  /// per-row mask can be non-contiguous when the window shrinks — so sweeps
  /// use them as loop limits and still check live() per cell.
  std::vector<std::int32_t> row_jmin, row_jmax;

  bool live(std::int64_t i, std::int64_t j) const {
    const std::int64_t d = i + j;
    if (d < 0 || d >= static_cast<std::int64_t>(clo.size())) return false;
    const auto dd = static_cast<std::size_t>(d);
    return clo[dd] <= i && i <= chi[dd];
  }

  std::size_t bytes() const {
    return cap_bytes(clo) + cap_bytes(chi) + cap_bytes(row_jmin) + cap_bytes(row_jmax);
  }
};

/// Forward masked wavefront: anti-diagonal sweep with per-diagonal X-drop
/// live windows (header, "Forward pass"). Fills `mask` when non-null.
AlignmentResult wavefront_forward(std::span<const seq::BaseCode> ref,
                                  std::span<const seq::BaseCode> query,
                                  const ScoringScheme& scoring, const XDropParams& params,
                                  ForwardMask* mask, WavefrontStats& stats) {
  const std::int64_t n = static_cast<std::int64_t>(ref.size());
  const std::int64_t m = static_cast<std::int64_t>(query.size());
  AlignmentResult best;
  if (n == 0 || m == 0) return best;

  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  // Diagonal buffers indexed by reference position i, exactly the
  // antidiag_cpu layout: for cell (i, j) on diagonal d, left (i, j-1) and up
  // (i-1, j) live on d-1 at indices i and i-1, diag (i-1, j-1) on d-2 at
  // i-1. Values are meaningful only inside each diagonal's computed window;
  // reads outside it fall back to H = 0, E/F = -inf (never-computed cells).
  std::vector<Score> h_d2(static_cast<std::size_t>(n), 0), h_d1 = h_d2, h_cur = h_d2;
  std::vector<Score> e_d1(static_cast<std::size_t>(n), kNegInf), e_cur = e_d1;
  std::vector<Score> f_d1 = e_d1, f_cur = e_d1;

  const std::int64_t diag_count = n + m - 1;
  if (mask != nullptr) {
    mask->clo.reserve(static_cast<std::size_t>(diag_count));
    mask->chi.reserve(static_cast<std::size_t>(diag_count));
    mask->row_jmin.assign(static_cast<std::size_t>(n), 1);
    mask->row_jmax.assign(static_cast<std::size_t>(n), 0);
  }
  std::size_t buf_bytes = cap_bytes(h_d2) * 3 + cap_bytes(e_d1) * 4;
  stats.peak_bytes = std::max(stats.peak_bytes,
                              buf_bytes + (mask != nullptr ? mask->bytes() : 0));

  // Computed windows of diagonals d-1 and d-2 ([lo, hi] in i, empty when
  // lo > hi) and the live window proposed for the current diagonal.
  std::int64_t p1_lo = 0, p1_hi = -1, p2_lo = 0, p2_hi = -1;
  std::int64_t win_lo = 0, win_hi = 0;

  for (std::int64_t d = 0; d < diag_count; ++d) {
    const std::int64_t v_lo = d >= m ? d - m + 1 : 0;
    const std::int64_t v_hi = std::min(n - 1, d);
    const std::int64_t lo = std::max(win_lo, v_lo);
    const std::int64_t hi = std::min(win_hi, v_hi);
    if (lo > hi) {
      // The live window slid off the valid range: nothing left to extend.
      stats.xdropped = params.xdrop > 0;
      break;
    }

    for (std::int64_t i = lo; i <= hi; ++i) {
      const std::int64_t j = d - i;
      const bool left_in = i >= p1_lo && i <= p1_hi;
      const bool up_in = i - 1 >= p1_lo && i - 1 <= p1_hi;
      const bool diag_in = i - 1 >= p2_lo && i - 1 <= p2_hi;
      // Out-of-table and never-computed neighbours alike: H reads 0 (the
      // local floor — equivalent to restarting the alignment here), E/F
      // read -inf (a gap cannot pass through an unevaluated cell).
      const Score h_left = (j == 0 || !left_in) ? 0 : h_d1[static_cast<std::size_t>(i)];
      const Score e_left =
          (j == 0 || !left_in) ? kNegInf : e_d1[static_cast<std::size_t>(i)];
      const Score h_up = (i == 0 || !up_in) ? 0 : h_d1[static_cast<std::size_t>(i - 1)];
      const Score f_up = (i == 0 || !up_in) ? kNegInf : f_d1[static_cast<std::size_t>(i - 1)];
      const Score h_diag =
          (i == 0 || j == 0 || !diag_in) ? 0 : h_d2[static_cast<std::size_t>(i - 1)];

      const Score e = std::max(h_left - alpha, e_left - beta);
      const Score f = std::max(h_up - alpha, f_up - beta);
      const Score h = std::max(
          {Score{0},
           h_diag + scoring.substitution(ref[static_cast<std::size_t>(i)],
                                         query[static_cast<std::size_t>(j)]),
           e, f});

      h_cur[static_cast<std::size_t>(i)] = h;
      e_cur[static_cast<std::size_t>(i)] = e;
      f_cur[static_cast<std::size_t>(i)] = f;
      take_better(best, AlignmentResult{h, static_cast<std::int32_t>(i),
                                        static_cast<std::int32_t>(j)});
    }

    stats.cells += static_cast<std::size_t>(hi - lo + 1);
    stats.max_wavefront = std::max(stats.max_wavefront, static_cast<std::size_t>(hi - lo + 1));
    stats.diagonals = static_cast<std::size_t>(d + 1);
    if (mask != nullptr) {
      mask->clo.push_back(static_cast<std::int32_t>(lo));
      mask->chi.push_back(static_cast<std::int32_t>(hi));
      for (std::int64_t i = lo; i <= hi; ++i) {
        const auto ii = static_cast<std::size_t>(i);
        const auto j = static_cast<std::int32_t>(d - i);
        if (mask->row_jmin[ii] > mask->row_jmax[ii]) {
          mask->row_jmin[ii] = mask->row_jmax[ii] = j;
        } else {
          mask->row_jmin[ii] = std::min(mask->row_jmin[ii], j);
          mask->row_jmax[ii] = std::max(mask->row_jmax[ii], j);
        }
      }
    }

    // Live set: computed cells within X of the running best (all of them
    // when pruning is off). The next window covers its left/up successors.
    std::int64_t live_lo = lo, live_hi = hi;
    if (params.xdrop > 0) {
      const Score floor = best.score - params.xdrop;
      while (live_lo <= hi && h_cur[static_cast<std::size_t>(live_lo)] < floor) ++live_lo;
      while (live_hi >= live_lo && h_cur[static_cast<std::size_t>(live_hi)] < floor) --live_hi;
      if (live_lo > live_hi) {
        stats.xdropped = true;
        break;
      }
    }
    win_lo = live_lo;
    win_hi = live_hi + 1;

    p2_lo = p1_lo;
    p2_hi = p1_hi;
    p1_lo = lo;
    p1_hi = hi;
    std::swap(h_d2, h_d1);
    std::swap(h_d1, h_cur);
    std::swap(e_d1, e_cur);
    std::swap(f_d1, f_cur);
  }

  if (best.score == 0) return AlignmentResult{};
  return best;
}

/// Phase B: reverse-prefix start discovery. A global (no floor) affine DP
/// over rref[k] = ref[ei-k], rqry[l] = query[ej-l], masked — dead cells are
/// -inf in every state — swept with rolling rows restricted to each row's
/// mask bounds. Returns the canonical start (argmax, smallest k then
/// smallest l); the maximum provably equals `expect` (checked).
struct StartPoint {
  std::int64_t si = 0, sj = 0;
};

StartPoint discover_start(std::span<const seq::BaseCode> ref,
                          std::span<const seq::BaseCode> query,
                          const ScoringScheme& scoring, const ForwardMask& mask,
                          std::int64_t ei, std::int64_t ej, Score expect,
                          WavefrontStats& stats) {
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();
  const Score g = alpha - beta;  // gap-open beyond the per-base extend
  const Score h = beta;

  // Rolling rows indexed by l+1 (index 0 = the virtual boundary column).
  const std::size_t width = static_cast<std::size_t>(ej) + 2;
  std::vector<Score> hrow(width), frow(width, kNegInf);
  stats.peak_bytes =
      std::max(stats.peak_bytes, mask.bytes() + cap_bytes(hrow) + cap_bytes(frow));

  // Virtual row k = -1: leading insertions along the top boundary.
  hrow[0] = 0;
  for (std::int64_t l = 0; l <= ej; ++l) {
    hrow[static_cast<std::size_t>(l) + 1] = -(g + static_cast<Score>(l + 1) * h);
  }
  std::int64_t p_lo = 0, p_hi = ej;  // prev row's computed l-range (full for the boundary)

  Score best = kNegInf;
  std::int64_t best_k = -1, best_l = -1;
  for (std::int64_t k = 0; k <= ei; ++k) {
    const std::int64_t i = ei - k;
    const auto ii = static_cast<std::size_t>(i);
    // Row bounds from the mask, translated to reverse coordinates.
    std::int64_t l_lo = 1, l_hi = 0;
    if (mask.row_jmin[ii] <= mask.row_jmax[ii]) {
      l_lo = std::max<std::int64_t>(0, ej - mask.row_jmax[ii]);
      l_hi = std::min(ej, ej - static_cast<std::int64_t>(mask.row_jmin[ii]));
    }

    const Score boundary = -(g + static_cast<Score>(k + 1) * h);
    const Score prev_boundary = hrow[0];
    hrow[0] = boundary;

    // Diagonal / left-state carries, guarded against the previous row's
    // computed range (stale entries outside it are dead).
    Score s = l_lo == 0 ? prev_boundary
                        : (l_lo - 1 >= p_lo && l_lo - 1 <= p_hi
                               ? hrow[static_cast<std::size_t>(l_lo - 1) + 1]
                               : kNegInf);
    Score hleft = l_lo == 0 ? boundary : kNegInf;
    Score e = kNegInf;
    for (std::int64_t l = l_lo; l <= l_hi; ++l) {
      const auto idx = static_cast<std::size_t>(l) + 1;
      const bool up_in = l >= p_lo && l <= p_hi;
      const Score h_up = up_in ? hrow[idx] : kNegInf;
      const Score f_up = up_in ? frow[idx] : kNegInf;

      e = std::max(e - h, hleft - g - h);
      const Score f = std::max(f_up - h, h_up - g - h);
      const std::int64_t j = ej - l;
      Score c = std::max(
          {s + scoring.substitution(ref[ii], query[static_cast<std::size_t>(j)]), e, f});
      if (!mask.live(i, j)) {
        c = kNegInf;
        e = kNegInf;
        frow[idx] = kNegInf;
      } else {
        frow[idx] = f;
      }
      s = h_up;
      hleft = c;
      hrow[idx] = c;
      if (c > best) {
        best = c;
        best_k = k;
        best_l = l;
      }
    }
    stats.traceback_cells += l_lo <= l_hi ? static_cast<std::size_t>(l_hi - l_lo + 1) : 0;
    p_lo = l_lo;
    p_hi = l_hi;
  }

  SALOBA_CHECK_MSG(best == expect, "start discovery found " << best << ", score pass said "
                                                            << expect);
  return StartPoint{ei - best_k, ej - best_l};
}

/// Phase C: Myers–Miller divide-and-conquer over the mask. Shared state of
/// one recursion: sequences, penalties, mask, the four crossing arrays
/// (allocated once, reused down the recursion — a sub-sweep never needs its
/// parent's values), and the op string under construction.
struct MmContext {
  std::span<const seq::BaseCode> ref, query;
  const ScoringScheme* scoring = nullptr;
  const ForwardMask* mask = nullptr;
  Score g = 0, h = 0;
  std::vector<Score> cc, dd, rr, ss;
  std::string ops;
  WavefrontStats* stats = nullptr;
};

/// One half sweep of a split: `rows` rows of the subproblem [i0..i1] x
/// [j0..j1]. Forward orientation (rev = false) walks rows i0.. downward with
/// `tb` discounting a vertical gap down the left boundary column; reverse
/// orientation walks rows i1.. upward with `tb` (the caller's te) on the
/// right boundary column — i.e. the reverse sweep is the forward sweep of
/// the reversed subproblem. CC/DD are indexed by consumed-column count
/// c in [0, C]; on return [flo, fhi] is the final row's computed c-range
/// (index 0, the boundary, is always valid: CC = the boundary-hugging
/// vertical run, DD the same value once at least one row is consumed).
void mm_sweep(MmContext& ctx, std::int64_t i0, std::int64_t i1, std::int64_t j0,
              std::int64_t j1, std::int64_t rows, bool rev, Score tb, std::vector<Score>& CC,
              std::vector<Score>& DD, std::int64_t& flo, std::int64_t& fhi) {
  const Score g = ctx.g, h = ctx.h;
  const std::int64_t C = j1 - j0 + 1;

  CC[0] = 0;
  DD[0] = kNegInf;  // a vertical gap with zero rows consumed does not exist
  Score t = -g;
  for (std::int64_t c = 1; c <= C; ++c) {
    t -= h;
    CC[static_cast<std::size_t>(c)] = t;
    DD[static_cast<std::size_t>(c)] = t - g;
  }
  std::int64_t p_lo = 1, p_hi = C;  // prev row's computed range; init row is fully valid

  t = -tb;
  for (std::int64_t r = 0; r < rows; ++r) {
    const std::int64_t i = rev ? i1 - r : i0 + r;
    const auto ii = static_cast<std::size_t>(i);
    // Mask row bounds -> this row's c-range (empty when the row was never
    // computed; the boundary column still advances).
    std::int64_t c_lo = 1, c_hi = 0;
    if (ctx.mask->row_jmin[ii] <= ctx.mask->row_jmax[ii]) {
      if (rev) {
        c_lo = std::max<std::int64_t>(1, j1 - ctx.mask->row_jmax[ii] + 1);
        c_hi = std::min(C, j1 - static_cast<std::int64_t>(ctx.mask->row_jmin[ii]) + 1);
      } else {
        c_lo = std::max<std::int64_t>(1, static_cast<std::int64_t>(ctx.mask->row_jmin[ii]) -
                                             j0 + 1);
        c_hi = std::min(C, static_cast<std::int64_t>(ctx.mask->row_jmax[ii]) - j0 + 1);
      }
    }

    const Score prev_boundary = CC[0];
    t -= h;
    CC[0] = t;
    DD[0] = t;  // the boundary run is an open vertical gap

    Score s = c_lo == 1 ? prev_boundary
                        : (c_lo - 1 >= p_lo && c_lo - 1 <= p_hi
                               ? CC[static_cast<std::size_t>(c_lo - 1)]
                               : kNegInf);
    Score hleft = c_lo == 1 ? t : kNegInf;
    Score e = kNegInf;
    for (std::int64_t c = c_lo; c <= c_hi; ++c) {
      const auto idx = static_cast<std::size_t>(c);
      const bool up_in = c >= p_lo && c <= p_hi;
      const Score cc_up = up_in ? CC[idx] : kNegInf;
      const Score dd_up = up_in ? DD[idx] : kNegInf;

      e = std::max(e - h, hleft - g - h);
      Score dd = std::max(dd_up - h, cc_up - g - h);
      const std::int64_t j = rev ? j1 - (c - 1) : j0 + (c - 1);
      Score cnew = std::max(
          {s + ctx.scoring->substitution(ctx.ref[ii],
                                         ctx.query[static_cast<std::size_t>(j)]),
           e, dd});
      if (!ctx.mask->live(i, j)) {
        cnew = kNegInf;
        e = kNegInf;
        dd = kNegInf;
      }
      s = cc_up;
      hleft = cnew;
      CC[idx] = cnew;
      DD[idx] = dd;
    }
    if (ctx.stats != nullptr && c_lo <= c_hi) {
      ctx.stats->traceback_cells += static_cast<std::size_t>(c_hi - c_lo + 1);
    }
    p_lo = c_lo;
    p_hi = c_hi;
  }
  flo = p_lo;
  fhi = p_hi;
}

/// Single-row base case: place ref[i0] as a substitution at the smallest
/// best column (ties: substitution beats the all-gap form; within the
/// all-gap form the deletion attaches to the top boundary unless the bottom
/// is strictly cheaper).
void mm_single_row(MmContext& ctx, std::int64_t i0, std::int64_t j0, std::int64_t j1,
                   Score tb, Score te) {
  const Score g = ctx.g, h = ctx.h;
  const std::int64_t C = j1 - j0 + 1;
  const auto gap = [&](std::int64_t len) -> Score {
    return len > 0 ? g + static_cast<Score>(len) * h : Score{0};
  };

  const Score allgap = -(std::min(tb, te) + h) - gap(C);
  Score best_sub = kNegInf;
  std::int64_t best_j = -1;
  const auto ii = static_cast<std::size_t>(i0);
  if (ctx.mask->row_jmin[ii] <= ctx.mask->row_jmax[ii]) {
    const std::int64_t lo = std::max(j0, static_cast<std::int64_t>(ctx.mask->row_jmin[ii]));
    const std::int64_t hi = std::min(j1, static_cast<std::int64_t>(ctx.mask->row_jmax[ii]));
    for (std::int64_t j = lo; j <= hi; ++j) {
      if (!ctx.mask->live(i0, j)) continue;
      const Score v =
          -gap(j - j0) +
          ctx.scoring->substitution(ctx.ref[ii], ctx.query[static_cast<std::size_t>(j)]) -
          gap(j1 - j);
      if (v > best_sub) {
        best_sub = v;
        best_j = j;
      }
    }
  }

  if (best_j >= 0 && best_sub >= allgap) {
    ctx.ops.append(static_cast<std::size_t>(best_j - j0), 'I');
    ctx.ops.push_back('M');
    ctx.ops.append(static_cast<std::size_t>(j1 - best_j), 'I');
  } else if (tb <= te) {
    ctx.ops.push_back('D');
    ctx.ops.append(static_cast<std::size_t>(C), 'I');
  } else {
    ctx.ops.append(static_cast<std::size_t>(C), 'I');
    ctx.ops.push_back('D');
  }
}

/// The Myers–Miller recursion (header, phase C). tb/te are the extra
/// open-cost of a vertical gap crossing the top/bottom boundary: ctx.g
/// normally, 0 when the parent already opened that gap.
void mm_rec(MmContext& ctx, std::int64_t i0, std::int64_t i1, std::int64_t j0,
            std::int64_t j1, Score tb, Score te) {
  const std::int64_t R = i1 - i0 + 1;
  const std::int64_t C = j1 - j0 + 1;
  if (R <= 0) {
    ctx.ops.append(static_cast<std::size_t>(std::max<std::int64_t>(0, C)), 'I');
    return;
  }
  if (C <= 0) {
    ctx.ops.append(static_cast<std::size_t>(R), 'D');
    return;
  }
  if (R == 1) {
    mm_single_row(ctx, i0, j0, j1, tb, te);
    return;
  }

  const std::int64_t mid = i0 + (i1 - i0) / 2;  // i0 <= mid < i1
  std::int64_t f_lo = 0, f_hi = 0, r_lo = 0, r_hi = 0;
  mm_sweep(ctx, i0, mid, j0, j1, mid - i0 + 1, /*rev=*/false, tb, ctx.cc, ctx.dd, f_lo, f_hi);
  mm_sweep(ctx, mid + 1, i1, j0, j1, i1 - mid, /*rev=*/true, te, ctx.rr, ctx.ss, r_lo, r_hi);

  // Crossing scan: best value, then the smaller j, then type H over type F.
  // A type-F crossing joins a vertical gap spanning the split, so the
  // second open is refunded (+g).
  Score best = kNegInf;
  std::int64_t best_j = j0 - 1;
  bool best_is_f = false;
  const auto fwd_at = [&](const std::vector<Score>& a, std::int64_t c) {
    return c == 0 || (c >= f_lo && c <= f_hi) ? a[static_cast<std::size_t>(c)] : kNegInf;
  };
  const auto rev_at = [&](const std::vector<Score>& a, std::int64_t c) {
    return c == 0 || (c >= r_lo && c <= r_hi) ? a[static_cast<std::size_t>(c)] : kNegInf;
  };
  for (std::int64_t j = j0 - 1; j <= j1; ++j) {
    const std::int64_t cf = j - (j0 - 1);
    const std::int64_t cr = j1 - j;
    const Score type_h = fwd_at(ctx.cc, cf) + rev_at(ctx.rr, cr);
    if (type_h > best) {
      best = type_h;
      best_j = j;
      best_is_f = false;
    }
    const Score type_f = fwd_at(ctx.dd, cf) + rev_at(ctx.ss, cr) + ctx.g;
    if (type_f > best) {
      best = type_f;
      best_j = j;
      best_is_f = true;
    }
  }

  if (!best_is_f) {
    mm_rec(ctx, i0, mid, j0, best_j, tb, ctx.g);
    mm_rec(ctx, mid + 1, i1, best_j + 1, j1, ctx.g, te);
  } else {
    // The split-spanning gap deletes ref[mid] and ref[mid+1] explicitly;
    // both halves see that gap as already open at their boundary.
    mm_rec(ctx, i0, mid - 1, j0, best_j, tb, Score{0});
    ctx.ops.append(2, 'D');
    mm_rec(ctx, mid + 2, i1, best_j + 1, j1, Score{0}, te);
  }
}

}  // namespace

AlignmentResult xdrop_wavefront_score(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring, const XDropParams& params,
                                      WavefrontStats* stats) {
  SALOBA_CHECK(scoring.valid());
  WavefrontStats local;
  AlignmentResult best = wavefront_forward(ref, query, scoring, params, nullptr, local);
  if (stats != nullptr) *stats = local;
  return best;
}

TracedAlignment xdrop_wavefront_align(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring, const XDropParams& params,
                                      WavefrontStats* stats) {
  SALOBA_CHECK(scoring.valid());
  WavefrontStats local;
  ForwardMask mask;
  const AlignmentResult best = wavefront_forward(ref, query, scoring, params, &mask, local);
  TracedAlignment out;
  out.end = best;
  if (best.score <= 0) {
    if (stats != nullptr) *stats = local;
    return out;
  }

  const std::int64_t ei = best.ref_end;
  const std::int64_t ej = best.query_end;
  const StartPoint start =
      discover_start(ref, query, scoring, mask, ei, ej, best.score, local);

  MmContext ctx;
  ctx.ref = ref;
  ctx.query = query;
  ctx.scoring = &scoring;
  ctx.mask = &mask;
  ctx.g = scoring.alpha() - scoring.beta();
  ctx.h = scoring.beta();
  ctx.stats = &local;
  const std::size_t width = static_cast<std::size_t>(ej - start.sj) + 2;
  ctx.cc.resize(width);
  ctx.dd.resize(width);
  ctx.rr.resize(width);
  ctx.ss.resize(width);
  ctx.ops.reserve(static_cast<std::size_t>(ei - start.si + ej - start.sj) + 2);
  local.peak_bytes = std::max(
      local.peak_bytes, mask.bytes() + cap_bytes(ctx.cc) * 4 + ctx.ops.capacity());

  mm_rec(ctx, start.si, ei, start.sj, ej, ctx.g, ctx.g);

  out.ref_start = static_cast<std::int32_t>(start.si);
  out.query_start = static_cast<std::int32_t>(start.sj);
  out.cigar = compress_cigar(ctx.ops);
  if (stats != nullptr) *stats = local;
  return out;
}

std::size_t xdrop_cells_estimate(std::size_t ref_len, std::size_t query_len, Score xdrop,
                                 const ScoringScheme& scoring) {
  if (ref_len == 0 || query_len == 0) return 0;
  const std::size_t diagonals = ref_len + query_len - 1;
  std::size_t width = std::min(ref_len, query_len);
  if (xdrop > 0) {
    const auto score_bound =
        static_cast<std::size_t>(2 * (xdrop / scoring.beta()) + 1);
    width = std::min(width, score_bound);
  }
  return std::min(diagonals * width, ref_len * query_len);
}

}  // namespace saloba::align
