// Ultra-long-read X-drop wavefront engine (LOGAN-style regime).
//
// Executes the affine-gap local-alignment DP along anti-diagonals d = i + j
// (the paper's Fig. 3 intra-query parallelism, promoted from the demo-grade
// antidiag_cpu sweep into a production path) with an X-drop live window per
// diagonal, and recovers the CIGAR with Myers–Miller divide-and-conquer in
// O(N + M) memory — 100kb+ pairs never materialize an O(N·M) matrix and
// never blow the checkpointed-traceback budget.
//
// ## Forward pass (masked wavefront)
//
// Per diagonal d the engine keeps a live window [lo_d, hi_d] in reference
// coordinates i. window_0 = [0, 0]; the cells computed on diagonal d are the
// window intersected with the valid range [max(0, d-m+1), min(n-1, d)].
// After computing a diagonal the global best B is updated under the
// canonical improves() tie-break; a computed cell is *live* iff
// H >= B - X, and window_{d+1} = [lo_live, hi_live + 1] (the left/up
// successors of the live set). An empty live set terminates the sweep
// (`xdropped`). `xdrop <= 0` disables pruning: the windows then provably
// cover the whole valid range and the sweep is exact Smith-Waterman —
// smith_waterman_antidiag is now a thin wrapper over this path.
//
// Cells that were never computed (outside every window) read H = 0 (the
// local floor) and E/F = -inf, exactly like out-of-band cells in
// smith_waterman_banded. The computed windows are recorded (two ints per
// diagonal, O(N + M) total), which turns the history-dependent X-drop
// pruning into a *positional mask*: the pruned DP is a pure function of
// (sequences, scoring, mask) and can be recomputed exactly in any
// sub-rectangle. That property is what makes a deterministic linear-memory
// traceback possible at all.
//
// ## Traceback (three phases, all O(N + M) memory)
//
//  A. The forward masked pass above, recording the per-diagonal windows,
//     per-row column bounds, and the best endpoint (S, ei, ej).
//  B. Start discovery: a *global* (Needleman-Wunsch, no floor) affine DP
//     over the reversed prefixes rref[k] = ref[ei-k], rqry[l] = query[ej-l],
//     masked the same way (dead cells = -inf in every state, virtual
//     boundary rows/cols pay normal gap costs). Its maximum equals S — every
//     optimal forward path lies inside the mask and optimal local paths
//     carry no leading/trailing gaps — and the canonical start is the
//     argmax with the smallest k, then the smallest l (reverse coordinates).
//     Rolling rows: O(M) memory.
//  C. Myers–Miller divide-and-conquer over ref[si..ei] x query[sj..ej] on
//     the same mask. Rows split at mid = (i0 + i1) / 2; the forward sweep
//     carries (CC, DD) = best score ending free / ending in a vertical gap,
//     the backward sweep (RR, SS) symmetrically; crossing candidates at
//     column j are CC[j] + RR[j] (type H) and DD[j] + SS[j] + (alpha - beta)
//     (type F, refunding the double gap-open of a run that spans the split).
//     Tie-break: best value, then the smaller j, then type H over type F; a
//     type-F crossing emits the two boundary deletions explicitly and
//     recurses with the gap marked open. Single-row subproblems are solved
//     by a closed-form scan (substitution placement beats the all-gap form
//     on ties; among placements the smallest column wins; the all-gap form
//     attaches its deletion to the top boundary unless the bottom is
//     strictly cheaper). The canonical CIGAR is *defined* by these rules:
//     the naive full-matrix oracle (align/xdrop_reference.hpp) implements
//     the same specification with independent O(N·M) code, and the fuzz
//     suite asserts bit-identity of score, endpoint, and CIGAR.
#pragma once

#include <cstddef>
#include <span>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {

struct XDropParams {
  /// X-drop threshold: cells scoring below best-so-far minus `xdrop` leave
  /// the live window. <= 0 disables pruning (exact Smith-Waterman).
  Score xdrop = 0;

  bool operator==(const XDropParams&) const = default;
};

/// What one wavefront run computed and spent.
struct WavefrontStats {
  std::size_t cells = 0;          ///< forward-pass DP cells computed
  std::size_t traceback_cells = 0;  ///< phase B + phase C sweep cells
  std::size_t diagonals = 0;      ///< anti-diagonals swept before termination
  std::size_t max_wavefront = 0;  ///< widest computed window, in cells
  /// Peak heap footprint in bytes, measured from the engine's live container
  /// capacities at every phase boundary (not a model): diagonal buffers,
  /// window/row-bound records, rolling rows, divide-and-conquer arrays and
  /// the op string. The bench asserts this stays O(N + M).
  std::size_t peak_bytes = 0;
  bool xdropped = false;  ///< forward sweep terminated early via X-drop
};

/// Forward masked wavefront only: best local score + canonical endpoint
/// under the improves() tie-break. With params.xdrop <= 0 this is exact
/// Smith-Waterman (bit-identical to align::smith_waterman).
AlignmentResult xdrop_wavefront_score(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring,
                                      const XDropParams& params = {},
                                      WavefrontStats* stats = nullptr);

/// Full alignment in O(N + M) memory: forward masked pass, reverse-prefix
/// start discovery, Myers–Miller canonical CIGAR (see the file comment for
/// the exact specification). `end` equals xdrop_wavefront_score's result;
/// the CIGAR rescores to exactly that score.
TracedAlignment xdrop_wavefront_align(std::span<const seq::BaseCode> ref,
                                      std::span<const seq::BaseCode> query,
                                      const ScoringScheme& scoring,
                                      const XDropParams& params = {},
                                      WavefrontStats* stats = nullptr);

/// Cost-model estimate of the forward-pass cell count for an (n x m) pair —
/// the scheduler's packing load for routed long-read pairs, where the
/// nominal n·m table would absurdly overweight them. The live window is
/// score-bounded: moving sideways costs at least beta per step, so its width
/// is at most ~2·xdrop/beta + 1 cells around the best path. Capped at the
/// full table.
std::size_t xdrop_cells_estimate(std::size_t ref_len, std::size_t query_len, Score xdrop,
                                 const ScoringScheme& scoring);

}  // namespace saloba::align
