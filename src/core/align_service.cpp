#include "core/align_service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/backend.hpp"
#include "core/ordered_emitter.hpp"
#include "core/schedule_cache.hpp"
#include "util/bounded_queue.hpp"
#include "util/cancel_token.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace saloba::core {
namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// One admitted pair waiting in a session queue. Bands are resolved at
/// admission (submit materializes the AlignerOptions policy), so the
/// batcher can merge pairs from differently-banded tenants verbatim.
struct PendingPair {
  std::vector<seq::BaseCode> query;
  std::vector<seq::BaseCode> ref;
  std::size_t band = 0;
  Clock::time_point admitted;
};

/// A contiguous span one session contributed to a merged batch.
struct Segment {
  SessionId session = 0;
  std::size_t seq = 0;         ///< per-session segment sequence (emitter index)
  std::size_t first_pair = 0;  ///< session-stream index of the span's pair 0
  std::size_t offset = 0;      ///< offset into the merged batch
  std::size_t count = 0;
};

/// What travels batcher → align worker.
struct MergedBatch {
  seq::PairBatch batch;
  std::vector<Segment> segments;
  std::vector<Clock::time_point> admitted;  ///< parallel to batch pairs
};

/// What the worker hands a session's ordered emitter.
struct DeliveredSegment {
  std::size_t first_pair = 0;
  std::vector<align::AlignmentResult> results;
  std::vector<align::TracedAlignment> traced;
};

/// A tenant's cell-share slice of a merged batch's modeled breakdown.
/// sm_imbalance is a ratio diagnostic, not a time, so it is not scaled.
gpusim::TimeBreakdown scaled_breakdown(const gpusim::TimeBreakdown& b, double f) {
  gpusim::TimeBreakdown s = b;
  s.compute_ms *= f;
  s.dram_ms *= f;
  s.launch_ms *= f;
  s.init_ms *= f;
  s.traceback_ms *= f;
  s.chaining_ms *= f;
  s.total_ms *= f;
  s.dram_bytes *= f;
  return s;
}

struct Session {
  SessionId id = 0;
  SessionOptions opts;
  std::deque<PendingPair> queue;
  std::size_t submitted = 0;        ///< pairs admitted
  std::size_t taken = 0;            ///< pairs moved into merged batches
  std::size_t completed = 0;        ///< pairs delivered to the ready channel
  std::size_t cancelled_pairs = 0;  ///< queued or in-flight pairs dropped
  std::size_t peak_queued = 0;
  std::size_t inflight = 0;  ///< taken, not yet delivered or dropped
  std::size_t next_seq = 0;  ///< segment sequence for spans the batcher takes
  /// Reorders out-of-order merged-batch completions back into submit order.
  std::unique_ptr<OrderedEmitter<DeliveredSegment>> emitter;
  std::deque<SessionResult> ready;
  std::vector<double> latencies_ms;  ///< submit-to-delivery, one per pair
  std::size_t batches = 0;
  double align_ms = 0.0;
  std::size_t cells = 0;
  std::optional<gpusim::TimeBreakdown> breakdown;
  bool cancelled = false;
  bool finished = false;
  std::condition_variable admit_cv;  ///< submit() backpressure
  std::condition_variable ready_cv;  ///< poll() wakeups
};

}  // namespace

struct AlignService::Impl {
  const AlignerOptions& options;  ///< owned by the enclosing AlignService
  const ServiceOptions& service;

  std::unique_ptr<AlignBackend> primary;
  std::vector<std::unique_ptr<AlignBackend>> replicas;
  std::vector<AlignBackend*> worker_backends;

  mutable std::mutex mutex;
  std::condition_variable work_cv;  ///< wakes the batcher
  std::map<SessionId, std::unique_ptr<Session>> sessions;
  SessionId next_id = 1;
  std::size_t total_queued = 0;
  std::size_t rr_shift = 0;  ///< rotates remainder bias across tenants
  bool stopping = false;
  std::exception_ptr failure;

  // Service-wide aggregates (guarded by mutex).
  std::size_t batches = 0;
  std::size_t delivered_pairs = 0;
  std::size_t cells = 0;
  double align_ms = 0.0;
  double batch_wall_ms = 0.0;

  util::BoundedQueue<MergedBatch> inflight;
  util::CancelToken cancel_all;

  std::thread batcher;
  std::vector<std::thread> workers;
  std::once_flag join_once;

  Impl(const AlignerOptions& opts, const ServiceOptions& svc)
      : options(opts),
        service(svc),
        inflight(std::max<std::size_t>(1, svc.max_inflight_batches)) {
    primary = make_backend(options);
    const std::size_t n_workers = std::max<std::size_t>(1, service.align_threads);
    if (n_workers == 1) {
      worker_backends.push_back(primary.get());
    } else {
      // Replicate like StreamAligner: no lane is ever shared across worker
      // threads, and CPU replicas split the host thread budget between them.
      AlignerOptions wopts = options;
      if (options.backend == Backend::kCpu) {
        int total =
            options.cpu_threads > 0 ? options.cpu_threads : util::max_parallel_threads();
        wopts.cpu_threads = std::max(1, total / static_cast<int>(n_workers));
      }
      for (std::size_t w = 0; w < n_workers; ++w) {
        replicas.push_back(make_backend(wopts));
        worker_backends.push_back(replicas.back().get());
      }
    }
    batcher = std::thread([this] { batcher_loop(); });
    workers.reserve(worker_backends.size());
    for (AlignBackend* backend : worker_backends) {
      workers.emplace_back([this, backend] { worker_loop(backend); });
    }
  }

  Session& session_ref(SessionId id) {
    auto it = sessions.find(id);
    if (it == sessions.end()) {
      throw std::invalid_argument("unknown session id " + std::to_string(id));
    }
    return *it->second;
  }

  bool drained(const Session& s) const {
    return s.finished && s.queue.empty() && s.inflight == 0 && s.ready.empty();
  }

  /// Moves `n` pairs off the session queue onto the merged batch as one
  /// ordered segment, and releases that much admission headroom.
  void take_from(Session& s, std::size_t n, MergedBatch& mb) {
    Segment seg;
    seg.session = s.id;
    seg.seq = s.next_seq++;
    seg.first_pair = s.taken;
    seg.offset = mb.batch.size();
    seg.count = n;
    for (std::size_t i = 0; i < n; ++i) {
      PendingPair p = std::move(s.queue.front());
      s.queue.pop_front();
      mb.batch.add(std::move(p.query), std::move(p.ref), p.band);
      mb.admitted.push_back(p.admitted);
    }
    s.taken += n;
    s.inflight += n;
    total_queued -= n;
    mb.segments.push_back(seg);
    s.admit_cv.notify_all();
  }

  /// The continuous-batching top-up rule, under the service lock: serve the
  /// highest priority class that has queued work; within it, grant each
  /// tenant capacity proportional to its weight (minimum 1 pair, so a tiny
  /// weight can never starve outright); spill unused grants to the next
  /// class only when the higher one ran dry. Repeats until the batch is
  /// full or no queued work remains.
  void build_batch(MergedBatch& mb) {
    const std::size_t cap = std::max<std::size_t>(1, service.batch_pairs);
    while (mb.batch.size() < cap && total_queued > 0) {
      int best_prio = std::numeric_limits<int>::min();
      for (auto& [id, s] : sessions) {
        if (!s->cancelled && !s->queue.empty()) {
          best_prio = std::max(best_prio, s->opts.priority);
        }
      }
      if (best_prio == std::numeric_limits<int>::min()) break;
      std::vector<Session*> cands;
      double wsum = 0.0;
      for (auto& [id, s] : sessions) {
        if (!s->cancelled && !s->queue.empty() && s->opts.priority == best_prio) {
          cands.push_back(s.get());
          wsum += s->opts.weight;
        }
      }
      // Rotate the grant order so clamping at a full batch does not keep
      // shortchanging the same (map-order-last) tenant.
      std::rotate(cands.begin(),
                  cands.begin() + static_cast<std::ptrdiff_t>(rr_shift++ % cands.size()),
                  cands.end());
      const std::size_t remaining = cap - mb.batch.size();
      bool progress = false;
      for (Session* s : cands) {
        std::size_t room = cap - mb.batch.size();
        if (room == 0) break;
        auto target = static_cast<std::size_t>(std::llround(
            static_cast<double>(remaining) * s->opts.weight / wsum));
        if (target < 1) target = 1;
        std::size_t take = std::min({target, s->queue.size(), room});
        if (take == 0) continue;
        take_from(*s, take, mb);
        progress = true;
      }
      if (!progress) break;
    }
  }

  void batcher_loop() {
    for (;;) {
      MergedBatch mb;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stopping || total_queued > 0; });
        if (stopping) return;
        build_batch(mb);
      }
      if (mb.batch.size() == 0) continue;  // raced with a cancel
      // Blocking at the global in-flight cap IS the service's backpressure
      // spine: queued work stops draining, so producers stall at their
      // admission caps instead of growing memory.
      if (!inflight.push(std::move(mb))) return;  // closed: stopping
    }
  }

  /// Demultiplexes one aligned merged batch back to its tenants' ordered
  /// channels, attributing time by in-band DP-cell share. Under the lock.
  void deliver(MergedBatch& mb, AlignOutput&& out) {
    const Clock::time_point now = Clock::now();
    batches += 1;
    cells += out.cells;
    align_ms += out.time_ms;
    double total_cells = 0.0;
    for (std::size_t i = 0; i < mb.batch.size(); ++i) {
      total_cells += static_cast<double>(mb.batch.cells_of(i));
    }
    for (const Segment& seg : mb.segments) {
      auto it = sessions.find(seg.session);
      SALOBA_CHECK_MSG(it != sessions.end(), "segment for unknown session");
      Session& s = *it->second;
      s.inflight -= seg.count;
      if (s.cancelled) {
        s.cancelled_pairs += seg.count;  // ran, but nobody is listening
        continue;
      }
      DeliveredSegment d;
      d.first_pair = seg.first_pair;
      d.results.assign(out.results.begin() + static_cast<std::ptrdiff_t>(seg.offset),
                       out.results.begin() + static_cast<std::ptrdiff_t>(seg.offset + seg.count));
      if (!out.traced.empty()) {
        d.traced.assign(out.traced.begin() + static_cast<std::ptrdiff_t>(seg.offset),
                        out.traced.begin() + static_cast<std::ptrdiff_t>(seg.offset + seg.count));
      }
      double seg_cells = 0.0;
      for (std::size_t i = seg.offset; i < seg.offset + seg.count; ++i) {
        seg_cells += static_cast<double>(mb.batch.cells_of(i));
        s.latencies_ms.push_back(ms_between(mb.admitted[i], now));
      }
      const double share = total_cells > 0.0
                               ? seg_cells / total_cells
                               : static_cast<double>(seg.count) /
                                     static_cast<double>(mb.batch.size());
      s.align_ms += out.time_ms * share;
      s.cells += static_cast<std::size_t>(std::llround(seg_cells));
      s.batches += 1;
      if (out.time_breakdown) {
        if (!s.breakdown) s.breakdown.emplace();
        accumulate_breakdown(*s.breakdown, scaled_breakdown(*out.time_breakdown, share));
      }
      delivered_pairs += seg.count;
      s.emitter->push(seg.seq, std::move(d));
      s.ready_cv.notify_all();
    }
  }

  void worker_loop(AlignBackend* backend) {
    try {
      ScheduleCache cache(backend);
      // Cancel-aware pop: service shutdown must wake a worker parked on an
      // empty in-flight queue immediately, abandoned batches and all.
      while (auto mb = inflight.pop(cancel_all)) {
        util::Timer timer;
        // Bands were materialized at admission; only the schedule is
        // resolved per merged batch (the shared per-chunk rule, minus the
        // band step — a merged batch always carries final bands).
        SchedulerOptions wanted = resolve_chunk_schedule(
            mb->batch, options, std::nullopt, service.autotune_schedule, *backend);
        AlignOutput out = cache.scheduler(wanted).run(mb->batch);
        double wall = timer.millis();
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping) return;
        batch_wall_ms += wall;
        deliver(*mb, std::move(out));
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!failure) failure = std::current_exception();
        stopping = true;
      }
      wake_everyone();
    }
  }

  /// Unblocks every waiter: producers, pollers, the batcher, and workers.
  void wake_everyone() {
    inflight.close();
    cancel_all.cancel();
    work_cv.notify_all();
    std::lock_guard<std::mutex> lock(mutex);
    for (auto& [id, s] : sessions) {
      s->admit_cv.notify_all();
      s->ready_cv.notify_all();
    }
  }

  void fill_stats(const Session& s, SessionStats& st) const {
    st.submitted_pairs = s.submitted;
    st.completed_pairs = s.completed;
    st.cancelled_pairs = s.cancelled_pairs;
    st.queued_pairs = s.queue.size();
    st.peak_queued_pairs = s.peak_queued;
    st.inflight_pairs = s.inflight;
    st.batches = s.batches;
    st.align_ms = s.align_ms;
    st.cells = s.cells;
    st.p50_latency_ms = util::percentile_nearest_rank(s.latencies_ms, 50.0);
    st.p99_latency_ms = util::percentile_nearest_rank(s.latencies_ms, 99.0);
    st.time_breakdown = s.breakdown;
    st.weight = s.opts.weight;
    st.priority = s.opts.priority;
    st.cancelled = s.cancelled;
    st.finished = s.finished;
  }
};

AlignService::AlignService(AlignerOptions options, ServiceOptions service)
    : options_(std::move(options)), service_(service) {
  SALOBA_CHECK_MSG(options_.scoring.valid(), "invalid scoring scheme");
  if (service_.batch_pairs < 1) service_.batch_pairs = 1;
  if (service_.max_queued_pairs_per_session < 1) service_.max_queued_pairs_per_session = 1;
  if (service_.max_inflight_batches < 1) service_.max_inflight_batches = 1;
  if (service_.align_threads < 1) service_.align_threads = 1;
  impl_ = std::make_unique<Impl>(options_, service_);
}

AlignService::~AlignService() { stop(); }

SessionId AlignService::open(SessionOptions opts) {
  SALOBA_CHECK_MSG(opts.weight > 0.0, "session weight must be > 0, got " << opts.weight);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  SALOBA_CHECK_MSG(!impl_->stopping, "open() on a stopped AlignService");
  SessionId id = impl_->next_id++;
  auto session = std::make_unique<Session>();
  session->id = id;
  session->opts = opts;
  Session* raw = session.get();
  // The emitter's sink appends each in-order segment to the session's ready
  // channel; everything runs under the service lock, so plain writes are
  // safe. Sessions are never erased, so the raw pointer stays valid.
  session->emitter = std::make_unique<OrderedEmitter<DeliveredSegment>>(
      [raw](std::size_t, DeliveredSegment&& seg) {
        raw->completed += seg.results.size();
        SessionResult r;
        r.first_pair = seg.first_pair;
        r.results = std::move(seg.results);
        r.traced = std::move(seg.traced);
        raw->ready.push_back(std::move(r));
      });
  impl_->sessions.emplace(id, std::move(session));
  return id;
}

bool AlignService::submit(SessionId id, seq::PairBatch pairs) {
  // Resolve the band policy now (a batch's own band channel wins, exactly
  // the one-shot rule), so merged batches carry final per-pair bands.
  materialize_bands(pairs, options_.band_policy());
  std::unique_lock<std::mutex> lock(impl_->mutex);
  if (impl_->failure) std::rethrow_exception(impl_->failure);
  Session& s = impl_->session_ref(id);
  SALOBA_CHECK_MSG(!s.finished, "submit() after finish() on session " << id);
  const std::size_t cap = s.opts.max_queued_pairs > 0
                              ? s.opts.max_queued_pairs
                              : service_.max_queued_pairs_per_session;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // Admission control: block per pair until the batcher frees headroom.
    s.admit_cv.wait(lock, [&] {
      return impl_->stopping || s.cancelled || s.queue.size() < cap;
    });
    if (impl_->stopping || s.cancelled) return false;
    PendingPair p;
    p.band = pairs.band_of(i);
    p.query = std::move(pairs.queries[i]);
    p.ref = std::move(pairs.refs[i]);
    p.admitted = Clock::now();
    s.queue.push_back(std::move(p));
    s.submitted += 1;
    s.peak_queued = std::max(s.peak_queued, s.queue.size());
    impl_->total_queued += 1;
    impl_->work_cv.notify_one();
  }
  return true;
}

void AlignService::finish(SessionId id) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Session& s = impl_->session_ref(id);
  s.finished = true;
  s.ready_cv.notify_all();  // a poller may now observe "drained"
}

std::optional<SessionResult> AlignService::poll(SessionId id) {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  Session& s = impl_->session_ref(id);
  s.ready_cv.wait(lock, [&] {
    return impl_->failure || impl_->stopping || s.cancelled || !s.ready.empty() ||
           impl_->drained(s);
  });
  if (impl_->failure) std::rethrow_exception(impl_->failure);
  if (!s.ready.empty()) {
    SessionResult r = std::move(s.ready.front());
    s.ready.pop_front();
    return r;
  }
  return std::nullopt;  // cancelled, drained, or service stopped
}

void AlignService::cancel(SessionId id) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->sessions.find(id);
  if (it == impl_->sessions.end()) return;
  Session& s = *it->second;
  if (s.cancelled) return;
  s.cancelled = true;
  s.cancelled_pairs += s.queue.size();
  impl_->total_queued -= s.queue.size();
  s.queue.clear();
  s.ready.clear();  // cancellation discards undelivered results too
  s.admit_cv.notify_all();
  s.ready_cv.notify_all();
}

AlignOutput AlignService::align(const seq::PairBatch& batch, SessionOptions opts) {
  SessionId id = open(opts);
  bool admitted = submit(id, batch);  // copies: the caller keeps the batch
  finish(id);
  AlignOutput out;
  out.results.resize(batch.size());
  std::size_t received = 0;
  while (auto span = poll(id)) {
    std::copy(span->results.begin(), span->results.end(),
              out.results.begin() + static_cast<std::ptrdiff_t>(span->first_pair));
    if (!span->traced.empty()) {
      if (out.traced.size() != out.results.size()) out.traced.resize(out.results.size());
      std::move(span->traced.begin(), span->traced.end(),
                out.traced.begin() + static_cast<std::ptrdiff_t>(span->first_pair));
    }
    received += span->results.size();
  }
  SALOBA_CHECK_MSG(admitted && received == batch.size(),
                   "service stopped before align() completed ("
                       << received << "/" << batch.size() << " pairs)");
  SessionStats st = session_stats(id);
  out.cells = st.cells;
  out.time_ms = st.align_ms;
  out.gcups = st.align_ms > 0 ? static_cast<double>(st.cells) / (st.align_ms * 1e6) : 0.0;
  out.time_breakdown = st.time_breakdown;
  return out;
}

SessionStats AlignService::session_stats(SessionId id) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  SessionStats st;
  auto it = impl_->sessions.find(id);
  if (it == impl_->sessions.end()) {
    throw std::invalid_argument("unknown session id " + std::to_string(id));
  }
  impl_->fill_stats(*it->second, st);
  return st;
}

ServiceStats AlignService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ServiceStats st;
  st.sessions = impl_->sessions.size();
  st.batches = impl_->batches;
  st.pairs = impl_->delivered_pairs;
  st.cells = impl_->cells;
  st.align_ms = impl_->align_ms;
  st.gcups = impl_->align_ms > 0
                 ? static_cast<double>(impl_->cells) / (impl_->align_ms * 1e6)
                 : 0.0;
  st.batch_wall_ms = impl_->batch_wall_ms;
  st.session_stats.reserve(impl_->sessions.size());
  for (auto& [id, s] : impl_->sessions) {
    SessionStats ss;
    impl_->fill_stats(*s, ss);
    st.session_stats.emplace_back(id, std::move(ss));
  }
  return st;
}

void AlignService::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->wake_everyone();
  std::call_once(impl_->join_once, [this] {
    impl_->batcher.join();
    for (auto& w : impl_->workers) w.join();
  });
}

}  // namespace saloba::core
