// Multi-tenant alignment-as-a-service: continuous batching across client
// sessions over the existing BatchScheduler stack.
//
//   client A ──submit──▶ session queue ─┐
//   client B ──submit──▶ session queue ─┼─ batcher ──▶ BoundedQueue ──▶
//   client C ──submit──▶ session queue ─┘   (weighted  (in-flight cap)
//                                            fair merge)      │
//        poll ◀── per-session OrderedEmitter ◀── align workers ┘
//
// The single-stream pipeline (core::StreamAligner) saturates the device
// lanes from one caller; this layer keeps them saturated when the same
// workload arrives as many small concurrent sessions — the paper's
// workload-balance thesis applied across tenants. A continuous batcher tops
// up full-size merged PairBatches from whichever sessions have queued work
// (strict priority classes, weighted round-robin within a class), runs them
// through the unchanged BatchScheduler phases (score pass + optional
// traceback), and demultiplexes results back to each session's in-order
// channel. Because every kernel and backend is bit-exact per pair
// regardless of batch composition, a session's results are bit-identical
// to running that session's pairs standalone through Aligner::align with
// the same AlignerOptions — the contract the `ctest -L service` conformance
// layer and bench/service_mux lock.
//
// Flow control is backpressure end to end: submit() blocks at the
// per-session admission cap, the batcher blocks at the global in-flight
// cap, and cancellation (per session or service-wide stop) unblocks every
// waiter through util::CancelToken-aware queue operations — no producer or
// consumer can deadlock across shutdown.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/scheduler.hpp"
#include "seq/sequence.hpp"

namespace saloba::core {

using SessionId = std::uint64_t;

/// Per-tenant accounting and QoS metrics, snapshot under the service lock.
struct SessionStats {
  std::size_t submitted_pairs = 0;  ///< admitted through submit()
  std::size_t completed_pairs = 0;  ///< delivered to the session channel
  std::size_t cancelled_pairs = 0;  ///< queued work freed by cancel()
  std::size_t queued_pairs = 0;     ///< currently admitted, not yet batched
  std::size_t peak_queued_pairs = 0;
  std::size_t inflight_pairs = 0;   ///< batched, not yet delivered
  std::size_t batches = 0;  ///< merged batches this session contributed to
  /// Align time attributed to this tenant: each merged batch's makespan
  /// split by the tenants' in-band DP-cell shares of that batch.
  double align_ms = 0.0;
  std::size_t cells = 0;  ///< the tenant's in-band DP cells (the share basis)
  /// submit-to-delivery latency quantiles over every completed pair
  /// (util::percentile_nearest_rank — exact small-N nearest rank).
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  /// Simulated backends only: the tenant's cell-share slice of the merged
  /// batches' modeled time breakdowns.
  std::optional<gpusim::TimeBreakdown> time_breakdown;
  double weight = 1.0;
  int priority = 0;
  bool cancelled = false;
  bool finished = false;  ///< finish() called (no more submits)
};

/// Service-wide aggregates plus one SessionStats per ever-opened session.
struct ServiceStats {
  std::size_t sessions = 0;  ///< sessions opened over the service lifetime
  std::size_t batches = 0;   ///< merged batches dispatched
  std::size_t pairs = 0;     ///< pairs delivered across all sessions
  std::size_t cells = 0;     ///< backend-counted DP cells over all batches
  /// Sum of merged-batch makespans (same convention as StreamStats::align_ms:
  /// wall-clock on host backends, modeled ms on simulated devices).
  double align_ms = 0.0;
  double gcups = 0.0;  ///< cells / align_ms — the aggregate-throughput figure
  /// Host wall-clock the align workers spent running + delivering batches;
  /// its mean per batch is the latency yardstick of bench/service_mux.
  double batch_wall_ms = 0.0;
  std::vector<std::pair<SessionId, SessionStats>> session_stats;
};

/// One in-order span of a session's results: results[i] is the session's
/// pair first_pair + i, exactly as submitted. Consecutive polls return
/// consecutive spans (first_pair resumes where the last span ended).
struct SessionResult {
  std::size_t first_pair = 0;
  std::vector<align::AlignmentResult> results;
  /// Two-phase runs only (AlignerOptions::traceback): one traced alignment
  /// per result, same indexing.
  std::vector<align::TracedAlignment> traced;
};

class AlignService {
 public:
  /// Resolves the backend(s) immediately (throws std::invalid_argument on
  /// unknown kernel/device names, like Aligner) and starts the batcher and
  /// align-worker threads.
  explicit AlignService(AlignerOptions options, ServiceOptions service = {});
  ~AlignService();  ///< stop()s and joins if the caller has not already
  AlignService(const AlignService&) = delete;
  AlignService& operator=(const AlignService&) = delete;

  const AlignerOptions& options() const { return options_; }
  const ServiceOptions& service_options() const { return service_; }

  /// Opens a session with the given QoS knobs (weight must be > 0).
  SessionId open(SessionOptions opts = {});

  /// Admits every pair of `pairs` into the session's queue, in order,
  /// blocking whenever the admission cap is reached (pairs drain as the
  /// batcher takes them). The AlignerOptions band policy is materialized
  /// here — a batch carrying its own band channel wins, as everywhere.
  /// Returns false (admitting nothing further) once the session is
  /// cancelled or the service stopped; throws a failed worker's exception.
  bool submit(SessionId id, seq::PairBatch pairs);

  /// Declares end-of-input: once the queue drains and every in-flight pair
  /// has been delivered, poll() reports exhaustion instead of blocking.
  void finish(SessionId id);

  /// Next in-order result span for the session: blocks until one is ready;
  /// std::nullopt means "no more results, ever" (finished and fully
  /// drained, cancelled, or service stopped). Rethrows a worker failure.
  std::optional<SessionResult> poll(SessionId id);

  /// Frees the session's queued work immediately (without stalling other
  /// tenants), unblocks its producers (submit → false) and consumers
  /// (poll → nullopt, buffered results discarded); results of pairs already
  /// in a merged batch are dropped at delivery. Idempotent.
  void cancel(SessionId id);

  /// One-shot convenience: open + submit + finish + drain, reassembling the
  /// session's spans into one AlignOutput in input order — bit-identical
  /// results (and traces) to Aligner::align on the same batch. time_ms and
  /// cells report this tenant's attributed share (see SessionStats).
  AlignOutput align(const seq::PairBatch& batch, SessionOptions opts = {});

  SessionStats session_stats(SessionId id) const;
  ServiceStats stats() const;

  /// Stops the batcher and workers and joins them: producers unblock
  /// (submit → false), pollers get their drained/stopped answer, in-flight
  /// merged batches are abandoned. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Impl;

  AlignerOptions options_;
  ServiceOptions service_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace saloba::core
