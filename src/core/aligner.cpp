#include "core/aligner.hpp"

#include <stdexcept>

#include "align/batch.hpp"
#include "kernels/baselines.hpp"
#include "kernels/saloba_kernel.hpp"
#include "util/check.hpp"

namespace saloba::core {
namespace {

kernels::KernelPtr build_kernel(const std::string& name, std::size_t nominal) {
  // Route through the registry, then re-apply nominal batch size for the
  // footprint-sensitive baselines.
  if (nominal == 0) return kernels::make_kernel(name);
  if (name == "gasal2") return kernels::make_gasal2_like(nominal);
  if (name == "nvbio") return kernels::make_nvbio_like(nominal);
  if (name == "soap3-dp" || name == "soap3dp") return kernels::make_soap3dp_like(nominal);
  if (name == "cushaw2-gpu" || name == "cushaw2") return kernels::make_cushaw2_like(nominal);
  return kernels::make_kernel(name);
}

}  // namespace

Aligner::Aligner(AlignerOptions options) : options_(std::move(options)) {
  SALOBA_CHECK_MSG(options_.scoring.valid(), "invalid scoring scheme");
  if (options_.backend == Backend::kSimulated) {
    device_ = std::make_unique<gpusim::Device>(device_by_name(options_.device));
    kernel_ = build_kernel(options_.kernel, options_.nominal_batch_pairs);
  }
}

Aligner::~Aligner() = default;
Aligner::Aligner(Aligner&&) noexcept = default;
Aligner& Aligner::operator=(Aligner&&) noexcept = default;

AlignOutput Aligner::align(const seq::PairBatch& batch) {
  AlignOutput out;
  out.cells = batch.total_cells();
  if (options_.backend == Backend::kCpu) {
    align::BatchTiming timing;
    out.results = align::align_batch(batch, options_.scoring, &timing);
    out.time_ms = timing.wall_ms;
    out.gcups = timing.gcups;
    return out;
  }
  kernels::KernelResult kr = kernel_->run(*device_, batch, options_.scoring);
  out.results = std::move(kr.results);
  out.time_ms = kr.time.total_ms;
  out.gcups = out.time_ms > 0
                  ? static_cast<double>(out.cells) / (out.time_ms * 1e6)
                  : 0.0;
  out.kernel_stats = kr.stats;
  out.time_breakdown = kr.time;
  return out;
}

gpusim::DeviceSpec Aligner::device_by_name(const std::string& name) {
  if (name == "gtx1650" || name == "GTX1650") return gpusim::DeviceSpec::gtx1650();
  if (name == "rtx3090" || name == "RTX3090") return gpusim::DeviceSpec::rtx3090();
  if (name == "p100" || name == "P100") return gpusim::DeviceSpec::pascal_p100();
  if (name == "v100" || name == "V100") return gpusim::DeviceSpec::volta_v100();
  throw std::invalid_argument("unknown device preset: " + name);
}

}  // namespace saloba::core
