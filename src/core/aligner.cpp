#include "core/aligner.hpp"

#include "gpusim/device_registry.hpp"
#include "util/check.hpp"

namespace saloba::core {

Aligner::Aligner(AlignerOptions options) : options_(std::move(options)) {
  SALOBA_CHECK_MSG(options_.scoring.valid(), "invalid scoring scheme");
  backend_ = make_backend(options_);
  SchedulerOptions sched;
  sched.max_shard_pairs = options_.max_shard_pairs;
  sched.max_shard_chain_tasks = options_.max_shard_chain_tasks;
  sched.policy = options_.split_policy;
  sched.threads = options_.scheduler_threads;
  sched.band = options_.band_policy();
  sched.longread = options_.longread_policy();
  sched.traceback = options_.traceback;
  sched.traceback_settings.checkpoint_rows = options_.traceback_checkpoint_rows;
  scheduler_ = std::make_unique<BatchScheduler>(backend_.get(), sched);
}

Aligner::~Aligner() = default;
Aligner::Aligner(Aligner&&) noexcept = default;
Aligner& Aligner::operator=(Aligner&&) noexcept = default;

AlignOutput Aligner::align(const seq::PairBatch& batch) { return scheduler_->run(batch); }

std::function<std::vector<align::AlignmentResult>(const seq::PairBatch&)>
Aligner::batch_extender() {
  return [this](const seq::PairBatch& batch) { return align(batch).results; };
}

std::function<std::vector<align::TracedAlignment>(const seq::PairBatch&)>
Aligner::traced_extender() {
  SALOBA_CHECK_MSG(options_.traceback,
                   "traced_extender needs AlignerOptions::traceback = true");
  return [this](const seq::PairBatch& batch) { return align(batch).traced; };
}

seedext::BatchChainer Aligner::batch_chainer() {
  return [this](const seedext::ChainBatch& batch) {
    ChainPhaseOutput out = scheduler_->chain(batch);
    seedext::ChainStageResult res;
    res.chains = std::move(out.chains);
    res.chaining_ms = out.time_ms;
    res.anchors = out.anchors;
    res.updates = out.updates;
    return res;
  };
}

gpusim::DeviceSpec Aligner::device_by_name(const std::string& name) {
  return gpusim::device_by_name(name);
}

}  // namespace saloba::core
