// saloba::core::Aligner — the library's front door.
//
//   saloba::core::AlignerOptions opts;           // CPU backend by default
//   saloba::core::Aligner aligner(opts);
//   auto out = aligner.align(batch);             // results + timing
//
// Switching `opts.backend` to kSimulated runs the same batch through any of
// the reproduced GPU kernels on a simulated device and reports simulated
// kernel time plus the execution counters behind it. Setting `opts.devices`
// and/or `opts.max_shard_pairs` makes the BatchScheduler shard the batch
// into length-bucketed sub-batches and dispatch them asynchronously across
// several simulated devices (Sec. VII-C), merging results back in input
// order. Every align() call is routed
//
//   Aligner → BatchScheduler → AlignBackend → kernels → gpusim
//
// (see ARCHITECTURE.md).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "align/alignment_result.hpp"
#include "core/backend.hpp"
#include "core/options.hpp"
#include "core/scheduler.hpp"
#include "seedext/pipeline.hpp"
#include "seq/sequence.hpp"

namespace saloba::core {

class Aligner {
 public:
  explicit Aligner(AlignerOptions options);
  ~Aligner();
  Aligner(Aligner&&) noexcept;
  Aligner& operator=(Aligner&&) noexcept;

  const AlignerOptions& options() const { return options_; }
  const AlignBackend& backend() const { return *backend_; }

  /// Aligns every (query, reference) pair in the batch through the
  /// scheduler. Simulated backend may throw kernels::KernelUnsupportedError
  /// or gpusim::DeviceOomError, faithfully to the modelled library.
  AlignOutput align(const seq::PairBatch& batch);

  /// Adapter for pipeline stages (seedext::BatchExtender-compatible):
  /// aligns batches through this aligner's scheduler and returns just the
  /// per-pair results. The aligner must outlive the returned function.
  /// Note: on a traceback-enabled aligner this still runs (and discards)
  /// the traceback phase per batch — pipelines that only need traces for a
  /// later stage should keep a separate score-only aligner for extension.
  std::function<std::vector<align::AlignmentResult>(const seq::PairBatch&)> batch_extender();

  /// Two-phase adapter (seedext::TracedBatchExtender-compatible): runs the
  /// score pass plus the batched traceback phase and returns one
  /// TracedAlignment per pair. Requires AlignerOptions::traceback = true
  /// (throws otherwise); the aligner must outlive the returned function.
  std::function<std::vector<align::TracedAlignment>(const seq::PairBatch&)> traced_extender();

  /// Chaining-phase adapter (seedext::BatchChainer-compatible, for
  /// ReadMapper::set_batch_chainer): runs ChainBatches through the
  /// scheduler's chaining phase — weighted-LPT task shards across the
  /// backend's lanes, modeled chaining time on simulated devices — and
  /// returns the per-task chains plus phase accounting. Bit-identical to
  /// the in-process default; the aligner must outlive the returned function.
  seedext::BatchChainer batch_chainer();

  /// Resolves a device preset by name (see gpusim::device_by_name); throws
  /// std::invalid_argument listing the valid presets on unknown names.
  static gpusim::DeviceSpec device_by_name(const std::string& name);

 private:
  AlignerOptions options_;
  std::unique_ptr<AlignBackend> backend_;
  std::unique_ptr<BatchScheduler> scheduler_;
};

}  // namespace saloba::core
