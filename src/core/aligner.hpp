// saloba::core::Aligner — the library's front door.
//
//   saloba::core::AlignerOptions opts;           // CPU backend by default
//   saloba::core::Aligner aligner(opts);
//   auto out = aligner.align(batch);             // results + timing
//
// Switching `opts.backend` to kSimulated runs the same batch through any of
// the reproduced GPU kernels on a simulated device and reports simulated
// kernel time plus the execution counters behind it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "align/alignment_result.hpp"
#include "core/options.hpp"
#include "gpusim/device.hpp"
#include "kernels/kernel_iface.hpp"
#include "seq/sequence.hpp"

namespace saloba::core {

struct AlignOutput {
  std::vector<align::AlignmentResult> results;
  /// Wall-clock milliseconds for the CPU backend; simulated kernel
  /// milliseconds for the simulated backend.
  double time_ms = 0.0;
  std::size_t cells = 0;
  double gcups = 0.0;  ///< giga cell-updates per second at `time_ms`
  /// Simulated backend only.
  std::optional<gpusim::KernelStats> kernel_stats;
  std::optional<gpusim::TimeBreakdown> time_breakdown;
};

class Aligner {
 public:
  explicit Aligner(AlignerOptions options);
  ~Aligner();
  Aligner(Aligner&&) noexcept;
  Aligner& operator=(Aligner&&) noexcept;

  const AlignerOptions& options() const { return options_; }

  /// Aligns every (query, reference) pair in the batch.
  /// Simulated backend may throw kernels::KernelUnsupportedError or
  /// gpusim::DeviceOomError, faithfully to the modelled library.
  AlignOutput align(const seq::PairBatch& batch);

  /// Resolves a device preset by name; throws std::invalid_argument on
  /// unknown names.
  static gpusim::DeviceSpec device_by_name(const std::string& name);

 private:
  AlignerOptions options_;
  std::unique_ptr<gpusim::Device> device_;      // simulated backend only
  kernels::KernelPtr kernel_;                   // simulated backend only
};

}  // namespace saloba::core
