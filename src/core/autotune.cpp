#include "core/autotune.hpp"

#include <algorithm>

namespace saloba::core {

int recommend_subwarp_size(const DatasetStats& stats) {
  const double mean_len = stats.mean_query_len;
  const double imbalance = stats.cv_query_len;
  // Long queries amortise the prologue regardless; imbalance then argues
  // for wider subwarps (fewer queries sharing a warp).
  if (mean_len >= 512.0) {
    return imbalance > 1.0 ? 32 : 16;
  }
  // Short queries: prologue waste dominates unless imbalance is extreme.
  if (imbalance > 1.5) return 16;
  return 8;
}

kernels::SalobaConfig recommend_config(const DatasetStats& stats) {
  kernels::SalobaConfig config;
  config.subwarp_size = recommend_subwarp_size(stats);
  config.lazy_spill = true;
  return config;
}

SchedulerOptions recommend_scheduler(const DatasetStats& stats, int lanes) {
  SchedulerOptions opts;  // kSorted, one shard per lane
  if (lanes < 1) lanes = 1;
  if (stats.jobs == 0) return opts;  // nothing to schedule; defaults are safe

  // Banded batches are costed by their in-band cells — O(n·band), not
  // O(n·m) — so the length CVs overstate their imbalance; the cell CV is
  // what the shard packers actually balance (Sec. VII-B).
  const double skew =
      stats.banded ? stats.cv_cells : std::max(stats.cv_query_len, stats.cv_ref_len);
  if (skew <= 0.25) {
    // Near-uniform lengths: any split is balanced, so keep one shard per
    // lane; on a single lane, static packing preserves the scheduler's
    // no-copy single-launch fast path.
    if (lanes == 1) opts.policy = gpusim::SplitPolicy::kStatic;
    return opts;
  }

  // Skewed lengths: sorted packing with ~4 shards per lane bounds the tail
  // a long shard can add to the makespan while keeping dispatch overhead
  // amortised. No cap when the batch is too small to fill that many shards.
  const std::size_t target_shards = static_cast<std::size_t>(lanes) * 4;
  if (stats.jobs > target_shards) {
    opts.max_shard_pairs = (stats.jobs + target_shards - 1) / target_shards;
  }
  return opts;
}

SchedulerOptions recommend_scheduler(const DatasetStats& stats,
                                     const std::vector<double>& lane_weights) {
  const int lanes = lane_weights.empty() ? 1 : static_cast<int>(lane_weights.size());
  SchedulerOptions opts = recommend_scheduler(stats, lanes);
  if (stats.jobs == 0 || lane_weights.empty()) return opts;

  const auto [wmin, wmax] = std::minmax_element(lane_weights.begin(), lane_weights.end());
  if (*wmax <= *wmin * 1.25) return opts;  // near-uniform lanes: no extra shards

  // Heterogeneous lanes: one shard per lane would hand every lane an equal
  // (or length-balanced) slice regardless of speed — with the weighted LPT
  // the shard cap is what lets fast lanes take proportionally more and
  // steal the tail, so raise the shard budget to ~8 per lane.
  opts.policy = gpusim::SplitPolicy::kSorted;
  const std::size_t target_shards = static_cast<std::size_t>(lanes) * 8;
  if (stats.jobs > target_shards) {
    const std::size_t cap = (stats.jobs + target_shards - 1) / target_shards;
    opts.max_shard_pairs =
        opts.max_shard_pairs == 0 ? cap : std::min(opts.max_shard_pairs, cap);
  }
  return opts;
}

}  // namespace saloba::core
