#include "core/autotune.hpp"

#include <algorithm>

namespace saloba::core {

int recommend_subwarp_size(const DatasetStats& stats) {
  const double mean_len = stats.mean_query_len;
  const double imbalance = stats.cv_query_len;
  // Long queries amortise the prologue regardless; imbalance then argues
  // for wider subwarps (fewer queries sharing a warp).
  if (mean_len >= 512.0) {
    return imbalance > 1.0 ? 32 : 16;
  }
  // Short queries: prologue waste dominates unless imbalance is extreme.
  if (imbalance > 1.5) return 16;
  return 8;
}

kernels::SalobaConfig recommend_config(const DatasetStats& stats) {
  kernels::SalobaConfig config;
  config.subwarp_size = recommend_subwarp_size(stats);
  config.lazy_spill = true;
  return config;
}

SchedulerOptions recommend_scheduler(const DatasetStats& stats, int lanes) {
  SchedulerOptions opts;  // kSorted, one shard per lane
  if (lanes < 1) lanes = 1;
  if (stats.jobs == 0) return opts;  // nothing to schedule; defaults are safe

  const double skew = std::max(stats.cv_query_len, stats.cv_ref_len);
  if (skew <= 0.25) {
    // Near-uniform lengths: any split is balanced, so keep one shard per
    // lane; on a single lane, static packing preserves the scheduler's
    // no-copy single-launch fast path.
    if (lanes == 1) opts.policy = gpusim::SplitPolicy::kStatic;
    return opts;
  }

  // Skewed lengths: sorted packing with ~4 shards per lane bounds the tail
  // a long shard can add to the makespan while keeping dispatch overhead
  // amortised. No cap when the batch is too small to fill that many shards.
  const std::size_t target_shards = static_cast<std::size_t>(lanes) * 4;
  if (stats.jobs > target_shards) {
    opts.max_shard_pairs = (stats.jobs + target_shards - 1) / target_shards;
  }
  return opts;
}

}  // namespace saloba::core
