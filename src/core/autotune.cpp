#include "core/autotune.hpp"

namespace saloba::core {

int recommend_subwarp_size(const DatasetStats& stats) {
  const double mean_len = stats.mean_query_len;
  const double imbalance = stats.cv_query_len;
  // Long queries amortise the prologue regardless; imbalance then argues
  // for wider subwarps (fewer queries sharing a warp).
  if (mean_len >= 512.0) {
    return imbalance > 1.0 ? 32 : 16;
  }
  // Short queries: prologue waste dominates unless imbalance is extreme.
  if (imbalance > 1.5) return 16;
  return 8;
}

kernels::SalobaConfig recommend_config(const DatasetStats& stats) {
  kernels::SalobaConfig config;
  config.subwarp_size = recommend_subwarp_size(stats);
  config.lazy_spill = true;
  return config;
}

}  // namespace saloba::core
