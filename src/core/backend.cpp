#include "core/backend.hpp"

#include <algorithm>

#include "align/batch.hpp"
#include "gpusim/device_registry.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace saloba::core {

CpuBackend::CpuBackend(align::ScoringScheme scoring, int lanes, int threads_total)
    : scoring_(scoring), lanes_(lanes) {
  SALOBA_CHECK_MSG(scoring_.valid(), "invalid scoring scheme");
  SALOBA_CHECK_MSG(lanes_ >= 1, "CPU backend needs at least one lane");
  if (lanes_ > 1) {
    // Divide the host budget so concurrent lanes share, not fight over,
    // the cores. A single lane keeps the library-default team.
    int total = threads_total > 0 ? threads_total : util::max_parallel_threads();
    threads_per_lane_ = std::max(1, total / lanes_);
  } else if (threads_total > 0) {
    threads_per_lane_ = threads_total;
  }
}

BackendOutput CpuBackend::run(const seq::PairBatch& batch, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes_, "lane " << lane << " out of range");
  align::BatchTiming timing;
  BackendOutput out;
  out.results = align::align_batch(batch, scoring_, &timing, threads_per_lane_);
  out.time_ms = timing.wall_ms;
  return out;
}

SimulatedGpuBackend::SimulatedGpuBackend(const AlignerOptions& options)
    : scoring_(options.scoring) {
  SALOBA_CHECK_MSG(scoring_.valid(), "invalid scoring scheme");
  SALOBA_CHECK_MSG(options.devices >= 1, "need at least one device");
  kernel_ = kernels::make_kernel(options.kernel, options.nominal_batch_pairs);
  gpusim::DeviceSpec spec = gpusim::device_by_name(options.device);
  devices_.reserve(static_cast<std::size_t>(options.devices));
  for (int d = 0; d < options.devices; ++d) {
    devices_.push_back(std::make_unique<gpusim::Device>(spec));
  }
  name_ = "sim:" + kernel_->info().name + "@" + spec.name;
}

BackendOutput SimulatedGpuBackend::run(const seq::PairBatch& batch, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  kernels::KernelResult kr =
      kernel_->run(*devices_[static_cast<std::size_t>(lane)], batch, scoring_);
  BackendOutput out;
  out.results = std::move(kr.results);
  out.time_ms = kr.time.total_ms;
  out.kernel_stats = kr.stats;
  out.time_breakdown = kr.time;
  return out;
}

std::unique_ptr<AlignBackend> make_backend(const AlignerOptions& options) {
  if (options.backend == Backend::kCpu) {
    return std::make_unique<CpuBackend>(options.scoring, options.cpu_lanes,
                                        options.cpu_threads);
  }
  return std::make_unique<SimulatedGpuBackend>(options);
}

}  // namespace saloba::core
