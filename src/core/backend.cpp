#include "core/backend.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "align/batch.hpp"
#include "align/simd_engine.hpp"
#include "align/traceback_engine.hpp"
#include "align/xdrop_wavefront.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device_registry.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace saloba::core {
namespace {

/// Indices of the pairs an enabled long-read policy routes to the X-drop
/// wavefront engine, ascending (empty when the policy is disabled).
std::vector<std::size_t> longread_routed(const seq::PairBatch& batch,
                                         const LongReadPolicy& policy) {
  std::vector<std::size_t> routed;
  if (!policy.enabled()) return routed;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (policy.routes(batch.refs[i].size(), batch.queries[i].size())) routed.push_back(i);
  }
  return routed;
}

/// The non-routed remainder of a batch (band channel preserved) plus the
/// original index of each kept pair, for scattering results back into
/// input order.
struct RestSplit {
  seq::PairBatch batch;
  std::vector<std::size_t> indices;
};

RestSplit split_rest(const seq::PairBatch& batch, std::span<const std::size_t> routed) {
  RestSplit rest;
  rest.batch.default_band = batch.default_band;
  std::size_t r = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (r < routed.size() && routed[r] == i) {
      ++r;
      continue;
    }
    rest.indices.push_back(i);
    if (batch.has_band_info()) {
      rest.batch.add(batch.queries[i], batch.refs[i], batch.band_of(i));
    } else {
      rest.batch.add(batch.queries[i], batch.refs[i]);
    }
  }
  return rest;
}

/// Modeled DRAM traffic of a wavefront run: every cell touches the rolling
/// H/E/F diagonal slots (one write plus prior-diagonal reads, 16 B of int32
/// traffic) and both sequences stream once.
std::uint64_t xdrop_traffic_bytes(std::uint64_t cells, std::size_t bases) {
  return cells * 16 + static_cast<std::uint64_t>(bases);
}

/// X-drop wavefront score pass over the routed pairs, host-parallel.
/// `results[k]` belongs to batch pair `routed[k]`.
struct LongReadPhase {
  std::vector<align::AlignmentResult> results;
  std::uint64_t cells = 0;
  std::uint64_t bytes = 0;
  double wall_ms = 0.0;
};

LongReadPhase score_longread(const seq::PairBatch& batch,
                             std::span<const std::size_t> routed,
                             const align::ScoringScheme& scoring, align::Score xdrop,
                             int threads) {
  util::Timer timer;
  LongReadPhase out;
  out.results.resize(routed.size());
  std::vector<align::WavefrontStats> stats(routed.size());
  util::parallel_for_indexed(
      routed.size(),
      [&](std::size_t k) {
        const std::size_t i = routed[k];
        out.results[k] = align::xdrop_wavefront_score(
            batch.refs[i], batch.queries[i], scoring, align::XDropParams{xdrop}, &stats[k]);
      },
      threads);
  for (std::size_t k = 0; k < routed.size(); ++k) {
    const std::size_t i = routed[k];
    out.cells += stats[k].cells;
    out.bytes += xdrop_traffic_bytes(stats[k].cells,
                                     batch.refs[i].size() + batch.queries[i].size());
  }
  out.wall_ms = timer.millis();
  return out;
}

/// Routed-path run() body shared by all backends: score the non-routed
/// remainder through `run_rest` (skipped when empty, its kernel stats and
/// breakdown carried through), the routed pairs through the wavefront
/// phase, and merge both into input order. The caller owns how the
/// long-read phase is *costed* — hosts add its wall-clock, the simulated
/// backend replaces it with a modeled estimate — so only results, cells and
/// the phase measurements are merged here.
template <typename RunRest>
std::pair<BackendOutput, LongReadPhase> run_with_longread(
    const seq::PairBatch& batch, std::span<const std::size_t> routed,
    const align::ScoringScheme& scoring, align::Score xdrop, int threads,
    RunRest&& run_rest) {
  const RestSplit rest = split_rest(batch, routed);
  BackendOutput out;
  out.results.resize(batch.size());
  if (!rest.indices.empty()) {
    BackendOutput rest_out = run_rest(rest.batch);
    for (std::size_t k = 0; k < rest.indices.size(); ++k) {
      out.results[rest.indices[k]] = rest_out.results[k];
    }
    out.time_ms = rest_out.time_ms;
    out.cells = rest_out.cells;
    out.kernel_stats = std::move(rest_out.kernel_stats);
    out.time_breakdown = rest_out.time_breakdown;
  }
  LongReadPhase lr = score_longread(batch, routed, scoring, xdrop, threads);
  for (std::size_t k = 0; k < routed.size(); ++k) {
    out.results[routed[k]] = lr.results[k];
  }
  out.cells += lr.cells;
  return {std::move(out), std::move(lr)};
}

/// Shared traceback-phase body of both backends: the linear-memory engine
/// over every pair with a non-zero score-pass result, host-parallel, output
/// order matching input order. `zdrop` mirrors the backend's score pass so
/// endpoints stay bit-identical. Pairs an enabled `longread` policy routes
/// go through the X-drop wavefront's Myers-Miller traceback instead (same
/// xdrop as their score pass, so endpoints agree there too); their cells
/// and traffic are attributed separately.
struct EnginePhase {
  std::vector<align::TracedAlignment> traced;
  std::size_t cells = 0;
  std::size_t bytes = 0;
  /// Routed long-read pairs' share, attributed apart from the banded
  /// engine so the simulated backend can model the two phases separately.
  std::uint64_t xdrop_cells = 0;
  std::uint64_t xdrop_bytes = 0;
};

EnginePhase trace_batch(const seq::PairBatch& batch,
                        std::span<const align::AlignmentResult> results,
                        const align::ScoringScheme& scoring, align::Score zdrop,
                        const TracebackSettings& settings, int threads,
                        const LongReadPolicy& longread = {}) {
  SALOBA_CHECK_MSG(results.size() == batch.size(),
                   "traceback got " << results.size() << " score results for a "
                                    << batch.size() << "-pair batch");
  EnginePhase out;
  out.traced.resize(batch.size());
  std::vector<std::size_t> cells(batch.size(), 0);
  std::vector<std::size_t> bytes(batch.size(), 0);
  std::vector<char> is_xdrop(batch.size(), 0);
  util::parallel_for_indexed(
      batch.size(),
      [&](std::size_t i) {
        // A zero score pass means the empty local alignment — the engine
        // would re-derive exactly that, so skip the sweep.
        if (results[i].score <= 0) return;
        if (longread.routes(batch.refs[i].size(), batch.queries[i].size())) {
          align::WavefrontStats stats;
          out.traced[i] = align::xdrop_wavefront_align(
              batch.refs[i], batch.queries[i], scoring,
              align::XDropParams{longread.xdrop}, &stats);
          cells[i] = stats.cells + stats.traceback_cells;
          bytes[i] = xdrop_traffic_bytes(cells[i],
                                         batch.refs[i].size() + batch.queries[i].size());
          is_xdrop[i] = 1;
          return;
        }
        align::TracebackParams params;
        params.band = batch.band_of(i);
        params.zdrop = zdrop;
        params.checkpoint_rows = settings.checkpoint_rows;
        auto r = align::banded_traceback(batch.refs[i], batch.queries[i], scoring, params);
        out.traced[i] = std::move(r.traced);
        cells[i] = r.stats.cells();
        bytes[i] = r.stats.traffic_bytes;
      },
      threads);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (is_xdrop[i]) {
      out.xdrop_cells += cells[i];
      out.xdrop_bytes += bytes[i];
    } else {
      out.cells += cells[i];
      out.bytes += bytes[i];
    }
  }
  return out;
}

/// Shared chaining-phase body of the host backends: the forward-only engine
/// over the shard's tasks (ISA dispatch inside), wall-clock timed. Every
/// backend funnels through seedext::chain_tasks_run, so chains are
/// bit-identical to the sequential oracle wherever the shard lands.
ChainingOutput chain_shard(const seedext::ChainBatch& batch,
                           std::span<const std::size_t> tasks, int threads) {
  util::Timer timer;
  ChainingOutput out;
  out.chains.resize(batch.tasks());
  seedext::chain_tasks_run(batch, tasks, out.chains, &out.engine_stats, threads);
  out.anchors = out.engine_stats.anchors;
  out.updates = out.engine_stats.pushes + out.engine_stats.settled;
  out.time_ms = timer.millis();
  return out;
}

/// The chaining phase's modeled DRAM traffic: each anchor's four SoA columns
/// stream once (16 B) and each evaluated candidate reads and may rewrite a
/// score/parent slot (8 B).
std::uint64_t chaining_traffic_bytes(std::size_t anchors, std::size_t updates) {
  return static_cast<std::uint64_t>(anchors) * 16 +
         static_cast<std::uint64_t>(updates) * 8;
}

}  // namespace

std::vector<double> lane_weights(const AlignBackend& backend) {
  std::vector<double> weights(static_cast<std::size_t>(backend.lanes()));
  for (int l = 0; l < backend.lanes(); ++l) {
    weights[static_cast<std::size_t>(l)] = backend.lane_weight(l);
  }
  return weights;
}

CpuBackend::CpuBackend(align::ScoringScheme scoring, int lanes, int threads_total,
                       align::Score zdrop, LongReadPolicy longread)
    : scoring_(scoring), lanes_(lanes), zdrop_(zdrop), longread_(longread) {
  SALOBA_CHECK_MSG(scoring_.valid(), "invalid scoring scheme");
  SALOBA_CHECK_MSG(lanes_ >= 1, "CPU backend needs at least one lane");
  if (lanes_ > 1) {
    // Divide the host budget so concurrent lanes share, not fight over,
    // the cores. A single lane keeps the library-default team.
    int total = threads_total > 0 ? threads_total : util::max_parallel_threads();
    threads_per_lane_ = std::max(1, total / lanes_);
  } else if (threads_total > 0) {
    threads_per_lane_ = threads_total;
  }
}

double CpuBackend::lane_weight(int lane) const {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes_, "lane " << lane << " out of range");
  return threads_per_lane_ > 0 ? static_cast<double>(threads_per_lane_) : 1.0;
}

BackendOutput CpuBackend::run(const seq::PairBatch& batch, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes_, "lane " << lane << " out of range");
  const std::vector<std::size_t> routed = longread_routed(batch, longread_);
  if (routed.empty()) {
    align::BatchTiming timing;
    BackendOutput out;
    out.results = align::align_batch(batch, scoring_, &timing, threads_per_lane_, zdrop_);
    out.time_ms = timing.wall_ms;
    out.cells = timing.cells;
    return out;
  }
  auto [out, lr] = run_with_longread(
      batch, routed, scoring_, longread_.xdrop, threads_per_lane_,
      [&](const seq::PairBatch& rest) {
        align::BatchTiming timing;
        BackendOutput rest_out;
        rest_out.results =
            align::align_batch(rest, scoring_, &timing, threads_per_lane_, zdrop_);
        rest_out.time_ms = timing.wall_ms;
        rest_out.cells = timing.cells;
        return rest_out;
      });
  out.time_ms += lr.wall_ms;
  return std::move(out);
}

TracebackOutput CpuBackend::run_traceback(const seq::PairBatch& batch,
                                          std::span<const align::AlignmentResult> results,
                                          const TracebackSettings& settings, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes_, "lane " << lane << " out of range");
  util::Timer timer;
  EnginePhase phase = trace_batch(batch, results, scoring_, zdrop_, settings,
                                  threads_per_lane_, longread_);
  TracebackOutput out;
  out.traced = std::move(phase.traced);
  out.cells = phase.cells + phase.xdrop_cells;
  out.time_ms = timer.millis();
  return out;
}

ChainingOutput CpuBackend::run_chaining(const seedext::ChainBatch& batch,
                                        std::span<const std::size_t> tasks, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes_, "lane " << lane << " out of range");
  return chain_shard(batch, tasks, threads_per_lane_);
}

SimdCpuBackend::SimdCpuBackend(align::ScoringScheme scoring, std::vector<LaneKind> kinds,
                               int threads_total, align::Score zdrop,
                               LongReadPolicy longread)
    : scoring_(scoring), kinds_(std::move(kinds)), zdrop_(zdrop), longread_(longread) {
  SALOBA_CHECK_MSG(scoring_.valid(), "invalid scoring scheme");
  SALOBA_CHECK_MSG(!kinds_.empty(), "SIMD backend needs at least one lane");
  if (kinds_.size() > 1) {
    int total = threads_total > 0 ? threads_total : util::max_parallel_threads();
    threads_per_lane_ = std::max(1, total / static_cast<int>(kinds_.size()));
  } else if (threads_total > 0) {
    threads_per_lane_ = threads_total;
  }
  const bool mixed =
      std::any_of(kinds_.begin(), kinds_.end(),
                  [](LaneKind k) { return k == LaneKind::kScalar; });
  name_ = mixed ? "simd+cpu" : "simd";
}

double SimdCpuBackend::lane_weight(int lane) const {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  const double threads = threads_per_lane_ > 0 ? static_cast<double>(threads_per_lane_) : 1.0;
  return lane_kind(lane) == LaneKind::kSimd ? threads * simd_lane_speedup() : threads;
}

BackendOutput SimdCpuBackend::run(const seq::PairBatch& batch, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  auto run_engine = [&](const seq::PairBatch& b) {
    BackendOutput out;
    if (lane_kind(lane) == LaneKind::kScalar) {
      align::BatchTiming timing;
      out.results = align::align_batch(b, scoring_, &timing, threads_per_lane_, zdrop_);
      out.time_ms = timing.wall_ms;
      out.cells = timing.cells;
      return out;
    }
    align::simd::EngineStats stats;
    out.results = align::simd::align_batch(b, scoring_, &stats, threads_per_lane_, zdrop_);
    out.time_ms = stats.wall_ms;
    out.cells = stats.cells;
    return out;
  };
  const std::vector<std::size_t> routed = longread_routed(batch, longread_);
  if (routed.empty()) return run_engine(batch);
  auto [out, lr] = run_with_longread(batch, routed, scoring_, longread_.xdrop,
                                     threads_per_lane_, run_engine);
  out.time_ms += lr.wall_ms;
  return std::move(out);
}

TracebackOutput SimdCpuBackend::run_traceback(const seq::PairBatch& batch,
                                              std::span<const align::AlignmentResult> results,
                                              const TracebackSettings& settings, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  util::Timer timer;
  EnginePhase phase = trace_batch(batch, results, scoring_, zdrop_, settings,
                                  threads_per_lane_, longread_);
  TracebackOutput out;
  out.traced = std::move(phase.traced);
  out.cells = phase.cells + phase.xdrop_cells;
  out.time_ms = timer.millis();
  return out;
}

ChainingOutput SimdCpuBackend::run_chaining(const seedext::ChainBatch& batch,
                                            std::span<const std::size_t> tasks, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  // Both lane kinds run the same engine: chaining's scalar/vector split is a
  // per-task ISA dispatch inside chain_tasks_run, not a lane property.
  return chain_shard(batch, tasks, threads_per_lane_);
}

double simd_lane_speedup() {
  // Deterministic probe: one cohort-friendly batch of related pairs, both
  // engines timed single-threaded (lane weights already scale by thread
  // count), min of two reps each after a shared warm-up. Static-local: runs
  // once per process, at the first SimdCpuBackend weight query.
  static const double ratio = [] {
    util::Xoshiro256 rng(0x5a10ba);
    seq::PairBatch probe;
    for (int p = 0; p < 192; ++p) {
      std::vector<seq::BaseCode> ref(144);
      for (auto& b : ref) b = static_cast<seq::BaseCode>(rng.below(4));
      std::vector<seq::BaseCode> query(ref.begin(), ref.begin() + 120);
      for (auto& b : query) {
        if (rng.bernoulli(0.08)) b = static_cast<seq::BaseCode>(rng.below(4));
      }
      probe.add(std::move(query), std::move(ref));
    }
    const align::ScoringScheme scoring;
    auto time_scalar = [&] {
      const util::Timer t;
      align::align_batch(probe, scoring, nullptr, /*threads=*/1);
      return t.millis();
    };
    auto time_simd = [&] {
      const util::Timer t;
      align::simd::align_batch(probe, scoring, nullptr, /*threads=*/1);
      return t.millis();
    };
    time_scalar();  // warm-up (page-in, frequency ramp)
    time_simd();
    const double scalar_ms = std::min(time_scalar(), time_scalar());
    const double simd_ms = std::max(std::min(time_simd(), time_simd()), 1e-6);
    return std::clamp(scalar_ms / simd_ms, 1.0, 64.0);
  }();
  return ratio;
}

SimulatedGpuBackend::SimulatedGpuBackend(const AlignerOptions& options)
    : scoring_(options.scoring), longread_(options.longread_policy()) {
  SALOBA_CHECK_MSG(scoring_.valid(), "invalid scoring scheme");
  SALOBA_CHECK_MSG(options.devices >= 1, "need at least one device");
  kernel_ = kernels::make_kernel(options.kernel, options.nominal_batch_pairs);

  std::vector<gpusim::DeviceSpec> specs;
  for (const std::string& preset : device_preset_list(options.device)) {
    specs.push_back(gpusim::device_by_name(preset));
  }
  const bool mixed = specs.size() > 1;
  if (!mixed) {
    // Homogeneous: `devices` identical replicas of the single preset. Copy
    // out first — assign() from an element of the vector being reassigned
    // is self-aliasing the standard doesn't guarantee to survive.
    const gpusim::DeviceSpec only = specs.front();
    specs.assign(static_cast<std::size_t>(options.devices), only);
  } else {
    SALOBA_CHECK_MSG(options.devices == 1 ||
                         static_cast<std::size_t>(options.devices) == specs.size(),
                     "devices=" << options.devices << " conflicts with a "
                                << specs.size() << "-preset device list");
  }

  devices_.reserve(specs.size());
  weights_.reserve(specs.size());
  double slowest = gpusim::peak_issue_rate(specs.front());
  for (const gpusim::DeviceSpec& spec : specs) {
    slowest = std::min(slowest, gpusim::peak_issue_rate(spec));
  }
  for (const gpusim::DeviceSpec& spec : specs) {
    devices_.push_back(std::make_unique<gpusim::Device>(spec));
    weights_.push_back(gpusim::peak_issue_rate(spec) / slowest);
  }
  name_ = "sim:" + kernel_->info().name + "@" + specs.front().name;
  if (mixed) {
    for (std::size_t d = 1; d < specs.size(); ++d) name_ += "+" + specs[d].name;
  }
}

double SimulatedGpuBackend::lane_weight(int lane) const {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  return weights_[static_cast<std::size_t>(lane)];
}

BackendOutput SimulatedGpuBackend::run(const seq::PairBatch& batch, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  const std::vector<std::size_t> routed = longread_routed(batch, longread_);
  if (routed.empty()) {
    kernels::KernelResult kr =
        kernel_->run(*devices_[static_cast<std::size_t>(lane)], batch, scoring_);
    BackendOutput out;
    out.results = std::move(kr.results);
    out.time_ms = kr.time.total_ms;
    out.cells = kr.stats.totals.dp_cells;
    out.kernel_stats = kr.stats;
    out.time_breakdown = kr.time;
    return out;
  }
  // Functional wavefront pass on the host for the routed pairs (the sweep is
  // backend-independent), the kernel for the remainder...
  auto [out, lr] = run_with_longread(
      batch, routed, scoring_, longread_.xdrop, /*threads=*/0,
      [&](const seq::PairBatch& rest) {
        kernels::KernelResult kr =
            kernel_->run(*devices_[static_cast<std::size_t>(lane)], rest, scoring_);
        BackendOutput rest_out;
        rest_out.results = std::move(kr.results);
        rest_out.time_ms = kr.time.total_ms;
        rest_out.cells = kr.stats.totals.dp_cells;
        rest_out.kernel_stats = kr.stats;
        rest_out.time_breakdown = kr.time;
        return rest_out;
      });
  // ...then the routed phase's modeled cost on this lane's device replaces
  // its host wall-clock.
  const gpusim::Device& dev = *devices_[static_cast<std::size_t>(lane)];
  const gpusim::TimeBreakdown modeled =
      gpusim::estimate_xdrop_time(dev.spec(), dev.cost_params(), lr.cells, lr.bytes);
  if (!out.kernel_stats) out.kernel_stats = gpusim::KernelStats{};
  out.kernel_stats->totals.xdrop_cells += lr.cells;
  out.kernel_stats->totals.xdrop_bytes += lr.bytes;
  if (!out.time_breakdown) out.time_breakdown = gpusim::TimeBreakdown{};
  out.time_breakdown->xdrop_ms += modeled.xdrop_ms;
  out.time_breakdown->total_ms += modeled.total_ms;
  out.time_ms = out.time_breakdown->total_ms;
  return std::move(out);
}

TracebackOutput SimulatedGpuBackend::run_traceback(
    const seq::PairBatch& batch, std::span<const align::AlignmentResult> results,
    const TracebackSettings& settings, int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  // Functional pass on the host (no zdrop: the kernels apply none, so traced
  // endpoints match the kernels bit-for-bit; routed long-read pairs mirror
  // their wavefront score pass instead)...
  EnginePhase phase = trace_batch(batch, results, scoring_, /*zdrop=*/0, settings,
                                  /*threads=*/0, longread_);
  TracebackOutput out;
  out.traced = std::move(phase.traced);
  out.cells = phase.cells + phase.xdrop_cells;
  // ...then each engine's modeled cost on this lane's device, attributed
  // apart (traceback_ms vs xdrop_ms).
  const gpusim::Device& dev = *devices_[static_cast<std::size_t>(lane)];
  gpusim::TimeBreakdown time = gpusim::estimate_traceback_time(
      dev.spec(), dev.cost_params(), phase.cells, phase.bytes);
  const gpusim::TimeBreakdown xdrop_time = gpusim::estimate_xdrop_time(
      dev.spec(), dev.cost_params(), phase.xdrop_cells, phase.xdrop_bytes);
  time.xdrop_ms = xdrop_time.xdrop_ms;
  time.total_ms += xdrop_time.total_ms;
  out.time_breakdown = time;
  out.time_ms = out.time_breakdown->total_ms;
  gpusim::KernelStats stats;
  stats.totals.traceback_cells = phase.cells;
  stats.totals.traceback_bytes = phase.bytes;
  stats.totals.xdrop_cells = phase.xdrop_cells;
  stats.totals.xdrop_bytes = phase.xdrop_bytes;
  out.kernel_stats = stats;
  return out;
}

ChainingOutput SimulatedGpuBackend::run_chaining(const seedext::ChainBatch& batch,
                                                 std::span<const std::size_t> tasks,
                                                 int lane) {
  SALOBA_CHECK_MSG(lane >= 0 && lane < lanes(), "lane " << lane << " out of range");
  // Functional pass on the host — the engine's output is ISA- and
  // backend-independent, so the simulated lane returns the same chains...
  ChainingOutput out = chain_shard(batch, tasks, /*threads=*/0);
  // ...with the phase's modeled cost on this lane's device replacing the
  // host wall-clock.
  const gpusim::Device& dev = *devices_[static_cast<std::size_t>(lane)];
  const std::uint64_t bytes = chaining_traffic_bytes(out.anchors, out.updates);
  out.time_breakdown = gpusim::estimate_chaining_time(dev.spec(), dev.cost_params(),
                                                      out.updates, bytes);
  out.time_ms = out.time_breakdown->total_ms;
  gpusim::KernelStats stats;
  stats.totals.chaining_updates = out.updates;
  stats.totals.chaining_bytes = bytes;
  out.kernel_stats = stats;
  return out;
}

std::unique_ptr<AlignBackend> make_backend(const AlignerOptions& options) {
  if (options.backend == Backend::kCpu) {
    const std::vector<std::string> presets = device_preset_list(options.device);
    const bool any_host = std::any_of(presets.begin(), presets.end(), is_host_preset);
    if (!any_host) {
      // Legacy shape: Backend::kCpu with a GPU preset name (the "rtx3090"
      // default) — the device string only matters to the simulated backend.
      return std::make_unique<CpuBackend>(options.scoring, options.cpu_lanes,
                                          options.cpu_threads, options.zdrop,
                                          options.longread_policy());
    }
    if (!std::all_of(presets.begin(), presets.end(), is_host_preset)) {
      throw std::invalid_argument(
          "device list \"" + options.device +
          "\" mixes host engines (cpu/simd) with GPU presets; host lanes and "
          "simulated devices cannot share one backend");
    }
    const bool any_simd = std::any_of(presets.begin(), presets.end(),
                                      [](const std::string& p) { return p == "simd"; });
    if (!any_simd) {
      // All-"cpu" list: the scalar host backend, one lane per entry (a
      // single "cpu" keeps the cpu_lanes knob in charge, like before).
      const int lanes = presets.size() > 1 ? static_cast<int>(presets.size())
                                           : std::max(1, options.cpu_lanes);
      return std::make_unique<CpuBackend>(options.scoring, lanes, options.cpu_threads,
                                          options.zdrop, options.longread_policy());
    }
    std::vector<SimdCpuBackend::LaneKind> kinds;
    if (presets.size() == 1) {
      kinds.assign(static_cast<std::size_t>(std::max(1, options.cpu_lanes)),
                   SimdCpuBackend::LaneKind::kSimd);
    } else {
      for (const std::string& p : presets) {
        kinds.push_back(p == "simd" ? SimdCpuBackend::LaneKind::kSimd
                                    : SimdCpuBackend::LaneKind::kScalar);
      }
    }
    return std::make_unique<SimdCpuBackend>(options.scoring, std::move(kinds),
                                            options.cpu_threads, options.zdrop,
                                            options.longread_policy());
  }
  return std::make_unique<SimulatedGpuBackend>(options);
}

}  // namespace saloba::core
