// The execution-backend layer between the Aligner facade / BatchScheduler
// and the alignment engines. A backend turns one (sub-)batch into results
// plus timing on one of its lanes; the scheduler decides how a user batch
// is split across lanes and merges the outputs (see core/scheduler.hpp for
// the layering diagram).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "align/alignment_result.hpp"
#include "core/options.hpp"
#include "gpusim/device.hpp"
#include "kernels/kernel_iface.hpp"
#include "seedext/chain_batch.hpp"
#include "seedext/chain_engine.hpp"
#include "seq/sequence.hpp"

namespace saloba::core {

/// What one backend run on one lane produced.
struct BackendOutput {
  std::vector<align::AlignmentResult> results;
  /// Wall-clock milliseconds for the CPU backend; simulated kernel
  /// milliseconds for the simulated backend.
  double time_ms = 0.0;
  /// DP cells actually computed: in-band cells for banded pairs, minus any
  /// rows a CPU-side zdrop pruned. 0 = the backend did not count (the
  /// scheduler then falls back to the batch's nominal banded cell count).
  std::size_t cells = 0;
  /// Simulated backend only.
  std::optional<gpusim::KernelStats> kernel_stats;
  std::optional<gpusim::TimeBreakdown> time_breakdown;
};

/// What one traceback-phase run on one lane produced (two-phase alignment,
/// AlignerOptions::traceback).
struct TracebackOutput {
  /// One traced alignment per batch pair, input order. Pairs whose score
  /// pass found nothing (score 0) get the empty TracedAlignment.
  std::vector<align::TracedAlignment> traced;
  /// Wall-clock milliseconds for the CPU backend; modeled traceback-phase
  /// milliseconds for the simulated backend.
  double time_ms = 0.0;
  /// Engine cells spent on the phase (forward sweep + backward replay).
  std::size_t cells = 0;
  /// Simulated backend only: the phase's counters and modeled time
  /// (WarpCounters::traceback_cells/traceback_bytes,
  /// TimeBreakdown::traceback_ms).
  std::optional<gpusim::KernelStats> kernel_stats;
  std::optional<gpusim::TimeBreakdown> time_breakdown;
};

/// What one chaining-phase run on one lane produced (the batched
/// forward-only chaining wave, core::BatchScheduler::chain).
struct ChainingOutput {
  /// Indexed by *batch* task id; only this run's shard tasks are filled
  /// (others stay empty vectors), so the scheduler can merge shard outputs
  /// without remapping.
  std::vector<std::vector<seedext::Chain>> chains;
  /// Wall-clock milliseconds for host backends; modeled chaining-phase
  /// milliseconds for the simulated backend.
  double time_ms = 0.0;
  /// Push + settlement candidates the engine evaluated (structural count,
  /// deterministic across ISAs/threads) — the phase's work measure.
  std::size_t updates = 0;
  std::size_t anchors = 0;  ///< anchors across this run's tasks
  seedext::ChainEngineStats engine_stats;
  /// Simulated backend only: modeled counters and time
  /// (WarpCounters::chaining_updates/chaining_bytes,
  /// TimeBreakdown::chaining_ms).
  std::optional<gpusim::KernelStats> kernel_stats;
  std::optional<gpusim::TimeBreakdown> time_breakdown;
};

/// Engine knobs the scheduler threads into run_traceback.
struct TracebackSettings {
  /// Rows between row-state snapshots (0 = engine default, ~sqrt(|ref|)).
  std::size_t checkpoint_rows = 0;

  bool operator==(const TracebackSettings&) const = default;
};

class AlignBackend {
 public:
  virtual ~AlignBackend() = default;

  virtual const std::string& name() const = 0;

  /// Independent execution lanes (simulated devices). The scheduler
  /// serializes runs on one lane; distinct lanes may run concurrently.
  virtual int lanes() const = 0;

  /// Relative throughput hint for `lane` — the scheduler's cost input for
  /// heterogeneous lanes (weighted LPT). Only ratios between lanes matter;
  /// homogeneous backends keep the default 1.0 everywhere, which makes the
  /// scheduler fall back to the classic unweighted packing bit-for-bit.
  virtual double lane_weight(int /*lane*/) const { return 1.0; }

  /// Runs the batch on `lane` (in [0, lanes())). May throw
  /// kernels::KernelUnsupportedError or gpusim::DeviceOomError, faithfully
  /// to the modelled library.
  virtual BackendOutput run(const seq::PairBatch& batch, int lane) = 0;

  /// Traceback phase for a batch whose score pass produced `results`
  /// (size == batch.size()): one TracedAlignment per pair through the
  /// linear-memory engine (align::banded_traceback), honoring the batch's
  /// per-pair bands. Pairs with a zero score-pass result are skipped (their
  /// trace is empty by construction). Endpoints reproduce `results` for any
  /// score pass that is bit-identical to the CPU reference.
  virtual TracebackOutput run_traceback(const seq::PairBatch& batch,
                                        std::span<const align::AlignmentResult> results,
                                        const TracebackSettings& settings, int lane) = 0;

  /// Chaining phase for shard `tasks` of a ChainBatch: the forward-only
  /// fixed-lookahead engine (seedext::chain_tasks_run) on `lane`, results
  /// bit-identical to the sequential seedext::chain_seeds oracle for every
  /// task regardless of backend, lane, or ISA.
  virtual ChainingOutput run_chaining(const seedext::ChainBatch& batch,
                                      std::span<const std::size_t> tasks, int lane) = 0;
};

/// All of a backend's lane weights, in lane order (size == lanes()).
std::vector<double> lane_weights(const AlignBackend& backend);

/// The host OpenMP batch aligner (align::align_batch). One lane by default;
/// `lanes > 1` splits the host into independent lanes the scheduler may run
/// concurrently, each budgeted `threads_total / lanes` OpenMP threads
/// (threads_total 0 = hardware concurrency) so overlapping shard runs never
/// oversubscribe the machine and wall-clock timing stays honest.
class CpuBackend final : public AlignBackend {
 public:
  /// `zdrop > 0` applies z-drop row pruning to every pair (see
  /// align::BandedParams::zdrop); per-pair bands come from the batch itself
  /// (the scheduler materializes AlignerOptions band knobs into it).
  /// An enabled `longread` policy routes qualifying pairs to the X-drop
  /// wavefront engine in both run() and run_traceback() — routed pairs
  /// ignore band and zdrop (see core::LongReadPolicy).
  explicit CpuBackend(align::ScoringScheme scoring, int lanes = 1, int threads_total = 0,
                      align::Score zdrop = 0, LongReadPolicy longread = {});

  const std::string& name() const override { return name_; }
  int lanes() const override { return lanes_; }
  /// OpenMP thread cap per lane run; 0 = the default team (single lane).
  int threads_per_lane() const { return threads_per_lane_; }
  /// CPU lanes split one thread budget evenly, so every lane weighs its
  /// per-lane thread count — uniform, keeping the unweighted scheduler path.
  double lane_weight(int lane) const override;
  BackendOutput run(const seq::PairBatch& batch, int lane) override;
  /// Engine params mirror the score pass (per-pair band + this backend's
  /// zdrop), so traced endpoints are bit-identical to run()'s results.
  TracebackOutput run_traceback(const seq::PairBatch& batch,
                                std::span<const align::AlignmentResult> results,
                                const TracebackSettings& settings, int lane) override;
  ChainingOutput run_chaining(const seedext::ChainBatch& batch,
                              std::span<const std::size_t> tasks, int lane) override;

 private:
  align::ScoringScheme scoring_;
  int lanes_ = 1;
  int threads_per_lane_ = 0;
  align::Score zdrop_ = 0;
  LongReadPolicy longread_;
  std::string name_ = "cpu";
};

/// The inter-sequence SIMD batch aligner (align::simd::align_batch) as a
/// first-class backend: 8/16-bit saturating vector lanes with an int32
/// rescue ladder, bit-identical to CpuBackend's results (scores, endpoints,
/// cell counts) but measured, not modeled, throughput. Selected via
/// AlignerOptions.device = "simd" (Backend::kCpu); a mixed host list like
/// "simd,cpu" builds one lane per entry, so the scheduler can split work
/// cost-aware across a vector lane and a scalar lane.
class SimdCpuBackend final : public AlignBackend {
 public:
  /// What engine a lane runs: the SIMD cohort engine or the scalar batch
  /// aligner (for mixed "simd,cpu" backends).
  enum class LaneKind { kSimd, kScalar };

  /// One lane per entry of `kinds`; lanes split `threads_total` evenly like
  /// CpuBackend. `zdrop > 0` applies z-drop pruning on every lane (both
  /// engines implement the identical rule). An enabled `longread` policy
  /// routes qualifying pairs to the X-drop wavefront engine on every lane
  /// kind (scalar DP per routed pair — long pairs don't cohort anyway).
  SimdCpuBackend(align::ScoringScheme scoring, std::vector<LaneKind> kinds,
                 int threads_total = 0, align::Score zdrop = 0, LongReadPolicy longread = {});

  const std::string& name() const override { return name_; }
  int lanes() const override { return static_cast<int>(kinds_.size()); }
  int threads_per_lane() const { return threads_per_lane_; }
  LaneKind lane_kind(int lane) const { return kinds_[static_cast<std::size_t>(lane)]; }
  /// Thread budget x a *calibrated* engine throughput ratio: SIMD lanes
  /// weigh simd_lane_speedup() times a scalar lane, so PR 3's weighted LPT
  /// places shards by measured speed, not lane count.
  double lane_weight(int lane) const override;
  BackendOutput run(const seq::PairBatch& batch, int lane) override;
  /// Same engine and settings as CpuBackend's traceback phase: the SIMD
  /// score pass is bit-identical to the scalar one, so the shared
  /// linear-memory engine reproduces its endpoints exactly.
  TracebackOutput run_traceback(const seq::PairBatch& batch,
                                std::span<const align::AlignmentResult> results,
                                const TracebackSettings& settings, int lane) override;
  ChainingOutput run_chaining(const seedext::ChainBatch& batch,
                              std::span<const std::size_t> tasks, int lane) override;

 private:
  align::ScoringScheme scoring_;
  std::vector<LaneKind> kinds_;
  int threads_per_lane_ = 0;
  align::Score zdrop_ = 0;
  LongReadPolicy longread_;
  std::string name_;
};

/// Measured single-thread throughput of align::simd::align_batch relative to
/// the scalar align::align_batch: a deterministic micro-probe run once per
/// process (cached), clamped to [1, 64] so a degenerate measurement can
/// never starve a lane. This is SimdCpuBackend's lane-weight calibration.
double simd_lane_speedup();

/// A reproduced GPU kernel on N simulated devices. Each lane owns a
/// gpusim::Device; the kernel object is stateless per run and shared.
/// `options.device` may list several presets ("gtx1650,rtx3090") for a
/// heterogeneous backend: one lane per preset, each lane weighted by the
/// cost model's peak issue rate relative to the slowest preset so the
/// scheduler can partition work cost-aware.
class SimulatedGpuBackend final : public AlignBackend {
 public:
  /// Resolves `options.kernel` and `options.device` through the registries;
  /// throws std::invalid_argument (listing valid names) on unknown names or
  /// a malformed preset list.
  explicit SimulatedGpuBackend(const AlignerOptions& options);

  const std::string& name() const override { return name_; }
  int lanes() const override { return static_cast<int>(devices_.size()); }
  /// gpusim::peak_issue_rate of the lane's device / the slowest lane's
  /// (>= 1.0; uniform presets yield exactly 1.0 everywhere).
  double lane_weight(int lane) const override;
  BackendOutput run(const seq::PairBatch& batch, int lane) override;
  /// Functionally runs the engine on the host (kernels apply no zdrop, so
  /// endpoints match the kernels bit-for-bit), then models the phase's time
  /// and memory traffic on the lane's device
  /// (gpusim::estimate_traceback_time; counters land in
  /// WarpCounters::traceback_cells/traceback_bytes).
  TracebackOutput run_traceback(const seq::PairBatch& batch,
                                std::span<const align::AlignmentResult> results,
                                const TracebackSettings& settings, int lane) override;
  /// Functionally runs the forward-only engine on the host (bit-identical to
  /// every other backend), then models the phase's time and traffic on the
  /// lane's device (gpusim::estimate_chaining_time; counters land in
  /// WarpCounters::chaining_updates/chaining_bytes).
  ChainingOutput run_chaining(const seedext::ChainBatch& batch,
                              std::span<const std::size_t> tasks, int lane) override;

  gpusim::Device& device(int lane) { return *devices_[static_cast<std::size_t>(lane)]; }

 private:
  align::ScoringScheme scoring_;
  kernels::KernelPtr kernel_;
  std::vector<std::unique_ptr<gpusim::Device>> devices_;
  std::vector<double> weights_;
  LongReadPolicy longread_;
  std::string name_;
};

/// Builds the backend `options` asks for.
std::unique_ptr<AlignBackend> make_backend(const AlignerOptions& options);

}  // namespace saloba::core
