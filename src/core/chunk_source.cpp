#include "core/chunk_source.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace saloba::core {

ResidentChunkSource::ResidentChunkSource(const seq::PairBatch& batch, std::size_t chunk_pairs)
    : batch_(&batch), chunk_pairs_(chunk_pairs < 1 ? 1 : chunk_pairs) {}

bool ResidentChunkSource::next(seq::PairBatch& chunk) {
  chunk = seq::PairBatch{};
  if (cursor_ >= batch_->size()) return false;
  std::size_t end = std::min(cursor_ + chunk_pairs_, batch_->size());
  for (std::size_t i = cursor_; i < end; ++i) {
    // Resolve the source batch's band channel per pair (band_of applies its
    // default_band too) so streamed chunks stay bit-identical to a one-shot
    // run over the same banded batch.
    chunk.add(batch_->queries[i], batch_->refs[i], batch_->band_of(i));
  }
  if (batch_->has_band_info() && chunk.bands.empty()) {
    // Every pair of this chunk resolved to band 0 (explicit full table).
    // Keep the chunk marked as band-carrying anyway: the source batch's
    // bands must keep winning over any Aligner-level band policy downstream,
    // exactly as they do on the one-shot path.
    chunk.bands.assign(chunk.size(), 0);
  }
  cursor_ = end;
  return true;
}

ReaderPairSource::ReaderPairSource(seq::SequenceChunkReader& queries,
                                   seq::SequenceChunkReader& refs)
    : queries_(&queries), refs_(&refs) {}

bool ReaderPairSource::next(seq::PairBatch& chunk) {
  chunk = seq::PairBatch{};
  // Pull matching record counts regardless of the two readers' chunk sizes.
  std::size_t want = std::min(queries_->chunk_records(), refs_->chunk_records());
  seq::Sequence q, r;
  for (std::size_t i = 0; i < want; ++i) {
    bool have_q = queries_->read_record(q);
    bool have_r = refs_->read_record(r);
    if (have_q != have_r) {
      throw std::runtime_error(
          have_q ? "reference stream ended before query stream (record " +
                       std::to_string(queries_->records_read()) + ")"
                 : "query stream ended before reference stream (record " +
                       std::to_string(refs_->records_read()) + ")");
    }
    if (!have_q) break;
    chunk.add(std::move(q.bases), std::move(r.bases));
  }
  return chunk.size() > 0;
}

}  // namespace saloba::core
