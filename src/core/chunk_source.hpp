// Pull-model sources of PairBatch chunks — the ingest vocabulary shared by
// the single-stream pipeline (core::StreamAligner) and per-session feeds of
// the multi-tenant service layer (core::AlignService::submit_source).
// Extracted from core/stream_aligner.hpp so a chunk source no longer drags
// the whole pipeline definition in with it.
#pragma once

#include <cstddef>

#include "seq/chunk_reader.hpp"
#include "seq/sequence.hpp"

namespace saloba::core {

/// Pull-model source of PairBatch chunks. next() overwrites `chunk` with
/// the next slice of the stream and returns false once exhausted. Called
/// from one thread at a time (the pipeline's reader thread, or the client
/// thread feeding a service session).
class PairChunkSource {
 public:
  virtual ~PairChunkSource() = default;
  virtual bool next(seq::PairBatch& chunk) = 0;
};

/// Slices an already-resident batch into chunks of `chunk_pairs` — the
/// parity harness of the streamed-vs-one-shot tests and the resident
/// baseline of bench/stream_throughput. The batch must outlive the source.
class ResidentChunkSource final : public PairChunkSource {
 public:
  ResidentChunkSource(const seq::PairBatch& batch, std::size_t chunk_pairs);
  bool next(seq::PairBatch& chunk) override;

 private:
  const seq::PairBatch* batch_;
  std::size_t chunk_pairs_;
  std::size_t cursor_ = 0;
};

/// Zips two chunked record readers — record i of `queries` against record i
/// of `refs` — into PairBatch chunks (the two-file shape of an extension
/// workload on disk). Throws std::runtime_error if one stream runs out of
/// records before the other. The readers must outlive the source.
class ReaderPairSource final : public PairChunkSource {
 public:
  ReaderPairSource(seq::SequenceChunkReader& queries, seq::SequenceChunkReader& refs);
  bool next(seq::PairBatch& chunk) override;

 private:
  seq::SequenceChunkReader* queries_;
  seq::SequenceChunkReader* refs_;
};

}  // namespace saloba::core
