#include "core/options.hpp"

#include <cctype>
#include <stdexcept>

namespace saloba::core {

std::vector<std::string> device_preset_list(const std::string& device) {
  std::vector<std::string> presets;
  std::size_t begin = 0;
  for (;;) {
    std::size_t comma = device.find(',', begin);
    std::size_t end = comma == std::string::npos ? device.size() : comma;
    std::size_t first = begin;
    while (first < end && std::isspace(static_cast<unsigned char>(device[first]))) ++first;
    std::size_t last = end;
    while (last > first && std::isspace(static_cast<unsigned char>(device[last - 1]))) --last;
    if (first == last) {
      throw std::invalid_argument("empty device preset in list \"" + device +
                                  "\" (expected e.g. \"gtx1650\" or \"gtx1650,rtx3090\")");
    }
    presets.push_back(device.substr(first, last - first));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return presets;
}

}  // namespace saloba::core
