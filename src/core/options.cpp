#include "core/options.hpp"

// Currently header-only; this TU reserves room for option parsing/validation
// helpers and keeps the build layout uniform (one .cpp per public header).
