#include "core/options.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "align/xdrop_wavefront.hpp"

namespace saloba::core {

std::size_t LongReadPolicy::cells_estimate(std::size_t ref_len, std::size_t query_len) const {
  // Packing heuristic: the wavefront's score-bounded window width depends
  // only on xdrop and the gap-extend penalty; the default scheme's beta is
  // representative enough for load balancing.
  return align::xdrop_cells_estimate(ref_len, query_len, xdrop, align::ScoringScheme{});
}

std::size_t BandPolicy::band_for(std::size_t query_len) const {
  if (!banded()) return 0;
  std::size_t frac = band_frac > 0.0
                         ? static_cast<std::size_t>(
                               std::ceil(band_frac * static_cast<double>(query_len)))
                         : 0;
  // Never 0 for a banded policy: a degenerate band of 0 would read as
  // "full table" downstream (the shared 0-means-unbanded convention).
  return std::max<std::size_t>(1, std::max(band, frac));
}

void materialize_bands(seq::PairBatch& batch, const BandPolicy& policy) {
  if (!policy.banded() || batch.has_band_info()) return;
  batch.bands.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch.bands[i] = policy.band_for(batch.queries[i].size());
  }
}

std::vector<std::string> device_preset_list(const std::string& device) {
  std::vector<std::string> presets;
  std::size_t begin = 0;
  for (;;) {
    std::size_t comma = device.find(',', begin);
    std::size_t end = comma == std::string::npos ? device.size() : comma;
    std::size_t first = begin;
    while (first < end && std::isspace(static_cast<unsigned char>(device[first]))) ++first;
    std::size_t last = end;
    while (last > first && std::isspace(static_cast<unsigned char>(device[last - 1]))) --last;
    if (first == last) {
      throw std::invalid_argument("empty device preset in list \"" + device +
                                  "\" (expected e.g. \"gtx1650\" or \"gtx1650,rtx3090\")");
    }
    presets.push_back(device.substr(first, last - first));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return presets;
}

bool is_host_preset(const std::string& preset) {
  return preset == "cpu" || preset == "simd";
}

}  // namespace saloba::core
