// Configuration of the public saloba::Aligner facade.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "align/scoring.hpp"
#include "gpusim/multi_device.hpp"

namespace saloba::core {

enum class Backend {
  kCpu,        ///< OpenMP batch aligner on the host (real wall-clock time)
  kSimulated,  ///< a kernel on the simulated GPU (simulated kernel time)
};

struct AlignerOptions {
  Backend backend = Backend::kCpu;
  /// Kernel name for the simulated backend (see kernels::kernel_names()).
  std::string kernel = "saloba";
  /// Device preset (see gpusim::device_names()): "gtx1650", "rtx3090",
  /// "p100", "v100" — or a comma-separated list of presets (e.g.
  /// "gtx1650,rtx3090") for a heterogeneous backend with one lane per
  /// preset; the scheduler then partitions work by each lane's relative
  /// throughput (cost-aware weighted LPT).
  std::string device = "rtx3090";
  align::ScoringScheme scoring;
  /// Paper-scale batch size used for footprint checks (0 = actual batch).
  std::size_t nominal_batch_pairs = 0;

  // --- Scheduler (host-side batching) ------------------------------------
  /// Simulated devices the scheduler spreads shards across (Sec. VII-C
  /// multi-GPU dispatch; simulated backend only — the CPU backend always
  /// runs one lane). With 1 device and no shard cap, align() degenerates to
  /// the classic single-launch path. When `device` lists several presets the
  /// lane count comes from the list instead; `devices` must then be 1 (the
  /// default) or match the list length.
  int devices = 1;
  /// Shard size cap in pairs: 0 = one shard per device.
  std::size_t max_shard_pairs = 0;
  /// How pairs are packed into shards; kSorted is the paper's "approximate
  /// sorting" mitigation for inter-device imbalance.
  gpusim::SplitPolicy split_policy = gpusim::SplitPolicy::kSorted;
  /// Worker threads for async shard dispatch (0 = one per device lane).
  std::size_t scheduler_threads = 0;
  /// CPU backend lanes (>= 1): more than one splits the host into
  /// independent lanes the scheduler can overlap, each budgeted
  /// cpu_threads / cpu_lanes OpenMP threads so concurrent shards never
  /// oversubscribe the machine.
  int cpu_lanes = 1;
  /// Total host threads the CPU backend may use (0 = hardware concurrency).
  int cpu_threads = 0;
};

/// Splits an AlignerOptions::device value into its comma-separated preset
/// names, trimming surrounding whitespace. Throws std::invalid_argument on
/// an empty string or an empty list element ("gtx1650,,rtx3090"); names are
/// not resolved here — gpusim::device_by_name validates them.
std::vector<std::string> device_preset_list(const std::string& device);

}  // namespace saloba::core
