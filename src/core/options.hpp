// Configuration of the public saloba::Aligner facade.
#pragma once

#include <cstddef>
#include <string>

#include "align/scoring.hpp"
#include "gpusim/multi_device.hpp"

namespace saloba::core {

enum class Backend {
  kCpu,        ///< OpenMP batch aligner on the host (real wall-clock time)
  kSimulated,  ///< a kernel on the simulated GPU (simulated kernel time)
};

struct AlignerOptions {
  Backend backend = Backend::kCpu;
  /// Kernel name for the simulated backend (see kernels::kernel_names()).
  std::string kernel = "saloba";
  /// Device preset (see gpusim::device_names()): "gtx1650", "rtx3090",
  /// "p100", "v100".
  std::string device = "rtx3090";
  align::ScoringScheme scoring;
  /// Paper-scale batch size used for footprint checks (0 = actual batch).
  std::size_t nominal_batch_pairs = 0;

  // --- Scheduler (host-side batching) ------------------------------------
  /// Simulated devices the scheduler spreads shards across (Sec. VII-C
  /// multi-GPU dispatch; simulated backend only — the CPU backend always
  /// runs one lane). With 1 device and no shard cap, align() degenerates to
  /// the classic single-launch path.
  int devices = 1;
  /// Shard size cap in pairs: 0 = one shard per device.
  std::size_t max_shard_pairs = 0;
  /// How pairs are packed into shards; kSorted is the paper's "approximate
  /// sorting" mitigation for inter-device imbalance.
  gpusim::SplitPolicy split_policy = gpusim::SplitPolicy::kSorted;
  /// Worker threads for async shard dispatch (0 = one per device lane).
  std::size_t scheduler_threads = 0;
  /// CPU backend lanes (>= 1): more than one splits the host into
  /// independent lanes the scheduler can overlap, each budgeted
  /// cpu_threads / cpu_lanes OpenMP threads so concurrent shards never
  /// oversubscribe the machine.
  int cpu_lanes = 1;
  /// Total host threads the CPU backend may use (0 = hardware concurrency).
  int cpu_threads = 0;
};

}  // namespace saloba::core
