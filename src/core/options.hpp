// Configuration of the public saloba::Aligner facade.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "align/scoring.hpp"
#include "gpusim/multi_device.hpp"

namespace saloba::core {

enum class Backend {
  kCpu,        ///< OpenMP batch aligner on the host (real wall-clock time)
  kSimulated,  ///< a kernel on the simulated GPU (simulated kernel time)
};

/// Banded-extension defaults (Sec. VII-B) the Aligner / StreamAligner /
/// BatchScheduler stack materializes into batches. A batch's own per-pair
/// band channel (seq::PairBatch::bands, produced by
/// seedext::make_extension_jobs) always wins; this policy only applies to
/// batches that carry no band information of their own. Z-drop is not part
/// of the policy: it is a backend-construction knob (AlignerOptions::zdrop
/// → CpuBackend), not something the scheduler applies per batch.
struct BandPolicy {
  /// Fixed band floor: only cells with |i - j| <= band are computed
  /// (0 = full table unless band_frac sets one).
  std::size_t band = 0;
  /// Query-length-proportional band: effective = max(band, band_frac·|q|).
  double band_frac = 0.0;

  bool banded() const { return band > 0 || band_frac > 0.0; }
  /// Effective band for a query of `query_len` bases (0 when not banded).
  std::size_t band_for(std::size_t query_len) const;

  bool operator==(const BandPolicy&) const = default;
};

/// Long-read routing policy (the LOGAN-style X-drop regime): pairs whose
/// longer sequence reaches `min_pair_bases` leave the block-DP/banded path
/// for the X-drop wavefront engine (align::xdrop_wavefront) — anti-diagonal
/// execution, X-drop termination, O(N+M) Myers-Miller traceback. Routed
/// pairs ignore band and z-drop: the long-read regime carries its own
/// pruning, and a 100kb pair has no meaningful |i-j| band anyway. The
/// default (0) disables routing, keeping every workload bit-identical to
/// the classic path.
struct LongReadPolicy {
  /// Route a pair when max(|ref|, |query|) >= this; 0 = never.
  std::size_t min_pair_bases = 0;
  /// X-drop threshold for routed pairs (<= 0 disables pruning — exact, but
  /// the forward sweep degenerates to O(N·M) cells on divergent pairs).
  align::Score xdrop = 400;

  bool enabled() const { return min_pair_bases > 0; }
  bool routes(std::size_t ref_len, std::size_t query_len) const {
    return enabled() && (ref_len >= min_pair_bases || query_len >= min_pair_bases);
  }
  /// Scheduler packing load of a routed pair: the wavefront cost model's
  /// forward-cell estimate (align::xdrop_cells_estimate under the default
  /// gap-extend) instead of the nominal n·m table that would absurdly
  /// overweight a long pair. A cost hint only, never a correctness input.
  std::size_t cells_estimate(std::size_t ref_len, std::size_t query_len) const;

  bool operator==(const LongReadPolicy&) const = default;
};

/// Materializes `policy` into the batch's per-pair band channel:
/// bands[i] = policy.band_for(|query i|). No-op when the policy is unbanded
/// or the batch already carries band information of its own (a seedext
/// extension batch's per-job bands always win over the Aligner-level
/// default). After this, every consumer — CPU backend, simulated kernels,
/// shard packing — sees one uniform channel.
void materialize_bands(seq::PairBatch& batch, const BandPolicy& policy);

struct AlignerOptions {
  Backend backend = Backend::kCpu;
  /// Kernel name for the simulated backend (see kernels::kernel_names()).
  std::string kernel = "saloba";
  /// Device preset (see gpusim::device_names()): "gtx1650", "rtx3090",
  /// "p100", "v100" — or a comma-separated list of presets (e.g.
  /// "gtx1650,rtx3090") for a heterogeneous backend with one lane per
  /// preset; the scheduler then partitions work by each lane's relative
  /// throughput (cost-aware weighted LPT).
  ///
  /// With Backend::kCpu the list may instead name *host engines*: "simd"
  /// (the inter-sequence SIMD batch engine, core::SimdCpuBackend) and "cpu"
  /// (the scalar OpenMP aligner). "simd,cpu" builds a mixed host backend —
  /// one lane per entry, SIMD lanes weighted by their measured speedup.
  /// Host engines and GPU presets cannot be mixed in one list; a lone GPU
  /// preset under Backend::kCpu keeps the legacy meaning (plain CpuBackend,
  /// device string ignored).
  std::string device = "rtx3090";
  align::ScoringScheme scoring;
  /// Paper-scale batch size used for footprint checks (0 = actual batch).
  std::size_t nominal_batch_pairs = 0;

  // --- Banded extension (Sec. VII-B) --------------------------------------
  /// Default band for batches without a per-pair band channel: only cells
  /// with |i - j| <= band are computed, out-of-band cells read H = 0,
  /// E/F = -inf (align::smith_waterman_banded semantics). 0 = full table.
  std::size_t band = 0;
  /// Query-proportional band: effective = max(band, band_frac · |query|).
  double band_frac = 0.0;
  /// Z-drop early termination for the CPU backend's banded sweep (<= 0
  /// disables). A pruning heuristic like BWA-MEM's: it can change results,
  /// so the simulated kernels — verified bit-exact against
  /// smith_waterman_banded — do not apply it. Takes effect at backend
  /// construction (make_backend → CpuBackend), not through the scheduler.
  align::Score zdrop = 0;
  /// The band knobs above as a BandPolicy (what the scheduler materializes).
  BandPolicy band_policy() const { return BandPolicy{band, band_frac}; }

  // --- Long-read routing (X-drop wavefront engine) ------------------------
  /// Pairs whose longer sequence has at least this many bases are routed to
  /// the X-drop wavefront engine on every backend (see LongReadPolicy).
  /// 0 disables routing (default) — short-read workloads stay bit-identical
  /// to the classic path.
  std::size_t longread_threshold = 0;
  /// X-drop threshold for routed pairs (LongReadPolicy::xdrop).
  align::Score xdrop = 400;
  /// The long-read knobs above as the policy backends and the scheduler use.
  LongReadPolicy longread_policy() const { return LongReadPolicy{longread_threshold, xdrop}; }

  // --- Traceback phase (two-phase alignment) ------------------------------
  /// When true every align() becomes a two-phase run: the usual score pass
  /// (any backend/kernel, banded or not), then a scheduler-orchestrated
  /// traceback pass that produces one align::TracedAlignment — start
  /// coordinates + CIGAR — per pair (AlignOutput::traced, input order).
  /// Banded pairs trace inside |i - j| <= band, bit-consistently with the
  /// banded score pass; the CPU backend's zdrop is mirrored so endpoints
  /// agree there too.
  bool traceback = false;
  /// Rows between the traceback engine's row-state snapshots (0 = ~sqrt of
  /// the reference length; see align::TracebackParams::checkpoint_rows).
  std::size_t traceback_checkpoint_rows = 0;

  // --- Scheduler (host-side batching) ------------------------------------
  /// Simulated devices the scheduler spreads shards across (Sec. VII-C
  /// multi-GPU dispatch; simulated backend only — the CPU backend always
  /// runs one lane). With 1 device and no shard cap, align() degenerates to
  /// the classic single-launch path. When `device` lists several presets the
  /// lane count comes from the list instead; `devices` must then be 1 (the
  /// default) or match the list length.
  int devices = 1;
  /// Shard size cap in pairs: 0 = one shard per device.
  std::size_t max_shard_pairs = 0;
  /// Chaining-phase shard cap in tasks (BatchScheduler::chain via
  /// batch_chainer()): 0 = one shard per lane.
  std::size_t max_shard_chain_tasks = 0;
  /// How pairs are packed into shards; kSorted is the paper's "approximate
  /// sorting" mitigation for inter-device imbalance.
  gpusim::SplitPolicy split_policy = gpusim::SplitPolicy::kSorted;
  /// Worker threads for async shard dispatch (0 = one per device lane).
  std::size_t scheduler_threads = 0;
  /// CPU backend lanes (>= 1): more than one splits the host into
  /// independent lanes the scheduler can overlap, each budgeted
  /// cpu_threads / cpu_lanes OpenMP threads so concurrent shards never
  /// oversubscribe the machine.
  int cpu_lanes = 1;
  /// Total host threads the CPU backend may use (0 = hardware concurrency).
  int cpu_threads = 0;
};

/// Per-tenant quality-of-service knobs for one core::AlignService session.
struct SessionOptions {
  /// Fair-share weight (> 0): under contention, the continuous batcher
  /// grants a session batch capacity proportional to its weight within its
  /// priority class (weighted round-robin over queued work).
  double weight = 1.0;
  /// Strict priority class: queued work of a higher class is always batched
  /// before any lower class; weights arbitrate only within one class.
  int priority = 0;
  /// Admission cap in queued (undispatched) pairs, 0 = the service-wide
  /// default (ServiceOptions::max_queued_pairs_per_session). submit()
  /// blocks — backpressure, not unbounded memory — while the session
  /// already holds this many pairs.
  std::size_t max_queued_pairs = 0;
};

/// Configuration of the core::AlignService continuous batcher (the
/// multi-tenant front end over the BatchScheduler stack).
struct ServiceOptions {
  /// Target merged-batch size in pairs: the batcher tops a shard up to this
  /// from whichever sessions have queued work before dispatching it. A
  /// partial batch is dispatched rather than held back — latency beats
  /// perfect packing when traffic trickles.
  std::size_t batch_pairs = 256;
  /// Default per-session admission cap in queued pairs (see
  /// SessionOptions::max_queued_pairs).
  std::size_t max_queued_pairs_per_session = 4096;
  /// Global in-flight cap: at most this many merged batches may sit between
  /// the batcher and the align workers. Together with the admission caps
  /// this bounds total resident pairs; the batcher blocks when it is hit.
  std::size_t max_inflight_batches = 4;
  /// Concurrent align workers. Above 1, each worker owns its own backend
  /// replica (built from the same AlignerOptions), exactly like
  /// StreamOptions::align_threads.
  std::size_t align_threads = 1;
  /// Derive SchedulerOptions per merged batch via core::recommend_scheduler
  /// (the StreamAligner default); false falls back to the AlignerOptions
  /// scheduler fields.
  bool autotune_schedule = true;
};

/// Splits an AlignerOptions::device value into its comma-separated preset
/// names, trimming surrounding whitespace. Throws std::invalid_argument on
/// an empty string or an empty list element ("gtx1650,,rtx3090"); names are
/// not resolved here — gpusim::device_by_name validates them.
std::vector<std::string> device_preset_list(const std::string& device);

/// True for device-list entries naming a host engine rather than a GPU
/// preset: "cpu" (scalar OpenMP aligner) and "simd" (SIMD batch engine).
bool is_host_preset(const std::string& preset);

}  // namespace saloba::core
