// Configuration of the public saloba::Aligner facade.
#pragma once

#include <string>

#include "align/scoring.hpp"

namespace saloba::core {

enum class Backend {
  kCpu,        ///< OpenMP batch aligner on the host (real wall-clock time)
  kSimulated,  ///< a kernel on the simulated GPU (simulated kernel time)
};

struct AlignerOptions {
  Backend backend = Backend::kCpu;
  /// Kernel name for the simulated backend (see kernels::kernel_names()).
  std::string kernel = "saloba";
  /// Device preset: "gtx1650", "rtx3090", "p100", "v100".
  std::string device = "rtx3090";
  align::ScoringScheme scoring;
  /// Paper-scale batch size used for footprint checks (0 = actual batch).
  std::size_t nominal_batch_pairs = 0;
};

}  // namespace saloba::core
