// In-order emission of out-of-order completions — the reorder stage shared
// by the streaming merger (core/stream_aligner.cpp) and the per-session
// result channels of core::AlignService. Completions arrive tagged with a
// dense index (chunk index, session segment sequence); push() buffers
// out-of-order arrivals and hands every maximal ready prefix to the sink in
// index order. Extracted from StreamAligner's merger so the streamed ==
// one-shot ordering invariant is locked at the unit level
// (tests/core/ordered_emitter_test.cpp), not just end to end.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <utility>

#include "util/check.hpp"

namespace saloba::core {

/// Not thread-safe: callers serialize push() themselves (the streaming
/// merger runs on one thread; AlignService pushes under the service lock).
/// The sink must not reenter push().
template <typename T>
class OrderedEmitter {
 public:
  using Sink = std::function<void(std::size_t index, T&& item)>;

  explicit OrderedEmitter(Sink sink) : sink_(std::move(sink)) {}

  /// Accepts completion `index` (each index exactly once, indices dense
  /// from 0) and flushes the ready prefix: the sink sees 0, 1, 2, ... with
  /// no gaps, regardless of arrival order.
  void push(std::size_t index, T item) {
    SALOBA_CHECK_MSG(index >= next_ && pending_.find(index) == pending_.end(),
                     "duplicate completion index " << index);
    pending_.emplace(index, std::move(item));
    for (auto it = pending_.find(next_); it != pending_.end();
         it = pending_.find(next_)) {
      T ready = std::move(it->second);
      pending_.erase(it);
      sink_(next_++, std::move(ready));
    }
  }

  /// The next index the sink will see — equivalently, how many items have
  /// been emitted so far.
  std::size_t next_index() const { return next_; }
  /// Out-of-order arrivals currently buffered (0 = fully drained).
  std::size_t pending() const { return pending_.size(); }

 private:
  Sink sink_;
  std::map<std::size_t, T> pending_;
  std::size_t next_ = 0;
};

}  // namespace saloba::core
