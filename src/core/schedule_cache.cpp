#include "core/schedule_cache.hpp"

#include "core/autotune.hpp"
#include "core/workload.hpp"

namespace saloba::core {

bool same_schedule(const SchedulerOptions& a, const SchedulerOptions& b) {
  return a.max_shard_pairs == b.max_shard_pairs && a.policy == b.policy &&
         a.threads == b.threads && a.band == b.band && a.longread == b.longread &&
         a.traceback == b.traceback && a.traceback_settings == b.traceback_settings;
}

void materialize_chunk_bands(seq::PairBatch& chunk, const AlignerOptions& options,
                             const std::optional<SchedulerOptions>& override_schedule) {
  materialize_bands(chunk, override_schedule && override_schedule->band.banded()
                               ? override_schedule->band
                               : options.band_policy());
}

SchedulerOptions resolve_chunk_schedule(const seq::PairBatch& chunk,
                                        const AlignerOptions& options,
                                        const std::optional<SchedulerOptions>& override_schedule,
                                        bool autotune, const AlignBackend& backend) {
  SchedulerOptions wanted;
  if (override_schedule) {
    wanted = *override_schedule;
  } else if (autotune) {
    wanted = recommend_scheduler(stats_of(chunk), lane_weights(backend));
    wanted.threads = options.scheduler_threads;
  } else {
    wanted.max_shard_pairs = options.max_shard_pairs;
    wanted.policy = options.split_policy;
    wanted.threads = options.scheduler_threads;
  }
  // Two-phase runs: AlignerOptions::traceback applies unless an explicit
  // override already turned the phase on itself.
  if (!wanted.traceback && options.traceback) {
    wanted.traceback = true;
    wanted.traceback_settings.checkpoint_rows = options.traceback_checkpoint_rows;
  }
  // Long-read pricing follows the Aligner's routing policy (the backends
  // route regardless of schedule, so the packer must price consistently)
  // unless an explicit override already set one.
  if (!wanted.longread.enabled() && options.longread_policy().enabled()) {
    wanted.longread = options.longread_policy();
  }
  return wanted;
}

}  // namespace saloba::core
