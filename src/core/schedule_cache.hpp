// Per-chunk scheduling plumbing shared by the single-stream pipeline
// (core::StreamAligner workers) and the multi-tenant service batcher
// (core::AlignService): the band-materialization override rule, the
// schedule-resolution rule (explicit override > per-chunk autotune >
// AlignerOptions fields), and a small BatchScheduler cache so chunks whose
// autotuned options oscillate between a handful of configurations never
// rebuild a scheduler (and its thread pool). Extracted from
// stream_aligner.cpp so the two consumers cannot drift apart.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/scheduler.hpp"

namespace saloba::core {

/// True when two SchedulerOptions build interchangeable BatchSchedulers for
/// already-band-materialized batches (every field that shapes execution is
/// compared; max_shard_chain_tasks is irrelevant to the extension phases).
bool same_schedule(const SchedulerOptions& a, const SchedulerOptions& b);

/// The per-chunk band rule: an explicit schedule override may replace the
/// AlignerOptions band policy only by carrying a banded policy of its own;
/// chunks that already have a band channel (a banded source batch) win over
/// either, as everywhere else. Materializes in place.
void materialize_chunk_bands(seq::PairBatch& chunk, const AlignerOptions& options,
                             const std::optional<SchedulerOptions>& override_schedule);

/// The per-chunk schedule rule: `override_schedule` wins outright; otherwise
/// autotune (core::recommend_scheduler over the chunk's stats and the
/// backend's lane weights) or the AlignerOptions scheduler fields. The
/// traceback phase from AlignerOptions applies unless the override already
/// enabled it itself — the same override discipline as the band policy.
SchedulerOptions resolve_chunk_schedule(const seq::PairBatch& chunk,
                                        const AlignerOptions& options,
                                        const std::optional<SchedulerOptions>& override_schedule,
                                        bool autotune, const AlignBackend& backend);

/// A small owning cache of BatchSchedulers keyed by their options. Not
/// thread-safe: each worker thread owns one (schedulers spawn thread pools,
/// which must never be shared across consumer threads).
class ScheduleCache {
 public:
  /// `backend` must outlive the cache; every cached scheduler runs on it.
  explicit ScheduleCache(AlignBackend* backend) : backend_(backend) {}

  /// The cached scheduler for `wanted`, building (and keeping) one on miss.
  BatchScheduler& scheduler(const SchedulerOptions& wanted) {
    for (auto& [opts, sched] : cache_) {
      if (same_schedule(wanted, opts)) return *sched;
    }
    cache_.emplace_back(wanted, std::make_unique<BatchScheduler>(backend_, wanted));
    return *cache_.back().second;
  }

  std::size_t size() const { return cache_.size(); }

 private:
  AlignBackend* backend_;
  std::vector<std::pair<SchedulerOptions, std::unique_ptr<BatchScheduler>>> cache_;
};

}  // namespace saloba::core
