#include "core/scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <future>
#include <utility>

#include "util/check.hpp"

namespace saloba::core {

void accumulate_breakdown(gpusim::TimeBreakdown& into, const gpusim::TimeBreakdown& from) {
  into.compute_ms += from.compute_ms;
  into.dram_ms += from.dram_ms;
  into.launch_ms += from.launch_ms;
  into.init_ms += from.init_ms;
  into.traceback_ms += from.traceback_ms;
  into.chaining_ms += from.chaining_ms;
  into.xdrop_ms += from.xdrop_ms;
  into.total_ms += from.total_ms;
  into.dram_bytes += from.dram_bytes;
  into.sm_imbalance = std::max(into.sm_imbalance, from.sm_imbalance);
}

void finalize_balance(ScheduleReport& report) {
  double sum = 0.0;
  report.busy_lanes = 0;
  for (double ms : report.lane_ms) {
    sum += ms;
    report.busy_lanes += ms > 0.0;
  }
  report.imbalance = !report.lane_ms.empty() && sum > 0.0
                         ? report.makespan_ms / (sum / static_cast<double>(report.lane_ms.size()))
                         : 0.0;
}

namespace {

double gcups_at(std::size_t cells, double time_ms) {
  return time_ms > 0 ? static_cast<double>(cells) / (time_ms * 1e6) : 0.0;
}

}  // namespace

BatchScheduler::BatchScheduler(AlignBackend* backend, SchedulerOptions options)
    : backend_(backend), options_(options) {
  SALOBA_CHECK_MSG(backend_ != nullptr, "scheduler needs a backend");
  SALOBA_CHECK_MSG(backend_->lanes() >= 1, "backend exposes no lanes");
}

util::ThreadPool& BatchScheduler::pool() {
  if (!pool_) {
    std::size_t threads = options_.threads > 0
                              ? options_.threads
                              : static_cast<std::size_t>(backend_->lanes());
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
  return *pool_;
}

AlignOutput BatchScheduler::run_single(const seq::PairBatch& batch) {
  // Fast path: the whole batch in input order on lane 0 — bit-identical to
  // the pre-scheduler Aligner::align, with no batch copy.
  BackendOutput bo = backend_->run(batch, 0);
  AlignOutput out;
  out.results = std::move(bo.results);
  out.cells = bo.cells != 0 ? bo.cells : batch.total_banded_cells();
  out.time_ms = bo.time_ms;
  out.gcups = gcups_at(out.cells, out.time_ms);
  out.kernel_stats = std::move(bo.kernel_stats);
  out.time_breakdown = std::move(bo.time_breakdown);
  out.schedule.shards = 1;
  out.schedule.lanes = backend_->lanes();
  out.schedule.lane_ms.assign(static_cast<std::size_t>(backend_->lanes()), 0.0);
  out.schedule.lane_ms[0] = bo.time_ms;
  out.schedule.lane_weights = lane_weights(*backend_);
  out.schedule.makespan_ms = bo.time_ms;
  finalize_balance(out.schedule);
  if (options_.traceback) {
    TracebackOutput tb =
        backend_->run_traceback(batch, out.results, options_.traceback_settings, 0);
    out.traced = std::move(tb.traced);
    out.traceback_ms = tb.time_ms;
    out.traceback_cells = tb.cells;
    if (tb.kernel_stats) {
      if (!out.kernel_stats) out.kernel_stats.emplace();
      out.kernel_stats->merge(*tb.kernel_stats);
    }
    if (tb.time_breakdown) {
      if (!out.time_breakdown) out.time_breakdown.emplace();
      accumulate_breakdown(*out.time_breakdown, *tb.time_breakdown);
    }
  }
  return out;
}

AlignOutput BatchScheduler::run(const seq::PairBatch& batch) {
  // A banded option set is materialized into a real per-pair band channel
  // up front, so sharding, backends and kernels all see one uniform
  // representation; a batch that already carries bands wins over the policy
  // and is forwarded untouched (no copy on that path, nor when unbanded).
  // The materialization copies the batch once — callers for whom that
  // transient copy matters at scale should attach per-pair bands themselves
  // (seedext jobs do) or stream: StreamAligner materializes each chunk in
  // place inside its residency budget.
  if (options_.band.banded() && !batch.has_band_info() && batch.size() > 0) {
    seq::PairBatch banded = batch;
    materialize_bands(banded, options_.band);
    return run_resolved(banded);
  }
  return run_resolved(batch);
}

AlignOutput BatchScheduler::run_resolved(const seq::PairBatch& batch) {
  if (batch.size() == 0) {
    AlignOutput out;
    out.schedule.lanes = backend_->lanes();
    out.schedule.shards = 0;
    out.schedule.lane_ms.assign(static_cast<std::size_t>(backend_->lanes()), 0.0);
    out.schedule.lane_weights = lane_weights(*backend_);
    return out;
  }

  const int lanes = backend_->lanes();
  if (lanes == 1 && options_.max_shard_pairs == 0) return run_single(batch);

  // Cost-aware dispatch: heterogeneous backends expose non-uniform lane
  // weights and get the weighted-LPT packing; uniform weights fall through
  // to the classic unweighted path bit-for-bit. When the long-read policy
  // routes pairs, those are priced by the wavefront's cell estimate instead
  // of their nominal n·m area, so one 100kb pair no longer eats a lane's
  // whole budget on paper while costing a thin window in practice.
  std::vector<gpusim::Shard> shards;
  bool any_routed = false;
  if (options_.longread.enabled()) {
    for (std::size_t i = 0; i < batch.size() && !any_routed; ++i) {
      any_routed = options_.longread.routes(batch.refs[i].size(), batch.queries[i].size());
    }
  }
  if (any_routed) {
    std::vector<std::uint64_t> loads(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::size_t r = batch.refs[i].size();
      const std::size_t q = batch.queries[i].size();
      loads[i] = options_.longread.routes(r, q) ? options_.longread.cells_estimate(r, q)
                                                : batch.cells_of(i);
    }
    shards = gpusim::make_shards(batch, lane_weights(*backend_), options_.policy,
                                 options_.max_shard_pairs, loads);
  } else {
    shards = gpusim::make_shards(batch, lane_weights(*backend_), options_.policy,
                                 options_.max_shard_pairs);
  }
  if (shards.size() == 1 && shards[0].batch.size() == batch.size() &&
      options_.policy == gpusim::SplitPolicy::kStatic) {
    return run_single(batch);
  }

  // Async dispatch: one future per lane, each draining that lane's shards
  // in order — lanes run concurrently and no pool thread ever blocks
  // waiting for a device another thread holds.
  std::vector<std::vector<std::size_t>> lane_shards(static_cast<std::size_t>(lanes));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    lane_shards[static_cast<std::size_t>(shards[s].lane)].push_back(s);
  }
  std::vector<BackendOutput> outputs(shards.size());
  std::vector<std::future<void>> futures;
  for (const std::vector<std::size_t>& mine : lane_shards) {
    if (mine.empty()) continue;
    futures.push_back(pool().submit([this, &shards, &outputs, &mine] {
      for (std::size_t s : mine) {
        outputs[s] = backend_->run(shards[s].batch, shards[s].lane);
      }
    }));
  }

  // Wait for every in-flight shard before touching the outputs, even when
  // one of them failed; rethrow the first failure afterwards.
  std::exception_ptr failure;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!failure) failure = std::current_exception();
    }
  }
  if (failure) std::rethrow_exception(failure);

  AlignOutput out = merge(batch, shards, outputs);
  if (options_.traceback) traceback_phase(batch, shards, outputs, out);
  return out;
}

void BatchScheduler::traceback_phase(const seq::PairBatch& batch,
                                     const std::vector<gpusim::Shard>& shards,
                                     const std::vector<BackendOutput>& outputs,
                                     AlignOutput& out) {
  // Second wave on the same lane assignment: a shard's traceback needs only
  // that shard's score results, so lanes drain their shards independently
  // again — no barrier beyond the score pass already settled.
  std::vector<std::vector<std::size_t>> lane_shards(
      static_cast<std::size_t>(backend_->lanes()));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    lane_shards[static_cast<std::size_t>(shards[s].lane)].push_back(s);
  }
  std::vector<TracebackOutput> traces(shards.size());
  std::vector<std::future<void>> futures;
  for (const std::vector<std::size_t>& mine : lane_shards) {
    if (mine.empty()) continue;
    futures.push_back(pool().submit([this, &shards, &outputs, &traces, &mine] {
      for (std::size_t s : mine) {
        traces[s] = backend_->run_traceback(shards[s].batch, outputs[s].results,
                                            options_.traceback_settings, shards[s].lane);
      }
    }));
  }
  std::exception_ptr failure;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!failure) failure = std::current_exception();
    }
  }
  if (failure) std::rethrow_exception(failure);

  // Input-order merge, shard-id order for deterministic stats.
  out.traced.resize(batch.size());
  std::vector<double> lane_tb_ms(static_cast<std::size_t>(backend_->lanes()), 0.0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const gpusim::Shard& shard = shards[s];
    TracebackOutput& tb = traces[s];
    SALOBA_CHECK_MSG(tb.traced.size() == shard.indices.size(),
                     "traceback returned " << tb.traced.size() << " traces for a "
                                           << shard.indices.size() << "-pair shard");
    for (std::size_t i = 0; i < shard.indices.size(); ++i) {
      out.traced[shard.indices[i]] = std::move(tb.traced[i]);
    }
    out.traceback_cells += tb.cells;
    lane_tb_ms[static_cast<std::size_t>(shard.lane)] += tb.time_ms;
    if (tb.kernel_stats) {
      if (!out.kernel_stats) out.kernel_stats.emplace();
      out.kernel_stats->merge(*tb.kernel_stats);
    }
    if (tb.time_breakdown) {
      if (!out.time_breakdown) out.time_breakdown.emplace();
      accumulate_breakdown(*out.time_breakdown, *tb.time_breakdown);
    }
  }
  for (double ms : lane_tb_ms) out.traceback_ms = std::max(out.traceback_ms, ms);
}

ChainPhaseOutput BatchScheduler::chain(const seedext::ChainBatch& batch) {
  ChainPhaseOutput out;
  out.chains.resize(batch.tasks());
  out.schedule.lanes = backend_->lanes();
  out.schedule.lane_ms.assign(static_cast<std::size_t>(backend_->lanes()), 0.0);
  out.schedule.lane_weights = lane_weights(*backend_);
  if (batch.empty()) {
    out.schedule.shards = 0;
    return out;
  }

  // Fast path: one lane, no cap — a single synchronous run on lane 0.
  const int lanes = backend_->lanes();
  if (lanes == 1 && options_.max_shard_chain_tasks == 0) {
    std::vector<std::size_t> all(batch.tasks());
    for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
    ChainingOutput co = backend_->run_chaining(batch, all, 0);
    out.chains = std::move(co.chains);
    out.time_ms = co.time_ms;
    out.anchors = co.anchors;
    out.updates = co.updates;
    out.engine_stats = co.engine_stats;
    out.kernel_stats = std::move(co.kernel_stats);
    out.time_breakdown = std::move(co.time_breakdown);
    out.schedule.shards = 1;
    out.schedule.lane_ms[0] = co.time_ms;
    out.schedule.makespan_ms = co.time_ms;
    finalize_balance(out.schedule);
    return out;
  }

  // Weighted-LPT task sharding, then the traceback-wave dispatch shape: one
  // future per lane draining that lane's shards in order.
  auto shards = seedext::make_chain_shards(batch, lane_weights(*backend_),
                                           options_.max_shard_chain_tasks);
  std::vector<std::vector<std::size_t>> lane_shards(static_cast<std::size_t>(lanes));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    lane_shards[static_cast<std::size_t>(shards[s].lane)].push_back(s);
  }
  std::vector<ChainingOutput> outputs(shards.size());
  std::vector<std::future<void>> futures;
  for (const std::vector<std::size_t>& mine : lane_shards) {
    if (mine.empty()) continue;
    futures.push_back(pool().submit([this, &batch, &shards, &outputs, &mine] {
      for (std::size_t s : mine) {
        outputs[s] = backend_->run_chaining(batch, shards[s].tasks, shards[s].lane);
      }
    }));
  }
  std::exception_ptr failure;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!failure) failure = std::current_exception();
    }
  }
  if (failure) std::rethrow_exception(failure);

  // Task-id merge in shard-id order: chains land in their batch slots;
  // stats never depend on thread timing.
  out.schedule.shards = shards.size();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    ChainingOutput& co = outputs[s];
    for (std::size_t t : shards[s].tasks) {
      out.chains[t] = std::move(co.chains[t]);
    }
    out.anchors += co.anchors;
    out.updates += co.updates;
    out.engine_stats.merge(co.engine_stats);
    out.schedule.lane_ms[static_cast<std::size_t>(shards[s].lane)] += co.time_ms;
    if (co.kernel_stats) {
      if (!out.kernel_stats) out.kernel_stats.emplace();
      out.kernel_stats->merge(*co.kernel_stats);
    }
    if (co.time_breakdown) {
      if (!out.time_breakdown) out.time_breakdown.emplace();
      accumulate_breakdown(*out.time_breakdown, *co.time_breakdown);
    }
  }
  for (double ms : out.schedule.lane_ms) {
    out.schedule.makespan_ms = std::max(out.schedule.makespan_ms, ms);
  }
  finalize_balance(out.schedule);
  out.time_ms = out.schedule.makespan_ms;
  return out;
}

AlignOutput BatchScheduler::merge(const seq::PairBatch& batch,
                                  const std::vector<gpusim::Shard>& shards,
                                  std::vector<BackendOutput>& outputs) {
  AlignOutput out;
  out.results.resize(batch.size());
  out.schedule.shards = shards.size();
  out.schedule.lanes = backend_->lanes();
  out.schedule.lane_ms.assign(static_cast<std::size_t>(backend_->lanes()), 0.0);
  out.schedule.lane_weights = lane_weights(*backend_);

  // Deterministic aggregation: shards are merged in shard-id order, not
  // completion order, so stats and times never depend on thread timing.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const gpusim::Shard& shard = shards[s];
    BackendOutput& bo = outputs[s];
    SALOBA_CHECK_MSG(bo.results.size() == shard.indices.size(),
                     "backend returned " << bo.results.size() << " results for a "
                                         << shard.indices.size() << "-pair shard");
    for (std::size_t i = 0; i < shard.indices.size(); ++i) {
      out.results[shard.indices[i]] = bo.results[i];
    }
    out.cells += bo.cells != 0 ? bo.cells : shard.batch.total_banded_cells();
    out.schedule.lane_ms[static_cast<std::size_t>(shard.lane)] += bo.time_ms;
    if (bo.kernel_stats) {
      if (!out.kernel_stats) out.kernel_stats.emplace();
      out.kernel_stats->merge(*bo.kernel_stats);
    }
    if (bo.time_breakdown) {
      if (!out.time_breakdown) out.time_breakdown.emplace();
      accumulate_breakdown(*out.time_breakdown, *bo.time_breakdown);
    }
  }

  for (double ms : out.schedule.lane_ms) {
    out.schedule.makespan_ms = std::max(out.schedule.makespan_ms, ms);
  }
  finalize_balance(out.schedule);

  // Devices run concurrently, so the batch's wall time is the makespan —
  // and gcups is computed once, from the merged output, for both backends.
  // The breakdown stays a per-component sum over every shard (total device
  // time), so its parts remain consistent with its own total_ms; the two
  // coincide on a single lane.
  out.time_ms = out.schedule.makespan_ms;
  out.gcups = out.time_ms > 0 ? static_cast<double>(out.cells) / (out.time_ms * 1e6) : 0.0;
  return out;
}

}  // namespace saloba::core
