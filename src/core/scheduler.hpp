// Host-side batch scheduling: the layer between the Aligner facade and the
// execution backends.
//
//   Aligner → BatchScheduler → AlignBackend → kernels → gpusim
//
// The scheduler shards a PairBatch into length-bucketed sub-batches
// (sorted-by-area packing — the paper's workload-balance goal applied at
// host granularity), dispatches them asynchronously over util::ThreadPool
// futures across the backend's lanes (N simulated devices for the
// multi-GPU path of Sec. VII-C), and merges results back in input order
// with aggregated stats. With one lane and no shard cap it degenerates to
// a single synchronous backend run — bit-identical to the classic path.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "align/alignment_result.hpp"
#include "core/backend.hpp"
#include "gpusim/multi_device.hpp"
#include "util/thread_pool.hpp"

namespace saloba::core {

struct SchedulerOptions {
  /// Shard size cap in pairs: 0 = one shard per backend lane.
  std::size_t max_shard_pairs = 0;
  /// Packing policy (kSorted = the paper's "approximate sorting").
  gpusim::SplitPolicy policy = gpusim::SplitPolicy::kSorted;
  /// Dispatch threads: 0 = one per backend lane.
  std::size_t threads = 0;
  /// Banded-extension defaults (AlignerOptions band/band_frac). For a
  /// batch without its own band channel the scheduler materializes
  /// band.band_for(|query|) into every shard's per-pair bands, so backends
  /// and kernels see one uniform channel; a batch that already carries
  /// bands (seedext extension jobs) is forwarded untouched. Z-drop is a
  /// backend-construction knob (AlignerOptions::zdrop), not a scheduler
  /// default.
  BandPolicy band;
  /// Long-read routing (AlignerOptions longread_threshold/xdrop). Routing
  /// itself happens inside the backends — every lane applies the same
  /// policy, so results do not depend on shard placement. The scheduler
  /// only uses the policy to *price* routed pairs for shard packing: a
  /// routed pair costs LongReadPolicy::cells_estimate (the wavefront's
  /// score-bounded window), not the absurd nominal n·m table.
  LongReadPolicy longread;
  /// Two-phase alignment (AlignerOptions::traceback): after the score pass
  /// settles, a second ThreadPool wave runs the backend's traceback phase
  /// shard by shard on the same lanes and merges one TracedAlignment per
  /// pair back in input order (AlignOutput::traced).
  bool traceback = false;
  TracebackSettings traceback_settings;
  /// Chaining-phase shard cap in tasks: 0 = one shard per backend lane.
  /// Like max_shard_pairs but for BatchScheduler::chain — capped shards let
  /// a fast lane own several like-cost runs (weighted LPT on anchor work).
  std::size_t max_shard_chain_tasks = 0;
};

/// How a batch was executed: shard count and per-lane time accounting.
struct ScheduleReport {
  std::size_t shards = 1;
  int lanes = 1;
  /// Per-lane busy time (sum of that lane's shard times); size == lanes.
  std::vector<double> lane_ms;
  /// Relative lane throughputs the dispatch used (backend lane_weight, in
  /// lane order); empty or uniform = classic unweighted packing.
  std::vector<double> lane_weights;
  double makespan_ms = 0.0;  ///< max over lanes — the reported wall time
  /// Weighted imbalance: makespan / mean lane time over ALL lanes (busy or
  /// idle), 1 = every lane finished together. Lane times already embody the
  /// lane weights (a fast lane spends fewer ms on the same cells), so the
  /// time-domain mean needs no extra weighting — but it must count idle
  /// lanes: averaging only busy ones would report a perfect 1.0 for a run
  /// that stranded all work on one lane of four.
  double imbalance = 0.0;
  int busy_lanes = 0;  ///< lanes with lane_ms > 0
};

/// Component-wise accumulation of simulated time breakdowns — shared by the
/// scheduler's shard merge and the streaming merger (stream_aligner.cpp).
void accumulate_breakdown(gpusim::TimeBreakdown& into, const gpusim::TimeBreakdown& from);

/// Derives `busy_lanes` and `imbalance` from an already-filled `lane_ms` /
/// `makespan_ms` (all-lane normalization, see ScheduleReport::imbalance) —
/// shared by the scheduler's merge and the streaming aggregate
/// (stream_aligner.cpp), so the two call sites cannot drift apart again.
void finalize_balance(ScheduleReport& report);

struct AlignOutput {
  /// One result per input pair, in input order regardless of sharding.
  std::vector<align::AlignmentResult> results;
  /// Wall-clock milliseconds for the CPU backend; simulated kernel
  /// milliseconds (makespan across devices) for the simulated backend.
  double time_ms = 0.0;
  /// DP cells actually computed (BackendOutput::cells summed over shards):
  /// in-band cells for banded pairs, minus any zdrop-pruned rows on the CPU
  /// backend; Σ |q|·|r| for plain full-table runs — the numerator of
  /// `gcups`.
  std::size_t cells = 0;
  double gcups = 0.0;  ///< giga cell-updates per second at `time_ms`
  /// Simulated backend only; aggregated over every shard. The breakdown is
  /// a component-wise sum (total device time, internally consistent with
  /// its own total_ms); under multiple lanes that exceeds the concurrent
  /// wall time reported in `time_ms`.
  std::optional<gpusim::KernelStats> kernel_stats;
  std::optional<gpusim::TimeBreakdown> time_breakdown;
  ScheduleReport schedule;

  // --- Traceback phase (two-phase runs only, SchedulerOptions::traceback) --
  /// One traced alignment (start coords + CIGAR) per input pair, in input
  /// order regardless of sharding; empty for score-only runs. Endpoints
  /// equal `results` under the canonical improves() tie-break.
  std::vector<align::TracedAlignment> traced;
  /// Traceback-phase makespan across lanes — wall-clock for the CPU
  /// backend, modeled phase time for simulated devices. `time_ms` keeps the
  /// score pass only, so the two report the score-vs-traceback cost split.
  double traceback_ms = 0.0;
  /// Engine cells the phase spent (forward sweep + backward replay).
  std::size_t traceback_cells = 0;
};

/// What a scheduler-orchestrated chaining phase produced
/// (BatchScheduler::chain).
struct ChainPhaseOutput {
  /// Chains per batch task id — bit-identical to running the sequential
  /// seedext::chain_seeds oracle on each task, regardless of sharding, lane
  /// placement, thread timing, or ISA.
  std::vector<std::vector<seedext::Chain>> chains;
  /// Phase makespan across lanes: wall-clock for host backends, modeled
  /// chaining time (TimeBreakdown::chaining_ms) for simulated devices.
  double time_ms = 0.0;
  std::size_t anchors = 0;  ///< anchors chained across all tasks
  std::size_t updates = 0;  ///< push + settlement candidates evaluated
  seedext::ChainEngineStats engine_stats;
  /// Simulated backend only; aggregated over every shard.
  std::optional<gpusim::KernelStats> kernel_stats;
  std::optional<gpusim::TimeBreakdown> time_breakdown;
  ScheduleReport schedule;
};

class BatchScheduler {
 public:
  /// `backend` must outlive the scheduler.
  explicit BatchScheduler(AlignBackend* backend, SchedulerOptions options = {});

  const SchedulerOptions& options() const { return options_; }

  /// Aligns every pair of the batch across the backend's lanes. Exceptions
  /// from shard runs (kernels::KernelUnsupportedError,
  /// gpusim::DeviceOomError) propagate after every in-flight shard settled.
  /// A banded SchedulerOptions::band policy is materialized into a per-pair
  /// band channel first (see core::materialize_bands) unless the batch
  /// already carries one.
  AlignOutput run(const seq::PairBatch& batch);

  /// Chaining phase: shards the ChainBatch's tasks across the backend's
  /// lanes by weighted LPT on anchor work (seedext::make_chain_shards, the
  /// extension shards' packing discipline), dispatches one future per lane
  /// over the same ThreadPool, and merges chains back by task id. One lane
  /// and no cap degenerates to a single synchronous run_chaining call.
  ChainPhaseOutput chain(const seedext::ChainBatch& batch);

 private:
  AlignOutput run_resolved(const seq::PairBatch& batch);
  AlignOutput run_single(const seq::PairBatch& batch);
  AlignOutput merge(const seq::PairBatch& batch, const std::vector<gpusim::Shard>& shards,
                    std::vector<BackendOutput>& outputs);
  /// Phase two: per-shard run_traceback over the same lane assignment,
  /// merged into `out.traced` in input order.
  void traceback_phase(const seq::PairBatch& batch, const std::vector<gpusim::Shard>& shards,
                       const std::vector<BackendOutput>& outputs, AlignOutput& out);
  util::ThreadPool& pool();

  AlignBackend* backend_;
  SchedulerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< created on first sharded run
};

}  // namespace saloba::core
