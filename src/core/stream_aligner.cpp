#include "core/stream_aligner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/autotune.hpp"
#include "core/workload.hpp"
#include "util/bounded_queue.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace saloba::core {
namespace {

/// A chunk travelling reader → worker, tagged for order restoration.
struct InChunk {
  std::size_t index = 0;
  std::size_t first_pair = 0;
  seq::PairBatch batch;
};

/// A chunk travelling worker → merger.
struct OutChunk {
  std::size_t index = 0;
  std::size_t first_pair = 0;
  std::size_t pairs = 0;
  AlignOutput output;
};

bool same_schedule(const SchedulerOptions& a, const SchedulerOptions& b) {
  return a.max_shard_pairs == b.max_shard_pairs && a.policy == b.policy &&
         a.threads == b.threads && a.band == b.band && a.traceback == b.traceback &&
         a.traceback_settings == b.traceback_settings;
}

void raise_peak(std::atomic<std::size_t>& peak, std::size_t value) {
  std::size_t cur = peak.load(std::memory_order_relaxed);
  while (value > cur && !peak.compare_exchange_weak(cur, value)) {
  }
}

}  // namespace

ResidentChunkSource::ResidentChunkSource(const seq::PairBatch& batch, std::size_t chunk_pairs)
    : batch_(&batch), chunk_pairs_(chunk_pairs < 1 ? 1 : chunk_pairs) {}

bool ResidentChunkSource::next(seq::PairBatch& chunk) {
  chunk = seq::PairBatch{};
  if (cursor_ >= batch_->size()) return false;
  std::size_t end = std::min(cursor_ + chunk_pairs_, batch_->size());
  for (std::size_t i = cursor_; i < end; ++i) {
    // Resolve the source batch's band channel per pair (band_of applies its
    // default_band too) so streamed chunks stay bit-identical to a one-shot
    // run over the same banded batch.
    chunk.add(batch_->queries[i], batch_->refs[i], batch_->band_of(i));
  }
  if (batch_->has_band_info() && chunk.bands.empty()) {
    // Every pair of this chunk resolved to band 0 (explicit full table).
    // Keep the chunk marked as band-carrying anyway: the source batch's
    // bands must keep winning over any Aligner-level band policy downstream,
    // exactly as they do on the one-shot path.
    chunk.bands.assign(chunk.size(), 0);
  }
  cursor_ = end;
  return true;
}

ReaderPairSource::ReaderPairSource(seq::SequenceChunkReader& queries,
                                   seq::SequenceChunkReader& refs)
    : queries_(&queries), refs_(&refs) {}

bool ReaderPairSource::next(seq::PairBatch& chunk) {
  chunk = seq::PairBatch{};
  // Pull matching record counts regardless of the two readers' chunk sizes.
  std::size_t want = std::min(queries_->chunk_records(), refs_->chunk_records());
  seq::Sequence q, r;
  for (std::size_t i = 0; i < want; ++i) {
    bool have_q = queries_->read_record(q);
    bool have_r = refs_->read_record(r);
    if (have_q != have_r) {
      throw std::runtime_error(
          have_q ? "reference stream ended before query stream (record " +
                       std::to_string(queries_->records_read()) + ")"
                 : "query stream ended before reference stream (record " +
                       std::to_string(refs_->records_read()) + ")");
    }
    if (!have_q) break;
    chunk.add(std::move(q.bases), std::move(r.bases));
  }
  return chunk.size() > 0;
}

StreamAligner::StreamAligner(AlignerOptions options, StreamOptions stream)
    : options_(std::move(options)), stream_(stream) {
  SALOBA_CHECK_MSG(options_.scoring.valid(), "invalid scoring scheme");
  if (stream_.chunk_pairs < 1) stream_.chunk_pairs = 1;
  if (stream_.queue_capacity < 1) stream_.queue_capacity = 1;
  if (stream_.align_threads < 1) stream_.align_threads = 1;
  backend_ = make_backend(options_);
}

StreamAligner::~StreamAligner() = default;
StreamAligner::StreamAligner(StreamAligner&&) noexcept = default;
StreamAligner& StreamAligner::operator=(StreamAligner&&) noexcept = default;

StreamStats StreamAligner::run(PairChunkSource& source, const ChunkSink& sink) {
  util::Timer timer;
  const int lanes = backend_->lanes();
  StreamStats stats;
  stats.lane_ms.assign(static_cast<std::size_t>(lanes), 0.0);

  // One ticket per in-flight chunk: the reader takes one before parsing,
  // the merger returns it after emitting — the pipeline-wide residency
  // bound, independent of where a chunk currently sits.
  const std::size_t budget = stream_.queue_capacity;
  util::BoundedQueue<char> tickets(budget);
  util::BoundedQueue<InChunk> input(budget);
  util::BoundedQueue<OutChunk> output(budget);

  std::mutex failure_mutex;
  std::exception_ptr failure;
  std::atomic<bool> aborted{false};
  auto record_failure = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = e;
    }
    aborted.store(true);
    // Unblock every stage: pending pushes fail, pops drain then stop.
    tickets.close();
    input.close();
    output.close();
  };

  std::atomic<std::size_t> resident_pairs{0};
  std::atomic<std::size_t> resident_chunks{0};
  std::atomic<std::size_t> peak_pairs{0};
  std::atomic<std::size_t> peak_chunks{0};

  std::thread reader([&] {
    try {
      std::size_t index = 0;
      std::size_t first_pair = 0;
      seq::PairBatch chunk;
      for (;;) {
        // Take the residency ticket BEFORE parsing, so even the chunk in
        // the reader's hands counts against the budget — never more than
        // `budget` chunks exist anywhere.
        if (!tickets.push(0)) return;  // pipeline shut down
        bool have = false;
        while (source.next(chunk)) {
          if (chunk.size() > 0) {
            have = true;
            break;
          }
        }
        if (!have) {
          input.close();  // end of stream: workers drain and stop
          return;
        }
        InChunk in;
        in.index = index++;
        in.first_pair = first_pair;
        first_pair += chunk.size();
        in.batch = std::move(chunk);
        chunk = seq::PairBatch{};
        raise_peak(peak_pairs, resident_pairs.fetch_add(in.batch.size()) + in.batch.size());
        raise_peak(peak_chunks, resident_chunks.fetch_add(1) + 1);
        if (!input.push(std::move(in))) return;
      }
    } catch (...) {
      record_failure(std::current_exception());
    }
  });

  // Align workers: a single worker consumes on the primary backend; with
  // several, every worker owns a replica so no lane is ever shared across
  // threads — and CPU replicas split the host thread budget between them
  // (the no-oversubscription promise of CpuBackend, one level up).
  const std::size_t n_workers = stream_.align_threads;
  std::vector<std::unique_ptr<AlignBackend>> replicas;
  std::vector<AlignBackend*> worker_backends;
  if (n_workers == 1) {
    worker_backends.push_back(backend_.get());
  } else {
    AlignerOptions wopts = options_;
    if (options_.backend == Backend::kCpu) {
      int total =
          options_.cpu_threads > 0 ? options_.cpu_threads : util::max_parallel_threads();
      wopts.cpu_threads = std::max(1, total / static_cast<int>(n_workers));
    }
    for (std::size_t w = 0; w < n_workers; ++w) {
      replicas.push_back(make_backend(wopts));
      worker_backends.push_back(replicas.back().get());
    }
  }
  std::atomic<std::size_t> live_workers{n_workers};

  auto worker_loop = [&](AlignBackend* backend) {
    try {
      // A small per-worker scheduler cache: autotuned options oscillate
      // between a handful of configurations (chunk stats hover around the
      // skew threshold, the final partial chunk changes the cap), and
      // rebuilding a BatchScheduler would respawn its thread pool.
      std::vector<std::pair<SchedulerOptions, std::unique_ptr<BatchScheduler>>> cache;
      while (auto in = input.pop()) {
        if (aborted.load()) return;  // don't align chunks nobody will emit
        // Materialize the band policy into the chunk the worker owns (in
        // place — no copy): the autotuner then judges the banded workload
        // it will actually run, and the scheduler forwards the band channel
        // untouched. Chunks that already carry bands (a banded source
        // batch) win over the policy, as everywhere else. An explicit
        // StreamOptions::schedule can override the band policy only by
        // setting one of its own; otherwise the AlignerOptions knobs apply,
        // keeping streamed runs bit-identical to one-shot Aligner::align
        // with the same AlignerOptions.
        materialize_bands(in->batch,
                          stream_.schedule && stream_.schedule->band.banded()
                              ? stream_.schedule->band
                              : options_.band_policy());
        SchedulerOptions wanted;
        if (stream_.schedule) {
          wanted = *stream_.schedule;
        } else if (stream_.autotune_schedule) {
          wanted = recommend_scheduler(stats_of(in->batch), lane_weights(*backend));
          wanted.threads = options_.scheduler_threads;
        } else {
          wanted.max_shard_pairs = options_.max_shard_pairs;
          wanted.policy = options_.split_policy;
          wanted.threads = options_.scheduler_threads;
        }
        // Two-phase runs: AlignerOptions::traceback applies unless an
        // explicit StreamOptions::schedule already turned the phase on
        // itself — the same override rule as the band policy above.
        if (!wanted.traceback && options_.traceback) {
          wanted.traceback = true;
          wanted.traceback_settings.checkpoint_rows = options_.traceback_checkpoint_rows;
        }
        BatchScheduler* sched = nullptr;
        for (auto& [opts, cached] : cache) {
          if (same_schedule(wanted, opts)) {
            sched = cached.get();
            break;
          }
        }
        if (!sched) {
          cache.emplace_back(wanted, std::make_unique<BatchScheduler>(backend, wanted));
          sched = cache.back().second.get();
        }
        OutChunk out;
        out.index = in->index;
        out.first_pair = in->first_pair;
        out.pairs = in->batch.size();
        out.output = sched->run(in->batch);
        if (!output.push(std::move(out))) return;
      }
    } catch (...) {
      record_failure(std::current_exception());
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    AlignBackend* backend = worker_backends[w];
    workers.emplace_back([&, backend] {
      worker_loop(backend);
      if (live_workers.fetch_sub(1) == 1) output.close();  // last one out
    });
  }

  // Merger, on the caller's thread: restore input order, aggregate running
  // stats, hand each chunk to the sink, release its residency ticket.
  try {
    std::map<std::size_t, OutChunk> pending;
    std::size_t next_index = 0;
    while (auto out = output.pop()) {
      pending.emplace(out->index, std::move(*out));
      for (auto it = pending.find(next_index); it != pending.end();
           it = pending.find(++next_index)) {
        OutChunk& ready = it->second;
        ++stats.chunks;
        stats.pairs += ready.pairs;
        stats.cells += ready.output.cells;
        stats.shards += ready.output.schedule.shards;
        stats.align_ms += ready.output.time_ms;
        stats.traceback_ms += ready.output.traceback_ms;
        stats.traceback_cells += ready.output.traceback_cells;
        SALOBA_CHECK_MSG(ready.output.schedule.lane_ms.size() == stats.lane_ms.size(),
                         "chunk ran on a backend with a different lane count");
        for (std::size_t l = 0; l < stats.lane_ms.size(); ++l) {
          stats.lane_ms[l] += ready.output.schedule.lane_ms[l];
        }
        if (sink) sink(ready.index, ready.first_pair, std::move(ready.output));
        resident_pairs.fetch_sub(ready.pairs);
        resident_chunks.fetch_sub(1);
        tickets.pop();  // free one in-flight slot for the reader
        pending.erase(it);
      }
    }
  } catch (...) {
    record_failure(std::current_exception());
  }

  reader.join();
  for (auto& w : workers) w.join();
  if (failure) std::rethrow_exception(failure);

  stats.wall_ms = timer.millis();
  stats.gcups =
      stats.align_ms > 0 ? static_cast<double>(stats.cells) / (stats.align_ms * 1e6) : 0.0;
  stats.peak_resident_pairs = peak_pairs.load();
  stats.peak_resident_chunks = peak_chunks.load();
  return stats;
}

AlignOutput StreamAligner::align_streamed(const seq::PairBatch& batch) {
  ResidentChunkSource source(batch, stream_.chunk_pairs);
  AlignOutput total;
  total.results.resize(batch.size());
  StreamStats stats =
      run(source, [&](std::size_t, std::size_t first_pair, AlignOutput&& chunk) {
        std::copy(chunk.results.begin(), chunk.results.end(),
                  total.results.begin() + static_cast<std::ptrdiff_t>(first_pair));
        if (!chunk.traced.empty()) {
          if (total.traced.size() != total.results.size()) {
            total.traced.resize(total.results.size());
          }
          std::move(chunk.traced.begin(), chunk.traced.end(),
                    total.traced.begin() + static_cast<std::ptrdiff_t>(first_pair));
        }
        if (chunk.kernel_stats) {
          if (!total.kernel_stats) total.kernel_stats.emplace();
          total.kernel_stats->merge(*chunk.kernel_stats);
        }
        if (chunk.time_breakdown) {
          if (!total.time_breakdown) total.time_breakdown.emplace();
          accumulate_breakdown(*total.time_breakdown, *chunk.time_breakdown);
        }
      });

  total.cells = stats.cells;
  total.time_ms = stats.align_ms;
  total.gcups = stats.gcups;
  total.traceback_ms = stats.traceback_ms;
  total.traceback_cells = stats.traceback_cells;
  total.schedule.shards = stats.shards;
  total.schedule.lanes = backend_->lanes();
  total.schedule.lane_ms = stats.lane_ms;
  total.schedule.lane_weights = lane_weights(*backend_);
  total.schedule.makespan_ms = stats.align_ms;
  // Chunks serialize on the stream, so "makespan" here is the summed chunk
  // makespan; imbalance compares the all-lane mean against it (idle lanes
  // count — see ScheduleReport::imbalance).
  finalize_balance(total.schedule);
  return total;
}

}  // namespace saloba::core
