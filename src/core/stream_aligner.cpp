#include "core/stream_aligner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/ordered_emitter.hpp"
#include "core/schedule_cache.hpp"
#include "util/bounded_queue.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace saloba::core {
namespace {

/// A chunk travelling reader → worker, tagged for order restoration.
struct InChunk {
  std::size_t index = 0;
  std::size_t first_pair = 0;
  seq::PairBatch batch;
};

/// A chunk travelling worker → merger.
struct OutChunk {
  std::size_t index = 0;
  std::size_t first_pair = 0;
  std::size_t pairs = 0;
  AlignOutput output;
};

void raise_peak(std::atomic<std::size_t>& peak, std::size_t value) {
  std::size_t cur = peak.load(std::memory_order_relaxed);
  while (value > cur && !peak.compare_exchange_weak(cur, value)) {
  }
}

}  // namespace

StreamAligner::StreamAligner(AlignerOptions options, StreamOptions stream)
    : options_(std::move(options)), stream_(stream) {
  SALOBA_CHECK_MSG(options_.scoring.valid(), "invalid scoring scheme");
  if (stream_.chunk_pairs < 1) stream_.chunk_pairs = 1;
  if (stream_.queue_capacity < 1) stream_.queue_capacity = 1;
  if (stream_.align_threads < 1) stream_.align_threads = 1;
  backend_ = make_backend(options_);
}

StreamAligner::~StreamAligner() = default;
StreamAligner::StreamAligner(StreamAligner&&) noexcept = default;
StreamAligner& StreamAligner::operator=(StreamAligner&&) noexcept = default;

StreamStats StreamAligner::run(PairChunkSource& source, const ChunkSink& sink) {
  util::Timer timer;
  const int lanes = backend_->lanes();
  StreamStats stats;
  stats.lane_ms.assign(static_cast<std::size_t>(lanes), 0.0);

  // One ticket per in-flight chunk: the reader takes one before parsing,
  // the merger returns it after emitting — the pipeline-wide residency
  // bound, independent of where a chunk currently sits.
  const std::size_t budget = stream_.queue_capacity;
  util::BoundedQueue<char> tickets(budget);
  util::BoundedQueue<InChunk> input(budget);
  util::BoundedQueue<OutChunk> output(budget);

  std::mutex failure_mutex;
  std::exception_ptr failure;
  std::atomic<bool> aborted{false};
  auto record_failure = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (!failure) failure = e;
    }
    aborted.store(true);
    // Unblock every stage: pending pushes fail, pops drain then stop.
    tickets.close();
    input.close();
    output.close();
  };

  std::atomic<std::size_t> resident_pairs{0};
  std::atomic<std::size_t> resident_chunks{0};
  std::atomic<std::size_t> peak_pairs{0};
  std::atomic<std::size_t> peak_chunks{0};

  std::thread reader([&] {
    try {
      std::size_t index = 0;
      std::size_t first_pair = 0;
      seq::PairBatch chunk;
      for (;;) {
        // Take the residency ticket BEFORE parsing, so even the chunk in
        // the reader's hands counts against the budget — never more than
        // `budget` chunks exist anywhere.
        if (!tickets.push(0)) return;  // pipeline shut down
        bool have = false;
        while (source.next(chunk)) {
          if (chunk.size() > 0) {
            have = true;
            break;
          }
        }
        if (!have) {
          input.close();  // end of stream: workers drain and stop
          return;
        }
        InChunk in;
        in.index = index++;
        in.first_pair = first_pair;
        first_pair += chunk.size();
        in.batch = std::move(chunk);
        chunk = seq::PairBatch{};
        raise_peak(peak_pairs, resident_pairs.fetch_add(in.batch.size()) + in.batch.size());
        raise_peak(peak_chunks, resident_chunks.fetch_add(1) + 1);
        if (!input.push(std::move(in))) return;
      }
    } catch (...) {
      record_failure(std::current_exception());
    }
  });

  // Align workers: a single worker consumes on the primary backend; with
  // several, every worker owns a replica so no lane is ever shared across
  // threads — and CPU replicas split the host thread budget between them
  // (the no-oversubscription promise of CpuBackend, one level up).
  const std::size_t n_workers = stream_.align_threads;
  std::vector<std::unique_ptr<AlignBackend>> replicas;
  std::vector<AlignBackend*> worker_backends;
  if (n_workers == 1) {
    worker_backends.push_back(backend_.get());
  } else {
    AlignerOptions wopts = options_;
    if (options_.backend == Backend::kCpu) {
      int total =
          options_.cpu_threads > 0 ? options_.cpu_threads : util::max_parallel_threads();
      wopts.cpu_threads = std::max(1, total / static_cast<int>(n_workers));
    }
    for (std::size_t w = 0; w < n_workers; ++w) {
      replicas.push_back(make_backend(wopts));
      worker_backends.push_back(replicas.back().get());
    }
  }
  std::atomic<std::size_t> live_workers{n_workers};

  auto worker_loop = [&](AlignBackend* backend) {
    try {
      // A small per-worker scheduler cache: autotuned options oscillate
      // between a handful of configurations (chunk stats hover around the
      // skew threshold, the final partial chunk changes the cap), and
      // rebuilding a BatchScheduler would respawn its thread pool.
      ScheduleCache cache(backend);
      while (auto in = input.pop()) {
        if (aborted.load()) return;  // don't align chunks nobody will emit
        // Materialize the band policy into the chunk the worker owns (in
        // place — no copy): the autotuner then judges the banded workload
        // it will actually run, and the scheduler forwards the band channel
        // untouched. Chunks that already carry bands (a banded source
        // batch) win over the policy, and an explicit StreamOptions
        // schedule wins over the AlignerOptions knobs, exactly the shared
        // per-chunk rule (core/schedule_cache.hpp) the service batcher
        // applies — keeping streamed runs bit-identical to one-shot
        // Aligner::align with the same AlignerOptions.
        materialize_chunk_bands(in->batch, options_, stream_.schedule);
        SchedulerOptions wanted = resolve_chunk_schedule(
            in->batch, options_, stream_.schedule, stream_.autotune_schedule, *backend);
        OutChunk out;
        out.index = in->index;
        out.first_pair = in->first_pair;
        out.pairs = in->batch.size();
        out.output = cache.scheduler(wanted).run(in->batch);
        if (!output.push(std::move(out))) return;
      }
    } catch (...) {
      record_failure(std::current_exception());
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    AlignBackend* backend = worker_backends[w];
    workers.emplace_back([&, backend] {
      worker_loop(backend);
      if (live_workers.fetch_sub(1) == 1) output.close();  // last one out
    });
  }

  // Merger, on the caller's thread: restore input order (OrderedEmitter),
  // aggregate running stats, hand each chunk to the sink, release its
  // residency ticket.
  try {
    OrderedEmitter<OutChunk> emitter([&](std::size_t, OutChunk&& ready) {
      ++stats.chunks;
      stats.pairs += ready.pairs;
      stats.cells += ready.output.cells;
      stats.shards += ready.output.schedule.shards;
      stats.align_ms += ready.output.time_ms;
      stats.traceback_ms += ready.output.traceback_ms;
      stats.traceback_cells += ready.output.traceback_cells;
      SALOBA_CHECK_MSG(ready.output.schedule.lane_ms.size() == stats.lane_ms.size(),
                       "chunk ran on a backend with a different lane count");
      for (std::size_t l = 0; l < stats.lane_ms.size(); ++l) {
        stats.lane_ms[l] += ready.output.schedule.lane_ms[l];
      }
      if (sink) sink(ready.index, ready.first_pair, std::move(ready.output));
      resident_pairs.fetch_sub(ready.pairs);
      resident_chunks.fetch_sub(1);
      tickets.pop();  // free one in-flight slot for the reader
    });
    while (auto out = output.pop()) {
      std::size_t index = out->index;
      emitter.push(index, std::move(*out));
    }
  } catch (...) {
    record_failure(std::current_exception());
  }

  reader.join();
  for (auto& w : workers) w.join();
  if (failure) std::rethrow_exception(failure);

  stats.wall_ms = timer.millis();
  stats.gcups =
      stats.align_ms > 0 ? static_cast<double>(stats.cells) / (stats.align_ms * 1e6) : 0.0;
  stats.peak_resident_pairs = peak_pairs.load();
  stats.peak_resident_chunks = peak_chunks.load();
  return stats;
}

AlignOutput StreamAligner::align_streamed(const seq::PairBatch& batch) {
  ResidentChunkSource source(batch, stream_.chunk_pairs);
  AlignOutput total;
  total.results.resize(batch.size());
  StreamStats stats =
      run(source, [&](std::size_t, std::size_t first_pair, AlignOutput&& chunk) {
        std::copy(chunk.results.begin(), chunk.results.end(),
                  total.results.begin() + static_cast<std::ptrdiff_t>(first_pair));
        if (!chunk.traced.empty()) {
          if (total.traced.size() != total.results.size()) {
            total.traced.resize(total.results.size());
          }
          std::move(chunk.traced.begin(), chunk.traced.end(),
                    total.traced.begin() + static_cast<std::ptrdiff_t>(first_pair));
        }
        if (chunk.kernel_stats) {
          if (!total.kernel_stats) total.kernel_stats.emplace();
          total.kernel_stats->merge(*chunk.kernel_stats);
        }
        if (chunk.time_breakdown) {
          if (!total.time_breakdown) total.time_breakdown.emplace();
          accumulate_breakdown(*total.time_breakdown, *chunk.time_breakdown);
        }
      });

  total.cells = stats.cells;
  total.time_ms = stats.align_ms;
  total.gcups = stats.gcups;
  total.traceback_ms = stats.traceback_ms;
  total.traceback_cells = stats.traceback_cells;
  total.schedule.shards = stats.shards;
  total.schedule.lanes = backend_->lanes();
  total.schedule.lane_ms = stats.lane_ms;
  total.schedule.lane_weights = lane_weights(*backend_);
  total.schedule.makespan_ms = stats.align_ms;
  // Chunks serialize on the stream, so "makespan" here is the summed chunk
  // makespan; imbalance compares the all-lane mean against it (idle lanes
  // count — see ScheduleReport::imbalance).
  finalize_balance(total.schedule);
  return total;
}

}  // namespace saloba::core
