// Streaming alignment: a bounded producer/consumer pipeline in front of the
// existing BatchScheduler, so a workload never has to be fully resident.
//
//   PairChunkSource ──reader thread──▶ BoundedQueue ──align worker(s)──▶
//   BoundedQueue ──merger (caller thread)──▶ ChunkSink, in input order
//
// Backpressure is a single in-flight-chunk budget (`queue_capacity`): the
// reader takes a ticket before parsing each chunk and the merger returns it
// after emitting, so at most `queue_capacity` chunks — hence at most
// chunk_pairs × queue_capacity pairs — are resident anywhere in the
// pipeline at once. Each chunk runs through a BatchScheduler over the
// configured AlignBackend (CPU or simulated devices), exactly the one-shot
// Aligner::align path, so a streamed run is bit-identical to the resident
// run on the same pairs: same results, same order. Closing any stage early
// (error, sink exception, early shutdown) unblocks every other stage and
// all threads join cleanly.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/chunk_source.hpp"
#include "core/options.hpp"
#include "core/scheduler.hpp"
#include "seq/chunk_reader.hpp"
#include "seq/sequence.hpp"

namespace saloba::core {

struct StreamOptions {
  /// Pairs per chunk for sources this class builds itself (align_streamed).
  std::size_t chunk_pairs = 2048;
  /// In-flight chunk budget across the whole pipeline (reader + workers +
  /// merger); peak resident pairs <= chunk_pairs * queue_capacity.
  std::size_t queue_capacity = 4;
  /// Concurrent scheduler consumers. Above 1, each worker owns its own
  /// backend replica (built from the same AlignerOptions) so simulated
  /// lanes are never shared across threads; results stay bit-identical,
  /// the merger restores input order.
  std::size_t align_threads = 1;
  /// Derive SchedulerOptions per chunk via core::recommend_scheduler
  /// (ignored when `schedule` is set).
  bool autotune_schedule = true;
  /// Explicit scheduling override; unset + !autotune_schedule falls back to
  /// the AlignerOptions scheduler fields, like the one-shot Aligner.
  std::optional<SchedulerOptions> schedule;
};

/// Running aggregates over the whole stream.
struct StreamStats {
  std::size_t chunks = 0;
  std::size_t pairs = 0;
  std::size_t cells = 0;
  std::size_t shards = 0;  ///< scheduler shards summed over chunks
  /// Aligner time serialized across chunks: the sum of per-chunk makespans
  /// (wall-clock for the CPU backend, simulated ms for simulated devices).
  double align_ms = 0.0;
  double gcups = 0.0;  ///< cells / align_ms (0 when nothing aligned)
  /// Traceback-phase time summed over chunks (two-phase runs only); kept
  /// out of align_ms so the stream reports the same phase split as
  /// AlignOutput.
  double traceback_ms = 0.0;
  std::size_t traceback_cells = 0;  ///< engine cells over the whole stream
  /// Host wall-clock for the whole stream, ingest to last emit — the
  /// pipelined figure benches compare against resident runs.
  double wall_ms = 0.0;
  /// Per-lane busy totals summed over chunks; size == backend lanes.
  std::vector<double> lane_ms;
  std::size_t peak_resident_pairs = 0;   ///< max pairs in flight at once
  std::size_t peak_resident_chunks = 0;  ///< max chunks in flight (<= queue_capacity)
};

/// Ordered consumer: called once per chunk, in input order, on the thread
/// that called run(). `first_pair` is the stream index of results[0].
using ChunkSink = std::function<void(std::size_t chunk_index, std::size_t first_pair,
                                     AlignOutput&& output)>;

class StreamAligner {
 public:
  /// Resolves the backend immediately (throws std::invalid_argument on
  /// unknown kernel/device names, like Aligner).
  explicit StreamAligner(AlignerOptions options, StreamOptions stream = {});
  ~StreamAligner();
  StreamAligner(StreamAligner&&) noexcept;
  StreamAligner& operator=(StreamAligner&&) noexcept;

  const AlignerOptions& options() const { return options_; }
  const StreamOptions& stream_options() const { return stream_; }
  const AlignBackend& backend() const { return *backend_; }

  /// Pumps the source through the pipeline; `sink` (may be null) receives
  /// every chunk's AlignOutput in input order. The first exception from any
  /// stage — source, backend, or sink — shuts the pipeline down, joins all
  /// threads, and is rethrown here.
  StreamStats run(PairChunkSource& source, const ChunkSink& sink);

  /// Streams a resident batch and reassembles one AlignOutput with results
  /// in input order — bit-identical to Aligner::align on the same batch
  /// (same results, same order; time_ms is the chunk-serialized align_ms).
  AlignOutput align_streamed(const seq::PairBatch& batch);

 private:
  AlignerOptions options_;
  StreamOptions stream_;
  std::unique_ptr<AlignBackend> backend_;
};

}  // namespace saloba::core
