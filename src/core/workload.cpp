#include "core/workload.hpp"

#include <algorithm>

#include "seedext/pipeline.hpp"
#include "seq/random_genome.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace saloba::core {
namespace {

DatasetBatch jobs_to_dataset(std::vector<seedext::ExtensionJob> jobs, std::size_t reads) {
  DatasetBatch out;
  for (auto& j : jobs) {
    if (j.query.empty() || j.ref.empty()) continue;
    // The pipeline's per-job DP band travels with the pair, so dataset
    // batches exercise the banded path exactly as the mapper would.
    out.batch.add(std::move(j.query), std::move(j.ref), j.band);
  }
  out.stats = stats_of(out.batch);
  out.stats.reads = reads;
  return out;
}

DatasetBatch make_dataset(const std::vector<seq::BaseCode>& genome, std::size_t reads,
                          const seq::ReadProfile& profile, std::uint64_t seed) {
  seq::ReadSimulator sim(genome, profile, seed);
  auto simulated = sim.simulate(reads);
  std::vector<std::vector<seq::BaseCode>> read_seqs;
  read_seqs.reserve(simulated.size());
  for (auto& r : simulated) read_seqs.push_back(std::move(r.read.bases));

  seedext::MapperParams params;
  // Long noisy reads need shorter exact seeds to anchor at all.
  if (profile.error_rate > 0.05) {
    params.k = 13;
    params.seeding.min_seed_len = 14;
  }
  seedext::ReadMapper mapper(genome, params);
  return jobs_to_dataset(mapper.collect_jobs(read_seqs), reads);
}

}  // namespace

DatasetStats stats_of(const seq::PairBatch& batch) {
  DatasetStats stats;
  stats.jobs = batch.size();
  stats.banded = batch.banded();
  std::vector<double> qlens, rlens, cells;
  qlens.reserve(batch.size());
  rlens.reserve(batch.size());
  cells.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    qlens.push_back(static_cast<double>(batch.queries[i].size()));
    rlens.push_back(static_cast<double>(batch.refs[i].size()));
    cells.push_back(static_cast<double>(batch.cells_of(i)));
    stats.max_query_len = std::max(stats.max_query_len, batch.queries[i].size());
    stats.max_ref_len = std::max(stats.max_ref_len, batch.refs[i].size());
  }
  stats.mean_query_len = util::mean(qlens);
  stats.mean_ref_len = util::mean(rlens);
  stats.cv_query_len = util::coeff_variation(qlens);
  stats.cv_ref_len = util::coeff_variation(rlens);
  stats.cv_cells = util::coeff_variation(cells);
  return stats;
}

std::vector<seq::BaseCode> make_genome(std::size_t length, std::uint64_t seed) {
  seq::GenomeParams params;
  params.length = length;
  params.seed = seed;
  return seq::generate_genome(params);
}

seq::PairBatch make_fig6_batch(const std::vector<seq::BaseCode>& genome, std::size_t len,
                               std::size_t pairs, std::uint64_t seed) {
  return seq::make_equal_length_batch(genome, len, pairs, /*divergence=*/0.005, seed);
}

DatasetBatch make_dataset_a(const std::vector<seq::BaseCode>& genome, std::size_t reads,
                            std::uint64_t seed) {
  return make_dataset(genome, reads, seq::ReadProfile::illumina_250bp(), seed);
}

DatasetBatch make_dataset_b(const std::vector<seq::BaseCode>& genome, std::size_t reads,
                            std::uint64_t seed) {
  return make_dataset(genome, reads, seq::ReadProfile::pacbio_2kbp(), seed);
}

}  // namespace saloba::core
