// Workload builders shared by benches, examples and integration tests:
// the Fig. 6 equal-length sweeps and the dataset A'/B' real-world stand-ins
// (Sec. V-B/V-D substitutions; see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "seedext/extension_jobs.hpp"
#include "seq/read_simulator.hpp"
#include "seq/sequence.hpp"

namespace saloba::core {

/// A cached synthetic genome (deterministic in `seed`).
std::vector<seq::BaseCode> make_genome(std::size_t length, std::uint64_t seed = 42);

/// Fig. 6 workload: `pairs` equal-length (query, reference) pairs of `len`
/// bases sampled from the genome with ~0.5% divergence.
seq::PairBatch make_fig6_batch(const std::vector<seq::BaseCode>& genome, std::size_t len,
                               std::size_t pairs, std::uint64_t seed = 1);

struct DatasetStats {
  std::size_t reads = 0;
  std::size_t jobs = 0;
  double mean_query_len = 0.0;
  double mean_ref_len = 0.0;
  double cv_query_len = 0.0;  ///< coefficient of variation — imbalance proxy
  double cv_ref_len = 0.0;
  /// CV of per-pair DP cells, costed through the band channel when one is
  /// present (seq::PairBatch::cells_of) — the imbalance measure the
  /// scheduler actually pays. Banding caps per-pair cost at O(n·band), so a
  /// length-skewed batch can still be cost-uniform once banded.
  double cv_cells = 0.0;
  bool banded = false;  ///< at least one pair carries a band
  std::size_t max_query_len = 0;
  std::size_t max_ref_len = 0;
};

struct DatasetBatch {
  seq::PairBatch batch;
  DatasetStats stats;
};

/// Stats of an already-built batch — the streaming path computes these per
/// chunk to autotune kernel and scheduler configs (`reads` is left 0: a
/// bare batch no longer knows which reads produced it).
DatasetStats stats_of(const seq::PairBatch& batch);

/// Dataset A' (SRR835433 stand-in): 250 bp Illumina-like reads through the
/// seed-and-extend pipeline; returns the extension-job batch.
DatasetBatch make_dataset_a(const std::vector<seq::BaseCode>& genome, std::size_t reads,
                            std::uint64_t seed = 2);

/// Dataset B' (SRP091981 stand-in): ~2 kbp PacBio-like reads.
DatasetBatch make_dataset_b(const std::vector<seq::BaseCode>& genome, std::size_t reads,
                            std::uint64_t seed = 3);

}  // namespace saloba::core
