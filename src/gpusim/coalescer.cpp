#include "gpusim/coalescer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace saloba::gpusim {

CoalesceResult coalesce(std::span<const MemAccess> accesses, int granularity) {
  SALOBA_DCHECK(granularity > 0 && (granularity & (granularity - 1)) == 0);
  CoalesceResult out;
  // A warp has at most 32 lanes and each lane access spans a handful of
  // segments, so a small sorted scratch array beats a hash set.
  std::uint64_t segments[256];
  std::size_t count = 0;
  const std::uint64_t shift_mask = static_cast<std::uint64_t>(granularity) - 1;

  for (const auto& a : accesses) {
    if (a.size == 0) continue;
    out.bytes_useful += a.size;
    std::uint64_t first = a.addr & ~shift_mask;
    std::uint64_t last = (a.addr + a.size - 1) & ~shift_mask;
    for (std::uint64_t seg = first; seg <= last; seg += static_cast<std::uint64_t>(granularity)) {
      if (count < sizeof(segments) / sizeof(segments[0])) {
        segments[count++] = seg;
      }
    }
  }
  std::sort(segments, segments + count);
  std::uint64_t unique = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (i == 0 || segments[i] != segments[i - 1]) ++unique;
  }
  out.transactions = unique;
  out.bytes_moved = unique * static_cast<std::uint64_t>(granularity);
  return out;
}

}  // namespace saloba::gpusim
