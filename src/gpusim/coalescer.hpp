// Global-memory coalescing model.
//
// A warp memory instruction presents one access per active lane. The
// memory subsystem services the union of touched aligned segments of
// `granularity` bytes; each segment is one transaction. This is the standard
// CUDA coalescing rule and exactly the accounting behind paper Table I
// (4 B of useful data can cost a 128 B or 32 B transaction).
#pragma once

#include <cstdint>
#include <span>

namespace saloba::gpusim {

struct MemAccess {
  std::uint64_t addr = 0;
  std::uint32_t size = 0;  ///< bytes; 0 = lane inactive for this instruction
};

struct CoalesceResult {
  std::uint64_t transactions = 0;
  std::uint64_t bytes_moved = 0;   ///< transactions * granularity
  std::uint64_t bytes_useful = 0;  ///< sum of requested sizes
};

/// Coalesces one warp instruction's accesses at the given transaction
/// granularity (must be a power of two).
CoalesceResult coalesce(std::span<const MemAccess> accesses, int granularity);

}  // namespace saloba::gpusim
