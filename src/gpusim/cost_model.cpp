#include "gpusim/cost_model.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/check.hpp"

namespace saloba::gpusim {

std::string TimeBreakdown::summary() const {
  std::ostringstream oss;
  oss << "total=" << total_ms << "ms (compute=" << compute_ms << " dram=" << dram_ms
      << " launch=" << launch_ms << " init=" << init_ms;
  if (traceback_ms > 0.0) oss << " traceback=" << traceback_ms;
  if (chaining_ms > 0.0) oss << " chaining=" << chaining_ms;
  if (xdrop_ms > 0.0) oss << " xdrop=" << xdrop_ms;
  oss << " imbalance=" << sm_imbalance << ")";
  return oss.str();
}

double warp_cycles(const WarpCounters& w, const DeviceSpec& spec, const CostParams& params,
                   int resident_warps_per_sm) {
  double hide = std::clamp(static_cast<double>(resident_warps_per_sm), 1.0,
                           params.latency_hide_saturation);
  double cycles = params.cpi * static_cast<double>(w.instructions);
  cycles += static_cast<double>(w.shared_conflict_cycles);
  cycles += params.sync_cycles * static_cast<double>(w.syncs);
  cycles += static_cast<double>(w.global_requests) * spec.mem_latency_cycles / hide;
  cycles += static_cast<double>(w.global_transactions) * params.transaction_service_cycles;
  return cycles;
}

double peak_issue_rate(const DeviceSpec& spec) {
  return static_cast<double>(spec.sm_count) * static_cast<double>(spec.schedulers_per_sm) *
         spec.core_clock_ghz * 1e9;
}

TimeBreakdown estimate_time(const DeviceSpec& spec, const CostParams& params,
                            const Occupancy& occ, const std::vector<BlockCost>& block_costs,
                            const WarpCounters& totals, std::uint64_t init_bytes) {
  TimeBreakdown out;
  const double clock_hz = spec.core_clock_ghz * 1e9;
  const double bw_bytes_per_s = spec.mem_bandwidth_gbps * 1e9;

  // --- Compute side: greedy longest-processing-time block → SM assignment.
  // Each SM runs its assigned blocks' work at `schedulers_per_sm` issue
  // slots per cycle, but can never finish faster than its longest critical
  // path (a single monster warp cannot be parallelised away).
  if (!block_costs.empty() && spec.sm_count > 0) {
    std::vector<std::size_t> order(block_costs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return block_costs[a].work_cycles > block_costs[b].work_cycles;
    });

    struct SmState {
      double work = 0.0;
      double crit = 0.0;
    };
    std::vector<SmState> sms(static_cast<std::size_t>(spec.sm_count));
    // Min-heap keyed by accumulated work → earliest-available SM.
    auto cmp = [&sms](std::size_t a, std::size_t b) { return sms[a].work > sms[b].work; };
    std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(cmp)> heap(cmp);
    for (std::size_t s = 0; s < sms.size(); ++s) heap.push(s);

    for (std::size_t idx : order) {
      std::size_t s = heap.top();
      heap.pop();
      sms[s].work += block_costs[idx].work_cycles;
      sms[s].crit = std::max(sms[s].crit, block_costs[idx].crit_cycles);
      heap.push(s);
    }

    double max_sm_cycles = 0.0;
    double sum_sm_cycles = 0.0;
    double total_work = 0.0;
    int busy_sms = 0;
    for (const auto& sm : sms) {
      double t = std::max(sm.work / static_cast<double>(spec.schedulers_per_sm), sm.crit);
      max_sm_cycles = std::max(max_sm_cycles, t);
      total_work += sm.work;
      if (t > 0.0) {
        sum_sm_cycles += t;
        ++busy_sms;
      }
    }
    // Pipelined-throughput estimate: the paper times 200 back-to-back calls
    // (Sec. V-B), so block-granularity lumps and per-call warp tails overlap
    // across calls; sustained time is total issue work over device-wide
    // issue bandwidth. The LPT schedule above still yields the
    // single-call imbalance diagnostic.
    out.compute_ms = total_work /
                     (static_cast<double>(spec.sm_count) *
                      static_cast<double>(spec.schedulers_per_sm)) /
                     clock_hz * 1e3;
    double mean = busy_sms > 0 ? sum_sm_cycles / busy_sms : 0.0;
    out.sm_imbalance = mean > 0.0 ? max_sm_cycles / mean : 0.0;
  }

  // --- DRAM side: granularity waste is partly absorbed by L2 sector reuse,
  // and the remaining stream partially hits in L2 (short-reuse boundary
  // rows), so only (1 - l2_hit_rate) of it reaches DRAM.
  SALOBA_CHECK(totals.global_bytes_moved >= totals.global_bytes_useful);
  double waste =
      static_cast<double>(totals.global_bytes_moved - totals.global_bytes_useful);
  out.dram_bytes = (static_cast<double>(totals.global_bytes_useful) +
                    waste * (1.0 - spec.l2_waste_absorb)) *
                   (1.0 - spec.l2_hit_rate);
  out.dram_ms = out.dram_bytes / bw_bytes_per_s * 1e3;

  out.launch_ms = params.launch_overhead_us / 1e3;
  out.init_ms = static_cast<double>(init_bytes) / bw_bytes_per_s * 1e3;
  out.total_ms = std::max(out.compute_ms, out.dram_ms) + out.launch_ms + out.init_ms;
  (void)occ;  // occupancy enters through warp_cycles' hide factor
  return out;
}

TimeBreakdown estimate_traceback_time(const DeviceSpec& spec, const CostParams& params,
                                      std::uint64_t cells, std::uint64_t bytes) {
  TimeBreakdown out;
  if (cells == 0 && bytes == 0) return out;
  // One cell update per lane per issue slot, device-wide: cells / warp_size
  // warp instructions through the sustained issue rate.
  const double instructions =
      static_cast<double>(cells) / static_cast<double>(spec.warp_size);
  const double compute_ms = instructions * params.cpi / peak_issue_rate(spec) * 1e3;
  // The phase's checkpoint/block traffic streams through L2 like the score
  // pass's boundary rows do.
  const double dram_ms = static_cast<double>(bytes) * (1.0 - spec.l2_hit_rate) /
                         (spec.mem_bandwidth_gbps * 1e9) * 1e3;
  out.traceback_ms = std::max(compute_ms, dram_ms) + params.launch_overhead_us / 1e3;
  out.total_ms = out.traceback_ms;
  return out;
}

TimeBreakdown estimate_xdrop_time(const DeviceSpec& spec, const CostParams& params,
                                  std::uint64_t cells, std::uint64_t bytes) {
  TimeBreakdown out;
  if (cells == 0 && bytes == 0) return out;
  // Anti-diagonal cells are independent within a wavefront, so the phase is
  // issue-bound like the score kernels: cells / warp_size warp instructions
  // through the sustained issue rate.
  const double instructions =
      static_cast<double>(cells) / static_cast<double>(spec.warp_size);
  const double compute_ms = instructions * params.cpi / peak_issue_rate(spec) * 1e3;
  // Diagonal buffers stream with unit stride and short reuse distance, so
  // most of the traffic hits in L2 exactly like the chaining SoA columns.
  const double dram_ms = static_cast<double>(bytes) * (1.0 - spec.l2_hit_rate) /
                         (spec.mem_bandwidth_gbps * 1e9) * 1e3;
  out.xdrop_ms = std::max(compute_ms, dram_ms) + params.launch_overhead_us / 1e3;
  out.total_ms = out.xdrop_ms;
  return out;
}

TimeBreakdown estimate_chaining_time(const DeviceSpec& spec, const CostParams& params,
                                     std::uint64_t updates, std::uint64_t bytes) {
  TimeBreakdown out;
  if (updates == 0 && bytes == 0) return out;
  // One push/settlement candidate per lane per issue slot, device-wide —
  // the forward-only recurrence is branch-light and fixed-trip, so issue
  // throughput, not divergence, bounds it.
  const double instructions =
      static_cast<double>(updates) / static_cast<double>(spec.warp_size);
  const double compute_ms = instructions * params.cpi / peak_issue_rate(spec) * 1e3;
  // SoA anchor columns stream with unit stride; score/parent writes hit the
  // same L2 sets as the reads that preceded them.
  const double dram_ms = static_cast<double>(bytes) * (1.0 - spec.l2_hit_rate) /
                         (spec.mem_bandwidth_gbps * 1e9) * 1e3;
  out.chaining_ms = std::max(compute_ms, dram_ms) + params.launch_overhead_us / 1e3;
  out.total_ms = out.chaining_ms;
  return out;
}

}  // namespace saloba::gpusim
