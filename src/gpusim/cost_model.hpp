// Analytic cost model: converts per-warp event counts into simulated kernel
// time on a device.
//
// Model (documented in DESIGN.md §5):
//   per-warp cycles  c_w = cpi·instructions + shared_conflict_cycles
//                        + sync_cycles·syncs
//                        + requests·(mem_latency / hide(occupancy))
//                        + transactions·transaction_service_cycles
//   per-block        work_b = Σ_w c_w          (issue throughput demand)
//                    crit_b = max_w c_w         (critical path)
//   per-SM (greedy LPT assignment of blocks to SMs):
//                    t_sm = max(Σ work_b / schedulers_per_sm, max crit_b)
//   compute time     = max_sm t_sm / clock
//   DRAM time        = dram_bytes / bandwidth, where dram_bytes counts
//                      useful bytes plus (1 − l2_waste_absorb) of the
//                      granularity waste (Table-I accounting corresponds to
//                      l2_waste_absorb = 0)
//   kernel time      = max(compute, DRAM) + launch overhead + init time
//
// The launch-overhead and buffer-init terms reproduce the small-length
// behaviour in Sec. V-C (GASAL2's memory initialisation cost at 64 bp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"
#include "gpusim/occupancy.hpp"

namespace saloba::gpusim {

struct CostParams {
  double cpi = 1.0;
  double sync_cycles = 24.0;
  /// LSU replay cost per extra transaction of an uncoalesced access
  /// (~1 cycle per 32 B sector on Volta-class LSUs).
  double transaction_service_cycles = 0.8;
  /// Latency-hiding saturates once this many warps are resident per SM.
  double latency_hide_saturation = 32.0;
  double launch_overhead_us = 4.0;
};

struct BlockCost {
  double work_cycles = 0.0;  ///< Σ over warps
  double crit_cycles = 0.0;  ///< max over warps
};

struct TimeBreakdown {
  double compute_ms = 0.0;
  double dram_ms = 0.0;
  double launch_ms = 0.0;
  double init_ms = 0.0;
  /// Traceback-phase time of a two-phase run (estimate_traceback_time);
  /// 0 for score-only runs. Included in total_ms.
  double traceback_ms = 0.0;
  /// Chaining-phase time (estimate_chaining_time); 0 for runs without a
  /// batched chaining pass. Included in total_ms, reported separately from
  /// extension compute and traceback.
  double chaining_ms = 0.0;
  /// Long-read X-drop wavefront time (estimate_xdrop_time) for pairs the
  /// long-read policy routed off the block kernels; 0 otherwise. Included in
  /// total_ms, reported separately so the short-read compute accounting is
  /// undisturbed.
  double xdrop_ms = 0.0;
  double total_ms = 0.0;
  /// Diagnostics.
  double sm_imbalance = 0.0;  ///< max SM time / mean SM time (1.0 = balanced)
  double dram_bytes = 0.0;    ///< bytes charged to DRAM after L2 absorption

  std::string summary() const;
};

/// Cycles for one warp under the model (exposed for unit tests).
double warp_cycles(const WarpCounters& w, const DeviceSpec& spec, const CostParams& params,
                   int resident_warps_per_sm);

/// The model's peak sustained issue rate for a device, in warp-instruction
/// issue slots per second — the denominator of the pipelined compute
/// estimate in estimate_time. Absolute units don't matter to callers; the
/// ratio between two devices is the cost model's relative-throughput hint
/// (core::AlignBackend::lane_weight) for heterogeneous-lane scheduling.
double peak_issue_rate(const DeviceSpec& spec);

/// Full kernel-time estimate.
/// `block_costs` must contain one entry per launched block.
/// `init_bytes` models one-time buffer initialisation (memset) overhead.
TimeBreakdown estimate_time(const DeviceSpec& spec, const CostParams& params,
                            const Occupancy& occ, const std::vector<BlockCost>& block_costs,
                            const WarpCounters& totals, std::uint64_t init_bytes = 0);

/// Traceback-phase time estimate for a two-phase run (LOGAN-style second
/// kernel): `cells` is the engine's forward + replay cell count, `bytes` its
/// checkpoint/block memory traffic. Each warp updates one cell per lane per
/// issue slot; DRAM is charged the traffic after L2 absorption; the phase
/// pays one launch. The result lands in TimeBreakdown::traceback_ms (the
/// compute/dram/launch components stay zero so score-pass accounting is
/// undisturbed when breakdowns are accumulated).
TimeBreakdown estimate_traceback_time(const DeviceSpec& spec, const CostParams& params,
                                      std::uint64_t cells, std::uint64_t bytes);

/// Chaining-phase time estimate for the batched forward-only recurrence:
/// `updates` is the engine's push + settlement candidate count (one
/// score-candidate evaluation per lane per issue slot, so updates /
/// warp_size warp instructions through the sustained issue rate), `bytes`
/// its SoA anchor-column and score/parent traffic. The result lands in
/// TimeBreakdown::chaining_ms (compute/dram/launch stay zero so extension
/// accounting is undisturbed when breakdowns are accumulated).
TimeBreakdown estimate_chaining_time(const DeviceSpec& spec, const CostParams& params,
                                     std::uint64_t updates, std::uint64_t bytes);

/// Long-read X-drop wavefront time estimate: `cells` is the engine's forward
/// sweep plus linear-memory traceback recomputation count, `bytes` its
/// diagonal-buffer and base-stream traffic. Anti-diagonal execution is
/// issue-bound like the score kernels (one cell per lane per slot); the
/// result lands in TimeBreakdown::xdrop_ms (compute/dram/launch stay zero so
/// short-read accounting is undisturbed when breakdowns are accumulated).
TimeBreakdown estimate_xdrop_time(const DeviceSpec& spec, const CostParams& params,
                                  std::uint64_t cells, std::uint64_t bytes);

}  // namespace saloba::gpusim
