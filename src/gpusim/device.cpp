#include "gpusim/device.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace saloba::gpusim {

DeviceOomError::DeviceOomError(std::uint64_t requested_, std::uint64_t in_use_,
                               std::uint64_t capacity_)
    : std::runtime_error([&] {
        std::ostringstream oss;
        oss << "device OOM: requested " << requested_ << " B with " << in_use_
            << " B in use of " << capacity_ << " B";
        return oss.str();
      }()),
      requested(requested_),
      in_use(in_use_),
      capacity(capacity_) {}

BlockContext::BlockContext(std::uint32_t block_id, int warps_per_block, const DeviceSpec& spec)
    : block_id_(block_id) {
  warps_.reserve(static_cast<std::size_t>(warps_per_block));
  for (int w = 0; w < warps_per_block; ++w) {
    warps_.emplace_back(spec.warp_size, spec.mem_access_granularity);
  }
}

WarpContext& BlockContext::warp(int w) {
  SALOBA_CHECK_MSG(w >= 0 && w < warps_per_block(), "warp index " << w << " out of range");
  return warps_[static_cast<std::size_t>(w)];
}

void BlockContext::syncthreads() {
  for (auto& w : warps_) w.sync();
}

BlockCost BlockContext::block_cost(const DeviceSpec& spec, const CostParams& params,
                                   int resident_warps_per_sm) const {
  BlockCost cost;
  for (const auto& w : warps_) {
    double c = warp_cycles(w.counters(), spec, params, resident_warps_per_sm);
    cost.work_cycles += c;
    cost.crit_cycles = std::max(cost.crit_cycles, c);
  }
  return cost;
}

void BlockContext::collect(KernelStats& into) const {
  for (const auto& w : warps_) {
    into.totals.merge(w.counters());
    ++into.warps;
  }
  ++into.blocks;
}

Device::Device(DeviceSpec spec, CostParams params)
    : spec_(std::move(spec)), params_(params) {}

DeviceMem Device::alloc(std::uint64_t bytes, const std::string& label) {
  if (in_use_ + bytes > spec_.dram_bytes) {
    (void)label;
    throw DeviceOomError(bytes, in_use_, spec_.dram_bytes);
  }
  constexpr std::uint64_t kAlign = 256;
  DeviceMem mem;
  mem.base = next_base_;
  mem.size = bytes;
  next_base_ += (bytes + kAlign - 1) / kAlign * kAlign;
  in_use_ += bytes;
  return mem;
}

void Device::free(const DeviceMem& mem) {
  SALOBA_CHECK_MSG(in_use_ >= mem.size, "double free or corrupted DeviceMem");
  in_use_ -= mem.size;
}

LaunchResult Device::launch(const LaunchConfig& config, const BlockFn& body) {
  SALOBA_CHECK_MSG(config.blocks > 0, "launch with zero blocks");
  const int warps_per_block = config.threads_per_block / spec_.warp_size;
  SALOBA_CHECK_MSG(warps_per_block > 0 && config.threads_per_block % spec_.warp_size == 0,
                   "threads_per_block must be a positive multiple of " << spec_.warp_size);

  LaunchResult result;
  result.occupancy = compute_occupancy(spec_, config.threads_per_block,
                                       config.shared_bytes_per_block);
  SALOBA_CHECK_MSG(result.occupancy.blocks_per_sm > 0,
                   "kernel '" << config.label << "' cannot be scheduled: occupancy is zero");

  std::vector<BlockCost> block_costs(config.blocks);
  std::vector<KernelStats> block_stats(config.blocks);

  util::parallel_for_indexed(config.blocks, [&](std::size_t b) {
    BlockContext ctx(static_cast<std::uint32_t>(b), warps_per_block, spec_);
    body(ctx);
    block_costs[b] = ctx.block_cost(spec_, params_, result.occupancy.warps_per_sm);
    ctx.collect(block_stats[b]);
  });

  for (const auto& s : block_stats) result.stats.merge(s);
  result.time = estimate_time(spec_, params_, result.occupancy, block_costs,
                              result.stats.totals, config.init_bytes);
  return result;
}

void RunAccumulator::add(const LaunchResult& r) {
  stats.merge(r.stats);
  time.compute_ms += r.time.compute_ms;
  time.dram_ms += r.time.dram_ms;
  time.launch_ms += r.time.launch_ms;
  time.init_ms += r.time.init_ms;
  time.total_ms += r.time.total_ms;
  time.dram_bytes += r.time.dram_bytes;
  time.sm_imbalance = std::max(time.sm_imbalance, r.time.sm_imbalance);
  ++launches;
}

}  // namespace saloba::gpusim
