// The simulated device: memory allocation (with OOM, for the paper's
// "bounded device memory" failures) and kernel launches.
//
// A kernel is a function invoked once per block; it drives each warp of the
// block through WarpContext. Blocks execute host-parallel (OpenMP) — they
// are independent by construction, like real CUDA blocks. Determinism:
// block bodies may only touch block-owned state and their own output slots.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/kernel_stats.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/warp.hpp"

namespace saloba::gpusim {

/// A simulated device allocation: a range of device address space. The
/// simulator is functional-on-host, so no bytes live here — kernels use the
/// base address to derive realistic per-lane addresses for the coalescer.
struct DeviceMem {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
};

class DeviceOomError : public std::runtime_error {
 public:
  DeviceOomError(std::uint64_t requested, std::uint64_t in_use, std::uint64_t capacity);
  std::uint64_t requested, in_use, capacity;
};

/// Per-block view handed to kernel bodies.
class BlockContext {
 public:
  BlockContext(std::uint32_t block_id, int warps_per_block, const DeviceSpec& spec);

  std::uint32_t block_id() const { return block_id_; }
  int warps_per_block() const { return static_cast<int>(warps_.size()); }
  WarpContext& warp(int w);

  /// Block-wide barrier: every warp pays a sync.
  void syncthreads();

  /// Internal: aggregate after the body ran.
  BlockCost block_cost(const DeviceSpec& spec, const CostParams& params,
                       int resident_warps_per_sm) const;
  void collect(KernelStats& into) const;

 private:
  std::uint32_t block_id_;
  std::vector<WarpContext> warps_;
};

struct LaunchConfig {
  std::string label = "kernel";
  std::uint32_t blocks = 1;
  int threads_per_block = 128;
  std::size_t shared_bytes_per_block = 0;
  /// One-time buffer-initialisation bytes charged to this launch (cudaMemset
  /// style); reproduces GASAL2's fixed startup cost.
  std::uint64_t init_bytes = 0;
};

struct LaunchResult {
  KernelStats stats;
  Occupancy occupancy;
  TimeBreakdown time;
};

class Device {
 public:
  explicit Device(DeviceSpec spec, CostParams params = CostParams{});

  const DeviceSpec& spec() const { return spec_; }
  const CostParams& cost_params() const { return params_; }

  /// Throws DeviceOomError when the footprint would exceed device DRAM.
  DeviceMem alloc(std::uint64_t bytes, const std::string& label = "");
  void free(const DeviceMem& mem);
  std::uint64_t bytes_in_use() const { return in_use_; }

  using BlockFn = std::function<void(BlockContext&)>;
  /// Runs the kernel and estimates its time. The body runs once per block,
  /// potentially in host-parallel.
  LaunchResult launch(const LaunchConfig& config, const BlockFn& body);

 private:
  DeviceSpec spec_;
  CostParams params_;
  std::uint64_t next_base_ = 0x10000000ULL;  // arbitrary non-zero device VA base
  std::uint64_t in_use_ = 0;
};

/// Accumulates multiple launches into one logical kernel execution (SW#-like
/// launches one kernel per anti-diagonal partition; its total is the sum).
struct RunAccumulator {
  KernelStats stats;
  TimeBreakdown time;
  std::uint64_t launches = 0;

  void add(const LaunchResult& r);
};

}  // namespace saloba::gpusim
