#include "gpusim/device_registry.hpp"

#include "util/registry.hpp"

namespace saloba::gpusim {
namespace {

using Registry = util::NamedRegistry<DeviceFactory>;

Registry& registry() {
  // Function-local static: safe to use from registrars in other TUs
  // regardless of static-initialization order.
  static Registry instance("device preset");
  return instance;
}

}  // namespace

DeviceRegistrar::DeviceRegistrar(std::string canonical, std::vector<std::string> aliases,
                                 int rank, DeviceFactory factory) {
  registry().add({std::move(canonical), std::move(aliases), std::move(factory), rank});
}

DeviceSpec device_by_name(const std::string& name) { return registry().at(name).factory(); }

std::vector<std::string> device_names() { return registry().names(); }

}  // namespace saloba::gpusim
