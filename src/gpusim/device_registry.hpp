// Name→DeviceSpec preset registry. Presets self-register from
// device_spec.cpp; anything (CLI flags, AlignerOptions.device, tests) that
// needs a device by name resolves it here and gets the full list of valid
// names in the error message on a miss.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"

namespace saloba::gpusim {

using DeviceFactory = std::function<DeviceSpec()>;

/// Resolves a preset ("gtx1650", "rtx3090", "p100", "v100", plus uppercase
/// aliases); throws std::invalid_argument listing the valid names.
DeviceSpec device_by_name(const std::string& name);

/// Canonical preset names in registration rank order.
std::vector<std::string> device_names();

/// Construct one at namespace scope in the preset's TU to register it.
class DeviceRegistrar {
 public:
  DeviceRegistrar(std::string canonical, std::vector<std::string> aliases, int rank,
                  DeviceFactory factory);
};

}  // namespace saloba::gpusim
