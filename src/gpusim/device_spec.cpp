#include "gpusim/device_spec.hpp"

#include "gpusim/device_registry.hpp"

namespace saloba::gpusim {

DeviceSpec DeviceSpec::gtx1650() {
  DeviceSpec d;
  d.name = "GTX1650";
  d.sm_count = 14;
  d.schedulers_per_sm = 4;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm = 64 << 10;
  d.shared_mem_per_block = 48 << 10;
  d.dram_bytes = 4ULL << 30;
  d.mem_bandwidth_gbps = 128.1;
  d.core_clock_ghz = 1.665;
  d.mem_access_granularity = 32;  // Turing inherits Volta's 32 B sectors
  d.mem_latency_cycles = 400.0;
  d.peak_tflops = 2.98;
  d.l2_waste_absorb = 0.92;  // calibrated: GASAL2/SALoBa ratio at 512 bp (Fig. 6a)
  d.l2_hit_rate = 0.35;
  return d;
}

DeviceSpec DeviceSpec::rtx3090() {
  DeviceSpec d;
  d.name = "RTX3090";
  d.sm_count = 82;
  d.schedulers_per_sm = 4;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 16;
  d.shared_mem_per_sm = 100 << 10;
  d.shared_mem_per_block = 99 << 10;
  d.dram_bytes = 24ULL << 30;
  d.mem_bandwidth_gbps = 936.2;
  d.core_clock_ghz = 1.695;
  d.mem_access_granularity = 32;
  d.mem_latency_cycles = 470.0;  // GDDR6X round trip is a bit longer
  d.peak_tflops = 35.58;
  d.l2_waste_absorb = 0.88;  // calibrated: the 6 MB-L2 part absorbs less per SM
  d.l2_hit_rate = 0.2;
  return d;
}

DeviceSpec DeviceSpec::pascal_p100() {
  DeviceSpec d;
  d.name = "P100";
  d.sm_count = 56;
  d.schedulers_per_sm = 2;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 64 << 10;
  d.shared_mem_per_block = 48 << 10;
  d.dram_bytes = 16ULL << 30;
  d.mem_bandwidth_gbps = 732.0;
  d.core_clock_ghz = 1.48;
  d.mem_access_granularity = 128;  // pre-Volta: full 128 B lines (Table I)
  d.mem_latency_cycles = 440.0;
  d.peak_tflops = 9.5;
  d.l2_hit_rate = 0.25;
  return d;
}

DeviceSpec DeviceSpec::volta_v100() {
  DeviceSpec d;
  d.name = "V100";
  d.sm_count = 80;
  d.schedulers_per_sm = 4;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.shared_mem_per_sm = 96 << 10;
  d.shared_mem_per_block = 96 << 10;
  d.dram_bytes = 16ULL << 30;
  d.mem_bandwidth_gbps = 900.0;
  d.core_clock_ghz = 1.53;
  d.mem_access_granularity = 32;  // Volta introduced 32 B sectors
  d.mem_latency_cycles = 425.0;
  d.peak_tflops = 14.1;
  d.l2_hit_rate = 0.25;
  return d;
}

namespace {

// Rank order: the paper's two evaluation systems first, then the Table-I
// granularity-comparison parts.
const DeviceRegistrar reg_gtx1650{"gtx1650", {"GTX1650"}, 10, &DeviceSpec::gtx1650};
const DeviceRegistrar reg_rtx3090{"rtx3090", {"RTX3090"}, 20, &DeviceSpec::rtx3090};
const DeviceRegistrar reg_p100{"p100", {"P100"}, 30, &DeviceSpec::pascal_p100};
const DeviceRegistrar reg_v100{"v100", {"V100"}, 40, &DeviceSpec::volta_v100};

}  // namespace

}  // namespace saloba::gpusim
