// Device descriptions for the GPU execution-model simulator.
//
// Numbers come from vendor whitepapers (paper refs [4],[5],[6],[17]) and the
// paper's own Sec. V-C discussion (GTX1650: 2.98 TFLOPS / 128.1 GB/s,
// RTX3090: 35.58 TFLOPS / 936.2 GB/s). `mem_access_granularity` encodes the
// Table I distinction: 128 B per transaction before Volta, 32 B from Volta on
// (paper ref [32]).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace saloba::gpusim {

struct DeviceSpec {
  std::string name;
  int sm_count = 1;
  int warp_size = 32;
  int schedulers_per_sm = 4;       ///< warp instructions issued per cycle per SM
  int max_threads_per_sm = 1024;
  int max_blocks_per_sm = 16;
  std::size_t shared_mem_per_sm = 64 << 10;
  std::size_t shared_mem_per_block = 48 << 10;
  std::size_t dram_bytes = 4ULL << 30;
  double mem_bandwidth_gbps = 128.0;   ///< GB/s
  double core_clock_ghz = 1.5;
  int mem_access_granularity = 32;     ///< bytes per global-memory transaction
  double mem_latency_cycles = 400.0;   ///< DRAM round-trip seen by a warp
  double peak_tflops = 3.0;

  /// Compute-to-memory ratio the paper uses to explain the GTX1650 vs
  /// RTX3090 technique split (Sec. V-C): FLOPS per byte of DRAM bandwidth.
  double flops_per_byte() const { return peak_tflops * 1e12 / (mem_bandwidth_gbps * 1e9); }

  /// Fraction of granularity-waste traffic absorbed by the L2 before DRAM
  /// (sector reuse across adjacent warp instructions). 0 = Table-I worst
  /// case accounting, 1 = perfect merging. Calibrated per device family.
  double l2_waste_absorb = 0.75;

  /// Plain L2 hit rate applied to the remaining (post-coalescing) traffic —
  /// strip-boundary rows have short reuse distances and partially hit.
  /// Calibrated against the paper's measured GASAL2/SALoBa ratios.
  double l2_hit_rate = 0.0;

  static DeviceSpec gtx1650();   ///< Turing, the paper's "affordable" system
  static DeviceSpec rtx3090();   ///< Ampere, the paper's "high-end" system
  static DeviceSpec pascal_p100();  ///< pre-Volta: 128 B granularity (Table I)
  static DeviceSpec volta_v100();   ///< first 32 B granularity part (Table I)
};

}  // namespace saloba::gpusim
