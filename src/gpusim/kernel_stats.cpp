#include "gpusim/kernel_stats.hpp"

#include <sstream>

namespace saloba::gpusim {

void WarpCounters::merge(const WarpCounters& other) {
  instructions += other.instructions;
  active_lane_ops += other.active_lane_ops;
  global_requests += other.global_requests;
  global_transactions += other.global_transactions;
  global_bytes_moved += other.global_bytes_moved;
  global_bytes_useful += other.global_bytes_useful;
  shared_requests += other.shared_requests;
  shared_conflict_cycles += other.shared_conflict_cycles;
  syncs += other.syncs;
  dp_cells += other.dp_cells;
  dp_cells_skipped += other.dp_cells_skipped;
  traceback_cells += other.traceback_cells;
  traceback_bytes += other.traceback_bytes;
  chaining_updates += other.chaining_updates;
  chaining_bytes += other.chaining_bytes;
  xdrop_cells += other.xdrop_cells;
  xdrop_bytes += other.xdrop_bytes;
}

double WarpCounters::lane_utilization(int warp_size) const {
  if (instructions == 0) return 0.0;
  return static_cast<double>(active_lane_ops) /
         (static_cast<double>(instructions) * static_cast<double>(warp_size));
}

void KernelStats::merge(const KernelStats& other) {
  totals.merge(other.totals);
  warps += other.warps;
  blocks += other.blocks;
}

std::string KernelStats::summary(int warp_size) const {
  std::ostringstream oss;
  oss << "warps=" << warps << " instr=" << totals.instructions
      << " lane_util=" << totals.lane_utilization(warp_size)
      << " gld/gst_req=" << totals.global_requests
      << " trans=" << totals.global_transactions
      << " bytes_moved=" << totals.global_bytes_moved
      << " bytes_useful=" << totals.global_bytes_useful
      << " shm_req=" << totals.shared_requests
      << " shm_conflict_cyc=" << totals.shared_conflict_cycles
      << " cells=" << totals.dp_cells;
  if (totals.dp_cells_skipped > 0) oss << " cells_skipped=" << totals.dp_cells_skipped;
  if (totals.traceback_cells > 0) {
    oss << " tb_cells=" << totals.traceback_cells << " tb_bytes=" << totals.traceback_bytes;
  }
  if (totals.chaining_updates > 0) {
    oss << " chain_updates=" << totals.chaining_updates
        << " chain_bytes=" << totals.chaining_bytes;
  }
  if (totals.xdrop_cells > 0) {
    oss << " xdrop_cells=" << totals.xdrop_cells << " xdrop_bytes=" << totals.xdrop_bytes;
  }
  return oss.str();
}

}  // namespace saloba::gpusim
