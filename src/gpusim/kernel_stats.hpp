// Per-warp event counters and kernel-level aggregates. These are the raw
// measurements the cost model converts into simulated time, and the
// quantities bench/table1_memory reports against the paper's formulas.
#pragma once

#include <cstdint>
#include <string>

namespace saloba::gpusim {

struct WarpCounters {
  std::uint64_t instructions = 0;        ///< warp-wide issue slots (divergence included)
  std::uint64_t active_lane_ops = 0;     ///< Σ active lanes over those slots
  std::uint64_t global_requests = 0;     ///< warp memory instructions to global
  std::uint64_t global_transactions = 0;
  std::uint64_t global_bytes_moved = 0;  ///< includes granularity waste
  std::uint64_t global_bytes_useful = 0;
  std::uint64_t shared_requests = 0;
  std::uint64_t shared_conflict_cycles = 0;  ///< extra cycles from bank conflicts
  std::uint64_t syncs = 0;
  std::uint64_t dp_cells = 0;            ///< functional work: DP cells computed
  /// DP cells pruned by banded extension (Sec. VII-B): cells of the nominal
  /// |q|·|r| table the kernel never evaluated because they fall outside
  /// |i - j| <= band. dp_cells + dp_cells_skipped == the batch's full-table
  /// cell count, so the two together account for the banded saving exactly.
  std::uint64_t dp_cells_skipped = 0;
  /// Traceback phase (two-phase runs only): cells the checkpointed engine
  /// swept forward plus cells re-derived during the backward walk. Kept
  /// separate from dp_cells so the score pass's Table-I accounting is
  /// untouched and benches can report the score-vs-traceback split.
  std::uint64_t traceback_cells = 0;
  /// Traceback phase memory traffic (snapshot writes/restores, block stores,
  /// walk reads) — charged to DRAM by the traceback time model, not to the
  /// score pass's global_bytes counters.
  std::uint64_t traceback_bytes = 0;
  /// Chaining phase (batched forward-only chaining): push + settlement
  /// candidates the engine evaluated. Structural counts — deterministic
  /// across ISAs and thread placements — kept separate from dp_cells so
  /// extension accounting is untouched.
  std::uint64_t chaining_updates = 0;
  /// Chaining phase memory traffic (SoA anchor-column streams plus
  /// score/parent read-modify-writes) — charged to DRAM by the chaining time
  /// model only.
  std::uint64_t chaining_bytes = 0;
  /// Long-read X-drop wavefront cells (forward sweep + linear-memory
  /// traceback recomputation) for pairs the long-read policy routed away
  /// from the block kernels. Kept separate from dp_cells so short-read
  /// Table-I accounting is untouched.
  std::uint64_t xdrop_cells = 0;
  /// Long-read phase memory traffic (diagonal-buffer streams plus the base
  /// streams) — charged to DRAM by the X-drop time model only.
  std::uint64_t xdrop_bytes = 0;

  void merge(const WarpCounters& other);

  /// Mean active lanes per issued instruction, in [0,1] relative to 32.
  double lane_utilization(int warp_size) const;
};

struct KernelStats {
  WarpCounters totals;
  std::uint64_t warps = 0;
  std::uint64_t blocks = 0;

  void merge(const KernelStats& other);
  std::string summary(int warp_size) const;
};

}  // namespace saloba::gpusim
