#include "gpusim/multi_device.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace saloba::gpusim {

std::vector<std::size_t> shard_order(const seq::PairBatch& batch, SplitPolicy policy) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  if (policy == SplitPolicy::kSorted) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return batch.queries[a].size() * batch.refs[a].size() >
             batch.queries[b].size() * batch.refs[b].size();
    });
  }
  return order;
}

std::vector<Shard> make_shards(const seq::PairBatch& batch, int devices, SplitPolicy policy,
                               std::size_t max_shard_pairs) {
  SALOBA_CHECK_MSG(devices >= 1, "need at least one device");
  auto order = shard_order(batch, policy);

  std::vector<Shard> shards;
  if (max_shard_pairs == 0) {
    // One shard per lane, round-robin over the policy order (the classic
    // dispatch_shards partition).
    shards.resize(static_cast<std::size_t>(devices));
    for (int d = 0; d < devices; ++d) shards[static_cast<std::size_t>(d)].lane = d;
    for (std::size_t i = 0; i < order.size(); ++i) {
      Shard& s = shards[i % static_cast<std::size_t>(devices)];
      s.batch.add(batch.queries[order[i]], batch.refs[order[i]]);
      s.indices.push_back(order[i]);
    }
  } else {
    // Length-bucketed packing: contiguous runs of the policy order, then
    // greedy LPT (runs come largest-area-first under kSorted) onto lanes.
    for (std::size_t begin = 0; begin < order.size(); begin += max_shard_pairs) {
      std::size_t end = std::min(begin + max_shard_pairs, order.size());
      Shard s;
      for (std::size_t i = begin; i < end; ++i) {
        s.batch.add(batch.queries[order[i]], batch.refs[order[i]]);
        s.indices.push_back(order[i]);
      }
      shards.push_back(std::move(s));
    }
    std::vector<std::uint64_t> lane_load(static_cast<std::size_t>(devices), 0);
    for (Shard& s : shards) {
      auto least = std::min_element(lane_load.begin(), lane_load.end());
      s.lane = static_cast<int>(least - lane_load.begin());
      *least += s.batch.total_cells();
    }
  }

  std::erase_if(shards, [](const Shard& s) { return s.batch.size() == 0; });
  return shards;
}

ShardResult dispatch_shards(
    const seq::PairBatch& batch, int devices, SplitPolicy policy,
    const std::function<double(const seq::PairBatch&)>& run_shard) {
  auto shards = make_shards(batch, devices, policy, 0);

  ShardResult out;
  out.shard_ms.assign(static_cast<std::size_t>(devices), 0.0);
  for (const Shard& s : shards) {
    double ms = run_shard(s.batch);
    out.shard_ms[static_cast<std::size_t>(s.lane)] = ms;
    out.makespan_ms = std::max(out.makespan_ms, ms);
  }
  double sum = 0.0;
  int busy = 0;
  for (double ms : out.shard_ms) {
    sum += ms;
    busy += ms > 0.0;
  }
  out.imbalance = busy > 0 && sum > 0.0 ? out.makespan_ms / (sum / busy) : 0.0;
  return out;
}

}  // namespace saloba::gpusim
