#include "gpusim/multi_device.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace saloba::gpusim {

namespace {

/// Appends pair `i` of `batch` to shard `s`, preserving any band channel —
/// a banded pair must stay banded inside its shard or the backend would
/// silently compute the full table.
void append_pair(Shard& s, const seq::PairBatch& batch, std::size_t i) {
  if (batch.has_band_info()) {
    s.batch.add(batch.queries[i], batch.refs[i], batch.band_of(i));
  } else {
    s.batch.add(batch.queries[i], batch.refs[i]);
  }
}

/// Shared weighted-LPT body of the two cost-aware make_shards overloads:
/// `order` is the packing order (descending cost under kSorted), `load_of`
/// prices pair i. One shard per lane when uncapped; capped runs of the
/// order otherwise, each assigned whole to the lane with the earliest
/// weighted finish time.
std::vector<Shard> make_shards_weighted(const seq::PairBatch& batch,
                                        const std::vector<double>& lane_weights,
                                        const std::vector<std::size_t>& order,
                                        std::size_t max_shard_pairs,
                                        const std::function<double(std::size_t)>& load_of) {
  const int devices = static_cast<int>(lane_weights.size());

  std::vector<Shard> shards;
  if (max_shard_pairs == 0) {
    // One shard per lane; deal pairs greedily in policy order (descending
    // cost under kSorted — the classic LPT schedule, weight-scaled).
    std::vector<double> ordered_loads;
    ordered_loads.reserve(order.size());
    for (std::size_t i : order) ordered_loads.push_back(load_of(i));
    std::vector<int> lanes = weighted_lpt_lanes(ordered_loads, lane_weights);
    shards.resize(lane_weights.size());
    for (int d = 0; d < devices; ++d) shards[static_cast<std::size_t>(d)].lane = d;
    for (std::size_t n = 0; n < order.size(); ++n) {
      auto lane = static_cast<std::size_t>(lanes[n]);
      append_pair(shards[lane], batch, order[n]);
      shards[lane].indices.push_back(order[n]);
    }
  } else {
    // Capped runs of the policy order, each assigned whole to the lane with
    // the earliest weighted finish time; a lane may own several runs.
    std::vector<double> run_loads;
    for (std::size_t begin = 0; begin < order.size(); begin += max_shard_pairs) {
      std::size_t end = std::min(begin + max_shard_pairs, order.size());
      Shard s;
      double run_load = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        append_pair(s, batch, order[i]);
        s.indices.push_back(order[i]);
        run_load += load_of(order[i]);
      }
      run_loads.push_back(run_load);
      shards.push_back(std::move(s));
    }
    std::vector<int> lanes = weighted_lpt_lanes(run_loads, lane_weights);
    for (std::size_t n = 0; n < shards.size(); ++n) shards[n].lane = lanes[n];
  }

  std::erase_if(shards, [](const Shard& s) { return s.batch.size() == 0; });
  return shards;
}

}  // namespace

std::vector<int> weighted_lpt_lanes(std::span<const double> loads,
                                    std::span<const double> lane_weights) {
  SALOBA_CHECK_MSG(!lane_weights.empty(), "need at least one lane weight");
  for (double w : lane_weights) {
    SALOBA_CHECK_MSG(w > 0.0, "lane weights must be positive, got " << w);
  }
  std::vector<double> lane_load(lane_weights.size(), 0.0);
  std::vector<int> out;
  out.reserve(loads.size());
  for (double load : loads) {
    // Put the next unit of work on the lane that would finish it earliest,
    // i.e. minimise (load + work) / weight; ties go to the lowest lane.
    std::size_t best = 0;
    double best_finish = (lane_load[0] + load) / lane_weights[0];
    for (std::size_t l = 1; l < lane_load.size(); ++l) {
      double finish = (lane_load[l] + load) / lane_weights[l];
      if (finish < best_finish) {
        best_finish = finish;
        best = l;
      }
    }
    lane_load[best] += load;
    out.push_back(static_cast<int>(best));
  }
  return out;
}

std::vector<std::size_t> shard_order(const seq::PairBatch& batch, SplitPolicy policy) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  if (policy == SplitPolicy::kSorted) {
    // Sort by the DP cost a lane will actually pay: banded pairs cost their
    // in-band O(n·band) cells, not the full n·m area (identical to the
    // classic area sort when no pair is banded).
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return batch.cells_of(a) > batch.cells_of(b);
    });
  }
  return order;
}

std::vector<Shard> make_shards(const seq::PairBatch& batch, int devices, SplitPolicy policy,
                               std::size_t max_shard_pairs) {
  SALOBA_CHECK_MSG(devices >= 1, "need at least one device");
  auto order = shard_order(batch, policy);

  std::vector<Shard> shards;
  if (max_shard_pairs == 0) {
    // One shard per lane, dealt over the policy order (the classic
    // dispatch_shards partition). Under kSorted the order is descending by
    // area, so a plain round-robin deal hands lane 0 the largest pair of
    // every stripe; snake (boustrophedon) order alternates the deal
    // direction per stripe and cancels that systematic skew.
    const auto lanes = static_cast<std::size_t>(devices);
    shards.resize(lanes);
    for (int d = 0; d < devices; ++d) shards[static_cast<std::size_t>(d)].lane = d;
    for (std::size_t i = 0; i < order.size(); ++i) {
      std::size_t pos = i % lanes;
      if (policy == SplitPolicy::kSorted && (i / lanes) % 2 == 1) pos = lanes - 1 - pos;
      Shard& s = shards[pos];
      append_pair(s, batch, order[i]);
      s.indices.push_back(order[i]);
    }
  } else {
    // Length-bucketed packing: contiguous runs of the policy order, then
    // greedy LPT (runs come largest-area-first under kSorted) onto lanes.
    for (std::size_t begin = 0; begin < order.size(); begin += max_shard_pairs) {
      std::size_t end = std::min(begin + max_shard_pairs, order.size());
      Shard s;
      for (std::size_t i = begin; i < end; ++i) {
        append_pair(s, batch, order[i]);
        s.indices.push_back(order[i]);
      }
      shards.push_back(std::move(s));
    }
    std::vector<std::uint64_t> lane_load(static_cast<std::size_t>(devices), 0);
    for (Shard& s : shards) {
      auto least = std::min_element(lane_load.begin(), lane_load.end());
      s.lane = static_cast<int>(least - lane_load.begin());
      *least += s.batch.total_banded_cells();
    }
  }

  std::erase_if(shards, [](const Shard& s) { return s.batch.size() == 0; });
  return shards;
}

std::vector<Shard> make_shards(const seq::PairBatch& batch,
                               const std::vector<double>& lane_weights, SplitPolicy policy,
                               std::size_t max_shard_pairs) {
  SALOBA_CHECK_MSG(!lane_weights.empty(), "need at least one lane weight");
  for (double w : lane_weights) {
    SALOBA_CHECK_MSG(w > 0.0, "lane weights must be positive, got " << w);
  }
  const int devices = static_cast<int>(lane_weights.size());
  const bool uniform = std::all_of(lane_weights.begin(), lane_weights.end(),
                                   [&](double w) { return w == lane_weights.front(); });
  if (uniform) return make_shards(batch, devices, policy, max_shard_pairs);

  auto order = shard_order(batch, policy);
  return make_shards_weighted(
      batch, lane_weights, order, max_shard_pairs,
      [&](std::size_t i) { return static_cast<double>(batch.cells_of(i)); });
}

std::vector<Shard> make_shards(const seq::PairBatch& batch,
                               const std::vector<double>& lane_weights, SplitPolicy policy,
                               std::size_t max_shard_pairs,
                               std::span<const std::uint64_t> loads) {
  SALOBA_CHECK_MSG(!lane_weights.empty(), "need at least one lane weight");
  for (double w : lane_weights) {
    SALOBA_CHECK_MSG(w > 0.0, "lane weights must be positive, got " << w);
  }
  SALOBA_CHECK_MSG(loads.size() == batch.size(),
                   "got " << loads.size() << " pair loads for a " << batch.size()
                          << "-pair batch");
  // No uniform-weight shortcut: the unweighted deal would re-derive costs
  // from cells_of and unlearn the explicit loads. Weighted LPT with uniform
  // weights is plain LPT, which is exactly what the loads call for.
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  if (policy == SplitPolicy::kSorted) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return loads[a] > loads[b]; });
  }
  return make_shards_weighted(
      batch, lane_weights, order, max_shard_pairs,
      [&](std::size_t i) { return static_cast<double>(loads[i]); });
}

ShardResult dispatch_shards(
    const seq::PairBatch& batch, int devices, SplitPolicy policy,
    const std::function<double(const seq::PairBatch&)>& run_shard,
    std::size_t max_shard_pairs) {
  auto shards = make_shards(batch, devices, policy, max_shard_pairs);

  ShardResult out;
  out.shard_ms.assign(static_cast<std::size_t>(devices), 0.0);
  for (const Shard& s : shards) {
    // Accumulate: with a shard cap a device owns several shards, and its
    // reported time is the sum, not the last shard to run on it.
    out.shard_ms[static_cast<std::size_t>(s.lane)] += run_shard(s.batch);
  }
  double sum = 0.0;
  for (double ms : out.shard_ms) {
    out.makespan_ms = std::max(out.makespan_ms, ms);
    sum += ms;
    out.busy_devices += ms > 0.0;
  }
  // Normalize by every device, busy or not: idle devices are imbalance, and
  // averaging only busy ones would let a run that strands all work on one
  // of N devices report a perfect 1.0.
  out.imbalance =
      devices > 0 && sum > 0.0 ? out.makespan_ms / (sum / static_cast<double>(devices)) : 0.0;
  return out;
}

}  // namespace saloba::gpusim
