#include "gpusim/multi_device.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace saloba::gpusim {

std::vector<std::size_t> shard_order(const seq::PairBatch& batch, SplitPolicy policy) {
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  if (policy == SplitPolicy::kSorted) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return batch.queries[a].size() * batch.refs[a].size() >
             batch.queries[b].size() * batch.refs[b].size();
    });
  }
  return order;
}

ShardResult dispatch_shards(
    const seq::PairBatch& batch, int devices, SplitPolicy policy,
    const std::function<double(const seq::PairBatch&)>& run_shard) {
  SALOBA_CHECK_MSG(devices >= 1, "need at least one device");
  auto order = shard_order(batch, policy);

  ShardResult out;
  out.shard_ms.reserve(static_cast<std::size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    seq::PairBatch shard;
    for (std::size_t i = static_cast<std::size_t>(d); i < order.size();
         i += static_cast<std::size_t>(devices)) {
      shard.add(batch.queries[order[i]], batch.refs[order[i]]);
    }
    double ms = shard.size() > 0 ? run_shard(shard) : 0.0;
    out.shard_ms.push_back(ms);
    out.makespan_ms = std::max(out.makespan_ms, ms);
  }
  double sum = 0.0;
  int busy = 0;
  for (double ms : out.shard_ms) {
    sum += ms;
    busy += ms > 0.0;
  }
  out.imbalance = busy > 0 && sum > 0.0 ? out.makespan_ms / (sum / busy) : 0.0;
  return out;
}

}  // namespace saloba::gpusim
