// Multi-GPU dispatch (paper Sec. VII-C): split a batch across several
// simulated devices and report the makespan. Policies implement the paper's
// discussion — naive static splitting vs. approximate sorting to narrow the
// inter-device imbalance.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "seq/sequence.hpp"

namespace saloba::gpusim {

enum class SplitPolicy {
  kStatic,  ///< round-robin in input order (the paper's "splitting into equal numbers")
  kSorted,  ///< round-robin after sorting by DP area, descending ("approximate sorting")
};

struct ShardResult {
  std::vector<double> shard_ms;  ///< per-device simulated time
  double makespan_ms = 0.0;      ///< max over devices
  double imbalance = 0.0;        ///< makespan / mean shard time
};

/// Splits `batch` into `devices` shards by `policy` and runs `run_shard`
/// (typically a kernel invocation on a fresh Device) on each; aggregates
/// the simulated times.
ShardResult dispatch_shards(
    const seq::PairBatch& batch, int devices, SplitPolicy policy,
    const std::function<double(const seq::PairBatch&)>& run_shard);

/// The shard index sequence a policy produces (exposed for tests).
std::vector<std::size_t> shard_order(const seq::PairBatch& batch, SplitPolicy policy);

/// One sub-batch of a sharded dispatch, with enough bookkeeping to merge
/// results back into input order.
struct Shard {
  seq::PairBatch batch;
  std::vector<std::size_t> indices;  ///< original position of each pair
  int lane = 0;                      ///< device the shard is assigned to
};

/// Shards `batch` for `devices` lanes under `policy`.
///
/// * `max_shard_pairs == 0`: one shard per lane, dealt round-robin over the
///   policy order — exactly the partition dispatch_shards runs.
/// * `max_shard_pairs > 0`: the policy order is cut into contiguous runs of
///   at most `max_shard_pairs` pairs (under kSorted each run holds
///   like-sized pairs — length-bucketed packing that minimises intra-launch
///   imbalance, the paper's balance goal at host granularity), and runs are
///   assigned to lanes by greedy LPT on DP area.
///
/// Every pair lands in exactly one shard; empty shards are dropped.
std::vector<Shard> make_shards(const seq::PairBatch& batch, int devices, SplitPolicy policy,
                               std::size_t max_shard_pairs = 0);

}  // namespace saloba::gpusim
