// Multi-GPU dispatch (paper Sec. VII-C): split a batch across several
// simulated devices and report the makespan. Policies implement the paper's
// discussion — naive static splitting vs. approximate sorting to narrow the
// inter-device imbalance.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "seq/sequence.hpp"

namespace saloba::gpusim {

enum class SplitPolicy {
  kStatic,  ///< round-robin in input order (the paper's "splitting into equal numbers")
  kSorted,  ///< round-robin after sorting by DP area, descending ("approximate sorting")
};

struct ShardResult {
  std::vector<double> shard_ms;  ///< per-device simulated time
  double makespan_ms = 0.0;      ///< max over devices
  double imbalance = 0.0;        ///< makespan / mean shard time
};

/// Splits `batch` into `devices` shards by `policy` and runs `run_shard`
/// (typically a kernel invocation on a fresh Device) on each; aggregates
/// the simulated times.
ShardResult dispatch_shards(
    const seq::PairBatch& batch, int devices, SplitPolicy policy,
    const std::function<double(const seq::PairBatch&)>& run_shard);

/// The shard index sequence a policy produces (exposed for tests).
std::vector<std::size_t> shard_order(const seq::PairBatch& batch, SplitPolicy policy);

}  // namespace saloba::gpusim
