// Multi-GPU dispatch (paper Sec. VII-C): split a batch across several
// simulated devices and report the makespan. Policies implement the paper's
// discussion — naive static splitting vs. approximate sorting to narrow the
// inter-device imbalance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "seq/sequence.hpp"

namespace saloba::gpusim {

enum class SplitPolicy {
  kStatic,  ///< round-robin in input order (the paper's "splitting into equal numbers")
  kSorted,  ///< round-robin after sorting by DP area, descending ("approximate sorting")
};

struct ShardResult {
  std::vector<double> shard_ms;  ///< per-device simulated time (sum over that device's shards)
  double makespan_ms = 0.0;      ///< max over devices
  /// makespan / mean per-device time over ALL devices (1 = balanced). Idle
  /// devices count toward the mean, so a run that strands work on one of N
  /// devices reports N, not 1.
  double imbalance = 0.0;
  int busy_devices = 0;  ///< devices that ran at least one shard
};

/// Splits `batch` across `devices` by `policy` and runs `run_shard`
/// (typically a kernel invocation on a fresh Device) on each shard;
/// aggregates the simulated times. `max_shard_pairs` is forwarded to
/// make_shards: 0 keeps one shard per device, > 0 cuts the batch into
/// capped runs so a device may own several shards (times accumulate).
ShardResult dispatch_shards(
    const seq::PairBatch& batch, int devices, SplitPolicy policy,
    const std::function<double(const seq::PairBatch&)>& run_shard,
    std::size_t max_shard_pairs = 0);

/// The shard index sequence a policy produces (exposed for tests).
std::vector<std::size_t> shard_order(const seq::PairBatch& batch, SplitPolicy policy);

/// One sub-batch of a sharded dispatch, with enough bookkeeping to merge
/// results back into input order.
struct Shard {
  seq::PairBatch batch;
  std::vector<std::size_t> indices;  ///< original position of each pair
  int lane = 0;                      ///< device the shard is assigned to
};

/// Shards `batch` for `devices` lanes under `policy`.
///
/// * `max_shard_pairs == 0`: one shard per lane, dealt over the policy order
///   — exactly the partition dispatch_shards runs. Under kSorted the deal is
///   boustrophedon (snake: lane 0..N-1, then N-1..0, ...) so no lane
///   systematically receives the largest pair of every stripe of the
///   descending order; kStatic keeps plain round-robin (input order carries
///   no size trend to skew).
/// * `max_shard_pairs > 0`: the policy order is cut into contiguous runs of
///   at most `max_shard_pairs` pairs (under kSorted each run holds
///   like-sized pairs — length-bucketed packing that minimises intra-launch
///   imbalance, the paper's balance goal at host granularity), and runs are
///   assigned to lanes by greedy LPT on DP area.
///
/// Every pair lands in exactly one shard; empty shards are dropped.
std::vector<Shard> make_shards(const seq::PairBatch& batch, int devices, SplitPolicy policy,
                               std::size_t max_shard_pairs = 0);

/// Cost-aware (weighted-LPT) sharding for heterogeneous lanes. One lane per
/// entry of `lane_weights`; weight l is lane l's relative throughput (only
/// ratios matter — see core::AlignBackend::lane_weight). Work goes to the
/// lane minimising the weighted finish time `(lane_load + cells) / weight`:
/// per pair when `max_shard_pairs == 0` (one shard per lane), per capped run
/// when `max_shard_pairs > 0` (a lane may own several shards). Uniform
/// weights reproduce the unweighted overload bit-for-bit.
std::vector<Shard> make_shards(const seq::PairBatch& batch,
                               const std::vector<double>& lane_weights, SplitPolicy policy,
                               std::size_t max_shard_pairs = 0);

/// Greedy weighted-LPT placement of arbitrary work items onto lanes: items
/// are taken in the given order, and item i goes to the lane minimising the
/// weighted finish time (lane_load + loads[i]) / lane_weights[lane] — the
/// same rule the cost-aware make_shards overloads apply to pair batches
/// (ties break to the lowest lane). Returns the lane of each item,
/// index-aligned with `loads`. The shared-index layer uses this to place
/// reference shards (priced by their window length) across heterogeneous
/// lanes; make_shards routes through it too, so the two stay one machinery.
std::vector<int> weighted_lpt_lanes(std::span<const double> loads,
                                    std::span<const double> lane_weights);

/// Cost-aware sharding with *explicit per-pair loads*: pair i costs
/// `loads[i]` (size must equal batch.size()) instead of batch.cells_of(i).
/// The scheduler uses this when a routing policy prices some pairs by a
/// different engine's cost model — e.g. long-read pairs routed to the X-drop
/// wavefront, whose work is its score-bounded window, not the nominal n·m
/// table. kSorted orders by the loads; packing is weighted LPT throughout
/// (with uniform weights that is plain LPT — the snake deal is skipped, as
/// it would re-derive costs from cells_of and unlearn the loads).
std::vector<Shard> make_shards(const seq::PairBatch& batch,
                               const std::vector<double>& lane_weights, SplitPolicy policy,
                               std::size_t max_shard_pairs,
                               std::span<const std::uint64_t> loads);

}  // namespace saloba::gpusim
