#include "gpusim/occupancy.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace saloba::gpusim {

Occupancy compute_occupancy(const DeviceSpec& spec, int threads_per_block,
                            std::size_t shared_bytes_per_block) {
  SALOBA_CHECK_MSG(threads_per_block > 0 && threads_per_block % spec.warp_size == 0,
                   "threads_per_block must be a positive multiple of the warp size, got "
                       << threads_per_block);
  SALOBA_CHECK_MSG(shared_bytes_per_block <= spec.shared_mem_per_block,
                   "block requests " << shared_bytes_per_block
                                     << " B shared memory, device allows "
                                     << spec.shared_mem_per_block);
  Occupancy occ;
  occ.limited_by_threads = spec.max_threads_per_sm / threads_per_block;
  occ.limited_by_blocks = spec.max_blocks_per_sm;
  occ.limited_by_shared =
      shared_bytes_per_block == 0
          ? spec.max_blocks_per_sm
          : static_cast<int>(spec.shared_mem_per_sm / shared_bytes_per_block);
  occ.blocks_per_sm =
      std::max(0, std::min({occ.limited_by_threads, occ.limited_by_blocks, occ.limited_by_shared}));
  occ.warps_per_sm = occ.blocks_per_sm * (threads_per_block / spec.warp_size);
  return occ;
}

}  // namespace saloba::gpusim
