// Occupancy calculation: how many blocks of a given shape fit on one SM,
// limited by threads, block slots, and shared memory — the three limits that
// matter for our kernels (no register model; none of the reproduced kernels
// is register-limited at the paper's configurations).
#pragma once

#include <cstddef>

#include "gpusim/device_spec.hpp"

namespace saloba::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  int limited_by_threads = 0;  ///< the three candidate limits, for reporting
  int limited_by_blocks = 0;
  int limited_by_shared = 0;

  double warp_occupancy(const DeviceSpec& spec) const {
    int max_warps = spec.max_threads_per_sm / spec.warp_size;
    return max_warps > 0 ? static_cast<double>(warps_per_sm) / max_warps : 0.0;
  }
};

/// threads_per_block must be a multiple of the warp size.
Occupancy compute_occupancy(const DeviceSpec& spec, int threads_per_block,
                            std::size_t shared_bytes_per_block);

}  // namespace saloba::gpusim
