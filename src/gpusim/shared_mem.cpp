#include "gpusim/shared_mem.hpp"

#include <algorithm>

namespace saloba::gpusim {

int shared_conflict_degree(std::span<const SharedAccess> accesses) {
  // Collect distinct words per bank. Warp instructions touch at most
  // 32 lanes x a few words; fixed scratch arrays suffice.
  std::uint32_t words[kSharedBanks][64];
  int counts[kSharedBanks] = {};

  for (const auto& a : accesses) {
    if (a.size == 0) continue;
    std::uint32_t first = a.offset / kSharedBankWidth;
    std::uint32_t last = (a.offset + a.size - 1) / kSharedBankWidth;
    for (std::uint32_t w = first; w <= last; ++w) {
      int bank = static_cast<int>(w % kSharedBanks);
      bool seen = false;
      for (int i = 0; i < counts[bank]; ++i) {
        if (words[bank][i] == w) {
          seen = true;
          break;
        }
      }
      if (!seen && counts[bank] < 64) {
        words[bank][counts[bank]++] = w;
      }
    }
  }
  int degree = 0;
  for (int b = 0; b < kSharedBanks; ++b) degree = std::max(degree, counts[b]);
  return std::max(degree, 1);
}

}  // namespace saloba::gpusim
