// Shared-memory bank-conflict model: 32 banks, 4-byte wide. A warp
// instruction accessing k distinct words in the same bank replays k times;
// lanes reading the *same* word broadcast (no conflict). Used to check the
// paper's Sec. IV-A claim that SALoBa's rotation is conflict-free.
#pragma once

#include <cstdint>
#include <span>

namespace saloba::gpusim {

inline constexpr int kSharedBanks = 32;
inline constexpr int kSharedBankWidth = 4;  // bytes

/// Conflict degree of one warp shared-memory instruction: the maximum number
/// of *distinct* 4-byte words mapped to any single bank. 1 = conflict-free.
/// Offsets are byte offsets; entries of size 0 mark inactive lanes.
struct SharedAccess {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
};

int shared_conflict_degree(std::span<const SharedAccess> accesses);

}  // namespace saloba::gpusim
