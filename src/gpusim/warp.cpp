#include "gpusim/warp.hpp"

namespace saloba::gpusim {

void WarpContext::issue(std::uint64_t n, int active_lanes) {
  counters_.instructions += n;
  counters_.active_lane_ops += n * static_cast<std::uint64_t>(active_lanes);
}

void WarpContext::account_mem(std::span<const MemAccess> accesses) {
  CoalesceResult r = coalesce(accesses, granularity_);
  int active = 0;
  for (const auto& a : accesses) {
    if (a.size != 0) ++active;
  }
  counters_.instructions += 1;
  counters_.active_lane_ops += static_cast<std::uint64_t>(active);
  counters_.global_requests += 1;
  counters_.global_transactions += r.transactions;
  counters_.global_bytes_moved += r.bytes_moved;
  counters_.global_bytes_useful += r.bytes_useful;
}

void WarpContext::global_read(std::span<const MemAccess> accesses) { account_mem(accesses); }

void WarpContext::global_read_cached(std::span<const MemAccess> accesses) {
  std::uint64_t useful = 0;
  int active = 0;
  for (const auto& a : accesses) {
    if (a.size != 0) {
      useful += a.size;
      ++active;
    }
  }
  std::uint64_t trans = (useful + static_cast<std::uint64_t>(granularity_) - 1) /
                        static_cast<std::uint64_t>(granularity_);
  counters_.instructions += 1;
  counters_.active_lane_ops += static_cast<std::uint64_t>(active);
  counters_.global_requests += 1;
  counters_.global_transactions += trans;
  counters_.global_bytes_moved += trans * static_cast<std::uint64_t>(granularity_);
  counters_.global_bytes_useful += useful;
}

void WarpContext::global_write(std::span<const MemAccess> accesses) { account_mem(accesses); }

void WarpContext::shared_access(std::span<const SharedAccess> accesses) {
  int degree = shared_conflict_degree(accesses);
  int active = 0;
  for (const auto& a : accesses) {
    if (a.size != 0) ++active;
  }
  counters_.instructions += 1;
  counters_.active_lane_ops += static_cast<std::uint64_t>(active);
  counters_.shared_requests += 1;
  counters_.shared_conflict_cycles += static_cast<std::uint64_t>(degree - 1);
}

void WarpContext::sync() {
  counters_.syncs += 1;
  counters_.instructions += 1;
  counters_.active_lane_ops += static_cast<std::uint64_t>(warp_size_);
}

}  // namespace saloba::gpusim
