// WarpContext: the instrument a simulated kernel reports its execution
// through. Kernels do their real (functional) work on host data structures
// and declare, per warp instruction, what a CUDA warp would have done:
// issue slots, global accesses (per-lane addresses), shared accesses,
// synchronisations. The counters feed the cost model.
#pragma once

#include <cstdint>
#include <span>

#include "gpusim/coalescer.hpp"
#include "gpusim/kernel_stats.hpp"
#include "gpusim/shared_mem.hpp"

namespace saloba::gpusim {

class WarpContext {
 public:
  WarpContext(int warp_size, int mem_granularity)
      : warp_size_(warp_size), granularity_(mem_granularity) {}

  int warp_size() const { return warp_size_; }

  /// `n` warp instructions with `active_lanes` lanes enabled. Masked-off
  /// lanes still consume the issue slot — this is how divergence costs.
  void issue(std::uint64_t n, int active_lanes);

  /// One global-memory load instruction; `accesses` holds one entry per
  /// lane (size 0 = inactive). Counts the issue slot itself as well.
  void global_read(std::span<const MemAccess> accesses);
  void global_write(std::span<const MemAccess> accesses);

  /// A read routed through the texture/read-only cache (CUSHAW2-GPU's input
  /// path): the cache absorbs granularity waste, so transactions are charged
  /// at ideal packing instead of per-segment.
  void global_read_cached(std::span<const MemAccess> accesses);

  /// One shared-memory access instruction (read or write — same cost).
  void shared_access(std::span<const SharedAccess> accesses);

  /// Warp- or block-level barrier participation.
  void sync();

  /// Functional progress: DP cells computed by this warp instruction burst.
  void add_cells(std::uint64_t cells) { counters_.dp_cells += cells; }

  /// Cells of the nominal full table pruned by banded extension — skipped
  /// blocks and masked in-block cells alike (see WarpCounters).
  void add_skipped_cells(std::uint64_t cells) { counters_.dp_cells_skipped += cells; }

  const WarpCounters& counters() const { return counters_; }

 private:
  void account_mem(std::span<const MemAccess> accesses);

  int warp_size_;
  int granularity_;
  WarpCounters counters_;
};

}  // namespace saloba::gpusim
