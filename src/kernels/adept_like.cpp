// ADEPT-like kernel (paper ref [13]): the most recent intra-query baseline.
// One threadblock per pair; thread j owns query column j; the block sweeps
// the n+m-1 anti-diagonals, exchanging H/E values between neighbouring
// threads with shuffle instructions and keeping *all* intermediate state in
// registers/shared memory. Zero intermediate global traffic — which makes it
// competitive on bandwidth-starved parts (Fig. 8 (a), RTX3090) — but the
// per-diagonal shuffle/masking machinery costs extra instructions, and the
// design structurally caps sequence length at 1024 (Sec. V-D).
#include <array>
#include <vector>

#include "kernels/baselines.hpp"
#include "kernels/block_dp.hpp"
#include "util/check.hpp"

namespace saloba::kernels {
namespace {

using align::AlignmentResult;
using align::Score;
using gpusim::MemAccess;

constexpr std::size_t kAdeptMaxLen = 1024;
/// Per-diagonal per-lane cost: DP arithmetic + shuffle exchanges + the
/// binary-masking bookkeeping the paper describes (Sec. V-A). One cell per
/// lane per diagonal is inherently instruction-heavier than the 8x8 block
/// kernels, which amortise bookkeeping over 64 cells.
constexpr std::uint64_t kInstrPerDiag = 26;

class AdeptKernel final : public ExtensionKernel {
 public:
  AdeptKernel() {
    info_.name = "ADEPT";
    info_.parallelism = "intra-query";
    info_.bitwidth = 8;
    info_.mapping = "one-to-one";
    info_.exact_with_n = true;
    info_.max_len = kAdeptMaxLen;
  }
  const KernelInfo& info() const override { return info_; }

  KernelResult run(gpusim::Device& device, const seq::PairBatch& batch,
                   const align::ScoringScheme& scoring) const override {
    const std::size_t pairs = batch.size();
    SALOBA_CHECK_MSG(pairs > 0, "empty batch");
    const std::size_t max_len = std::max(batch.max_query_len(), batch.max_ref_len());
    if (max_len > kAdeptMaxLen) {
      throw KernelUnsupportedError(
          "ADEPT: sequence length " + std::to_string(max_len) +
          " exceeds the structural shared-memory limit of 1024 bp");
    }

    // 8-bit packed inputs.
    std::uint64_t q_bytes = 0, r_bytes = 0;
    std::vector<std::uint64_t> q_off(pairs), r_off(pairs);
    for (std::size_t p = 0; p < pairs; ++p) {
      q_off[p] = q_bytes;
      r_off[p] = r_bytes;
      q_bytes += (batch.queries[p].size() + 3) / 4 * 4;
      r_bytes += (batch.refs[p].size() + 3) / 4 * 4;
    }
    gpusim::DeviceMem q_mem = device.alloc(q_bytes, "adept.query");
    gpusim::DeviceMem r_mem = device.alloc(r_bytes, "adept.ref");
    gpusim::DeviceMem res_mem = device.alloc(pairs * 16, "adept.results");

    // Block geometry: threads cover the query (one column each), rounded to
    // warps; shared memory holds three diagonals of (H,E,F) per thread.
    const std::size_t batch_max_q = batch.max_query_len();
    const int threads =
        static_cast<int>(std::min<std::size_t>(1024, (batch_max_q + 31) / 32 * 32));
    const std::size_t shm =
        static_cast<std::size_t>(threads) * 3 * 8;  // 3 diagonals x (H,E)/(H,F) pairs

    gpusim::LaunchConfig config;
    config.label = info_.name;
    config.blocks = static_cast<std::uint32_t>(pairs);
    config.threads_per_block = std::max(32, threads);
    config.shared_bytes_per_block = shm;
    config.init_bytes = pairs * 64;

    std::vector<AlignmentResult> results(pairs);
    const int warp_size = device.spec().warp_size;

    auto result = device.launch(config, [&](gpusim::BlockContext& blk) {
      const std::size_t p = blk.block_id();
      const auto& query = batch.queries[p];
      const auto& ref = batch.refs[p];
      if (query.empty() || ref.empty()) {
        results[p] = AlignmentResult{};
        return;
      }
      const std::size_t m = query.size();
      const std::size_t n = ref.size();
      const int warps = blk.warps_per_block();

      // Input loads: each thread fetches its query byte; ref bytes stream
      // once per diagonal window. Model as coalesced byte loads per warp.
      for (int w = 0; w < warps; ++w) {
        std::array<MemAccess, 32> acc{};
        bool any = false;
        for (int l = 0; l < warp_size; ++l) {
          std::size_t j = static_cast<std::size_t>(w) * warp_size + static_cast<std::size_t>(l);
          if (j >= m) break;
          acc[static_cast<std::size_t>(l)] = MemAccess{q_mem.base + q_off[p] + j, 1};
          any = true;
        }
        if (any) blk.warp(w).global_read(acc);
      }
      {
        // Reference stream: warp 0 fetches it in 128-byte bursts.
        for (std::size_t off = 0; off < n; off += 128) {
          std::array<MemAccess, 32> acc{};
          for (int l = 0; l < warp_size; ++l) {
            std::size_t byte = off + static_cast<std::size_t>(l) * 4;
            if (byte >= n) break;
            acc[static_cast<std::size_t>(l)] = MemAccess{r_mem.base + r_off[p] + byte, 4};
          }
          blk.warp(0).global_read(acc);
        }
      }

      // Functional wavefront, column-indexed: cell (i = d - j, j).
      std::vector<Score> h_d1(m, 0), h_d2(m, 0), h_cur(m, 0);
      std::vector<Score> e_d1(m, kBoundaryNegInf), e_cur(m, kBoundaryNegInf);
      std::vector<Score> f_d1(m, kBoundaryNegInf), f_cur(m, kBoundaryNegInf);
      AlignmentResult best;
      const Score alpha = scoring.alpha();
      const Score beta = scoring.beta();

      // Banded extension (Sec. VII-B): the band maps cleanly onto ADEPT's
      // diagonal wavefront — on diagonal d only columns with |d - 2j| <=
      // band hold in-band cells, so out-of-band lanes are masked off (they
      // still write the neutral H = 0 / E,F = -inf their neighbours read)
      // and warps fully outside the window issue nothing.
      const std::size_t pair_band = batch.band_of(p);
      const auto bb = static_cast<std::int64_t>(pair_band);

      const std::size_t diags = n + m - 1;
      for (std::size_t d = 0; d < diags; ++d) {
        std::size_t j_lo = (d >= n) ? d - n + 1 : 0;
        std::size_t j_hi = std::min(m - 1, d);
        // In-band column window of this diagonal (the full range when
        // unbanded). Empty when the diagonal lies wholly outside the band.
        std::size_t jb_lo = j_lo;
        std::size_t jb_hi = j_hi;
        if (pair_band > 0) {
          const auto dd = static_cast<std::int64_t>(d);
          jb_lo = std::max<std::int64_t>(static_cast<std::int64_t>(j_lo),
                                         dd > bb ? (dd - bb + 1) / 2 : 0);
          jb_hi = std::min<std::int64_t>(static_cast<std::int64_t>(j_hi), (dd + bb) / 2);
        }
        const bool any_in_band = jb_lo <= jb_hi;

        // Accounting: every warp whose column band intersects the active
        // in-band range pays the per-diagonal cost; a block-wide barrier
        // follows when the alignment spans multiple warps.
        if (any_in_band) {
          for (int w = 0; w < warps; ++w) {
            std::size_t band_lo = static_cast<std::size_t>(w) * warp_size;
            std::size_t band_hi = band_lo + static_cast<std::size_t>(warp_size) - 1;
            if (band_lo > jb_hi || band_hi < jb_lo) continue;
            int active =
                static_cast<int>(std::min(band_hi, jb_hi) - std::max(band_lo, jb_lo) + 1);
            blk.warp(w).issue(kInstrPerDiag, active);
          }
        }
        if (warps > 1) blk.syncthreads();

        for (std::size_t j = j_lo; j <= j_hi; ++j) {
          std::size_t i = d - j;
          if (pair_band > 0 && (j < jb_lo || j > jb_hi)) {
            // Masked lane: publish the out-of-band boundary values.
            h_cur[j] = 0;
            e_cur[j] = kBoundaryNegInf;
            f_cur[j] = kBoundaryNegInf;
            continue;
          }
          Score h_left = (j == 0) ? 0 : h_d1[j - 1];
          Score e_left = (j == 0) ? kBoundaryNegInf : e_d1[j - 1];
          Score h_up = (i == 0) ? 0 : h_d1[j];
          Score f_up = (i == 0) ? kBoundaryNegInf : f_d1[j];
          Score h_diag = (i == 0 || j == 0) ? 0 : h_d2[j - 1];

          Score e = std::max(h_left - alpha, e_left - beta);
          Score f = std::max(h_up - alpha, f_up - beta);
          Score h =
              std::max({Score{0}, h_diag + scoring.substitution(ref[i], query[j]), e, f});
          h_cur[j] = h;
          e_cur[j] = e;
          f_cur[j] = f;
          align::take_better(best, AlignmentResult{h, static_cast<std::int32_t>(i),
                                                   static_cast<std::int32_t>(j)});
        }
        if (any_in_band) blk.warp(0).add_cells(jb_hi - jb_lo + 1);
        blk.warp(0).add_skipped_cells((j_hi - j_lo + 1) -
                                      (any_in_band ? jb_hi - jb_lo + 1 : 0));
        std::swap(h_d2, h_d1);
        std::swap(h_d1, h_cur);
        std::swap(e_d1, e_cur);
        std::swap(f_d1, f_cur);
      }
      if (best.score == 0) best = AlignmentResult{};
      results[p] = best;

      // Result writeback.
      std::array<MemAccess, 32> acc{};
      acc[0] = MemAccess{res_mem.base + static_cast<std::uint64_t>(p) * 16, 16};
      blk.warp(0).global_write(acc);
    });

    device.free(q_mem);
    device.free(r_mem);
    device.free(res_mem);

    KernelResult out;
    out.results = std::move(results);
    out.stats = result.stats;
    out.time = result.time;
    out.launches = 1;
    return out;
  }

 private:
  KernelInfo info_;
};

}  // namespace

KernelPtr make_adept_like(std::size_t nominal_pairs) {
  (void)nominal_pairs;  // structural limit only; no footprint scaling
  return std::make_unique<AdeptKernel>();
}


namespace {
const KernelRegistrar reg_adept{"adept", {}, 60, &make_adept_like};
}  // namespace

}  // namespace saloba::kernels
