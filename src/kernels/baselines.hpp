// Factories for the baseline kernels of paper Table II. `nominal_pairs`
// reproduces the paper's batch size (5,000 reads per kernel call) for
// device-memory footprint checks even when the simulated batch is smaller —
// benches pass 5000, tests pass 0 (= use the actual batch size).
#pragma once

#include <cstddef>

#include "kernels/kernel_iface.hpp"

namespace saloba::kernels {

KernelPtr make_gasal2_like(std::size_t nominal_pairs = 0);
KernelPtr make_nvbio_like(std::size_t nominal_pairs = 0);
KernelPtr make_soap3dp_like(std::size_t nominal_pairs = 0);
KernelPtr make_cushaw2_like(std::size_t nominal_pairs = 0);
KernelPtr make_adept_like(std::size_t nominal_pairs = 0);
KernelPtr make_swsharp_like(std::size_t nominal_pairs = 0);

}  // namespace saloba::kernels
