#include "kernels/block_dp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace saloba::kernels {

BlockBoundary BlockBoundary::table_edge() {
  BlockBoundary b;
  for (int k = 0; k < kBlockDim; ++k) {
    b.top_h[k] = 0;
    b.top_f[k] = kBoundaryNegInf;
    b.left_h[k] = 0;
    b.left_e[k] = kBoundaryNegInf;
  }
  b.diag_h = 0;
  return b;
}

void block_dp(const seq::BaseCode* ref, const seq::BaseCode* query, int rh, int qw,
              std::size_t i0, std::size_t j0, const BlockBoundary& in,
              const align::ScoringScheme& scoring, BlockOutput& out) {
  SALOBA_DCHECK(rh >= 1 && rh <= kBlockDim && qw >= 1 && qw <= kBlockDim);
  using align::Score;
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  // Row-carried H of the previous block row within this block; starts as the
  // incoming top boundary. f likewise carries down the columns.
  Score h_above[kBlockDim];
  Score f_above[kBlockDim];
  for (int k = 0; k < qw; ++k) {
    h_above[k] = in.top_h[k];
    f_above[k] = in.top_f[k];
  }

  align::AlignmentResult best;
  best.score = 0;

  for (int r = 0; r < rh; ++r) {
    // Left boundary of this row: incoming column data.
    Score h_left = in.left_h[r];
    Score e = in.left_e[r];
    // Diagonal for column 0: row r-1's left boundary H, or the corner.
    Score h_diag = (r == 0) ? in.diag_h : in.left_h[r - 1];
    const seq::BaseCode rb = ref[r];

    for (int c = 0; c < qw; ++c) {
      e = std::max(h_left - alpha, e - beta);
      Score f = std::max(h_above[c] - alpha, f_above[c] - beta);
      Score h = std::max({Score{0}, h_diag + scoring.substitution(rb, query[c]), e, f});

      h_diag = h_above[c];
      h_above[c] = h;
      f_above[c] = f;
      h_left = h;

      if (h > best.score) {
        best.score = h;
        best.ref_end = static_cast<std::int32_t>(i0) + r;
        best.query_end = static_cast<std::int32_t>(j0) + c;
      }
      if (c == qw - 1) {
        out.right_h[r] = h;
        out.right_e[r] = e;
      }
    }
  }
  for (int k = 0; k < qw; ++k) {
    out.bottom_h[k] = h_above[k];
    out.bottom_f[k] = f_above[k];
  }
  out.best = best;
}

bool block_intersects_band(std::size_t i0, std::size_t j0, int rh, int qw, std::size_t band) {
  if (band == 0) return true;
  // The block's j - i range is [j0 - (i0 + rh - 1), (j0 + qw - 1) - i0]; it
  // holds an in-band cell iff that interval meets [-band, band].
  const std::int64_t lo =
      static_cast<std::int64_t>(j0) - (static_cast<std::int64_t>(i0) + rh - 1);
  const std::int64_t hi =
      (static_cast<std::int64_t>(j0) + qw - 1) - static_cast<std::int64_t>(i0);
  return lo <= static_cast<std::int64_t>(band) && hi >= -static_cast<std::int64_t>(band);
}

std::uint64_t block_dp_banded(const seq::BaseCode* ref, const seq::BaseCode* query, int rh,
                              int qw, std::size_t i0, std::size_t j0, std::size_t band,
                              const BlockBoundary& in, const align::ScoringScheme& scoring,
                              BlockOutput& out) {
  if (band == 0) {
    block_dp(ref, query, rh, qw, i0, j0, in, scoring, out);
    return static_cast<std::uint64_t>(rh) * static_cast<std::uint64_t>(qw);
  }
  SALOBA_DCHECK(rh >= 1 && rh <= kBlockDim && qw >= 1 && qw <= kBlockDim);
  using align::Score;
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();
  const auto b = static_cast<std::int64_t>(band);

  Score h_above[kBlockDim];
  Score f_above[kBlockDim];
  for (int k = 0; k < qw; ++k) {
    h_above[k] = in.top_h[k];
    f_above[k] = in.top_f[k];
  }

  align::AlignmentResult best;
  best.score = 0;
  std::uint64_t computed = 0;

  for (int r = 0; r < rh; ++r) {
    Score h_left = in.left_h[r];
    Score e = in.left_e[r];
    Score h_diag = (r == 0) ? in.diag_h : in.left_h[r - 1];
    const seq::BaseCode rb = ref[r];
    const std::int64_t i = static_cast<std::int64_t>(i0) + r;

    for (int c = 0; c < qw; ++c) {
      const std::int64_t j = static_cast<std::int64_t>(j0) + c;
      Score h, f;
      if (j - i > b || i - j > b) {
        // Masked cell: publish the out-of-band boundary values so in-band
        // neighbours (including the blocks reading this block's outputs)
        // see exactly what smith_waterman_banded's untouched arrays hold.
        h = 0;
        e = kBoundaryNegInf;
        f = kBoundaryNegInf;
      } else {
        e = std::max(h_left - alpha, e - beta);
        f = std::max(h_above[c] - alpha, f_above[c] - beta);
        h = std::max({Score{0}, h_diag + scoring.substitution(rb, query[c]), e, f});
        ++computed;
        if (h > best.score) {
          best.score = h;
          best.ref_end = static_cast<std::int32_t>(i);
          best.query_end = static_cast<std::int32_t>(j);
        }
      }

      h_diag = h_above[c];
      h_above[c] = h;
      f_above[c] = f;
      h_left = h;

      if (c == qw - 1) {
        out.right_h[r] = h;
        out.right_e[r] = e;
      }
    }
  }
  for (int k = 0; k < qw; ++k) {
    out.bottom_h[k] = h_above[k];
    out.bottom_f[k] = f_above[k];
  }
  out.best = best;
  return computed;
}

}  // namespace saloba::kernels
