#include "kernels/block_dp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace saloba::kernels {

BlockBoundary BlockBoundary::table_edge() {
  BlockBoundary b;
  for (int k = 0; k < kBlockDim; ++k) {
    b.top_h[k] = 0;
    b.top_f[k] = kBoundaryNegInf;
    b.left_h[k] = 0;
    b.left_e[k] = kBoundaryNegInf;
  }
  b.diag_h = 0;
  return b;
}

void block_dp(const seq::BaseCode* ref, const seq::BaseCode* query, int rh, int qw,
              std::size_t i0, std::size_t j0, const BlockBoundary& in,
              const align::ScoringScheme& scoring, BlockOutput& out) {
  SALOBA_DCHECK(rh >= 1 && rh <= kBlockDim && qw >= 1 && qw <= kBlockDim);
  using align::Score;
  const Score alpha = scoring.alpha();
  const Score beta = scoring.beta();

  // Row-carried H of the previous block row within this block; starts as the
  // incoming top boundary. f likewise carries down the columns.
  Score h_above[kBlockDim];
  Score f_above[kBlockDim];
  for (int k = 0; k < qw; ++k) {
    h_above[k] = in.top_h[k];
    f_above[k] = in.top_f[k];
  }

  align::AlignmentResult best;
  best.score = 0;

  for (int r = 0; r < rh; ++r) {
    // Left boundary of this row: incoming column data.
    Score h_left = in.left_h[r];
    Score e = in.left_e[r];
    // Diagonal for column 0: row r-1's left boundary H, or the corner.
    Score h_diag = (r == 0) ? in.diag_h : in.left_h[r - 1];
    const seq::BaseCode rb = ref[r];

    for (int c = 0; c < qw; ++c) {
      e = std::max(h_left - alpha, e - beta);
      Score f = std::max(h_above[c] - alpha, f_above[c] - beta);
      Score h = std::max({Score{0}, h_diag + scoring.substitution(rb, query[c]), e, f});

      h_diag = h_above[c];
      h_above[c] = h;
      f_above[c] = f;
      h_left = h;

      if (h > best.score) {
        best.score = h;
        best.ref_end = static_cast<std::int32_t>(i0) + r;
        best.query_end = static_cast<std::int32_t>(j0) + c;
      }
      if (c == qw - 1) {
        out.right_h[r] = h;
        out.right_e[r] = e;
      }
    }
  }
  for (int k = 0; k < qw; ++k) {
    out.bottom_h[k] = h_above[k];
    out.bottom_f[k] = f_above[k];
  }
  out.best = best;
}

}  // namespace saloba::kernels
