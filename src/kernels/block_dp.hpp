// The 8×8 DP block: the unit of work of every 4-bit kernel (paper
// Sec. II-B: one 32-bit register word from each sequence covers 8 bases, so
// kernels process 8×8 cells per fetched word pair).
//
// Boundary convention at table edges: H reads 0 (local-alignment floor),
// E and F read kBoundaryNegInf (a gap cannot enter from outside the table).
#pragma once

#include <cstdint>
#include <limits>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "seq/alphabet.hpp"

namespace saloba::kernels {

inline constexpr align::Score kBoundaryNegInf =
    std::numeric_limits<align::Score>::min() / 4;

inline constexpr int kBlockDim = 8;

/// Issue-slot cost constants used by the kernels (warp instructions per DP
/// cell per lane). Intra-query kernels pay extra for the shared-memory
/// handoff machinery; these values are part of the calibrated cost model
/// (see DESIGN.md §5 and bench/fig6_kernel_perf).
inline constexpr std::uint64_t kInstrPerCellInter = 8;
inline constexpr std::uint64_t kInstrPerCellIntra = 16;

struct BlockBoundary {
  // Boundary cells feeding the block. Indices are block-local.
  align::Score top_h[kBlockDim];   ///< H(i0-1, j0+k)
  align::Score top_f[kBlockDim];   ///< F(i0-1, j0+k)
  align::Score left_h[kBlockDim];  ///< H(i0+r, j0-1)
  align::Score left_e[kBlockDim];  ///< E(i0+r, j0-1)
  align::Score diag_h = 0;         ///< H(i0-1, j0-1)

  /// Table-edge boundary (row/column -1).
  static BlockBoundary table_edge();
};

struct BlockOutput {
  align::Score right_h[kBlockDim];   ///< H(i0+r, j0+qw-1)
  align::Score right_e[kBlockDim];   ///< E(i0+r, j0+qw-1)
  align::Score bottom_h[kBlockDim];  ///< H(i0+rh-1, j0+k)
  align::Score bottom_f[kBlockDim];  ///< F(i0+rh-1, j0+k)
  align::AlignmentResult best;       ///< best cell in the block, global coords
};

/// Computes an rh×qw block (1..8 each) whose top-left cell is (i0, j0).
/// `ref` points at the rh reference bases of the block's rows, `query` at
/// the qw query bases of its columns.
void block_dp(const seq::BaseCode* ref, const seq::BaseCode* query, int rh, int qw,
              std::size_t i0, std::size_t j0, const BlockBoundary& in,
              const align::ScoringScheme& scoring, BlockOutput& out);

/// Cell-exact banded block (Sec. VII-B): cells with |i - j| > band are
/// masked to the out-of-band boundary semantics (H = 0, E/F = -inf, never a
/// best-cell candidate), so a kernel tiling the table from banded blocks is
/// bit-identical to align::smith_waterman_banded at the same band. band == 0
/// falls through to the full block. Returns the number of in-band cells
/// actually computed (the rest of rh·qw was skipped).
std::uint64_t block_dp_banded(const seq::BaseCode* ref, const seq::BaseCode* query, int rh,
                              int qw, std::size_t i0, std::size_t j0, std::size_t band,
                              const BlockBoundary& in, const align::ScoringScheme& scoring,
                              BlockOutput& out);

/// True when the rh×qw block at (i0, j0) contains at least one cell with
/// |i - j| <= band; band == 0 (unbanded) keeps every block. Fully
/// out-of-band blocks can be skipped outright: all their outputs are the
/// neutral boundary values (H = 0, E/F = -inf).
bool block_intersects_band(std::size_t i0, std::size_t j0, int rh, int qw, std::size_t band);

}  // namespace saloba::kernels
