// CUSHAW2-GPU-like kernel (paper ref [45]): inter-query with two
// refinements the paper credits for its competitiveness (Sec. V-B): a
// compacted global-memory storage format for intermediate rows (2 B per
// boundary cell — two cells share each 4-byte store) and input fetches
// through the texture cache. Combined with GASAL2's on-GPU packing (the
// paper applies it to all baselines), it edges out GASAL2 on RTX3090 at
// long lengths, where DRAM traffic dominates.
#include "kernels/baselines.hpp"
#include "kernels/block_dp.hpp"
#include "kernels/inter_query_engine.hpp"

namespace saloba::kernels {

KernelPtr make_cushaw2_like(std::size_t nominal_pairs) {
  InterQueryParams p;
  p.info.name = "CUSHAW2-GPU";
  p.info.parallelism = "inter-query";
  p.info.bitwidth = 2;
  p.info.mapping = "one-to-many";
  p.info.exact_with_n = false;  // converts N to a substitute base (Sec. VI-B)
  p.packing = seq::Packing::k2Bit;
  // 2-bit unpacking arithmetic plus the one-to-one adaptation layer cost
  // extra instructions per cell; the compact format pays off only where
  // DRAM is the bottleneck (RTX3090 at long lengths, Sec. V-B).
  p.instr_per_cell = kInstrPerCellInter + 6;
  p.interm_cell_bytes = 2;
  p.texture_inputs = true;
  p.init_bytes = [nominal_pairs](const seq::PairBatch& batch) {
    // Staging borrowed from GASAL2's packing path, somewhat leaner.
    std::size_t pairs = std::max(nominal_pairs, batch.size());
    return static_cast<std::uint64_t>(pairs) * (24 << 10);
  };
  return std::make_unique<InterQueryKernel>(std::move(p));
}


namespace {
const KernelRegistrar reg_cushaw2{"cushaw2-gpu", {"cushaw2"}, 20, &make_cushaw2_like};
}  // namespace

}  // namespace saloba::kernels
