// GASAL2-like kernel (paper Sec. II-B / III): the state-of-the-art
// inter-query baseline. One thread per pair, 4-bit packing, 8×8 blocks,
// strip boundary rows stored as 4-byte (H,F) cells in global memory.
//
// The distinguishing cost is its staging-buffer initialisation: GASAL2
// allocates and clears large per-batch buffers sized for the maximum
// lengths, which dominates at 64 bp (Sec. V-C, "relatively large memory
// initialization cost").
#include "kernels/baselines.hpp"
#include "kernels/block_dp.hpp"
#include "kernels/inter_query_engine.hpp"

namespace saloba::kernels {
namespace {

// Staging bytes memset per pair at batch setup (packed sequence staging,
// per-pair metadata and result slots, sized at GASAL2's defaults).
constexpr std::uint64_t kInitBytesPerPair = 40 << 10;

}  // namespace

KernelPtr make_gasal2_like(std::size_t nominal_pairs) {
  InterQueryParams p;
  p.info.name = "GASAL2";
  p.info.parallelism = "inter-query";
  p.info.bitwidth = 4;
  p.info.mapping = "one-to-one";
  p.info.exact_with_n = true;
  p.packing = seq::Packing::k4Bit;
  p.instr_per_cell = kInstrPerCellInter;
  p.interm_cell_bytes = 4;
  p.init_bytes = [nominal_pairs](const seq::PairBatch& batch) {
    std::size_t pairs = std::max(nominal_pairs, batch.size());
    return static_cast<std::uint64_t>(pairs) * kInitBytesPerPair;
  };
  return std::make_unique<InterQueryKernel>(std::move(p));
}


namespace {
const KernelRegistrar reg_gasal2{"gasal2", {}, 40, &make_gasal2_like};
}  // namespace

}  // namespace saloba::kernels
