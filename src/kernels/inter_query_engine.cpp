#include "kernels/inter_query_engine.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "kernels/block_dp.hpp"
#include "util/check.hpp"

namespace saloba::kernels {
namespace {

using align::AlignmentResult;
using align::Score;
using gpusim::MemAccess;
using seq::BaseCode;

/// Per-lane sweep state: one pair's DP progress.
struct LaneState {
  std::size_t pair = 0;
  bool valid = false;
  bool done = true;
  std::size_t band = 0;      // effective band of this pair (0 = full table)
  bool was_in_band = true;   // previous block's band status (fetch gating)
  bool ref_fetched = false;  // this strip's reference word already charged
  int n_strips = 0;
  int q_words = 0;  // query 8-column block count
  int strip = 0;
  int word = 0;
  // Boundary row between strips, over the query axis: H and F of the
  // bottom row of the strip above (functional mirror of the global row
  // buffer).
  std::vector<Score> row_h, row_f;
  // Carried right-column state within the current strip.
  Score left_h[kBlockDim];
  Score left_e[kBlockDim];
  Score diag = 0;       // H(top-left corner of next block)
  Score next_diag = 0;  // captured before the row buffer is overwritten
  AlignmentResult best;
};

struct Layout {
  // Simulated device addresses.
  std::uint64_t query_words_base = 0;
  std::uint64_t ref_words_base = 0;
  std::uint64_t row_buf_base = 0;
  std::vector<std::uint64_t> row_buf_offset;  // per pair, bytes
  std::vector<std::uint64_t> q_word_off, r_word_off;  // per pair, in words
};

}  // namespace

KernelResult run_inter_query(gpusim::Device& device, const seq::PairBatch& batch,
                             const align::ScoringScheme& scoring,
                             const InterQueryParams& params) {
  const std::size_t pairs = batch.size();
  SALOBA_CHECK_MSG(pairs > 0, "empty batch");
  const std::size_t max_len = std::max(batch.max_query_len(), batch.max_ref_len());
  if (max_len > params.info.max_len) {
    throw KernelUnsupportedError(params.info.name + ": sequence length " +
                                 std::to_string(max_len) + " exceeds structural limit " +
                                 std::to_string(params.info.max_len));
  }

  // 2-bit kernels cannot represent N: substitute it (deterministically with
  // A, mirroring CUSHAW2/SOAP3's base substitution) and compute on the
  // substituted sequences so scores reflect what those kernels truly return.
  const bool substitute_n = params.packing == seq::Packing::k2Bit;
  std::vector<std::vector<BaseCode>> subst_q, subst_r;
  if (substitute_n) {
    subst_q = batch.queries;
    subst_r = batch.refs;
    for (auto* seqs : {&subst_q, &subst_r}) {
      for (auto& s : *seqs) {
        for (auto& b : s) {
          if (b == seq::kBaseN) b = seq::kBaseA;
        }
      }
    }
  }
  auto query_of = [&](std::size_t p) -> const std::vector<BaseCode>& {
    return substitute_n ? subst_q[p] : batch.queries[p];
  };
  auto ref_of = [&](std::size_t p) -> const std::vector<BaseCode>& {
    return substitute_n ? subst_r[p] : batch.refs[p];
  };

  // ---- Device footprint ----------------------------------------------
  const int bpw = seq::bases_per_word(params.packing);
  Layout layout;
  layout.row_buf_offset.resize(pairs);
  layout.q_word_off.resize(pairs);
  layout.r_word_off.resize(pairs);
  std::uint64_t q_words_total = 0, r_words_total = 0, row_bytes_total = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    layout.q_word_off[p] = q_words_total;
    layout.r_word_off[p] = r_words_total;
    layout.row_buf_offset[p] = row_bytes_total;
    q_words_total += (batch.queries[p].size() + bpw - 1) / bpw;
    r_words_total += (batch.refs[p].size() + bpw - 1) / bpw;
    // One boundary cell per query column; stored packed at
    // interm_cell_bytes per cell.
    row_bytes_total += batch.queries[p].size() * static_cast<std::uint64_t>(
                                                     params.interm_cell_bytes);
  }

  gpusim::DeviceMem q_mem = device.alloc(q_words_total * 4, params.info.name + ".query");
  gpusim::DeviceMem r_mem = device.alloc(r_words_total * 4, params.info.name + ".ref");
  gpusim::DeviceMem row_mem = device.alloc(row_bytes_total, params.info.name + ".rows");
  gpusim::DeviceMem res_mem = device.alloc(pairs * 16, params.info.name + ".results");
  gpusim::DeviceMem extra_mem{};
  if (params.extra_footprint) {
    extra_mem = device.alloc(params.extra_footprint(batch), params.info.name + ".extra");
  }
  layout.query_words_base = q_mem.base;
  layout.ref_words_base = r_mem.base;
  layout.row_buf_base = row_mem.base;

  // ---- Launch ----------------------------------------------------------
  const int tpb = params.threads_per_block;
  gpusim::LaunchConfig config;
  config.label = params.info.name;
  config.blocks = static_cast<std::uint32_t>((pairs + tpb - 1) / tpb);
  config.threads_per_block = tpb;
  config.shared_bytes_per_block = 0;
  config.init_bytes = params.init_bytes ? params.init_bytes(batch) : 0;

  std::vector<AlignmentResult> results(pairs);
  const int warp_size = device.spec().warp_size;
  const int warps_per_block = tpb / warp_size;

  auto result = device.launch(config, [&](gpusim::BlockContext& blk) {
    for (int w = 0; w < warps_per_block; ++w) {
      gpusim::WarpContext& warp = blk.warp(w);

      // Bind lanes to pairs.
      std::array<LaneState, 32> lanes;
      int live = 0;
      for (int l = 0; l < warp_size; ++l) {
        std::size_t p = static_cast<std::size_t>(blk.block_id()) * tpb +
                        static_cast<std::size_t>(w) * warp_size + static_cast<std::size_t>(l);
        LaneState& ls = lanes[static_cast<std::size_t>(l)];
        if (p >= pairs || batch.queries[p].empty() || batch.refs[p].empty()) continue;
        ls.pair = p;
        ls.valid = true;
        ls.done = false;
        ls.band = batch.band_of(p);
        ls.n_strips = static_cast<int>((batch.refs[p].size() + kBlockDim - 1) / kBlockDim);
        ls.q_words = static_cast<int>((batch.queries[p].size() + kBlockDim - 1) / kBlockDim);
        ls.row_h.assign(batch.queries[p].size(), 0);
        ls.row_f.assign(batch.queries[p].size(), kBoundaryNegInf);
        for (int k = 0; k < kBlockDim; ++k) {
          ls.left_h[k] = 0;
          ls.left_e[k] = kBoundaryNegInf;
        }
        ls.diag = 0;
        ++live;
      }
      if (live == 0) continue;

      // Warp-synchronous sweep: every step, each unfinished lane processes
      // one 8x8 block.
      std::array<MemAccess, 32> acc;
      auto clear_acc = [&acc] { acc.fill(MemAccess{}); };

      for (;;) {
        int active = 0;
        for (int l = 0; l < warp_size; ++l) {
          if (lanes[static_cast<std::size_t>(l)].valid &&
              !lanes[static_cast<std::size_t>(l)].done) {
            ++active;
          }
        }
        if (active == 0) break;

        // Banded extension (Sec. VII-B): blocks fully outside the pair's
        // |i - j| <= band are not fetched, loaded, computed, or stored — a
        // banded thread knows their outputs are the neutral H = 0 / E,F =
        // -inf without touching memory. Unbanded lanes (band 0) keep the
        // classic behaviour bit-for-bit.
        auto lane_block_in_band = [&](const LaneState& ls) {
          if (ls.band == 0) return true;
          const auto& query = query_of(ls.pair);
          const auto& ref = ref_of(ls.pair);
          const std::size_t i0 = static_cast<std::size_t>(ls.strip) * kBlockDim;
          const std::size_t j0 = static_cast<std::size_t>(ls.word) * kBlockDim;
          const int rh = static_cast<int>(std::min<std::size_t>(kBlockDim, ref.size() - i0));
          const int qw = static_cast<int>(std::min<std::size_t>(kBlockDim, query.size() - j0));
          return block_intersects_band(i0, j0, rh, qw, ls.band);
        };

        // -- 1. query word fetch (once per block; a packed word may span
        //       several blocks for wide packings, then the fetch only
        //       happens when the block crosses into a new word — or when the
        //       band was just re-entered and the word was never fetched).
        clear_acc();
        for (int l = 0; l < warp_size; ++l) {
          LaneState& ls = lanes[static_cast<std::size_t>(l)];
          if (!ls.valid || ls.done || !lane_block_in_band(ls)) continue;
          int first_word = ls.word * kBlockDim / bpw;
          int prev_last = ls.word == 0 ? -1 : (ls.word * kBlockDim - 1) / bpw;
          if (first_word != prev_last || !ls.was_in_band) {
            acc[static_cast<std::size_t>(l)] = MemAccess{
                layout.query_words_base + (layout.q_word_off[ls.pair] +
                                           static_cast<std::uint64_t>(first_word)) * 4,
                4};
          }
        }
        if (params.texture_inputs) warp.global_read_cached(acc);
        else warp.global_read(acc);

        // -- 2. ref word fetch at the strip's first in-band block.
        clear_acc();
        for (int l = 0; l < warp_size; ++l) {
          LaneState& ls = lanes[static_cast<std::size_t>(l)];
          if (!ls.valid || ls.done || ls.ref_fetched || !lane_block_in_band(ls)) continue;
          ls.ref_fetched = true;
          int rword = ls.strip * kBlockDim / bpw;
          int prev_last = ls.strip == 0 ? -1 : (ls.strip * kBlockDim - 1) / bpw;
          if (rword != prev_last) {
            acc[static_cast<std::size_t>(l)] = MemAccess{
                layout.ref_words_base +
                    (layout.r_word_off[ls.pair] + static_cast<std::uint64_t>(rword)) * 4,
                4};
          }
        }
        warp.global_read(acc);

        // -- 3. row-buffer loads: boundary cells of the 8 columns, from the
        //       strip above (skipped on the first strip). One warp
        //       instruction per stored 4-byte unit.
        const int interm_instr =
            std::max(1, kBlockDim * params.interm_cell_bytes / 4);
        for (int k = 0; k < interm_instr; ++k) {
          clear_acc();
          bool any = false;
          for (int l = 0; l < warp_size; ++l) {
            LaneState& ls = lanes[static_cast<std::size_t>(l)];
            if (!ls.valid || ls.done || ls.strip == 0 || !lane_block_in_band(ls)) continue;
            std::uint64_t col = static_cast<std::uint64_t>(ls.word) * kBlockDim;
            std::uint64_t addr = layout.row_buf_base + layout.row_buf_offset[ls.pair] +
                                 col * static_cast<std::uint64_t>(params.interm_cell_bytes) +
                                 static_cast<std::uint64_t>(k) * 4;
            acc[static_cast<std::size_t>(l)] = MemAccess{addr, 4};
            any = true;
          }
          if (any) warp.global_read(acc);
        }

        // -- 4. the 8x8 block DP itself. Record each lane's processed block
        //       column so the store pass below uses pre-advance positions.
        std::uint64_t cells_max = 0;
        std::array<int, 32> processed_word;
        processed_word.fill(-1);
        std::array<std::size_t, 32> processed_pair{};
        for (int l = warp_size - 1; l >= 0; --l) {
          LaneState& ls = lanes[static_cast<std::size_t>(l)];
          if (!ls.valid || ls.done) continue;
          const auto& query = query_of(ls.pair);
          const auto& ref = ref_of(ls.pair);
          const std::size_t i0 = static_cast<std::size_t>(ls.strip) * kBlockDim;
          const std::size_t j0 = static_cast<std::size_t>(ls.word) * kBlockDim;
          const int rh = static_cast<int>(std::min<std::size_t>(kBlockDim, ref.size() - i0));
          const int qw = static_cast<int>(std::min<std::size_t>(kBlockDim, query.size() - j0));

          auto advance = [&](LaneState& lane) {
            if (++lane.word == lane.q_words) {
              lane.word = 0;
              for (int k = 0; k < kBlockDim; ++k) {
                lane.left_h[k] = 0;
                lane.left_e[k] = kBoundaryNegInf;
              }
              lane.diag = 0;
              lane.ref_fetched = false;
              if (++lane.strip == lane.n_strips) {
                lane.done = true;
                results[lane.pair] = lane.best;
              }
            }
          };

          // Capture the diagonal for the next block before overwriting.
          if (ls.strip == 0) {
            ls.next_diag = 0;
          } else if (j0 + kBlockDim - 1 < query.size()) {
            ls.next_diag = ls.row_h[j0 + kBlockDim - 1];
          }

          if (!block_intersects_band(i0, j0, rh, qw, ls.band)) {
            // Skipped block: publish the out-of-band neutral boundaries so
            // in-band neighbours read exactly what the banded reference
            // would, then advance without charging compute or traffic.
            for (int k = 0; k < qw; ++k) {
              ls.row_h[j0 + static_cast<std::size_t>(k)] = 0;
              ls.row_f[j0 + static_cast<std::size_t>(k)] = kBoundaryNegInf;
            }
            for (int k = 0; k < kBlockDim; ++k) {
              ls.left_h[k] = 0;
              ls.left_e[k] = kBoundaryNegInf;
            }
            ls.diag = ls.next_diag;
            ls.was_in_band = false;
            warp.add_skipped_cells(static_cast<std::uint64_t>(rh) *
                                   static_cast<std::uint64_t>(qw));
            advance(ls);
            continue;
          }

          BlockBoundary bound;
          for (int k = 0; k < qw; ++k) {
            if (ls.strip == 0) {
              bound.top_h[k] = 0;
              bound.top_f[k] = kBoundaryNegInf;
            } else {
              bound.top_h[k] = ls.row_h[j0 + static_cast<std::size_t>(k)];
              bound.top_f[k] = ls.row_f[j0 + static_cast<std::size_t>(k)];
            }
          }
          for (int k = 0; k < rh; ++k) {
            bound.left_h[k] = ls.left_h[k];
            bound.left_e[k] = ls.left_e[k];
          }
          bound.diag_h = ls.diag;

          BlockOutput out;
          const std::uint64_t computed = block_dp_banded(
              ref.data() + i0, query.data() + j0, rh, qw, i0, j0, ls.band, bound, scoring,
              out);
          align::take_better(ls.best, out.best);

          for (int k = 0; k < qw; ++k) {
            ls.row_h[j0 + static_cast<std::size_t>(k)] = out.bottom_h[k];
            ls.row_f[j0 + static_cast<std::size_t>(k)] = out.bottom_f[k];
          }
          for (int k = 0; k < rh; ++k) {
            ls.left_h[k] = out.right_h[k];
            ls.left_e[k] = out.right_e[k];
          }
          ls.diag = ls.next_diag;
          ls.was_in_band = true;
          cells_max = std::max(cells_max, computed);
          warp.add_cells(computed);
          warp.add_skipped_cells(static_cast<std::uint64_t>(rh) *
                                     static_cast<std::uint64_t>(qw) -
                                 computed);
          processed_word[static_cast<std::size_t>(l)] = ls.word;
          processed_pair[static_cast<std::size_t>(l)] = ls.pair;

          advance(ls);
        }
        warp.issue(cells_max * params.instr_per_cell, active);

        // -- 5. row-buffer stores (the boundary data for the strip below).
        //       Emitted unconditionally for every processed block, as the
        //       real kernels do (a thread does not know whether a further
        //       strip follows until it gets there).
        for (int k = 0; k < interm_instr; ++k) {
          clear_acc();
          bool any = false;
          for (int l = 0; l < warp_size; ++l) {
            if (processed_word[static_cast<std::size_t>(l)] < 0) continue;
            std::uint64_t col =
                static_cast<std::uint64_t>(processed_word[static_cast<std::size_t>(l)]) *
                kBlockDim;
            std::uint64_t addr =
                layout.row_buf_base +
                layout.row_buf_offset[processed_pair[static_cast<std::size_t>(l)]] +
                col * static_cast<std::uint64_t>(params.interm_cell_bytes) +
                static_cast<std::uint64_t>(k) * 4;
            acc[static_cast<std::size_t>(l)] = MemAccess{addr, 4};
            any = true;
          }
          if (any) warp.global_write(acc);
        }
      }

      // Result writeback: one 16 B record per pair, warp-wide.
      clear_acc();
      for (int l = 0; l < warp_size; ++l) {
        LaneState& ls = lanes[static_cast<std::size_t>(l)];
        if (!ls.valid) continue;
        acc[static_cast<std::size_t>(l)] =
            MemAccess{res_mem.base + static_cast<std::uint64_t>(ls.pair) * 16, 16};
      }
      warp.global_write(acc);
    }
  });

  device.free(q_mem);
  device.free(r_mem);
  device.free(row_mem);
  device.free(res_mem);
  if (extra_mem.size != 0) device.free(extra_mem);

  KernelResult out;
  out.results = std::move(results);
  out.stats = result.stats;
  out.time = result.time;
  out.launches = 1;
  return out;
}

}  // namespace saloba::kernels
