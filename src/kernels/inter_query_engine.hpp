// The inter-query parallel seed-extension engine (paper Sec. II-B): one CUDA
// thread owns one (query, reference) pair and sweeps its DP table in 8×8
// blocks, strip by strip, keeping the strip's bottom boundary row in global
// memory. GASAL2, NVBIO, SOAP3-dp and CUSHAW2-GPU all follow this strategy;
// they differ in packing width, intermediate-cell format, input cache path,
// startup cost and memory footprint — captured by InterQueryParams.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "kernels/kernel_iface.hpp"

namespace saloba::kernels {

struct InterQueryParams {
  KernelInfo info;
  seq::Packing packing = seq::Packing::k4Bit;
  std::uint64_t instr_per_cell = 8;
  /// Bytes per stored intermediate boundary cell. 4 = (int16 H, int16 F)
  /// as in GASAL2/Table I; 2 = CUSHAW2's compacted format (two cells share a
  /// 4-byte store).
  int interm_cell_bytes = 4;
  /// Inputs fetched through the texture/read-only cache (CUSHAW2-GPU).
  bool texture_inputs = false;
  int threads_per_block = 128;
  /// One-time initialisation traffic (cudaMemset of staging buffers):
  /// GASAL2's fixed startup overhead that dominates at 64 bp (Sec. V-C).
  std::function<std::uint64_t(const seq::PairBatch&)> init_bytes;
  /// Extra per-batch device footprint beyond packed inputs + row buffers
  /// (e.g. NVBIO's full-matrix staging). Drives DeviceOomError failures.
  std::function<std::uint64_t(const seq::PairBatch&)> extra_footprint;
};

KernelResult run_inter_query(gpusim::Device& device, const seq::PairBatch& batch,
                             const align::ScoringScheme& scoring,
                             const InterQueryParams& params);

/// An ExtensionKernel wrapper around run_inter_query.
class InterQueryKernel final : public ExtensionKernel {
 public:
  explicit InterQueryKernel(InterQueryParams params) : params_(std::move(params)) {}
  const KernelInfo& info() const override { return params_.info; }
  KernelResult run(gpusim::Device& device, const seq::PairBatch& batch,
                   const align::ScoringScheme& scoring) const override {
    return run_inter_query(device, batch, scoring, params_);
  }

 private:
  InterQueryParams params_;
};

}  // namespace saloba::kernels
