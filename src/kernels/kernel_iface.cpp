#include "kernels/kernel_iface.hpp"

// Factories live in registry.cpp; this TU only anchors the vtable.

namespace saloba::kernels {

}  // namespace saloba::kernels
