// Common interface for all simulated seed-extension kernels (paper Table II
// plus SALoBa). Every kernel:
//   * functionally computes local-alignment results for a batch of
//     (query, reference) pairs — verified against the CPU reference, and
//   * reports the execution events a CUDA implementation of its strategy
//     would generate, from which gpusim estimates time.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "gpusim/device.hpp"
#include "seq/packed_seq.hpp"
#include "seq/sequence.hpp"

namespace saloba::kernels {

/// Thrown when a kernel cannot process a batch for a structural reason
/// (e.g. ADEPT's 1024 bp limit). Device-memory failures throw
/// gpusim::DeviceOomError instead; both reproduce the paper's
/// "fail to run" annotations.
class KernelUnsupportedError : public std::runtime_error {
 public:
  explicit KernelUnsupportedError(const std::string& what) : std::runtime_error(what) {}
};

struct KernelResult {
  std::vector<align::AlignmentResult> results;
  gpusim::KernelStats stats;
  gpusim::TimeBreakdown time;
  std::uint64_t launches = 1;
};

/// Metadata matching the columns of paper Table II.
struct KernelInfo {
  std::string name;
  std::string parallelism;  ///< "inter-query" or "intra-query"
  int bitwidth = 4;
  std::string mapping = "one-to-one";
  /// False for 2-bit kernels that randomise N bases (results may diverge
  /// from the 4/8-bit reference on inputs containing N).
  bool exact_with_n = true;
  /// Structural maximum sequence length (SIZE_MAX = unbounded).
  std::size_t max_len = static_cast<std::size_t>(-1);
};

class ExtensionKernel {
 public:
  virtual ~ExtensionKernel() = default;
  virtual const KernelInfo& info() const = 0;
  /// Runs the batch on the simulated device. Throws KernelUnsupportedError
  /// or gpusim::DeviceOomError when the strategy cannot handle the batch.
  virtual KernelResult run(gpusim::Device& device, const seq::PairBatch& batch,
                           const align::ScoringScheme& scoring) const = 0;
};

using KernelPtr = std::unique_ptr<ExtensionKernel>;

/// Factory for every kernel in the comparison set, in paper Table II order
/// with SALoBa last. `make_kernel` accepts the names listed by
/// `kernel_names()` ("gasal2", "saloba", "saloba-sw8", ...) and throws
/// std::invalid_argument naming the valid kernels on a miss.
/// `nominal_pairs` reproduces the paper's batch size (5,000 reads per
/// kernel call, Sec. V-B) for device-memory footprint checks even when the
/// simulated batch is smaller; 0 = use the actual batch size.
std::vector<KernelPtr> make_all_kernels();
KernelPtr make_kernel(const std::string& name, std::size_t nominal_pairs = 0);
std::vector<std::string> kernel_names();

/// Registry factory signature: builds the kernel with the given nominal
/// batch size for footprint checks.
using KernelFactory = std::function<KernelPtr(std::size_t nominal_pairs)>;

/// Self-registration handle for `make_kernel`: construct one at namespace
/// scope in the kernel's TU. `rank` fixes the position in `kernel_names()`
/// (paper Table II order, SALoBa variants last).
class KernelRegistrar {
 public:
  KernelRegistrar(std::string canonical, std::vector<std::string> aliases, int rank,
                  KernelFactory factory);
};

}  // namespace saloba::kernels
