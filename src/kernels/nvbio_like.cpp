// NVBIO-like kernel (paper refs [3]): NVIDIA's bioinformatics component
// library. Inter-query, flexible packing (we model its 4-bit path), very low
// startup cost — which is why it is the only baseline faster than SALoBa at
// 64 bp (Sec. V-B) — but a heavier intermediate format (8 B per boundary
// cell: H and E stored as separate int words) and a large per-batch staging
// matrix that exhausts device memory at long lengths (Fig. 6 (b)/(d):
// "bounded device memory").
#include "kernels/baselines.hpp"
#include "kernels/block_dp.hpp"
#include "kernels/inter_query_engine.hpp"

namespace saloba::kernels {

KernelPtr make_nvbio_like(std::size_t nominal_pairs) {
  InterQueryParams p;
  p.info.name = "NVBIO";
  p.info.parallelism = "inter-query";
  p.info.bitwidth = 4;  // library supports 2/4/8; the DNA path uses 4
  p.info.mapping = "one-to-many";
  p.info.exact_with_n = true;
  p.packing = seq::Packing::k4Bit;
  p.instr_per_cell = kInstrPerCellInter;  // well-tuned inner loop, like GASAL2
  p.interm_cell_bytes = 8;                // but a fatter intermediate format
  p.init_bytes = [](const seq::PairBatch& batch) {
    return static_cast<std::uint64_t>(batch.size()) * 256;  // negligible setup
  };
  p.extra_footprint = [nominal_pairs](const seq::PairBatch& batch) {
    // Checkpoint matrix staging: 2 B per DP cell at maximum dimensions.
    std::size_t pairs = std::max(nominal_pairs, batch.size());
    std::uint64_t n = batch.max_ref_len();
    std::uint64_t m = batch.max_query_len();
    return static_cast<std::uint64_t>(pairs) * n * m * 2;
  };
  return std::make_unique<InterQueryKernel>(std::move(p));
}


namespace {
const KernelRegistrar reg_nvbio{"nvbio", {}, 30, &make_nvbio_like};
}  // namespace

}  // namespace saloba::kernels
