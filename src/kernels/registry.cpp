// The kernel name→factory registry. Kernels self-register via
// KernelRegistrar from their own TUs (see e.g. gasal2_like.cpp,
// saloba_kernel.cpp); this TU only hosts the registry instance and the
// public lookup functions.
#include "kernels/kernel_iface.hpp"
#include "util/registry.hpp"

namespace saloba::kernels {
namespace {

using Registry = util::NamedRegistry<KernelFactory>;

Registry& registry() {
  // Function-local static: safe to use from registrars in other TUs
  // regardless of static-initialization order.
  static Registry instance("kernel");
  return instance;
}

}  // namespace

KernelRegistrar::KernelRegistrar(std::string canonical, std::vector<std::string> aliases,
                                 int rank, KernelFactory factory) {
  registry().add({std::move(canonical), std::move(aliases), std::move(factory), rank});
}

std::vector<std::string> kernel_names() { return registry().names(); }

KernelPtr make_kernel(const std::string& name, std::size_t nominal_pairs) {
  return registry().at(name).factory(nominal_pairs);
}

std::vector<KernelPtr> make_all_kernels() {
  // Table II order, SALoBa last (the paper's comparison set; the subwarp
  // and ablation variants are addressable by name but not part of it).
  std::vector<KernelPtr> out;
  for (const char* name :
       {"soap3-dp", "cushaw2-gpu", "nvbio", "gasal2", "sw#", "adept", "saloba"}) {
    out.push_back(make_kernel(name));
  }
  return out;
}

}  // namespace saloba::kernels
