#include <map>

#include "kernels/baselines.hpp"
#include "kernels/kernel_iface.hpp"
#include "kernels/saloba_kernel.hpp"
#include "util/check.hpp"

namespace saloba::kernels {
namespace {

/// The paper's nominal batch size (5,000 reads per kernel call, Sec. V-B):
/// used by benches so device-memory failures reproduce even with scaled-down
/// simulated batches. Tests pass nominal = 0.
KernelPtr build(const std::string& name, std::size_t nominal) {
  if (name == "soap3-dp" || name == "soap3dp") return make_soap3dp_like(nominal);
  if (name == "cushaw2-gpu" || name == "cushaw2") return make_cushaw2_like(nominal);
  if (name == "nvbio") return make_nvbio_like(nominal);
  if (name == "gasal2") return make_gasal2_like(nominal);
  if (name == "sw#" || name == "swsharp") return make_swsharp_like(nominal);
  if (name == "adept") return make_adept_like(nominal);
  if (name == "saloba") return make_saloba(SalobaConfig{}, nominal);
  SalobaConfig cfg;
  if (name == "saloba-intra") {
    cfg.subwarp_size = 32;
    cfg.lazy_spill = false;
    return make_saloba(cfg, nominal);
  }
  if (name == "saloba-lazy") {
    cfg.subwarp_size = 32;
    cfg.name = "SALoBa-lazy";
    return make_saloba(cfg, nominal);
  }
  if (name == "saloba-sw8") {
    cfg.subwarp_size = 8;
    return make_saloba(cfg, nominal);
  }
  if (name == "saloba-sw16") {
    cfg.subwarp_size = 16;
    return make_saloba(cfg, nominal);
  }
  if (name == "saloba-sw32") {
    cfg.subwarp_size = 32;
    cfg.name = "SALoBa-sw32";
    return make_saloba(cfg, nominal);
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> kernel_names() {
  return {"soap3-dp", "cushaw2-gpu", "nvbio",      "gasal2",
          "sw#",      "adept",       "saloba",     "saloba-intra",
          "saloba-lazy", "saloba-sw8", "saloba-sw16", "saloba-sw32"};
}

KernelPtr make_kernel(const std::string& name) {
  KernelPtr k = build(name, 0);
  SALOBA_CHECK_MSG(k != nullptr, "unknown kernel name: " << name);
  return k;
}

std::vector<KernelPtr> make_all_kernels() {
  // Table II order, SALoBa last.
  std::vector<KernelPtr> out;
  for (const char* name :
       {"soap3-dp", "cushaw2-gpu", "nvbio", "gasal2", "sw#", "adept", "saloba"}) {
    out.push_back(make_kernel(name));
  }
  return out;
}

}  // namespace saloba::kernels
