#include "kernels/saloba_kernel.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "kernels/block_dp.hpp"
#include "util/check.hpp"

namespace saloba::kernels {
namespace {

using align::AlignmentResult;
using align::Score;
using gpusim::MemAccess;
using gpusim::SharedAccess;
using seq::BaseCode;

constexpr int kWarpSize = 32;
/// Shared memory per warp: the paper's 2 · dim(block) · #threads =
/// 2 · 32 B · 32 (Sec. IV-B) — handoff slots + spill trail, double-buffered.
constexpr std::size_t kSharedBytesPerWarp = 2ull * 32 * kWarpSize;
/// SALoBa's own staging memset per pair (much leaner than GASAL2's).
constexpr std::uint64_t kInitBytesPerPair = 4 << 10;

/// State of one subwarp working through its queue of pairs.
struct SubwarpState {
  // Queue position: pairs are dealt round-robin over all subwarps.
  std::size_t next_pair = 0;  // index into this subwarp's arithmetic sequence
  bool pair_active = false;
  bool exhausted = false;

  // Current pair.
  std::size_t pair = 0;
  std::size_t band = 0;  // effective band of this pair (0 = full table)
  int q_words = 0;
  int n_strips = 0;
  int n_chunks = 0;
  int chunk = 0;
  int chunk_lanes = 0;  // lanes active in this chunk (short last chunk)
  int t = 0;            // step within the chunk

  // Functional chunk-boundary row (the global-memory spill target):
  // H and F of the bottom row of the previous chunk, per query column.
  std::vector<Score> bound_h, bound_f;

  // Per-lane persistent registers.
  std::array<std::array<Score, kBlockDim>, kWarpSize> left_h{}, left_e{};
  std::array<Score, kWarpSize> corner{};  // H(top-left) carried from last step

  // Handoff slots: bottom row of the block lane l processed last step.
  std::array<std::array<Score, kBlockDim>, kWarpSize> hand_h{}, hand_f{};

  AlignmentResult best;
};

struct Addressing {
  std::uint64_t query_base = 0, ref_base = 0, bound_base = 0, result_base = 0;
  std::vector<std::uint64_t> q_off, r_off, b_off;  // per pair: words / bytes
};

class SalobaKernel final : public ExtensionKernel {
 public:
  SalobaKernel(SalobaConfig config, std::size_t nominal_pairs)
      : config_(config), nominal_pairs_(nominal_pairs) {
    SALOBA_CHECK_MSG(kWarpSize % config_.subwarp_size == 0 && config_.subwarp_size > 0 &&
                         config_.subwarp_size <= kWarpSize,
                     "subwarp_size must divide the warp size");
    info_.name = config_.name.empty() ? derive_name() : config_.name;
    info_.parallelism = "intra-query";
    info_.bitwidth = 4;
    info_.mapping = "one-to-one";
    info_.exact_with_n = true;
  }

  const KernelInfo& info() const override { return info_; }

  KernelResult run(gpusim::Device& device, const seq::PairBatch& batch,
                   const align::ScoringScheme& scoring) const override;

 private:
  std::string derive_name() const {
    std::string n = "SALoBa";
    if (!config_.lazy_spill) return n + "-intra";  // ablation: no lazy spill
    if (config_.subwarp_size != kWarpSize) {
      n += "-sw" + std::to_string(config_.subwarp_size);
    }
    if (config_.full_warp_spill) n += "-fw";
    if (config_.band > 0) n += "-band" + std::to_string(config_.band);
    return n;
  }

  SalobaConfig config_;
  std::size_t nominal_pairs_;
  KernelInfo info_;
};

KernelResult SalobaKernel::run(gpusim::Device& device, const seq::PairBatch& batch,
                               const align::ScoringScheme& scoring) const {
  const std::size_t pairs = batch.size();
  SALOBA_CHECK_MSG(pairs > 0, "empty batch");
  const int S = config_.subwarp_size;
  const int G = kWarpSize / S;  // subwarps per warp

  // ---- Device footprint ------------------------------------------------
  Addressing addr;
  addr.q_off.resize(pairs);
  addr.r_off.resize(pairs);
  addr.b_off.resize(pairs);
  std::uint64_t q_words = 0, r_words = 0, bound_bytes = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    addr.q_off[p] = q_words;
    addr.r_off[p] = r_words;
    addr.b_off[p] = bound_bytes;
    q_words += (batch.queries[p].size() + 7) / 8;  // 4-bit: 8 bases per word
    r_words += (batch.refs[p].size() + 7) / 8;
    bound_bytes += batch.queries[p].size() * 4;  // one (H,F) cell per column
  }
  gpusim::DeviceMem q_mem = device.alloc(q_words * 4, "saloba.query");
  gpusim::DeviceMem r_mem = device.alloc(r_words * 4, "saloba.ref");
  gpusim::DeviceMem b_mem = device.alloc(bound_bytes, "saloba.bounds");
  gpusim::DeviceMem res_mem = device.alloc(pairs * 16, "saloba.results");
  addr.query_base = q_mem.base;
  addr.ref_base = r_mem.base;
  addr.bound_base = b_mem.base;
  addr.result_base = res_mem.base;

  // ---- Launch geometry ---------------------------------------------------
  const std::size_t total_subwarps = std::max<std::size_t>(
      1, std::min(pairs, static_cast<std::size_t>(1) << 20));
  const std::size_t warps =
      (total_subwarps + static_cast<std::size_t>(G) - 1) / static_cast<std::size_t>(G);
  const int wpb = config_.warps_per_block;
  gpusim::LaunchConfig config;
  config.label = info_.name;
  config.blocks = static_cast<std::uint32_t>((warps + wpb - 1) / static_cast<std::size_t>(wpb));
  config.threads_per_block = wpb * kWarpSize;
  // Sec. IV-C full-warp spilling allocates S+32 slots per subwarp instead
  // of the 2S double buffer, so the whole warp can gather 32-slot bursts.
  std::size_t shared_per_warp =
      (config_.full_warp_spill && S < kWarpSize)
          ? static_cast<std::size_t>(G) * static_cast<std::size_t>(S + 32) * 32
          : kSharedBytesPerWarp;
  config.shared_bytes_per_block = static_cast<std::size_t>(wpb) * shared_per_warp;
  config.init_bytes =
      std::max(nominal_pairs_, pairs) * kInitBytesPerPair;

  std::vector<AlignmentResult> results(pairs);

  auto result = device.launch(config, [&](gpusim::BlockContext& blk) {
    for (int w = 0; w < wpb; ++w) {
      const std::size_t warp_id =
          static_cast<std::size_t>(blk.block_id()) * static_cast<std::size_t>(wpb) +
          static_cast<std::size_t>(w);
      if (warp_id * static_cast<std::size_t>(G) >= total_subwarps) break;
      gpusim::WarpContext& warp = blk.warp(w);

      std::array<SubwarpState, 4> subs;  // G <= 4
      for (int g = 0; g < G; ++g) {
        std::size_t sw_id = warp_id * static_cast<std::size_t>(G) + static_cast<std::size_t>(g);
        subs[static_cast<std::size_t>(g)].exhausted = sw_id >= total_subwarps;
        subs[static_cast<std::size_t>(g)].next_pair = sw_id;  // stride = total_subwarps
      }

      std::array<MemAccess, 32> mem_acc;
      std::array<SharedAccess, 32> shm_acc;

      // --- helpers -------------------------------------------------------
      auto start_next_pair = [&](SubwarpState& sw) {
        while (sw.next_pair < pairs) {
          std::size_t p = sw.next_pair;
          sw.next_pair += total_subwarps;
          if (batch.queries[p].empty() || batch.refs[p].empty()) {
            results[p] = AlignmentResult{};
            continue;
          }
          sw.pair = p;
          sw.pair_active = true;
          // Per-pair band channel wins; the kernel-wide config band is the
          // fallback. Block-granular skipping + in-block cell masking keep
          // results bit-identical to smith_waterman_banded at this band.
          sw.band = batch.band_of(p) != 0 ? batch.band_of(p) : config_.band;
          sw.q_words = static_cast<int>((batch.queries[p].size() + 7) / 8);
          sw.n_strips = static_cast<int>((batch.refs[p].size() + 7) / 8);
          sw.n_chunks = (sw.n_strips + S - 1) / S;
          sw.chunk = 0;
          sw.chunk_lanes = std::min(S, sw.n_strips);
          sw.t = 0;
          sw.bound_h.assign(batch.queries[p].size(), 0);
          sw.bound_f.assign(batch.queries[p].size(), kBoundaryNegInf);
          sw.best = AlignmentResult{};
          for (int l = 0; l < S; ++l) {
            sw.left_h[static_cast<std::size_t>(l)].fill(0);
            sw.left_e[static_cast<std::size_t>(l)].fill(kBoundaryNegInf);
            sw.corner[static_cast<std::size_t>(l)] = 0;
          }
          return;
        }
        sw.pair_active = false;
        sw.exhausted = true;
      };

      for (int g = 0; g < G; ++g) {
        if (!subs[static_cast<std::size_t>(g)].exhausted) {
          start_next_pair(subs[static_cast<std::size_t>(g)]);
        }
      }

      // --- warp-synchronous step loop -------------------------------------
      for (;;) {
        bool any = false;
        for (int g = 0; g < G; ++g) {
          if (subs[static_cast<std::size_t>(g)].pair_active) any = true;
        }
        if (!any) break;

        int active_total = 0;
        mem_acc.fill(MemAccess{});
        // Pass 1 per subwarp: chunk-start events + collect per-lane query
        // word accesses; Pass 2 does the functional DP.
        for (int g = 0; g < G; ++g) {
          SubwarpState& sw = subs[static_cast<std::size_t>(g)];
          if (!sw.pair_active) continue;
          const int steps_this_chunk = sw.q_words + sw.chunk_lanes - 1;
          SALOBA_DCHECK(sw.t < steps_this_chunk);
          (void)steps_this_chunk;

          // Chunk start: each lane fetches its strip's reference word
          // (consecutive words — coalesced), and with lazy spilling the
          // first boundary burst is prefetched.
          if (sw.t == 0) {
            std::array<MemAccess, 32> racc;
            racc.fill(MemAccess{});
            for (int l = 0; l < sw.chunk_lanes; ++l) {
              std::uint64_t word = static_cast<std::uint64_t>(sw.chunk) *
                                       static_cast<std::uint64_t>(S) +
                                   static_cast<std::uint64_t>(l);
              racc[static_cast<std::size_t>(g * S + l)] =
                  MemAccess{addr.ref_base + (addr.r_off[sw.pair] + word) * 4, 4};
            }
            warp.global_read(racc);
          }

          // Boundary reads for lane 0 (only when a previous chunk exists).
          // A banded kernel knows out-of-band boundaries are the neutral
          // H = 0 / F = -inf without touching memory, so bursts whose column
          // window lies fully outside lane 0's band are never issued.
          const std::size_t lane0_i0 =
              static_cast<std::size_t>(sw.chunk) * static_cast<std::size_t>(S) * kBlockDim;
          if (sw.chunk > 0) {
            if (config_.lazy_spill) {
              // Coalesced burst every S steps: S columns ahead of lane 0.
              const int burst = (config_.full_warp_spill && S < kWarpSize) ? kWarpSize : S;
              if (sw.t % burst == 0 && sw.t < sw.q_words &&
                  block_intersects_band(lane0_i0,
                                        static_cast<std::size_t>(sw.t) * kBlockDim, kBlockDim,
                                        std::min(burst, sw.q_words - sw.t) * kBlockDim,
                                        sw.band)) {
                // Transposed burst: instruction k assigns consecutive lanes
                // to consecutive 4 B words, so each instruction is a fully
                // coalesced read of the region [t·32 B, (t+cols)·32 B).
                int cols = std::min(burst, sw.q_words - sw.t);
                std::uint64_t region =
                    addr.bound_base + addr.b_off[sw.pair] +
                    static_cast<std::uint64_t>(sw.t) * kBlockDim * 4;
                for (int k = 0; k < kBlockDim; ++k) {
                  std::array<MemAccess, 32> bacc;
                  bacc.fill(MemAccess{});
                  for (int c = 0; c < cols; ++c) {
                    std::uint64_t word = static_cast<std::uint64_t>(k) *
                                             static_cast<std::uint64_t>(cols) +
                                         static_cast<std::uint64_t>(c);
                    int lane = burst == kWarpSize ? c : g * S + c;
                    bacc[static_cast<std::size_t>(lane)] = MemAccess{region + word * 4, 4};
                  }
                  warp.global_read(bacc);
                }
              }
            } else if (sw.t < sw.q_words &&
                       block_intersects_band(lane0_i0,
                                             static_cast<std::size_t>(sw.t) * kBlockDim,
                                             kBlockDim, kBlockDim, sw.band)) {
              // Naive: lane 0 reads its block's 8 boundary cells, alone.
              for (int k = 0; k < kBlockDim; ++k) {
                std::array<MemAccess, 32> bacc;
                bacc.fill(MemAccess{});
                std::uint64_t byte =
                    (static_cast<std::uint64_t>(sw.t) * kBlockDim + static_cast<std::uint64_t>(k)) *
                    4;
                bacc[static_cast<std::size_t>(g * S)] =
                    MemAccess{addr.bound_base + addr.b_off[sw.pair] + byte, 4};
                warp.global_read(bacc);
              }
            }
          }

          // Query-word fetch for every active, in-band lane this step.
          for (int l = 0; l < sw.chunk_lanes; ++l) {
            int word = sw.t - l;
            if (word < 0 || word >= sw.q_words) continue;
            if (sw.band > 0) {
              const std::size_t i0 = (static_cast<std::size_t>(sw.chunk) * S +
                                      static_cast<std::size_t>(l)) * kBlockDim;
              const std::size_t j0 = static_cast<std::size_t>(word) * kBlockDim;
              if (!block_intersects_band(i0, j0, kBlockDim, kBlockDim, sw.band)) continue;
            }
            mem_acc[static_cast<std::size_t>(g * S + l)] = MemAccess{
                addr.query_base + (addr.q_off[sw.pair] + static_cast<std::uint64_t>(word)) * 4,
                4};
            ++active_total;
          }
        }
        // A step where every lane's block is out of band issues nothing:
        // the banded kernel advances its counters and moves on, which is
        // where the simulated time win over the full table comes from.
        if (active_total > 0) warp.global_read(mem_acc);

        // Shared-memory handoff: 8 reads + 8 writes of 4 B per active lane,
        // lane-column layout → bank = global lane id → conflict-free.
        for (int k = 0; active_total > 0 && k < kBlockDim; ++k) {
          for (int rw = 0; rw < 2; ++rw) {
            shm_acc.fill(SharedAccess{});
            for (int g = 0; g < G; ++g) {
              SubwarpState& sw = subs[static_cast<std::size_t>(g)];
              if (!sw.pair_active) continue;
              for (int l = 0; l < sw.chunk_lanes; ++l) {
                int word = sw.t - l;
                if (word < 0 || word >= sw.q_words) continue;
                if (sw.band > 0 &&
                    !block_intersects_band(
                        (static_cast<std::size_t>(sw.chunk) * S + static_cast<std::size_t>(l)) *
                            kBlockDim,
                        static_cast<std::size_t>(word) * kBlockDim, kBlockDim, kBlockDim,
                        sw.band)) {
                  continue;  // masked-off lanes skip the handoff machinery
                }
                int lane_global = g * S + l;
                // reads come from the neighbour's column (lane-1), writes
                // go to the lane's own column; both stay conflict-free.
                int col = rw == 0 ? std::max(0, lane_global - 1) : lane_global;
                std::uint32_t off =
                    (static_cast<std::uint32_t>((sw.t % 2) * kBlockDim + k) * 32 +
                     static_cast<std::uint32_t>(col)) *
                    4;
                shm_acc[static_cast<std::size_t>(lane_global)] = SharedAccess{off, 4};
              }
            }
            warp.shared_access(shm_acc);
          }
        }

        // The block DP issue slots for this step.
        if (active_total > 0) warp.issue(64 * kInstrPerCellIntra, active_total);

        // ---- Functional pass: lanes descending so handoff reads see the
        // previous step's values.
        for (int g = 0; g < G; ++g) {
          SubwarpState& sw = subs[static_cast<std::size_t>(g)];
          if (!sw.pair_active) continue;
          const auto& query = batch.queries[sw.pair];
          const auto& ref = batch.refs[sw.pair];

          for (int l = sw.chunk_lanes - 1; l >= 0; --l) {
            int word = sw.t - l;
            if (word < 0 || word >= sw.q_words) continue;
            const int strip = sw.chunk * S + l;
            const std::size_t i0 = static_cast<std::size_t>(strip) * kBlockDim;
            const std::size_t j0 = static_cast<std::size_t>(word) * kBlockDim;
            const int rh = static_cast<int>(std::min<std::size_t>(kBlockDim, ref.size() - i0));
            const int qw =
                static_cast<int>(std::min<std::size_t>(kBlockDim, query.size() - j0));

            if (!block_intersects_band(i0, j0, rh, qw, sw.band)) {
              // Out-of-band block: every cell would mask to the neutral
              // boundary values, so publish them directly — the in-band
              // frontier sees H = 0 / E,F = -inf, and the lane's left carry
              // is reset for band re-entry.
              for (int k = 0; k < kBlockDim; ++k) {
                sw.hand_h[static_cast<std::size_t>(l)][k] = 0;
                sw.hand_f[static_cast<std::size_t>(l)][k] = kBoundaryNegInf;
                sw.left_h[static_cast<std::size_t>(l)][k] = 0;
                sw.left_e[static_cast<std::size_t>(l)][k] = kBoundaryNegInf;
              }
              // The corner carry must still track the *published* top row:
              // H(i0-1, j0+qw-1) can be in band even when this block is not
              // (the band edge passes just above), and the next block's
              // diagonal reads it.
              if (l == 0) {
                sw.corner[static_cast<std::size_t>(l)] =
                    sw.chunk == 0 ? 0 : sw.bound_h[j0 + static_cast<std::size_t>(qw - 1)];
              } else {
                sw.corner[static_cast<std::size_t>(l)] =
                    sw.hand_h[static_cast<std::size_t>(l - 1)][qw - 1];
              }
              if (l == sw.chunk_lanes - 1 && sw.chunk + 1 < sw.n_chunks) {
                for (int k = 0; k < qw; ++k) {
                  sw.bound_h[j0 + static_cast<std::size_t>(k)] = 0;
                  sw.bound_f[j0 + static_cast<std::size_t>(k)] = kBoundaryNegInf;
                }
              }
              if (word == sw.q_words - 1) {
                sw.left_h[static_cast<std::size_t>(l)].fill(0);
                sw.left_e[static_cast<std::size_t>(l)].fill(kBoundaryNegInf);
                sw.corner[static_cast<std::size_t>(l)] = 0;
              }
              warp.add_skipped_cells(static_cast<std::uint64_t>(rh) *
                                     static_cast<std::uint64_t>(qw));
              continue;
            }

            BlockBoundary bound;
            if (l == 0) {
              for (int k = 0; k < qw; ++k) {
                if (sw.chunk == 0) {
                  bound.top_h[k] = 0;
                  bound.top_f[k] = kBoundaryNegInf;
                } else {
                  bound.top_h[k] = sw.bound_h[j0 + static_cast<std::size_t>(k)];
                  bound.top_f[k] = sw.bound_f[j0 + static_cast<std::size_t>(k)];
                }
              }
            } else {
              for (int k = 0; k < qw; ++k) {
                bound.top_h[k] = sw.hand_h[static_cast<std::size_t>(l - 1)][k];
                bound.top_f[k] = sw.hand_f[static_cast<std::size_t>(l - 1)][k];
              }
            }
            for (int k = 0; k < rh; ++k) {
              bound.left_h[k] = sw.left_h[static_cast<std::size_t>(l)][k];
              bound.left_e[k] = sw.left_e[static_cast<std::size_t>(l)][k];
            }
            bound.diag_h = (word == 0) ? 0 : sw.corner[static_cast<std::size_t>(l)];

            // Carry the top-right H as next step's diagonal (register pass,
            // Sec. IV-A: "the number of cells stored in the register
            // becomes nine instead of eight").
            sw.corner[static_cast<std::size_t>(l)] = bound.top_h[std::max(0, qw - 1)];

            BlockOutput out;
            const std::uint64_t computed = block_dp_banded(
                ref.data() + i0, query.data() + j0, rh, qw, i0, j0, sw.band, bound, scoring,
                out);
            align::take_better(sw.best, out.best);
            warp.add_cells(computed);
            warp.add_skipped_cells(static_cast<std::uint64_t>(rh) *
                                       static_cast<std::uint64_t>(qw) -
                                   computed);

            for (int k = 0; k < rh; ++k) {
              sw.left_h[static_cast<std::size_t>(l)][k] = out.right_h[k];
              sw.left_e[static_cast<std::size_t>(l)][k] = out.right_e[k];
            }
            for (int k = 0; k < qw; ++k) {
              sw.hand_h[static_cast<std::size_t>(l)][k] = out.bottom_h[k];
              sw.hand_f[static_cast<std::size_t>(l)][k] = out.bottom_f[k];
            }

            // The chunk's last lane produces the boundary row for the chunk
            // below.
            if (l == sw.chunk_lanes - 1 && sw.chunk + 1 < sw.n_chunks) {
              for (int k = 0; k < qw; ++k) {
                sw.bound_h[j0 + static_cast<std::size_t>(k)] = out.bottom_h[k];
                sw.bound_f[j0 + static_cast<std::size_t>(k)] = out.bottom_f[k];
              }
              // Spill traffic.
              if (config_.lazy_spill) {
                const int wburst =
                    (config_.full_warp_spill && S < kWarpSize) ? kWarpSize : S;
                bool trail_full = (word + 1) % wburst == 0 || word + 1 == sw.q_words;
                if (trail_full) {
                  // Transposed coalesced burst, mirroring the read side.
                  int cols = (word % wburst) + 1;
                  int first_col = word + 1 - cols;
                  std::uint64_t region =
                      addr.bound_base + addr.b_off[sw.pair] +
                      static_cast<std::uint64_t>(first_col) * kBlockDim * 4;
                  for (int k = 0; k < kBlockDim; ++k) {
                    std::array<MemAccess, 32> sacc;
                    sacc.fill(MemAccess{});
                    for (int c = 0; c < cols; ++c) {
                      std::uint64_t word_idx = static_cast<std::uint64_t>(k) *
                                                   static_cast<std::uint64_t>(cols) +
                                               static_cast<std::uint64_t>(c);
                      int lane = wburst == kWarpSize ? c : g * S + c;
                      sacc[static_cast<std::size_t>(lane)] = MemAccess{region + word_idx * 4, 4};
                    }
                    warp.global_write(sacc);
                  }
                }
              } else {
                for (int k = 0; k < kBlockDim; ++k) {
                  std::array<MemAccess, 32> sacc;
                  sacc.fill(MemAccess{});
                  std::uint64_t byte = (static_cast<std::uint64_t>(word) * kBlockDim +
                                        static_cast<std::uint64_t>(k)) *
                                       4;
                  sacc[static_cast<std::size_t>(g * S + sw.chunk_lanes - 1)] =
                      MemAccess{addr.bound_base + addr.b_off[sw.pair] + byte, 4};
                  warp.global_write(sacc);
                }
              }
            }

            // Reset the left boundary when a lane starts a fresh row.
            if (word == sw.q_words - 1) {
              sw.left_h[static_cast<std::size_t>(l)].fill(0);
              sw.left_e[static_cast<std::size_t>(l)].fill(kBoundaryNegInf);
              sw.corner[static_cast<std::size_t>(l)] = 0;
            }
          }

          // Advance the subwarp's step / chunk / pair state.
          if (++sw.t == sw.q_words + sw.chunk_lanes - 1) {
            sw.t = 0;
            if (++sw.chunk == sw.n_chunks) {
              results[sw.pair] = sw.best;
              // Result writeback: a single-lane 16 B store.
              std::array<MemAccess, 32> racc;
              racc.fill(MemAccess{});
              racc[static_cast<std::size_t>(g * S)] = MemAccess{
                  addr.result_base + static_cast<std::uint64_t>(sw.pair) * 16, 16};
              warp.global_write(racc);
              start_next_pair(sw);
            } else {
              sw.chunk_lanes = std::min(S, sw.n_strips - sw.chunk * S);
            }
          }
        }
      }
    }
  });

  device.free(q_mem);
  device.free(r_mem);
  device.free(b_mem);
  device.free(res_mem);

  KernelResult out;
  out.results = std::move(results);
  out.stats = result.stats;
  out.time = result.time;
  out.launches = 1;
  return out;
}

}  // namespace

KernelPtr make_saloba(const SalobaConfig& config, std::size_t nominal_pairs) {
  return std::make_unique<SalobaKernel>(config, nominal_pairs);
}

namespace {

KernelFactory saloba_factory(SalobaConfig cfg) {
  return [cfg](std::size_t nominal) { return make_saloba(cfg, nominal); };
}

SalobaConfig variant(int subwarp, bool lazy, std::string name = "") {
  SalobaConfig cfg;
  cfg.subwarp_size = subwarp;
  cfg.lazy_spill = lazy;
  cfg.name = std::move(name);
  return cfg;
}

// The default config plus the Fig. 7 ablation steps and Fig. 5 subwarp
// sweep, ranked after the Table II comparison set.
const KernelRegistrar reg_saloba{"saloba", {}, 70, saloba_factory(SalobaConfig{})};
const KernelRegistrar reg_intra{"saloba-intra", {}, 80, saloba_factory(variant(32, false))};
const KernelRegistrar reg_lazy{"saloba-lazy", {}, 90,
                               saloba_factory(variant(32, true, "SALoBa-lazy"))};
const KernelRegistrar reg_sw8{"saloba-sw8", {}, 100, saloba_factory(variant(8, true))};
const KernelRegistrar reg_sw16{"saloba-sw16", {}, 110, saloba_factory(variant(16, true))};
const KernelRegistrar reg_sw32{"saloba-sw32", {}, 120,
                               saloba_factory(variant(32, true, "SALoBa-sw32"))};

}  // namespace

}  // namespace saloba::kernels
