// The SALoBa kernel (paper Sec. IV): intra-query parallelism with one
// (sub)warp per query, chunk/strip/block decomposition with a
// prologue–main-loop–epilogue wavefront (Fig. 3), lazy spilling of chunk
// boundary rows through double-buffered shared memory (Fig. 4), and subwarp
// scheduling to trade prologue/epilogue underutilisation against workload
// imbalance (Fig. 5).
#pragma once

#include <cstddef>
#include <string>

#include "kernels/kernel_iface.hpp"

namespace saloba::kernels {

struct SalobaConfig {
  /// Threads collaborating on one query: 32 = full warp (the paper's first
  /// version), 16 or 8 = subwarp scheduling. Must divide the warp size.
  int subwarp_size = 8;
  /// False reproduces the ablation step "Intra-query Par." (Fig. 7): chunk
  /// boundaries go straight to global memory from the last thread, one
  /// 4-byte cell store at a time (Fig. 4 left).
  bool lazy_spill = true;
  /// Sec. IV-C's pre-Volta fix for subwarp spilling: allocate N+32 shared
  /// slots per subwarp and let the *entire warp* spill 32 slots together,
  /// recovering full 128-byte coalescing at the cost of extra shared
  /// memory. No effect when subwarp_size == 32 or lazy_spill is off.
  bool full_warp_spill = false;
  /// Banded extension (Sec. VII-B): when > 0, 8x8 blocks fully outside
  /// |i - j| <= band are skipped and in-band blocks mask their out-of-band
  /// cells, so results are bit-identical to align::smith_waterman_banded at
  /// the same band. Boundaries feeding skipped blocks read as out-of-band
  /// (H = 0, E/F = -inf). 0 = full table. A per-pair band on the batch
  /// (seq::PairBatch::band_of) overrides this kernel-wide default; skipped
  /// work is reported in KernelStats dp_cells_skipped.
  std::size_t band = 0;
  int warps_per_block = 4;
  /// Display name override; empty derives one from the parameters.
  std::string name;
};

KernelPtr make_saloba(const SalobaConfig& config = {}, std::size_t nominal_pairs = 0);

}  // namespace saloba::kernels
