// SOAP3-dp-like kernel (paper refs [39],[50]): an early inter-query
// short-read extension kernel. 2-bit packing (N bases substituted — quality
// trade-off noted in Sec. VI-B), a dated per-cell implementation, and
// length-proportional working buffers that exceed small-device memory for
// long inputs (the paper's dataset-A failure on GTX1650 and the long-length
// failures in Fig. 6 (b)).
#include "kernels/baselines.hpp"
#include "kernels/block_dp.hpp"
#include "kernels/inter_query_engine.hpp"

namespace saloba::kernels {

KernelPtr make_soap3dp_like(std::size_t nominal_pairs) {
  InterQueryParams p;
  p.info.name = "SOAP3-dp";
  p.info.parallelism = "inter-query";
  p.info.bitwidth = 2;
  p.info.mapping = "one-to-one";
  p.info.exact_with_n = false;  // 2-bit: N bases are substituted
  p.packing = seq::Packing::k2Bit;
  p.instr_per_cell = kInstrPerCellInter + 8;  // pre-GASAL2-era inner loop
  p.interm_cell_bytes = 4;
  p.init_bytes = [nominal_pairs](const seq::PairBatch& batch) {
    // Per-batch staging clears, between NVBIO's negligible setup and
    // GASAL2's heavyweight one.
    std::size_t pairs = std::max(nominal_pairs, batch.size());
    return static_cast<std::uint64_t>(pairs) * (24 << 10);
  };
  p.extra_footprint = [nominal_pairs](const seq::PairBatch& batch) {
    // Working buffers sized by the longest sequence in the batch: 1 KiB per
    // base per pair (DP band states, traceback staging).
    std::size_t pairs = std::max(nominal_pairs, batch.size());
    std::uint64_t max_len = std::max(batch.max_ref_len(), batch.max_query_len());
    return static_cast<std::uint64_t>(pairs) * max_len * 1024;
  };
  return std::make_unique<InterQueryKernel>(std::move(p));
}


namespace {
const KernelRegistrar reg_soap3dp{"soap3-dp", {"soap3dp"}, 10, &make_soap3dp_like};
}  // namespace

}  // namespace saloba::kernels
