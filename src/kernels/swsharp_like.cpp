// SW#-like kernel (paper ref [35]): intra-query alignment built for
// genome-scale sequences. The DP table is split into square tiles; each
// anti-diagonal wave of tiles is one kernel launch, with tile boundary rows
// and columns exchanged through global-memory buses (the CUDAlign
// horizontal/vertical bus design). For seed-extension-sized batches this is
// pathological — thousands of short pairs × several launches each, at
// single-digit block occupancy — which is exactly why the paper finds it the
// slowest baseline (Sec. V-B: "very low resource utilization").
#include <array>
#include <vector>

#include "kernels/baselines.hpp"
#include "kernels/block_dp.hpp"
#include "util/check.hpp"

namespace saloba::kernels {
namespace {

using align::AlignmentResult;
using align::Score;
using gpusim::MemAccess;

constexpr std::size_t kTile = 256;    ///< tile edge, in cells
constexpr int kThreadsPerTile = 256;  ///< one thread per tile column
constexpr std::uint64_t kInstrPerDiag = 12;

class SwSharpKernel final : public ExtensionKernel {
 public:
  SwSharpKernel() {
    info_.name = "SW#";
    info_.parallelism = "intra-query";
    info_.bitwidth = 8;  // kept at its original 8-bit packing (Sec. V-A)
    info_.mapping = "one-to-many";
    info_.exact_with_n = true;
  }
  const KernelInfo& info() const override { return info_; }

  KernelResult run(gpusim::Device& device, const seq::PairBatch& batch,
                   const align::ScoringScheme& scoring) const override {
    const std::size_t pairs = batch.size();
    SALOBA_CHECK_MSG(pairs > 0, "empty batch");

    gpusim::DeviceMem seq_mem =
        device.alloc((batch.max_query_len() + batch.max_ref_len() + 8) * 2, "sw#.seqs");
    gpusim::DeviceMem bus_mem =
        device.alloc((batch.max_query_len() + batch.max_ref_len()) * 16 + 64, "sw#.buses");

    std::vector<AlignmentResult> results(pairs);
    gpusim::RunAccumulator acc;
    const Score alpha = scoring.alpha();
    const Score beta = scoring.beta();
    const int warp_size = device.spec().warp_size;

    // SW# processes one pair at a time: per pair, one launch per tile wave.
    for (std::size_t p = 0; p < pairs; ++p) {
      const auto& query = batch.queries[p];
      const auto& ref = batch.refs[p];
      if (query.empty() || ref.empty()) {
        results[p] = AlignmentResult{};
        continue;
      }
      const std::size_t n = ref.size();
      const std::size_t m = query.size();
      const std::size_t tile_rows = (n + kTile - 1) / kTile;
      const std::size_t tile_cols = (m + kTile - 1) / kTile;

      // Buses between tiles: vertical bus holds (H, E) of the column just
      // left of the current tile column, per reference row; horizontal bus
      // holds (H, F) of the row just above, per query column. `corner`
      // stores H(ti·T-1, tj·T-1) for every tile, which neither bus preserves
      // (the neighbouring tiles overwrite those entries one wave earlier).
      std::vector<Score> vbus_h(n, 0), vbus_e(n, kBoundaryNegInf);
      std::vector<Score> hbus_h(m, 0), hbus_f(m, kBoundaryNegInf);
      std::vector<Score> corner((tile_rows + 1) * (tile_cols + 1), 0);
      auto corner_at = [&](std::size_t ti, std::size_t tj) -> Score& {
        return corner[ti * (tile_cols + 1) + tj];
      };
      AlignmentResult best;

      // Banded extension (Sec. VII-B): a banded SW# launches only the tiles
      // of each wave that intersect |i - j| <= band — out-of-band tiles'
      // bus rows/columns are the known neutral values (H = 0, E/F = -inf)
      // and are published host-side without a launch. band 0 = full table.
      const std::size_t pair_band = batch.band_of(p);

      const std::size_t waves = tile_rows + tile_cols - 1;
      std::vector<std::size_t> live;  // in-band tiles of a wave (ti values)
      live.reserve(tile_rows);
      for (std::size_t wave = 0; wave < waves; ++wave) {
        std::size_t ti_lo = (wave >= tile_cols) ? wave - tile_cols + 1 : 0;
        std::size_t ti_hi = std::min(tile_rows - 1, wave);

        live.clear();
        for (std::size_t ti = ti_lo; ti <= ti_hi; ++ti) {
          const std::size_t tj = wave - ti;
          const std::size_t i_base = ti * kTile;
          const std::size_t j_base = tj * kTile;
          const std::size_t rows = std::min(kTile, n - i_base);
          const std::size_t cols = std::min(kTile, m - j_base);
          if (block_intersects_band(i_base, j_base, static_cast<int>(rows),
                                    static_cast<int>(cols), pair_band)) {
            live.push_back(ti);
            continue;
          }
          // Fully out-of-band tile: publish the neutral buses it would have
          // produced (its every cell masks to H = 0 / E,F = -inf).
          for (std::size_t r = 0; r < rows; ++r) {
            vbus_h[i_base + r] = 0;
            vbus_e[i_base + r] = kBoundaryNegInf;
          }
          for (std::size_t c = 0; c < cols; ++c) {
            hbus_h[j_base + c] = 0;
            hbus_f[j_base + c] = kBoundaryNegInf;
          }
          corner_at(ti + 1, tj + 1) = 0;
          acc.stats.totals.dp_cells_skipped += rows * cols;
        }
        if (live.empty()) continue;  // whole wave out of band: nothing to launch

        std::uint32_t blocks = static_cast<std::uint32_t>(live.size());
        std::vector<AlignmentResult> wave_best(blocks);

        gpusim::LaunchConfig config;
        config.label = "SW#";
        config.blocks = blocks;
        config.threads_per_block = kThreadsPerTile;
        config.shared_bytes_per_block = kThreadsPerTile * 3 * 8;

        auto launch = device.launch(config, [&](gpusim::BlockContext& blk) {
          const std::size_t ti = live[blk.block_id()];
          const std::size_t tj = wave - ti;
          const std::size_t i_base = ti * kTile;
          const std::size_t j_base = tj * kTile;
          const std::size_t rows = std::min(kTile, n - i_base);
          const std::size_t cols = std::min(kTile, m - j_base);
          const int warps = blk.warps_per_block();

          // Bus + sequence loads: coalesced 128 B bursts by warp 0.
          std::uint64_t load_bytes = rows * 8 + cols * 8 + rows + cols;
          for (std::uint64_t off = 0; off < load_bytes; off += 128) {
            std::array<MemAccess, 32> macc{};
            for (int l = 0; l < warp_size; ++l) {
              std::uint64_t byte = off + static_cast<std::uint64_t>(l) * 4;
              if (byte >= load_bytes) break;
              macc[static_cast<std::size_t>(l)] = MemAccess{bus_mem.base + byte, 4};
            }
            blk.warp(0).global_read(macc);
          }

          // Functional tile DP (row-major; the accounting below models the
          // wavefront execution the real kernel uses).
          std::vector<Score> h_row(cols), f_col(cols);
          for (std::size_t c = 0; c < cols; ++c) {
            h_row[c] = (i_base == 0) ? 0 : hbus_h[j_base + c];
            f_col[c] = (i_base == 0) ? kBoundaryNegInf : hbus_f[j_base + c];
          }
          AlignmentResult tile_best;
          Score diag_carry =
              (i_base == 0 || j_base == 0) ? 0 : corner_at(ti, tj);

          std::uint64_t computed = 0;
          const auto bb = static_cast<std::int64_t>(pair_band);
          for (std::size_t r = 0; r < rows; ++r) {
            const std::size_t i = i_base + r;
            Score h_left = (j_base == 0) ? 0 : vbus_h[i];
            Score e = (j_base == 0) ? kBoundaryNegInf : vbus_e[i];
            Score h_diag = diag_carry;
            diag_carry = h_left;  // H(i, j_base-1) feeds the next row's diag

            for (std::size_t c = 0; c < cols; ++c) {
              const std::size_t j = j_base + c;
              Score h, f;
              if (pair_band > 0 &&
                  (static_cast<std::int64_t>(j) - static_cast<std::int64_t>(i) > bb ||
                   static_cast<std::int64_t>(i) - static_cast<std::int64_t>(j) > bb)) {
                // Masked cell: publish the out-of-band boundary values.
                h = 0;
                e = kBoundaryNegInf;
                f = kBoundaryNegInf;
              } else {
                e = std::max(h_left - alpha, e - beta);
                f = std::max(h_row[c] - alpha, f_col[c] - beta);
                h = std::max({Score{0}, h_diag + scoring.substitution(ref[i], query[j]), e,
                              f});
                ++computed;
                align::take_better(tile_best,
                                   AlignmentResult{h, static_cast<std::int32_t>(i),
                                                   static_cast<std::int32_t>(j)});
              }
              h_diag = h_row[c];
              h_row[c] = h;
              f_col[c] = f;
              h_left = h;
            }
            vbus_h[i] = h_left;  // rightmost column feeds the vertical bus
            vbus_e[i] = e;
          }
          blk.warp(0).add_cells(computed);
          blk.warp(0).add_skipped_cells(
              static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) - computed);

          // Preserve the corner for the diagonal neighbour before the buses
          // are overwritten by tiles of later waves.
          corner_at(ti + 1, tj + 1) = h_row[cols - 1];

          for (std::size_t c = 0; c < cols; ++c) {
            hbus_h[j_base + c] = h_row[c];
            hbus_f[j_base + c] = f_col[c];
          }
          wave_best[blk.block_id()] = tile_best;

          // Accounting: wavefront execution of the tile.
          const std::size_t diags = rows + cols - 1;
          for (std::size_t d = 0; d < diags; ++d) {
            std::size_t c_lo = (d >= rows) ? d - rows + 1 : 0;
            std::size_t c_hi = std::min(cols - 1, d);
            for (int w = 0; w < warps; ++w) {
              std::size_t band_lo = static_cast<std::size_t>(w) * warp_size;
              std::size_t band_hi = band_lo + static_cast<std::size_t>(warp_size) - 1;
              if (band_lo > c_hi || band_hi < c_lo) continue;
              int active =
                  static_cast<int>(std::min(band_hi, c_hi) - std::max(band_lo, c_lo) + 1);
              blk.warp(w).issue(kInstrPerDiag, active);
            }
            if (warps > 1) blk.syncthreads();
          }

          // Bus writeback: coalesced bursts.
          std::uint64_t store_bytes = rows * 8 + cols * 8;
          for (std::uint64_t off = 0; off < store_bytes; off += 128) {
            std::array<MemAccess, 32> macc{};
            for (int l = 0; l < warp_size; ++l) {
              std::uint64_t byte = off + static_cast<std::uint64_t>(l) * 4;
              if (byte >= store_bytes) break;
              macc[static_cast<std::size_t>(l)] = MemAccess{bus_mem.base + byte, 4};
            }
            blk.warp(0).global_write(macc);
          }
        });
        acc.add(launch);
        // SW# runs a second small kernel per wave to reduce per-block
        // maxima and stage bus state for the next wave: launch overhead
        // plus a token amount of work.
        gpusim::LaunchConfig reduce_cfg;
        reduce_cfg.label = "SW#-reduce";
        reduce_cfg.blocks = 1;
        reduce_cfg.threads_per_block = 32;
        acc.add(device.launch(reduce_cfg, [&](gpusim::BlockContext& blk) {
          blk.warp(0).issue(64, 32);
        }));
        for (const auto& b : wave_best) align::take_better(best, b);
      }

      if (best.score == 0) best = AlignmentResult{};
      results[p] = best;
    }

    device.free(seq_mem);
    device.free(bus_mem);

    KernelResult out;
    out.results = std::move(results);
    out.stats = acc.stats;
    out.time = acc.time;
    out.launches = acc.launches;
    return out;
  }

 private:
  KernelInfo info_;
};

}  // namespace

KernelPtr make_swsharp_like(std::size_t nominal_pairs) {
  (void)nominal_pairs;
  return std::make_unique<SwSharpKernel>();
}


namespace {
const KernelRegistrar reg_swsharp{"sw#", {"swsharp"}, 50, &make_swsharp_like};
}  // namespace

}  // namespace saloba::kernels
