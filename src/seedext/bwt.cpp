#include "seedext/bwt.hpp"

#include <array>

#include "seedext/suffix_array.hpp"
#include "util/check.hpp"

namespace saloba::seedext {

BwtResult build_bwt(std::span<const seq::BaseCode> text) {
  return build_bwt(text, build_suffix_array(text));
}

BwtResult build_bwt(std::span<const seq::BaseCode> text,
                    std::span<const std::int32_t> suffix_array) {
  SALOBA_CHECK(suffix_array.size() == text.size());
  const std::size_t n = text.size();
  BwtResult out;
  out.bwt.resize(n + 1);
  // Row 0 is the sentinel suffix: its BWT character is the last text char.
  out.bwt[0] = n == 0 ? kBwtSentinel : text[n - 1];
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t pos = suffix_array[i];
    if (pos == 0) {
      out.bwt[i + 1] = kBwtSentinel;
      out.primary = i + 1;
    } else {
      out.bwt[i + 1] = text[static_cast<std::size_t>(pos - 1)];
    }
  }
  return out;
}

std::vector<seq::BaseCode> invert_bwt(const BwtResult& bwt) {
  const std::size_t n = bwt.bwt.size();
  if (n <= 1) return {};

  // LF mapping: rank of each character occurrence + cumulative counts.
  std::array<std::size_t, 7> counts{};
  std::vector<std::uint32_t> rank(n);
  for (std::size_t i = 0; i < n; ++i) {
    rank[i] = static_cast<std::uint32_t>(counts[bwt.bwt[i]]);
    ++counts[bwt.bwt[i]];
  }
  std::array<std::size_t, 7> first{};
  std::size_t acc = 0;
  // Sentinel sorts first, then base codes 0..4.
  first[kBwtSentinel] = 0;
  acc = counts[kBwtSentinel];
  for (int c = 0; c < seq::kAlphabetSize; ++c) {
    first[static_cast<std::size_t>(c)] = acc;
    acc += counts[static_cast<std::size_t>(c)];
  }

  // Walk backwards from row 0 (the rotation starting with the sentinel):
  // its BWT character is the last text character, and LF steps walk the
  // text right to left.
  std::vector<seq::BaseCode> text(n - 1);
  std::size_t row = 0;
  for (std::size_t k = n - 1; k-- > 0;) {
    std::uint8_t c = bwt.bwt[row];
    SALOBA_CHECK_MSG(c != kBwtSentinel, "corrupt BWT: sentinel encountered mid-walk");
    text[k] = c;
    row = first[c] + rank[row];
  }
  return text;
}

}  // namespace saloba::seedext
