// Burrows–Wheeler transform over the 5-letter alphabet plus sentinel.
// Foundation of the FM-index (the paper's related work: BWA/SOAP3/CUSHAW
// seeding is BWT-based).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seedext {

/// Sentinel code in BWT space (sorts before every base).
inline constexpr std::uint8_t kBwtSentinel = 5;

struct BwtResult {
  /// BWT string of length n+1 over codes {0..4, kBwtSentinel}.
  std::vector<std::uint8_t> bwt;
  /// Row index holding the sentinel (needed for inversion).
  std::size_t primary = 0;
};

/// BWT from the text (builds the suffix array internally).
BwtResult build_bwt(std::span<const seq::BaseCode> text);

/// BWT given a precomputed suffix array of `text`.
BwtResult build_bwt(std::span<const seq::BaseCode> text,
                    std::span<const std::int32_t> suffix_array);

/// Inverse BWT: recovers the original text. Round-trip tested.
std::vector<seq::BaseCode> invert_bwt(const BwtResult& bwt);

}  // namespace saloba::seedext
