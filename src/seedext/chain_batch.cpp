#include "seedext/chain_batch.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace saloba::seedext {

namespace {

// The int32 push kernel's exactness envelope (see ChainBatch::task_simd_safe):
// positions and diagonals stay well inside int32, Σlen bounds every chain
// score, and max_gap·gap_cost_num bounds every penalty, so no eligible-lane
// intermediate can wrap.
constexpr std::int64_t kMaxPos = std::int64_t{1} << 30;
constexpr std::int64_t kMaxLen = std::int64_t{1} << 20;
constexpr std::int64_t kMaxScoreSum = std::int64_t{1} << 28;
constexpr std::int64_t kMaxPenalty = std::int64_t{1} << 28;

}  // namespace

std::size_t ChainBatch::add_task(std::vector<Seed> seeds) {
  sort_seeds(seeds);
  const std::size_t t = tasks();
  const std::size_t n = seeds.size();

  std::int64_t len_sum = 0;
  std::int64_t max_len = 0;
  bool safe = params_.gap_cost_num >= 0 && params_.max_gap >= 0 &&
              params_.max_diag_drift >= 0 &&
              static_cast<std::int64_t>(params_.gap_cost_num) *
                      std::max<std::int64_t>(params_.max_gap, 1) <
                  kMaxPenalty &&
              n < static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());
  for (const Seed& seed : seeds) {
    qpos_.push_back(static_cast<std::int32_t>(seed.qpos));
    rpos_.push_back(static_cast<std::int32_t>(seed.rpos));
    len_.push_back(static_cast<std::int32_t>(seed.len));
    diag_.push_back(static_cast<std::int32_t>(static_cast<std::int64_t>(seed.rpos) -
                                              static_cast<std::int64_t>(seed.qpos)));
    len_sum += seed.len;
    max_len = std::max<std::int64_t>(max_len, seed.len);
    safe &= seed.qpos < kMaxPos && seed.rpos < kMaxPos && seed.len >= 1 &&
            seed.len < kMaxLen;
  }
  safe &= len_sum < kMaxScoreSum;
  first_.push_back(qpos_.size());
  simd_safe_.push_back(safe ? 1 : 0);

  // Scalar-DP candidate count under the qpos-window early exit: for each
  // anchor i, predecessors scanned are those j < i with
  // qpos[j] >= qpos[i] - max_gap - max_len. Two-pointer, O(n) amortized.
  std::size_t work = 0;
  {
    const std::span<const std::int32_t> q = task_qpos(t);
    std::size_t lo = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t qmin =
          static_cast<std::int64_t>(q[i]) - params_.max_gap - max_len;
      while (lo < i && static_cast<std::int64_t>(q[lo]) < qmin) ++lo;
      work += i - lo;
    }
  }
  work_.push_back(work);
  return t;
}

std::vector<Seed> ChainBatch::task_seeds(std::size_t t) const {
  const std::size_t n = task_size(t);
  std::vector<Seed> seeds(n);
  const auto q = task_qpos(t);
  const auto r = task_rpos(t);
  const auto l = task_len(t);
  for (std::size_t i = 0; i < n; ++i) {
    seeds[i] = Seed{static_cast<std::uint32_t>(q[i]), static_cast<std::uint32_t>(r[i]),
                    static_cast<std::uint32_t>(l[i])};
  }
  return seeds;
}

bool ChainBatch::task_simd_safe(std::size_t t) const { return simd_safe_[t] != 0; }

std::vector<ChainShard> make_chain_shards(const ChainBatch& batch,
                                          const std::vector<double>& lane_weights,
                                          std::size_t max_shard_tasks) {
  SALOBA_CHECK_MSG(!lane_weights.empty(), "make_chain_shards: need at least one lane");
  for (double w : lane_weights) {
    SALOBA_CHECK_MSG(w > 0.0, "make_chain_shards: lane weights must be positive");
  }
  const std::size_t lanes = lane_weights.size();
  const std::size_t n = batch.tasks();

  // Descending work order (index tie-break for determinism): the
  // "approximate sorting" discipline — capped runs then hold like-cost
  // tasks, and LPT sees the big tasks first.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (batch.task_work(a) != batch.task_work(b)) {
      return batch.task_work(a) > batch.task_work(b);
    }
    return a < b;
  });

  // Cut the order into runs of at most max_shard_tasks (0 = still one run
  // per task for per-task LPT placement onto one shard per lane).
  std::vector<ChainShard> shards;
  std::vector<double> load(lanes, 0.0);
  auto best_lane = [&](double work) {
    std::size_t best = 0;
    double best_finish = (load[0] + work) / lane_weights[0];
    for (std::size_t l = 1; l < lanes; ++l) {
      const double finish = (load[l] + work) / lane_weights[l];
      if (finish < best_finish) {
        best_finish = finish;
        best = l;
      }
    }
    return best;
  };

  if (max_shard_tasks == 0) {
    // One shard per lane; tasks placed individually by weighted LPT.
    shards.resize(lanes);
    for (std::size_t l = 0; l < lanes; ++l) shards[l].lane = static_cast<int>(l);
    for (std::size_t idx : order) {
      const double work = static_cast<double>(std::max<std::size_t>(batch.task_work(idx), 1));
      const std::size_t l = best_lane(work);
      shards[l].tasks.push_back(idx);
      shards[l].work += batch.task_work(idx);
      load[l] += work;
    }
  } else {
    for (std::size_t pos = 0; pos < n; pos += max_shard_tasks) {
      ChainShard shard;
      const std::size_t end = std::min(n, pos + max_shard_tasks);
      double work = 0.0;
      for (std::size_t k = pos; k < end; ++k) {
        shard.tasks.push_back(order[k]);
        shard.work += batch.task_work(order[k]);
        work += static_cast<double>(std::max<std::size_t>(batch.task_work(order[k]), 1));
      }
      const std::size_t l = best_lane(work);
      shard.lane = static_cast<int>(l);
      load[l] += work;
      shards.push_back(std::move(shard));
    }
  }

  std::erase_if(shards, [](const ChainShard& s) { return s.tasks.empty(); });
  return shards;
}

}  // namespace saloba::seedext
