// SoA anchor batching for the chaining phase. A ChainBatch collects the seed
// lists of many (read, strand) chaining problems into contiguous
// structure-of-arrays buffers — qpos / rpos / len / diagonal columns plus
// per-task offsets, the anchor-level analogue of seq::PairBatch — so the
// forward-only chain engine (chain_engine.hpp) streams each task's anchors
// with unit stride and the scheduler (core::BatchScheduler::chain) shards
// tasks across backend lanes like extension shards. Tasks carry a per-task
// work estimate (the scalar DP's candidate count) so sharding can
// length-bucket by cost, exactly the make_shards weighted-LPT discipline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "seedext/chaining.hpp"
#include "seedext/seeding.hpp"

namespace saloba::seedext {

/// Many chaining problems, one SoA anchor pool. Anchors of task t occupy
/// [first[t], first[t + 1]) of every column, already in the canonical
/// sort_seeds order — add_task sorts, so engines never re-sort.
class ChainBatch {
 public:
  explicit ChainBatch(const ChainingParams& params = {}) : params_(params) {}

  /// Appends one chaining problem (the seeds of one read×strand) and returns
  /// its task id. Seeds are sorted into canonical (qpos, rpos) order here.
  /// Empty seed lists are legal tasks (they chain to nothing).
  std::size_t add_task(std::vector<Seed> seeds);

  std::size_t tasks() const { return first_.size() - 1; }
  std::size_t anchors() const { return qpos_.size(); }
  bool empty() const { return tasks() == 0; }
  const ChainingParams& params() const { return params_; }

  std::size_t task_begin(std::size_t t) const { return first_[t]; }
  std::size_t task_size(std::size_t t) const { return first_[t + 1] - first_[t]; }

  /// Scalar-DP candidate count of task t (the qpos-window early-exit scan's
  /// work) — the sharding cost measure, and what a sequential oracle run of
  /// this task would execute.
  std::size_t task_work(std::size_t t) const { return work_[t]; }

  // SoA columns of one task (canonical order, contiguous).
  std::span<const std::int32_t> task_qpos(std::size_t t) const {
    return {qpos_.data() + first_[t], task_size(t)};
  }
  std::span<const std::int32_t> task_rpos(std::size_t t) const {
    return {rpos_.data() + first_[t], task_size(t)};
  }
  std::span<const std::int32_t> task_len(std::size_t t) const {
    return {len_.data() + first_[t], task_size(t)};
  }
  std::span<const std::int32_t> task_diag(std::size_t t) const {
    return {diag_.data() + first_[t], task_size(t)};
  }

  /// Reconstitutes task t's seeds (canonical order) — for collect_chains and
  /// the oracle fallback.
  std::vector<Seed> task_seeds(std::size_t t) const;

  /// True when every anchor and parameter of task t fits the int32 push
  /// kernel's exactness envelope (positions < 2^30, Σlen and max_gap·cost
  /// bounded, non-negative cost): the vector path is then bit-identical to
  /// the scalar oracle. Tasks outside the envelope are routed to the oracle.
  bool task_simd_safe(std::size_t t) const;

 private:
  ChainingParams params_;
  std::vector<std::int32_t> qpos_, rpos_, len_, diag_;
  std::vector<std::size_t> first_{0};  ///< tasks() + 1 offsets
  std::vector<std::size_t> work_;
  std::vector<std::uint8_t> simd_safe_;
};

/// One chaining shard: a set of batch task ids bound to a backend lane.
/// Tasks are referenced, not copied — the SoA pool is shared read-only.
struct ChainShard {
  std::vector<std::size_t> tasks;
  std::size_t work = 0;  ///< Σ task_work — the LPT load measure
  int lane = 0;
};

/// Shards a ChainBatch's tasks across `lane_weights.size()` lanes by
/// weighted LPT on task_work (gpusim::make_shards discipline): tasks are
/// taken in descending work order — length-bucketing, so shards hold
/// like-cost tasks — and each run goes to the lane minimising weighted
/// finish time (load + work) / weight. `max_shard_tasks == 0` gives one
/// shard per lane; > 0 caps tasks per shard so a lane may own several
/// shards. Empty shards are dropped; every task lands in exactly one shard.
std::vector<ChainShard> make_chain_shards(const ChainBatch& batch,
                                          const std::vector<double>& lane_weights,
                                          std::size_t max_shard_tasks = 0);

}  // namespace saloba::seedext
