#include "seedext/chain_engine.hpp"

#include <algorithm>
#include <atomic>

#include "align/simd_engine.hpp"
#include "seedext/chain_kernel.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace saloba::seedext {

namespace detail {

void chain_forward_generic(const ChainTaskView& task, const ChainingParams& params,
                           ChainTaskCounters* counters) {
  chain_task_forward<align::simd::OpsI32Generic>(task, params, counters);
}

}  // namespace detail

namespace {

/// Scratch for one task's kernel run: padded SoA columns (sentinel anchors
/// past n) plus score/parent arrays. Reused across the tasks a thread runs.
struct TaskScratch {
  std::vector<std::int32_t> qpos, rpos, len, diag, score, parent;

  detail::ChainTaskView fill(const ChainBatch& batch, std::size_t t) {
    const std::size_t n = batch.task_size(t);
    const std::size_t padded =
        n + detail::kChainLookahead + align::simd::OpsI32Generic::kLanes;
    auto prep = [padded](std::vector<std::int32_t>& v) {
      v.assign(padded, 0);  // sentinel: len = 0, rpos = 0 -> never eligible
    };
    prep(qpos);
    prep(rpos);
    prep(len);
    prep(diag);
    prep(score);
    prep(parent);
    const auto q = batch.task_qpos(t);
    const auto r = batch.task_rpos(t);
    const auto l = batch.task_len(t);
    const auto d = batch.task_diag(t);
    std::copy(q.begin(), q.end(), qpos.begin());
    std::copy(r.begin(), r.end(), rpos.begin());
    std::copy(l.begin(), l.end(), len.begin());
    std::copy(d.begin(), d.end(), diag.begin());
    detail::ChainTaskView view;
    view.qpos = qpos.data();
    view.rpos = rpos.data();
    view.len = len.data();
    view.diag = diag.data();
    view.score = score.data();
    view.parent = parent.data();
    view.n = n;
    return view;
  }
};

bool use_avx2() {
  return align::simd::compiled_with_avx2() && align::simd::cpu_supports_avx2();
}

std::vector<Chain> run_one(const ChainBatch& batch, std::size_t t, TaskScratch& scratch,
                           bool avx2, ChainEngineStats& stats) {
  const std::size_t n = batch.task_size(t);
  stats.tasks += 1;
  stats.anchors += n;
  if (n == 0) return {};

  const std::vector<Seed> seeds = batch.task_seeds(t);
  if (!batch.task_simd_safe(t)) {
    // Outside the int32 exactness envelope: the oracle DP is the
    // implementation, so bit-identity holds by definition.
    stats.scalar_tasks += 1;
    std::vector<std::int64_t> score(n);
    std::vector<std::int32_t> parent(n);
    chain_dp(seeds, batch.params(), score, parent);
    return collect_chains(seeds, score, parent, batch.params());
  }

  detail::ChainTaskView view = scratch.fill(batch, t);
  detail::ChainTaskCounters counters;
#if defined(SALOBA_SIMD_AVX2)
  if (avx2) {
    detail::chain_forward_avx2(view, batch.params(), &counters);
  } else {
    detail::chain_forward_generic(view, batch.params(), &counters);
  }
#else
  (void)avx2;
  detail::chain_forward_generic(view, batch.params(), &counters);
#endif
  stats.pushes += counters.pushes;
  stats.settled += counters.settled;

  // Widen the kernel's int32 scores for the shared endpoint collection.
  std::vector<std::int64_t> score(n);
  for (std::size_t i = 0; i < n; ++i) score[i] = view.score[i];
  return collect_chains(seeds, score, {view.parent, n}, batch.params());
}

}  // namespace

std::vector<Chain> chain_task_run(const ChainBatch& batch, std::size_t task,
                                  ChainEngineStats* stats) {
  SALOBA_CHECK_MSG(task < batch.tasks(), "chain_task_run: task out of range");
  const util::Timer timer;
  TaskScratch scratch;
  ChainEngineStats local;
  local.avx2 = use_avx2();
  auto chains = run_one(batch, task, scratch, local.avx2, local);
  local.wall_ms = timer.millis();
  if (stats) stats->merge(local);
  return chains;
}

void chain_tasks_run(const ChainBatch& batch, std::span<const std::size_t> tasks,
                     std::vector<std::vector<Chain>>& out, ChainEngineStats* stats,
                     int threads) {
  SALOBA_CHECK_MSG(out.size() == batch.tasks(),
               "chain_tasks_run: output must span every batch task");
  const util::Timer timer;
  const bool avx2 = use_avx2();

  // Each worker owns a stats shard and a scratch; results go to index-owned
  // slots, so the run is deterministic regardless of the thread count. An
  // explicit `threads` budget may exceed the default team size (num_threads
  // overrides omp_get_max_threads), so size the shards for either.
  const std::size_t max_workers =
      static_cast<std::size_t>(std::max({1, util::max_parallel_threads(), threads}));
  std::vector<ChainEngineStats> shard_stats(max_workers);
  std::vector<TaskScratch> scratch(max_workers);
  util::parallel_for_indexed(
      tasks.size(),
      [&](std::size_t k) {
        const std::size_t w = static_cast<std::size_t>(util::current_thread_index());
        out[tasks[k]] = run_one(batch, tasks[k], scratch[w], avx2, shard_stats[w]);
      },
      threads);

  if (stats) {
    ChainEngineStats local;
    local.avx2 = avx2;
    for (const auto& s : shard_stats) local.merge(s);
    local.wall_ms = timer.millis();
    stats->merge(local);
  }
}

std::vector<std::vector<Chain>> chain_batch_run(const ChainBatch& batch,
                                                ChainEngineStats* stats, int threads) {
  std::vector<std::size_t> all(batch.tasks());
  for (std::size_t t = 0; t < all.size(); ++t) all[t] = t;
  std::vector<std::vector<Chain>> out(batch.tasks());
  chain_tasks_run(batch, all, out, stats, threads);
  return out;
}

std::vector<Chain> chain_engine_seeds(std::vector<Seed> seeds, const ChainingParams& params,
                                      ChainEngineStats* stats) {
  ChainBatch batch(params);
  const std::size_t t = batch.add_task(std::move(seeds));
  return chain_task_run(batch, t, stats);
}

}  // namespace saloba::seedext
