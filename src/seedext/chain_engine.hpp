// Batched forward-only chaining engine (ROADMAP: "chaining as a schedulable
// phase"). Runs the fixed-lookahead push recurrence (chain_kernel.hpp) over
// a ChainBatch's tasks — AVX2 intrinsics when the build and the CPU allow
// (chain_engine_avx2.cpp, the same SALOBA_SIMD_AVX2 / CPUID gate as the
// extension engine), the portable OpsI32Generic kernel otherwise — and
// collects chains through the shared collect_chains, so every output is
// bit-identical to the sequential chain_seeds oracle regardless of ISA,
// thread count, or task-to-shard placement. Tasks outside the int32
// exactness envelope (ChainBatch::task_simd_safe) run the oracle DP
// directly, keeping the bit-identity guarantee unconditional.
#pragma once

#include <cstddef>
#include <vector>

#include "seedext/chain_batch.hpp"
#include "seedext/chaining.hpp"

namespace saloba::seedext {

/// Per-call engine telemetry. The counters are structural (candidate counts,
/// not accepted updates), so they are deterministic across ISAs and runs.
struct ChainEngineStats {
  std::size_t tasks = 0;         ///< tasks executed
  std::size_t anchors = 0;       ///< total anchors across those tasks
  std::size_t pushes = 0;        ///< vector push candidates evaluated
  std::size_t settled = 0;       ///< residual scalar candidates examined
  std::size_t scalar_tasks = 0;  ///< routed to the oracle DP (envelope guard)
  bool avx2 = false;             ///< intrinsic kernel was dispatched
  double wall_ms = 0.0;

  void merge(const ChainEngineStats& other) {
    tasks += other.tasks;
    anchors += other.anchors;
    pushes += other.pushes;
    settled += other.settled;
    scalar_tasks += other.scalar_tasks;
    avx2 = avx2 || other.avx2;
    wall_ms += other.wall_ms;
  }
};

/// Chains one task of `batch` through the forward-only engine. The result is
/// bit-identical to chain_seeds(batch.task_seeds(task), batch.params()).
std::vector<Chain> chain_task_run(const ChainBatch& batch, std::size_t task,
                                  ChainEngineStats* stats = nullptr);

/// Chains a subset of tasks (a shard), writing chains into out[task] —
/// `out` must span batch.tasks() entries. `threads` caps host parallelism
/// across the listed tasks (0 = default team, 1 = caller thread).
void chain_tasks_run(const ChainBatch& batch, std::span<const std::size_t> tasks,
                     std::vector<std::vector<Chain>>& out,
                     ChainEngineStats* stats = nullptr, int threads = 0);

/// Chains every task of `batch`; result indexed by task id.
std::vector<std::vector<Chain>> chain_batch_run(const ChainBatch& batch,
                                                ChainEngineStats* stats = nullptr,
                                                int threads = 0);

/// Convenience single-problem entry (tests, ablation): forward-only engine
/// over one seed list — the drop-in, bit-identical equivalent of chain_seeds.
std::vector<Chain> chain_engine_seeds(std::vector<Seed> seeds,
                                      const ChainingParams& params,
                                      ChainEngineStats* stats = nullptr);

namespace detail {
struct ChainTaskView;

/// Portable-kernel entry (chain_engine.cpp).
void chain_forward_generic(const ChainTaskView& task, const ChainingParams& params,
                           struct ChainTaskCounters* counters);
/// AVX2-kernel entry (chain_engine_avx2.cpp; only when SALOBA_SIMD_AVX2).
void chain_forward_avx2(const ChainTaskView& task, const ChainingParams& params,
                        struct ChainTaskCounters* counters);
}  // namespace detail

}  // namespace saloba::seedext
