// AVX2 implementation of the int32 chaining-push vocabulary
// (align::simd::OpsI32Generic is the reference semantics) and the intrinsic
// kernel entry point. Like align/simd_engine_avx2.cpp this is a translation
// unit compiled with -mavx2 (CMake per-source flag); callers reach it only
// after align::simd::cpu_supports_avx2 passes at runtime, and nothing
// defined here may be reachable from the generic path.
#if defined(SALOBA_SIMD_AVX2)

#include <immintrin.h>

#include <cstdint>

#include "seedext/chain_engine.hpp"
#include "seedext/chain_kernel.hpp"

namespace saloba::seedext {
namespace {

/// 8 signed int32 lanes per 256-bit register; wrapping add/sub/mullo match
/// OpsI32Generic's uint32-modular reference arithmetic bit for bit.
struct OpsI32Avx2 {
  static constexpr int kLanes = 8;
  using Vec = __m256i;

  static Vec splat(std::int32_t s) { return _mm256_set1_epi32(s); }
  static Vec load(const std::int32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::int32_t* dst, Vec v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), v);
  }
  static Vec add(Vec a, Vec b) { return _mm256_add_epi32(a, b); }
  static Vec sub(Vec a, Vec b) { return _mm256_sub_epi32(a, b); }
  static Vec smax(Vec a, Vec b) { return _mm256_max_epi32(a, b); }
  static Vec smin(Vec a, Vec b) { return _mm256_min_epi32(a, b); }
  static Vec cmpgt(Vec a, Vec b) { return _mm256_cmpgt_epi32(a, b); }
  static Vec vand(Vec a, Vec b) { return _mm256_and_si256(a, b); }
  static Vec blend(Vec mask, Vec a, Vec b) { return _mm256_blendv_epi8(b, a, mask); }
  static bool any(Vec m) { return _mm256_testz_si256(m, m) == 0; }
  static Vec sabs(Vec a) { return _mm256_abs_epi32(a); }
  template <int Shift>
  static Vec sra(Vec a) {
    return _mm256_srai_epi32(a, Shift);
  }
  static Vec mullo(Vec a, Vec b) { return _mm256_mullo_epi32(a, b); }
};

}  // namespace

namespace detail {

void chain_forward_avx2(const ChainTaskView& task, const ChainingParams& params,
                        ChainTaskCounters* counters) {
  chain_task_forward<OpsI32Avx2>(task, params, counters);
}

}  // namespace detail
}  // namespace saloba::seedext

#endif  // SALOBA_SIMD_AVX2
