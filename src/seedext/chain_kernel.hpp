// Forward-only fixed-lookahead chaining kernel, written once against the
// align::simd::OpsI32Generic vocabulary (simd_vec.hpp) and instantiated with
// the generic ops here and the AVX2 ops in chain_engine_avx2.cpp.
//
// The recurrence is the minimap2-acceleration reordering of the chaining DP:
// instead of each anchor i scanning all predecessors j < i (data-dependent
// trip count, backward gather), each anchor i — once its own score is final —
// *pushes* a score candidate to its next kChainLookahead successors
// (fixed trip count, unit-stride scatter over SoA columns, branch-light).
// Anchors whose best predecessor sits further back than the lookahead window
// are handled by an exact scalar *settlement* scan over the residual range
// [qlo(i), i - kChainLookahead), run just before anchor i's pushes, using
// the same int64 arithmetic as the sequential oracle (chaining.cpp).
//
// Bit-identity with the oracle is by construction:
//  * pushes into anchor i arrive in ascending j (the outer loop order), and
//    the strict `cand > score` update keeps the earliest j on ties — the
//    oracle's tie-break — within the window;
//  * residual candidates are earlier j than every window candidate, so the
//    merge adopts the residual best exactly when the oracle's ascending scan
//    would have: when it strictly beats the window result, or ties it while
//    actually naming a predecessor (rparent >= 0; the oracle scans residual
//    j first and a later equal window candidate cannot displace it);
//  * all vector arithmetic is exact int32 for eligible lanes (the
//    ChainBatch::task_simd_safe envelope) and wrapping-identical across ISAs
//    for masked-out lanes, so no result ever depends on the instruction set.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "align/simd_vec.hpp"
#include "seedext/chaining.hpp"

namespace saloba::seedext::detail {

/// Successors each settled anchor pushes to. 64 = 8 vector blocks of 8
/// int32 lanes: long enough that on realistic seed densities nearly every
/// best predecessor is in-window (settlement stays cold), short enough that
/// the push loop is a handful of unrolled, mask-blend vector blocks.
inline constexpr std::size_t kChainLookahead = 64;

/// One task's mutable kernel view: SoA anchor columns plus the score/parent
/// arrays being filled. Columns must be padded with kChainLookahead + lane
/// sentinel anchors (len = 0, rpos = 0: rgap < 0 for every real pusher, so
/// sentinels are never eligible) past `n`.
struct ChainTaskView {
  const std::int32_t* qpos = nullptr;
  const std::int32_t* rpos = nullptr;
  const std::int32_t* len = nullptr;
  const std::int32_t* diag = nullptr;
  std::int32_t* score = nullptr;   ///< padded like the columns
  std::int32_t* parent = nullptr;  ///< padded like the columns
  std::size_t n = 0;               ///< real anchors (excluding padding)
};

struct ChainTaskCounters {
  std::size_t pushes = 0;   ///< vector push candidates evaluated (incl. padding lanes)
  std::size_t settled = 0;  ///< residual scalar candidates examined
};

/// Runs the forward-only DP for one task. Requires the task to be inside the
/// ChainBatch::task_simd_safe envelope. Fills score[0..n) / parent[0..n)
/// bit-identically to chain_dp.
template <typename Ops>
void chain_task_forward(const ChainTaskView& task, const ChainingParams& params,
                        ChainTaskCounters* counters) {
  using Vec = typename Ops::Vec;
  constexpr int kLanes = Ops::kLanes;
  const std::size_t n = task.n;
  if (n == 0) return;

  std::int32_t max_len = 0;
  for (std::size_t i = 0; i < n; ++i) {
    task.score[i] = task.len[i];
    task.parent[i] = -1;
    max_len = std::max(max_len, task.len[i]);
  }
  // Padding lanes: scores/parents are written through blends, so give them
  // defined values (never read back — sentinels are never eligible targets
  // of a real anchor's chain, and the outer loop stops at n).
  for (std::size_t i = n; i < n + kChainLookahead + kLanes; ++i) {
    task.score[i] = 0;
    task.parent[i] = -1;
  }

  const std::int32_t max_gap = static_cast<std::int32_t>(params.max_gap);
  const std::int32_t max_drift = static_cast<std::int32_t>(params.max_diag_drift);
  const Vec v_minus1 = Ops::splat(-1);
  const Vec v_one = Ops::splat(1);
  const Vec v_gap_hi = Ops::splat(max_gap);      // eligible: gap <= max_gap
  const Vec v_drift_hi = Ops::splat(max_drift);  // eligible: drift <= max_drift
  const Vec v_num = Ops::splat(params.gap_cost_num);

  ChainTaskCounters local;
  std::size_t qlo = 0;  // residual-scan lower bound, monotone in i
  for (std::size_t i = 0; i < n; ++i) {
    // --- exact settlement: residual predecessors below the window ---------
    if (i > kChainLookahead) {
      const std::int64_t qmin =
          static_cast<std::int64_t>(task.qpos[i]) - params.max_gap - max_len;
      while (qlo < i && static_cast<std::int64_t>(task.qpos[qlo]) < qmin) ++qlo;
      std::int64_t rbest = 0;
      std::int32_t rparent = -1;
      const std::size_t residual_end = i - kChainLookahead;
      for (std::size_t j = qlo; j < residual_end; ++j) {
        const std::int64_t qgap =
            static_cast<std::int64_t>(task.qpos[i]) - (task.qpos[j] + task.len[j]);
        const std::int64_t rgap =
            static_cast<std::int64_t>(task.rpos[i]) - (task.rpos[j] + task.len[j]);
        ++local.settled;
        if (qgap < 0 || rgap < 0) continue;
        if (qgap > params.max_gap || rgap > params.max_gap) continue;
        const std::int64_t drift = std::llabs(static_cast<std::int64_t>(task.diag[i]) -
                                              static_cast<std::int64_t>(task.diag[j]));
        if (drift > params.max_diag_drift) continue;
        const std::int64_t cand =
            task.score[j] + task.len[i] -
            chain_gap_penalty(std::max(qgap, rgap), params.gap_cost_num);
        if (rparent < 0 ? cand > task.len[i] : cand > rbest) {
          rbest = cand;
          rparent = static_cast<std::int32_t>(j);
        }
      }
      // Merge (oracle order: residual j precede window j in the ascending
      // scan): residual wins on strictly-greater, or on an equal score when
      // it names a real predecessor — see the header comment's proof.
      if (rparent >= 0 &&
          (rbest > task.score[i] || (rbest == task.score[i] && task.parent[i] >= 0))) {
        task.score[i] = static_cast<std::int32_t>(rbest);
        task.parent[i] = rparent;
      }
    }

    // --- vector push: anchor i -> targets (i, i + kChainLookahead] --------
    const Vec v_qend = Ops::splat(task.qpos[i] + task.len[i]);
    const Vec v_rend = Ops::splat(task.rpos[i] + task.len[i]);
    const Vec v_diag_i = Ops::splat(task.diag[i]);
    const Vec v_base = Ops::splat(task.score[i]);  // settled — safe to push
    const Vec v_i = Ops::splat(static_cast<std::int32_t>(i));
    for (std::size_t b = 0; b < kChainLookahead; b += kLanes) {
      const std::size_t t0 = i + 1 + b;
      const Vec qgap = Ops::sub(Ops::load(task.qpos + t0), v_qend);
      const Vec rgap = Ops::sub(Ops::load(task.rpos + t0), v_rend);
      // eligible: qgap >= 0, rgap >= 0, both <= max_gap, |Δdiag| <= drift.
      // A lane is eligible when qgap >= 0, rgap >= 0, both <= max_gap and
      // |Δdiag| <= max_drift. `x <= hi` is evaluated as `hi > x - 1`, exact
      // for lanes that already passed the x >= 0 test (no wrap possible).
      Vec mask = Ops::vand(Ops::cmpgt(qgap, v_minus1), Ops::cmpgt(rgap, v_minus1));
      mask = Ops::vand(mask, Ops::vand(Ops::cmpgt(v_gap_hi, Ops::sub(qgap, v_one)),
                                       Ops::cmpgt(v_gap_hi, Ops::sub(rgap, v_one))));
      const Vec drift = Ops::sabs(Ops::sub(Ops::load(task.diag + t0), v_diag_i));
      mask = Ops::vand(mask, Ops::cmpgt(v_drift_hi, Ops::sub(drift, v_one)));
      const Vec gap = Ops::smax(qgap, rgap);
      const Vec penalty = Ops::template sra<kGapCostShift>(Ops::mullo(gap, v_num));
      const Vec cand = Ops::add(v_base, Ops::sub(Ops::load(task.len + t0), penalty));
      const Vec old_score = Ops::load(task.score + t0);
      const Vec upd = Ops::vand(mask, Ops::cmpgt(cand, old_score));
      local.pushes += kLanes;
      if (!Ops::any(upd)) continue;
      Ops::store(task.score + t0, Ops::blend(upd, cand, old_score));
      Ops::store(task.parent + t0,
                 Ops::blend(upd, v_i, Ops::load(task.parent + t0)));
    }
  }
  if (counters) {
    counters->pushes += local.pushes;
    counters->settled += local.settled;
  }
}

}  // namespace saloba::seedext::detail
