#include "seedext/chaining.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace saloba::seedext {

std::vector<Chain> chain_seeds(std::vector<Seed> seeds, const ChainingParams& params) {
  std::vector<Chain> chains;
  if (seeds.empty()) return chains;

  std::sort(seeds.begin(), seeds.end(), [](const Seed& a, const Seed& b) {
    if (a.qpos != b.qpos) return a.qpos < b.qpos;
    return a.rpos < b.rpos;
  });

  const std::size_t s = seeds.size();
  std::vector<std::int64_t> score(s);
  std::vector<std::int64_t> parent(s, -1);
  for (std::size_t i = 0; i < s; ++i) {
    score[i] = seeds[i].len;
    for (std::size_t j = 0; j < i; ++j) {
      // Seed j must end strictly before seed i begins on both axes.
      std::int64_t qgap = static_cast<std::int64_t>(seeds[i].qpos) -
                          (static_cast<std::int64_t>(seeds[j].qpos) + seeds[j].len);
      std::int64_t rgap = static_cast<std::int64_t>(seeds[i].rpos) -
                          (static_cast<std::int64_t>(seeds[j].rpos) + seeds[j].len);
      if (qgap < 0 || rgap < 0) continue;
      if (qgap > params.max_gap || rgap > params.max_gap) continue;
      std::int64_t drift = std::llabs(seeds[i].diagonal() - seeds[j].diagonal());
      if (drift > params.max_diag_drift) continue;
      std::int64_t gap_penalty = static_cast<std::int64_t>(
          params.gap_cost * static_cast<double>(std::max(qgap, rgap)));
      std::int64_t cand = score[j] + seeds[i].len - gap_penalty;
      if (cand > score[i]) {
        score[i] = cand;
        parent[i] = static_cast<std::int64_t>(j);
      }
    }
  }

  // Collect chain endpoints best-first; mark used seeds so returned chains
  // are reasonably distinct.
  std::vector<std::size_t> order(s);
  for (std::size_t i = 0; i < s; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return score[a] > score[b]; });
  std::vector<bool> used(s, false);
  const std::int64_t best_score = score[order[0]];

  for (std::size_t idx : order) {
    if (chains.size() >= params.top_n) break;
    if (static_cast<double>(score[idx]) <
        params.drop_ratio * static_cast<double>(best_score)) {
      break;
    }
    if (used[idx]) continue;
    Chain chain;
    chain.score = score[idx];
    std::int64_t cur = static_cast<std::int64_t>(idx);
    while (cur >= 0) {
      if (used[static_cast<std::size_t>(cur)]) break;  // merged into a better chain
      used[static_cast<std::size_t>(cur)] = true;
      chain.seeds.push_back(seeds[static_cast<std::size_t>(cur)]);
      cur = parent[static_cast<std::size_t>(cur)];
    }
    std::reverse(chain.seeds.begin(), chain.seeds.end());
    if (!chain.seeds.empty()) chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace saloba::seedext
