#include "seedext/chaining.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace saloba::seedext {

void sort_seeds(std::vector<Seed>& seeds) {
  std::sort(seeds.begin(), seeds.end(), [](const Seed& a, const Seed& b) {
    if (a.qpos != b.qpos) return a.qpos < b.qpos;
    return a.rpos < b.rpos;
  });
}

void chain_dp(std::span<const Seed> seeds, const ChainingParams& params,
              std::span<std::int64_t> score, std::span<std::int32_t> parent) {
  const std::size_t s = seeds.size();
  SALOBA_CHECK_MSG(score.size() == s && parent.size() == s,
               "chain_dp: score/parent spans must match the seed count");

  // A predecessor j of seed i satisfies qpos[j] + len[j] <= qpos[i] and
  // qpos[i] - (qpos[j] + len[j]) <= max_gap, hence
  // qpos[j] >= qpos[i] - max_gap - len[j] >= qpos[i] - max_gap - max_len.
  // Seeds are sorted by qpos, so the scan window's lower bound `lo` only
  // moves forward as i advances: on dense seed sets the DP is bounded by the
  // seeds inside one max_gap window per anchor instead of O(s^2).
  std::int64_t max_len = 0;
  for (const Seed& seed : seeds) max_len = std::max<std::int64_t>(max_len, seed.len);

  std::size_t lo = 0;
  for (std::size_t i = 0; i < s; ++i) {
    score[i] = seeds[i].len;
    parent[i] = -1;
    const std::int64_t qmin =
        static_cast<std::int64_t>(seeds[i].qpos) - params.max_gap - max_len;
    while (lo < i && static_cast<std::int64_t>(seeds[lo].qpos) < qmin) ++lo;
    for (std::size_t j = lo; j < i; ++j) {
      // Seed j must end strictly before seed i begins on both axes.
      std::int64_t qgap = static_cast<std::int64_t>(seeds[i].qpos) -
                          (static_cast<std::int64_t>(seeds[j].qpos) + seeds[j].len);
      std::int64_t rgap = static_cast<std::int64_t>(seeds[i].rpos) -
                          (static_cast<std::int64_t>(seeds[j].rpos) + seeds[j].len);
      if (qgap < 0 || rgap < 0) continue;
      if (qgap > params.max_gap || rgap > params.max_gap) continue;
      std::int64_t drift = std::llabs(seeds[i].diagonal() - seeds[j].diagonal());
      if (drift > params.max_diag_drift) continue;
      std::int64_t cand = score[j] + seeds[i].len -
                          chain_gap_penalty(std::max(qgap, rgap), params.gap_cost_num);
      // Strict >: ties keep the earliest predecessor j, the tie-break every
      // implementation (and the batched engine's settlement merge) must match.
      if (cand > score[i]) {
        score[i] = cand;
        parent[i] = static_cast<std::int32_t>(j);
      }
    }
  }
}

std::vector<Chain> collect_chains(std::span<const Seed> seeds,
                                  std::span<const std::int64_t> score,
                                  std::span<const std::int32_t> parent,
                                  const ChainingParams& params) {
  std::vector<Chain> chains;
  const std::size_t s = seeds.size();
  if (s == 0) return chains;

  // Collect chain endpoints best-first; mark used seeds so returned chains
  // are reasonably distinct. Ties break toward the earlier endpoint index so
  // the ordering (and therefore which chains survive top_n) is deterministic
  // across std::sort implementations.
  std::vector<std::size_t> order(s);
  for (std::size_t i = 0; i < s; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  std::vector<bool> used(s, false);
  const std::int64_t best_score = score[order[0]];

  for (std::size_t idx : order) {
    if (chains.size() >= params.top_n) break;
    if (static_cast<double>(score[idx]) <
        params.drop_ratio * static_cast<double>(best_score)) {
      break;
    }
    if (used[idx]) continue;
    Chain chain;
    chain.score = score[idx];
    std::int64_t cur = static_cast<std::int64_t>(idx);
    while (cur >= 0) {
      if (used[static_cast<std::size_t>(cur)]) {
        // Merged into a better chain: the remaining prefix belongs to it, so
        // this chain is only the suffix of its DP path.
        chain.truncated = true;
        break;
      }
      used[static_cast<std::size_t>(cur)] = true;
      chain.seeds.push_back(seeds[static_cast<std::size_t>(cur)]);
      cur = parent[static_cast<std::size_t>(cur)];
    }
    std::reverse(chain.seeds.begin(), chain.seeds.end());
    if (!chain.seeds.empty()) chains.push_back(std::move(chain));
  }
  return chains;
}

std::vector<Chain> chain_seeds(std::vector<Seed> seeds, const ChainingParams& params) {
  if (seeds.empty()) return {};
  sort_seeds(seeds);
  std::vector<std::int64_t> score(seeds.size());
  std::vector<std::int32_t> parent(seeds.size());
  chain_dp(seeds, params, score, parent);
  return collect_chains(seeds, score, parent, params);
}

}  // namespace saloba::seedext
