// Seed chaining: combine colinear seeds into candidate alignments
// (BWA-MEM-style dynamic-programming chaining with gap penalties).
//
// `chain_seeds` is the sequential conformance oracle; the batched,
// scheduler-orchestrated phase (seedext/chain_engine.hpp, run through
// core::BatchScheduler::chain) is bit-identical to it by construction: both
// share this header's canonical anchor order (sort_seeds), scalar DP
// (chain_dp) and endpoint collection (collect_chains), and every arithmetic
// step is integer-exact, so results cannot drift across compilers or ISAs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seedext/seeding.hpp"

namespace saloba::seedext {

struct Chain {
  std::vector<Seed> seeds;  ///< colinear, sorted by query position
  std::int64_t score = 0;   ///< Σ seed lengths − gap costs
  /// The backtrack stopped at a seed already claimed by a better chain: the
  /// listed seeds are only the unclaimed suffix of the DP-optimal path, and
  /// `score` (the full path's DP score) exceeds what the listed seeds alone
  /// recompute to. Callers ranking or re-scoring chains can now tell such a
  /// stub from a genuinely complete chain.
  bool truncated = false;

  const Seed& first() const { return seeds.front(); }
  const Seed& last() const { return seeds.back(); }

  bool operator==(const Chain&) const = default;
};

/// Fixed-point denominator shift of ChainingParams::gap_cost_num: gap
/// penalties are (gap * gap_cost_num) >> kGapCostShift, integer-exact.
inline constexpr int kGapCostShift = 10;

struct ChainingParams {
  std::int64_t max_gap = 10000;       ///< max query/ref gap between seeds
  std::int64_t max_diag_drift = 500;  ///< max |Δdiagonal| between seeds
  /// Per-base gap penalty in fixed-point units of 1/1024 (2^-kGapCostShift):
  /// penalty = (gap * gap_cost_num) >> kGapCostShift. The default 154/1024
  /// ≈ 0.15 is the historical per-base cost; integer arithmetic (no double
  /// multiply) keeps batched-vs-sequential conformance bit-identical across
  /// compilers and FP environments.
  std::int32_t gap_cost_num = 154;
  std::size_t top_n = 4;              ///< chains returned, best first
  /// Chains scoring below best*drop_ratio are discarded.
  double drop_ratio = 0.5;
};

/// The integer-exact per-link gap penalty every chaining implementation
/// (oracle, batched engine, SIMD kernel) applies. `gap >= 0`.
inline std::int64_t chain_gap_penalty(std::int64_t gap, std::int32_t gap_cost_num) {
  return (gap * gap_cost_num) >> kGapCostShift;
}

/// Canonical anchor order of every chaining implementation: (qpos, rpos)
/// ascending. The DP's predecessor scan, its tie-breaks, and the qpos-window
/// early exit are all defined over this order.
void sort_seeds(std::vector<Seed>& seeds);

/// Scalar chaining DP over seeds already in sort_seeds order: fills
/// score[i] (best chain score ending at seed i) and parent[i] (its
/// predecessor, -1 for chain starts). The predecessor scan early-exits below
/// the qpos window qpos[i] - max_gap - max(len): seeds before it can never
/// satisfy the gap constraint, so on dense seed sets the scan is bounded by
/// the seeds inside one max_gap window instead of being quadratic in s.
/// This is the conformance oracle's core and the batched engine's exact
/// settlement/fallback path.
void chain_dp(std::span<const Seed> seeds, const ChainingParams& params,
              std::span<std::int64_t> score, std::span<std::int32_t> parent);

/// Best-first endpoint collection over a filled DP: up to top_n chains,
/// best score first (ties broken toward the earlier endpoint, so the output
/// is deterministic across library implementations), chains below
/// best*drop_ratio dropped, seeds claimed by a better chain end the
/// backtrack (Chain::truncated records when that happened). Shared by the
/// oracle and the batched engine so the two cannot diverge.
std::vector<Chain> collect_chains(std::span<const Seed> seeds,
                                  std::span<const std::int64_t> score,
                                  std::span<const std::int32_t> parent,
                                  const ChainingParams& params);

/// Returns up to top_n chains, best score first. Seeds may be shared
/// between chains (as in BWA-MEM before deduplication). The sequential
/// reference implementation — sort_seeds + chain_dp + collect_chains.
std::vector<Chain> chain_seeds(std::vector<Seed> seeds, const ChainingParams& params);

}  // namespace saloba::seedext
