// Seed chaining: combine colinear seeds into candidate alignments
// (BWA-MEM-style O(s²) dynamic-programming chaining with gap penalties).
#pragma once

#include <vector>

#include "seedext/seeding.hpp"

namespace saloba::seedext {

struct Chain {
  std::vector<Seed> seeds;  ///< colinear, sorted by query position
  std::int64_t score = 0;   ///< Σ seed lengths − gap costs

  const Seed& first() const { return seeds.front(); }
  const Seed& last() const { return seeds.back(); }
};

struct ChainingParams {
  std::int64_t max_gap = 10000;       ///< max query/ref gap between seeds
  std::int64_t max_diag_drift = 500;  ///< max |Δdiagonal| between seeds
  double gap_cost = 0.15;             ///< per-base gap penalty in chain score
  std::size_t top_n = 4;              ///< chains returned, best first
  /// Chains scoring below best*drop_ratio are discarded.
  double drop_ratio = 0.5;
};

/// Returns up to top_n chains, best score first. Seeds may be shared
/// between chains (as in BWA-MEM before deduplication).
std::vector<Chain> chain_seeds(std::vector<Seed> seeds, const ChainingParams& params);

}  // namespace saloba::seedext
