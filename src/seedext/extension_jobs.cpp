#include "seedext/extension_jobs.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace saloba::seedext {
namespace {

std::size_t band_for(std::size_t query_len, const JobParams& params) {
  return std::max(params.min_band,
                  static_cast<std::size_t>(params.band_frac * static_cast<double>(query_len)));
}

}  // namespace

std::vector<ExtensionJob> make_extension_jobs(std::span<const seq::BaseCode> genome,
                                              std::span<const seq::BaseCode> read,
                                              const Chain& chain, std::uint32_t read_id,
                                              const JobParams& params) {
  std::vector<ExtensionJob> jobs;
  SALOBA_CHECK(!chain.seeds.empty());
  const Seed& anchor = chain.first();

  // Left of the anchor: query prefix [0, qpos), reference window ending at
  // rpos. Both reversed so the local alignment grows away from the seed.
  if (anchor.qpos >= params.min_query) {
    std::size_t qlen = anchor.qpos;
    std::size_t window = std::min<std::size_t>(anchor.rpos, qlen + band_for(qlen, params));
    if (window > 0) {
      ExtensionJob job;
      job.read_id = read_id;
      job.left = true;
      job.band = params.banded ? std::max<std::size_t>(1, band_for(qlen, params)) : 0;
      job.ref_origin = anchor.rpos - static_cast<std::uint32_t>(window);
      job.query.assign(read.rend() - anchor.qpos, read.rend());  // reversed prefix
      job.ref.assign(genome.rbegin() + static_cast<std::ptrdiff_t>(genome.size() - anchor.rpos),
                     genome.rbegin() +
                         static_cast<std::ptrdiff_t>(genome.size() - anchor.rpos + window));
      jobs.push_back(std::move(job));
    }
  }

  // Right of the anchor's end: query suffix, reference window onwards.
  const Seed& tail = chain.last();
  std::size_t q_end = tail.qpos + tail.len;
  std::size_t r_end = tail.rpos + tail.len;
  if (q_end < read.size() && read.size() - q_end >= params.min_query && r_end < genome.size()) {
    std::size_t qlen = read.size() - q_end;
    std::size_t window = std::min(genome.size() - r_end, qlen + band_for(qlen, params));
    ExtensionJob job;
    job.read_id = read_id;
    job.left = false;
    job.band = params.banded ? std::max<std::size_t>(1, band_for(qlen, params)) : 0;
    job.ref_origin = static_cast<std::uint32_t>(r_end);
    job.query.assign(read.begin() + static_cast<std::ptrdiff_t>(q_end), read.end());
    job.ref.assign(genome.begin() + static_cast<std::ptrdiff_t>(r_end),
                   genome.begin() + static_cast<std::ptrdiff_t>(r_end + window));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

seq::PairBatch jobs_to_batch(std::span<const ExtensionJob> jobs) {
  seq::PairBatch batch;
  batch.queries.reserve(jobs.size());
  batch.refs.reserve(jobs.size());
  for (const auto& j : jobs) {
    batch.add(j.query, j.ref, j.band);
  }
  return batch;
}

}  // namespace saloba::seedext
