// Extension-job extraction: turns chained seeds into the (query, reference)
// pairs a seed-extension kernel consumes — the exact interface between
// BWA-MEM's seeding stage and GASAL2/SALoBa in the paper (Sec. V-D), and the
// source of the Fig. 2 length distributions.
//
// BWA-MEM extends from each chain's anchor seed outwards in both directions.
// The reference window is wider than the remaining query (gaps may consume
// extra reference), which is why Fig. 2's reference distribution stretches
// to ~2× the read length. Outward extension is expressed as local alignment
// on the *reversed* prefix pair (left side) and the suffix pair (right side).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seedext/chaining.hpp"
#include "seq/sequence.hpp"

namespace saloba::seedext {

struct ExtensionJob {
  std::vector<seq::BaseCode> query;
  std::vector<seq::BaseCode> ref;
  std::uint32_t read_id = 0;
  bool left = false;  ///< true = left-of-seed extension (sequences reversed)
  /// Genome coordinate the job's reference window starts at (after
  /// orientation); lets the mapper reconstruct positions.
  std::uint32_t ref_origin = 0;
  /// DP band for this job (Sec. VII-B): only cells with |i - j| <= band are
  /// computed, with out-of-band cells reading H = 0, E/F = -inf. Matches the
  /// gap budget that sized the reference window, so the whole corridor the
  /// extension can plausibly use stays in band. 0 = full table
  /// (JobParams::banded == false).
  std::size_t band = 0;
};

struct JobParams {
  /// Reference window = query remainder + max(min_band, query·band_frac).
  std::size_t min_band = 100;
  double band_frac = 1.0;
  /// Jobs shorter than this on the query side are dropped (nothing to do).
  std::size_t min_query = 1;
  /// When true (default), every job carries the same max(min_band,
  /// query·band_frac) budget as its DP band (ExtensionJob::band), so
  /// downstream extension — CPU align_batch or any simulated kernel — prunes
  /// blocks outside |i - j| <= band. false restores full-table extension.
  bool banded = true;
};

/// Jobs for one chain: left + right extension of the anchor (first) seed.
std::vector<ExtensionJob> make_extension_jobs(std::span<const seq::BaseCode> genome,
                                              std::span<const seq::BaseCode> read,
                                              const Chain& chain, std::uint32_t read_id,
                                              const JobParams& params);

/// Flattens jobs into a kernel-ready PairBatch (order preserved).
seq::PairBatch jobs_to_batch(std::span<const ExtensionJob> jobs);

}  // namespace saloba::seedext
