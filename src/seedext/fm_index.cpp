#include "seedext/fm_index.hpp"

#include <algorithm>

#include "seedext/suffix_array.hpp"
#include "util/check.hpp"

namespace saloba::seedext {

FmIndex::FmIndex(std::span<const seq::BaseCode> text) : text_size_(text.size()) {
  sa_store_ = build_suffix_array(text);
  BwtResult bwt = build_bwt(text, sa_store_);
  primary_ = bwt.primary;
  bwt_store_ = std::move(bwt.bwt);

  // Occurrence checkpoints every kCheckpointEvery rows, including one for
  // the final partial block (occ() only reads checkpoints at row / 64, and
  // rows run to bwt.size() inclusive).
  const std::size_t rows = bwt_store_.size();
  checkpoint_store_.resize(rows / kCheckpointEvery + 1);
  std::array<std::uint32_t, 6> running{};
  for (std::size_t i = 0; i < rows; ++i) {
    if (i % kCheckpointEvery == 0) checkpoint_store_[i / kCheckpointEvery] = running;
    std::uint8_t c = bwt_store_[i];
    ++running[c == kBwtSentinel ? 5u : c];
  }
  if (rows % kCheckpointEvery == 0) {
    checkpoint_store_[rows / kCheckpointEvery] = running;
  }

  bwt_ = bwt_store_;
  checkpoints_ = checkpoint_store_;
  suffix_array_ = sa_store_;
  derive_first_rows();
}

FmIndex::FmIndex(std::size_t text_size, std::size_t primary,
                 std::span<const std::uint8_t> bwt,
                 std::span<const std::array<std::uint32_t, 6>> checkpoints,
                 std::span<const std::int32_t> suffix_array)
    : text_size_(text_size),
      primary_(primary),
      bwt_(bwt),
      checkpoints_(checkpoints),
      suffix_array_(suffix_array) {
  SALOBA_CHECK_MSG(bwt.size() == text_size + 1,
                   "adopted BWT of " << bwt.size() << " rows for a " << text_size
                                     << "-base text");
  SALOBA_CHECK_MSG(checkpoints.size() == bwt.size() / kCheckpointEvery + 1,
                   "adopted " << checkpoints.size() << " occ checkpoints for "
                              << bwt.size() << " BWT rows");
  SALOBA_CHECK_MSG(suffix_array.size() == text_size,
                   "adopted suffix array of " << suffix_array.size() << " for a "
                                              << text_size << "-base text");
  derive_first_rows();
}

void FmIndex::derive_first_rows() {
  // Character start rows: sentinel first (row 0), then base codes. Total
  // per-character counts come from occ over the whole BWT — O(1) with the
  // checkpoints, so the adopt path derives this without scanning the map.
  std::size_t acc = 1;  // row 0 = sentinel rotation
  for (int c = 0; c < seq::kAlphabetSize; ++c) {
    first_[static_cast<std::size_t>(c)] = acc;
    acc += occ(static_cast<std::uint8_t>(c), bwt_.size());
  }
}

std::size_t FmIndex::occ(std::uint8_t c, std::size_t row) const {
  SALOBA_DCHECK(row <= bwt_.size());
  const std::size_t cp = row / kCheckpointEvery;
  std::size_t count = checkpoints_[cp][c == kBwtSentinel ? 5u : c];
  for (std::size_t i = cp * kCheckpointEvery; i < row; ++i) {
    if (bwt_[i] == c) ++count;
  }
  return count;
}

FmIndex::Interval FmIndex::extend_left(const Interval& iv, seq::BaseCode c) const {
  SALOBA_DCHECK(c < seq::kAlphabetSize);
  Interval out;
  out.lo = first_[c] + occ(c, iv.lo);
  out.hi = first_[c] + occ(c, iv.hi);
  return out;
}

FmIndex::Interval FmIndex::search(std::span<const seq::BaseCode> pattern) const {
  Interval iv = whole_text();
  for (std::size_t k = pattern.size(); k-- > 0;) {
    if (pattern[k] >= seq::kAlphabetSize) return Interval{};
    iv = extend_left(iv, pattern[k]);
    if (iv.size() == 0) return iv;
  }
  return iv;
}

std::size_t FmIndex::count(std::span<const seq::BaseCode> pattern) const {
  return search(pattern).size();
}

std::vector<std::uint32_t> FmIndex::locate(std::span<const seq::BaseCode> pattern,
                                           std::size_t max_hits) const {
  Interval iv = search(pattern);
  std::vector<std::uint32_t> out;
  std::size_t take = iv.size();
  if (max_hits > 0) take = std::min(take, max_hits);
  out.reserve(take);
  for (std::size_t row = iv.lo; row < iv.lo + take; ++row) {
    SALOBA_DCHECK(row >= 1);  // row 0 (sentinel) can't match a nonempty pattern
    out.push_back(static_cast<std::uint32_t>(suffix_array_[row - 1]));
  }
  return out;
}

}  // namespace saloba::seedext
