#include "seedext/fm_index.hpp"

#include <algorithm>

#include "seedext/suffix_array.hpp"
#include "util/check.hpp"

namespace saloba::seedext {

FmIndex::FmIndex(std::span<const seq::BaseCode> text) : text_size_(text.size()) {
  suffix_array_ = build_suffix_array(text);
  bwt_ = build_bwt(text, suffix_array_);

  // Character start rows: sentinel first (row 0), then base codes.
  std::array<std::size_t, 6> counts{};
  for (std::uint8_t c : bwt_.bwt) {
    ++counts[c == kBwtSentinel ? 5u : c];
  }
  std::size_t acc = 1;  // row 0 = sentinel rotation
  for (int c = 0; c < seq::kAlphabetSize; ++c) {
    first_[static_cast<std::size_t>(c)] = acc;
    acc += counts[static_cast<std::size_t>(c)];
  }

  // Occurrence checkpoints every kCheckpointEvery rows.
  const std::size_t rows = bwt_.bwt.size();
  checkpoints_.resize(rows / kCheckpointEvery + 1);
  std::array<std::uint32_t, 6> running{};
  for (std::size_t i = 0; i < rows; ++i) {
    if (i % kCheckpointEvery == 0) checkpoints_[i / kCheckpointEvery] = running;
    std::uint8_t c = bwt_.bwt[i];
    ++running[c == kBwtSentinel ? 5u : c];
  }
  if (rows % kCheckpointEvery == 0) {
    checkpoints_[rows / kCheckpointEvery] = running;
  }
}

std::size_t FmIndex::occ(std::uint8_t c, std::size_t row) const {
  SALOBA_DCHECK(row <= bwt_.bwt.size());
  const std::size_t cp = row / kCheckpointEvery;
  std::size_t count = checkpoints_[cp][c == kBwtSentinel ? 5u : c];
  for (std::size_t i = cp * kCheckpointEvery; i < row; ++i) {
    if (bwt_.bwt[i] == c) ++count;
  }
  return count;
}

FmIndex::Interval FmIndex::extend_left(const Interval& iv, seq::BaseCode c) const {
  SALOBA_DCHECK(c < seq::kAlphabetSize);
  Interval out;
  out.lo = first_[c] + occ(c, iv.lo);
  out.hi = first_[c] + occ(c, iv.hi);
  return out;
}

FmIndex::Interval FmIndex::search(std::span<const seq::BaseCode> pattern) const {
  Interval iv = whole_text();
  for (std::size_t k = pattern.size(); k-- > 0;) {
    if (pattern[k] >= seq::kAlphabetSize) return Interval{};
    iv = extend_left(iv, pattern[k]);
    if (iv.size() == 0) return iv;
  }
  return iv;
}

std::size_t FmIndex::count(std::span<const seq::BaseCode> pattern) const {
  return search(pattern).size();
}

std::vector<std::uint32_t> FmIndex::locate(std::span<const seq::BaseCode> pattern,
                                           std::size_t max_hits) const {
  Interval iv = search(pattern);
  std::vector<std::uint32_t> out;
  std::size_t take = iv.size();
  if (max_hits > 0) take = std::min(take, max_hits);
  out.reserve(take);
  for (std::size_t row = iv.lo; row < iv.lo + take; ++row) {
    SALOBA_DCHECK(row >= 1);  // row 0 (sentinel) can't match a nonempty pattern
    out.push_back(static_cast<std::uint32_t>(suffix_array_[row - 1]));
  }
  return out;
}

}  // namespace saloba::seedext
