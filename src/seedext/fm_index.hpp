// FM-index: BWT + occurrence checkpoints + backward search, with locate()
// through a full suffix-array (acceptable at our multi-Mbp genome scale;
// documented trade-off vs. sampled SA).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "seedext/bwt.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {

class FmIndex {
 public:
  explicit FmIndex(std::span<const seq::BaseCode> text);

  std::size_t text_size() const { return text_size_; }

  /// Number of occurrences of `pattern` in the text.
  std::size_t count(std::span<const seq::BaseCode> pattern) const;

  /// Text positions of all occurrences (unsorted), capped at `max_hits`
  /// (0 = unlimited).
  std::vector<std::uint32_t> locate(std::span<const seq::BaseCode> pattern,
                                    std::size_t max_hits = 0) const;

  /// Backward-search interval [lo, hi) over BWT rows; empty when lo >= hi.
  struct Interval {
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::size_t size() const { return hi > lo ? hi - lo : 0; }
  };
  Interval search(std::span<const seq::BaseCode> pattern) const;

  /// Extends an interval by one character to the left of the pattern
  /// (backward-search step) — the primitive behind SMEM seeding.
  Interval extend_left(const Interval& iv, seq::BaseCode c) const;
  Interval whole_text() const { return Interval{0, bwt_.bwt.size()}; }

 private:
  std::size_t occ(std::uint8_t c, std::size_t row) const;  ///< #c in bwt[0,row)

  static constexpr std::size_t kCheckpointEvery = 64;
  std::size_t text_size_ = 0;
  BwtResult bwt_;
  std::array<std::size_t, 8> first_{};  ///< row of first rotation starting with c
  /// occ checkpoints: checkpoint_[i][c] = #c in bwt[0, i*64).
  std::vector<std::array<std::uint32_t, 6>> checkpoints_;
  std::vector<std::int32_t> suffix_array_;  ///< for locate()
};

}  // namespace saloba::seedext
