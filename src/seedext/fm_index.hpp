// FM-index: BWT + occurrence checkpoints + backward search, with locate()
// through a full suffix-array (acceptable at our multi-Mbp genome scale;
// documented trade-off vs. sampled SA).
//
// Like KmerIndex, the flat arrays (BWT string, occurrence checkpoints,
// suffix array) are span-backed and adoptable from external read-only
// memory: seedext::SharedIndex serializes them verbatim and mmap-loads them
// with zero copy. Only the tiny first-row table (8 words) is derived at
// adopt time, from the checkpoints.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "seedext/bwt.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {

class FmIndex {
 public:
  explicit FmIndex(std::span<const seq::BaseCode> text);

  /// Adopts serialized arrays (the mmap zero-copy load path): spans must
  /// stay valid and immutable for the index's lifetime and hold exactly
  /// what the building constructor produces — a BWT of text_size + 1 codes,
  /// occurrence checkpoints every kCheckpointEvery rows (including the
  /// final partial block), and the full suffix array.
  FmIndex(std::size_t text_size, std::size_t primary, std::span<const std::uint8_t> bwt,
          std::span<const std::array<std::uint32_t, 6>> checkpoints,
          std::span<const std::int32_t> suffix_array);

  std::size_t text_size() const { return text_size_; }

  /// Number of occurrences of `pattern` in the text.
  std::size_t count(std::span<const seq::BaseCode> pattern) const;

  /// Text positions of all occurrences (unsorted), capped at `max_hits`
  /// (0 = unlimited).
  std::vector<std::uint32_t> locate(std::span<const seq::BaseCode> pattern,
                                    std::size_t max_hits = 0) const;

  /// Backward-search interval [lo, hi) over BWT rows; empty when lo >= hi.
  struct Interval {
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::size_t size() const { return hi > lo ? hi - lo : 0; }
  };
  Interval search(std::span<const seq::BaseCode> pattern) const;

  /// Extends an interval by one character to the left of the pattern
  /// (backward-search step) — the primitive behind SMEM seeding.
  Interval extend_left(const Interval& iv, seq::BaseCode c) const;
  Interval whole_text() const { return Interval{0, bwt_.size()}; }

  /// Checkpoint stride — part of the serialized format contract.
  static constexpr std::size_t kCheckpointEvery = 64;

  /// The flat arrays, for serialization (seedext::SharedIndex).
  std::span<const std::uint8_t> bwt() const { return bwt_; }
  std::size_t primary() const { return primary_; }
  std::span<const std::array<std::uint32_t, 6>> checkpoints() const { return checkpoints_; }
  std::span<const std::int32_t> suffix_array() const { return suffix_array_; }

 private:
  std::size_t occ(std::uint8_t c, std::size_t row) const;  ///< #c in bwt[0,row)
  void derive_first_rows();  ///< first_ from total character counts

  std::size_t text_size_ = 0;
  std::size_t primary_ = 0;  ///< BWT row holding the sentinel
  // Owned storage when built from text; empty when adopting external memory.
  std::vector<std::uint8_t> bwt_store_;
  std::vector<std::array<std::uint32_t, 6>> checkpoint_store_;
  std::vector<std::int32_t> sa_store_;
  std::span<const std::uint8_t> bwt_;
  /// occ checkpoints: checkpoints_[i][c] = #c in bwt[0, i*64).
  std::span<const std::array<std::uint32_t, 6>> checkpoints_;
  std::span<const std::int32_t> suffix_array_;  ///< for locate()
  std::array<std::size_t, 8> first_{};  ///< row of first rotation starting with c
};

}  // namespace saloba::seedext
