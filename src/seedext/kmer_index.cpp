#include "seedext/kmer_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace saloba::seedext {

std::optional<std::uint64_t> KmerIndex::pack_kmer(std::span<const seq::BaseCode> kmer, int k) {
  SALOBA_DCHECK(kmer.size() >= static_cast<std::size_t>(k));
  std::uint64_t key = 0;
  for (int i = 0; i < k; ++i) {
    if (kmer[static_cast<std::size_t>(i)] >= 4) return std::nullopt;  // N
    key = (key << 2) | kmer[static_cast<std::size_t>(i)];
  }
  return key;
}

KmerIndex::KmerIndex(std::span<const seq::BaseCode> text, int k) : k_(k) {
  SALOBA_CHECK_MSG(k >= 4 && k <= 31, "k must be in [4, 31], got " << k);
  if (text.size() < static_cast<std::size_t>(k)) return;

  // Collect (kmer, pos) pairs with a rolling 2-bit encoding.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs;
  pairs.reserve(text.size());
  const std::uint64_t mask = (k == 32) ? ~0ULL : ((1ULL << (2 * k)) - 1);
  std::uint64_t key = 0;
  int valid = 0;  // consecutive non-N bases accumulated
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] >= 4) {
      valid = 0;
      key = 0;
      continue;
    }
    key = ((key << 2) | text[i]) & mask;
    if (++valid >= k) {
      pairs.emplace_back(key, static_cast<std::uint32_t>(i + 1 - static_cast<std::size_t>(k)));
    }
  }
  std::sort(pairs.begin(), pairs.end());

  keys_.reserve(pairs.size() / 2);
  offsets_.reserve(pairs.size() / 2 + 1);
  entries_.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i == 0 || pairs[i].first != pairs[i - 1].first) {
      keys_.push_back(pairs[i].first);
      offsets_.push_back(static_cast<std::uint32_t>(entries_.size()));
    }
    entries_.push_back(pairs[i].second);
  }
  offsets_.push_back(static_cast<std::uint32_t>(entries_.size()));
}

std::size_t KmerIndex::distinct_kmers() const { return keys_.size(); }

std::span<const std::uint32_t> KmerIndex::lookup(std::span<const seq::BaseCode> kmer) const {
  if (kmer.size() < static_cast<std::size_t>(k_)) return {};
  auto packed = pack_kmer(kmer, k_);
  if (!packed) return {};
  auto it = std::lower_bound(keys_.begin(), keys_.end(), *packed);
  if (it == keys_.end() || *it != *packed) return {};
  std::size_t idx = static_cast<std::size_t>(it - keys_.begin());
  return {entries_.data() + offsets_[idx],
          static_cast<std::size_t>(offsets_[idx + 1] - offsets_[idx])};
}

}  // namespace saloba::seedext
