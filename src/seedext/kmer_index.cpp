#include "seedext/kmer_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace saloba::seedext {

std::optional<std::uint64_t> KmerIndex::pack_kmer(std::span<const seq::BaseCode> kmer, int k) {
  SALOBA_CHECK_MSG(k >= kMinK && k <= kMaxK,
                   "k must be in [" << kMinK << ", " << kMaxK << "], got " << k);
  SALOBA_DCHECK(kmer.size() >= static_cast<std::size_t>(k));
  // Same masked rolling recurrence as the index build, so packed keys and
  // built keys are canonical (high bits zero) by the one shared path.
  const std::uint64_t mask = kmer_mask(k);
  std::uint64_t key = 0;
  for (int i = 0; i < k; ++i) {
    if (kmer[static_cast<std::size_t>(i)] >= 4) return std::nullopt;  // N
    key = ((key << 2) | kmer[static_cast<std::size_t>(i)]) & mask;
  }
  return key;
}

KmerIndex::KmerIndex(std::span<const seq::BaseCode> text, int k) : k_(k) {
  SALOBA_CHECK_MSG(k >= kMinK && k <= kMaxK,
                   "k must be in [" << kMinK << ", " << kMaxK << "], got " << k);
  SALOBA_CHECK_MSG(text.size() <= kMaxReferenceBases,
                   "reference of " << text.size() << " bases overflows the index's 32-bit "
                                   << "positions (limit " << kMaxReferenceBases
                                   << "); shard the reference instead");
  if (text.size() >= static_cast<std::size_t>(k)) {
    // Collect (kmer, pos) pairs with a rolling 2-bit encoding.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs;
    pairs.reserve(text.size());
    const std::uint64_t mask = kmer_mask(k);
    std::uint64_t key = 0;
    int valid = 0;  // consecutive non-N bases accumulated
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] >= 4) {
        valid = 0;
        key = 0;
        continue;
      }
      key = ((key << 2) | text[i]) & mask;
      if (++valid >= k) {
        pairs.emplace_back(key, static_cast<std::uint32_t>(i + 1 - static_cast<std::size_t>(k)));
      }
    }
    std::sort(pairs.begin(), pairs.end());

    keys_store_.reserve(pairs.size() / 2);
    offsets_store_.reserve(pairs.size() / 2 + 1);
    entries_store_.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (i == 0 || pairs[i].first != pairs[i - 1].first) {
        keys_store_.push_back(pairs[i].first);
        offsets_store_.push_back(static_cast<std::uint32_t>(entries_store_.size()));
      }
      entries_store_.push_back(pairs[i].second);
    }
  }
  offsets_store_.push_back(static_cast<std::uint32_t>(entries_store_.size()));
  keys_ = keys_store_;
  offsets_ = offsets_store_;
  entries_ = entries_store_;
}

KmerIndex::KmerIndex(int k, std::span<const std::uint64_t> keys,
                     std::span<const std::uint32_t> offsets,
                     std::span<const std::uint32_t> entries)
    : k_(k), keys_(keys), offsets_(offsets), entries_(entries) {
  SALOBA_CHECK_MSG(k >= kMinK && k <= kMaxK,
                   "k must be in [" << kMinK << ", " << kMaxK << "], got " << k);
  SALOBA_CHECK_MSG(offsets.size() == keys.size() + 1,
                   "adopted offsets size " << offsets.size() << " != keys size "
                                           << keys.size() << " + 1");
  SALOBA_CHECK_MSG(offsets.empty() || offsets.back() == entries.size(),
                   "adopted offsets end " << offsets.back() << " != entries size "
                                          << entries.size());
}

std::size_t KmerIndex::distinct_kmers() const { return keys_.size(); }

std::span<const std::uint32_t> KmerIndex::lookup(std::span<const seq::BaseCode> kmer) const {
  if (kmer.size() < static_cast<std::size_t>(k_)) return {};
  auto packed = pack_kmer(kmer, k_);
  if (!packed) return {};
  return lookup_packed(*packed);
}

std::span<const std::uint32_t> KmerIndex::lookup_packed(std::uint64_t key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return {};
  std::size_t idx = static_cast<std::size_t>(it - keys_.begin());
  return {entries_.data() + offsets_[idx],
          static_cast<std::size_t>(offsets_[idx + 1] - offsets_[idx])};
}

}  // namespace saloba::seedext
