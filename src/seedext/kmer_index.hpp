// K-mer hash index over the reference genome: the fast seeding path of the
// pipeline (sorted (kmer, position) table with binary-searched lookups —
// compact and cache-friendly compared to a node-per-kmer hash map).
//
// The three flat arrays (keys_/offsets_/entries_) are exposed as spans and
// can be adopted from external read-only memory: a SharedIndex mmap-loads
// the serialized arrays and constructs a view-backed KmerIndex over them
// with zero copy (see seedext/shared_index.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seedext {

class KmerIndex {
 public:
  /// Supported k range: 2 bits per base must fit a 64-bit key with room for
  /// the rolling shift, and kMaxK keeps every key's high bits zero so
  /// serialized keys are canonical (one masked packing path, no k == 32
  /// special case anywhere).
  static constexpr int kMinK = 4;
  static constexpr int kMaxK = 31;
  /// Positions and offsets are 32-bit; references beyond this are rejected
  /// at build time (and recorded as u64 in the on-disk header so the loader
  /// re-validates the limit).
  static constexpr std::size_t kMaxReferenceBases = 0xFFFFFFFFull;

  /// k in [kMinK, kMaxK]; k-mers containing N are not indexed.
  KmerIndex(std::span<const seq::BaseCode> text, int k);

  /// Adopts already-built flat arrays (the mmap zero-copy load path): the
  /// spans must stay valid and immutable for the index's lifetime, and must
  /// hold exactly what the building constructor would have produced —
  /// sorted distinct keys, offsets of size keys.size() + 1 delimiting each
  /// key's ascending position run in entries.
  KmerIndex(int k, std::span<const std::uint64_t> keys,
            std::span<const std::uint32_t> offsets,
            std::span<const std::uint32_t> entries);

  int k() const { return k_; }
  std::size_t distinct_kmers() const;
  std::size_t indexed_positions() const { return entries_.size(); }

  /// Positions where the k-mer starting at `kmer[0..k)` occurs.
  /// Returns an empty span for k-mers containing N.
  std::span<const std::uint32_t> lookup(std::span<const seq::BaseCode> kmer) const;

  /// Lookup by an already-packed canonical key (pack_kmer's form) — lets the
  /// sharded index pack once and probe every shard.
  std::span<const std::uint32_t> lookup_packed(std::uint64_t key) const;

  /// 2-bit packs a k-mer; nullopt if it contains N. Keys are masked to the
  /// low 2k bits — the same canonical form the rolling build produces.
  static std::optional<std::uint64_t> pack_kmer(std::span<const seq::BaseCode> kmer, int k);

  /// Low-2k-bit mask every key is reduced to, for k in [kMinK, kMaxK].
  static constexpr std::uint64_t kmer_mask(int k) {
    static_assert(2 * kMaxK < 64, "rolling k-mer keys must fit 64 bits unshifted");
    return (1ULL << (2 * k)) - 1;
  }

  /// The flat arrays, for serialization (seedext::SharedIndex).
  std::span<const std::uint64_t> keys() const { return keys_; }
  std::span<const std::uint32_t> offsets() const { return offsets_; }
  std::span<const std::uint32_t> entries() const { return entries_; }

 private:
  int k_;
  // Owned storage when built from text; empty when adopting external memory.
  std::vector<std::uint64_t> keys_store_;
  std::vector<std::uint32_t> offsets_store_;
  std::vector<std::uint32_t> entries_store_;
  // Parallel arrays sorted by key: keys_ holds each distinct k-mer once,
  // offsets_[i]..offsets_[i+1] indexes entries_ (positions, ascending).
  std::span<const std::uint64_t> keys_;
  std::span<const std::uint32_t> offsets_;
  std::span<const std::uint32_t> entries_;
};

}  // namespace saloba::seedext
