// K-mer hash index over the reference genome: the fast seeding path of the
// pipeline (sorted (kmer, position) table with binary-searched lookups —
// compact and cache-friendly compared to a node-per-kmer hash map).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seedext {

class KmerIndex {
 public:
  /// k in [4, 31]; k-mers containing N are not indexed.
  KmerIndex(std::span<const seq::BaseCode> text, int k);

  int k() const { return k_; }
  std::size_t distinct_kmers() const;
  std::size_t indexed_positions() const { return entries_.size(); }

  /// Positions where the k-mer starting at `kmer[0..k)` occurs.
  /// Returns an empty span for k-mers containing N.
  std::span<const std::uint32_t> lookup(std::span<const seq::BaseCode> kmer) const;

  /// 2-bit packs a k-mer; nullopt if it contains N.
  static std::optional<std::uint64_t> pack_kmer(std::span<const seq::BaseCode> kmer, int k);

 private:
  int k_;
  // Parallel arrays sorted by key: keys_ holds each distinct k-mer once,
  // offsets_[i]..offsets_[i+1] indexes entries_ (positions).
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> entries_;
};

}  // namespace saloba::seedext
