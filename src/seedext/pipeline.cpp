#include "seedext/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "align/sw_banded.hpp"
#include "core/align_service.hpp"
#include "align/sw_reference.hpp"
#include "align/traceback_engine.hpp"
#include "seedext/sam_output.hpp"
#include "seq/chunk_reader.hpp"
#include "seq/sam.hpp"
#include "util/bounded_queue.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace saloba::seedext {

ReadMapper::ReadMapper(std::vector<seq::BaseCode> genome, MapperParams params)
    : genome_(std::move(genome)), params_(std::move(params)) {
  SALOBA_CHECK_MSG(!genome_.empty(), "empty genome");
  // Every index acquisition routes through the shared registry: two mappers
  // over the same reference (same content, k, and sections) share one
  // index instead of each rebuilding — the reference is the invariant,
  // reads are the traffic.
  if (params_.index_shards > 1) {
    SALOBA_CHECK_MSG(!params_.use_fm_seeding,
                     "reference sharding covers k-mer seeding only (use_fm_seeding is set)");
    IndexShardingOptions sharding{params_.index_shards, params_.index_lane_weights,
                                  params_.index_path};
    sharded_index_ = std::make_unique<ShardedKmerIndex>(genome_, params_.k, sharding);
  } else {
    IndexOptions options{params_.k, /*kmer=*/!params_.use_fm_seeding,
                         /*fm=*/params_.use_fm_seeding};
    index_ = params_.index_path.empty()
                 ? IndexRegistry::instance().acquire_memory(genome_, options)
                 : IndexRegistry::instance().acquire_file(params_.index_path, genome_, options);
  }
}

ReadMapper::~ReadMapper() = default;
ReadMapper::ReadMapper(ReadMapper&&) noexcept = default;

std::vector<Seed> ReadMapper::seeds_of(std::span<const seq::BaseCode> read) const {
  if (sharded_index_) {
    return find_seeds(*sharded_index_, genome_, read, params_.seeding);
  }
  if (params_.use_fm_seeding) {
    return find_seeds_fm(index_->fm(), read, params_.seeding);
  }
  return find_seeds(index_->kmer(), genome_, read, params_.seeding);
}

ReadMapper::StrandResult ReadMapper::analyze(std::span<const seq::BaseCode> read) const {
  StrandResult out;
  auto seeds = seeds_of(read);
  if (seeds.empty()) return out;
  out.chains = chain_seeds(std::move(seeds), params_.chaining);
  if (!out.chains.empty()) out.coverage = out.chains.front().score;
  return out;
}

ReadMapper::PreparedRead ReadMapper::prepare(std::span<const seq::BaseCode> read) const {
  PreparedRead pre;
  if (read.empty()) return pre;

  StrandResult fwd = analyze(read);
  std::vector<seq::BaseCode> rc =
      seq::reverse_complement(std::vector<seq::BaseCode>(read.begin(), read.end()));
  StrandResult rev = analyze(rc);
  return prepare_from_chains(read, rc, fwd.chains, rev.chains);
}

ReadMapper::PreparedRead ReadMapper::prepare_from_chains(
    std::span<const seq::BaseCode> read, std::span<const seq::BaseCode> rc,
    const std::vector<Chain>& fwd, const std::vector<Chain>& rev) const {
  PreparedRead pre;
  if (read.empty()) return pre;

  // Strand choice by best chain score — identical to the per-read analyze()
  // comparison (collect_chains emits best-first).
  const std::int64_t fwd_cov = fwd.empty() ? 0 : fwd.front().score;
  const std::int64_t rev_cov = rev.empty() ? 0 : rev.front().score;
  pre.use_rev = rev_cov > fwd_cov;
  const std::vector<Chain>& chosen = pre.use_rev ? rev : fwd;
  std::span<const seq::BaseCode> oriented = pre.use_rev ? rc : read;
  if (chosen.empty()) return pre;

  const Chain& best = chosen.front();
  pre.has_chain = true;
  pre.anchor = best.first();
  pre.jobs = make_extension_jobs(genome_, oriented, best, 0, params_.jobs);
  for (const Seed& s : best.seeds) {
    pre.seed_score += static_cast<align::Score>(s.len) * params_.scoring.match;
  }
  return pre;
}

ReadMapping ReadMapper::finalize(const PreparedRead& pre,
                                 std::span<const align::AlignmentResult> job_results) {
  ReadMapping mapping;
  if (!pre.has_chain) return mapping;

  align::Score score = pre.seed_score;
  std::optional<align::AlignmentResult> left_result;
  for (std::size_t j = 0; j < pre.jobs.size(); ++j) {
    score += job_results[j].score;
    if (pre.jobs[j].left) left_result = job_results[j];
  }

  std::size_t start;
  if (left_result && left_result->score > 0) {
    start = pre.anchor.rpos - static_cast<std::size_t>(left_result->ref_end) - 1;
  } else {
    // Diagonal projection of the read start through the anchor seed.
    start = pre.anchor.rpos >= pre.anchor.qpos ? pre.anchor.rpos - pre.anchor.qpos : 0;
  }

  mapping.mapped = true;
  mapping.ref_pos = start;
  mapping.reverse_strand = pre.use_rev;
  mapping.score = score;
  return mapping;
}

ReadMapping ReadMapper::map(std::span<const seq::BaseCode> read) const {
  PreparedRead pre = prepare(read);
  std::vector<align::AlignmentResult> results(pre.jobs.size());
  for (std::size_t j = 0; j < pre.jobs.size(); ++j) {
    // Honor the job's own band so the per-job CPU path stays bit-identical
    // to the batched path (jobs_to_batch threads the same band to the
    // extender's backend, CPU or simulated kernel).
    const ExtensionJob& job = pre.jobs[j];
    if (job.band == 0) {
      results[j] = align::smith_waterman(job.ref, job.query, params_.scoring);
    } else {
      results[j] = align::smith_waterman_banded(job.ref, job.query, params_.scoring,
                                                align::BandedParams{job.band, 0})
                       .result;
    }
  }
  return finalize(pre, results);
}

std::vector<ReadMapping> ReadMapper::map_batch(
    std::span<const std::vector<seq::BaseCode>> reads) const {
  std::vector<ReadMapping> out(reads.size());
  util::parallel_for_indexed(reads.size(), [&](std::size_t i) { out[i] = map(reads[i]); });
  return out;
}

std::vector<ReadMapping> ReadMapper::map_batch(
    std::span<const std::vector<seq::BaseCode>> reads, const BatchExtender& extend,
    const TracedBatchExtender& trace, ChainStageStats* chain_stats) const {
  std::vector<ReadMapping> out = map_batch(reads, extend, chain_stats);
  attach_tracebacks(reads, out, trace);
  return out;
}

std::vector<ReadMapping> ReadMapper::map_session(
    std::span<const std::vector<seq::BaseCode>> reads, core::AlignService& service,
    core::SessionOptions session, ChainStageStats* chain_stats) const {
  // One service tenant per call: each phase batch goes through
  // AlignService::align, which multiplexes it with whatever other tenants
  // have queued — same results as a private Aligner, shared capacity.
  BatchExtender extend = [&](const seq::PairBatch& batch) {
    return service.align(batch, session).results;
  };
  if (service.options().traceback) {
    TracedBatchExtender trace = [&](const seq::PairBatch& batch) {
      return std::move(service.align(batch, session).traced);
    };
    return map_batch(reads, extend, trace, chain_stats);
  }
  return map_batch(reads, extend, chain_stats);
}

void ReadMapper::attach_tracebacks(std::span<const std::vector<seq::BaseCode>> reads,
                                   std::span<ReadMapping> mappings,
                                   const TracedBatchExtender& trace) const {
  SALOBA_CHECK_MSG(reads.size() == mappings.size(),
                   "attach_tracebacks got " << mappings.size() << " mappings for "
                                            << reads.size() << " reads");
  // One batched trace over every mapped read's (oriented read, genome
  // window) pair — the same window to_sam_record's CIGAR is defined over.
  std::vector<std::size_t> index;
  seq::PairBatch batch;
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    if (!mappings[i].mapped || reads[i].empty()) continue;
    std::vector<seq::BaseCode> oriented =
        mappings[i].reverse_strand ? seq::reverse_complement(reads[i]) : reads[i];
    MappedWindow win = mapped_window(genome_.size(), mappings[i].ref_pos, oriented.size());
    batch.add(std::move(oriented),
              std::vector<seq::BaseCode>(
                  genome_.begin() + static_cast<std::ptrdiff_t>(win.start),
                  genome_.begin() + static_cast<std::ptrdiff_t>(win.end)));
    index.push_back(i);
  }
  if (batch.size() == 0) return;
  // Window CIGARs are full-table by definition (the window's slack offsets
  // the alignment diagonal, so an extension-style band around |i - j| = 0
  // would miss it). Mark the batch as carrying explicit full-table bands so
  // a banded extender's Aligner-level band policy can never be materialized
  // onto these pairs — batch-own bands always win.
  batch.bands.assign(batch.size(), 0);

  std::vector<align::TracedAlignment> traced;
  if (trace) {
    traced = trace(batch);
    SALOBA_CHECK_MSG(traced.size() == batch.size(),
                     "traced extender returned " << traced.size() << " traces for "
                                                 << batch.size() << " pairs");
  } else {
    // In-process fallback: the linear-memory engine, host-parallel.
    traced.resize(batch.size());
    util::parallel_for_indexed(batch.size(), [&](std::size_t p) {
      traced[p] =
          align::banded_traceback(batch.refs[p], batch.queries[p], params_.scoring).traced;
    });
  }
  for (std::size_t p = 0; p < batch.size(); ++p) {
    mappings[index[p]].traced = std::move(traced[p]);
    mappings[index[p]].has_traceback = true;
  }
}

std::vector<ReadMapping> ReadMapper::map_batch(
    std::span<const std::vector<seq::BaseCode>> reads, const BatchExtender& extend,
    ChainStageStats* chain_stats) const {
  // Stage 1a (host-parallel): seeding, both strands of every read.
  std::vector<std::vector<seq::BaseCode>> rc(reads.size());
  std::vector<std::vector<Seed>> fwd_seeds(reads.size());
  std::vector<std::vector<Seed>> rev_seeds(reads.size());
  util::parallel_for_indexed(reads.size(), [&](std::size_t i) {
    if (reads[i].empty()) return;
    fwd_seeds[i] = seeds_of(reads[i]);
    rc[i] = seq::reverse_complement(reads[i]);
    rev_seeds[i] = seeds_of(rc[i]);
  });

  // Stage 1b: every strand's anchors as one ChainBatch — task 2i is read
  // i's forward strand, 2i+1 its reverse complement.
  ChainBatch chain_batch(params_.chaining);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    chain_batch.add_task(std::move(fwd_seeds[i]));
    chain_batch.add_task(std::move(rev_seeds[i]));
  }

  // Stage 1c: the batched chaining phase — the injected scheduler-backed
  // chainer when set, the in-process SIMD engine otherwise. Either is
  // bit-identical to the sequential chain_seeds the per-read path runs.
  ChainStageResult chained;
  if (chainer_) {
    chained = chainer_(chain_batch);
  } else {
    ChainEngineStats engine_stats;
    chained.chains = chain_batch_run(chain_batch, &engine_stats);
    chained.chaining_ms = engine_stats.wall_ms;
    chained.anchors = engine_stats.anchors;
    chained.updates = engine_stats.pushes + engine_stats.settled;
  }
  SALOBA_CHECK_MSG(chained.chains.size() == chain_batch.tasks(),
                   "chainer returned " << chained.chains.size() << " chain lists for "
                                       << chain_batch.tasks() << " tasks");
  if (chain_stats) {
    chain_stats->chaining_ms = chained.chaining_ms;
    chain_stats->tasks = chain_batch.tasks();
    chain_stats->anchors = chained.anchors;
    chain_stats->updates = chained.updates;
  }

  // Stage 1d (host-parallel): strand choice + job extraction per read.
  std::vector<PreparedRead> prepared(reads.size());
  util::parallel_for_indexed(reads.size(), [&](std::size_t i) {
    prepared[i] = prepare_from_chains(reads[i], rc[i], chained.chains[2 * i],
                                      chained.chains[2 * i + 1]);
  });

  // Stage 2: one kernel-sized batch of every read's jobs, in read order.
  std::vector<ExtensionJob> jobs;
  std::vector<std::size_t> first_job(reads.size() + 1, 0);
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    first_job[i] = jobs.size();
    for (const auto& j : prepared[i].jobs) jobs.push_back(j);
  }
  first_job[reads.size()] = jobs.size();

  std::vector<align::AlignmentResult> results;
  if (!jobs.empty()) results = extend(jobs_to_batch(jobs));
  SALOBA_CHECK_MSG(results.size() == jobs.size(),
                   "extender returned " << results.size() << " results for " << jobs.size()
                                        << " jobs");

  // Stage 3: scatter extension scores back per read.
  std::vector<ReadMapping> out(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    std::span<const align::AlignmentResult> slice(results.data() + first_job[i],
                                                  first_job[i + 1] - first_job[i]);
    out[i] = finalize(prepared[i], slice);
  }
  return out;
}

namespace {

/// The one streaming loop behind every map_stream overload; `trace` is null
/// for score-only streams, a (possibly empty, = engine fallback) extender
/// when the traceback stage is on.
StreamMapStats run_map_stream(
    const ReadMapper& mapper, seq::SequenceChunkReader& reader, const BatchExtender& extend,
    const TracedBatchExtender* trace,
    const std::function<void(const seq::Sequence&, const ReadMapping&)>& sink,
    std::size_t queue_capacity) {
  util::Timer timer;
  StreamMapStats stats;
  util::BoundedQueue<seq::SequenceChunk> queue(queue_capacity);

  // Producer: parse chunks while the consumer maps the previous ones. The
  // bounded queue is the residency cap; closing it (consumer failure) makes
  // the pending push fail, so the producer always joins.
  std::exception_ptr read_failure;
  std::thread producer([&] {
    try {
      seq::SequenceChunk chunk;
      while (reader.next(chunk)) {
        if (!queue.push(std::move(chunk))) return;
        chunk = seq::SequenceChunk{};
      }
      queue.close();
    } catch (...) {
      read_failure = std::current_exception();
      queue.close();
    }
  });

  try {
    while (auto chunk = queue.pop()) {
      std::vector<std::vector<seq::BaseCode>> read_seqs;
      read_seqs.reserve(chunk->records.size());
      for (const auto& r : chunk->records) read_seqs.push_back(r.bases);
      ChainStageStats chunk_chaining;
      auto mappings = trace ? mapper.map_batch(read_seqs, extend, *trace, &chunk_chaining)
                            : mapper.map_batch(read_seqs, extend, &chunk_chaining);
      for (std::size_t i = 0; i < mappings.size(); ++i) {
        stats.mapped += mappings[i].mapped ? 1 : 0;
        if (sink) sink(chunk->records[i], mappings[i]);
      }
      stats.reads += mappings.size();
      stats.chaining_ms += chunk_chaining.chaining_ms;
      stats.chain_anchors += chunk_chaining.anchors;
      stats.chain_updates += chunk_chaining.updates;
      ++stats.chunks;
    }
  } catch (...) {
    queue.close();
    producer.join();
    throw;
  }

  producer.join();
  if (read_failure) std::rethrow_exception(read_failure);
  stats.wall_ms = timer.millis();
  return stats;
}

}  // namespace

StreamMapStats ReadMapper::map_stream(
    seq::SequenceChunkReader& reader, const BatchExtender& extend,
    const std::function<void(const seq::Sequence&, const ReadMapping&)>& sink,
    std::size_t queue_capacity) const {
  return run_map_stream(*this, reader, extend, /*trace=*/nullptr, sink, queue_capacity);
}

StreamMapStats ReadMapper::map_stream(
    seq::SequenceChunkReader& reader, const BatchExtender& extend,
    const TracedBatchExtender& trace,
    const std::function<void(const seq::Sequence&, const ReadMapping&)>& sink,
    std::size_t queue_capacity) const {
  return run_map_stream(*this, reader, extend, &trace, sink, queue_capacity);
}

StreamMapStats ReadMapper::map_stream(seq::SequenceChunkReader& reader,
                                      const BatchExtender& extend, seq::SamWriter& writer,
                                      const std::string& reference_name,
                                      std::size_t queue_capacity) const {
  return map_stream(
      reader, extend,
      [&](const seq::Sequence& read, const ReadMapping& mapping) {
        writer.write(to_sam_record(*this, read, mapping, reference_name));
      },
      queue_capacity);
}

StreamMapStats ReadMapper::map_stream(seq::SequenceChunkReader& reader,
                                      const BatchExtender& extend,
                                      const TracedBatchExtender& trace,
                                      seq::SamWriter& writer,
                                      const std::string& reference_name,
                                      std::size_t queue_capacity) const {
  return map_stream(
      reader, extend, trace,
      [&](const seq::Sequence& read, const ReadMapping& mapping) {
        writer.write(to_sam_record(*this, read, mapping, reference_name));
      },
      queue_capacity);
}

std::vector<ExtensionJob> ReadMapper::collect_jobs(
    std::span<const std::vector<seq::BaseCode>> reads) const {
  // Per-read job lists computed in parallel, then flattened in read order.
  std::vector<std::vector<ExtensionJob>> per_read(reads.size());
  util::parallel_for_indexed(reads.size(), [&](std::size_t i) {
    const auto& read = reads[i];
    if (read.empty()) return;
    StrandResult fwd = analyze(read);
    std::vector<seq::BaseCode> rc = seq::reverse_complement(read);
    StrandResult rev = analyze(rc);
    const bool use_rev = rev.coverage > fwd.coverage;
    const StrandResult& chosen = use_rev ? rev : fwd;
    std::span<const seq::BaseCode> oriented =
        use_rev ? std::span<const seq::BaseCode>(rc) : std::span<const seq::BaseCode>(read);
    for (const Chain& chain : chosen.chains) {
      auto jobs = make_extension_jobs(genome_, oriented, chain,
                                      static_cast<std::uint32_t>(i), params_.jobs);
      for (auto& j : jobs) per_read[i].push_back(std::move(j));
    }
  });
  std::vector<ExtensionJob> out;
  for (auto& v : per_read) {
    for (auto& j : v) out.push_back(std::move(j));
  }
  return out;
}

}  // namespace saloba::seedext
