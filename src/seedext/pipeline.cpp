#include "seedext/pipeline.hpp"

#include <algorithm>

#include "align/sw_reference.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace saloba::seedext {

ReadMapper::ReadMapper(std::vector<seq::BaseCode> genome, MapperParams params)
    : genome_(std::move(genome)), params_(params) {
  SALOBA_CHECK_MSG(!genome_.empty(), "empty genome");
  if (params_.use_fm_seeding) {
    fm_index_ = std::make_unique<FmIndex>(genome_);
  } else {
    kmer_index_ = std::make_unique<KmerIndex>(genome_, params_.k);
  }
}

ReadMapper::~ReadMapper() = default;
ReadMapper::ReadMapper(ReadMapper&&) noexcept = default;

std::vector<Seed> ReadMapper::seeds_of(std::span<const seq::BaseCode> read) const {
  if (params_.use_fm_seeding) {
    return find_seeds_fm(*fm_index_, read, params_.seeding);
  }
  return find_seeds(*kmer_index_, genome_, read, params_.seeding);
}

ReadMapper::StrandResult ReadMapper::analyze(std::span<const seq::BaseCode> read) const {
  StrandResult out;
  auto seeds = seeds_of(read);
  if (seeds.empty()) return out;
  out.chains = chain_seeds(std::move(seeds), params_.chaining);
  if (!out.chains.empty()) out.coverage = out.chains.front().score;
  return out;
}

ReadMapping ReadMapper::map(std::span<const seq::BaseCode> read) const {
  ReadMapping mapping;
  if (read.empty()) return mapping;

  StrandResult fwd = analyze(read);
  std::vector<seq::BaseCode> rc =
      seq::reverse_complement(std::vector<seq::BaseCode>(read.begin(), read.end()));
  StrandResult rev = analyze(rc);

  const bool use_rev = rev.coverage > fwd.coverage;
  const StrandResult& chosen = use_rev ? rev : fwd;
  std::span<const seq::BaseCode> oriented = use_rev ? std::span<const seq::BaseCode>(rc) : read;
  if (chosen.chains.empty()) return mapping;

  const Chain& best = chosen.chains.front();
  auto jobs = make_extension_jobs(genome_, oriented, best, 0, params_.jobs);

  align::Score score = 0;
  for (const Seed& s : best.seeds) {
    score += static_cast<align::Score>(s.len) * params_.scoring.match;
  }
  std::optional<align::AlignmentResult> left_result;
  for (const auto& job : jobs) {
    auto r = align::smith_waterman(job.ref, job.query, params_.scoring);
    score += r.score;
    if (job.left) left_result = r;
  }

  const Seed& anchor = best.first();
  std::size_t start;
  if (left_result && left_result->score > 0) {
    start = anchor.rpos - static_cast<std::size_t>(left_result->ref_end) - 1;
  } else {
    // Diagonal projection of the read start through the anchor seed.
    start = anchor.rpos >= anchor.qpos ? anchor.rpos - anchor.qpos : 0;
  }

  mapping.mapped = true;
  mapping.ref_pos = start;
  mapping.reverse_strand = use_rev;
  mapping.score = score;
  return mapping;
}

std::vector<ReadMapping> ReadMapper::map_batch(
    std::span<const std::vector<seq::BaseCode>> reads) const {
  std::vector<ReadMapping> out(reads.size());
  util::parallel_for_indexed(reads.size(), [&](std::size_t i) { out[i] = map(reads[i]); });
  return out;
}

std::vector<ExtensionJob> ReadMapper::collect_jobs(
    std::span<const std::vector<seq::BaseCode>> reads) const {
  // Per-read job lists computed in parallel, then flattened in read order.
  std::vector<std::vector<ExtensionJob>> per_read(reads.size());
  util::parallel_for_indexed(reads.size(), [&](std::size_t i) {
    const auto& read = reads[i];
    if (read.empty()) return;
    StrandResult fwd = analyze(read);
    std::vector<seq::BaseCode> rc = seq::reverse_complement(read);
    StrandResult rev = analyze(rc);
    const bool use_rev = rev.coverage > fwd.coverage;
    const StrandResult& chosen = use_rev ? rev : fwd;
    std::span<const seq::BaseCode> oriented =
        use_rev ? std::span<const seq::BaseCode>(rc) : std::span<const seq::BaseCode>(read);
    for (const Chain& chain : chosen.chains) {
      auto jobs = make_extension_jobs(genome_, oriented, chain,
                                      static_cast<std::uint32_t>(i), params_.jobs);
      for (auto& j : jobs) per_read[i].push_back(std::move(j));
    }
  });
  std::vector<ExtensionJob> out;
  for (auto& v : per_read) {
    for (auto& j : v) out.push_back(std::move(j));
  }
  return out;
}

}  // namespace saloba::seedext
