// End-to-end seed-and-extend read mapping — the BWA-MEM stand-in that feeds
// the extension kernels (paper Sec. V-D). Seeding (k-mer or FM-index) →
// chaining → extension-job extraction → local-alignment extension → mapping.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "align/scoring.hpp"
#include "seedext/chaining.hpp"
#include "seedext/extension_jobs.hpp"
#include "seedext/fm_index.hpp"
#include "seedext/kmer_index.hpp"
#include "seedext/seeding.hpp"
#include "seq/sequence.hpp"

namespace saloba::seedext {

struct MapperParams {
  int k = 16;
  bool use_fm_seeding = false;  ///< k-mer index by default; FM-index optional
  SeedingParams seeding;
  ChainingParams chaining;
  JobParams jobs;
  align::ScoringScheme scoring;
};

struct ReadMapping {
  bool mapped = false;
  std::size_t ref_pos = 0;      ///< inferred 0-based genome start of the read
  bool reverse_strand = false;
  align::Score score = 0;       ///< seed matches + extension scores
};

class ReadMapper {
 public:
  ReadMapper(std::vector<seq::BaseCode> genome, MapperParams params);
  ~ReadMapper();
  ReadMapper(ReadMapper&&) noexcept;

  const std::vector<seq::BaseCode>& genome() const { return genome_; }
  const MapperParams& params() const { return params_; }

  /// Maps one read (tries both strands, extends the best chains on the CPU).
  ReadMapping map(std::span<const seq::BaseCode> read) const;

  /// Host-parallel batch mapping; output order matches input order.
  std::vector<ReadMapping> map_batch(
      std::span<const std::vector<seq::BaseCode>> reads) const;

  /// Extracts every extension job the given reads generate (best strand,
  /// all surviving chains) — the kernel workload of Fig. 2 / Fig. 8.
  std::vector<ExtensionJob> collect_jobs(
      std::span<const std::vector<seq::BaseCode>> reads) const;

  /// Seeds for one read on its forward strand (exposed for tests/examples).
  std::vector<Seed> seeds_of(std::span<const seq::BaseCode> read) const;

 private:
  struct StrandResult {
    std::vector<Chain> chains;
    std::int64_t coverage = 0;  ///< best chain score (strand selector)
  };
  StrandResult analyze(std::span<const seq::BaseCode> read) const;

  std::vector<seq::BaseCode> genome_;
  MapperParams params_;
  std::unique_ptr<KmerIndex> kmer_index_;
  std::unique_ptr<FmIndex> fm_index_;
};

}  // namespace saloba::seedext
