// End-to-end seed-and-extend read mapping — the BWA-MEM stand-in that feeds
// the extension kernels (paper Sec. V-D). Seeding (k-mer or FM-index) →
// chaining → extension-job extraction → local-alignment extension → mapping.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "align/alignment_result.hpp"
#include "align/scoring.hpp"
#include "core/options.hpp"
#include "seedext/chain_batch.hpp"
#include "seedext/chain_engine.hpp"
#include "seedext/chaining.hpp"
#include "seedext/extension_jobs.hpp"
#include "seedext/fm_index.hpp"
#include "seedext/kmer_index.hpp"
#include "seedext/seeding.hpp"
#include "seedext/shared_index.hpp"
#include "seq/sequence.hpp"

namespace saloba::seq {
class SequenceChunkReader;  // seq/chunk_reader.hpp
class SamWriter;            // seq/sam.hpp
}  // namespace saloba::seq

namespace saloba::core {
class AlignService;  // core/align_service.hpp
}  // namespace saloba::core

namespace saloba::seedext {

struct MapperParams {
  int k = 16;
  bool use_fm_seeding = false;  ///< k-mer index by default; FM-index optional

  // --- Shared-index routing (seedext::SharedIndex) -------------------------
  /// Non-empty: the reference index is acquired through the shared-index
  /// registry as an mmap of this file (built and saved on first use,
  /// validate-and-adopt afterwards) instead of rebuilt in memory. Every
  /// mapper/tenant naming the same path and k aliases one mapping.
  /// With index_shards > 1 this becomes the per-shard path prefix
  /// (IndexShardingOptions::path_prefix).
  std::string index_path;
  /// > 1: k-mer seeding goes through a reference-sharded index — the genome
  /// is cut into this many overlapping windows with one sub-index each,
  /// placed across lanes by weighted LPT. Seeds (and therefore mappings and
  /// SAM bytes) are bit-identical to the monolithic index. K-mer seeding
  /// only; incompatible with use_fm_seeding.
  std::size_t index_shards = 1;
  /// Heterogeneous lane weights for index-shard placement (empty = 1 lane).
  std::vector<double> index_lane_weights;

  SeedingParams seeding;
  ChainingParams chaining;
  JobParams jobs;
  align::ScoringScheme scoring;
};

struct ReadMapping {
  bool mapped = false;
  std::size_t ref_pos = 0;      ///< inferred 0-based genome start of the read
  bool reverse_strand = false;
  align::Score score = 0;       ///< seed matches + extension scores
  /// Traced alignment of the oriented read against its mapped genome window
  /// (window coordinates; seedext::mapped_window recovers the genome
  /// offset), filled by the traceback-enabled mapping paths so
  /// to_sam_record can emit the CIGAR without re-aligning anything.
  align::TracedAlignment traced;
  bool has_traceback = false;  ///< `traced` is populated
};

/// Aggregates of one map_stream run.
struct StreamMapStats {
  std::size_t reads = 0;
  std::size_t mapped = 0;
  std::size_t chunks = 0;
  double wall_ms = 0.0;
  /// Chaining-stage time summed over chunks (batched phase makespan when a
  /// BatchChainer is injected, in-process engine wall time otherwise); kept
  /// out of wall_ms accounting so the stream reports the phase split the
  /// same way AlignOutput splits score/traceback.
  double chaining_ms = 0.0;
  std::size_t chain_anchors = 0;  ///< anchors chained over the whole stream
  std::size_t chain_updates = 0;  ///< push + settlement candidates evaluated
};

/// What the batched chaining stage of one map_batch call produced/spent.
struct ChainStageStats {
  double chaining_ms = 0.0;
  std::size_t tasks = 0;    ///< strand tasks chained (2 per non-empty read)
  std::size_t anchors = 0;  ///< seeds across those tasks
  std::size_t updates = 0;  ///< push + settlement candidates evaluated
};

/// A batch extension engine: aligns every (query, reference) pair of a
/// PairBatch, output order matching input order. core::Aligner's
/// batch_extender() adapts the scheduler-backed public path (CPU or any
/// simulated kernel, sharded across devices) to this signature, so the
/// Sec. V-D pipeline exercises the same code as the benches.
using BatchExtender =
    std::function<std::vector<align::AlignmentResult>(const seq::PairBatch&)>;

/// A batched two-phase engine: score pass + traceback phase for every pair
/// of a PairBatch, one TracedAlignment per pair in input order.
/// core::Aligner::traced_extender() (AlignerOptions::traceback = true)
/// adapts the scheduler-backed public path to this signature; a null
/// TracedBatchExtender makes the mapper fall back to the in-process
/// linear-memory engine (align::banded_traceback), host-parallel.
using TracedBatchExtender =
    std::function<std::vector<align::TracedAlignment>(const seq::PairBatch&)>;

/// What a batched chaining engine returns: one chain list per ChainBatch
/// task id, plus the phase's time/counter accounting.
struct ChainStageResult {
  std::vector<std::vector<Chain>> chains;
  double chaining_ms = 0.0;
  std::size_t anchors = 0;
  std::size_t updates = 0;  ///< push + settlement candidates evaluated
};

/// A batched chaining engine: chains every task of a ChainBatch.
/// core::Aligner::batch_chainer() adapts the scheduler-orchestrated phase
/// (BatchScheduler::chain — weighted-LPT task shards across backend lanes,
/// the SIMD forward-only kernel per task) to this signature; a null chainer
/// makes the mapper run the in-process engine host-parallel. Either path is
/// bit-identical to sequential chain_seeds per task.
using BatchChainer = std::function<ChainStageResult(const ChainBatch&)>;

class ReadMapper {
 public:
  ReadMapper(std::vector<seq::BaseCode> genome, MapperParams params);
  ~ReadMapper();
  ReadMapper(ReadMapper&&) noexcept;

  const std::vector<seq::BaseCode>& genome() const { return genome_; }
  const MapperParams& params() const { return params_; }

  /// Maps one read (tries both strands, extends the best chains on the CPU).
  ReadMapping map(std::span<const seq::BaseCode> read) const;

  /// Host-parallel batch mapping; output order matches input order.
  std::vector<ReadMapping> map_batch(
      std::span<const std::vector<seq::BaseCode>> reads) const;

  /// Routes the chaining stage of every batched mapping call through
  /// `chainer` (e.g. core::Aligner::batch_chainer()) instead of the
  /// in-process engine. Mappings are unchanged — every BatchChainer is
  /// bit-identical to the sequential oracle — only the execution (lanes,
  /// shards, simulated-device accounting) moves. Null restores the default.
  void set_batch_chainer(BatchChainer chainer) { chainer_ = std::move(chainer); }

  /// Batch mapping with the extension stage routed through `extend`: all
  /// reads' extension jobs are gathered into one kernel-sized PairBatch and
  /// aligned in a single call (the paper's batched seed-extension shape)
  /// instead of per-job CPU alignments. Both strands of every read are
  /// chained first as one ChainBatch through the batched chaining stage
  /// (set_batch_chainer, or the in-process SIMD engine); `chain_stats`, when
  /// non-null, receives that stage's time and counters. Mappings are
  /// identical to map_batch(reads) for any extender that matches the CPU
  /// reference.
  std::vector<ReadMapping> map_batch(std::span<const std::vector<seq::BaseCode>> reads,
                                     const BatchExtender& extend,
                                     ChainStageStats* chain_stats = nullptr) const;

  /// Batched mapping with the traceback phase attached: after the extension
  /// stage, every mapped read's (oriented read, genome window) pair is
  /// gathered into one batch and traced through `trace` (null = the
  /// in-process linear-memory engine), so each ReadMapping carries the
  /// CIGAR SAM emission needs — no per-read DP anywhere downstream.
  std::vector<ReadMapping> map_batch(std::span<const std::vector<seq::BaseCode>> reads,
                                     const BatchExtender& extend,
                                     const TracedBatchExtender& trace,
                                     ChainStageStats* chain_stats = nullptr) const;

  /// Batched mapping with the extension stage (and, when the service's
  /// AlignerOptions enable traceback, the traceback phase) routed through
  /// one session of a multi-tenant core::AlignService: this mapper becomes
  /// one tenant among many sharing the service's continuously batched
  /// backend, with the given per-session QoS knobs. Mappings (and stored
  /// traces) are identical to map_batch over the same reads with the
  /// equivalent core::Aligner extenders — the service is bit-identical per
  /// pair regardless of what other tenants are doing.
  std::vector<ReadMapping> map_session(std::span<const std::vector<seq::BaseCode>> reads,
                                       core::AlignService& service,
                                       core::SessionOptions session = {},
                                       ChainStageStats* chain_stats = nullptr) const;

  /// The traceback stage of the batched path, exposed for callers that
  /// already hold mappings: fills `traced`/`has_traceback` of every mapped
  /// entry from one batched trace run. `reads` and `mappings` must be the
  /// map_batch inputs/outputs, index-aligned.
  void attach_tracebacks(std::span<const std::vector<seq::BaseCode>> reads,
                         std::span<ReadMapping> mappings,
                         const TracedBatchExtender& trace) const;

  /// Streaming Sec. V-D pipeline: a reader thread pulls SequenceChunks from
  /// `reader` through a bounded queue (capacity `queue_capacity` chunks of
  /// backpressure) while the calling thread maps each chunk — seeding and
  /// chaining host-parallel, extensions batched through `extend` — and
  /// hands every (read, mapping) to `sink` in input order. Never more than
  /// queue_capacity + 2 chunks of reads are resident (the queue, plus the
  /// chunk in the producer's hands and the one being mapped). Mappings are
  /// identical to map_batch over the same reads. Exceptions from the
  /// reader, the extender, or the sink shut the pipeline down cleanly and
  /// rethrow here.
  StreamMapStats map_stream(
      seq::SequenceChunkReader& reader, const BatchExtender& extend,
      const std::function<void(const seq::Sequence&, const ReadMapping&)>& sink,
      std::size_t queue_capacity = 4) const;

  /// Streaming with the traceback phase: each chunk's mappings arrive at
  /// `sink` with `traced` populated (map_batch(reads, extend, trace) per
  /// chunk), still in input order.
  StreamMapStats map_stream(
      seq::SequenceChunkReader& reader, const BatchExtender& extend,
      const TracedBatchExtender& trace,
      const std::function<void(const seq::Sequence&, const ReadMapping&)>& sink,
      std::size_t queue_capacity = 4) const;

  /// map_stream writing SAM records incrementally (seedext::to_sam_record)
  /// as each chunk completes — constant-memory FASTQ-to-SAM.
  StreamMapStats map_stream(seq::SequenceChunkReader& reader, const BatchExtender& extend,
                            seq::SamWriter& writer,
                            const std::string& reference_name = "synthetic",
                            std::size_t queue_capacity = 4) const;

  /// Streaming FASTQ-to-SAM with batched CIGARs: the traceback phase runs
  /// per chunk through `trace` and to_sam_record consumes the stored
  /// traces directly.
  StreamMapStats map_stream(seq::SequenceChunkReader& reader, const BatchExtender& extend,
                            const TracedBatchExtender& trace, seq::SamWriter& writer,
                            const std::string& reference_name = "synthetic",
                            std::size_t queue_capacity = 4) const;

  /// Extracts every extension job the given reads generate (best strand,
  /// all surviving chains) — the kernel workload of Fig. 2 / Fig. 8.
  std::vector<ExtensionJob> collect_jobs(
      std::span<const std::vector<seq::BaseCode>> reads) const;

  /// Seeds for one read on its forward strand (exposed for tests/examples).
  std::vector<Seed> seeds_of(std::span<const seq::BaseCode> read) const;

 private:
  struct StrandResult {
    std::vector<Chain> chains;
    std::int64_t coverage = 0;  ///< best chain score (strand selector)
  };
  StrandResult analyze(std::span<const seq::BaseCode> read) const;

  /// Everything map() derives from a read before extension: strand choice,
  /// the best chain's anchor and seed score, and its extension jobs. Both
  /// the per-job CPU path (map) and the batched path (map_batch + extender)
  /// run prepare → extend → finalize, so they agree by construction.
  struct PreparedRead {
    bool has_chain = false;
    bool use_rev = false;
    align::Score seed_score = 0;
    Seed anchor;
    std::vector<ExtensionJob> jobs;
  };
  PreparedRead prepare(std::span<const seq::BaseCode> read) const;
  /// The strand-choice + job-extraction tail of prepare, over already
  /// computed per-strand chains — shared by the per-read path and the
  /// batched chaining stage so the two agree by construction.
  PreparedRead prepare_from_chains(std::span<const seq::BaseCode> read,
                                   std::span<const seq::BaseCode> rc,
                                   const std::vector<Chain>& fwd,
                                   const std::vector<Chain>& rev) const;
  static ReadMapping finalize(const PreparedRead& pre,
                              std::span<const align::AlignmentResult> job_results);

  std::vector<seq::BaseCode> genome_;
  MapperParams params_;
  /// Refcounted handle from the shared-index registry (in-memory or mmap):
  /// mappers over the same reference share one index instead of rebuilding.
  std::shared_ptr<const SharedIndex> index_;
  /// The reference-sharded seeding path (params_.index_shards > 1).
  std::unique_ptr<ShardedKmerIndex> sharded_index_;
  BatchChainer chainer_;  ///< null = in-process chain engine
};

}  // namespace saloba::seedext
