#include "seedext/sam_output.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "align/traceback_engine.hpp"
#include "util/check.hpp"

namespace saloba::seedext {

int mapq_from_score(align::Score score, std::size_t read_len,
                    const align::ScoringScheme& scoring) {
  if (read_len == 0 || score <= 0) return 0;
  double max_score = static_cast<double>(read_len) * scoring.match;
  double frac = std::clamp(static_cast<double>(score) / max_score, 0.0, 1.0);
  // Map [0.3, 1.0] onto [0, 60]; anything below 30% identity-score is 0.
  double q = (frac - 0.3) / 0.7 * 60.0;
  return std::clamp(static_cast<int>(std::lround(q)), 0, 60);
}

MappedWindow mapped_window(std::size_t genome_len, std::size_t ref_pos,
                           std::size_t oriented_len) {
  std::size_t slack = std::max<std::size_t>(32, oriented_len / 5);
  MappedWindow win;
  win.start = ref_pos > slack ? ref_pos - slack : 0;
  win.end = std::min(genome_len, ref_pos + oriented_len + slack);
  return win;
}

seq::SamRecord to_sam_record(const ReadMapper& mapper, const seq::Sequence& read,
                             const ReadMapping& mapping,
                             const std::string& reference_name) {
  seq::SamRecord record;
  record.qname = read.name.empty() ? "read" : read.name;
  record.seq = read.to_string();
  if (read.quality.size() == read.bases.size()) record.qual = read.quality;

  if (!mapping.mapped) {
    record.flags = seq::SamRecord::kFlagUnmapped;
    return record;
  }

  record.rname = reference_name;
  record.flags = mapping.reverse_strand ? seq::SamRecord::kFlagReverse : 0;

  const std::size_t read_len = read.bases.size();
  MappedWindow win = mapped_window(mapper.genome().size(), mapping.ref_pos, read_len);
  SALOBA_CHECK(win.end > win.start);

  align::TracedAlignment traced;
  if (mapping.has_traceback) {
    // The batched traceback phase already produced this window's CIGAR.
    traced = mapping.traced;
  } else {
    // Fallback for mappings that never went through the phase: the same
    // linear-memory engine, one pair at a time.
    const auto& genome = mapper.genome();
    std::vector<seq::BaseCode> oriented =
        mapping.reverse_strand ? seq::reverse_complement(read.bases) : read.bases;
    std::span<const seq::BaseCode> window(genome.data() + win.start, win.end - win.start);
    traced =
        align::banded_traceback(window, oriented, mapper.params().scoring).traced;
  }
  if (traced.end.score <= 0) {
    record.flags |= seq::SamRecord::kFlagUnmapped;
    return record;
  }

  record.pos = win.start + static_cast<std::size_t>(traced.ref_start) + 1;  // SAM is 1-based
  // Soft-clip query bases outside the local alignment.
  std::string cigar;
  if (traced.query_start > 0) cigar += std::to_string(traced.query_start) + "S";
  cigar += traced.cigar;
  std::size_t tail = read_len - static_cast<std::size_t>(traced.end.query_end) - 1;
  if (tail > 0) cigar += std::to_string(tail) + "S";
  record.cigar = cigar;
  record.mapq = mapq_from_score(traced.end.score, read_len, mapper.params().scoring);
  record.tags.push_back("AS:i:" + std::to_string(traced.end.score));
  return record;
}

}  // namespace saloba::seedext
