// Bridges the read-mapping pipeline to SAM output. Mapped reads' CIGARs
// come from the batched traceback phase (ReadMapping::traced, filled by the
// traceback-enabled map_batch/map_stream paths); a mapping without a stored
// trace falls back to the linear-memory engine on its genome window — the
// old per-read full-matrix recompute is gone either way. MAPQ derives from
// the score margin.
#pragma once

#include "seedext/pipeline.hpp"
#include "seq/sam.hpp"
#include "seq/sequence.hpp"

namespace saloba::seedext {

/// The genome window a mapped read's CIGAR is defined over: the mapped
/// position padded by max(32, len / 5) of slack on both sides (gaps may
/// shift the true start), clamped to the genome. Shared by the batched
/// traceback stage (ReadMapper::attach_tracebacks) and to_sam_record so the
/// two can never disagree about coordinates.
struct MappedWindow {
  std::size_t start = 0;  ///< 0-based first genome base of the window
  std::size_t end = 0;    ///< past-the-end genome base
};
MappedWindow mapped_window(std::size_t genome_len, std::size_t ref_pos,
                           std::size_t oriented_len);

/// Builds a SAM record for one read. For mapped reads the CIGAR comes from
/// the stored traceback (or the engine fallback above); unmapped reads get
/// flag 0x4 and star fields.
seq::SamRecord to_sam_record(const ReadMapper& mapper, const seq::Sequence& read,
                             const ReadMapping& mapping,
                             const std::string& reference_name = "synthetic");

/// Phred-style mapping quality in [0, 60] from the achieved fraction of the
/// maximum possible score (a simple, monotone surrogate for a posterior).
int mapq_from_score(align::Score score, std::size_t read_len,
                    const align::ScoringScheme& scoring);

}  // namespace saloba::seedext
