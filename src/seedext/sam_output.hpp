// Bridges the read-mapping pipeline to SAM output: recomputes the mapped
// window's traceback for a proper CIGAR and derives MAPQ from the score
// margin.
#pragma once

#include "seedext/pipeline.hpp"
#include "seq/sam.hpp"
#include "seq/sequence.hpp"

namespace saloba::seedext {

/// Builds a SAM record for one read. For mapped reads the CIGAR comes from
/// a traceback of the (oriented) read against its mapped genome window;
/// unmapped reads get flag 0x4 and star fields.
seq::SamRecord to_sam_record(const ReadMapper& mapper, const seq::Sequence& read,
                             const ReadMapping& mapping,
                             const std::string& reference_name = "synthetic");

/// Phred-style mapping quality in [0, 60] from the achieved fraction of the
/// maximum possible score (a simple, monotone surrogate for a posterior).
int mapq_from_score(align::Score score, std::size_t read_len,
                    const align::ScoringScheme& scoring);

}  // namespace saloba::seedext
