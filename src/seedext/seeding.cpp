#include "seedext/seeding.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"

namespace saloba::seedext {
namespace {

/// Extends an exact match at (qpos, rpos, len) as far as possible in both
/// directions. N never matches (consistent with scoring).
Seed extend_exact(std::span<const seq::BaseCode> genome, std::span<const seq::BaseCode> read,
                  Seed seed) {
  auto matches = [](seq::BaseCode a, seq::BaseCode b) {
    return a == b && a < seq::kBaseN;
  };
  // Left.
  while (seed.qpos > 0 && seed.rpos > 0 &&
         matches(genome[seed.rpos - 1], read[seed.qpos - 1])) {
    --seed.qpos;
    --seed.rpos;
    ++seed.len;
  }
  // Right.
  while (seed.qpos + seed.len < read.size() && seed.rpos + seed.len < genome.size() &&
         matches(genome[seed.rpos + seed.len], read[seed.qpos + seed.len])) {
    ++seed.len;
  }
  return seed;
}

/// The one k-mer seeding implementation: `index` is anything with k() and a
/// lookup(kmer) returning an iterable position list (KmerIndex's span view,
/// ShardedKmerIndex's merged global vector). The max_hits repeat filter
/// applies to whatever lookup returned — for the sharded index that is the
/// merged list, so both paths agree by construction.
template <class Index>
std::vector<Seed> find_seeds_impl(const Index& index, std::span<const seq::BaseCode> genome,
                                  std::span<const seq::BaseCode> read,
                                  const SeedingParams& params) {
  std::vector<Seed> seeds;
  if (read.size() < static_cast<std::size_t>(index.k())) return seeds;

  // Dedup extended seeds: a (diagonal, end) pair identifies a maximal match.
  std::set<std::pair<std::int64_t, std::uint32_t>> seen;

  const std::size_t last_q = read.size() - static_cast<std::size_t>(index.k());
  for (std::size_t q = 0; q <= last_q; q += static_cast<std::size_t>(params.stride)) {
    auto hits = index.lookup(read.subspan(q));
    if (hits.empty() || hits.size() > params.max_hits) continue;
    for (std::uint32_t rpos : hits) {
      Seed seed{static_cast<std::uint32_t>(q), rpos, static_cast<std::uint32_t>(index.k())};
      seed = extend_exact(genome, read, seed);
      if (seed.len < static_cast<std::uint32_t>(params.min_seed_len)) continue;
      auto key = std::make_pair(seed.diagonal(), seed.qpos + seed.len);
      if (seen.insert(key).second) seeds.push_back(seed);
    }
  }
  std::sort(seeds.begin(), seeds.end(), [](const Seed& a, const Seed& b) {
    return a.qpos != b.qpos ? a.qpos < b.qpos : a.rpos < b.rpos;
  });
  return seeds;
}

}  // namespace

std::vector<Seed> find_seeds(const KmerIndex& index, std::span<const seq::BaseCode> genome,
                             std::span<const seq::BaseCode> read,
                             const SeedingParams& params) {
  return find_seeds_impl(index, genome, read, params);
}

std::vector<Seed> find_seeds(const ShardedKmerIndex& index,
                             std::span<const seq::BaseCode> genome,
                             std::span<const seq::BaseCode> read,
                             const SeedingParams& params) {
  return find_seeds_impl(index, genome, read, params);
}

std::vector<Seed> find_seeds_fm(const FmIndex& index, std::span<const seq::BaseCode> read,
                                const SeedingParams& params) {
  std::vector<Seed> seeds;
  std::set<std::pair<std::int64_t, std::uint32_t>> seen;

  // For each end position (right to left), grow the match leftwards while
  // the backward-search interval stays nonempty; emit the longest match
  // ending there. Greedy SMEM approximation: skip ends interior to the
  // previous reported match to avoid quadratic blowup.
  std::size_t next_allowed_end = read.size();
  for (std::size_t end = read.size(); end > 0; --end) {
    if (end > next_allowed_end) continue;
    if (read[end - 1] >= seq::kAlphabetSize) continue;
    FmIndex::Interval iv = index.whole_text();
    std::size_t start = end;
    FmIndex::Interval last = iv;
    while (start > 0 && read[start - 1] < 4) {
      FmIndex::Interval nxt = index.extend_left(iv, read[start - 1]);
      if (nxt.size() == 0) break;
      iv = nxt;
      --start;
      last = iv;
    }
    std::size_t len = end - start;
    if (len < static_cast<std::size_t>(params.min_seed_len)) continue;
    if (last.size() == 0 || last.size() > params.max_hits) continue;
    for (std::uint32_t rpos :
         index.locate(read.subspan(start, len), params.max_hits)) {
      Seed seed{static_cast<std::uint32_t>(start), rpos, static_cast<std::uint32_t>(len)};
      auto key = std::make_pair(seed.diagonal(), seed.qpos + seed.len);
      if (seen.insert(key).second) seeds.push_back(seed);
    }
    next_allowed_end = start == 0 ? 0 : start + static_cast<std::size_t>(params.min_seed_len) - 1;
    if (next_allowed_end >= end) next_allowed_end = end - 1;
  }
  std::sort(seeds.begin(), seeds.end(), [](const Seed& a, const Seed& b) {
    return a.qpos != b.qpos ? a.qpos < b.qpos : a.rpos < b.rpos;
  });
  return seeds;
}

}  // namespace saloba::seedext
