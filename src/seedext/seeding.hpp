// Seeding: find maximal exact matches between a read and the genome, via
// either the k-mer index (fast path, default) or FM-index backward search
// (BWT path, as in BWA-MEM). Produces the Seed lists that chaining and
// extension-job extraction consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seedext/fm_index.hpp"
#include "seedext/kmer_index.hpp"
#include "seedext/shared_index.hpp"
#include "seq/alphabet.hpp"

namespace saloba::seedext {

struct Seed {
  std::uint32_t qpos = 0;  ///< start in the read
  std::uint32_t rpos = 0;  ///< start in the genome
  std::uint32_t len = 0;   ///< exact-match length

  std::int64_t diagonal() const {
    return static_cast<std::int64_t>(rpos) - static_cast<std::int64_t>(qpos);
  }
  bool operator==(const Seed&) const = default;
};

struct SeedingParams {
  int min_seed_len = 19;     ///< BWA-MEM default
  std::size_t max_hits = 32; ///< occurrence cap per k-mer (repeat filter)
  int stride = 1;            ///< query positions sampled for k-mer seeding
};

/// K-mer seeding: k-mer hits extended to maximal exact matches, deduplicated
/// by (diagonal, end position), filtered to len >= min_seed_len.
std::vector<Seed> find_seeds(const KmerIndex& index, std::span<const seq::BaseCode> genome,
                             std::span<const seq::BaseCode> read, const SeedingParams& params);

/// K-mer seeding over a reference-sharded index: same algorithm (and the
/// same one implementation underneath), with each k-mer's hit list the
/// shard-merged global positions — bit-identical seeds to the monolithic
/// find_seeds, including the max_hits repeat filter, which judges the
/// merged list.
std::vector<Seed> find_seeds(const ShardedKmerIndex& index,
                             std::span<const seq::BaseCode> genome,
                             std::span<const seq::BaseCode> read, const SeedingParams& params);

/// FM-index seeding: greedy SMEM-like pass — at each query position, the
/// longest exact match is found by backward search, reported with all its
/// genome occurrences (up to max_hits).
std::vector<Seed> find_seeds_fm(const FmIndex& index, std::span<const seq::BaseCode> read,
                                const SeedingParams& params);

}  // namespace saloba::seedext
