#include "seedext/shared_index.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "gpusim/multi_device.hpp"
#include "util/check.hpp"
#include "util/checksum.hpp"
#include "util/parallel.hpp"

namespace saloba::seedext {
namespace {

constexpr char kIndexMagic[8] = {'S', 'L', 'B', 'A', 'I', 'D', 'X', '\0'};
constexpr std::uint32_t kFlagKmer = 1u << 0;
constexpr std::uint32_t kFlagFm = 1u << 1;

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  throw IndexFormatError("index file " + path + ": " + why);
}

std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

/// Byte offsets of every section from the start of the payload (the byte
/// after the header), plus the payload's total size. Shared by the writer
/// and the loader so the two can never disagree about geometry.
struct SectionLayout {
  std::size_t keys = 0;
  std::size_t offsets = 0;
  std::size_t entries = 0;
  std::size_t bwt = 0;
  std::size_t checkpoints = 0;
  std::size_t sa = 0;
  std::size_t total = 0;
};

SectionLayout layout_of(const IndexFileHeader& h) {
  SectionLayout lay;
  std::size_t at = 0;
  if (h.flags & kFlagKmer) {
    lay.keys = at;
    at += h.kmer_keys * sizeof(std::uint64_t);
    lay.offsets = at;
    at += (h.kmer_keys + 1) * sizeof(std::uint32_t);
    lay.entries = at;
    at = align8(at + h.kmer_entries * sizeof(std::uint32_t));
  }
  if (h.flags & kFlagFm) {
    lay.bwt = at;
    at = align8(at + h.fm_bwt_rows * sizeof(std::uint8_t));
    lay.checkpoints = at;
    at = align8(at + h.fm_checkpoints * sizeof(std::array<std::uint32_t, 6>));
    lay.sa = at;
    at = align8(at + h.fm_sa * sizeof(std::int32_t));
  }
  lay.total = at;
  return lay;
}

std::uint64_t genome_fingerprint(std::span<const seq::BaseCode> genome) {
  return util::fnv1a64_of(genome);
}

std::string canonical_path(const std::string& path) {
  std::error_code ec;
  auto canon = std::filesystem::weakly_canonical(path, ec);
  return ec ? path : canon.string();
}

std::string section_suffix(const IndexOptions& options) {
  std::ostringstream oss;
  oss << ":k=" << options.k << (options.kmer ? ":kmer" : "") << (options.fm ? ":fm" : "");
  return oss.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// SharedIndex
// ---------------------------------------------------------------------------

std::shared_ptr<const SharedIndex> SharedIndex::build(std::span<const seq::BaseCode> genome,
                                                      const IndexOptions& options) {
  SALOBA_CHECK_MSG(options.kmer || options.fm, "index options select no sections");
  auto out = std::shared_ptr<SharedIndex>(new SharedIndex());
  out->options_ = options;
  out->genome_bases_ = genome.size();
  out->genome_checksum_ = genome_fingerprint(genome);
  if (options.kmer) out->kmer_.emplace(genome, options.k);
  if (options.fm) out->fm_.emplace(genome);
  return out;
}

std::shared_ptr<const SharedIndex> SharedIndex::load(const std::string& path,
                                                     std::span<const seq::BaseCode> genome,
                                                     const IndexOptions& options) {
  SALOBA_CHECK_MSG(options.kmer || options.fm, "index options select no sections");
  auto out = std::shared_ptr<SharedIndex>(new SharedIndex());
  try {
    out->map_.emplace(path);
  } catch (const std::runtime_error& e) {
    // A missing or unmappable file is the same class of input error as a
    // corrupted one: reject, don't abort.
    reject(path, e.what());
  }
  std::span<const std::byte> bytes = out->map_->bytes();

  if (bytes.size() < sizeof(IndexFileHeader)) reject(path, "shorter than the header");
  IndexFileHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));

  if (std::memcmp(h.magic, kIndexMagic, sizeof(kIndexMagic)) != 0) {
    reject(path, "bad magic (not a saloba index)");
  }
  if (h.version != kIndexFormatVersion) {
    std::ostringstream oss;
    oss << "format version " << h.version << ", this build reads " << kIndexFormatVersion;
    reject(path, oss.str());
  }
  if (h.genome_bases > KmerIndex::kMaxReferenceBases) {
    reject(path, "header reference length exceeds the 32-bit position limit");
  }
  if ((h.flags & kFlagKmer) && (h.k < KmerIndex::kMinK || h.k > KmerIndex::kMaxK)) {
    reject(path, "header k outside [4, 31]");
  }
  if ((h.flags & kFlagFm) && h.checkpoint_every != FmIndex::kCheckpointEvery) {
    reject(path, "FM checkpoint stride mismatch");
  }

  // Geometry first: a truncated file must reject before the checksum walks
  // off the mapping.
  SectionLayout lay = layout_of(h);
  std::span<const std::byte> payload = bytes.subspan(sizeof(h));
  if (payload.size() != lay.total) {
    std::ostringstream oss;
    oss << "payload is " << payload.size() << " bytes, header describes " << lay.total
        << " (truncated or trailing garbage)";
    reject(path, oss.str());
  }
  if (util::fnv1a64(payload) != h.payload_checksum) {
    reject(path, "payload checksum mismatch (corrupted)");
  }

  // The file is internally consistent; now require it to be *this* genome's
  // index with the sections the caller needs.
  if (h.genome_bases != genome.size() || h.genome_checksum != genome_fingerprint(genome)) {
    reject(path, "built for a different reference (length/fingerprint mismatch)");
  }
  if (options.kmer && !(h.flags & kFlagKmer)) reject(path, "lacks the k-mer section");
  if (options.fm && !(h.flags & kFlagFm)) reject(path, "lacks the FM section");
  if (options.kmer && static_cast<int>(h.k) != options.k) {
    std::ostringstream oss;
    oss << "built with k=" << h.k << ", caller wants k=" << options.k;
    reject(path, oss.str());
  }

  // Validate-and-adopt: spans alias the mapping, zero copy.
  const std::byte* base = payload.data();
  if (options.kmer) {
    std::span<const std::uint64_t> keys(
        reinterpret_cast<const std::uint64_t*>(base + lay.keys), h.kmer_keys);
    std::span<const std::uint32_t> offsets(
        reinterpret_cast<const std::uint32_t*>(base + lay.offsets), h.kmer_keys + 1);
    std::span<const std::uint32_t> entries(
        reinterpret_cast<const std::uint32_t*>(base + lay.entries), h.kmer_entries);
    if (!offsets.empty() && offsets.back() != entries.size()) {
      reject(path, "k-mer offsets do not delimit the entry array");
    }
    out->kmer_.emplace(static_cast<int>(h.k), keys, offsets, entries);
  }
  if (options.fm) {
    std::span<const std::uint8_t> bwt(reinterpret_cast<const std::uint8_t*>(base + lay.bwt),
                                      h.fm_bwt_rows);
    std::span<const std::array<std::uint32_t, 6>> checkpoints(
        reinterpret_cast<const std::array<std::uint32_t, 6>*>(base + lay.checkpoints),
        h.fm_checkpoints);
    std::span<const std::int32_t> sa(reinterpret_cast<const std::int32_t*>(base + lay.sa),
                                     h.fm_sa);
    if (h.fm_bwt_rows != h.genome_bases + 1 ||
        h.fm_checkpoints != h.fm_bwt_rows / FmIndex::kCheckpointEvery + 1 ||
        h.fm_sa != h.genome_bases) {
      reject(path, "FM section geometry inconsistent with the reference length");
    }
    out->fm_.emplace(static_cast<std::size_t>(h.genome_bases),
                     static_cast<std::size_t>(h.fm_primary), bwt, checkpoints, sa);
  }

  out->options_ = options;
  out->genome_bases_ = h.genome_bases;
  out->genome_checksum_ = h.genome_checksum;
  return out;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void write_shared_index(const std::string& path, std::span<const seq::BaseCode> genome,
                        int k, const KmerIndex* kmer, const FmIndex* fm) {
  SALOBA_CHECK_MSG(kmer != nullptr || fm != nullptr, "nothing to serialize");
  SALOBA_CHECK_MSG(genome.size() <= KmerIndex::kMaxReferenceBases,
                   "reference of " << genome.size()
                                   << " bases overflows the format's 32-bit positions");

  IndexFileHeader h{};
  std::memcpy(h.magic, kIndexMagic, sizeof(kIndexMagic));
  h.version = kIndexFormatVersion;
  h.k = static_cast<std::uint32_t>(k);
  h.genome_bases = genome.size();
  h.genome_checksum = genome_fingerprint(genome);
  if (kmer != nullptr) {
    SALOBA_CHECK_MSG(kmer->k() == k, "k-mer index k " << kmer->k() << " != " << k);
    h.flags |= kFlagKmer;
    h.kmer_keys = kmer->keys().size();
    h.kmer_entries = kmer->entries().size();
  }
  if (fm != nullptr) {
    SALOBA_CHECK_MSG(fm->text_size() == genome.size(),
                     "FM index text size " << fm->text_size() << " != genome size "
                                           << genome.size());
    h.flags |= kFlagFm;
    h.checkpoint_every = FmIndex::kCheckpointEvery;
    h.fm_bwt_rows = fm->bwt().size();
    h.fm_primary = fm->primary();
    h.fm_checkpoints = fm->checkpoints().size();
    h.fm_sa = fm->suffix_array().size();
  }

  SectionLayout lay = layout_of(h);
  std::vector<std::byte> payload(lay.total, std::byte{0});
  auto put = [&](std::size_t at, const void* src, std::size_t bytes) {
    if (bytes > 0) std::memcpy(payload.data() + at, src, bytes);
  };
  if (kmer != nullptr) {
    put(lay.keys, kmer->keys().data(), kmer->keys().size_bytes());
    put(lay.offsets, kmer->offsets().data(), kmer->offsets().size_bytes());
    put(lay.entries, kmer->entries().data(), kmer->entries().size_bytes());
  }
  if (fm != nullptr) {
    put(lay.bwt, fm->bwt().data(), fm->bwt().size_bytes());
    put(lay.checkpoints, fm->checkpoints().data(), fm->checkpoints().size_bytes());
    put(lay.sa, fm->suffix_array().data(), fm->suffix_array().size_bytes());
  }
  h.payload_checksum = util::fnv1a64(payload);

  // Atomic publish: write a sibling temp file, fsync-free rename into place.
  // A concurrent loader sees either the old file or the complete new one.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write index temp file " + tmp);
    out.write(reinterpret_cast<const char*>(&h), sizeof(h));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
    if (!out) throw std::runtime_error("short write to index temp file " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

void save_shared_index(const std::string& path, std::span<const seq::BaseCode> genome,
                       const IndexOptions& options) {
  SALOBA_CHECK_MSG(options.kmer || options.fm, "index options select no sections");
  std::optional<KmerIndex> kmer;
  std::optional<FmIndex> fm;
  if (options.kmer) kmer.emplace(genome, options.k);
  if (options.fm) fm.emplace(genome);
  write_shared_index(path, genome, options.k, options.kmer ? &*kmer : nullptr,
                     options.fm ? &*fm : nullptr);
}

// ---------------------------------------------------------------------------
// IndexRegistry
// ---------------------------------------------------------------------------

IndexRegistry& IndexRegistry::instance() {
  static IndexRegistry registry;
  return registry;
}

std::shared_ptr<const SharedIndex> IndexRegistry::acquire(
    const std::string& key, const std::function<std::shared_ptr<const SharedIndex>()>& make,
    bool counts_as_build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(key);
    if (it != live_.end()) {
      if (auto held = it->second.lock()) {
        ++stats_.hits;
        return held;
      }
    }
  }
  // Build/load outside the lock so distinct genomes index concurrently
  // (shard builds fan out through parallel_for). Two racers on one key both
  // do the work; the first to re-lock publishes, the loser adopts the
  // winner's instance.
  std::shared_ptr<const SharedIndex> made = make();
  std::lock_guard<std::mutex> lock(mu_);
  if (counts_as_build) {
    ++stats_.builds;
  } else {
    ++stats_.loads;
  }
  auto it = live_.find(key);
  if (it != live_.end()) {
    if (auto held = it->second.lock()) return held;
  }
  live_[key] = made;
  return made;
}

std::shared_ptr<const SharedIndex> IndexRegistry::acquire_memory(
    std::span<const seq::BaseCode> genome, const IndexOptions& options) {
  std::ostringstream key;
  key << "mem:" << std::hex << genome_fingerprint(genome) << std::dec << ":"
      << genome.size() << section_suffix(options);
  return acquire(
      key.str(), [&] { return SharedIndex::build(genome, options); },
      /*counts_as_build=*/true);
}

std::shared_ptr<const SharedIndex> IndexRegistry::acquire_file(
    const std::string& path, std::span<const seq::BaseCode> genome,
    const IndexOptions& options) {
  const std::string canon = canonical_path(path);
  const std::string key = "file:" + canon + section_suffix(options);
  bool cold = false;
  auto handle = acquire(
      key,
      [&] {
        if (!std::filesystem::exists(path)) {
          save_shared_index(path, genome, options);  // build-once cold start
          cold = true;
        }
        return SharedIndex::load(path, genome, options);
      },
      /*counts_as_build=*/false);
  if (cold) {
    // The cold start built the index before saving it; count that build so
    // stats distinguish build+save+load cold starts from pure warm loads.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.builds;
  }
  return handle;
}

IndexRegistryStats IndexRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void IndexRegistry::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = IndexRegistryStats{};
}

std::size_t IndexRegistry::live_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t live = 0;
  for (const auto& [key, weak] : live_) live += weak.expired() ? 0 : 1;
  return live;
}

// ---------------------------------------------------------------------------
// ShardedKmerIndex
// ---------------------------------------------------------------------------

ShardedKmerIndex::ShardedKmerIndex(std::span<const seq::BaseCode> genome, int k,
                                   const IndexShardingOptions& options)
    : k_(k), genome_bases_(genome.size()) {
  SALOBA_CHECK_MSG(options.shards >= 1, "need at least one shard");
  SALOBA_CHECK_MSG(!genome.empty(), "empty genome");

  // Equal owned ranges; the last shard absorbs the remainder. Shard counts
  // beyond the genome collapse so every shard owns at least one base.
  const std::size_t count = std::min(options.shards, genome.size());
  const std::size_t owned = genome.size() / count;
  shards_.resize(count);
  for (std::size_t s = 0; s < count; ++s) {
    Shard& shard = shards_[s];
    shard.begin = s * owned;
    shard.end = s + 1 == count ? genome.size() : (s + 1) * owned;
    // The k - 1 overlap: a k-mer starting on the last owned base must fit.
    shard.text_end = std::min(genome.size(), shard.end + static_cast<std::size_t>(k) - 1);
  }

  // Heterogeneous placement: shards priced by window length through the
  // same weighted-LPT rule the batch scheduler applies to pair shards.
  std::vector<double> weights = options.lane_weights.empty()
                                    ? std::vector<double>{1.0}
                                    : options.lane_weights;
  std::vector<double> loads;
  loads.reserve(count);
  for (const Shard& s : shards_) loads.push_back(static_cast<double>(s.text_end - s.begin));
  std::vector<int> lanes = gpusim::weighted_lpt_lanes(loads, weights);
  for (std::size_t s = 0; s < count; ++s) shards_[s].lane = lanes[s];

  // Sub-index builds/loads fan out host-parallel; the registry dedups each
  // window against any other sharded mapper over the same reference.
  IndexOptions sub{k, /*kmer=*/true, /*fm=*/false};
  std::exception_ptr failure;
  std::mutex failure_mu;
  util::parallel_for_indexed(count, [&](std::size_t s) {
    try {
      Shard& shard = shards_[s];
      std::span<const seq::BaseCode> window =
          genome.subspan(shard.begin, shard.text_end - shard.begin);
      if (options.path_prefix.empty()) {
        shard.index = IndexRegistry::instance().acquire_memory(window, sub);
      } else {
        shard.index = IndexRegistry::instance().acquire_file(
            options.path_prefix + ".shard" + std::to_string(s), window, sub);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(failure_mu);
      if (!failure) failure = std::current_exception();
    }
  });
  if (failure) std::rethrow_exception(failure);
}

std::vector<double> ShardedKmerIndex::lane_loads() const {
  std::vector<double> loads;
  for (const Shard& s : shards_) {
    auto lane = static_cast<std::size_t>(s.lane);
    if (lane >= loads.size()) loads.resize(lane + 1, 0.0);
    loads[lane] += static_cast<double>(s.text_end - s.begin);
  }
  return loads;
}

std::vector<std::uint32_t> ShardedKmerIndex::lookup(
    std::span<const seq::BaseCode> kmer) const {
  // Each global k-mer start belongs to exactly one shard's owned range, and
  // per-shard hits are ascending — so filtered concatenation in shard order
  // is the monolithic (sorted, duplicate-free) position list. The k-mer is
  // packed once and every shard probed with the canonical key.
  std::vector<std::uint32_t> out;
  if (kmer.size() < static_cast<std::size_t>(k_)) return out;
  auto packed = KmerIndex::pack_kmer(kmer, k_);
  if (!packed) return out;
  for (const Shard& s : shards_) {
    for (std::uint32_t local : s.index->kmer().lookup_packed(*packed)) {
      std::size_t global = s.begin + local;
      if (global < s.end) out.push_back(static_cast<std::uint32_t>(global));
    }
  }
  return out;
}

}  // namespace saloba::seedext
