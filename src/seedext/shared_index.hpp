// Genome-scale shared index: build-once, mmap-shared, reference-sharded.
//
// At service scale the reference is the invariant and reads are the traffic,
// yet every ReadMapper used to rebuild its k-mer/FM index from scratch. This
// layer makes indices
//   * serializable — a versioned, checksummed on-disk format holding the
//     flat index arrays verbatim (load is a validate-and-adopt, no rebuild);
//   * mmap-shared — a read-only loader whose spans alias the mapping with
//     zero copy, behind refcounted SharedIndex handles that an in-process
//     registry deduplicates by (path, k) / (genome fingerprint, k), so every
//     Pipeline / ReadMapper::map_session tenant over one reference shares
//     one physical index;
//   * shardable — a chromosome-scale genome partitioned into overlapping
//     windows with one sub-index per shard, placed across heterogeneous
//     lanes by the PR 3 weighted-LPT machinery, whose merged lookups are
//     bit-identical to the monolithic index.
//
// On-disk format (little-endian, all sections 8-byte aligned):
//   IndexFileHeader   magic "SLBAIDX\0", version, flags (kmer/FM sections),
//                     k, FM checkpoint stride, genome length + FNV-1a
//                     fingerprint, payload checksum, section element counts.
//                     genome length is stored as u64 but must not exceed
//                     KmerIndex::kMaxReferenceBases — positions are 32-bit
//                     on disk as in memory; larger references must shard.
//   k-mer section     keys (u64), offsets (u32, keys+1), entries (u32) —
//                     exactly KmerIndex's arrays.
//   FM section        BWT codes (u8, n+1 rows), occurrence checkpoints
//                     (6 x u32 each), suffix array (i32) — exactly
//                     FmIndex's arrays; `first_` is derived on load.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "seedext/fm_index.hpp"
#include "seedext/kmer_index.hpp"
#include "seq/alphabet.hpp"
#include "util/mmap_file.hpp"

namespace saloba::seedext {

/// Malformed, corrupted, or mismatched index files reject with this (not a
/// CHECK abort: a stale cache file is an input error, not a program bug).
class IndexFormatError : public std::runtime_error {
 public:
  explicit IndexFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Which indices a SharedIndex carries, and for what k.
struct IndexOptions {
  int k = 16;
  bool kmer = true;  ///< build/serialize the k-mer section
  bool fm = false;   ///< build/serialize the FM/suffix-array section
};

/// Fixed header of the on-disk format. Trivially copyable by design — it is
/// written and mapped verbatim.
struct IndexFileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;  ///< bit 0: k-mer section, bit 1: FM section
  std::uint32_t k;
  std::uint32_t checkpoint_every;  ///< FM occ stride (0 without an FM section)
  std::uint64_t genome_bases;     ///< reference length; <= KmerIndex::kMaxReferenceBases
  std::uint64_t genome_checksum;  ///< util::fnv1a64 over the reference bytes
  std::uint64_t payload_checksum; ///< util::fnv1a64 over everything after this header
  std::uint64_t kmer_keys;
  std::uint64_t kmer_entries;
  std::uint64_t fm_bwt_rows;
  std::uint64_t fm_primary;
  std::uint64_t fm_checkpoints;
  std::uint64_t fm_sa;
};
static_assert(sizeof(IndexFileHeader) == 96, "on-disk header layout is part of the format");

inline constexpr std::uint32_t kIndexFormatVersion = 1;

/// One immutable, shareable reference index: a k-mer and/or FM index either
/// built in memory or adopted zero-copy from a read-only mapping (which the
/// handle keeps alive). Handles are created through the factories / the
/// IndexRegistry and passed around as shared_ptr<const SharedIndex>; the
/// last owner unmaps.
class SharedIndex {
 public:
  /// Builds the requested indices in memory.
  static std::shared_ptr<const SharedIndex> build(std::span<const seq::BaseCode> genome,
                                                  const IndexOptions& options);

  /// Maps `path` read-only and adopts its arrays with zero copy, after
  /// validating magic, version, payload checksum, section geometry, and
  /// that the file was built for `genome` (length + fingerprint) with
  /// `options.k` and the requested sections. Throws IndexFormatError.
  static std::shared_ptr<const SharedIndex> load(const std::string& path,
                                                 std::span<const seq::BaseCode> genome,
                                                 const IndexOptions& options);

  int k() const { return options_.k; }
  const IndexOptions& options() const { return options_; }
  bool has_kmer() const { return kmer_.has_value(); }
  bool has_fm() const { return fm_.has_value(); }
  const KmerIndex& kmer() const { return *kmer_; }
  const FmIndex& fm() const { return *fm_; }
  bool mmap_backed() const { return map_.has_value(); }
  std::size_t genome_bases() const { return genome_bases_; }
  std::uint64_t genome_checksum() const { return genome_checksum_; }

 private:
  SharedIndex() = default;

  IndexOptions options_;
  std::size_t genome_bases_ = 0;
  std::uint64_t genome_checksum_ = 0;
  std::optional<util::MmapFile> map_;  ///< backing pages of adopted spans
  std::optional<KmerIndex> kmer_;
  std::optional<FmIndex> fm_;
};

/// Serializes already-built indices for `genome` to `path` (at least one of
/// `kmer`/`fm` non-null). The write is atomic: a temp file in the target
/// directory is renamed into place, so a concurrent loader never sees a
/// half-written index.
void write_shared_index(const std::string& path, std::span<const seq::BaseCode> genome,
                        int k, const KmerIndex* kmer, const FmIndex* fm);

/// Build-and-write convenience (the cold path of the amortization story).
void save_shared_index(const std::string& path, std::span<const seq::BaseCode> genome,
                       const IndexOptions& options);

/// What the registry has done since construction / reset_stats().
struct IndexRegistryStats {
  std::size_t builds = 0;  ///< index constructions (in-memory + cold-start saves)
  std::size_t loads = 0;   ///< mmap file loads
  std::size_t hits = 0;    ///< acquisitions served by a live shared instance
};

/// In-process registry of live SharedIndex instances, keyed by
/// (canonical path, k, sections) for file-backed indices and by
/// (genome fingerprint, length, k, sections) for in-memory ones. Entries
/// are weak: the registry never extends an index's lifetime, it only
/// deduplicates concurrent users — when the last ReadMapper/tenant releases
/// its handle the index is freed, and the next acquire rebuilds/reloads.
class IndexRegistry {
 public:
  static IndexRegistry& instance();

  /// The shared in-memory index for (genome, options): returns the live one
  /// if some other owner holds it, builds and registers otherwise.
  std::shared_ptr<const SharedIndex> acquire_memory(std::span<const seq::BaseCode> genome,
                                                    const IndexOptions& options);

  /// The shared mmap-backed index for (path, options): returns the live
  /// mapping if one is held, loads otherwise — and when the file does not
  /// exist yet, builds from `genome`, saves, and loads (build-once).
  std::shared_ptr<const SharedIndex> acquire_file(const std::string& path,
                                                  std::span<const seq::BaseCode> genome,
                                                  const IndexOptions& options);

  IndexRegistryStats stats() const;
  void reset_stats();
  std::size_t live_entries() const;  ///< live (non-expired) registered indices

 private:
  std::shared_ptr<const SharedIndex> acquire(
      const std::string& key, const std::function<std::shared_ptr<const SharedIndex>()>& make,
      bool counts_as_build);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::weak_ptr<const SharedIndex>> live_;
  IndexRegistryStats stats_;
};

/// Reference sharding of the k-mer seeding path. The genome is cut into
/// `shards` equal owned ranges; shard s additionally sees the next k - 1
/// bases (the overlap), so every k-mer start position belongs to exactly
/// one shard and merged lookups reproduce the monolithic index exactly.
struct IndexShardingOptions {
  std::size_t shards = 1;
  /// Heterogeneous lane weights for shard placement (gpusim weighted LPT,
  /// shards priced by window length). Empty = one lane.
  std::vector<double> lane_weights;
  /// Non-empty: each shard's sub-index is persisted at
  /// "<path_prefix>.shard<i>" and acquired through the registry (mmap), so
  /// sharded cold starts amortize exactly like monolithic ones.
  std::string path_prefix;
};

class ShardedKmerIndex {
 public:
  struct Shard {
    std::size_t begin = 0;     ///< first owned base
    std::size_t end = 0;       ///< one past the last owned k-mer start
    std::size_t text_end = 0;  ///< window end including the k - 1 overlap
    int lane = 0;              ///< weighted-LPT placement
    std::shared_ptr<const SharedIndex> index;  ///< k-mer sub-index over [begin, text_end)
  };

  ShardedKmerIndex(std::span<const seq::BaseCode> genome, int k,
                   const IndexShardingOptions& options);

  int k() const { return k_; }
  std::size_t genome_bases() const { return genome_bases_; }
  const std::vector<Shard>& shards() const { return shards_; }
  /// Sum of shard window loads per lane (placement diagnostics / tests).
  std::vector<double> lane_loads() const;

  /// Merged global positions of the k-mer — bit-identical (same positions,
  /// same ascending order) to the monolithic KmerIndex::lookup.
  std::vector<std::uint32_t> lookup(std::span<const seq::BaseCode> kmer) const;

 private:
  int k_;
  std::size_t genome_bases_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace saloba::seedext
