#include "seedext/suffix_array.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "util/check.hpp"

namespace saloba::seedext {
namespace {

using std::int32_t;

bool is_lms(const std::vector<bool>& t, int32_t i) { return i > 0 && t[i] && !t[i - 1]; }

void get_buckets(const int32_t* s, int32_t n, int32_t k, std::vector<int32_t>& bkt, bool end) {
  std::fill(bkt.begin(), bkt.end(), 0);
  for (int32_t i = 0; i < n; ++i) ++bkt[s[i]];
  int32_t sum = 0;
  for (int32_t c = 0; c < k; ++c) {
    sum += bkt[c];
    bkt[c] = end ? sum : sum - bkt[c];
  }
}

void induce(const int32_t* s, int32_t* sa, int32_t n, int32_t k, const std::vector<bool>& t,
            std::vector<int32_t>& bkt) {
  // Induce L-type suffixes left to right.
  get_buckets(s, n, k, bkt, /*end=*/false);
  for (int32_t i = 0; i < n; ++i) {
    int32_t j = sa[i] - 1;
    if (sa[i] > 0 && !t[j]) sa[bkt[s[j]]++] = j;
  }
  // Induce S-type suffixes right to left.
  get_buckets(s, n, k, bkt, /*end=*/true);
  for (int32_t i = n - 1; i >= 0; --i) {
    int32_t j = sa[i] - 1;
    if (sa[i] > 0 && t[j]) sa[--bkt[s[j]]] = j;
  }
}

/// Core SA-IS on an integer string with a unique smallest sentinel at the
/// end. `s` values are in [0, k); `sa` has room for n entries.
void sais(const int32_t* s, int32_t* sa, int32_t n, int32_t k) {
  SALOBA_DCHECK(n > 0);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  std::vector<bool> t(static_cast<std::size_t>(n));
  t[static_cast<std::size_t>(n - 1)] = true;  // sentinel is S-type
  for (int32_t i = n - 2; i >= 0; --i) {
    t[static_cast<std::size_t>(i)] =
        s[i] < s[i + 1] || (s[i] == s[i + 1] && t[static_cast<std::size_t>(i + 1)]);
  }

  std::vector<int32_t> bkt(static_cast<std::size_t>(k));

  // Step 1: sort LMS substrings by placing LMS positions at bucket ends and
  // inducing.
  std::fill(sa, sa + n, -1);
  get_buckets(s, n, k, bkt, /*end=*/true);
  for (int32_t i = n - 1; i >= 1; --i) {
    if (is_lms(t, i)) sa[--bkt[s[i]]] = i;
  }
  induce(s, sa, n, k, t, bkt);

  // Compact sorted LMS positions into sa[0..n1).
  int32_t n1 = 0;
  for (int32_t i = 0; i < n; ++i) {
    if (sa[i] > 0 && is_lms(t, sa[i])) sa[n1++] = sa[i];
  }

  // Name LMS substrings into sa[n1..n).
  std::fill(sa + n1, sa + n, -1);
  int32_t name = 0, prev = -1;
  for (int32_t i = 0; i < n1; ++i) {
    int32_t pos = sa[i];
    bool diff = false;
    if (prev < 0) {
      diff = true;
    } else {
      for (int32_t d = 0;; ++d) {
        if (s[pos + d] != s[prev + d] ||
            t[static_cast<std::size_t>(pos + d)] != t[static_cast<std::size_t>(prev + d)]) {
          diff = true;
          break;
        }
        if (d > 0 && (is_lms(t, pos + d) || is_lms(t, prev + d))) {
          diff = is_lms(t, pos + d) != is_lms(t, prev + d);
          break;
        }
      }
    }
    if (diff) {
      ++name;
      prev = pos;
    }
    sa[n1 + pos / 2] = name - 1;
  }
  for (int32_t i = n - 1, j = n - 1; i >= n1; --i) {
    if (sa[i] >= 0) sa[j--] = sa[i];
  }

  // Step 2: recurse if names are not yet unique.
  int32_t* s1 = sa + n - n1;
  if (name < n1) {
    sais(s1, sa, n1, name);
  } else {
    for (int32_t i = 0; i < n1; ++i) sa[s1[i]] = i;
  }

  // Step 3: map the order of LMS suffixes back and induce the full array.
  // Reuse s1's space for the LMS position list (text order).
  {
    int32_t j = 0;
    for (int32_t i = 1; i < n; ++i) {
      if (is_lms(t, i)) s1[j++] = i;
    }
    SALOBA_DCHECK(j == n1);
  }
  for (int32_t i = 0; i < n1; ++i) sa[i] = s1[sa[i]];
  std::fill(sa + n1, sa + n, -1);
  get_buckets(s, n, k, bkt, /*end=*/true);
  for (int32_t i = n1 - 1; i >= 0; --i) {
    int32_t pos = sa[i];
    sa[i] = -1;
    sa[--bkt[s[pos]]] = pos;
  }
  induce(s, sa, n, k, t, bkt);
}

}  // namespace

std::vector<int32_t> build_suffix_array(std::span<const seq::BaseCode> text) {
  // SA-IS works in int32 throughout (positions, bucket sums); a longer text
  // would silently wrap. Fail loudly — genome-scale references go through
  // the sharded index (seedext::ShardedKmerIndex) instead.
  SALOBA_CHECK_MSG(text.size() < static_cast<std::size_t>(INT32_MAX),
                   "text of " << text.size()
                              << " bases overflows the suffix array's 32-bit positions");
  const auto n = static_cast<int32_t>(text.size());
  if (n == 0) return {};
  // Shift codes by +1 so 0 is the unique sentinel.
  std::vector<int32_t> s(static_cast<std::size_t>(n) + 1);
  for (int32_t i = 0; i < n; ++i) s[static_cast<std::size_t>(i)] = text[static_cast<std::size_t>(i)] + 1;
  s[static_cast<std::size_t>(n)] = 0;

  std::vector<int32_t> sa(static_cast<std::size_t>(n) + 1);
  sais(s.data(), sa.data(), n + 1, seq::kAlphabetSize + 1);

  // Drop the sentinel suffix (always first).
  SALOBA_CHECK(sa[0] == n);
  return {sa.begin() + 1, sa.end()};
}

std::vector<int32_t> build_suffix_array_naive(std::span<const seq::BaseCode> text) {
  std::vector<int32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0);
  std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
    std::span<const seq::BaseCode> sa_a = text.subspan(static_cast<std::size_t>(a));
    std::span<const seq::BaseCode> sa_b = text.subspan(static_cast<std::size_t>(b));
    return std::lexicographical_compare(sa_a.begin(), sa_a.end(), sa_b.begin(), sa_b.end());
  });
  return sa;
}

}  // namespace saloba::seedext
