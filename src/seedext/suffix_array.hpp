// Suffix array construction via SA-IS (Nong, Zhang & Chan, 2009) — linear
// time, linear memory. The substrate for the BWT/FM-index seeding path
// (BWA-MEM, the paper's seed source, is BWT-based).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seedext {

/// Suffix array of `text` (base codes 0..4). Returns indices of the n
/// suffixes of `text` in lexicographic order (the virtual sentinel suffix is
/// dropped). Comparison treats base codes numerically: A < C < G < T < N.
std::vector<std::int32_t> build_suffix_array(std::span<const seq::BaseCode> text);

/// Reference implementation: naive O(n^2 log n) sort. For tests.
std::vector<std::int32_t> build_suffix_array_naive(std::span<const seq::BaseCode> text);

}  // namespace saloba::seedext
