#include "seq/alphabet.hpp"

#include <algorithm>
#include <array>

namespace saloba::seq {
namespace {

constexpr std::array<BaseCode, 256> build_encode_table() {
  std::array<BaseCode, 256> t{};
  for (auto& v : t) v = kBaseN;
  t['A'] = t['a'] = kBaseA;
  t['C'] = t['c'] = kBaseC;
  t['G'] = t['g'] = kBaseG;
  t['T'] = t['t'] = kBaseT;
  t['U'] = t['u'] = kBaseT;  // RNA uracil aligns as T
  return t;
}

constexpr auto kEncodeTable = build_encode_table();
constexpr char kDecodeTable[5] = {'A', 'C', 'G', 'T', 'N'};

}  // namespace

BaseCode encode_base(char c) { return kEncodeTable[static_cast<unsigned char>(c)]; }

char decode_base(BaseCode code) { return code < 5 ? kDecodeTable[code] : 'N'; }

BaseCode complement(BaseCode code) {
  switch (code) {
    case kBaseA: return kBaseT;
    case kBaseC: return kBaseG;
    case kBaseG: return kBaseC;
    case kBaseT: return kBaseA;
    default: return kBaseN;
  }
}

std::vector<BaseCode> encode_string(std::string_view s) {
  std::vector<BaseCode> out(s.size());
  std::transform(s.begin(), s.end(), out.begin(), encode_base);
  return out;
}

std::string decode_string(const std::vector<BaseCode>& codes) {
  std::string out(codes.size(), 'N');
  std::transform(codes.begin(), codes.end(), out.begin(), decode_base);
  return out;
}

std::vector<BaseCode> reverse_complement(const std::vector<BaseCode>& codes) {
  std::vector<BaseCode> out(codes.size());
  for (std::size_t i = 0; i < codes.size(); ++i) {
    out[codes.size() - 1 - i] = complement(codes[i]);
  }
  return out;
}

bool is_valid_base_char(char c) {
  switch (c) {
    case 'A': case 'a': case 'C': case 'c': case 'G': case 'g':
    case 'T': case 't': case 'U': case 'u': case 'N': case 'n':
      return true;
    default:
      return false;
  }
}

}  // namespace saloba::seq
