// The five-letter nucleotide alphabet (A, C, G, T/U, N) and its encodings.
//
// Three packings exist in the baselines we reproduce (paper Table II):
//   2-bit: {A,C,G,T} only; N is randomised by the caller (CUSHAW2/SOAP3 style)
//   4-bit: all five bases, eight bases per 32-bit word (GASAL2/SALoBa style)
//   8-bit: one base per byte (SW#/ADEPT style)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace saloba::seq {

/// Canonical internal code: A=0, C=1, G=2, T/U=3, N=4.
using BaseCode = std::uint8_t;

inline constexpr BaseCode kBaseA = 0;
inline constexpr BaseCode kBaseC = 1;
inline constexpr BaseCode kBaseG = 2;
inline constexpr BaseCode kBaseT = 3;
inline constexpr BaseCode kBaseN = 4;
inline constexpr int kAlphabetSize = 5;

/// Maps an ASCII base (case-insensitive; U treated as T) to its code.
/// Any unrecognised character maps to N, mirroring common aligner behaviour.
BaseCode encode_base(char c);

/// Maps a code back to uppercase ASCII ('N' for kBaseN and anything invalid).
char decode_base(BaseCode code);

/// Complement: A<->T, C<->G, N->N.
BaseCode complement(BaseCode code);

/// Encodes an ASCII string into codes.
std::vector<BaseCode> encode_string(std::string_view s);

/// Decodes codes back into an ASCII string.
std::string decode_string(const std::vector<BaseCode>& codes);

/// Reverse complement on code vectors.
std::vector<BaseCode> reverse_complement(const std::vector<BaseCode>& codes);

/// True if the character is one of A,C,G,T,U,N (either case).
bool is_valid_base_char(char c);

}  // namespace saloba::seq
