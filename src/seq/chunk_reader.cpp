#include "seq/chunk_reader.hpp"

#include <istream>
#include <sstream>
#include <stdexcept>

namespace saloba::seq {
namespace {

void truncate_at_whitespace(std::string& name) {
  // Truncate the header at the first whitespace, as aligners do.
  if (auto ws = name.find_first_of(" \t"); ws != std::string::npos) name.resize(ws);
}

}  // namespace

SequenceChunkReader::SequenceChunkReader(std::istream& in, std::size_t chunk_records)
    : in_(in), chunk_records_(chunk_records < 1 ? 1 : chunk_records) {}

bool SequenceChunkReader::next_line(std::string& line) {
  if (!std::getline(in_, line)) return false;
  ++line_no_;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

void SequenceChunkReader::fail(const char* what, std::size_t line_no) const {
  std::ostringstream oss;
  oss << "FASTA/FASTQ parse error at line " << line_no << ": " << what;
  throw std::runtime_error(oss.str());
}

bool SequenceChunkReader::read_record(Sequence& out) {
  out = Sequence{};
  if (!parse_record(out)) return false;
  ++records_read_;
  return true;
}

bool SequenceChunkReader::next(SequenceChunk& chunk) {
  chunk.index = chunks_read_;
  chunk.first_record = records_read_;
  chunk.records.clear();
  Sequence record;
  while (chunk.records.size() < chunk_records_ && read_record(record)) {
    chunk.records.push_back(std::move(record));
  }
  if (chunk.records.empty()) return false;
  ++chunks_read_;
  return true;
}

FastqChunkReader::FastqChunkReader(std::istream& in, std::size_t chunk_records)
    : SequenceChunkReader(in, chunk_records) {}

bool FastqChunkReader::parse_record(Sequence& out) {
  std::string header;
  do {
    if (!next_line(header)) return false;
  } while (header.empty());
  if (header[0] != '@') fail("expected '@' record header", line_no_);

  std::string bases, plus, quality;
  if (!next_line(bases)) fail("missing sequence line", line_no_ + 1);
  if (!next_line(plus)) fail("missing '+' line", line_no_ + 1);
  if (plus.empty() || plus[0] != '+') fail("expected '+' separator", line_no_);
  if (!next_line(quality)) fail("missing quality line", line_no_ + 1);
  if (quality.size() != bases.size()) fail("quality length != sequence length", line_no_);

  out.name = header.substr(1);
  truncate_at_whitespace(out.name);
  out.bases.reserve(bases.size());
  for (char c : bases) out.bases.push_back(encode_base(c));
  out.quality = std::move(quality);
  return true;
}

FastaChunkReader::FastaChunkReader(std::istream& in, std::size_t chunk_records)
    : SequenceChunkReader(in, chunk_records) {}

bool FastaChunkReader::parse_record(Sequence& out) {
  std::string header;
  if (pending_header_) {
    header = std::move(*pending_header_);
    pending_header_.reset();
  } else {
    std::string line;
    for (;;) {
      if (!next_line(line)) return false;
      if (line.empty()) continue;
      if (line[0] != '>') fail("sequence data before first '>' header", line_no_);
      header = line.substr(1);
      break;
    }
  }
  out.name = std::move(header);
  truncate_at_whitespace(out.name);

  std::string line;
  while (next_line(line)) {
    if (line.empty()) continue;
    if (line[0] == '>') {
      pending_header_ = line.substr(1);  // start of the next record
      break;
    }
    for (char c : line) out.bases.push_back(encode_base(c));
  }
  return true;
}

}  // namespace saloba::seq
