// Incremental FASTA / FASTQ ingestion for the streaming pipeline: readers
// that yield SequenceChunks of a configurable record count from any
// std::istream, so a workload never has to be fully resident. The parsers
// are the same tolerant ones behind read_fasta / read_fastq (in fact those
// are now implemented on top of these readers): line-length agnostic,
// CRLF- and blank-line-tolerant, strict about record structure — a
// truncated or malformed record throws std::runtime_error with the
// offending line number.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace saloba::seq {

/// A contiguous slice of an input stream's records, tagged with its position
/// so downstream stages can restore global order.
struct SequenceChunk {
  std::size_t index = 0;         ///< 0-based chunk ordinal within the stream
  std::size_t first_record = 0;  ///< stream index of records[0]
  std::vector<Sequence> records;

  std::size_t size() const { return records.size(); }
  bool empty() const { return records.empty(); }
};

/// Pull-model chunk reader over one std::istream. Not thread-safe; one
/// pipeline stage owns the reader. The stream must outlive the reader.
class SequenceChunkReader {
 public:
  /// Yields at most `chunk_records` records per chunk (>= 1).
  explicit SequenceChunkReader(std::istream& in, std::size_t chunk_records = 4096);
  virtual ~SequenceChunkReader() = default;

  SequenceChunkReader(const SequenceChunkReader&) = delete;
  SequenceChunkReader& operator=(const SequenceChunkReader&) = delete;

  /// Fills `chunk` with the next records of the stream (previous contents
  /// discarded). Returns false — leaving `chunk` empty — once the stream is
  /// exhausted. Throws std::runtime_error on malformed input.
  bool next(SequenceChunk& chunk);

  /// Single-record pull; false at end of stream.
  bool read_record(Sequence& out);

  std::size_t chunk_records() const { return chunk_records_; }
  std::size_t records_read() const { return records_read_; }
  std::size_t chunks_read() const { return chunks_read_; }
  /// 1-based number of the last line consumed (0 before any read).
  std::size_t line_number() const { return line_no_; }

 protected:
  virtual bool parse_record(Sequence& out) = 0;

  /// getline + CRLF strip + line accounting; false at end of stream.
  bool next_line(std::string& line);
  [[noreturn]] void fail(const char* what, std::size_t line_no) const;

  std::istream& in_;
  std::size_t line_no_ = 0;

 private:
  std::size_t chunk_records_;
  std::size_t records_read_ = 0;
  std::size_t chunks_read_ = 0;
};

/// FASTQ: 4-line records ('@' header, bases, '+' separator, quality of
/// matching length). A record truncated by EOF throws, naming the line
/// where the missing piece should have been.
class FastqChunkReader final : public SequenceChunkReader {
 public:
  explicit FastqChunkReader(std::istream& in, std::size_t chunk_records = 4096);

 protected:
  bool parse_record(Sequence& out) override;
};

/// FASTA: '>' headers with any number of sequence lines (multi-line records
/// reassemble across chunk boundaries — a boundary can never split a
/// record, because chunks are measured in whole records).
class FastaChunkReader final : public SequenceChunkReader {
 public:
  explicit FastaChunkReader(std::istream& in, std::size_t chunk_records = 4096);

 protected:
  bool parse_record(Sequence& out) override;

 private:
  std::optional<std::string> pending_header_;  ///< '>' line already consumed
};

}  // namespace saloba::seq
