#include "seq/fasta.hpp"

#include <fstream>
#include <stdexcept>

#include "seq/chunk_reader.hpp"

namespace saloba::seq {
namespace {

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return in;
}

std::ofstream create_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create " + path);
  return out;
}

// The non-chunked readers are the chunked ones run to exhaustion, so the
// two paths cannot drift apart (tolerances, error messages, header
// truncation — one parser each).
std::vector<Sequence> drain(SequenceChunkReader& reader) {
  std::vector<Sequence> seqs;
  Sequence record;
  while (reader.read_record(record)) seqs.push_back(std::move(record));
  return seqs;
}

}  // namespace

std::vector<Sequence> read_fasta(std::istream& in) {
  FastaChunkReader reader(in);
  return drain(reader);
}

std::vector<Sequence> read_fasta_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs, std::size_t line_width) {
  for (const auto& s : seqs) {
    out << '>' << s.name << '\n';
    std::string text = s.to_string();
    for (std::size_t i = 0; i < text.size(); i += line_width) {
      out << text.substr(i, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      std::size_t line_width) {
  auto out = create_or_throw(path);
  write_fasta(out, seqs, line_width);
}

std::vector<Sequence> read_fastq(std::istream& in) {
  FastqChunkReader reader(in);
  return drain(reader);
}

std::vector<Sequence> read_fastq_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<Sequence>& seqs) {
  for (const auto& s : seqs) {
    out << '@' << s.name << '\n' << s.to_string() << '\n' << "+\n";
    if (s.quality.size() == s.bases.size()) {
      out << s.quality << '\n';
    } else {
      out << std::string(s.bases.size(), 'I') << '\n';
    }
  }
}

void write_fastq_file(const std::string& path, const std::vector<Sequence>& seqs) {
  auto out = create_or_throw(path);
  write_fastq(out, seqs);
}

}  // namespace saloba::seq
