#include "seq/fasta.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace saloba::seq {
namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

[[noreturn]] void parse_error(const char* what, std::size_t line_no) {
  std::ostringstream oss;
  oss << "FASTA/FASTQ parse error at line " << line_no << ": " << what;
  throw std::runtime_error(oss.str());
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return in;
}

std::ofstream create_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create " + path);
  return out;
}

}  // namespace

std::vector<Sequence> read_fasta(std::istream& in) {
  std::vector<Sequence> seqs;
  std::string line;
  std::size_t line_no = 0;
  Sequence current;
  bool have_record = false;
  while (std::getline(in, line)) {
    ++line_no;
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] == '>') {
      if (have_record) seqs.push_back(std::move(current));
      current = Sequence{};
      current.name = line.substr(1);
      // Truncate the header at the first whitespace, as aligners do.
      if (auto ws = current.name.find_first_of(" \t"); ws != std::string::npos) {
        current.name.resize(ws);
      }
      have_record = true;
    } else {
      if (!have_record) parse_error("sequence data before first '>' header", line_no);
      for (char c : line) current.bases.push_back(encode_base(c));
    }
  }
  if (have_record) seqs.push_back(std::move(current));
  return seqs;
}

std::vector<Sequence> read_fasta_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs, std::size_t line_width) {
  for (const auto& s : seqs) {
    out << '>' << s.name << '\n';
    std::string text = s.to_string();
    for (std::size_t i = 0; i < text.size(); i += line_width) {
      out << text.substr(i, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      std::size_t line_width) {
  auto out = create_or_throw(path);
  write_fasta(out, seqs, line_width);
}

std::vector<Sequence> read_fastq(std::istream& in) {
  std::vector<Sequence> seqs;
  std::string header, bases, plus, quality;
  std::size_t line_no = 0;
  while (std::getline(in, header)) {
    ++line_no;
    strip_cr(header);
    if (header.empty()) continue;
    if (header[0] != '@') parse_error("expected '@' record header", line_no);
    if (!std::getline(in, bases)) parse_error("missing sequence line", line_no + 1);
    ++line_no;
    strip_cr(bases);
    if (!std::getline(in, plus)) parse_error("missing '+' line", line_no + 1);
    ++line_no;
    strip_cr(plus);
    if (plus.empty() || plus[0] != '+') parse_error("expected '+' separator", line_no);
    if (!std::getline(in, quality)) parse_error("missing quality line", line_no + 1);
    ++line_no;
    strip_cr(quality);
    if (quality.size() != bases.size()) parse_error("quality length != sequence length", line_no);

    Sequence s;
    s.name = header.substr(1);
    if (auto ws = s.name.find_first_of(" \t"); ws != std::string::npos) s.name.resize(ws);
    s.bases.reserve(bases.size());
    for (char c : bases) s.bases.push_back(encode_base(c));
    s.quality = quality;
    seqs.push_back(std::move(s));
  }
  return seqs;
}

std::vector<Sequence> read_fastq_file(const std::string& path) {
  auto in = open_or_throw(path);
  return read_fastq(in);
}

void write_fastq(std::ostream& out, const std::vector<Sequence>& seqs) {
  for (const auto& s : seqs) {
    out << '@' << s.name << '\n' << s.to_string() << '\n' << "+\n";
    if (s.quality.size() == s.bases.size()) {
      out << s.quality << '\n';
    } else {
      out << std::string(s.bases.size(), 'I') << '\n';
    }
  }
}

void write_fastq_file(const std::string& path, const std::vector<Sequence>& seqs) {
  auto out = create_or_throw(path);
  write_fastq(out, seqs);
}

}  // namespace saloba::seq
