// FASTA / FASTQ reading and writing. Line-length agnostic, tolerant of CRLF,
// strict about record structure (throws std::runtime_error with line info).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace saloba::seq {

std::vector<Sequence> read_fasta(std::istream& in);
std::vector<Sequence> read_fasta_file(const std::string& path);
void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 std::size_t line_width = 70);
void write_fasta_file(const std::string& path, const std::vector<Sequence>& seqs,
                      std::size_t line_width = 70);

std::vector<Sequence> read_fastq(std::istream& in);
std::vector<Sequence> read_fastq_file(const std::string& path);
void write_fastq(std::ostream& out, const std::vector<Sequence>& seqs);
void write_fastq_file(const std::string& path, const std::vector<Sequence>& seqs);

}  // namespace saloba::seq
