#include "seq/packed_seq.hpp"

#include "util/check.hpp"

namespace saloba::seq {
namespace {

std::uint32_t mask_for(Packing p) {
  switch (p) {
    case Packing::k2Bit: return 0x3u;
    case Packing::k4Bit: return 0xFu;
    case Packing::k8Bit: return 0xFFu;
  }
  return 0xFu;
}

BaseCode substitute(BaseCode c, Packing p, BaseCode n_substitute) {
  if (p == Packing::k2Bit && c == kBaseN) return n_substitute;
  return c;
}

}  // namespace

PackedSeq::PackedSeq(std::span<const BaseCode> codes, Packing packing, BaseCode n_substitute)
    : packing_(packing), length_(codes.size()) {
  const int per_word = bases_per_word(packing);
  const int bits = static_cast<int>(packing);
  words_.assign((codes.size() + per_word - 1) / per_word, 0u);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    BaseCode c = substitute(codes[i], packing, n_substitute);
    SALOBA_DCHECK(c < kAlphabetSize);
    if (packing == Packing::k2Bit) SALOBA_DCHECK(c < 4);
    std::size_t w = i / static_cast<std::size_t>(per_word);
    int slot = static_cast<int>(i % static_cast<std::size_t>(per_word));
    words_[w] |= static_cast<std::uint32_t>(c) << (slot * bits);
  }
}

BaseCode PackedSeq::base(std::size_t i) const {
  SALOBA_DCHECK(i < length_);
  return extract_base(words_.data(), i, packing_);
}

std::vector<BaseCode> PackedSeq::unpack() const {
  std::vector<BaseCode> out(length_);
  for (std::size_t i = 0; i < length_; ++i) out[i] = base(i);
  return out;
}

BaseCode extract_base(const std::uint32_t* words, std::size_t i, Packing packing) {
  const int per_word = bases_per_word(packing);
  const int bits = static_cast<int>(packing);
  std::size_t w = i / static_cast<std::size_t>(per_word);
  int slot = static_cast<int>(i % static_cast<std::size_t>(per_word));
  return static_cast<BaseCode>((words[w] >> (slot * bits)) & mask_for(packing));
}

BaseCode PackedBatch::base(std::size_t seq, std::size_t i) const {
  SALOBA_DCHECK(seq < length.size());
  SALOBA_DCHECK(i < length[seq]);
  return extract_base(words.data() + word_offset[seq], i, packing);
}

std::uint32_t PackedBatch::word(std::size_t seq, std::size_t w) const {
  SALOBA_DCHECK(seq < word_offset.size());
  return words[word_offset[seq] + w];
}

std::size_t PackedBatch::word_count(std::size_t seq) const {
  const int per_word = bases_per_word(packing);
  return (length[seq] + static_cast<std::size_t>(per_word) - 1) /
         static_cast<std::size_t>(per_word);
}

PackedBatch pack_batch(std::span<const std::vector<BaseCode>> seqs, Packing packing,
                       BaseCode n_substitute) {
  PackedBatch batch;
  batch.packing = packing;
  batch.word_offset.reserve(seqs.size());
  batch.length.reserve(seqs.size());
  std::size_t total_words = 0;
  const int per_word = bases_per_word(packing);
  for (const auto& s : seqs) {
    total_words += (s.size() + static_cast<std::size_t>(per_word) - 1) /
                   static_cast<std::size_t>(per_word);
  }
  batch.words.reserve(total_words);
  for (const auto& s : seqs) {
    PackedSeq packed(s, packing, n_substitute);
    batch.word_offset.push_back(static_cast<std::uint32_t>(batch.words.size()));
    batch.length.push_back(static_cast<std::uint32_t>(s.size()));
    batch.words.insert(batch.words.end(), packed.data(), packed.data() + packed.words());
  }
  return batch;
}

}  // namespace saloba::seq
