// Bit-packed sequence storage with 32-bit word access.
//
// GPU kernels fetch one 32-bit register worth of bases per global-memory
// read (paper Sec. II-B): 16 bases at 2-bit, 8 bases at 4-bit, 4 bases at
// 8-bit. PackedSeq reproduces exactly that layout so the simulated kernels
// issue the same word-granular access streams as the CUDA originals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seq {

enum class Packing : int {
  k2Bit = 2,  ///< {A,C,G,T}; N is substituted before packing (see pack_2bit)
  k4Bit = 4,  ///< all 5 bases; the GASAL2/SALoBa representation
  k8Bit = 8,  ///< one byte per base; SW#/ADEPT representation
};

/// Bases stored per 32-bit word for a packing.
constexpr int bases_per_word(Packing p) { return 32 / static_cast<int>(p); }

class PackedSeq {
 public:
  PackedSeq() = default;

  /// Packs `codes`. For k2Bit, N bases are replaced with `n_substitute`
  /// (CUSHAW2-GPU converts N to a random base; callers pass the choice in so
  /// packing itself stays deterministic).
  PackedSeq(std::span<const BaseCode> codes, Packing packing,
            BaseCode n_substitute = kBaseA);

  Packing packing() const { return packing_; }
  std::size_t size() const { return length_; }  ///< number of bases
  std::size_t words() const { return words_.size(); }

  /// The i-th base (decoded from the packed words).
  BaseCode base(std::size_t i) const;

  /// The w-th 32-bit word, as a kernel's register fetch would see it.
  std::uint32_t word(std::size_t w) const { return words_[w]; }

  /// Unpacks the whole sequence back into codes. For k2Bit this returns the
  /// substituted bases, not the original Ns — that information is lost by
  /// design, as in the modelled libraries.
  std::vector<BaseCode> unpack() const;

  /// Byte footprint of the packed words (what a kernel must ship to DRAM).
  std::size_t byte_size() const { return words_.size() * sizeof(std::uint32_t); }

  const std::uint32_t* data() const { return words_.data(); }

 private:
  Packing packing_ = Packing::k4Bit;
  std::size_t length_ = 0;
  std::vector<std::uint32_t> words_;
};

/// Extracts base `i` from a packed word array without materialising a
/// PackedSeq — used by kernels operating on batch-packed buffers.
BaseCode extract_base(const std::uint32_t* words, std::size_t i, Packing packing);

/// Packs many sequences back to back, each padded to a whole word so every
/// sequence starts word-aligned (matching GASAL2's batch layout). Offsets
/// are in words.
struct PackedBatch {
  Packing packing = Packing::k4Bit;
  std::vector<std::uint32_t> words;
  std::vector<std::uint32_t> word_offset;  ///< per-sequence start, in words
  std::vector<std::uint32_t> length;       ///< per-sequence base count

  std::size_t size() const { return length.size(); }
  BaseCode base(std::size_t seq, std::size_t i) const;
  std::uint32_t word(std::size_t seq, std::size_t w) const;
  /// Words occupied by sequence `seq`.
  std::size_t word_count(std::size_t seq) const;
};

PackedBatch pack_batch(std::span<const std::vector<BaseCode>> seqs, Packing packing,
                       BaseCode n_substitute = kBaseA);

}  // namespace saloba::seq
