#include "seq/random_genome.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace saloba::seq {
namespace {

using util::Xoshiro256;

BaseCode random_base(Xoshiro256& rng, double gc) {
  // P(G)+P(C)=gc, split evenly; same for A/T.
  double u = rng.uniform();
  if (u < gc * 0.5) return kBaseG;
  if (u < gc) return kBaseC;
  if (u < gc + (1.0 - gc) * 0.5) return kBaseA;
  return kBaseT;
}

}  // namespace

std::vector<BaseCode> generate_genome(const GenomeParams& params) {
  SALOBA_CHECK_MSG(params.length >= 1000, "genome must be at least 1 kbp");
  SALOBA_CHECK(params.gc_content > 0.0 && params.gc_content < 1.0);
  SALOBA_CHECK(params.repeat_unit_min >= 2 && params.repeat_unit_min <= params.repeat_unit_max);

  Xoshiro256 rng(params.seed);
  std::vector<BaseCode> genome(params.length);

  // Background.
  for (auto& b : genome) b = random_base(rng, params.gc_content);

  // Planted repeats: pick a unit from already-generated material and tile or
  // copy it elsewhere, until the requested coverage is reached.
  std::size_t repeat_budget =
      static_cast<std::size_t>(params.repeat_fraction * static_cast<double>(params.length));
  std::size_t planted = 0;
  while (planted < repeat_budget) {
    std::size_t unit_len = params.repeat_unit_min +
                           rng.below(params.repeat_unit_max - params.repeat_unit_min + 1);
    if (unit_len * 2 >= params.length) break;
    std::size_t src = rng.below(params.length - unit_len);
    std::size_t copies = 1 + rng.below(6);
    bool tandem = rng.bernoulli(0.5);
    if (tandem) {
      // Tandem: repeat the unit immediately after itself.
      std::size_t dst = src + unit_len;
      for (std::size_t c = 0; c < copies && dst + unit_len <= params.length; ++c) {
        std::copy_n(genome.begin() + static_cast<std::ptrdiff_t>(src), unit_len,
                    genome.begin() + static_cast<std::ptrdiff_t>(dst));
        dst += unit_len;
        planted += unit_len;
      }
    } else {
      // Dispersed: copy the unit to random positions (Alu-like behaviour).
      for (std::size_t c = 0; c < copies; ++c) {
        std::size_t dst = rng.below(params.length - unit_len);
        std::copy_n(genome.begin() + static_cast<std::ptrdiff_t>(src), unit_len,
                    genome.begin() + static_cast<std::ptrdiff_t>(dst));
        planted += unit_len;
      }
    }
  }

  // Assembly-gap style N runs.
  std::size_t n_budget =
      static_cast<std::size_t>(params.n_fraction * static_cast<double>(params.length));
  while (n_budget > 0) {
    std::size_t run = std::min<std::size_t>(n_budget, 10 + rng.below(191));
    if (run >= params.length) break;
    std::size_t pos = rng.below(params.length - run);
    std::fill_n(genome.begin() + static_cast<std::ptrdiff_t>(pos), run, kBaseN);
    n_budget -= run;
  }

  return genome;
}

}  // namespace saloba::seq
