// Synthetic reference-genome generator — our stand-in for GRCh38.p13.
//
// Real genomes are not i.i.d.: they have GC bias, repeat families, and
// low-complexity stretches, all of which matter for seeding (repeats create
// multi-hit seeds, which widens the extension-length distribution in Fig. 2).
// The generator plants tandem repeats and duplicated segments on top of a
// GC-biased random background so the seedext pipeline sees realistic
// structure.
#pragma once

#include <cstdint>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seq {

struct GenomeParams {
  std::size_t length = 1 << 20;  ///< bases
  double gc_content = 0.41;      ///< human-like GC fraction
  double repeat_fraction = 0.15; ///< fraction of genome covered by planted repeats
  std::size_t repeat_unit_min = 50;
  std::size_t repeat_unit_max = 500;
  double n_fraction = 0.001;     ///< assembly-gap style N runs
  std::uint64_t seed = 42;
};

/// Generates a genome per the params. Deterministic in `seed`.
std::vector<BaseCode> generate_genome(const GenomeParams& params);

}  // namespace saloba::seq
