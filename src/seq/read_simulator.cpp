#include "seq/read_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace saloba::seq {
namespace {

BaseCode random_acgt(util::Xoshiro256& rng) { return static_cast<BaseCode>(rng.below(4)); }

BaseCode mutate_base(util::Xoshiro256& rng, BaseCode original) {
  // Substitute with one of the other three bases.
  BaseCode b = static_cast<BaseCode>(rng.below(3));
  if (b >= original) b = static_cast<BaseCode>(b + 1);
  return b;
}

/// Applies substitutions/insertions/deletions at `rate` to `input`.
/// `indel_fraction` of events are indels (split evenly ins/del).
std::vector<BaseCode> apply_errors(util::Xoshiro256& rng, const std::vector<BaseCode>& input,
                                   double rate, double indel_fraction) {
  std::vector<BaseCode> out;
  out.reserve(input.size() + 16);
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (!rng.bernoulli(rate)) {
      out.push_back(input[i]);
      continue;
    }
    double kind = rng.uniform();
    if (kind < 1.0 - indel_fraction) {
      out.push_back(input[i] == kBaseN ? kBaseN : mutate_base(rng, input[i]));
    } else if (kind < 1.0 - indel_fraction * 0.5) {
      // insertion before the current base; short geometric length
      do {
        out.push_back(random_acgt(rng));
      } while (rng.bernoulli(0.3));
      out.push_back(input[i]);
    } else {
      // deletion: skip this base (and extend geometrically)
      while (i + 1 < input.size() && rng.bernoulli(0.3)) ++i;
    }
  }
  return out;
}

}  // namespace

ReadProfile ReadProfile::illumina_250bp() {
  ReadProfile p;
  p.length_mean = 250;
  p.length_sigma = 0.0;
  // Donor divergence of ~1% (SNPs + small indels) fragments exact seeds the
  // way real human variation plus sequencing artefacts do, producing the
  // extension-length mass of paper Fig. 2(a) instead of trivially tiny jobs.
  p.mutation_rate = 0.01;
  p.indel_fraction = 0.10;
  p.error_rate = 0.005;
  p.error_indel_fraction = 0.01;
  return p;
}

ReadProfile ReadProfile::pacbio_2kbp() {
  ReadProfile p;
  p.length_mean = 2000;
  p.length_sigma = 0.45;  // long right tail, as in Fig. 2(c)/(d)
  p.length_min = 200;
  p.length_max = 20000;
  p.mutation_rate = 0.001;
  p.indel_fraction = 0.10;
  p.error_rate = 0.12;          // PacBio RS raw error rate
  p.error_indel_fraction = 0.7; // indel-dominated errors
  return p;
}

ReadProfile ReadProfile::nanopore_ultralong(std::size_t mean) {
  ReadProfile p;
  p.length_mean = mean;
  p.length_sigma = 0.35;  // long right tail, like real ultra-long preps
  p.length_min = mean / 5;
  p.length_max = 1 << 20;  // 1 Mbp ceiling — ultra-long reads blow the 64 kb default
  p.mutation_rate = 0.001;
  p.indel_fraction = 0.10;
  p.error_rate = 0.05;           // modern ONT raw error rate
  p.error_indel_fraction = 0.5;  // indel-leaning error mix
  return p;
}

ReadProfile ReadProfile::equal_length(std::size_t len) {
  ReadProfile p;
  p.length_mean = len;
  p.length_sigma = 0.0;
  p.length_min = len;
  p.length_max = len;
  p.mutation_rate = 0.001;
  p.indel_fraction = 0.10;
  p.error_rate = 0.005;
  return p;
}

ReadSimulator::ReadSimulator(std::vector<BaseCode> genome, ReadProfile profile,
                             std::uint64_t seed)
    : genome_(std::move(genome)), profile_(profile), rng_(seed) {
  SALOBA_CHECK_MSG(genome_.size() > profile_.length_mean * 2,
                   "genome too small for requested read length");
}

std::size_t ReadSimulator::draw_length() {
  if (profile_.length_sigma <= 0.0) return profile_.length_mean;
  double mu = std::log(static_cast<double>(profile_.length_mean)) -
              0.5 * profile_.length_sigma * profile_.length_sigma;  // median-preserving-ish
  double len = rng_.lognormal(mu, profile_.length_sigma);
  auto n = static_cast<std::size_t>(len);
  return std::clamp(n, profile_.length_min, profile_.length_max);
}

SimulatedRead ReadSimulator::simulate_one() {
  std::size_t len = draw_length();
  len = std::min(len, genome_.size() / 2);
  std::size_t pos = rng_.below(genome_.size() - len);

  std::vector<BaseCode> region(genome_.begin() + static_cast<std::ptrdiff_t>(pos),
                               genome_.begin() + static_cast<std::ptrdiff_t>(pos + len));

  // Genome-level variation (donor mutations), then sequencing errors.
  region = apply_errors(rng_, region, profile_.mutation_rate, profile_.indel_fraction);
  region = apply_errors(rng_, region, profile_.error_rate, profile_.error_indel_fraction);

  bool reverse = profile_.sample_both_strands && rng_.bernoulli(0.5);
  if (reverse) region = reverse_complement(region);

  SimulatedRead out;
  out.read.name = "read_" + std::to_string(next_id_++);
  out.read.bases = std::move(region);
  out.true_pos = pos;
  out.true_len = len;
  out.reverse_strand = reverse;
  return out;
}

std::vector<SimulatedRead> ReadSimulator::simulate(std::size_t count) {
  std::vector<SimulatedRead> reads;
  reads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) reads.push_back(simulate_one());
  return reads;
}

PairBatch make_equal_length_batch(const std::vector<BaseCode>& genome, std::size_t len,
                                  std::size_t pairs, double divergence, std::uint64_t seed) {
  SALOBA_CHECK_MSG(genome.size() > len + 1, "genome shorter than requested pair length");
  util::Xoshiro256 rng(seed);
  PairBatch batch;
  for (std::size_t p = 0; p < pairs; ++p) {
    std::size_t pos = rng.below(genome.size() - len);
    std::vector<BaseCode> ref(genome.begin() + static_cast<std::ptrdiff_t>(pos),
                              genome.begin() + static_cast<std::ptrdiff_t>(pos + len));
    std::vector<BaseCode> query = apply_errors(rng, ref, divergence, 0.15);
    // Keep the pair exactly equal-length (Fig. 6 protocol): pad with random
    // bases or truncate after indel drift.
    while (query.size() < len) query.push_back(random_acgt(rng));
    query.resize(len);
    batch.add(std::move(query), std::move(ref));
  }
  return batch;
}

}  // namespace saloba::seq
