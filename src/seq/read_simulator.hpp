// Wgsim-style read simulator (the paper uses "an in-house sequence read
// simulator similar to Wgsim", Sec. V-B).
//
// Two built-in profiles reproduce the paper's datasets:
//   illumina_250bp() → dataset A' (SRR835433 stand-in: fixed 250 bp,
//     substitution-dominated errors, low indel rate)
//   pacbio_2kbp()    → dataset B' (SRP091981 stand-in: log-normal ~2 kbp,
//     indel-heavy 10-15% error)
// Plus equal_length() used by the Fig. 6 synthetic sweeps and
// nanopore_ultralong() — the 100 kbp+ ONT-style preset that feeds the
// long-read X-drop wavefront route (core::LongReadPolicy).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "seq/alphabet.hpp"
#include "seq/sequence.hpp"
#include "util/rng.hpp"

namespace saloba::seq {

struct ReadProfile {
  std::size_t length_mean = 250;   ///< exact length when length_sigma == 0
  double length_sigma = 0.0;       ///< sigma of underlying normal (log-normal lengths)
  std::size_t length_min = 50;
  std::size_t length_max = 1 << 16;
  double mutation_rate = 0.001;    ///< genome SNP/indel rate applied to the sampled region
  double indel_fraction = 0.10;    ///< fraction of mutations that are indels
  double error_rate = 0.005;       ///< per-base sequencing error
  double error_indel_fraction = 0.0;  ///< fraction of errors that are indels
  bool sample_both_strands = true;

  static ReadProfile illumina_250bp();
  static ReadProfile pacbio_2kbp();
  static ReadProfile equal_length(std::size_t len);
  /// Ultra-long nanopore-style reads (log-normal around `mean`, default
  /// 100 kbp, capped at 1 Mbp — the only profile whose length_max exceeds
  /// the legacy 64 kb ceiling). Modern ONT chemistry error mix: ~5%,
  /// indel-leaning. Reads this long are what LongReadPolicy routes to the
  /// X-drop wavefront engine.
  static ReadProfile nanopore_ultralong(std::size_t mean = 100000);
};

/// A simulated read plus its ground-truth origin (for mapping validation).
struct SimulatedRead {
  Sequence read;
  std::size_t true_pos = 0;   ///< 0-based start of sampled region in the genome
  std::size_t true_len = 0;   ///< length of the sampled genomic region
  bool reverse_strand = false;
};

class ReadSimulator {
 public:
  ReadSimulator(std::vector<BaseCode> genome, ReadProfile profile, std::uint64_t seed = 7);

  /// Draws one read.
  SimulatedRead simulate_one();

  /// Draws `count` reads.
  std::vector<SimulatedRead> simulate(std::size_t count);

  const std::vector<BaseCode>& genome() const { return genome_; }
  const ReadProfile& profile() const { return profile_; }

 private:
  std::size_t draw_length();

  std::vector<BaseCode> genome_;
  ReadProfile profile_;
  std::uint64_t next_id_ = 0;
  util::Xoshiro256 rng_;
};

/// Builds equal-length (query, reference) pairs directly, for the Fig. 6
/// sweeps: the reference segment is the true genomic window, the query is a
/// mutated/error-injected copy of the same window. Both have exactly `len`
/// bases.
PairBatch make_equal_length_batch(const std::vector<BaseCode>& genome, std::size_t len,
                                  std::size_t pairs, double divergence, std::uint64_t seed);

}  // namespace saloba::seq
