#include "seq/sam.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace saloba::seq {

SamWriter::SamWriter(std::ostream& out, const SamHeader& header) : out_(out) {
  out_ << "@HD\tVN:1.6\tSO:unknown\n";
  if (header.reference_length > 0) {
    out_ << "@SQ\tSN:" << header.reference_name << "\tLN:" << header.reference_length << '\n';
  }
  out_ << "@PG\tID:" << header.program_id << "\tPN:" << header.program_id
       << "\tVN:" << header.program_version;
  if (!header.command_line.empty()) out_ << "\tCL:" << header.command_line;
  out_ << '\n';
}

void SamWriter::write(const SamRecord& r) {
  SALOBA_CHECK_MSG(!r.qname.empty(), "SAM record needs a QNAME");
  out_ << r.qname << '\t' << r.flags << '\t' << (r.unmapped() ? "*" : r.rname) << '\t'
       << (r.unmapped() ? 0 : r.pos) << '\t' << r.mapq << '\t'
       << (r.unmapped() ? "*" : r.cigar) << "\t*\t0\t0\t" << (r.seq.empty() ? "*" : r.seq)
       << '\t' << (r.qual.empty() ? "*" : r.qual);
  for (const auto& tag : r.tags) out_ << '\t' << tag;
  out_ << '\n';
  ++records_;
}

std::vector<SamRecord> read_sam(std::istream& in) {
  std::vector<SamRecord> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '@') continue;
    std::istringstream fields(line);
    SamRecord r;
    std::string pos_text, mapq_text, flags_text, rnext, pnext, tlen;
    if (!(std::getline(fields, r.qname, '\t') && std::getline(fields, flags_text, '\t') &&
          std::getline(fields, r.rname, '\t') && std::getline(fields, pos_text, '\t') &&
          std::getline(fields, mapq_text, '\t') && std::getline(fields, r.cigar, '\t') &&
          std::getline(fields, rnext, '\t') && std::getline(fields, pnext, '\t') &&
          std::getline(fields, tlen, '\t') && std::getline(fields, r.seq, '\t'))) {
      throw std::runtime_error("malformed SAM record at line " + std::to_string(line_no));
    }
    std::getline(fields, r.qual, '\t');  // QUAL may be the final field
    r.flags = std::stoi(flags_text);
    r.pos = static_cast<std::size_t>(std::stoull(pos_text));
    r.mapq = std::stoi(mapq_text);
    std::string tag;
    while (std::getline(fields, tag, '\t')) r.tags.push_back(tag);
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace saloba::seq
