// Minimal SAM (Sequence Alignment/Map) output — the format downstream
// genomics tooling consumes, so the pipeline's results are actually usable.
// Implements the subset the mapper produces: header (@HD/@SQ/@PG), single-
// end records with flags for unmapped/reverse, MAPQ, CIGAR, and sequence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "seq/sequence.hpp"

namespace saloba::seq {

struct SamHeader {
  std::string reference_name = "synthetic";
  std::size_t reference_length = 0;
  std::string program_id = "saloba";
  std::string program_version = "1.0.0";
  std::string command_line;
};

struct SamRecord {
  std::string qname;
  /// Flag bits used here: 0x4 unmapped, 0x10 reverse strand.
  int flags = 0;
  std::string rname = "*";
  /// 1-based leftmost mapping position (0 when unmapped).
  std::size_t pos = 0;
  int mapq = 0;
  std::string cigar = "*";
  std::string seq;
  std::string qual = "*";
  /// Optional tags, already formatted ("AS:i:42").
  std::vector<std::string> tags;

  static constexpr int kFlagUnmapped = 0x4;
  static constexpr int kFlagReverse = 0x10;

  bool unmapped() const { return (flags & kFlagUnmapped) != 0; }
};

class SamWriter {
 public:
  SamWriter(std::ostream& out, const SamHeader& header);
  void write(const SamRecord& record);
  std::size_t records_written() const { return records_; }

 private:
  std::ostream& out_;
  std::size_t records_ = 0;
};

/// Parses the subset we emit — enough for round-trip tests and for reading
/// our own output back.
std::vector<SamRecord> read_sam(std::istream& in);

}  // namespace saloba::seq
