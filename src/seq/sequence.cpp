#include "seq/sequence.hpp"

#include <algorithm>

namespace saloba::seq {

void PairBatch::add(std::vector<BaseCode> q, std::vector<BaseCode> r) {
  queries.push_back(std::move(q));
  refs.push_back(std::move(r));
}

std::size_t PairBatch::max_query_len() const {
  std::size_t m = 0;
  for (const auto& q : queries) m = std::max(m, q.size());
  return m;
}

std::size_t PairBatch::max_ref_len() const {
  std::size_t m = 0;
  for (const auto& r : refs) m = std::max(m, r.size());
  return m;
}

std::size_t PairBatch::total_cells() const {
  std::size_t cells = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) cells += queries[i].size() * refs[i].size();
  return cells;
}

}  // namespace saloba::seq
