#include "seq/sequence.hpp"

#include <algorithm>

namespace saloba::seq {

std::size_t banded_cells(std::size_t ref_len, std::size_t query_len, std::size_t band) {
  if (ref_len == 0 || query_len == 0) return 0;
  if (band == 0) return ref_len * query_len;  // 0 = unbanded by convention
  // Full table minus the two corner triangles outside |i - j| <= band, each
  // a T(k) = k(k+1)/2 staircase clipped by the opposite table edge.
  auto tri = [](std::int64_t k) -> std::int64_t { return k <= 0 ? 0 : k * (k + 1) / 2; };
  const auto n = static_cast<std::int64_t>(ref_len);
  const auto m = static_cast<std::int64_t>(query_len);
  const auto b = static_cast<std::int64_t>(std::min<std::size_t>(
      band, static_cast<std::size_t>(std::max(n, m))));
  const std::int64_t above = tri(m - 1 - b) - tri(m - 1 - b - n);  // j - i > band
  const std::int64_t below = tri(n - 1 - b) - tri(n - 1 - b - m);  // i - j > band
  return static_cast<std::size_t>(n * m - above - below);
}

void PairBatch::add(std::vector<BaseCode> q, std::vector<BaseCode> r) {
  add(std::move(q), std::move(r), 0);
}

void PairBatch::add(std::vector<BaseCode> q, std::vector<BaseCode> r, std::size_t band) {
  if (band != 0 && bands.size() != queries.size()) {
    bands.resize(queries.size(), 0);  // backfill pairs added without a band
  }
  queries.push_back(std::move(q));
  refs.push_back(std::move(r));
  if (!bands.empty() || band != 0) bands.push_back(band);
}

bool PairBatch::banded() const {
  if (default_band != 0) return true;
  for (std::size_t b : bands) {
    if (b != 0) return true;
  }
  return false;
}

std::size_t PairBatch::max_query_len() const {
  std::size_t m = 0;
  for (const auto& q : queries) m = std::max(m, q.size());
  return m;
}

std::size_t PairBatch::max_ref_len() const {
  std::size_t m = 0;
  for (const auto& r : refs) m = std::max(m, r.size());
  return m;
}

std::size_t PairBatch::total_cells() const {
  std::size_t cells = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) cells += queries[i].size() * refs[i].size();
  return cells;
}

std::size_t PairBatch::cells_of(std::size_t i) const {
  return banded_cells(refs[i].size(), queries[i].size(), band_of(i));
}

std::size_t PairBatch::total_banded_cells() const {
  std::size_t cells = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) cells += cells_of(i);
  return cells;
}

}  // namespace saloba::seq
