// Named sequences and batches of query/reference pairs — the unit of work a
// seed-extension kernel consumes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seq {

struct Sequence {
  std::string name;
  std::vector<BaseCode> bases;
  std::string quality;  ///< optional FASTQ quality string (empty for FASTA)

  std::size_t size() const { return bases.size(); }
  std::string to_string() const { return decode_string(bases); }
};

/// A batch of (query, reference) pairs to extend — one-to-one mapping as in
/// the paper's evaluation (all baselines were modified to one-to-one).
struct PairBatch {
  std::vector<std::vector<BaseCode>> queries;
  std::vector<std::vector<BaseCode>> refs;

  std::size_t size() const { return queries.size(); }
  void add(std::vector<BaseCode> q, std::vector<BaseCode> r);
  std::size_t max_query_len() const;
  std::size_t max_ref_len() const;
  std::size_t total_cells() const;  ///< Σ |q|·|r| — the DP workload measure
};

}  // namespace saloba::seq
