// Named sequences and batches of query/reference pairs — the unit of work a
// seed-extension kernel consumes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"

namespace saloba::seq {

struct Sequence {
  std::string name;
  std::vector<BaseCode> bases;
  std::string quality;  ///< optional FASTQ quality string (empty for FASTA)

  std::size_t size() const { return bases.size(); }
  std::string to_string() const { return decode_string(bases); }
};

/// Number of DP cells inside the band |i - j| <= band of an n x m table
/// (i over `ref_len` rows, j over `query_len` columns). `band == 0` means
/// "no banding" and returns the full n·m — the convention every layer of the
/// pipeline shares (SalobaConfig.band, PairBatch bands, AlignerOptions.band).
/// align::smith_waterman_banded computes exactly this many cells.
std::size_t banded_cells(std::size_t ref_len, std::size_t query_len, std::size_t band);

/// A batch of (query, reference) pairs to extend — one-to-one mapping as in
/// the paper's evaluation (all baselines were modified to one-to-one).
///
/// The optional band channel carries Sec. VII-B banded-extension widths:
/// `bands[i]` restricts pair i's DP to |i - j| <= bands[i] with out-of-band
/// cells reading H = 0, E/F = -inf (the align::smith_waterman_banded
/// semantics). A per-pair band of 0 falls back to `default_band`; a
/// `default_band` of 0 means full-table. Every consumer (CPU backend,
/// simulated kernels, shard packing) resolves the effective band through
/// band_of(), so an empty channel keeps the classic unbanded behaviour
/// bit-for-bit.
struct PairBatch {
  std::vector<std::vector<BaseCode>> queries;
  std::vector<std::vector<BaseCode>> refs;
  /// Per-pair band widths; empty = every pair uses `default_band`. When
  /// non-empty, size() matches queries.size() (add() maintains this).
  std::vector<std::size_t> bands;
  /// Fallback band for pairs without an explicit one (0 = full table).
  std::size_t default_band = 0;

  std::size_t size() const { return queries.size(); }
  void add(std::vector<BaseCode> q, std::vector<BaseCode> r);
  /// add() with a per-pair band; allocates the band channel lazily (an
  /// all-zero batch never pays for it).
  void add(std::vector<BaseCode> q, std::vector<BaseCode> r, std::size_t band);
  /// Effective band of pair i (0 = full table).
  std::size_t band_of(std::size_t i) const {
    if (bands.empty()) return default_band;
    return bands[i] != 0 ? bands[i] : default_band;
  }
  /// True when the batch carries any band information at all.
  bool has_band_info() const { return default_band != 0 || !bands.empty(); }
  /// True when at least one pair is effectively banded.
  bool banded() const;
  std::size_t max_query_len() const;
  std::size_t max_ref_len() const;
  std::size_t total_cells() const;  ///< Σ |q|·|r| — the DP workload measure
  /// In-band DP cells of pair i — the banded workload measure the scheduler
  /// and shard packers cost with (equals |q|·|r| for unbanded pairs).
  std::size_t cells_of(std::size_t i) const;
  std::size_t total_banded_cells() const;  ///< Σ cells_of(i)
};

}  // namespace saloba::seq
