#include "util/args.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace saloba::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help, bool default_value) {
  specs_[name] = Spec{Kind::kFlag, help, default_value ? "1" : "0"};
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, const std::string& help,
                        std::int64_t default_value) {
  specs_[name] = Spec{Kind::kInt, help, std::to_string(default_value)};
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, const std::string& help,
                           double default_value) {
  std::ostringstream oss;
  oss << default_value;
  specs_[name] = Spec{Kind::kDouble, help, oss.str()};
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  specs_[name] = Spec{Kind::kString, help, default_value};
  order_.push_back(name);
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::fprintf(stderr, "%s: unknown flag --%s\n%s", program_.c_str(), name.c_str(),
                   usage().c_str());
      return false;
    }
    if (it->second.kind == Kind::kFlag) {
      it->second.value = has_value ? value : "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag --%s needs a value\n", program_.c_str(), name.c_str());
        return false;
      }
      value = argv[++i];
    }
    it->second.value = value;
  }
  return true;
}

const ArgParser::Spec& ArgParser::spec_of(const std::string& name, Kind kind) const {
  auto it = specs_.find(name);
  SALOBA_CHECK_MSG(it != specs_.end(), "undeclared flag --" << name);
  SALOBA_CHECK_MSG(it->second.kind == kind, "flag --" << name << " accessed with wrong type");
  return it->second;
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto& s = spec_of(name, Kind::kFlag);
  return s.value != "0" && s.value != "false" && !s.value.empty();
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(spec_of(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(spec_of(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return spec_of(name, Kind::kString).value;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const auto& s = specs_.at(name);
    out << "  --" << name;
    switch (s.kind) {
      case Kind::kFlag: break;
      case Kind::kInt: out << "=<int>"; break;
      case Kind::kDouble: out << "=<float>"; break;
      case Kind::kString: out << "=<str>"; break;
    }
    out << "  " << s.help << " (default: " << s.value << ")\n";
  }
  return out.str();
}

}  // namespace saloba::util
