// Tiny flag parser for examples and bench binaries:
// --name=value / --name value / --flag (boolean). Unknown flags error out,
// positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace saloba::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Declare flags before parse(). `help` is shown by usage().
  void add_flag(const std::string& name, const std::string& help, bool default_value = false);
  void add_int(const std::string& name, const std::string& help, std::int64_t default_value);
  void add_double(const std::string& name, const std::string& help, double default_value);
  void add_string(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Returns false (after printing usage) on error or --help.
  bool parse(int argc, char** argv);

  bool get_flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Spec {
    Kind kind;
    std::string help;
    std::string value;  // textual; parsed on get
  };
  const Spec& spec_of(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace saloba::util
