// Blocking bounded MPMC queue with close semantics — the backpressure
// primitive of the streaming alignment pipeline (reader → scheduler →
// merger; see core/stream_aligner.hpp). push() blocks while the queue is
// full, pop() blocks while it is empty; close() wakes every waiter: pending
// and future pushes fail, pops drain the remaining items and then report
// exhaustion. Pipeline threads therefore always join cleanly, whether the
// stream ended, a consumer gave up, or a stage failed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace saloba::util {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` >= 1 items may be queued before push() blocks.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room or the queue is closed. Returns false (and
  /// drops `item`) iff the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed (item left untouched on
  /// failure so the caller can retry or bail).
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// std::nullopt means "no more items, ever".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop: std::nullopt when currently empty (closed or not).
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return item;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Idempotent. Already-queued items remain poppable; every blocked or
  /// future push fails, every blocked pop past the drain returns nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace saloba::util
