// Blocking bounded MPMC queue with close semantics — the backpressure
// primitive of the streaming alignment pipeline (reader → scheduler →
// merger; see core/stream_aligner.hpp). push() blocks while the queue is
// full, pop() blocks while it is empty; close() wakes every waiter: pending
// and future pushes fail, pops drain the remaining items and then report
// exhaustion. Pipeline threads therefore always join cleanly, whether the
// stream ended, a consumer gave up, or a stage failed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/cancel_token.hpp"

namespace saloba::util {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` >= 1 items may be queued before push() blocks.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room or the queue is closed. Returns false (and
  /// drops `item`) iff the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Cancel-aware push: like push(), but additionally returns false (and
  /// drops `item`) as soon as `cancel` trips — a producer blocked on a full
  /// queue can never outlive the session or service it feeds.
  bool push(T item, const CancelToken& cancel) {
    CancelSubscription wake(cancel, [this] { interrupt(); });
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || cancel.cancelled() || items_.size() < capacity_;
    });
    if (closed_ || cancel.cancelled()) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed (item left untouched on
  /// failure so the caller can retry or bail).
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// std::nullopt means "no more items, ever".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Cancel-aware pop: like pop(), but returns std::nullopt as soon as
  /// `cancel` trips, even if items remain queued — cancellation means "stop
  /// consuming now", not "finish the backlog". Close-then-drain semantics
  /// are unchanged when the token never fires.
  std::optional<T> pop(const CancelToken& cancel) {
    CancelSubscription wake(cancel, [this] { interrupt(); });
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock,
                    [&] { return closed_ || cancel.cancelled() || !items_.empty(); });
    if (cancel.cancelled() || items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Timed pop: blocks at most `timeout`, then returns std::nullopt. Also
  /// std::nullopt when the queue closes while waiting and nothing is left
  /// to drain — callers distinguish the two via closed() if they care.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;  // timed out
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop: std::nullopt when currently empty (closed or not).
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return item;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Idempotent. Already-queued items remain poppable; every blocked or
  /// future push fails, every blocked pop past the drain returns nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  /// Cancel callback: re-evaluate every wait predicate. Taking (and
  /// dropping) the mutex before notifying closes the missed-wakeup race
  /// with a waiter that checked its predicate but has not gone to sleep yet.
  void interrupt() {
    { std::lock_guard<std::mutex> lock(mutex_); }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace saloba::util
