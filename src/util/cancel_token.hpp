// Cooperative cancellation for blocking pipeline stages. A CancelToken is a
// copyable handle to shared cancellation state: cancel() trips it exactly
// once, cancelled() observes it, and subscribe() registers a callback that
// fires on (or immediately after) cancellation — the hook BoundedQueue's
// cancel-aware pop/push use to wake a blocked waiter, so shutting down a
// session or the whole AlignService can never deadlock a consumer parked on
// an empty queue (see util/bounded_queue.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace saloba::util {

class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Idempotent trip: the first call runs every subscribed callback (outside
  /// the token's lock, in subscription order); later calls are no-ops.
  /// Callbacks may take their own locks (BoundedQueue's wake callback locks
  /// the queue mutex), so never call cancel() while holding a lock a
  /// callback needs.
  void cancel() const {
    std::map<std::size_t, std::function<void()>> run;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (state_->cancelled) return;
      state_->cancelled = true;
      run.swap(state_->callbacks);
    }
    for (auto& [id, fn] : run) fn();
  }

  bool cancelled() const {
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->cancelled;
  }

  /// Registers `fn` to run on cancellation and returns an id for
  /// unsubscribe(). If the token is already cancelled, `fn` runs immediately
  /// on this thread and the returned id is 0 (nothing to unsubscribe).
  std::size_t subscribe(std::function<void()> fn) const {
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      if (!state_->cancelled) {
        std::size_t id = state_->next_id++;
        state_->callbacks.emplace(id, std::move(fn));
        return id;
      }
    }
    fn();
    return 0;
  }

  /// Removes a subscription; safe on the 0 id and after cancel() (the
  /// callback map was already drained).
  void unsubscribe(std::size_t id) const {
    if (id == 0) return;
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->callbacks.erase(id);
  }

 private:
  struct State {
    std::mutex mutex;
    bool cancelled = false;
    std::size_t next_id = 1;
    std::map<std::size_t, std::function<void()>> callbacks;
  };
  std::shared_ptr<State> state_;
};

/// RAII subscription: subscribes on construction, unsubscribes on scope
/// exit — the shape every cancel-aware blocking call uses so a completed
/// wait never leaves a dangling callback behind.
class CancelSubscription {
 public:
  CancelSubscription(const CancelToken& token, std::function<void()> fn)
      : token_(token), id_(token_.subscribe(std::move(fn))) {}
  ~CancelSubscription() { token_.unsubscribe(id_); }
  CancelSubscription(const CancelSubscription&) = delete;
  CancelSubscription& operator=(const CancelSubscription&) = delete;

 private:
  CancelToken token_;
  std::size_t id_;
};

}  // namespace saloba::util
