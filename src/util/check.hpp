// Runtime invariant checks. SALOBA_CHECK is always on (aborts with context);
// SALOBA_DCHECK compiles away in NDEBUG builds. Prefer these to <cassert> so
// release bench binaries still validate user-facing preconditions.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace saloba::util {

[[noreturn]] inline void check_failed(const char* file, int line, const char* expr,
                                      const std::string& msg) {
  std::fprintf(stderr, "[saloba] CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace saloba::util

#define SALOBA_CHECK(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::saloba::util::check_failed(__FILE__, __LINE__, #expr, ""); \
  } while (0)

#define SALOBA_CHECK_MSG(expr, ...)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream oss_;                                            \
      oss_ << __VA_ARGS__;                                                \
      ::saloba::util::check_failed(__FILE__, __LINE__, #expr, oss_.str()); \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define SALOBA_DCHECK(expr) ((void)0)
#else
#define SALOBA_DCHECK(expr) SALOBA_CHECK(expr)
#endif
