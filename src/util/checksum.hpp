// Checksums for the on-disk index format (seedext::SharedIndex). Word-wise
// FNV-1a: the classic byte-at-a-time FNV-1a recurrence applied to 64-bit
// little-endian words (tail bytes zero-padded), so validating a multi-hundred
// MB index payload costs a fraction of rebuilding it — the whole point of the
// mmap load path. Not cryptographic; guards against truncation/bit-rot, not
// adversaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace saloba::util {

inline constexpr std::uint64_t kFnv64Offset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv64Prime = 1099511628211ULL;

/// Word-wise FNV-1a over `data`. Deterministic across platforms (the tail is
/// padded with zero bytes, words are read little-endian via memcpy).
inline std::uint64_t fnv1a64(std::span<const std::byte> data,
                             std::uint64_t seed = kFnv64Offset) {
  std::uint64_t h = seed;
  const std::size_t words = data.size() / 8;
  const std::byte* p = data.data();
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t w;
    std::memcpy(&w, p + i * 8, 8);
    h = (h ^ w) * kFnv64Prime;
  }
  const std::size_t tail = data.size() % 8;
  if (tail > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + words * 8, tail);
    h = (h ^ w) * kFnv64Prime;
  }
  // Fold the length in so "abc" and "abc\0" (same padded word) differ.
  return (h ^ static_cast<std::uint64_t>(data.size())) * kFnv64Prime;
}

/// fnv1a64 over any trivially copyable element span (the flat index arrays).
template <class T>
std::uint64_t fnv1a64_of(std::span<const T> data, std::uint64_t seed = kFnv64Offset) {
  return fnv1a64(std::as_bytes(data), seed);
}

}  // namespace saloba::util
