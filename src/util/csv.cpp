#include "util/csv.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace saloba::util {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  SALOBA_CHECK(!header.empty());
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  SALOBA_CHECK_MSG(cells.size() == arity_, "csv row arity mismatch in " << path_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace saloba::util
