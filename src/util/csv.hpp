// CSV writer used by benches so figure series can be replotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace saloba::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);
  const std::string& path() const { return path_; }

  /// RFC-4180 quoting for cells containing commas/quotes/newlines.
  static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace saloba::util
