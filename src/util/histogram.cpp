#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace saloba::util {

Histogram::Histogram(double lo, double hi, double width) : lo_(lo), hi_(hi), width_(width) {
  SALOBA_CHECK_MSG(hi > lo && width > 0, "bad histogram bounds");
  auto n = static_cast<std::size_t>(std::ceil((hi - lo) / width));
  counts_.assign(n + 1, 0);  // +1 overflow
}

void Histogram::add(double x) { add_n(x, 1); }

void Histogram::add_n(double x, std::uint64_t n) {
  total_ += n;
  if (x < lo_) {
    underflow_ += n;
    return;
  }
  if (x >= hi_) {
    counts_.back() += n;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  i = std::min(i, counts_.size() - 2);
  counts_[i] += n;
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

std::string Histogram::render(std::size_t max_bar) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    double lo = bucket_lo(i);
    char label[40];
    if (i + 1 == counts_.size()) {
      std::snprintf(label, sizeof label, "%8.0f+      ", hi_);
    } else {
      std::snprintf(label, sizeof label, "%8.0f-%-7.0f", lo, lo + width_);
    }
    auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                        static_cast<double>(peak) * static_cast<double>(max_bar));
    out << label << ' ' << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace saloba::util
