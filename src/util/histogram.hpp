// Fixed-width histogram with ASCII rendering — used to reproduce the Fig. 2
// sequence-length distributions in bench/fig2_distributions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace saloba::util {

class Histogram {
 public:
  /// Buckets of `width` covering [lo, hi); values >= hi land in an overflow
  /// bucket rendered as "hi+".
  Histogram(double lo, double hi, double width);

  void add(double x);
  void add_n(double x, std::uint64_t n);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  /// Overflow is the final bucket by construction.
  std::uint64_t overflow() const { return counts_.empty() ? 0 : counts_.back(); }

  /// Multi-line bar rendering, `max_bar` columns for the tallest bucket.
  std::string render(std::size_t max_bar = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;  // last element = overflow bucket
  std::uint64_t underflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace saloba::util
