#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace saloba::util {
namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialised from env
std::mutex g_emit_mutex;

int init_from_env() {
  const char* env = std::getenv("SALOBA_LOG");
  LogLevel level = env ? parse_log_level(env) : LogLevel::kInfo;
  return static_cast<int>(level);
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = init_from_env();
    g_level.store(v);
  }
  return static_cast<LogLevel>(v);
}

LogLevel parse_log_level(const std::string& name) {
  std::string low;
  low.reserve(name.size());
  for (char c : name) low.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (low == "trace") return LogLevel::kTrace;
  if (low == "debug") return LogLevel::kDebug;
  if (low == "info") return LogLevel::kInfo;
  if (low == "warn" || low == "warning") return LogLevel::kWarn;
  if (low == "error") return LogLevel::kError;
  if (low == "off" || low == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

void log_emit(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip directories for compactness.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[saloba %-5s %s:%d] %s\n", log_level_name(level), base, line,
               msg.c_str());
}

}  // namespace detail
}  // namespace saloba::util
