// Minimal leveled logger. Thread-safe, writes to stderr. Level is a process
// global settable via set_level() or the SALOBA_LOG environment variable
// (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace saloba::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
/// Current global level (initialised from $SALOBA_LOG on first use).
LogLevel log_level();
/// Parses "info", "DEBUG", ... ; returns kInfo for unknown strings.
LogLevel parse_log_level(const std::string& name);
const char* log_level_name(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const char* file, int line, const std::string& msg);
}  // namespace detail

}  // namespace saloba::util

#define SALOBA_LOG(level, ...)                                                   \
  do {                                                                           \
    if (static_cast<int>(level) >= static_cast<int>(::saloba::util::log_level())) { \
      std::ostringstream oss_;                                                   \
      oss_ << __VA_ARGS__;                                                       \
      ::saloba::util::detail::log_emit(level, __FILE__, __LINE__, oss_.str());   \
    }                                                                            \
  } while (0)

#define SALOBA_TRACE(...) SALOBA_LOG(::saloba::util::LogLevel::kTrace, __VA_ARGS__)
#define SALOBA_DEBUG(...) SALOBA_LOG(::saloba::util::LogLevel::kDebug, __VA_ARGS__)
#define SALOBA_INFO(...) SALOBA_LOG(::saloba::util::LogLevel::kInfo, __VA_ARGS__)
#define SALOBA_WARN(...) SALOBA_LOG(::saloba::util::LogLevel::kWarn, __VA_ARGS__)
#define SALOBA_ERROR(...) SALOBA_LOG(::saloba::util::LogLevel::kError, __VA_ARGS__)
