#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace saloba::util {

namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

MmapFile::MmapFile(const std::string& path) : path_(path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("cannot open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot stat", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap(0) is EINVAL; an empty file is a valid (empty) mapping.
    ::close(fd);
    return;
  }

  void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the file; the descriptor is not
  // needed past this point either way.
  ::close(fd);
  if (p == MAP_FAILED) throw_errno("cannot mmap", path);
  data_ = p;
}

void MmapFile::reset() noexcept {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  path_.clear();
}

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace saloba::util
