// Read-only memory-mapped file (POSIX mmap) — the zero-copy substrate of the
// shared on-disk index (seedext::SharedIndex): loaded index arrays are spans
// aliasing the mapping, so N mappers over one reference share one set of
// physical pages instead of N private rebuilds.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace saloba::util {

class MmapFile {
 public:
  MmapFile() = default;
  /// Maps `path` read-only. Throws std::runtime_error (with errno context)
  /// when the file cannot be opened, stat'ed, or mapped.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  bool valid() const { return data_ != nullptr || size_ == 0; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// The whole mapping. Bytes are read-only for the process lifetime of this
  /// object; spans derived from it must not outlive it.
  std::span<const std::byte> bytes() const {
    return {static_cast<const std::byte*>(data_), size_};
  }

 private:
  void reset() noexcept;

  std::string path_;
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace saloba::util
