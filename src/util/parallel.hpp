// parallel_for_indexed: the one host-parallelism primitive hot code uses.
// Maps to OpenMP when available (SALOBA_HAVE_OPENMP), serial otherwise.
// Deterministic outputs are required from all call sites: bodies may only
// write to index-owned slots or thread-shard accumulators.
#pragma once

#include <cstddef>

#if defined(SALOBA_HAVE_OPENMP)
#include <omp.h>
#endif

namespace saloba::util {

inline int max_parallel_threads() {
#if defined(SALOBA_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

inline int current_thread_index() {
#if defined(SALOBA_HAVE_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

template <typename Body>
void parallel_for_indexed(std::size_t n, const Body& body) {
#if defined(SALOBA_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 1)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

/// Thread-budgeted variant: at most `threads` host threads (0 = the default
/// team). Lets concurrent backend lanes split the machine between them
/// instead of each grabbing every core.
template <typename Body>
void parallel_for_indexed(std::size_t n, const Body& body, int threads) {
#if defined(SALOBA_HAVE_OPENMP)
  if (threads <= 0) {
    parallel_for_indexed(n, body);
    return;
  }
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (long long i = 0; i < static_cast<long long>(n); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  (void)threads;
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace saloba::util
