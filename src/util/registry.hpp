// Generic name→factory registry with aliases and deterministic listing
// order. Kernel and device-preset factories self-register from static
// initializers in their own TUs (the library links as one object set, so
// every registrar runs before main), replacing the string if-chains that
// used to be duplicated across core/aligner.cpp and kernels/registry.cpp.
#pragma once

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace saloba::util {

template <typename Factory>
class NamedRegistry {
 public:
  struct Entry {
    std::string canonical;
    std::vector<std::string> aliases;
    Factory factory;
    /// Listing position for names() (e.g. paper Table II order); ties break
    /// by canonical name so the order never depends on static-init order.
    int rank = 1000;
  };

  /// `kind` names the registered product ("kernel", "device preset") in
  /// error messages.
  explicit NamedRegistry(std::string kind) : kind_(std::move(kind)) {}

  void add(Entry entry) {
    if (lookup_.count(entry.canonical) > 0) {
      throw std::logic_error("duplicate " + kind_ + " registration: " + entry.canonical);
    }
    entries_.push_back(std::move(entry));
    const std::size_t idx = entries_.size() - 1;
    lookup_[entries_[idx].canonical] = idx;
    for (const auto& alias : entries_[idx].aliases) {
      if (lookup_.count(alias) > 0) {
        throw std::logic_error("duplicate " + kind_ + " registration: " + alias);
      }
      lookup_[alias] = idx;
    }
  }

  /// nullptr when `name` is neither a canonical name nor an alias.
  const Entry* find(const std::string& name) const {
    auto it = lookup_.find(name);
    return it == lookup_.end() ? nullptr : &entries_[it->second];
  }

  /// Resolves `name`; throws std::invalid_argument listing every valid
  /// canonical name on a miss.
  const Entry& at(const std::string& name) const {
    const Entry* entry = find(name);
    if (entry == nullptr) throw std::invalid_argument(unknown_name_message(name));
    return *entry;
  }

  /// Canonical names ordered by (rank, name).
  std::vector<std::string> names() const {
    std::vector<const Entry*> sorted = ordered();
    std::vector<std::string> out;
    out.reserve(sorted.size());
    for (const Entry* e : sorted) out.push_back(e->canonical);
    return out;
  }

  std::string unknown_name_message(const std::string& name) const {
    std::ostringstream oss;
    oss << "unknown " << kind_ << ": '" << name << "'; valid " << kind_ << " names:";
    for (const auto& n : names()) oss << ' ' << n;
    return oss.str();
  }

 private:
  std::vector<const Entry*> ordered() const {
    std::vector<const Entry*> sorted;
    sorted.reserve(entries_.size());
    for (const auto& e : entries_) sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(), [](const Entry* a, const Entry* b) {
      if (a->rank != b->rank) return a->rank < b->rank;
      return a->canonical < b->canonical;
    });
    return sorted;
  }

  std::string kind_;
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> lookup_;  ///< canonical + aliases → index
};

}  // namespace saloba::util
