// Deterministic, fast PRNGs for workload generation. We avoid <random>'s
// distribution objects in hot paths (implementation-defined sequences) so
// synthetic datasets are reproducible across standard libraries.
#pragma once

#include <cstdint>
#include <cmath>

namespace saloba::util {

/// SplitMix64 — used to seed Xoshiro and for one-off hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — public-domain reference algorithm.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5a10ba5eedULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Unbiased enough for workload generation
  /// (Lemire's multiply-shift without the rejection loop).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

  /// true with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (no caching; fine for our volumes).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Log-normal with given parameters of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace saloba::util
