#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace saloba::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    SALOBA_CHECK_MSG(x > 0.0, "geomean requires positive values, got " << x);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  SALOBA_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile_nearest_rank(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  SALOBA_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;                        // p = 0: the minimum
  if (rank > sorted.size()) rank = sorted.size();  // guard fp round-up
  auto nth = sorted.begin() + static_cast<std::ptrdiff_t>(rank - 1);
  std::nth_element(sorted.begin(), nth, sorted.end());
  return *nth;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double coeff_variation(std::span<const double> xs) {
  double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace saloba::util
