// Small descriptive-statistics helpers used by benches and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace saloba::util {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);  ///< requires all xs > 0
double stddev(std::span<const double> xs);   ///< sample stddev (n-1)
double median(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0,100].
double percentile(std::span<const double> xs, double p);
/// Exact nearest-rank percentile, p in [0,100]: the ceil(p/100 · N)-th
/// smallest sample (1-indexed; p = 0 returns the minimum). Unlike
/// percentile() it never interpolates — the result is always an observed
/// sample, the right convention for small-N latency quantiles (the
/// p50/p99 of core::ServiceStats).
double percentile_nearest_rank(std::span<const double> xs, double p);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
/// Coefficient of variation (stddev/mean); 0 for empty or zero-mean input.
double coeff_variation(std::span<const double> xs);

/// Running (streaming) statistics via Welford's algorithm.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace saloba::util
