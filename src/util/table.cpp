#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace saloba::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SALOBA_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SALOBA_CHECK_MSG(cells.size() == headers_.size(),
                   "row arity " << cells.size() << " != header arity " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::ms(double v) {
  char buf[64];
  if (v < 0.1) {
    std::snprintf(buf, sizeof buf, "%.1f us", v * 1000.0);
  } else if (v < 100.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ms", v);
  }
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](std::ostringstream& out, const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_row(out, headers_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) out << std::string(widths[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

}  // namespace saloba::util
