// ASCII table writer used by the bench harnesses to print paper-style rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace saloba::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with `precision` digits.
  static std::string num(double v, int precision = 2);
  /// Formats a time in ms with adaptive precision (µs below 0.1 ms).
  static std::string ms(double v);

  std::size_t rows() const { return rows_.size(); }
  /// Renders with a ruled header and column alignment.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace saloba::util
