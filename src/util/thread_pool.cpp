#include "util/thread_pool.hpp"

#include <algorithm>

namespace saloba::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t parts = std::min(n, workers_.size());
  if (parts <= 1) {
    fn(0, n);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(parts);
  std::size_t chunk = (n + parts - 1) / parts;
  for (std::size_t p = 0; p < parts; ++p) {
    std::size_t begin = p * chunk;
    std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    futs.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace saloba::util
