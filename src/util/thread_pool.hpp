// Work-stealing-free, chunk-based thread pool plus a parallel_for helper.
// The gpusim warp scheduler and the CPU batch aligner both use parallel_for;
// when OpenMP is available parallel_for maps onto `omp parallel for` instead
// (see parallel.hpp), so this pool mainly serves long-lived pipeline stages.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace saloba::util {

class ThreadPool {
 public:
  /// threads == 0 → hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n) across the pool; blocks until done.
  /// Static chunking: each worker gets a contiguous range, which is the
  /// right default for our uniform-cost warp batches.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(begin, end) per contiguous range, so per-thread
  /// accumulators can live on the caller's stack frame.
  void parallel_for_chunks(std::size_t n,
                           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace saloba::util
