// Wall-clock timer for host-side measurements (pipeline stages, CPU aligner).
// Simulated kernel times come from gpusim's cost model, not from this.
#pragma once

#include <chrono>

namespace saloba::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace saloba::util
