#include "align/alignment_result.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace saloba::align {
namespace {

TEST(AlignmentResult, ImprovesPrefersHigherScore) {
  AlignmentResult low{5, 0, 0}, high{9, 100, 100};
  EXPECT_TRUE(improves(high, low));
  EXPECT_FALSE(improves(low, high));
}

TEST(AlignmentResult, ImprovesTieBreaksOnRefEndThenQueryEnd) {
  AlignmentResult a{7, 3, 9}, b{7, 5, 1};
  EXPECT_TRUE(improves(a, b));   // smaller ref_end wins
  EXPECT_FALSE(improves(b, a));
  AlignmentResult c{7, 3, 2};
  EXPECT_TRUE(improves(c, a));   // same ref_end, smaller query_end wins
}

TEST(AlignmentResult, ImprovesIsIrreflexive) {
  AlignmentResult r{4, 2, 2};
  EXPECT_FALSE(improves(r, r));
}

TEST(AlignmentResult, OrderingIsTotalOnRandomSamples) {
  // improves() must behave like a strict weak ordering so that any scan
  // order yields the same winner.
  util::Xoshiro256 rng(77);
  std::vector<AlignmentResult> rs;
  for (int i = 0; i < 60; ++i) {
    rs.push_back(AlignmentResult{static_cast<Score>(rng.below(5)),
                                 static_cast<std::int32_t>(rng.below(6)),
                                 static_cast<std::int32_t>(rng.below(6))});
  }
  for (const auto& a : rs) {
    for (const auto& b : rs) {
      // Antisymmetry.
      EXPECT_FALSE(improves(a, b) && improves(b, a));
      for (const auto& c : rs) {
        // Transitivity.
        if (improves(a, b) && improves(b, c)) EXPECT_TRUE(improves(a, c));
      }
    }
  }
}

TEST(AlignmentResult, ScanOrderIndependentWinner) {
  util::Xoshiro256 rng(78);
  std::vector<AlignmentResult> rs;
  for (int i = 0; i < 40; ++i) {
    rs.push_back(AlignmentResult{static_cast<Score>(rng.below(4)),
                                 static_cast<std::int32_t>(rng.below(8)),
                                 static_cast<std::int32_t>(rng.below(8))});
  }
  AlignmentResult forward;
  for (const auto& r : rs) take_better(forward, r);
  AlignmentResult backward;
  for (auto it = rs.rbegin(); it != rs.rend(); ++it) take_better(backward, *it);
  if (forward.score > 0) {
    EXPECT_EQ(forward, backward);
  }
}

TEST(AlignmentResult, FormatMentionsFields) {
  AlignmentResult r{42, 7, 9};
  std::string s = format_result(r);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("ref_end=7"), std::string::npos);
  EXPECT_NE(s.find("query_end=9"), std::string::npos);
}

TEST(AlignmentResult, DefaultIsEmptyAlignment) {
  AlignmentResult r;
  EXPECT_EQ(r.score, 0);
  EXPECT_EQ(r.ref_end, -1);
  EXPECT_EQ(r.query_end, -1);
}

}  // namespace
}  // namespace saloba::align
