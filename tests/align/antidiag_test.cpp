#include "align/antidiag_cpu.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {
namespace {

TEST(Antidiag, MatchesReferenceOnKnownCases) {
  ScoringScheme s;
  auto ref = seq::encode_string("TTTTGATTACATTTT");
  auto query = seq::encode_string("GATTACA");
  EXPECT_EQ(smith_waterman_antidiag(ref, query, s), smith_waterman(ref, query, s));
}

TEST(Antidiag, EmptyInputs) {
  ScoringScheme s;
  std::vector<seq::BaseCode> empty;
  EXPECT_EQ(smith_waterman_antidiag(empty, empty, s).score, 0);
}

// Wavefront vs row-major sweep: sizes chosen to cover square, wide, tall and
// degenerate tables.
struct SizeCase {
  std::size_t n, m;
};

class AntidiagSweep : public ::testing::TestWithParam<SizeCase> {};

TEST_P(AntidiagSweep, EquivalentToRowMajorReference) {
  auto param = GetParam();
  ScoringScheme s;
  util::Xoshiro256 rng(61 + param.n * 131 + param.m);
  for (int i = 0; i < 8; ++i) {
    auto ref = saloba::testing::random_seq(rng, param.n);
    auto query = param.m <= param.n
                     ? saloba::testing::mutate(
                           rng,
                           std::vector<seq::BaseCode>(
                               ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(param.m)),
                           0.1)
                     : saloba::testing::random_seq(rng, param.m);
    EXPECT_EQ(smith_waterman_antidiag(ref, query, s), smith_waterman(ref, query, s))
        << "n=" << param.n << " m=" << param.m;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AntidiagSweep,
                         ::testing::Values(SizeCase{1, 1}, SizeCase{1, 50}, SizeCase{50, 1},
                                           SizeCase{8, 8}, SizeCase{16, 64}, SizeCase{64, 16},
                                           SizeCase{63, 65}, SizeCase{100, 100},
                                           SizeCase{200, 150}));

TEST(Antidiag, AgreesOnNHeavyInputs) {
  ScoringScheme s;
  util::Xoshiro256 rng(62);
  for (int i = 0; i < 10; ++i) {
    auto ref = saloba::testing::random_seq_with_n(rng, 60, 0.2);
    auto query = saloba::testing::random_seq_with_n(rng, 60, 0.2);
    EXPECT_EQ(smith_waterman_antidiag(ref, query, s), smith_waterman(ref, query, s));
  }
}

}  // namespace
}  // namespace saloba::align
