// Banded-extension conformance (Sec. VII-B), batch level: the per-pair band
// channel must mean exactly the same thing everywhere it is consumed — the
// CPU batch path, the Aligner facade (CPU and simulated backends), the
// sharding scheduler, and the streaming pipeline all reduce to
// align::smith_waterman_banded at the pair's effective band, and a band
// covering the whole table reproduces full Smith-Waterman bit for bit.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/batch.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "core/aligner.hpp"
#include "seedext/pipeline.hpp"
#include "seq/alphabet.hpp"
#include "seq/random_genome.hpp"
#include "seq/read_simulator.hpp"

namespace saloba::align {
namespace {

using core::AlignerOptions;

/// Random related batch with a randomized per-pair band channel: a mix of
/// narrow, wide, table-covering and (when `allow_unbanded`) full-table
/// pairs, the shapes the pipeline actually produces.
seq::PairBatch random_banded_batch(std::uint64_t seed, std::size_t pairs,
                                   std::size_t max_len, bool allow_unbanded = true) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t p = 0; p < pairs; ++p) {
    std::size_t rlen = 1 + rng.below(max_len);
    std::size_t qlen = 1 + rng.below(max_len);
    auto ref = saloba::testing::random_seq(rng, rlen);
    std::vector<seq::BaseCode> query;
    if (qlen <= rlen && rng.bernoulli(0.7)) {
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(qlen));
      query = saloba::testing::mutate(rng, query, 0.1);
    } else {
      query = saloba::testing::random_seq(rng, qlen);
    }
    std::size_t band;
    switch (rng.below(allow_unbanded ? 4 : 3)) {
      case 0: band = 1 + rng.below(8); break;                       // narrow
      case 1: band = 8 + rng.below(40); break;                      // moderate
      case 2: band = std::max(rlen, qlen) + rng.below(10); break;   // covering
      default: band = 0; break;                                     // full table
    }
    batch.add(std::move(query), std::move(ref), band);
  }
  return batch;
}

std::vector<AlignmentResult> banded_reference(const seq::PairBatch& batch,
                                              const ScoringScheme& s) {
  std::vector<AlignmentResult> out(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    out[i] = smith_waterman_banded(batch.refs[i], batch.queries[i], s,
                                   BandedParams{batch.band_of(i), 0})
                 .result;
  }
  return out;
}

TEST(BandedConformance, AlignBatchMatchesPerPairBandedReference) {
  ScoringScheme s;
  for (std::uint64_t seed : {501u, 502u, 503u}) {
    auto batch = random_banded_batch(seed, 40, 160);
    auto got = align_batch(batch, s);
    auto expected = banded_reference(batch, s);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(got[i], expected[i]) << "seed " << seed << " pair " << i << " band "
                                     << batch.band_of(i);
    }
  }
}

TEST(BandedConformance, CoveringBandIsBitIdenticalToFullTable) {
  ScoringScheme s;
  auto batch = random_banded_batch(504, 30, 120, /*allow_unbanded=*/false);
  // Force every band to cover the table.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch.bands[i] = std::max(batch.refs[i].size(), batch.queries[i].size());
  }
  auto got = align_batch(batch, s);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(got[i], smith_waterman(batch.refs[i], batch.queries[i], s)) << "pair " << i;
  }
}

TEST(BandedConformance, CpuAlignerHonorsBandPolicy) {
  AlignerOptions opts;
  opts.band = 16;
  core::Aligner aligner(opts);
  auto batch = saloba::testing::imbalanced_batch(505, 30, 5, 150);
  auto out = aligner.align(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto expected =
        smith_waterman_banded(batch.refs[i], batch.queries[i], opts.scoring, 16).result;
    EXPECT_EQ(out.results[i], expected) << "pair " << i;
  }
  // The reported workload is the in-band cell count, not the full area.
  seq::PairBatch banded = batch;
  core::materialize_bands(banded, opts.band_policy());
  EXPECT_EQ(out.cells, banded.total_banded_cells());
  EXPECT_LT(out.cells, batch.total_cells());
}

TEST(BandedConformance, BandFracScalesWithQueryLength) {
  AlignerOptions opts;
  opts.band = 4;
  opts.band_frac = 0.25;
  core::Aligner aligner(opts);
  auto batch = saloba::testing::related_batch(506, 12, 100, 140);
  auto out = aligner.align(batch);
  // band_for(100) = max(4, ceil(0.25 * 100)) = 25.
  EXPECT_EQ(opts.band_policy().band_for(100), 25u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto expected =
        smith_waterman_banded(batch.refs[i], batch.queries[i], opts.scoring, 25).result;
    EXPECT_EQ(out.results[i], expected) << "pair " << i;
  }
}

TEST(BandedConformance, PerPairBandsWinOverAlignerPolicy) {
  AlignerOptions opts;
  opts.band = 1;  // would clamp hard if it applied
  core::Aligner aligner(opts);
  auto batch = random_banded_batch(507, 25, 130, /*allow_unbanded=*/false);
  auto out = aligner.align(batch);
  auto expected = banded_reference(batch, opts.scoring);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(out.results[i], expected[i]) << "pair " << i;
  }
}

TEST(BandedConformance, SimulatedShardedAlignerMatchesBandedReference) {
  // Simulated backend, multiple devices, small shards: bands must survive
  // sorting, snake-dealing and shard re-batching (gpusim::make_shards).
  AlignerOptions opts;
  opts.backend = core::Backend::kSimulated;
  opts.kernel = "saloba";
  opts.devices = 3;
  opts.max_shard_pairs = 7;
  opts.band = 12;
  core::Aligner aligner(opts);
  auto batch = saloba::testing::imbalanced_batch(508, 40, 4, 180);
  auto out = aligner.align(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto expected =
        smith_waterman_banded(batch.refs[i], batch.queries[i], opts.scoring, 12).result;
    EXPECT_EQ(out.results[i], expected) << "pair " << i;
  }
  ASSERT_TRUE(out.kernel_stats.has_value());
  seq::PairBatch banded = batch;
  core::materialize_bands(banded, opts.band_policy());
  EXPECT_EQ(out.kernel_stats->totals.dp_cells, banded.total_banded_cells());
  EXPECT_EQ(out.kernel_stats->totals.dp_cells + out.kernel_stats->totals.dp_cells_skipped,
            batch.total_cells());
}

TEST(BandedConformance, ZdropBatchMatchesPerPairZdropReference) {
  ScoringScheme s;
  auto batch = random_banded_batch(509, 30, 150);
  const Score zdrop = 20;
  auto got = align_batch(batch, s, nullptr, 0, zdrop);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto expected = smith_waterman_banded(batch.refs[i], batch.queries[i], s,
                                          BandedParams{batch.band_of(i), zdrop})
                        .result;
    EXPECT_EQ(got[i], expected) << "pair " << i;
  }
}

TEST(BandedConformance, CpuAlignerZdropOptionFlowsToBackend) {
  AlignerOptions opts;
  opts.zdrop = 15;
  core::Aligner aligner(opts);
  auto batch = saloba::testing::related_batch(510, 20, 90, 160);
  auto out = aligner.align(batch);
  std::size_t executed = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto expected = smith_waterman_banded(batch.refs[i], batch.queries[i], opts.scoring,
                                          BandedParams{0, 15});
    EXPECT_EQ(out.results[i], expected.result) << "pair " << i;
    executed += expected.cells_computed;
  }
  // Reported cells (and so gcups) count only what zdrop actually ran.
  EXPECT_EQ(out.cells, executed);
  EXPECT_LE(out.cells, batch.total_cells());
}

// --- banded_cells / band_for unit behaviour -------------------------------

TEST(BandedCells, MatchesCellsActuallyComputed) {
  ScoringScheme s;
  util::Xoshiro256 rng(511);
  for (int trial = 0; trial < 40; ++trial) {
    std::size_t n = 1 + rng.below(90);
    std::size_t m = 1 + rng.below(90);
    std::size_t band = 1 + rng.below(100);
    auto ref = saloba::testing::random_seq(rng, n);
    auto query = saloba::testing::random_seq(rng, m);
    auto banded = smith_waterman_banded(ref, query, s, band);
    EXPECT_EQ(seq::banded_cells(n, m, band), banded.cells_computed)
        << "n=" << n << " m=" << m << " band=" << band;
  }
}

TEST(BandedCells, ZeroBandMeansFullTable) {
  EXPECT_EQ(seq::banded_cells(17, 23, 0), 17u * 23u);
  EXPECT_EQ(seq::banded_cells(0, 23, 5), 0u);
  EXPECT_EQ(seq::banded_cells(17, 0, 5), 0u);
}

TEST(BandPolicy, BandForSemantics) {
  core::BandPolicy none;
  EXPECT_FALSE(none.banded());
  EXPECT_EQ(none.band_for(500), 0u);

  core::BandPolicy fixed{8, 0.0};
  EXPECT_EQ(fixed.band_for(0), 8u);
  EXPECT_EQ(fixed.band_for(1000), 8u);

  core::BandPolicy frac{0, 0.25};
  EXPECT_TRUE(frac.banded());
  EXPECT_EQ(frac.band_for(100), 25u);
  // A banded policy never produces band 0 (0 would read as "full table").
  EXPECT_EQ(frac.band_for(0), 1u);
  EXPECT_EQ(frac.band_for(3), 1u);  // ceil(0.75) = 1

  core::BandPolicy both{16, 0.25};
  EXPECT_EQ(both.band_for(50), 16u);   // floor wins: ceil(12.5) = 13 < 16
  EXPECT_EQ(both.band_for(200), 50u);  // frac wins for long ones
}

TEST(BandPolicy, MaterializeRespectsExistingChannel) {
  core::BandPolicy policy{10, 0.0};
  seq::PairBatch fresh = saloba::testing::related_batch(512, 5, 30, 40);
  core::materialize_bands(fresh, policy);
  ASSERT_EQ(fresh.bands.size(), 5u);
  for (std::size_t b : fresh.bands) EXPECT_EQ(b, 10u);

  seq::PairBatch owned = saloba::testing::related_batch(513, 3, 30, 40);
  owned.default_band = 7;
  core::materialize_bands(owned, policy);
  EXPECT_TRUE(owned.bands.empty());  // batch band info wins, untouched
  EXPECT_EQ(owned.band_of(0), 7u);

  seq::PairBatch unbanded = saloba::testing::related_batch(514, 3, 30, 40);
  core::materialize_bands(unbanded, core::BandPolicy{});
  EXPECT_FALSE(unbanded.has_band_info());
}

// --- degenerate bands and inputs through the whole pipeline ---------------

TEST(BandedGuards, BandZeroPolicyIsBitIdenticalToUnbanded) {
  auto batch = saloba::testing::imbalanced_batch(515, 25, 3, 120);
  AlignerOptions plain;
  AlignerOptions zero;
  zero.band = 0;
  zero.band_frac = 0.0;
  auto a = core::Aligner(plain).align(batch);
  auto b = core::Aligner(zero).align(batch);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i], b.results[i]) << "pair " << i;
  }
  EXPECT_EQ(a.cells, b.cells);
}

TEST(BandedGuards, BandOneThroughCpuAndSimulatedBackends) {
  auto batch = saloba::testing::imbalanced_batch(516, 20, 1, 90);
  for (auto backend : {core::Backend::kCpu, core::Backend::kSimulated}) {
    AlignerOptions opts;
    opts.backend = backend;
    opts.band = 1;
    core::Aligner aligner(opts);
    auto out = aligner.align(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto expected =
          smith_waterman_banded(batch.refs[i], batch.queries[i], opts.scoring, 1).result;
      EXPECT_EQ(out.results[i], expected)
          << (backend == core::Backend::kCpu ? "cpu" : "sim") << " pair " << i;
    }
  }
}

TEST(BandedGuards, EmptyBatchAndEmptySequences) {
  for (auto backend : {core::Backend::kCpu, core::Backend::kSimulated}) {
    AlignerOptions opts;
    opts.backend = backend;
    opts.band = 4;
    core::Aligner aligner(opts);

    seq::PairBatch empty;
    auto out = aligner.align(empty);
    EXPECT_TRUE(out.results.empty());
    EXPECT_EQ(out.cells, 0u);

    seq::PairBatch degenerate;
    degenerate.add({}, seq::encode_string("ACGT"), 2);
    degenerate.add(seq::encode_string("ACGT"), {}, 2);
    degenerate.add(seq::encode_string("GATTACA"), seq::encode_string("GATTACA"), 1);
    auto deg = aligner.align(degenerate);
    EXPECT_EQ(deg.results[0], AlignmentResult{});
    EXPECT_EQ(deg.results[1], AlignmentResult{});
    EXPECT_EQ(deg.results[2].score, 7);  // identical pair, diagonal in band
  }
}

TEST(BandedGuards, MapBatchPathDegenerateBands) {
  // The whole ReadMapper::map_batch path — seeding, chaining, job
  // extraction, batched extension through an Aligner — must neither assert
  // nor diverge from the per-job CPU reference at full-table (banded=false),
  // band-1, and default banded job parameters.
  seq::GenomeParams gp;
  gp.length = 20000;
  gp.seed = 99;
  auto genome = seq::generate_genome(gp);
  seq::ReadSimulator sim(genome, seq::ReadProfile::illumina_250bp(), 17);
  std::vector<std::vector<seq::BaseCode>> reads;
  for (const auto& r : sim.simulate(12)) reads.push_back(r.read.bases);
  reads.emplace_back();  // empty read rides along

  for (int mode = 0; mode < 3; ++mode) {
    seedext::MapperParams params;
    if (mode == 0) params.jobs.banded = false;  // full table
    if (mode == 1) {                            // band 1
      params.jobs.min_band = 1;
      params.jobs.band_frac = 0.0;
    }
    seedext::ReadMapper mapper(genome, params);
    core::AlignerOptions opts;
    opts.scoring = params.scoring;
    core::Aligner aligner(opts);
    auto per_job = mapper.map_batch(reads);
    auto batched = mapper.map_batch(reads, aligner.batch_extender());
    ASSERT_EQ(per_job.size(), batched.size()) << "mode " << mode;
    for (std::size_t i = 0; i < per_job.size(); ++i) {
      EXPECT_EQ(per_job[i].mapped, batched[i].mapped) << "mode " << mode << " read " << i;
      EXPECT_EQ(per_job[i].ref_pos, batched[i].ref_pos) << "mode " << mode << " read " << i;
      EXPECT_EQ(per_job[i].score, batched[i].score) << "mode " << mode << " read " << i;
    }
  }
}

}  // namespace
}  // namespace saloba::align
