// Property/fuzz coverage for the banded + z-drop extension primitives:
// randomized (seeded) pairs asserting the algebraic laws the pipeline relies
// on rather than point values — z-drop <= 0 is exactly unbounded extension,
// a z-dropped sweep really did less work, and widening a band can only ever
// help a banded score.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/extension.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"

namespace saloba::align {
namespace {

struct Fuzz {
  util::Xoshiro256 rng;
  explicit Fuzz(std::uint64_t seed) : rng(seed) {}

  /// A (ref, query) pair that looks like an extension job: the query is a
  /// mutated prefix of the reference window about half the time, pure
  /// noise otherwise, so both decaying and growing score trajectories occur.
  std::pair<std::vector<seq::BaseCode>, std::vector<seq::BaseCode>> next_pair(
      std::size_t max_len) {
    std::size_t n = 1 + rng.below(max_len);
    std::size_t m = 1 + rng.below(max_len);
    auto ref = saloba::testing::random_seq(rng, n);
    std::vector<seq::BaseCode> query;
    if (m <= n && rng.bernoulli(0.5)) {
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(m));
      query = saloba::testing::mutate(rng, query, 0.05 + 0.2 * rng.uniform());
    } else {
      query = saloba::testing::random_seq(rng, m);
    }
    return {std::move(ref), std::move(query)};
  }
};

bool same_extension(const ExtensionResult& a, const ExtensionResult& b) {
  return a.score == b.score && a.query_used == b.query_used && a.ref_used == b.ref_used &&
         a.to_query_end == b.to_query_end && a.reached_query_end == b.reached_query_end;
}

TEST(ExtensionProperties, NonPositiveZdropEqualsUnboundedExtension) {
  Fuzz fuzz(6100);
  ScoringScheme s;
  for (int trial = 0; trial < 60; ++trial) {
    auto [ref, query] = fuzz.next_pair(150);
    ExtensionParams unbounded;
    unbounded.h0 = static_cast<Score>(fuzz.rng.below(60));
    unbounded.zdrop = 0;
    auto base = extend(ref, query, s, unbounded);
    EXPECT_FALSE(base.zdropped);
    EXPECT_EQ(base.cells_computed, ref.size() * query.size());

    for (Score zdrop : {Score{0}, Score{-1}, Score{-100}}) {
      ExtensionParams p = unbounded;
      p.zdrop = zdrop;
      auto got = extend(ref, query, s, p);
      EXPECT_TRUE(same_extension(got, base)) << "trial " << trial << " zdrop " << zdrop;
      EXPECT_FALSE(got.zdropped);
      EXPECT_EQ(got.cells_computed, base.cells_computed);
    }
  }
}

TEST(ExtensionProperties, ZdroppedImpliesStrictlyFewerCells) {
  Fuzz fuzz(6200);
  ScoringScheme s;
  int dropped = 0;
  for (int trial = 0; trial < 120; ++trial) {
    auto [ref, query] = fuzz.next_pair(120);
    ExtensionParams p;
    p.h0 = 5;
    p.zdrop = 1 + static_cast<Score>(fuzz.rng.below(30));
    auto got = extend(ref, query, s, p);
    const std::size_t full = ref.size() * query.size();
    EXPECT_LE(got.cells_computed, full);
    if (got.zdropped) {
      ++dropped;
      // The drop fired on some row before the last: strictly fewer cells.
      EXPECT_LT(got.cells_computed, full) << "trial " << trial;
      // A z-dropped sweep still computed whole rows.
      EXPECT_EQ(got.cells_computed % query.size(), 0u) << "trial " << trial;
      // And the score can only have missed improvements, never invented any.
      ExtensionParams unbounded = p;
      unbounded.zdrop = 0;
      EXPECT_LE(got.score, extend(ref, query, s, unbounded).score) << "trial " << trial;
    }
  }
  // The fuzz mix must actually exercise the property (noise pairs decay
  // fast, so many trials z-drop).
  EXPECT_GT(dropped, 10);
}

TEST(ExtensionProperties, BandedZdropSameLaws) {
  // The same two laws for smith_waterman_banded's BandedParams::zdrop,
  // which align_batch applies per pair for the CPU backend.
  Fuzz fuzz(6300);
  ScoringScheme s;
  int dropped = 0;
  for (int trial = 0; trial < 80; ++trial) {
    auto [ref, query] = fuzz.next_pair(120);
    BandedParams p;
    p.band = fuzz.rng.bernoulli(0.5) ? 0 : 1 + fuzz.rng.below(40);
    p.zdrop = 1 + static_cast<Score>(fuzz.rng.below(25));
    auto pruned = smith_waterman_banded(ref, query, s, p);
    BandedParams off = p;
    off.zdrop = 0;
    auto full = smith_waterman_banded(ref, query, s, off);
    EXPECT_FALSE(full.zdropped);
    if (pruned.zdropped) {
      ++dropped;
      EXPECT_LT(pruned.cells_computed, full.cells_computed) << "trial " << trial;
      EXPECT_LE(pruned.result.score, full.result.score) << "trial " << trial;
    } else {
      EXPECT_EQ(pruned.result, full.result) << "trial " << trial;
      EXPECT_EQ(pruned.cells_computed, full.cells_computed) << "trial " << trial;
    }
  }
  EXPECT_GT(dropped, 5);
}

TEST(BandedProperties, WideningTheBandNeverLowersTheScore) {
  Fuzz fuzz(6400);
  ScoringScheme s;
  for (int trial = 0; trial < 50; ++trial) {
    auto [ref, query] = fuzz.next_pair(140);
    const std::size_t covering = std::max(ref.size(), query.size());
    Score prev = std::numeric_limits<Score>::min();
    for (std::size_t band = 1; band < covering; band = band * 2 + 1) {
      auto got = smith_waterman_banded(ref, query, s, band);
      EXPECT_GE(got.result.score, prev)
          << "trial " << trial << " band " << band << " n=" << ref.size()
          << " m=" << query.size();
      prev = got.result.score;
    }
    // A covering band tops the ladder and is exactly full Smith-Waterman.
    auto widest = smith_waterman_banded(ref, query, s, covering);
    EXPECT_GE(widest.result.score, prev) << "trial " << trial;
    EXPECT_EQ(widest.result, smith_waterman(ref, query, s)) << "trial " << trial;
  }
}

TEST(BandedProperties, WideningTheBandNeverComputesFewerCells) {
  Fuzz fuzz(6500);
  ScoringScheme s;
  for (int trial = 0; trial < 30; ++trial) {
    auto [ref, query] = fuzz.next_pair(100);
    std::size_t prev = 0;
    for (std::size_t band : {1u, 4u, 16u, 64u, 256u}) {
      auto got = smith_waterman_banded(ref, query, s, band);
      EXPECT_GE(got.cells_computed, prev) << "trial " << trial << " band " << band;
      prev = got.cells_computed;
      EXPECT_EQ(got.cells_computed, seq::banded_cells(ref.size(), query.size(), band));
    }
  }
}

}  // namespace
}  // namespace saloba::align
