#include "align/batch.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"

namespace saloba::align {
namespace {

TEST(Batch, MatchesPerPairReference) {
  auto batch = saloba::testing::related_batch(71, 50, 40, 60);
  ScoringScheme s;
  auto results = align_batch(batch, s);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i], smith_waterman(batch.refs[i], batch.queries[i], s));
  }
}

TEST(Batch, TimingPopulated) {
  auto batch = saloba::testing::related_batch(72, 20, 64, 64);
  ScoringScheme s;
  BatchTiming timing;
  align_batch(batch, s, &timing);
  EXPECT_GT(timing.wall_ms, 0.0);
  EXPECT_EQ(timing.cells, batch.total_cells());
  EXPECT_GT(timing.gcups, 0.0);
}

TEST(Batch, DeterministicAcrossRuns) {
  auto batch = saloba::testing::imbalanced_batch(73, 64, 10, 200);
  ScoringScheme s;
  auto a = align_batch(batch, s);
  auto b = align_batch(batch, s);
  EXPECT_EQ(a, b);
}

TEST(Batch, HandlesEmptySequencesInBatch) {
  seq::PairBatch batch;
  batch.add({}, seq::encode_string("ACGT"));
  batch.add(seq::encode_string("ACGT"), {});
  batch.add(seq::encode_string("ACGT"), seq::encode_string("ACGT"));
  ScoringScheme s;
  auto results = align_batch(batch, s);
  EXPECT_EQ(results[0].score, 0);
  EXPECT_EQ(results[1].score, 0);
  EXPECT_EQ(results[2].score, 4);
}

TEST(Batch, TotalCellsComputed) {
  seq::PairBatch batch;
  batch.add(seq::encode_string("ACGT"), seq::encode_string("ACGTACGT"));
  EXPECT_EQ(batch.total_cells(), 32u);
  EXPECT_EQ(batch.max_query_len(), 4u);
  EXPECT_EQ(batch.max_ref_len(), 8u);
}

}  // namespace
}  // namespace saloba::align
