// CIGAR conformance: the contract of the two-phase pipeline
// (AlignerOptions::traceback), pinned for every kernel × {banded, unbanded}
// × {one-shot, streamed} path:
//   * CIGAR ops consume exactly query_end - query_start + 1 query bases and
//     the matching reference span;
//   * the score recomputed by walking the CIGAR over the sequences equals
//     the reported score;
//   * traced endpoints equal the score-pass endpoints under the canonical
//     improves() tie-break.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/traceback.hpp"
#include "core/aligner.hpp"
#include "core/stream_aligner.hpp"

namespace saloba::core {
namespace {

seq::PairBatch conformance_batch(std::uint64_t seed, std::size_t band) {
  util::Xoshiro256 rng(seed);
  seq::PairBatch batch;
  for (std::size_t p = 0; p < 48; ++p) {
    std::size_t rlen = 40 + rng.below(160);
    std::size_t qlen = 1 + rng.below(rlen);
    auto ref = saloba::testing::random_seq(rng, rlen);
    std::vector<seq::BaseCode> query;
    if (rng.bernoulli(0.7)) {
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(qlen));
      query = saloba::testing::mutate(rng, query, 0.02 + 0.15 * rng.uniform());
    } else {
      query = saloba::testing::random_seq(rng, qlen);
    }
    batch.add(std::move(query), std::move(ref));
  }
  batch.default_band = band;
  return batch;
}

/// The satellite properties, per pair.
void check_conformance(const seq::PairBatch& batch, const AlignOutput& out,
                       const align::ScoringScheme& scoring, const std::string& label) {
  ASSERT_EQ(out.results.size(), batch.size()) << label;
  ASSERT_EQ(out.traced.size(), batch.size()) << label;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const align::TracedAlignment& t = out.traced[i];
    // Endpoints: the traceback pass re-derives exactly the score pass's
    // best cell (canonical tie-break everywhere).
    EXPECT_EQ(t.end, out.results[i]) << label << " pair " << i;
    EXPECT_TRUE(align::cigar_consistent(t, batch.refs[i].size(), batch.queries[i].size()))
        << label << " pair " << i << " cigar " << t.cigar;
    if (t.end.score == 0) {
      EXPECT_TRUE(t.cigar.empty()) << label << " pair " << i;
      continue;
    }
    // Exact span consumption, op by op.
    std::size_t q_used = 0;
    std::size_t r_used = 0;
    for (char op : align::expand_cigar(t.cigar)) {
      q_used += op != 'D';
      r_used += op != 'I';
    }
    EXPECT_EQ(q_used, static_cast<std::size_t>(t.end.query_end - t.query_start) + 1)
        << label << " pair " << i;
    EXPECT_EQ(r_used, static_cast<std::size_t>(t.end.ref_end - t.ref_start) + 1)
        << label << " pair " << i;
    // Rescoring the path reproduces the reported score.
    EXPECT_EQ(align::rescore_cigar(t, batch.refs[i], batch.queries[i], scoring),
              t.end.score)
        << label << " pair " << i << " cigar " << t.cigar;
  }
}

struct Config {
  Backend backend;
  const char* kernel;  // simulated only
};

std::vector<Config> configs() {
  return {{Backend::kCpu, ""},
          {Backend::kSimulated, "saloba"},
          {Backend::kSimulated, "saloba-sw8"},
          {Backend::kSimulated, "gasal2"},
          {Backend::kSimulated, "swsharp"}};
}

TEST(CigarConformance, EveryKernelBandedAndUnbandedOneShot) {
  for (const Config& cfg : configs()) {
    for (std::size_t band : {std::size_t{0}, std::size_t{12}}) {
      AlignerOptions opts;
      opts.backend = cfg.backend;
      if (cfg.backend == Backend::kSimulated) opts.kernel = cfg.kernel;
      opts.traceback = true;
      Aligner aligner(opts);
      auto batch = conformance_batch(501, band);
      auto out = aligner.align(batch);
      std::string label = std::string(cfg.backend == Backend::kCpu ? "cpu" : cfg.kernel) +
                          "/band=" + std::to_string(band);
      check_conformance(batch, out, opts.scoring, label);
      EXPECT_GT(out.traceback_cells, 0u) << label;
    }
  }
}

TEST(CigarConformance, StreamedEqualsOneShotWithTraceback) {
  for (const Config& cfg : configs()) {
    for (std::size_t band : {std::size_t{0}, std::size_t{12}}) {
      AlignerOptions opts;
      opts.backend = cfg.backend;
      if (cfg.backend == Backend::kSimulated) opts.kernel = cfg.kernel;
      opts.traceback = true;
      auto batch = conformance_batch(733, band);

      Aligner one_shot(opts);
      auto want = one_shot.align(batch);

      StreamOptions stream;
      stream.chunk_pairs = 7;  // forces many chunks and a partial tail
      StreamAligner streamer(opts, stream);
      auto got = streamer.align_streamed(batch);

      std::string label = std::string(cfg.backend == Backend::kCpu ? "cpu" : cfg.kernel) +
                          "/band=" + std::to_string(band);
      check_conformance(batch, got, opts.scoring, label + "/streamed");
      ASSERT_EQ(got.traced.size(), want.traced.size()) << label;
      for (std::size_t i = 0; i < want.traced.size(); ++i) {
        EXPECT_EQ(got.traced[i], want.traced[i]) << label << " pair " << i;
      }
      EXPECT_EQ(got.results, want.results) << label;
    }
  }
}

TEST(CigarConformance, ShardedMultiLaneMergesTracesInInputOrder) {
  AlignerOptions opts;
  opts.backend = Backend::kSimulated;
  opts.kernel = "saloba";
  opts.devices = 3;
  opts.max_shard_pairs = 5;
  opts.traceback = true;
  Aligner aligner(opts);
  auto batch = conformance_batch(911, 0);
  auto out = aligner.align(batch);
  ASSERT_GT(out.schedule.shards, 1u);
  check_conformance(batch, out, opts.scoring, "sharded");

  // The sharded traced channel must equal the unsharded one, pair for pair.
  AlignerOptions single = opts;
  single.devices = 1;
  single.max_shard_pairs = 0;
  auto want = Aligner(single).align(batch);
  ASSERT_EQ(out.traced.size(), want.traced.size());
  for (std::size_t i = 0; i < want.traced.size(); ++i) {
    EXPECT_EQ(out.traced[i], want.traced[i]) << " pair " << i;
  }
}

TEST(CigarConformance, ScoreOnlyRunsCarryNoTracedChannel) {
  AlignerOptions opts;  // traceback defaults off
  Aligner aligner(opts);
  auto batch = conformance_batch(42, 0);
  auto out = aligner.align(batch);
  EXPECT_TRUE(out.traced.empty());
  EXPECT_EQ(out.traceback_ms, 0.0);
  EXPECT_EQ(out.traceback_cells, 0u);
}

TEST(CigarConformance, EmptyBatchTraceback) {
  AlignerOptions opts;
  opts.traceback = true;
  Aligner aligner(opts);
  seq::PairBatch empty;
  auto out = aligner.align(empty);
  EXPECT_TRUE(out.results.empty());
  EXPECT_TRUE(out.traced.empty());
}

}  // namespace
}  // namespace saloba::core
