// Cross-implementation consistency: four independent CPU implementations
// (row-major scalar, anti-diagonal wavefront, striped/Farrar, banded at full
// width) must agree on score for arbitrary inputs and scoring schemes.
// Any single-implementation bug breaks at least one pairing.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/antidiag_cpu.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "align/sw_striped.hpp"

namespace saloba::align {
namespace {

struct CrossCase {
  std::uint64_t seed;
  std::size_t max_len;
  double n_prob;
  ScoringScheme scheme;
};

class CrossImpl : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossImpl, AllFourAgree) {
  auto param = GetParam();
  util::Xoshiro256 rng(param.seed);
  for (int trial = 0; trial < 12; ++trial) {
    std::size_t n = 1 + rng.below(param.max_len);
    std::size_t m = 1 + rng.below(param.max_len);
    auto ref = saloba::testing::random_seq_with_n(rng, n, param.n_prob);
    auto query = rng.bernoulli(0.5)
                     ? saloba::testing::random_seq_with_n(rng, m, param.n_prob)
                     : [&] {
                         auto q = ref;
                         q.resize(std::min(m, q.size()));
                         return saloba::testing::mutate(rng, q, 0.15);
                       }();
    if (query.empty()) continue;

    auto scalar = smith_waterman(ref, query, param.scheme);
    auto wavefront = smith_waterman_antidiag(ref, query, param.scheme);
    auto striped = smith_waterman_striped(ref, query, param.scheme);
    auto banded =
        smith_waterman_banded(ref, query, param.scheme, std::max(ref.size(), query.size()));

    EXPECT_EQ(scalar, wavefront) << "n=" << n << " m=" << m;
    EXPECT_EQ(scalar.score, striped) << "n=" << n << " m=" << m;
    EXPECT_EQ(scalar, banded.result) << "n=" << n << " m=" << m;
  }
}

std::vector<CrossCase> cross_cases() {
  ScoringScheme bwa;                       // 1/4/6/1
  ScoringScheme longread = long_read_scheme();  // 2/5/4/2
  ScoringScheme flat;
  flat.match = 1;
  flat.mismatch = 1;
  flat.gap_open = 1;
  flat.gap_extend = 1;
  ScoringScheme steep;
  steep.match = 5;
  steep.mismatch = 4;
  steep.gap_open = 10;
  steep.gap_extend = 1;
  std::vector<CrossCase> cases;
  std::uint64_t seed = 7000;
  for (const auto& scheme : {bwa, longread, flat, steep}) {
    for (std::size_t len : {12u, 80u, 300u}) {
      for (double n_prob : {0.0, 0.1}) {
        cases.push_back(CrossCase{seed++, len, n_prob, scheme});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SchemesAndShapes, CrossImpl, ::testing::ValuesIn(cross_cases()));

}  // namespace
}  // namespace saloba::align
