// Cross-implementation consistency: four independent CPU implementations
// (row-major scalar, anti-diagonal wavefront, striped/Farrar, banded at full
// width) must agree on score for arbitrary inputs and scoring schemes.
// Any single-implementation bug breaks at least one pairing. The banded
// variants additionally pit smith_waterman_banded's sliding-window sweep
// against a naive masked full-table DP at band ∈ {1, 8, 32, huge}.
#include <gtest/gtest.h>

#include <limits>

#include "../support/test_support.hpp"
#include "align/antidiag_cpu.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "align/sw_striped.hpp"

namespace saloba::align {
namespace {

/// Independent banded oracle: the full O(n·m) table with out-of-band cells
/// masked to the shared boundary semantics (H = 0, E/F = -inf). Deliberately
/// the dumbest possible implementation — no window arithmetic to share a bug
/// with the production band sweep.
AlignmentResult masked_reference(std::span<const seq::BaseCode> ref,
                                 std::span<const seq::BaseCode> query,
                                 const ScoringScheme& s, std::size_t band) {
  constexpr Score kNegInf = std::numeric_limits<Score>::min() / 4;
  const std::size_t n = ref.size();
  const std::size_t m = query.size();
  AlignmentResult best;
  if (n == 0 || m == 0) return best;
  std::vector<std::vector<Score>> h(n + 1, std::vector<Score>(m + 1, 0));
  std::vector<std::vector<Score>> e(n + 1, std::vector<Score>(m + 1, kNegInf));
  std::vector<std::vector<Score>> f(n + 1, std::vector<Score>(m + 1, kNegInf));
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const auto di = static_cast<std::int64_t>(i) - 1;
      const auto dj = static_cast<std::int64_t>(j) - 1;
      if (di - dj > static_cast<std::int64_t>(band) ||
          dj - di > static_cast<std::int64_t>(band)) {
        continue;  // out of band: keep the H = 0 / E,F = -inf initial state
      }
      e[i][j] = std::max(h[i][j - 1] - s.alpha(), e[i][j - 1] - s.beta());
      f[i][j] = std::max(h[i - 1][j] - s.alpha(), f[i - 1][j] - s.beta());
      h[i][j] = std::max({Score{0}, h[i - 1][j - 1] + s.substitution(ref[di], query[dj]),
                          e[i][j], f[i][j]});
      if (h[i][j] > best.score) {
        best = AlignmentResult{h[i][j], static_cast<std::int32_t>(di),
                               static_cast<std::int32_t>(dj)};
      }
    }
  }
  return best;
}

struct CrossCase {
  std::uint64_t seed;
  std::size_t max_len;
  double n_prob;
  ScoringScheme scheme;
};

class CrossImpl : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CrossImpl, AllFourAgree) {
  auto param = GetParam();
  util::Xoshiro256 rng(param.seed);
  for (int trial = 0; trial < 12; ++trial) {
    std::size_t n = 1 + rng.below(param.max_len);
    std::size_t m = 1 + rng.below(param.max_len);
    auto ref = saloba::testing::random_seq_with_n(rng, n, param.n_prob);
    auto query = rng.bernoulli(0.5)
                     ? saloba::testing::random_seq_with_n(rng, m, param.n_prob)
                     : [&] {
                         auto q = ref;
                         q.resize(std::min(m, q.size()));
                         return saloba::testing::mutate(rng, q, 0.15);
                       }();
    if (query.empty()) continue;

    auto scalar = smith_waterman(ref, query, param.scheme);
    auto wavefront = smith_waterman_antidiag(ref, query, param.scheme);
    auto striped = smith_waterman_striped(ref, query, param.scheme);
    auto banded =
        smith_waterman_banded(ref, query, param.scheme, std::max(ref.size(), query.size()));

    EXPECT_EQ(scalar, wavefront) << "n=" << n << " m=" << m;
    EXPECT_EQ(scalar.score, striped) << "n=" << n << " m=" << m;
    EXPECT_EQ(scalar, banded.result) << "n=" << n << " m=" << m;
  }
}

TEST_P(CrossImpl, BandedAgreesWithMaskedReferenceAcrossBands) {
  // Banded variants of the matrix: every case re-checked at band 1 (hugging
  // the diagonal), 8 (one block), 32, and huge (covers every table, where
  // the masked oracle degenerates to plain Smith-Waterman).
  auto param = GetParam();
  util::Xoshiro256 rng(param.seed + 500000);
  for (int trial = 0; trial < 4; ++trial) {
    std::size_t n = 1 + rng.below(param.max_len);
    std::size_t m = 1 + rng.below(param.max_len);
    auto ref = saloba::testing::random_seq_with_n(rng, n, param.n_prob);
    auto query = rng.bernoulli(0.5)
                     ? saloba::testing::random_seq_with_n(rng, m, param.n_prob)
                     : [&] {
                         auto q = ref;
                         q.resize(std::min(m, q.size()));
                         return saloba::testing::mutate(rng, q, 0.15);
                       }();
    if (query.empty()) continue;

    for (std::size_t band : {std::size_t{1}, std::size_t{8}, std::size_t{32},
                             std::size_t{1} << 20}) {
      auto banded = smith_waterman_banded(ref, query, param.scheme, band);
      auto masked = masked_reference(ref, query, param.scheme, band);
      EXPECT_EQ(banded.result, masked)
          << "n=" << n << " m=" << m << " band=" << band;
      if (band >= std::max(n, m)) {
        EXPECT_EQ(banded.result, smith_waterman(ref, query, param.scheme))
            << "n=" << n << " m=" << m;
      }
    }
  }
}

std::vector<CrossCase> cross_cases() {
  ScoringScheme bwa;                       // 1/4/6/1
  ScoringScheme longread = long_read_scheme();  // 2/5/4/2
  ScoringScheme flat;
  flat.match = 1;
  flat.mismatch = 1;
  flat.gap_open = 1;
  flat.gap_extend = 1;
  ScoringScheme steep;
  steep.match = 5;
  steep.mismatch = 4;
  steep.gap_open = 10;
  steep.gap_extend = 1;
  std::vector<CrossCase> cases;
  std::uint64_t seed = 7000;
  for (const auto& scheme : {bwa, longread, flat, steep}) {
    for (std::size_t len : {12u, 80u, 300u}) {
      for (double n_prob : {0.0, 0.1}) {
        cases.push_back(CrossCase{seed++, len, n_prob, scheme});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(SchemesAndShapes, CrossImpl, ::testing::ValuesIn(cross_cases()));

}  // namespace
}  // namespace saloba::align
