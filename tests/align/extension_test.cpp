#include "align/extension.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {
namespace {

using seq::encode_string;

TEST(Extension, PerfectExtensionConsumesEverything) {
  ScoringScheme s;
  auto seq_ = encode_string("GATTACAGATTACA");
  ExtensionParams p;
  p.h0 = 10;
  auto r = extend(seq_, seq_, s, p);
  EXPECT_EQ(r.score, 10 + 14 * s.match);
  EXPECT_EQ(r.query_used, 14);
  EXPECT_EQ(r.ref_used, 14);
  EXPECT_TRUE(r.reached_query_end);
  EXPECT_FALSE(r.zdropped);
}

TEST(Extension, StoppingAtSeedIsAlwaysAllowed) {
  ScoringScheme s;
  auto ref = encode_string("AAAA");
  auto query = encode_string("CCCC");  // pure mismatches
  ExtensionParams p;
  p.h0 = 5;
  auto r = extend(ref, query, s, p);
  EXPECT_EQ(r.score, 5);
  EXPECT_EQ(r.query_used, 0);
}

TEST(Extension, EmptyInputsKeepSeedScore) {
  ScoringScheme s;
  ExtensionParams p;
  p.h0 = 3;
  auto r = extend({}, encode_string("ACGT"), s, p);
  EXPECT_EQ(r.score, 3);
  r = extend(encode_string("ACGT"), {}, s, p);
  EXPECT_EQ(r.score, 3);
  EXPECT_TRUE(r.reached_query_end);
}

TEST(Extension, ZdropTerminatesHopelessExtension) {
  ScoringScheme s;
  // Good prefix then garbage: zdrop should cut before scanning all rows.
  std::string good(50, 'A');
  util::Xoshiro256 rng(31);
  auto ref = encode_string(good + std::string(2000, 'C'));
  auto query = encode_string(good + std::string(2000, 'G'));
  ExtensionParams p;
  p.h0 = 0;
  p.zdrop = 50;
  auto r = extend(ref, query, s, p);
  EXPECT_TRUE(r.zdropped);
  EXPECT_EQ(r.score, 50 * s.match);
  EXPECT_LT(r.cells_computed, ref.size() * query.size() / 4);
}

TEST(Extension, DisabledZdropScansEverything) {
  ScoringScheme s;
  auto ref = encode_string(std::string(100, 'A') + std::string(100, 'C'));
  auto query = encode_string(std::string(100, 'A') + std::string(100, 'G'));
  ExtensionParams p;
  p.zdrop = 0;
  auto r = extend(ref, query, s, p);
  EXPECT_FALSE(r.zdropped);
  EXPECT_EQ(r.cells_computed, ref.size() * query.size());
}

TEST(Extension, GapBridgingMatchesAffineCosts) {
  ScoringScheme s;
  const std::string left = "ACGTTGCAACGTTGCAACGTTGCA";
  const std::string right = "GGATCCTTGGATCCTTGGATCCTT";
  auto ref = encode_string(left + "CC" + right);
  auto query = encode_string(left + right);
  ExtensionParams p;
  auto r = extend(ref, query, s, p);
  EXPECT_EQ(r.score, 48 * s.match - (s.alpha() + s.beta()));
  EXPECT_TRUE(r.reached_query_end);
}

TEST(Extension, ToQueryEndTracksGlocalScore) {
  ScoringScheme s;
  // Query end reachable only through a trailing mismatch.
  auto ref = encode_string("ACGTACGTA");
  auto query = encode_string("ACGTACGTC");
  ExtensionParams p;
  auto r = extend(ref, query, s, p);
  EXPECT_EQ(r.score, 8 * s.match);  // best local stop before the mismatch
  EXPECT_TRUE(r.reached_query_end);
  EXPECT_EQ(r.to_query_end, 8 * s.match - s.mismatch);
}

TEST(Extension, AnchoredScoreNeverExceedsSeedPlusLocal) {
  // Sanity bound: extension score <= h0 + unanchored local SW score.
  util::Xoshiro256 rng(32);
  ScoringScheme s;
  for (int i = 0; i < 20; ++i) {
    auto ref = saloba::testing::random_seq(rng, 60 + rng.below(100));
    auto query = saloba::testing::random_seq(rng, 60 + rng.below(100));
    ExtensionParams p;
    p.h0 = static_cast<Score>(rng.below(30));
    p.zdrop = 0;
    auto r = extend(ref, query, s, p);
    auto local = smith_waterman(ref, query, s);
    EXPECT_LE(r.score, p.h0 + local.score);
    EXPECT_GE(r.score, p.h0);
  }
}

TEST(Extension, MatchesAnchoredPrefixAlignment) {
  // For an exact prefix of the reference, extension must choose it fully.
  util::Xoshiro256 rng(33);
  ScoringScheme s;
  auto ref = saloba::testing::random_seq(rng, 120);
  std::vector<seq::BaseCode> query(ref.begin(), ref.begin() + 80);
  ExtensionParams p;
  auto r = extend(ref, query, s, p);
  EXPECT_EQ(r.score, 80 * s.match);
  EXPECT_EQ(r.query_used, 80);
  EXPECT_EQ(r.ref_used, 80);
}

}  // namespace
}  // namespace saloba::align
