#include "align/scoring.hpp"

#include <gtest/gtest.h>

namespace saloba::align {
namespace {

TEST(Scoring, DefaultsMatchBwaMemConvention) {
  ScoringScheme s = default_scheme();
  EXPECT_EQ(s.match, 1);
  EXPECT_EQ(s.mismatch, 4);
  EXPECT_EQ(s.gap_open, 6);
  EXPECT_EQ(s.gap_extend, 1);
  EXPECT_EQ(s.alpha(), 7);  // paper's alpha = open + first extension
  EXPECT_EQ(s.beta(), 1);
}

TEST(Scoring, SubstitutionMatchMismatch) {
  ScoringScheme s;
  EXPECT_EQ(s.substitution(seq::kBaseA, seq::kBaseA), s.match);
  EXPECT_EQ(s.substitution(seq::kBaseA, seq::kBaseC), -s.mismatch);
}

TEST(Scoring, NNeverMatches) {
  ScoringScheme s;
  EXPECT_EQ(s.substitution(seq::kBaseN, seq::kBaseN), -s.mismatch);
  EXPECT_EQ(s.substitution(seq::kBaseN, seq::kBaseA), -s.mismatch);
  EXPECT_EQ(s.substitution(seq::kBaseG, seq::kBaseN), -s.mismatch);
}

TEST(Scoring, ValidityChecks) {
  ScoringScheme s;
  EXPECT_TRUE(s.valid());
  s.match = 0;
  EXPECT_FALSE(s.valid());
  s = ScoringScheme{};
  s.gap_extend = 0;
  EXPECT_FALSE(s.valid());
}

TEST(Scoring, LongReadSchemeIsValidAndGapTolerant) {
  ScoringScheme s = long_read_scheme();
  EXPECT_TRUE(s.valid());
  EXPECT_LT(s.gap_open, default_scheme().gap_open);
}

}  // namespace
}  // namespace saloba::align
