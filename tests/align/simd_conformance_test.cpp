// Differential conformance suite for the inter-sequence SIMD engine
// (align::simd::align_batch): every cohort shape, band, z-drop setting, and
// rescue tier must be bit-identical — scores, endpoints, cell counts — to
// the scalar oracles (align::align_batch / smith_waterman_banded /
// smith_waterman). `ctest -L simd`.
#include "align/simd_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../support/test_support.hpp"
#include "align/batch.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {
namespace {

/// Oracle results + oracle cell count for a batch (the scalar CPU path the
/// whole stack is locked to).
struct Oracle {
  std::vector<AlignmentResult> results;
  std::size_t cells = 0;
};

Oracle oracle_of(const seq::PairBatch& batch, const ScoringScheme& scoring, Score zdrop) {
  Oracle o;
  BatchTiming timing;
  o.results = align_batch(batch, scoring, &timing, /*threads=*/1, zdrop);
  o.cells = timing.cells;
  return o;
}

void expect_identical(const seq::PairBatch& batch, const ScoringScheme& scoring,
                      Score zdrop, const char* what) {
  const Oracle want = oracle_of(batch, scoring, zdrop);
  simd::EngineStats stats;
  const auto got = simd::align_batch(batch, scoring, &stats, /*threads=*/1, zdrop);
  ASSERT_EQ(got.size(), want.results.size()) << what;
  for (std::size_t p = 0; p < got.size(); ++p) {
    EXPECT_EQ(got[p].score, want.results[p].score) << what << " pair " << p;
    EXPECT_EQ(got[p].ref_end, want.results[p].ref_end) << what << " pair " << p;
    EXPECT_EQ(got[p].query_end, want.results[p].query_end) << what << " pair " << p;
  }
  EXPECT_EQ(stats.cells, want.cells) << what << ": cell accounting diverged";
  EXPECT_EQ(stats.pairs, batch.size()) << what;
  std::size_t empties = 0;
  for (std::size_t p = 0; p < batch.size(); ++p) {
    if (batch.refs[p].empty() || batch.queries[p].empty()) ++empties;
  }
  EXPECT_EQ(stats.pairs_8bit + stats.rescued_16bit + stats.rescued_32bit,
            batch.size() - empties)
      << what << ": ladder tiers must partition the non-empty pairs";
}

TEST(SimdConformance, CohortWidthsUnbanded) {
  ScoringScheme s;
  for (std::size_t pairs : {1u, 5u, 16u, 32u, 33u, 70u}) {
    auto batch = saloba::testing::related_batch(900 + pairs, pairs, 90, 120);
    expect_identical(batch, s, /*zdrop=*/0, "unbanded cohort");
  }
}

TEST(SimdConformance, ImbalancedLengthsWithN) {
  ScoringScheme s;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    util::Xoshiro256 rng(seed);
    seq::PairBatch batch;
    for (int p = 0; p < 48; ++p) {
      batch.add(saloba::testing::random_seq_with_n(rng, rng.below(180), 0.1),
                saloba::testing::random_seq_with_n(rng, rng.below(220), 0.1));
    }
    expect_identical(batch, s, /*zdrop=*/0, "imbalanced+N");
  }
}

TEST(SimdConformance, BandSweep) {
  ScoringScheme s;
  for (std::size_t band : {1u, 8u, 100000u}) {
    util::Xoshiro256 rng(40 + band);
    seq::PairBatch batch;
    for (int p = 0; p < 40; ++p) {
      auto ref = saloba::testing::random_seq(rng, 60 + rng.below(120));
      auto query = saloba::testing::mutate(
          rng,
          std::vector<seq::BaseCode>(ref.begin(),
                                     ref.begin() + static_cast<std::ptrdiff_t>(
                                                       std::min<std::size_t>(
                                                           ref.size(), 50 + rng.below(60)))),
          0.12);
      batch.add(std::move(query), std::move(ref), band);
    }
    expect_identical(batch, s, /*zdrop=*/0, "band sweep");
  }
}

TEST(SimdConformance, MixedPerPairBands) {
  ScoringScheme s;
  util::Xoshiro256 rng(77);
  seq::PairBatch batch;
  const std::size_t bands[] = {0, 1, 3, 8, 64, 100000};
  for (int p = 0; p < 60; ++p) {
    auto ref = saloba::testing::random_seq(rng, 40 + rng.below(160));
    auto query = saloba::testing::random_seq(rng, 40 + rng.below(160));
    batch.add(std::move(query), std::move(ref), bands[static_cast<std::size_t>(p) % 6]);
  }
  expect_identical(batch, s, /*zdrop=*/0, "mixed per-pair bands");
}

TEST(SimdConformance, ZdropOnAndOff) {
  ScoringScheme s;
  for (Score zdrop : {Score{0}, Score{5}, Score{25}, Score{400}}) {
    // Related heads + unrelated tails: the shape that actually triggers
    // z-drop mid-sweep.
    util::Xoshiro256 rng(500 + static_cast<std::uint64_t>(zdrop));
    seq::PairBatch batch;
    for (int p = 0; p < 40; ++p) {
      auto head = saloba::testing::random_seq(rng, 70);
      auto ref = head;
      auto tail = saloba::testing::random_seq(rng, 90);
      ref.insert(ref.end(), tail.begin(), tail.end());
      auto query = saloba::testing::mutate(rng, head, 0.05);
      auto qtail = saloba::testing::random_seq(rng, 90);
      query.insert(query.end(), qtail.begin(), qtail.end());
      batch.add(std::move(query), std::move(ref), p % 2 == 0 ? 0 : 12);
    }
    expect_identical(batch, s, zdrop, "zdrop sweep");
  }
}

TEST(SimdConformance, RescueLadder8To16) {
  // High-identity pairs long enough that scores blow through 255: every
  // pair must be evicted from the 8-bit pass and settle identically in the
  // 16-bit pass.
  ScoringScheme s;
  auto batch = saloba::testing::related_batch(600, 24, 500, 520);
  const Oracle want = oracle_of(batch, s, 0);
  simd::EngineStats stats;
  const auto got = simd::align_batch(batch, s, &stats, 1, 0);
  for (std::size_t p = 0; p < got.size(); ++p) {
    ASSERT_EQ(got[p], want.results[p]) << "pair " << p;
    ASSERT_GT(got[p].score, 255) << "test needs saturating scores to mean anything";
  }
  EXPECT_EQ(stats.rescued_16bit, batch.size());
  EXPECT_EQ(stats.pairs_8bit, 0u);
  EXPECT_EQ(stats.cells, want.cells);
}

TEST(SimdConformance, RescueLadderTo32Bit) {
  // A huge match bonus pushes scores past 65535 on short pairs: both
  // saturating tiers overflow and the int32 scalar path must settle them.
  ScoringScheme s;
  s.match = 1000;
  auto batch = saloba::testing::related_batch(601, 12, 90, 110);
  const Oracle want = oracle_of(batch, s, 0);
  simd::EngineStats stats;
  const auto got = simd::align_batch(batch, s, &stats, 1, 0);
  for (std::size_t p = 0; p < got.size(); ++p) {
    ASSERT_EQ(got[p], want.results[p]) << "pair " << p;
    ASSERT_GT(got[p].score, 65535);
  }
  EXPECT_EQ(stats.rescued_32bit, batch.size());
  EXPECT_EQ(stats.cells, want.cells);
}

TEST(SimdConformance, RescueLadderMixedTiers) {
  // One batch spanning all three tiers (plus banded/z-drop flavors).
  ScoringScheme s;
  util::Xoshiro256 rng(602);
  seq::PairBatch batch;
  for (int p = 0; p < 36; ++p) {
    const std::size_t len = p % 3 == 0 ? 60 : (p % 3 == 1 ? 400 : 150);
    auto ref = saloba::testing::random_seq(rng, len + 20);
    std::vector<seq::BaseCode> query(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(len));
    query = saloba::testing::mutate(rng, query, p % 3 == 2 ? 0.5 : 0.02);
    batch.add(std::move(query), std::move(ref), p % 4 == 0 ? 16 : 0);
  }
  expect_identical(batch, s, /*zdrop=*/0, "mixed tiers");
  expect_identical(batch, s, /*zdrop=*/30, "mixed tiers + zdrop");
}

TEST(SimdConformance, OversizePairsRouteToScalar) {
  ScoringScheme s;
  util::Xoshiro256 rng(603);
  seq::PairBatch batch;
  // One reference beyond the 16-bit index guard, plus normal companions.
  batch.add(saloba::testing::random_seq(rng, 80), saloba::testing::random_seq(rng, 33000),
            /*band=*/40);
  for (int p = 0; p < 7; ++p) {
    batch.add(saloba::testing::random_seq(rng, 100), saloba::testing::random_seq(rng, 120));
  }
  const Oracle want = oracle_of(batch, s, 0);
  simd::EngineStats stats;
  const auto got = simd::align_batch(batch, s, &stats, 1, 0);
  for (std::size_t p = 0; p < got.size(); ++p) {
    EXPECT_EQ(got[p], want.results[p]) << "pair " << p;
  }
  EXPECT_GE(stats.rescued_32bit, 1u);
  EXPECT_EQ(stats.cells, want.cells);
}

TEST(SimdConformance, EmptyAndDegeneratePairs) {
  ScoringScheme s;
  seq::PairBatch batch;
  batch.add({}, seq::encode_string("ACGT"));
  batch.add(seq::encode_string("ACGT"), {});
  batch.add({}, {});
  batch.add(seq::encode_string("A"), seq::encode_string("A"));
  batch.add(seq::encode_string("T"), seq::encode_string("A"));
  expect_identical(batch, s, /*zdrop=*/0, "degenerate");
  expect_identical(batch, s, /*zdrop=*/3, "degenerate + zdrop");
}

TEST(SimdConformance, NonDefaultScoringSchemes) {
  ScoringScheme tweaked;
  tweaked.match = 3;
  tweaked.mismatch = 2;
  tweaked.gap_open = 4;
  tweaked.gap_extend = 2;
  auto batch = saloba::testing::imbalanced_batch(604, 50, 1, 200);
  expect_identical(batch, tweaked, /*zdrop=*/0, "tweaked scheme");
  expect_identical(batch, tweaked, /*zdrop=*/8, "tweaked scheme + zdrop");
}

TEST(SimdConformance, SingleCellsAgainstReference) {
  // Tiny direct spot-checks against the per-pair scalar reference.
  ScoringScheme s;
  util::Xoshiro256 rng(605);
  seq::PairBatch batch;
  for (int p = 0; p < 64; ++p) {
    batch.add(saloba::testing::random_seq(rng, 1 + rng.below(4)),
              saloba::testing::random_seq(rng, 1 + rng.below(4)));
  }
  const auto got = simd::align_batch(batch, s, nullptr, 1, 0);
  for (std::size_t p = 0; p < batch.size(); ++p) {
    EXPECT_EQ(got[p], smith_waterman(batch.refs[p], batch.queries[p], s)) << "pair " << p;
  }
}

TEST(SimdConformance, ThreadedMatchesSingleThread) {
  ScoringScheme s;
  auto batch = saloba::testing::imbalanced_batch(606, 120, 10, 250);
  const auto single = simd::align_batch(batch, s, nullptr, 1, 0);
  const auto teamed = simd::align_batch(batch, s, nullptr, 0, 0);
  EXPECT_EQ(single, teamed);
}

TEST(SimdConformance, IsaReportingIsConsistent) {
  simd::EngineStats stats;
  auto batch = saloba::testing::related_batch(607, 8, 50, 60);
  simd::align_batch(batch, ScoringScheme{}, &stats, 1, 0);
  const bool expect_avx2 = simd::compiled_with_avx2() && simd::cpu_supports_avx2();
  EXPECT_EQ(stats.avx2, expect_avx2);
  EXPECT_STREQ(simd::isa_name(), expect_avx2 ? "avx2" : "generic");
}

}  // namespace
}  // namespace saloba::align
