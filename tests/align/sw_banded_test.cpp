#include "align/sw_banded.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {
namespace {

TEST(BandedSW, FullWidthBandEqualsReference) {
  util::Xoshiro256 rng(41);
  ScoringScheme s;
  for (int i = 0; i < 25; ++i) {
    auto ref = saloba::testing::random_seq(rng, 10 + rng.below(90));
    auto query = saloba::testing::random_seq(rng, 10 + rng.below(90));
    auto full = smith_waterman(ref, query, s);
    auto banded = smith_waterman_banded(ref, query, s, std::max(ref.size(), query.size()));
    EXPECT_EQ(banded.result, full);
  }
}

TEST(BandedSW, NarrowBandFindsNearDiagonalAlignment) {
  ScoringScheme s;
  auto ref = seq::encode_string("ACGTACGTACGTACGT");
  auto query = ref;  // identical: alignment sits exactly on the diagonal
  auto banded = smith_waterman_banded(ref, query, s, 1);
  EXPECT_EQ(banded.result.score, 16);
}

TEST(BandedSW, BandLimitsCellsComputed) {
  ScoringScheme s;
  util::Xoshiro256 rng(42);
  auto ref = saloba::testing::random_seq(rng, 200);
  auto query = saloba::testing::random_seq(rng, 200);
  auto banded = smith_waterman_banded(ref, query, s, 10);
  EXPECT_LE(banded.cells_computed, 200u * 21u);
  auto full = smith_waterman_banded(ref, query, s, 200);
  EXPECT_EQ(full.cells_computed, 200u * 200u);
}

TEST(BandedSW, ScoreMonotoneInBandWidth) {
  util::Xoshiro256 rng(43);
  ScoringScheme s;
  for (int i = 0; i < 10; ++i) {
    auto ref = saloba::testing::random_seq(rng, 120);
    auto query = saloba::testing::mutate(rng, ref, 0.1);
    Score prev = 0;
    for (std::size_t band : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      auto banded = smith_waterman_banded(ref, query, s, band);
      EXPECT_GE(banded.result.score, prev);
      prev = banded.result.score;
    }
  }
}

TEST(BandedSW, BandedNeverExceedsFull) {
  util::Xoshiro256 rng(44);
  ScoringScheme s;
  for (int i = 0; i < 15; ++i) {
    auto ref = saloba::testing::random_seq(rng, 30 + rng.below(100));
    auto query = saloba::testing::random_seq(rng, 30 + rng.below(100));
    auto full = smith_waterman(ref, query, s);
    for (std::size_t band : {2u, 8u, 24u}) {
      EXPECT_LE(smith_waterman_banded(ref, query, s, band).result.score, full.score);
    }
  }
}

TEST(BandedSW, EmptyInputs) {
  ScoringScheme s;
  std::vector<seq::BaseCode> empty;
  auto r = smith_waterman_banded(empty, seq::encode_string("ACGT"), s, 4);
  EXPECT_EQ(r.result.score, 0);
  EXPECT_EQ(r.cells_computed, 0u);
}

TEST(BandedSWDeath, RejectsZeroBand) {
  ScoringScheme s;
  auto codes = seq::encode_string("ACGT");
  EXPECT_DEATH(smith_waterman_banded(codes, codes, s, 0), "band");
}

}  // namespace
}  // namespace saloba::align
