#include "align/sw_reference.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {
namespace {

using seq::encode_string;

TEST(SmithWaterman, EmptyInputsScoreZero) {
  ScoringScheme s;
  std::vector<seq::BaseCode> empty;
  auto r = smith_waterman(empty, encode_string("ACGT"), s);
  EXPECT_EQ(r.score, 0);
  EXPECT_EQ(r.ref_end, -1);
  r = smith_waterman(encode_string("ACGT"), empty, s);
  EXPECT_EQ(r.score, 0);
}

TEST(SmithWaterman, SingleBaseMatch) {
  ScoringScheme s;
  auto r = smith_waterman(encode_string("A"), encode_string("A"), s);
  EXPECT_EQ(r.score, 1);
  EXPECT_EQ(r.ref_end, 0);
  EXPECT_EQ(r.query_end, 0);
}

TEST(SmithWaterman, SingleBaseMismatchIsEmptyAlignment) {
  ScoringScheme s;
  auto r = smith_waterman(encode_string("A"), encode_string("C"), s);
  EXPECT_EQ(r.score, 0);
}

TEST(SmithWaterman, IdenticalStringsScoreFullMatch) {
  ScoringScheme s;
  auto codes = encode_string("GATTACAGATTACA");
  auto r = smith_waterman(codes, codes, s);
  EXPECT_EQ(r.score, static_cast<Score>(codes.size()) * s.match);
  EXPECT_EQ(r.ref_end, static_cast<std::int32_t>(codes.size()) - 1);
}

TEST(SmithWaterman, SubstringFindsItself) {
  ScoringScheme s;
  auto ref = encode_string("TTTTGATTACATTTT");
  auto query = encode_string("GATTACA");
  auto r = smith_waterman(ref, query, s);
  EXPECT_EQ(r.score, 7);
  EXPECT_EQ(r.ref_end, 10);  // end of GATTACA within ref
  EXPECT_EQ(r.query_end, 6);
}

TEST(SmithWaterman, HandComputedMismatchCase) {
  // ACGT vs AGGT: best local alignment is GT (2) or A..? A + mismatch C/G
  // (-4) would go negative; with match 1, best = "GT" = 2.
  ScoringScheme s;
  auto r = smith_waterman(encode_string("ACGT"), encode_string("AGGT"), s);
  EXPECT_EQ(r.score, 2);
}

TEST(SmithWaterman, AffineGapPreferredOverTwoOpens) {
  // Long matching flanks around a 3-base deletion: bridging the gap (48
  // matches − alpha − 2·beta) beats aligning either flank alone (24).
  ScoringScheme s;
  const std::string left = "ACGTTGCAACGTTGCAACGTTGCA";
  const std::string right = "GGATCCTTGGATCCTTGGATCCTT";
  auto ref = encode_string(left + "CCC" + right);
  auto query = encode_string(left + right);  // CCC deleted
  auto r = smith_waterman(ref, query, s);
  Score expected = 48 * s.match - (s.alpha() + 2 * s.beta());
  EXPECT_EQ(r.score, expected);
}

TEST(SmithWaterman, GapInQueryDirection) {
  ScoringScheme s;
  const std::string left = "ACGTTGCAACGTTGCAACGTTGCA";
  const std::string right = "GGATCCTTGGATCCTTGGATCCTT";
  auto ref = encode_string(left + right);
  auto query = encode_string(left + "TT" + right);  // TT inserted
  auto r = smith_waterman(ref, query, s);
  Score expected = 48 * s.match - (s.alpha() + s.beta());
  EXPECT_EQ(r.score, expected);
}

TEST(SmithWaterman, TieBreakPicksSmallestRefEnd) {
  // Two equal-scoring occurrences; the first (smaller i) must be reported.
  ScoringScheme s;
  auto ref = encode_string("ACGTTTTTACGT");
  auto query = encode_string("ACGT");
  auto r = smith_waterman(ref, query, s);
  EXPECT_EQ(r.score, 4);
  EXPECT_EQ(r.ref_end, 3);
}

TEST(SmithWaterman, ScoreSymmetricUnderSwap) {
  util::Xoshiro256 rng(21);
  for (int i = 0; i < 30; ++i) {
    auto a = saloba::testing::random_seq(rng, 20 + rng.below(60));
    auto b = saloba::testing::random_seq(rng, 20 + rng.below(60));
    ScoringScheme s;
    EXPECT_EQ(smith_waterman(a, b, s).score, smith_waterman(b, a, s).score);
  }
}

TEST(SmithWaterman, AppendingNeverDecreasesScore) {
  util::Xoshiro256 rng(22);
  ScoringScheme s;
  auto query = saloba::testing::random_seq(rng, 40);
  std::vector<seq::BaseCode> ref;
  Score prev = 0;
  for (int i = 0; i < 200; ++i) {
    ref.push_back(static_cast<seq::BaseCode>(rng.below(4)));
    Score cur = smith_waterman(ref, query, s).score;
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(SmithWaterman, MatrixMaxAgreesWithStreaming) {
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 25; ++i) {
    auto ref = saloba::testing::random_seq(rng, 10 + rng.below(80));
    auto query = saloba::testing::random_seq(rng, 10 + rng.below(80));
    ScoringScheme s;
    auto r = smith_waterman(ref, query, s);
    auto h = smith_waterman_matrix(ref, query, s);
    Score max = 0;
    for (Score v : h) max = std::max(max, v);
    EXPECT_EQ(r.score, max);
  }
}

TEST(SmithWaterman, NInRefNeverMatches) {
  ScoringScheme s;
  auto r = smith_waterman(encode_string("NNNN"), encode_string("NNNN"), s);
  EXPECT_EQ(r.score, 0);
}

TEST(NeedlemanWunsch, IdenticalStrings) {
  ScoringScheme s;
  auto codes = encode_string("ACGTACGT");
  EXPECT_EQ(needleman_wunsch(codes, codes, s), 8 * s.match);
}

TEST(NeedlemanWunsch, EmptyVsNonEmptyPaysGap) {
  ScoringScheme s;
  std::vector<seq::BaseCode> empty;
  auto codes = encode_string("ACG");
  EXPECT_EQ(needleman_wunsch(codes, empty, s), -(s.alpha() + 2 * s.beta()));
  EXPECT_EQ(needleman_wunsch(empty, codes, s), -(s.alpha() + 2 * s.beta()));
}

TEST(NeedlemanWunsch, GlobalNeverExceedsLocal) {
  util::Xoshiro256 rng(24);
  ScoringScheme s;
  for (int i = 0; i < 30; ++i) {
    auto a = saloba::testing::random_seq(rng, 5 + rng.below(50));
    auto b = saloba::testing::random_seq(rng, 5 + rng.below(50));
    EXPECT_LE(needleman_wunsch(a, b, s), smith_waterman(a, b, s).score);
  }
}

TEST(NeedlemanWunsch, SingleMismatchGlobal) {
  ScoringScheme s;
  EXPECT_EQ(needleman_wunsch(encode_string("A"), encode_string("C"), s), -s.mismatch);
}

// Parameterized sweep across scoring schemes: reference invariants hold for
// non-default parameters too.
struct SchemeCase {
  Score match, mismatch, open, extend;
};

class SchemeSweep : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeSweep, LocalScoreBoundsAndSymmetry) {
  auto param = GetParam();
  ScoringScheme s;
  s.match = param.match;
  s.mismatch = param.mismatch;
  s.gap_open = param.open;
  s.gap_extend = param.extend;
  ASSERT_TRUE(s.valid());

  util::Xoshiro256 rng(31);
  for (int i = 0; i < 10; ++i) {
    auto a = saloba::testing::random_seq(rng, 16 + rng.below(48));
    auto b = saloba::testing::random_seq(rng, 16 + rng.below(48));
    auto r = smith_waterman(a, b, s);
    EXPECT_GE(r.score, 0);
    EXPECT_LE(r.score,
              static_cast<Score>(std::min(a.size(), b.size())) * s.match);
    EXPECT_EQ(r.score, smith_waterman(b, a, s).score);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeSweep,
                         ::testing::Values(SchemeCase{1, 4, 6, 1}, SchemeCase{2, 5, 4, 2},
                                           SchemeCase{3, 2, 5, 2}, SchemeCase{1, 1, 1, 1},
                                           SchemeCase{5, 4, 10, 1}));

}  // namespace
}  // namespace saloba::align
