#include "align/sw_striped.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {
namespace {

TEST(StripedSW, KnownCases) {
  ScoringScheme s;
  EXPECT_EQ(smith_waterman_striped(seq::encode_string("TTTTGATTACATTTT"),
                                   seq::encode_string("GATTACA"), s),
            7);
  EXPECT_EQ(smith_waterman_striped(seq::encode_string("AAAA"), seq::encode_string("CCCC"), s),
            0);
  EXPECT_EQ(smith_waterman_striped({}, seq::encode_string("ACGT"), s), 0);
}

TEST(StripedSW, GapCases) {
  ScoringScheme s;
  const std::string left = "ACGTTGCAACGTTGCAACGTTGCA";
  const std::string right = "GGATCCTTGGATCCTTGGATCCTT";
  auto ref = seq::encode_string(left + "CCC" + right);
  auto query = seq::encode_string(left + right);
  EXPECT_EQ(smith_waterman_striped(ref, query, s),
            smith_waterman(ref, query, s).score);
}

struct StripedCase {
  std::size_t n, m;
  double mutate;
};

class StripedSweep : public ::testing::TestWithParam<StripedCase> {};

TEST_P(StripedSweep, MatchesScalarReference) {
  auto param = GetParam();
  ScoringScheme s;
  util::Xoshiro256 rng(300 + param.n * 7 + param.m);
  for (int trial = 0; trial < 10; ++trial) {
    auto ref = saloba::testing::random_seq(rng, param.n);
    std::vector<seq::BaseCode> query;
    if (param.m <= param.n && param.mutate < 1.0) {
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(param.m));
      query = saloba::testing::mutate(rng, query, param.mutate);
    } else {
      query = saloba::testing::random_seq(rng, param.m);
    }
    EXPECT_EQ(smith_waterman_striped(ref, query, s), smith_waterman(ref, query, s).score)
        << "n=" << param.n << " m=" << param.m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StripedSweep,
    ::testing::Values(StripedCase{1, 1, 1.0}, StripedCase{5, 3, 1.0},
                      StripedCase{16, 8, 0.1}, StripedCase{40, 7, 1.0},
                      StripedCase{7, 40, 1.0}, StripedCase{64, 64, 0.1},
                      StripedCase{100, 33, 0.2}, StripedCase{128, 128, 0.05},
                      StripedCase{200, 150, 0.3}, StripedCase{257, 255, 0.1}));

TEST(StripedSW, GapHeavyInputsStressLazyF) {
  // Long runs of one base force deep F propagation across stripe wraps.
  ScoringScheme s;
  util::Xoshiro256 rng(301);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<seq::BaseCode> ref, query;
    for (int seg = 0; seg < 6; ++seg) {
      auto base = static_cast<seq::BaseCode>(rng.below(4));
      std::size_t run = 3 + rng.below(30);
      ref.insert(ref.end(), run, base);
      if (!rng.bernoulli(0.3)) query.insert(query.end(), run / 2 + 1, base);
    }
    EXPECT_EQ(smith_waterman_striped(ref, query, s), smith_waterman(ref, query, s).score);
  }
}

TEST(StripedSW, NonDefaultScheme) {
  ScoringScheme s;
  s.match = 3;
  s.mismatch = 2;
  s.gap_open = 4;
  s.gap_extend = 2;
  util::Xoshiro256 rng(302);
  for (int trial = 0; trial < 10; ++trial) {
    auto ref = saloba::testing::random_seq(rng, 90);
    auto query = saloba::testing::mutate(rng, ref, 0.2);
    EXPECT_EQ(smith_waterman_striped(ref, query, s), smith_waterman(ref, query, s).score);
  }
}

TEST(StripedSW, EndpointsMatchScalarReference) {
  // The ends-reporting variant must reproduce the scalar reference's full
  // (score, ref_end, query_end) triple under the canonical tie-break —
  // including the de-striping of the query index.
  ScoringScheme s;
  util::Xoshiro256 rng(304);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.below(160);
    const std::size_t m = 1 + rng.below(160);
    auto ref = saloba::testing::random_seq(rng, n);
    std::vector<seq::BaseCode> query;
    if (m <= n && !rng.bernoulli(0.3)) {
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(m));
      query = saloba::testing::mutate(rng, query, 0.15);
    } else {
      query = saloba::testing::random_seq(rng, m);
    }
    EXPECT_EQ(smith_waterman_striped_ends(ref, query, s), smith_waterman(ref, query, s))
        << "n=" << n << " m=" << m;
  }
}

TEST(StripedSW, EndpointsTieBreakOnRepeats) {
  // Repetitive sequences produce many equal-scoring cells; the smallest
  // (ref_end, query_end) must win, exactly as in the scalar reference.
  ScoringScheme s;
  auto ref = seq::encode_string("ACACACACACACACACACAC");
  auto query = seq::encode_string("ACACAC");
  EXPECT_EQ(smith_waterman_striped_ends(ref, query, s), smith_waterman(ref, query, s));
  auto empty_q = std::vector<seq::BaseCode>{};
  EXPECT_EQ(smith_waterman_striped_ends(ref, empty_q, s), AlignmentResult{});
}

TEST(StripedSW, HandlesN) {
  ScoringScheme s;
  util::Xoshiro256 rng(303);
  for (int trial = 0; trial < 10; ++trial) {
    auto ref = saloba::testing::random_seq_with_n(rng, 70, 0.15);
    auto query = saloba::testing::random_seq_with_n(rng, 50, 0.15);
    EXPECT_EQ(smith_waterman_striped(ref, query, s), smith_waterman(ref, query, s).score);
  }
}

}  // namespace
}  // namespace saloba::align
