// Differential fuzz for the linear-memory checkpointed traceback engine:
// randomized (seq, scoring, band) triples must reproduce the full-matrix
// masked-DP oracle bit-for-bit — endpoints, start coordinates AND the CIGAR
// string — across band ∈ {1, 8, huge}, checkpoint spacings down to 1 row,
// and empty/degenerate pairs; banded traces must never leave the band.
#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_banded.hpp"
#include "align/traceback.hpp"
#include "align/traceback_engine.hpp"

namespace saloba::align {
namespace {

struct Fuzz {
  util::Xoshiro256 rng;
  explicit Fuzz(std::uint64_t seed) : rng(seed) {}

  std::pair<std::vector<seq::BaseCode>, std::vector<seq::BaseCode>> next_pair(
      std::size_t max_len) {
    std::size_t n = 1 + rng.below(max_len);
    std::size_t m = 1 + rng.below(max_len);
    auto ref = saloba::testing::random_seq(rng, n);
    std::vector<seq::BaseCode> query;
    if (m <= n && rng.bernoulli(0.6)) {
      query.assign(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(m));
      query = saloba::testing::mutate(rng, query, 0.05 + 0.2 * rng.uniform());
    } else {
      query = saloba::testing::random_seq(rng, m);
    }
    return {std::move(ref), std::move(query)};
  }

  ScoringScheme next_scoring() {
    ScoringScheme s;
    s.match = 1 + static_cast<Score>(rng.below(3));
    s.mismatch = static_cast<Score>(rng.below(6));
    s.gap_open = static_cast<Score>(rng.below(8));
    s.gap_extend = 1 + static_cast<Score>(rng.below(3));
    return s;
  }
};

/// Every aligned (M/D-consuming) column of the trace satisfies
/// |ref_index - query_index| <= band.
bool trace_within_band(const TracedAlignment& t, std::size_t band) {
  if (t.end.score == 0) return true;
  std::size_t ri = static_cast<std::size_t>(t.ref_start);
  std::size_t qj = static_cast<std::size_t>(t.query_start);
  for (char op : expand_cigar(t.cigar)) {
    if (op == 'M') {
      ++ri;
      ++qj;
    } else if (op == 'I') {
      ++qj;
    } else {
      ++ri;
    }
    std::size_t diff = ri > qj ? ri - qj : qj - ri;
    if (diff > band) return false;
  }
  return true;
}

void expect_same(const TracedAlignment& got, const TracedAlignment& want,
                 const char* what, int trial) {
  EXPECT_EQ(got.end, want.end) << what << " trial " << trial;
  EXPECT_EQ(got.ref_start, want.ref_start) << what << " trial " << trial;
  EXPECT_EQ(got.query_start, want.query_start) << what << " trial " << trial;
  EXPECT_EQ(got.cigar, want.cigar) << what << " trial " << trial;
}

TEST(TracebackFuzz, MatchesFullMatrixOracleUnbanded) {
  Fuzz fuzz(9100);
  for (int trial = 0; trial < 120; ++trial) {
    auto [ref, query] = fuzz.next_pair(120);
    ScoringScheme s = fuzz.next_scoring();
    auto oracle = smith_waterman_traceback(ref, query, s);
    for (std::size_t chk : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      TracebackParams params;
      params.checkpoint_rows = chk;
      auto got = banded_traceback(ref, query, s, params);
      expect_same(got.traced, oracle, "unbanded", trial);
      EXPECT_TRUE(cigar_consistent(got.traced, ref.size(), query.size()));
    }
  }
}

TEST(TracebackFuzz, MatchesMaskedOracleAcrossBands) {
  Fuzz fuzz(9200);
  for (int trial = 0; trial < 100; ++trial) {
    auto [ref, query] = fuzz.next_pair(100);
    ScoringScheme s = fuzz.next_scoring();
    // huge band == full table; 1 and 8 exercise real masking.
    for (std::size_t band : {std::size_t{1}, std::size_t{8}, std::size_t{100000}}) {
      auto oracle = smith_waterman_traceback(ref, query, s, band);
      TracebackParams params;
      params.band = band;
      params.checkpoint_rows = 1 + fuzz.rng.below(16);
      auto got = banded_traceback(ref, query, s, params);
      expect_same(got.traced, oracle, "banded", trial);
      EXPECT_TRUE(trace_within_band(got.traced, band)) << "band " << band;
      EXPECT_TRUE(cigar_consistent(got.traced, ref.size(), query.size()));
      if (got.traced.end.score > 0) {
        EXPECT_EQ(rescore_cigar(got.traced, ref, query, s), got.traced.end.score);
      }
      // The banded forward sweep is the banded score pass.
      auto score_pass = smith_waterman_banded(ref, query, s, BandedParams{band, 0});
      EXPECT_EQ(got.traced.end, score_pass.result);
    }
  }
}

TEST(TracebackFuzz, HugeBandEqualsUnbandedOracle) {
  Fuzz fuzz(9250);
  for (int trial = 0; trial < 40; ++trial) {
    auto [ref, query] = fuzz.next_pair(80);
    ScoringScheme s = fuzz.next_scoring();
    auto unbanded = smith_waterman_traceback(ref, query, s);
    TracebackParams params;
    params.band = ref.size() + query.size();  // covers every cell
    auto got = banded_traceback(ref, query, s, params);
    expect_same(got.traced, unbanded, "huge-band", trial);
  }
}

TEST(TracebackFuzz, ZdropEndpointsMatchBandedScorePass) {
  Fuzz fuzz(9300);
  ScoringScheme s;
  for (int trial = 0; trial < 80; ++trial) {
    auto [ref, query] = fuzz.next_pair(150);
    for (std::size_t band : {std::size_t{0}, std::size_t{8}, std::size_t{32}}) {
      Score zdrop = 1 + static_cast<Score>(fuzz.rng.below(40));
      BandedParams sp{band, zdrop};
      auto score_pass = smith_waterman_banded(ref, query, s, sp);
      TracebackParams params;
      params.band = band;
      params.zdrop = zdrop;
      params.checkpoint_rows = 1 + fuzz.rng.below(12);
      auto got = banded_traceback(ref, query, s, params);
      // Z-drop is a results-changing heuristic, so the oracle here is the
      // z-dropped score pass itself: endpoints bit-identical, and the path
      // still internally consistent.
      EXPECT_EQ(got.traced.end, score_pass.result) << "band " << band;
      EXPECT_EQ(got.stats.zdropped, score_pass.zdropped);
      EXPECT_TRUE(cigar_consistent(got.traced, ref.size(), query.size()));
      if (got.traced.end.score > 0) {
        EXPECT_EQ(rescore_cigar(got.traced, ref, query, s), got.traced.end.score);
      }
    }
  }
}

TEST(TracebackFuzz, DegeneratePairs) {
  ScoringScheme s;
  std::vector<seq::BaseCode> empty;
  std::vector<seq::BaseCode> one{0};
  std::vector<seq::BaseCode> acgt{0, 1, 2, 3};

  for (std::size_t band : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    TracebackParams params;
    params.band = band;
    auto e1 = banded_traceback(empty, acgt, s, params);
    auto e2 = banded_traceback(acgt, empty, s, params);
    auto e3 = banded_traceback(empty, empty, s, params);
    for (const auto* r : {&e1, &e2, &e3}) {
      EXPECT_EQ(r->traced.end.score, 0);
      EXPECT_TRUE(r->traced.cigar.empty());
      EXPECT_EQ(r->stats.cells(), 0u);
    }

    auto single = banded_traceback(one, one, s, params);
    EXPECT_EQ(single.traced.end.score, s.match);
    EXPECT_EQ(single.traced.cigar, "1M");
    EXPECT_EQ(single.traced.ref_start, 0);
    EXPECT_EQ(single.traced.query_start, 0);
  }

  // All-mismatch pair: empty local alignment everywhere.
  std::vector<seq::BaseCode> aaaa(16, 0), cccc(16, 1);
  auto none = banded_traceback(aaaa, cccc, s, TracebackParams{});
  EXPECT_EQ(none.traced.end.score, 0);
  EXPECT_TRUE(none.traced.cigar.empty());

  // Identical sequences: one long match run.
  auto same = banded_traceback(acgt, acgt, s, TracebackParams{});
  EXPECT_EQ(same.traced.cigar, "4M");
}

TEST(TracebackFuzz, CheckpointSpacingNeverChangesTheAnswer) {
  Fuzz fuzz(9400);
  ScoringScheme s;
  for (int trial = 0; trial < 30; ++trial) {
    auto [ref, query] = fuzz.next_pair(200);
    TracebackParams base;
    base.band = 16;
    base.checkpoint_rows = 1;
    auto want = banded_traceback(ref, query, s, base);
    for (std::size_t chk : {std::size_t{2}, std::size_t{7}, std::size_t{64},
                            std::size_t{1024}, std::size_t{0}}) {
      TracebackParams p = base;
      p.checkpoint_rows = chk;
      auto got = banded_traceback(ref, query, s, p);
      expect_same(got.traced, want.traced, "checkpoint", trial);
      // Forward work is spacing-independent; only the replay varies.
      EXPECT_EQ(got.stats.forward_cells, want.stats.forward_cells);
    }
  }
}

}  // namespace
}  // namespace saloba::align
