#include "align/traceback.hpp"

#include <gtest/gtest.h>

#include "../support/test_support.hpp"
#include "align/sw_reference.hpp"
#include "seq/alphabet.hpp"

namespace saloba::align {
namespace {

using seq::encode_string;

TEST(Traceback, PerfectMatchIsAllM) {
  ScoringScheme s;
  auto codes = encode_string("GATTACA");
  auto t = smith_waterman_traceback(codes, codes, s);
  EXPECT_EQ(t.cigar, "7M");
  EXPECT_EQ(t.ref_start, 0);
  EXPECT_EQ(t.query_start, 0);
  EXPECT_EQ(t.end.score, 7);
}

TEST(Traceback, DeletionShowsAsD) {
  ScoringScheme s;
  const std::string left = "ACGTTGCAACGTTGCAACGTTGCA";
  const std::string right = "GGATCCTTGGATCCTTGGATCCTT";
  auto ref = encode_string(left + "CCC" + right);
  auto query = encode_string(left + right);  // CCC deleted from query
  auto t = smith_waterman_traceback(ref, query, s);
  EXPECT_NE(t.cigar.find("3D"), std::string::npos);
  EXPECT_EQ(t.cigar, "24M3D24M");
}

TEST(Traceback, InsertionShowsAsI) {
  ScoringScheme s;
  const std::string left = "ACGTTGCAACGTTGCAACGTTGCA";
  const std::string right = "GGATCCTTGGATCCTTGGATCCTT";
  auto ref = encode_string(left + right);
  auto query = encode_string(left + "TTCC" + right);  // TTCC inserted
  auto t = smith_waterman_traceback(ref, query, s);
  EXPECT_NE(t.cigar.find("4I"), std::string::npos);
  EXPECT_EQ(t.cigar, "24M4I24M");
}

TEST(Traceback, ScoreMatchesReference) {
  util::Xoshiro256 rng(51);
  ScoringScheme s;
  for (int i = 0; i < 30; ++i) {
    auto ref = saloba::testing::random_seq(rng, 20 + rng.below(80));
    auto query = saloba::testing::mutate(rng, ref, 0.15);
    auto t = smith_waterman_traceback(ref, query, s);
    auto r = smith_waterman(ref, query, s);
    EXPECT_EQ(t.end, r);
  }
}

TEST(Traceback, CigarRescoresToAlignmentScore) {
  util::Xoshiro256 rng(52);
  ScoringScheme s;
  for (int i = 0; i < 30; ++i) {
    auto ref = saloba::testing::random_seq(rng, 30 + rng.below(60));
    auto query = saloba::testing::mutate(rng, ref, 0.2);
    auto t = smith_waterman_traceback(ref, query, s);
    if (t.end.score == 0) continue;
    EXPECT_EQ(rescore_cigar(t, ref, query, s), t.end.score);
  }
}

TEST(Traceback, CigarConsistentWithEndpoints) {
  util::Xoshiro256 rng(53);
  ScoringScheme s;
  for (int i = 0; i < 30; ++i) {
    auto ref = saloba::testing::random_seq(rng, 25 + rng.below(75));
    auto query = saloba::testing::mutate(rng, ref, 0.1);
    auto t = smith_waterman_traceback(ref, query, s);
    EXPECT_TRUE(cigar_consistent(t, ref.size(), query.size()));
  }
}

TEST(Traceback, ZeroScoreGivesEmptyCigar) {
  ScoringScheme s;
  auto t = smith_waterman_traceback(encode_string("AAAA"), encode_string("CCCC"), s);
  EXPECT_EQ(t.end.score, 0);
  EXPECT_TRUE(t.cigar.empty());
}

TEST(ExpandCigar, ExpandsRuns) {
  EXPECT_EQ(expand_cigar("3M1I2D"), "MMMIDD");
  EXPECT_EQ(expand_cigar("1M"), "M");
}

TEST(ExpandCigar, RejectsMalformed) {
  EXPECT_THROW(expand_cigar("M"), std::invalid_argument);
  EXPECT_THROW(expand_cigar("3"), std::invalid_argument);
  EXPECT_THROW(expand_cigar("2X"), std::invalid_argument);
}

TEST(Traceback, LocalAlignmentSkipsNoisyPrefix) {
  ScoringScheme s;
  auto ref = encode_string("TTTTTTGATTACA");
  auto query = encode_string("CCCCCCGATTACA");
  auto t = smith_waterman_traceback(ref, query, s);
  EXPECT_EQ(t.cigar, "7M");
  EXPECT_EQ(t.ref_start, 6);
  EXPECT_EQ(t.query_start, 6);
}

}  // namespace
}  // namespace saloba::align
