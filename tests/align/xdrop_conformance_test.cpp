// Conformance layer for the long-read X-drop wavefront engine: pruning off
// == exact Smith-Waterman, effectively-infinite X-drop and z-drop agree, the
// historical three-way oracle (reference / banded / antidiag) still holds
// after antidiag's promotion, and traced output rescores exactly.
#include <gtest/gtest.h>

#include <vector>

#include "../support/test_support.hpp"
#include "align/antidiag_cpu.hpp"
#include "align/sw_banded.hpp"
#include "align/sw_reference.hpp"
#include "align/traceback.hpp"
#include "align/xdrop_reference.hpp"
#include "align/xdrop_wavefront.hpp"
#include "seq/alphabet.hpp"
#include "seq/sequence.hpp"
#include "util/rng.hpp"

namespace saloba::align {
namespace {

constexpr Score kHugeThreshold = 1 << 20;

std::vector<seq::BaseCode> related_query(util::Xoshiro256& rng,
                                         const std::vector<seq::BaseCode>& ref,
                                         std::size_t len, double rate) {
  std::vector<seq::BaseCode> q(ref.begin(),
                               ref.begin() + static_cast<std::ptrdiff_t>(
                                                 std::min(len, ref.size())));
  return saloba::testing::mutate(rng, q, rate);
}

TEST(XdropConformance, DisabledPruningIsExactSmithWaterman) {
  ScoringScheme s;
  util::Xoshiro256 rng(901);
  for (int it = 0; it < 30; ++it) {
    const std::size_t n = 1 + rng.below(120);
    const std::size_t m = 1 + rng.below(120);
    auto ref = saloba::testing::random_seq_with_n(rng, n, 0.03);
    auto query = m <= n ? related_query(rng, ref, m, 0.12)
                        : saloba::testing::random_seq_with_n(rng, m, 0.03);
    WavefrontStats stats;
    const auto got = xdrop_wavefront_score(ref, query, s, XDropParams{.xdrop = 0}, &stats);
    EXPECT_EQ(got, smith_waterman(ref, query, s)) << "it=" << it;
    EXPECT_FALSE(stats.xdropped);
  }
}

TEST(XdropConformance, InfiniteXdropAndZdropAgreeWithExact) {
  ScoringScheme s;
  util::Xoshiro256 rng(902);
  for (int it = 0; it < 20; ++it) {
    const std::size_t n = 20 + rng.below(150);
    auto ref = saloba::testing::random_seq(rng, n);
    auto query = related_query(rng, ref, n - 5, 0.15);

    const auto exact = smith_waterman(ref, query, s);
    WavefrontStats stats;
    const auto xd = xdrop_wavefront_score(ref, query, s,
                                          XDropParams{.xdrop = kHugeThreshold}, &stats);
    const auto zd =
        smith_waterman_banded(ref, query, s, BandedParams{.band = 0, .zdrop = kHugeThreshold});

    // With both thresholds effectively infinite neither heuristic prunes:
    // X-drop, z-drop, and the exact sweep are one result.
    EXPECT_EQ(xd, exact);
    EXPECT_EQ(zd.result, exact);
    EXPECT_FALSE(stats.xdropped);
    EXPECT_FALSE(zd.zdropped);
  }
}

TEST(XdropConformance, ThreeWayOracleHoldsOnShortPairs) {
  ScoringScheme s;
  util::Xoshiro256 rng(903);
  for (int it = 0; it < 40; ++it) {
    const std::size_t n = 1 + rng.below(80);
    const std::size_t m = 1 + rng.below(80);
    auto ref = saloba::testing::random_seq_with_n(rng, n, 0.05);
    auto query = m <= n ? related_query(rng, ref, m, 0.1)
                        : saloba::testing::random_seq_with_n(rng, m, 0.05);

    const auto reference = smith_waterman(ref, query, s);
    const auto banded = smith_waterman_banded(ref, query, s, BandedParams{});
    const auto antidiag = smith_waterman_antidiag(ref, query, s);
    EXPECT_EQ(antidiag, reference) << "it=" << it;
    EXPECT_EQ(banded.result, reference) << "it=" << it;
  }
}

TEST(XdropConformance, TracedOutputRescoresToReportedScore) {
  ScoringScheme s;
  util::Xoshiro256 rng(904);
  for (const Score xdrop : {Score{0}, Score{20}, Score{60}, kHugeThreshold}) {
    for (int it = 0; it < 12; ++it) {
      const std::size_t n = 10 + rng.below(120);
      auto ref = saloba::testing::random_seq(rng, n);
      auto query = related_query(rng, ref, n, 0.1);

      const XDropParams params{.xdrop = xdrop};
      const auto scored = xdrop_wavefront_score(ref, query, s, params);
      const auto traced = xdrop_wavefront_align(ref, query, s, params);
      EXPECT_EQ(traced.end, scored);
      if (scored.score > 0) {
        EXPECT_TRUE(cigar_consistent(traced, ref.size(), query.size()));
        EXPECT_EQ(rescore_cigar(traced, ref, query, s), scored.score);
      } else {
        EXPECT_TRUE(traced.cigar.empty());
      }
    }
  }
}

TEST(XdropConformance, KnownCaseBitIdenticalToFullMatrixOracle) {
  ScoringScheme s;
  const auto ref = seq::encode_string("TTTTGATTACATTTTACGTACGTGGGG");
  const auto query = seq::encode_string("GATTACAACGTACGT");
  for (const Score xdrop : {Score{0}, Score{5}, Score{15}, kHugeThreshold}) {
    const XDropParams params{.xdrop = xdrop};
    EXPECT_EQ(xdrop_wavefront_score(ref, query, s, params),
              xdrop_reference_score(ref, query, s, params));
    EXPECT_EQ(xdrop_wavefront_align(ref, query, s, params),
              xdrop_reference_align(ref, query, s, params))
        << "xdrop=" << xdrop;
  }
}

TEST(XdropConformance, PrunedScoreNeverExceedsExact) {
  ScoringScheme s;
  util::Xoshiro256 rng(905);
  for (int it = 0; it < 20; ++it) {
    const std::size_t n = 40 + rng.below(100);
    auto ref = saloba::testing::random_seq(rng, n);
    auto query = saloba::testing::random_seq(rng, n);
    const auto exact = smith_waterman(ref, query, s);
    for (const Score xdrop : {Score{5}, Score{15}, Score{40}}) {
      const auto pruned = xdrop_wavefront_score(ref, query, s, XDropParams{.xdrop = xdrop});
      EXPECT_LE(pruned.score, exact.score);
    }
  }
}

TEST(XdropConformance, DegenerateInputs) {
  ScoringScheme s;
  const std::vector<seq::BaseCode> empty;
  const auto acgt = seq::encode_string("ACGTACGT");
  EXPECT_EQ(xdrop_wavefront_score(empty, acgt, s).score, 0);
  EXPECT_EQ(xdrop_wavefront_score(acgt, empty, s).score, 0);
  EXPECT_EQ(xdrop_wavefront_score(empty, empty, s).score, 0);

  // N never matches anything, so an all-N pair has no positive cell.
  const std::vector<seq::BaseCode> all_n(30, seq::kBaseN);
  const auto traced = xdrop_wavefront_align(all_n, all_n, s, XDropParams{.xdrop = 10});
  EXPECT_EQ(traced.end, AlignmentResult{});
  EXPECT_TRUE(traced.cigar.empty());
}

TEST(XdropConformance, CellsEstimateIsBoundedAndShrinksWithXdrop) {
  ScoringScheme s;
  EXPECT_EQ(xdrop_cells_estimate(0, 100, 50, s), 0u);
  EXPECT_LE(xdrop_cells_estimate(100, 100, 0, s), 100u * 100u);
  const std::size_t wide = xdrop_cells_estimate(100000, 100000, 0, s);
  const std::size_t tight = xdrop_cells_estimate(100000, 100000, 100, s);
  EXPECT_LT(tight, wide);
  // The pruned estimate is linear-ish in N + M, nowhere near the full table.
  EXPECT_LT(tight, 100000ull * 1000ull);
}

}  // namespace
}  // namespace saloba::align
